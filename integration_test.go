package cswap_test

// Cross-module integration tests: whole-system scenarios driven through
// the public API, asserting properties that only hold when the profiler,
// advisor, tuner, simulator, and executor agree with each other.

import (
	"errors"
	"math"
	"testing"
	"time"

	"cswap"
	"cswap/internal/experiments"
)

// TestIntegrationFullLifecycle walks one deployment through its whole life:
// deploy (tune + train + profile), estimate a training run, execute a
// functional iteration with real data under the advisor's plan, persist,
// resume, and verify the resumed deployment behaves identically.
func TestIntegrationFullLifecycle(t *testing.T) {
	model, err := cswap.BuildModel("SqueezeNet", cswap.ImageNet, 512)
	if err != nil {
		t.Fatal(err)
	}
	device := cswap.V100()
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: device, Seed: 5, SamplesPerAlg: 400,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 1. The tuned launch must beat the expert default on the calibration
	// workload (otherwise BO failed).
	tC, tDC := cswap.CompressionKernelTime(device, cswap.ZVC, 500<<20, 0.5, fw.Launch)
	eC, eDC := cswap.CompressionKernelTime(device, cswap.ZVC, 500<<20, 0.5, device.DefaultLaunch())
	if tC+tDC >= eC+eDC {
		t.Fatalf("tuned launch %v (%v) not better than expert (%v)", fw.Launch, tC+tDC, eC+eDC)
	}

	// 2. Whole-run estimate: CSWAP beats vDNN and the advantage grows as
	// sparsity rises across the run.
	te, err := fw.EstimateTraining(5, cswap.NewSimOptions(cswap.WithSeed(5)))
	if err != nil {
		t.Fatal(err)
	}
	if te.Reduction() <= 0 {
		t.Fatalf("no training-time reduction: %+v", te)
	}
	firstHalf, secondHalf := 0.0, 0.0
	for i, ep := range te.Epochs {
		gain := ep.VDNNIteration - ep.IterationTime
		if i < len(te.Epochs)/2 {
			firstHalf += gain
		} else {
			secondHalf += gain
		}
	}
	if secondHalf <= firstHalf {
		t.Fatalf("per-iteration gain did not grow with sparsity: %v then %v", firstHalf, secondHalf)
	}

	// 3. Functional execution of the advisor's plan moves fewer bytes than
	// raw swapping, at the ratio the advisor's size models predicted.
	plan, err := fw.PlanEpoch(45)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 4096
	exec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: cswap.MinDeviceCapacity(model, scale),
		HostCapacity:   cswap.HostCapacityFor(model, scale),
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cswap.RunFunctionalIteration(exec, model, plan, fw.Sparsity, 45, scale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ratio() >= 1 {
		t.Fatalf("functional ratio %v", rep.Ratio())
	}
	// Predicted moved bytes from the plan's transfer ratios.
	var predicted, raw float64
	for i, tp := range plan.Tensors {
		b := float64(model.SwapTensors()[i].Bytes / scale)
		raw += b
		predicted += b * tp.TransferRatio
	}
	if got, want := rep.Ratio(), predicted/raw; math.Abs(got-want) > 0.06 {
		t.Fatalf("functional moved ratio %v, advisor predicted %v", got, want)
	}

	// 4. Resume from the database and reproduce the plan exactly.
	resumed, err := cswap.ResumeFramework(fw.DB, model, device, cswap.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := resumed.PlanEpoch(45)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Tensors) != len(plan.Tensors) {
		t.Fatal("resumed plan size differs")
	}
	for i := range plan.Tensors {
		if plan.Tensors[i].Compress != plan2.Tensors[i].Compress {
			t.Fatalf("resumed decision %d differs", i)
		}
	}
}

// TestIntegrationAsyncPipelineOverlap drives overlapped swap-out and
// prefetch streams through the public API: several tensors' swaps must be
// genuinely in flight at once (in-flight gauge observed above 1), every
// restore must be byte-exact under Verify, and concurrent misuse of a
// single handle must surface as ErrHandleBusy rather than corruption.
func TestIntegrationAsyncPipelineOverlap(t *testing.T) {
	// A per-chunk codec delay makes each swap far outlive its submission,
	// so the bounded window genuinely fills.
	inj := cswap.NewFaultInjector(
		cswap.Fault{Site: cswap.FaultSiteEncode, Mode: cswap.FaultDelay, Every: 1, Delay: 2 * time.Millisecond},
	)
	obs := cswap.NewObserver()
	exec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: 64 << 20,
		HostCapacity:   64 << 20,
		Verify:         true,
		MaxInFlight:    4,
		Faults:         inj,
		Observer:       obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exec.Close()

	gen := cswap.NewTensorGenerator(11)
	const tensors = 6
	handles := make([]*cswap.TensorHandle, tensors)
	want := make([][]float32, tensors)
	for i := range handles {
		src := gen.Uniform(1<<14, 0.6)
		want[i] = append([]float32(nil), src.Data...)
		h, err := exec.Register("act", src)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	// Stream the swap-outs; misusing handle 0 while its swap is in flight
	// must be rejected, not interleaved.
	tickets := make([]*cswap.SwapTicket, tensors)
	for i, h := range handles {
		tickets[i] = exec.SwapOutAsync(h, true, cswap.ZVC)
		if i == 0 {
			if err := exec.SwapOut(h, true, cswap.ZVC); !errors.Is(err, cswap.ErrHandleBusy) {
				t.Fatalf("concurrent SwapOut on busy handle: %v", err)
			}
		}
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("swap-out %d: %v", i, err)
		}
	}
	exec.Drain()

	// Prefetch everything back and verify byte-exact restores.
	for i, h := range handles {
		tickets[i] = exec.Prefetch(h)
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("prefetch %d: %v", i, err)
		}
	}
	for i, h := range handles {
		got, err := h.Data()
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("tensor %d: restore differs at element %d", i, j)
			}
		}
	}

	snap := exec.Registry().Snapshot()
	peak, ok := snap.Gauge("executor_async_inflight_peak")
	if !ok || peak <= 1 {
		t.Fatalf("async in-flight peak = %v (present=%v); want > 1", peak, ok)
	}
	if cur, _ := snap.Gauge("executor_async_inflight"); cur != 0 {
		t.Fatalf("in-flight gauge %v after Drain", cur)
	}
	stats := exec.Stats()
	if stats.BusyRejections == 0 {
		t.Fatal("busy rejection not counted")
	}
	if stats.SwapOuts != tensors || stats.SwapIns != tensors {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestIntegrationExperimentsDeterministic re-runs the Figure 6 sweep and
// requires bit-identical results: the whole pipeline is seeded.
func TestIntegrationExperimentsDeterministic(t *testing.T) {
	cfg := experiments.Fast(3)
	a, err := experiments.Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range a.Platforms {
		pb := b.Platform(pa.GPU, pa.Dataset)
		for _, m := range pa.Models() {
			for _, fr := range experiments.FrameworkNames {
				if pa.Cells[m][fr] != pb.Cells[m][fr] {
					t.Fatalf("%s/%s %s %s differs between runs", pa.GPU, pa.Dataset, m, fr)
				}
			}
		}
	}
}

// TestIntegrationAdvisorConsistentWithSimulator spot-checks that when the
// advisor predicts a large gain for a tensor, flipping that tensor off in
// the simulator really does cost time.
func TestIntegrationAdvisorConsistentWithSimulator(t *testing.T) {
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		t.Fatal(err)
	}
	device := cswap.V100()
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: device, Seed: 2, SamplesPerAlg: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	np, err := fw.ProfileAt(49)
	if err != nil {
		t.Fatal(err)
	}
	decs, _, names, err := fw.DecisionsAt(49)
	if err != nil {
		t.Fatal(err)
	}
	// Find the compressed tensor with the largest predicted gain.
	best, gain := -1, 0.0
	for i, d := range decs {
		if d.Compress && d.Gain() > gain {
			best, gain = i, d.Gain()
		}
	}
	if best < 0 {
		t.Fatal("no compressed tensor at epoch 49")
	}
	plan, err := fw.PlanEpoch(49)
	if err != nil {
		t.Fatal(err)
	}
	with, err := cswap.Simulate(model, device, np, plan, cswap.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flipped := &cswap.Plan{Framework: "flip", Tensors: append([]cswap.TensorPlan(nil), plan.Tensors...)}
	flipped.Tensors[best] = cswap.TensorPlan{TransferRatio: 1}
	without, err := cswap.Simulate(model, device, np, flipped, cswap.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if without.IterationTime <= with.IterationTime {
		t.Fatalf("dropping %s (predicted gain %.1f ms) did not slow the iteration (%v vs %v)",
			names[best], gain*1e3, without.IterationTime, with.IterationTime)
	}
}
