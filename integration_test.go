package cswap_test

// Cross-module integration tests: whole-system scenarios driven through
// the public API, asserting properties that only hold when the profiler,
// advisor, tuner, simulator, and executor agree with each other.

import (
	"math"
	"testing"

	"cswap"
	"cswap/internal/experiments"
)

// TestIntegrationFullLifecycle walks one deployment through its whole life:
// deploy (tune + train + profile), estimate a training run, execute a
// functional iteration with real data under the advisor's plan, persist,
// resume, and verify the resumed deployment behaves identically.
func TestIntegrationFullLifecycle(t *testing.T) {
	model, err := cswap.BuildModel("SqueezeNet", cswap.ImageNet, 512)
	if err != nil {
		t.Fatal(err)
	}
	device := cswap.V100()
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: device, Seed: 5, SamplesPerAlg: 400,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 1. The tuned launch must beat the expert default on the calibration
	// workload (otherwise BO failed).
	tC, tDC := cswap.CompressionKernelTime(device, cswap.ZVC, 500<<20, 0.5, fw.Launch)
	eC, eDC := cswap.CompressionKernelTime(device, cswap.ZVC, 500<<20, 0.5, device.DefaultLaunch())
	if tC+tDC >= eC+eDC {
		t.Fatalf("tuned launch %v (%v) not better than expert (%v)", fw.Launch, tC+tDC, eC+eDC)
	}

	// 2. Whole-run estimate: CSWAP beats vDNN and the advantage grows as
	// sparsity rises across the run.
	te, err := fw.EstimateTraining(5, cswap.DefaultSimOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if te.Reduction() <= 0 {
		t.Fatalf("no training-time reduction: %+v", te)
	}
	firstHalf, secondHalf := 0.0, 0.0
	for i, ep := range te.Epochs {
		gain := ep.VDNNIteration - ep.IterationTime
		if i < len(te.Epochs)/2 {
			firstHalf += gain
		} else {
			secondHalf += gain
		}
	}
	if secondHalf <= firstHalf {
		t.Fatalf("per-iteration gain did not grow with sparsity: %v then %v", firstHalf, secondHalf)
	}

	// 3. Functional execution of the advisor's plan moves fewer bytes than
	// raw swapping, at the ratio the advisor's size models predicted.
	plan, err := fw.PlanEpoch(45)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 4096
	exec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: cswap.MinDeviceCapacity(model, scale),
		HostCapacity:   cswap.HostCapacityFor(model, scale),
		Verify:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cswap.RunFunctionalIteration(exec, model, plan, fw.Sparsity, 45, scale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ratio() >= 1 {
		t.Fatalf("functional ratio %v", rep.Ratio())
	}
	// Predicted moved bytes from the plan's transfer ratios.
	var predicted, raw float64
	for i, tp := range plan.Tensors {
		b := float64(model.SwapTensors()[i].Bytes / scale)
		raw += b
		predicted += b * tp.TransferRatio
	}
	if got, want := rep.Ratio(), predicted/raw; math.Abs(got-want) > 0.06 {
		t.Fatalf("functional moved ratio %v, advisor predicted %v", got, want)
	}

	// 4. Resume from the database and reproduce the plan exactly.
	resumed, err := cswap.ResumeFramework(fw.DB, model, device, cswap.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := resumed.PlanEpoch(45)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Tensors) != len(plan.Tensors) {
		t.Fatal("resumed plan size differs")
	}
	for i := range plan.Tensors {
		if plan.Tensors[i].Compress != plan2.Tensors[i].Compress {
			t.Fatalf("resumed decision %d differs", i)
		}
	}
}

// TestIntegrationExperimentsDeterministic re-runs the Figure 6 sweep and
// requires bit-identical results: the whole pipeline is seeded.
func TestIntegrationExperimentsDeterministic(t *testing.T) {
	cfg := experiments.Fast(3)
	a, err := experiments.Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pa := range a.Platforms {
		pb := b.Platform(pa.GPU, pa.Dataset)
		for _, m := range pa.Models() {
			for _, fr := range experiments.FrameworkNames {
				if pa.Cells[m][fr] != pb.Cells[m][fr] {
					t.Fatalf("%s/%s %s %s differs between runs", pa.GPU, pa.Dataset, m, fr)
				}
			}
		}
	}
}

// TestIntegrationAdvisorConsistentWithSimulator spot-checks that when the
// advisor predicts a large gain for a tensor, flipping that tensor off in
// the simulator really does cost time.
func TestIntegrationAdvisorConsistentWithSimulator(t *testing.T) {
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		t.Fatal(err)
	}
	device := cswap.V100()
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: device, Seed: 2, SamplesPerAlg: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	np, err := fw.ProfileAt(49)
	if err != nil {
		t.Fatal(err)
	}
	decs, _, names, err := fw.DecisionsAt(49)
	if err != nil {
		t.Fatal(err)
	}
	// Find the compressed tensor with the largest predicted gain.
	best, gain := -1, 0.0
	for i, d := range decs {
		if d.Compress && d.Gain() > gain {
			best, gain = i, d.Gain()
		}
	}
	if best < 0 {
		t.Fatal("no compressed tensor at epoch 49")
	}
	plan, err := fw.PlanEpoch(49)
	if err != nil {
		t.Fatal(err)
	}
	with, err := cswap.Simulate(model, device, np, plan, cswap.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flipped := &cswap.Plan{Framework: "flip", Tensors: append([]cswap.TensorPlan(nil), plan.Tensors...)}
	flipped.Tensors[best] = cswap.TensorPlan{TransferRatio: 1}
	without, err := cswap.Simulate(model, device, np, flipped, cswap.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if without.IterationTime <= with.IterationTime {
		t.Fatalf("dropping %s (predicted gain %.1f ms) did not slow the iteration (%v vs %v)",
			names[best], gain*1e3, without.IterationTime, with.IterationTime)
	}
}
