package cswap_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=. -benchmem). Each BenchmarkFigN runs the
// corresponding experiment driver and reports its headline quantities as
// custom benchmark metrics; BenchmarkCodecs and the BenchmarkAblation*
// benches cover the real codecs and the design-choice ablations called out
// in DESIGN.md §5.

import (
	"fmt"
	"testing"

	"cswap"
	"cswap/internal/compress"
	"cswap/internal/dnn"
	"cswap/internal/experiments"
	"cswap/internal/regress"
	"cswap/internal/swap"
	"cswap/internal/tensor"
)

func benchCfg() experiments.Config { return experiments.Fast(1) }

// BenchmarkFig1SparsityProfile regenerates Figure 1 (VGG16 sparsity/size
// profile across 50 epochs).
func BenchmarkFig1SparsityProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SizesMB[0], "first-layer-MB")
	}
}

// BenchmarkFig2Timeline regenerates the Figure 2 execution-flow timelines.
func BenchmarkFig2Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2Timeline(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3StaticCompression regenerates Figure 3 (per-layer swap time
// with/without static compression).
func BenchmarkFig3StaticCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CodecShare()*100, "codec-share-%")
		b.ReportMetric(float64(len(r.WorseThanRaw())), "layers-worse")
	}
}

// BenchmarkFig5KernelSurface regenerates Figure 5 (kernel time vs launch).
func BenchmarkFig5KernelSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Best(64).TotalMS, "best-ms")
		b.ReportMetric(r.At(197, 64), "t(197,64)-ms")
	}
}

// BenchmarkFig6Frameworks regenerates Figure 6 (normalized throughput of
// all five frameworks on all four platforms).
func BenchmarkFig6Frameworks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		p := r.Platform("V100", "CIFAR10")
		var sum float64
		for _, m := range p.Models() {
			sum += p.NormalizedThroughput(m, "CSWAP")
		}
		b.ReportMetric(sum/float64(len(p.Models())), "v100-cifar-cswap-x")
	}
}

// BenchmarkFig7OverStatic regenerates Figure 7 (CSWAP vs SC).
func BenchmarkFig7OverStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanImprovement("V100")*100, "v100-mean-%")
		b.ReportMetric(r.MeanImprovement("2080Ti")*100, "2080ti-mean-%")
	}
}

// BenchmarkFig8CompressedLayers regenerates Figure 8.
func BenchmarkFig8CompressedLayers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		vgg := r.Models["VGG16"]
		b.ReportMetric(float64(vgg[len(vgg)-1]-vgg[0]), "vgg16-growth")
	}
}

// BenchmarkFig9LayerMatrix regenerates Figure 9.
func BenchmarkFig9LayerMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.CountAt(0)), "compressed-ep0")
		b.ReportMetric(float64(r.CountAt(r.Epochs-1)), "compressed-ep49")
		b.ReportMetric(float64(len(r.NeverCompressed())), "never")
	}
}

// BenchmarkFig10TimeModel regenerates Figure 10 (LR/BR/SVM/DT RAE).
func BenchmarkFig10TimeModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RAE("LR")*100, "LR-RAE-%")
		b.ReportMetric(r.RAE("BR")*100, "BR-RAE-%")
		b.ReportMetric(r.RAE("SVM")*100, "SVM-RAE-%")
		b.ReportMetric(r.RAE("DT")*100, "DT-RAE-%")
	}
}

// BenchmarkFig11DecisionAccuracy regenerates Figure 11 (per-model decision
// accuracy; paper mean 94.2 %).
func BenchmarkFig11DecisionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean()*100, "mean-accuracy-%")
	}
}

// BenchmarkFig12SearchStrategies regenerates Figure 12 (RD/EP/BO/GS).
func BenchmarkFig12SearchStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Row("BO").CodecMS, "BO-codec-ms")
		b.ReportMetric(r.Row("GS").CodecMS, "GS-codec-ms")
		b.ReportMetric(r.SearchCostRatio(), "GS/BO-evals")
	}
}

// BenchmarkTableIIIWorkloads builds every Table III workload configuration.
func BenchmarkTableIIIWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		built := 0
		for _, gpuName := range []string{"V100", "2080Ti"} {
			for _, ds := range []cswap.Dataset{cswap.CIFAR10, cswap.ImageNet} {
				for _, m := range cswap.ModelNames() {
					batch, err := cswap.BatchSize(m, gpuName, ds)
					if err == dnn.ErrOutOfMemory {
						continue
					}
					if err != nil {
						b.Fatal(err)
					}
					if _, err := cswap.BuildModel(m, ds, batch); err != nil {
						b.Fatal(err)
					}
					built++
				}
			}
		}
		b.ReportMetric(float64(built), "configs")
	}
}

// BenchmarkHeadline regenerates the abstract-level claims.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Headline(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SwapLatencyReduction["V100"]*100, "v100-swap-red-%")
		b.ReportMetric(r.TrainingTimeReductionMean*100, "train-red-mean-%")
		b.ReportMetric(r.TrainingTimeReductionMax*100, "train-red-max-%")
	}
}

// BenchmarkOverheads regenerates the Section V-E accounting.
func BenchmarkOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Overheads(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SparsityProbeMS, "probe-ms")
	}
}

// ---------------------------------------------------------------------------
// Codec microbenchmarks: real throughput of the four algorithms on a 16 MB
// activation tensor at 50 % sparsity.

func BenchmarkCodecs(b *testing.B) {
	gen := tensor.NewGenerator(5)
	tn := gen.SizedUniform(16<<20, 0.5)
	for _, a := range compress.Algorithms() {
		codec := compress.MustNew(a)
		blob := codec.Encode(tn.Data)
		b.Run(a.String()+"/Encode", func(b *testing.B) {
			b.SetBytes(int64(tn.SizeBytes()))
			for i := 0; i < b.N; i++ {
				codec.Encode(tn.Data)
			}
		})
		b.Run(a.String()+"/Decode", func(b *testing.B) {
			b.SetBytes(int64(tn.SizeBytes()))
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(a.String()+"/ParallelEncode", func(b *testing.B) {
			b.SetBytes(int64(tn.SizeBytes()))
			launch := compress.Launch{Grid: 199, Block: 64}
			for i := 0; i < b.N; i++ {
				if _, err := compress.ParallelEncode(a, tn.Data, launch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationBuckets compares the bucketed LR against a single global
// linear fit — the Section IV-C sub-model design choice.
func BenchmarkAblationBuckets(b *testing.B) {
	d := cswap.V100()
	launch := compress.Launch{Grid: 199, Block: 64}
	ds := regress.Generate(d, compress.ZVC, launch, 2000, 3)
	train, test := ds.Split(0.7, 3)
	for i := 0; i < b.N; i++ {
		cB, _, err := regress.EvalRAE(func() regress.Model { return regress.NewBucketedLR() }, train, test)
		if err != nil {
			b.Fatal(err)
		}
		cG, _, err := regress.EvalRAE(func() regress.Model { return &regress.LinearRegression{} }, train, test)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cB*100, "bucketed-RAE-%")
		b.ReportMetric(cG*100, "global-RAE-%")
	}
}

// BenchmarkAblationCodecChoice compares CSWAP restricted to each codec,
// verifying the Section IV-E observation that ZVC dominates under a PCIe
// bottleneck.
func BenchmarkAblationCodecChoice(b *testing.B) {
	model, err := cswap.BuildModel("SqueezeNet", cswap.ImageNet, 512)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	np, err := fw.ProfileAt(45)
	if err != nil {
		b.Fatal(err)
	}
	device := fw.Config.Device
	for i := 0; i < b.N; i++ {
		for _, a := range compress.Algorithms() {
			planner := swap.CSWAP{Predictor: fw.Predictor, Launch: fw.Launch,
				Algorithms: []compress.Algorithm{a}}
			r, err := cswap.Simulate(model, device, np, planner.Plan(np, device),
				cswap.NewSimOptions(cswap.WithSeed(1)))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IterationTime*1e3, a.String()+"-iter-ms")
		}
	}
}

// BenchmarkAblationSelective isolates the cost-model gate: CSWAP versus
// always-compress (SC) versus never-compress (vDNN) on one workload.
func BenchmarkAblationSelective(b *testing.B) {
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	np, err := fw.ProfileAt(25)
	if err != nil {
		b.Fatal(err)
	}
	device := fw.Config.Device
	frameworks := []cswap.SwapFramework{
		cswap.VDNN{}, cswap.Static{Launch: fw.Launch}, fw.Planner(),
	}
	for i := 0; i < b.N; i++ {
		for _, f := range frameworks {
			r, err := cswap.Simulate(model, device, np, f.Plan(np, device),
				cswap.NewSimOptions(cswap.WithSeed(1)))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IterationTime*1e3, f.Name()+"-iter-ms")
		}
	}
}

// BenchmarkAblationTuning compares the BO-tuned launch against the expert
// default end to end.
func BenchmarkAblationTuning(b *testing.B) {
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, skip := range []bool{false, true} {
			fw, err := cswap.NewFramework(cswap.Config{
				Model: model, Device: cswap.V100(), Seed: 1,
				SamplesPerAlg: 400, SkipTuning: skip,
			})
			if err != nil {
				b.Fatal(err)
			}
			r, err := fw.SimulateIteration(45, cswap.NewSimOptions(cswap.WithSeed(1)))
			if err != nil {
				b.Fatal(err)
			}
			label := "tuned-iter-ms"
			if skip {
				label = "expert-iter-ms"
			}
			b.ReportMetric(r.IterationTime*1e3, label)
		}
	}
}

// BenchmarkAblationInterference sweeps the SM-contention charge for
// compression kernels (DESIGN.md §6).
func BenchmarkAblationInterference(b *testing.B) {
	model, err := cswap.BuildModel("SqueezeNet", cswap.ImageNet, 512)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	np, err := fw.ProfileAt(45)
	if err != nil {
		b.Fatal(err)
	}
	device := fw.Config.Device
	plan := cswap.Static{Launch: fw.Launch}.Plan(np, device)
	for i := 0; i < b.N; i++ {
		for _, beta := range []float64{0, 0.1, 0.3} {
			r, err := cswap.Simulate(model, device, np, plan,
				cswap.SimOptions{Seed: 1, Jitter: 0.01, Interference: beta})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IterationTime*1e3, fmt.Sprintf("beta%.1f-iter-ms", beta))
		}
	}
}

// BenchmarkAblationLinkBandwidth sweeps the host interconnect from half
// PCIe 3.0 to NVLink speeds, quantifying the Section II-C claim that the
// compute/interconnect gap is what makes compression pay.
func BenchmarkAblationLinkBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.LinkSweep(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			switch p.Label {
			case "PCIe3-half":
				b.ReportMetric(p.SpeedupOverVDNN, "half-pcie3-x")
			case "PCIe3 (paper)":
				b.ReportMetric(p.SpeedupOverVDNN, "pcie3-x")
			case "PCIe4":
				b.ReportMetric(p.SpeedupOverVDNN, "pcie4-x")
			case "NVLink2":
				b.ReportMetric(p.SpeedupOverVDNN, "nvlink2-x")
			}
		}
	}
}

// BenchmarkFunctionalSwap measures the real data path: a scaled VGG16
// iteration through the functional executor (real codecs, real bytes).
func BenchmarkFunctionalSwap(b *testing.B) {
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		b.Fatal(err)
	}
	sp := cswap.SparsityForModel(model, 50, 1)
	tensors := model.SwapTensors()
	plan := &cswap.Plan{Framework: "bench", Tensors: make([]swap.TensorPlan, len(tensors))}
	for i := range plan.Tensors {
		plan.Tensors[i] = swap.TensorPlan{Compress: true, Alg: compress.ZVC, TransferRatio: 0.5}
	}
	const scale = 2048
	e, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: cswap.MinDeviceCapacity(model, scale),
		HostCapacity:   cswap.HostCapacityFor(model, scale),
	})
	if err != nil {
		b.Fatal(err)
	}
	var raw int64
	for _, st := range tensors {
		raw += st.Bytes / scale
	}
	b.SetBytes(raw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := cswap.RunFunctionalIteration(e, model, plan, sp, i%50, scale, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Ratio(), "moved/raw")
	}
}

// BenchmarkAblationExtendedCodecs compares CSWAP restricted to the paper's
// four codecs against the set extended with the Huffman entropy coder (the
// future-work extension) — quantifying whether entropy coding's better
// ratios survive its 3.2x kernel cost.
func BenchmarkAblationExtendedCodecs(b *testing.B) {
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	np, err := fw.ProfileAt(45)
	if err != nil {
		b.Fatal(err)
	}
	device := fw.Config.Device
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			label string
			algs  []compress.Algorithm
		}{
			{"paper4-iter-ms", compress.Algorithms()},
			{"extended-iter-ms", compress.ExtendedAlgorithms()},
		} {
			planner := swap.CSWAP{Predictor: extendedPredictor{fw}, Launch: fw.Launch, Algorithms: tc.algs}
			r, err := cswap.Simulate(model, device, np, planner.Plan(np, device),
				cswap.NewSimOptions(cswap.WithSeed(1)))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IterationTime*1e3, tc.label)
		}
	}
}

// extendedPredictor answers for the Huffman extension with the true kernel
// model (the deployed predictor is only trained on the paper's four).
type extendedPredictor struct{ fw *cswap.Framework }

func (p extendedPredictor) Predict(a compress.Algorithm, size int64, s float64) (float64, float64, error) {
	if a == compress.Huffman {
		c, dc := cswap.CompressionKernelTime(p.fw.Config.Device, a, size, s, p.fw.Launch)
		return c, dc, nil
	}
	return p.fw.Predictor.Predict(a, size, s)
}

// BenchmarkAblationMemoryBudget sweeps the activation-memory budget of the
// memory-aware planner wrapped around CSWAP: more headroom keeps more
// tensors resident and shortens the iteration.
func BenchmarkAblationMemoryBudget(b *testing.B) {
	model, err := cswap.BuildModel("AlexNet", cswap.ImageNet, 512)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	np, err := fw.ProfileAt(25)
	if err != nil {
		b.Fatal(err)
	}
	device := fw.Config.Device
	var total int64
	for _, tp := range np.Tensors {
		total += tp.Bytes
	}
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			label  string
			budget int64
		}{
			{"budget0-iter-ms", 0},
			{"budget100pct-iter-ms", total},
			{"budget200pct-iter-ms", total * 2},
		} {
			ma := cswap.MemoryAware{Inner: fw.Planner(), BudgetBytes: tc.budget, Model: model}
			r, err := cswap.Simulate(model, device, np, ma.Plan(np, device), cswap.NewSimOptions(cswap.WithSeed(1)))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IterationTime*1e3, tc.label)
		}
	}
}

// BenchmarkAblationPipelinedCodec compares the paper's serial swap-pipeline
// semantics (Fig. 2(b): kernel in-line with its DMA) against a
// double-buffered codec stream that overlaps other tensors' transfers.
func BenchmarkAblationPipelinedCodec(b *testing.B) {
	model, err := cswap.BuildModel("MobileNet", cswap.ImageNet, 128)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	np, err := fw.ProfileAt(45)
	if err != nil {
		b.Fatal(err)
	}
	device := fw.Config.Device
	plan := cswap.Static{Launch: fw.Launch}.Plan(np, device)
	for i := 0; i < b.N; i++ {
		serial, err := cswap.Simulate(model, device, np, plan, cswap.SimOptions{Seed: 1, Jitter: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		pipelined, err := cswap.Simulate(model, device, np, plan,
			cswap.SimOptions{Seed: 1, Jitter: 0.01, PipelinedCodec: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(serial.IterationTime*1e3, "serial-iter-ms")
		b.ReportMetric(pipelined.IterationTime*1e3, "pipelined-iter-ms")
	}
}

// BenchmarkAblationHostCodec sweeps vDNN++'s host-codec throughput: as CPU
// compression speeds up, vDNN++ recovers toward vDNN, but it never reduces
// transfer time — the structural reason the paper measures it lowest.
func BenchmarkAblationHostCodec(b *testing.B) {
	model, err := cswap.BuildModel("AlexNet", cswap.ImageNet, 512)
	if err != nil {
		b.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 400,
	})
	if err != nil {
		b.Fatal(err)
	}
	np, err := fw.ProfileAt(45)
	if err != nil {
		b.Fatal(err)
	}
	device := fw.Config.Device
	vdnn, err := cswap.Simulate(model, device, np, cswap.VDNN{}.Plan(np, device), cswap.NewSimOptions(cswap.WithSeed(1)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(vdnn.IterationTime*1e3, "vdnn-iter-ms")
		for _, tc := range []struct {
			label string
			bw    float64
		}{
			{"host2.5GBs-iter-ms", 2.5e9},
			{"host10GBs-iter-ms", 10e9},
			{"host40GBs-iter-ms", 40e9},
		} {
			plan := cswap.VDNNPP{HostThroughput: tc.bw}.Plan(np, device)
			r, err := cswap.Simulate(model, device, np, plan, cswap.NewSimOptions(cswap.WithSeed(1)))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IterationTime*1e3, tc.label)
		}
	}
}
