package cswap_test

import (
	"fmt"

	"cswap"
)

// ExampleNewCodec compresses a sparse activation tensor with zero-value
// compression and restores it bit-exactly.
func ExampleNewCodec() {
	gen := cswap.NewTensorGenerator(1)
	tn := gen.Uniform(32000, 0.75) // 75 % zeros, like a late-epoch ReLU

	codec, _ := cswap.NewCodec(cswap.ZVC)
	blob := codec.Encode(tn.Data)
	restored, _ := codec.Decode(blob)

	fmt.Printf("ratio %.2f, restored %d elements\n",
		float64(len(blob))/float64(tn.SizeBytes()), len(restored))
	// Output: ratio 0.28, restored 32000 elements
}

// ExampleDecide applies the paper's Eq. 1–4 cost model to one tensor.
func ExampleDecide() {
	d := cswap.Decide(cswap.CostParams{
		SizeBytes: 500 << 20, // a 500 MB activation
		Sparsity:  0.8,
		BWd2h:     11.7e9, BWh2d: 10.6e9, // measured V100 effective links
		HiddenF: 0.010, HiddenB: 0.010, // 10 ms hiding windows
		TimeC: 0.012, TimeDC: 0.008, // predicted kernel times
	})
	fmt.Printf("compress: %v (T=%.0f ms, T'=%.0f ms)\n",
		d.Compress, d.T*1e3, d.TPrime*1e3)
	// Output: compress: true (T=20 ms, T'=74 ms)
}

// ExampleEstimateRatio shows the analytic codec size models the advisor
// uses to size compressed transfers.
func ExampleEstimateRatio() {
	for _, a := range cswap.Algorithms() {
		fmt.Printf("%s at 50%% sparsity: %.2f\n", a, cswap.EstimateRatio(a, 0.5))
	}
	// Output:
	// ZVC at 50% sparsity: 0.53
	// RLE at 50% sparsity: 0.75
	// CSR at 50% sparsity: 1.00
	// LZ4 at 50% sparsity: 0.70
}

// ExampleBatchSize looks up the paper's Table III configuration.
func ExampleBatchSize() {
	b, _ := cswap.BatchSize("VGG16", "V100", cswap.ImageNet)
	fmt.Println(b)
	// Output: 128
}

// ExampleBayesOpt tunes a kernel launch geometry with Algorithm 1.
func ExampleBayesOpt() {
	d := cswap.V100()
	objective := func(l cswap.Launch) float64 {
		c, dc := cswap.CompressionKernelTime(d, cswap.ZVC, 500<<20, 0.5, l)
		return c + dc
	}
	res := (&cswap.BayesOpt{Seed: 1}).Search(objective)
	fmt.Printf("%d evaluations, block %d\n", res.Evaluations, res.Best.Block)
	// Output: 35 evaluations, block 64
}
