// Real-swap: the functional data path through the public API. A real
// sparse tensor is registered into a capacity-limited "device" pool,
// swapped out through each codec into a pinned-host pool, swapped back in,
// and verified — then a scaled VGG16 iteration runs end to end, showing the
// memory relief swapping buys and the byte volume compression saves.
// Finally the async pipeline overlaps a whole layer's swap-outs and
// prefetches them back, with the in-flight window visible in the metrics.
package main

import (
	"fmt"
	"log"

	"cswap"
)

func main() {
	// Part 1: one tensor through every codec.
	exec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: 8 << 20,
		HostCapacity:   16 << 20,
		Launch:         cswap.Launch{Grid: 16, Block: 64},
		Verify:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := cswap.NewTensorGenerator(1)
	fmt.Println("One 4 MB tensor at 65% sparsity through each codec:")
	for _, alg := range cswap.Algorithms() {
		tn := gen.SizedUniform(4<<20, 0.65)
		h, err := exec.Register(alg.String(), tn)
		if err != nil {
			log.Fatal(err)
		}
		if err := exec.SwapOut(h, true, alg); err != nil {
			log.Fatal(err)
		}
		hostUsed := exec.HostStats().Used
		if err := exec.SwapIn(h); err != nil {
			log.Fatal(err) // Verify=true: a corrupt restore fails here
		}
		fmt.Printf("  %-4s swapped 4.00 MB as %.2f MB, restored bit-exact\n",
			alg, float64(hostUsed)/(1<<20))
		if err := exec.Free(h); err != nil {
			log.Fatal(err)
		}
	}

	// Part 2: a scaled VGG16 iteration under the CSWAP advisor's plan.
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	const scale = 4096
	iterExec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: cswap.MinDeviceCapacity(model, scale),
		HostCapacity:   cswap.HostCapacityFor(model, scale),
		Verify:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fw.PlanEpoch(45)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := cswap.RunFunctionalIteration(iterExec, model, plan, fw.Sparsity, 45, scale, 1)
	if err != nil {
		log.Fatal(err)
	}

	var totalScaled float64
	for _, st := range model.SwapTensors() {
		totalScaled += float64(st.Bytes) / scale
	}
	fmt.Printf("\nVGG16 iteration at 1/%d scale, epoch 45 plan (%d of %d tensors compressed):\n",
		scale, rep.Compressed, rep.Tensors)
	fmt.Printf("  activations produced:  %.2f MB\n", totalScaled/(1<<20))
	fmt.Printf("  peak device usage:     %.2f MB  (memory relief from swapping)\n",
		float64(rep.PeakDeviceBytes)/(1<<20))
	fmt.Printf("  bytes over the link:   %.2f MB of %.2f MB raw (ratio %.3f)\n",
		float64(rep.MovedBytes)/(1<<20), float64(rep.RawBytes)/(1<<20), rep.Ratio())
	fmt.Printf("  every tensor restored bit-exact: %d verified\n", iterExec.Stats().Verified)

	// Part 3: the async pipeline. Eight activations stream out through
	// SwapOutAsync — the executor keeps up to MaxInFlight swaps running on
	// its worker pool while the caller moves on — then Prefetch brings them
	// back ahead of use. The observer's gauges show the overlap.
	obs := cswap.NewObserver()
	asyncExec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: 64 << 20,
		HostCapacity:   64 << 20,
		Verify:         true,
		MaxInFlight:    4,
		Observer:       obs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer asyncExec.Close()

	const streams = 8
	handles := make([]*cswap.TensorHandle, streams)
	for i := range handles {
		h, err := asyncExec.Register(fmt.Sprintf("act-%d", i), gen.SizedUniform(2<<20, 0.65))
		if err != nil {
			log.Fatal(err)
		}
		handles[i] = h
	}
	tickets := make([]*cswap.SwapTicket, streams)
	for i, h := range handles {
		tickets[i] = asyncExec.SwapOutAsync(h, true, cswap.ZVC)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			log.Fatal(err)
		}
	}
	for i, h := range handles {
		tickets[i] = asyncExec.Prefetch(h)
	}
	asyncExec.Drain()
	for _, tk := range tickets {
		if err := tk.Err(); err != nil {
			log.Fatal(err)
		}
	}

	snap := asyncExec.Registry().Snapshot()
	peak, _ := snap.Gauge("executor_async_inflight_peak")
	submitted, _ := snap.Counter("executor_async_submitted_total", cswap.MetricLabel("op", "swap-out"))
	prefetched, _ := snap.Counter("executor_async_submitted_total", cswap.MetricLabel("op", "prefetch"))
	fmt.Printf("\nAsync pipeline, %d tensors of 2 MB, window %d:\n", streams, cswap.DefaultMaxInFlight)
	fmt.Printf("  swap-outs submitted:   %.0f   prefetches: %.0f\n", submitted, prefetched)
	fmt.Printf("  in-flight peak:        %.0f  (swaps genuinely overlapped)\n", peak)
	fmt.Printf("  restores verified:     %d, all bit-exact\n", asyncExec.Stats().Verified)
}
