// Real-swap: the functional data path through the public API. A real
// sparse tensor is registered into a capacity-limited "device" pool,
// swapped out through each codec into a pinned-host pool, swapped back in,
// and verified — then a scaled VGG16 iteration runs end to end, showing the
// memory relief swapping buys and the byte volume compression saves.
package main

import (
	"fmt"
	"log"

	"cswap"
)

func main() {
	// Part 1: one tensor through every codec.
	exec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: 8 << 20,
		HostCapacity:   16 << 20,
		Launch:         cswap.Launch{Grid: 16, Block: 64},
		Verify:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := cswap.NewTensorGenerator(1)
	fmt.Println("One 4 MB tensor at 65% sparsity through each codec:")
	for _, alg := range cswap.Algorithms() {
		tn := gen.SizedUniform(4<<20, 0.65)
		h, err := exec.Register(alg.String(), tn)
		if err != nil {
			log.Fatal(err)
		}
		if err := exec.SwapOut(h, true, alg); err != nil {
			log.Fatal(err)
		}
		hostUsed := exec.HostStats().Used
		if err := exec.SwapIn(h); err != nil {
			log.Fatal(err) // Verify=true: a corrupt restore fails here
		}
		fmt.Printf("  %-4s swapped 4.00 MB as %.2f MB, restored bit-exact\n",
			alg, float64(hostUsed)/(1<<20))
		if err := exec.Free(h); err != nil {
			log.Fatal(err)
		}
	}

	// Part 2: a scaled VGG16 iteration under the CSWAP advisor's plan.
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: cswap.V100(), Seed: 1, SamplesPerAlg: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	const scale = 4096
	iterExec, err := cswap.NewExecutor(cswap.ExecutorConfig{
		DeviceCapacity: cswap.MinDeviceCapacity(model, scale),
		HostCapacity:   cswap.HostCapacityFor(model, scale),
		Verify:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fw.PlanEpoch(45)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := cswap.RunFunctionalIteration(iterExec, model, plan, fw.Sparsity, 45, scale, 1)
	if err != nil {
		log.Fatal(err)
	}

	var totalScaled float64
	for _, st := range model.SwapTensors() {
		totalScaled += float64(st.Bytes) / scale
	}
	fmt.Printf("\nVGG16 iteration at 1/%d scale, epoch 45 plan (%d of %d tensors compressed):\n",
		scale, rep.Compressed, rep.Tensors)
	fmt.Printf("  activations produced:  %.2f MB\n", totalScaled/(1<<20))
	fmt.Printf("  peak device usage:     %.2f MB  (memory relief from swapping)\n",
		float64(rep.PeakDeviceBytes)/(1<<20))
	fmt.Printf("  bytes over the link:   %.2f MB of %.2f MB raw (ratio %.3f)\n",
		float64(rep.MovedBytes)/(1<<20), float64(rep.RawBytes)/(1<<20), rep.Ratio())
	fmt.Printf("  every tensor restored bit-exact: %d verified\n", iterExec.Stats().Verified)
}
