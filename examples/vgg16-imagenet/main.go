// VGG16-ImageNet: the paper's motivating workload — a full 50-epoch VGG16
// training run on ImageNet at batch 128, simulated on a V100. The example
// tracks how the execution advisor's decisions evolve with tensor sparsity
// epoch by epoch and how CSWAP's throughput compares with vDNN across the
// run.
package main

import (
	"fmt"
	"log"

	"cswap"
)

func main() {
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
	if err != nil {
		log.Fatal(err)
	}
	device := cswap.V100()

	// Show why this workload needs swapping at all.
	act := model.TotalActivationBytes()
	fmt.Printf("VGG16 @ batch 128: %.1f GiB of forward activations "+
		"(training footprint ≈3x) vs %d GiB GPU memory\n\n",
		float64(act)/(1<<30), device.MemBytes>>30)

	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: device, Seed: 42, SamplesPerAlg: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  compressed  CSWAP iter(ms)  vDNN iter(ms)  speedup  stall saved")
	var sumC, sumV float64
	for epoch := 0; epoch < 50; epoch += 5 {
		opt := cswap.NewSimOptions(cswap.WithSeed(42 + int64(epoch)))
		rc, err := fw.SimulateIteration(epoch, opt)
		if err != nil {
			log.Fatal(err)
		}
		np, err := fw.ProfileAt(epoch)
		if err != nil {
			log.Fatal(err)
		}
		rv, err := cswap.Simulate(model, device, np, cswap.VDNN{}.Plan(np, device), opt)
		if err != nil {
			log.Fatal(err)
		}
		n, err := fw.CompressedLayerCount(epoch)
		if err != nil {
			log.Fatal(err)
		}
		sumC += rc.IterationTime
		sumV += rv.IterationTime
		fmt.Printf("%5d  %10d  %14.1f  %13.1f  %6.2fx  %8.1f ms\n",
			epoch, n, rc.IterationTime*1e3, rv.IterationTime*1e3,
			rv.IterationTime/rc.IterationTime,
			(rv.SwapExposed-rc.SwapExposed)*1e3)
	}
	fmt.Printf("\nWhole-run training-time reduction vs vDNN: %.1f%%\n", (1-sumC/sumV)*100)

	// The advisor's reasoning for a few representative tensors.
	decs, algs, names, err := fw.DecisionsAt(49)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAdvisor detail at epoch 49 (first six tensors):")
	for i := 0; i < 6 && i < len(decs); i++ {
		action := "raw"
		if decs[i].Compress {
			action = algs[i].String()
		}
		fmt.Printf("  %-6s T=%6.1f ms T'=%6.1f ms -> %s\n",
			names[i], decs[i].T*1e3, decs[i].TPrime*1e3, action)
	}
}
