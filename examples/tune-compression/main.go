// Tune-compression: exercise the real codecs and the launch-geometry
// search. It compresses actual synthetic tensors with all four algorithms
// at several sparsities (reporting real compression ratios), then tunes the
// kernel launch with Bayesian optimization against the device's kernel-time
// surface and compares it with random, expert, and grid search.
package main

import (
	"fmt"
	"log"

	"cswap"
)

func main() {
	// Part 1: real compression ratios on synthetic activation tensors.
	gen := cswap.NewTensorGenerator(7)
	fmt.Println("Real codec compression ratios (16 MB synthetic activations):")
	fmt.Printf("%-10s", "sparsity")
	for _, a := range cswap.Algorithms() {
		fmt.Printf("  %6s", a)
	}
	fmt.Println()
	for _, s := range []float64{0.2, 0.4, 0.6, 0.8} {
		tn := gen.SizedUniform(16<<20, s)
		fmt.Printf("%9.0f%%", s*100)
		for _, a := range cswap.Algorithms() {
			codec, err := cswap.NewCodec(a)
			if err != nil {
				log.Fatal(err)
			}
			blob := codec.Encode(tn.Data)
			// Verify the round trip before trusting the ratio.
			if _, err := codec.Decode(blob); err != nil {
				log.Fatalf("%s round-trip: %v", a, err)
			}
			fmt.Printf("  %6.3f", float64(len(blob))/float64(tn.SizeBytes()))
		}
		fmt.Println()
	}

	// Part 2: parallel (grid, block)-partitioned execution of ZVC, the way
	// the GPU kernels split a tensor across thread blocks.
	tn := gen.SizedUniform(64<<20, 0.5)
	launch := cswap.Launch{Grid: 199, Block: 64}
	blob, err := cswap.ParallelEncode(cswap.ZVC, tn.Data, launch)
	if err != nil {
		log.Fatal(err)
	}
	back, err := cswap.ParallelDecode(blob, launch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nParallel ZVC at launch %v: 64 MB -> %.1f MB across %d chunks (round-trip ok: %v)\n",
		launch, float64(len(blob))/(1<<20), launch.Grid, len(back) == tn.Len())

	// Part 3: launch-geometry search on the V100 kernel-time surface.
	d := cswap.V100()
	objective := func(l cswap.Launch) float64 {
		// The Figure 5 objective: ZVC comp+decomp of 500 MB @ 50 %.
		c, dc := cswap.CompressionKernelTime(d, cswap.ZVC, 500<<20, 0.5, l)
		return c + dc
	}
	fmt.Println("\nLaunch-geometry search (objective: ZVC comp+decomp, 500 MB @ 50 %):")
	searchers := []cswap.Searcher{
		&cswap.RandomSearch{Seed: 9},
		&cswap.ExpertChoice{},
		&cswap.BayesOpt{Seed: 9},
		&cswap.GridSearch{Stride: 4},
	}
	for _, s := range searchers {
		res := s.Search(objective)
		fmt.Printf("  %-3s found %-11v -> %6.1f ms  (%5d evaluations)\n",
			s.Name(), res.Best, res.BestValue*1e3, res.Evaluations)
	}
}
