// Quickstart: build a model, deploy CSWAP on a V100, and simulate one
// training iteration, printing what the execution advisor decided and what
// it bought.
package main

import (
	"fmt"
	"log"

	"cswap"
)

func main() {
	// VGG16 on ImageNet at the paper's V100 batch size (Table III).
	batch, err := cswap.BatchSize("VGG16", "V100", cswap.ImageNet)
	if err != nil {
		log.Fatal(err)
	}
	model, err := cswap.BuildModel("VGG16", cswap.ImageNet, batch)
	if err != nil {
		log.Fatal(err)
	}

	// Deploying the framework runs the Bayesian-optimization launch
	// search, trains the (de)compression-time model offline, and collects
	// the first-iteration profile.
	fw, err := cswap.NewFramework(cswap.Config{
		Model:         model,
		Device:        cswap.V100(),
		Seed:          1,
		SamplesPerAlg: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BO-tuned compression launch geometry: %v\n", fw.Launch)

	// Mid-training epoch: ask the advisor for its decisions.
	const epoch = 25
	decisions, algs, names, err := fw.DecisionsAt(epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAdvisor decisions at epoch %d:\n", epoch)
	for i, d := range decisions {
		verdict := "swap raw"
		if d.Compress {
			verdict = "compress with " + algs[i].String()
		}
		fmt.Printf("  %-8s T=%6.1f ms  T'=%6.1f ms  -> %s\n",
			names[i], d.T*1e3, d.TPrime*1e3, verdict)
	}

	// Simulate the iteration under CSWAP and under plain vDNN.
	opt := cswap.NewSimOptions(cswap.WithSeed(1))
	rc, err := fw.SimulateIteration(epoch, opt)
	if err != nil {
		log.Fatal(err)
	}
	np, err := fw.ProfileAt(epoch)
	if err != nil {
		log.Fatal(err)
	}
	rv, err := cswap.Simulate(model, fw.Config.Device, np,
		cswap.VDNN{}.Plan(np, fw.Config.Device), opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nOne training iteration (batch %d):\n", batch)
	fmt.Printf("  vDNN : %6.1f ms  (%.0f samples/s, %5.1f ms un-hidden swap stall)\n",
		rv.IterationTime*1e3, rv.Throughput, rv.SwapExposed*1e3)
	fmt.Printf("  CSWAP: %6.1f ms  (%.0f samples/s, %5.1f ms un-hidden swap stall)\n",
		rc.IterationTime*1e3, rc.Throughput, rc.SwapExposed*1e3)
	fmt.Printf("  training-time reduction: %.1f%%\n",
		(1-rc.IterationTime/rv.IterationTime)*100)
}
