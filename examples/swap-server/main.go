// Swap-server: the serving layer end to end. By default this example
// starts an in-process cswapd-equivalent service on an ephemeral port,
// drives it with the public client — two tenants registering, swapping
// out through different codecs, and restoring bit-exactly — and prints
// the per-tenant accounting the service exposes over /metrics.
//
// With -connect the example skips the in-process service and drives an
// externally started daemon instead:
//
//	cswapd -addr 127.0.0.1:7077 &
//	go run ./examples/swap-server -connect http://127.0.0.1:7077
//
// With -smoke the example additionally scrapes /metrics and exits
// non-zero unless the swap counters moved — the assertion the Makefile's
// serve-smoke target builds on.
//
// With -drift the example instead drives a drifting-sparsity workload
// against a tuner-enabled daemon (cswapd -tune): dense tensors swapped
// through the Auto selector until the tuner issues a Huffman verdict, then
// sparse tensors until the codec-switch counter moves. It exits non-zero
// if the tuner never reacts — the assertion behind the Makefile's
// tune-smoke target.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"cswap"
	"cswap/client"
)

var errExit = false

func main() {
	connect := flag.String("connect", "", "drive an external daemon at this base URL instead of an in-process service")
	smoke := flag.Bool("smoke", false, "assert non-zero swap counters via /metrics and exit non-zero on failure")
	drift := flag.Bool("drift", false, "drive a drifting-sparsity workload and assert the tuner switched codecs (requires cswapd -tune)")
	flag.Parse()

	if *drift {
		if *connect == "" {
			log.Fatal("-drift requires -connect (a cswapd started with -tune)")
		}
		if err := driveDrift(*connect); err != nil {
			log.Fatal(err)
		}
		fmt.Println("drift: ok")
		return
	}

	base := *connect
	if base == "" {
		// In-process service: same code path cswapd runs, mounted on an
		// httptest listener so the example is self-contained.
		svc, err := cswap.NewSwapServer(cswap.SwapServerConfig{
			DeviceCapacity: 64 << 20,
			HostCapacity:   256 << 20,
			Verify:         true,
		})
		if err != nil {
			log.Fatal(err)
		}
		hs := httptest.NewServer(svc.Handler())
		defer func() {
			hs.Close()
			_ = svc.Close()
		}()
		base = hs.URL
		fmt.Printf("in-process swap service at %s\n", base)
	} else {
		fmt.Printf("connecting to %s\n", base)
	}

	ctx := context.Background()
	gen := cswap.NewTensorGenerator(42)

	// Two tenants share the service; each swaps a tensor of its own
	// sparsity through its own codec.
	tenants := []struct {
		name     string
		alg      client.Algorithm
		sparsity float64
	}{
		{"trainer-a", client.ZVC, 0.7},
		{"trainer-b", client.LZ4, 0.3},
	}
	for _, tn := range tenants {
		c := client.New(base, client.WithTenant(tn.name))
		data := gen.Uniform(64*1024, tn.sparsity).Data
		want := append([]float32(nil), data...)

		if err := c.Register(ctx, "act0", data); err != nil {
			log.Fatal(err)
		}
		if err := c.SwapOut(ctx, "act0", true, tn.alg); err != nil {
			log.Fatal(err)
		}
		got, err := c.SwapIn(ctx, "act0")
		if err != nil {
			log.Fatal(err)
		}
		exact := len(got) == len(want)
		for i := 0; exact && i < len(want); i++ {
			exact = math.Float32bits(got[i]) == math.Float32bits(want[i])
		}
		fmt.Printf("%-10s %s  %6d KiB  sparsity %.0f%%  bit-exact %v\n",
			tn.name, tn.alg, len(want)*4/1024, tn.sparsity*100, exact)
		if !exact {
			errExit = true
		}
	}

	// The service's own accounting, over the same endpoint an operator
	// scrapes.
	text, err := client.New(base).Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, series := range []string{
		"executor_swap_outs_total",
		"executor_swap_ins_total",
		"server_sessions",
		`server_tenant_used_bytes{tenant="trainer-a"}`,
	} {
		fmt.Printf("  %-50s %s\n", series, sample(text, series))
	}

	if *smoke {
		for _, series := range []string{"executor_swap_outs_total", "executor_swap_ins_total"} {
			v := sample(text, series)
			if v == "" || v == "0" {
				fmt.Fprintf(os.Stderr, "smoke: %s = %q, want non-zero\n", series, v)
				errExit = true
			}
		}
		if !errExit {
			fmt.Println("smoke: ok")
		}
	}
	if errExit {
		os.Exit(1)
	}
}

// sample pulls one raw sample value out of Prometheus exposition text.
func sample(text, series string) string {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest
		}
	}
	return ""
}

// driveDrift swaps a dense workload through the Auto selector until the
// tuner issues a Huffman verdict, then switches the workload sparse and
// waits for the tuner's codec-switch counter to move. Each phase keeps the
// workload live (the tuner only acts on tenants with fresh evidence) and
// fails after a deadline.
func driveDrift(base string) error {
	ctx := context.Background()
	const tenant = "drifter"
	c := client.New(base, client.WithTenant(tenant))
	gen := cswap.NewTensorGenerator(42)
	mc := client.New(base)

	cycle := func(name string) error {
		if err := c.SwapOut(ctx, name, true, client.Auto); err != nil {
			return fmt.Errorf("drift: swap-out %s: %w", name, err)
		}
		if _, err := c.SwapIn(ctx, name); err != nil {
			return fmt.Errorf("drift: swap-in %s: %w", name, err)
		}
		return nil
	}
	// Prometheus label sets are alphabetical, so codec sorts before tenant.
	waitSeries := func(name, series string) error {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if err := cycle(name); err != nil {
				return err
			}
			text, err := mc.Metrics(ctx)
			if err != nil {
				return err
			}
			if v := sample(text, series); v != "" && v != "0" {
				fmt.Printf("drift: %s = %s\n", series, v)
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		return fmt.Errorf("drift: %s never moved", series)
	}

	if err := c.Register(ctx, "act0", gen.Uniform(16384, 0).Data); err != nil {
		return err
	}
	if err := waitSeries("act0",
		`server_tuner_verdicts_total{codec="HUF",tenant="`+tenant+`"}`); err != nil {
		return err
	}
	if err := c.Free(ctx, "act0"); err != nil {
		return err
	}
	if err := c.Register(ctx, "act1", gen.Uniform(16384, 0.95).Data); err != nil {
		return err
	}
	return waitSeries("act1",
		`server_tuner_codec_switches_total{tenant="`+tenant+`"}`)
}
