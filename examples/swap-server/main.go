// Swap-server: the serving layer end to end. By default this example
// starts an in-process cswapd-equivalent service on an ephemeral port,
// drives it with the public client — two tenants registering, swapping
// out through different codecs, and restoring bit-exactly — and prints
// the per-tenant accounting the service exposes over /metrics.
//
// With -connect the example skips the in-process service and drives an
// externally started daemon instead:
//
//	cswapd -addr 127.0.0.1:7077 &
//	go run ./examples/swap-server -connect http://127.0.0.1:7077
//
// With -smoke the example additionally scrapes /metrics and exits
// non-zero unless the swap counters moved — the assertion the Makefile's
// serve-smoke target builds on.
//
// With -drift the example instead drives a drifting-sparsity workload
// against a tuner-enabled daemon (cswapd -tune): dense tensors swapped
// through the Auto selector until the tuner issues a Huffman verdict, then
// sparse tensors until the codec-switch counter moves. It exits non-zero
// if the tuner never reacts — the assertion behind the Makefile's
// tune-smoke target.
//
// With -cluster the example drives a sharded daemon (cswapd -shards 3, or
// an in-process 3-shard cluster when -connect is absent) with the
// cluster-aware client: three tenants spread tensors across every shard,
// restores are verified bit-exact, one shard is drained live, and the
// survivors must restore every migrated tensor bit-exactly. /metrics must
// show per-shard swap counters and a non-zero rebalance count — the
// assertions behind the Makefile's cluster-smoke target.
//
// With -pressure the example drives an overflow workload against a daemon
// whose pinned-host pool is deliberately too small for the swap stream
// (cswapd -host 1 -tier-dir DIR): every swap-out must still succeed by
// demoting cold blobs to the disk tier, /metrics must show
// executor_tier_demotions_total > 0 and zero quota rejections, and every
// restore must come back bit-exact through the promote path — the
// assertions behind the Makefile's tier-smoke target.
//
// With -slo the example drives an SLO-scheduling workload against a
// scheduler-enabled daemon (cswapd -sched): a saturating stream of
// speculative prefetches with a train of deadline-bound critical restores
// riding over it. Every critical restore must land bit-exact within its
// deadline, /metrics must show both lanes admitted and zero critical
// expiries — the assertions behind the Makefile's slo-smoke target.
//
// With -kv the example drives the batch block API with a paged KV-cache
// decode trace: one pool registration, then per decode step one
// batch-swap-out of the evicted block IDs and one batch-swap-in of the
// returning ones, every restore verified bit-exact. It then times 64
// single-block round trips against one 64-block batch and exits non-zero
// unless the batch lands under 25% of the singles' wall time, the batch
// counters moved, and the coalescing-ratio histogram is populated — the
// assertions behind the Makefile's kv-smoke target.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"cswap"
	"cswap/client"
)

var errExit = false

func main() {
	connect := flag.String("connect", "", "drive an external daemon at this base URL instead of an in-process service")
	smoke := flag.Bool("smoke", false, "assert non-zero swap counters via /metrics and exit non-zero on failure")
	drift := flag.Bool("drift", false, "drive a drifting-sparsity workload and assert the tuner switched codecs (requires cswapd -tune)")
	clusterMode := flag.Bool("cluster", false, "drive a sharded daemon with the cluster client: spread keys, drain a shard, verify bit-exact restores")
	kvMode := flag.Bool("kv", false, "drive the batch block API with a KV-cache decode trace and assert batching beats single-block round trips")
	pressure := flag.Bool("pressure", false, "drive a host-overflow workload and assert it completes via tier demotions with zero 507s (requires cswapd -tier-dir)")
	slo := flag.Bool("slo", false, "drive a speculative flood plus deadline-bound critical restores and assert zero critical expiries (requires cswapd -sched)")
	flag.Parse()

	if *slo {
		if *connect == "" {
			log.Fatal("-slo requires -connect (a cswapd started with -sched)")
		}
		if err := driveSLO(*connect); err != nil {
			log.Fatal(err)
		}
		fmt.Println("slo: ok")
		return
	}

	if *pressure {
		if *connect == "" {
			log.Fatal("-pressure requires -connect (a cswapd started with -tier-dir and a small -host)")
		}
		if err := drivePressure(*connect); err != nil {
			log.Fatal(err)
		}
		fmt.Println("pressure: ok")
		return
	}

	if *drift {
		if *connect == "" {
			log.Fatal("-drift requires -connect (a cswapd started with -tune)")
		}
		if err := driveDrift(*connect); err != nil {
			log.Fatal(err)
		}
		fmt.Println("drift: ok")
		return
	}

	if *clusterMode {
		base := *connect
		if base == "" {
			cl, err := cswap.NewSwapCluster(
				cswap.WithSwapShards(3),
				cswap.WithSwapDeviceCapacity(64<<20),
				cswap.WithSwapHostCapacity(256<<20),
				cswap.WithSwapVerify(true),
			)
			if err != nil {
				log.Fatal(err)
			}
			hs := httptest.NewServer(cl.Handler())
			defer func() {
				hs.Close()
				_ = cl.Close()
			}()
			base = hs.URL
			fmt.Printf("in-process 3-shard cluster at %s\n", base)
		}
		if err := driveCluster(base); err != nil {
			log.Fatal(err)
		}
		fmt.Println("cluster: ok")
		return
	}

	if *kvMode {
		base := *connect
		if base == "" {
			svc, err := cswap.NewSwapService(
				cswap.WithSwapDeviceCapacity(64<<20),
				cswap.WithSwapHostCapacity(256<<20),
				cswap.WithSwapVerify(true),
			)
			if err != nil {
				log.Fatal(err)
			}
			hs := httptest.NewServer(svc.Handler())
			defer func() {
				hs.Close()
				_ = svc.Close()
			}()
			base = hs.URL
			fmt.Printf("in-process swap service at %s\n", base)
		}
		if err := driveKV(base); err != nil {
			log.Fatal(err)
		}
		fmt.Println("kv: ok")
		return
	}

	base := *connect
	if base == "" {
		// In-process service: same code path cswapd runs, mounted on an
		// httptest listener so the example is self-contained.
		svc, err := cswap.NewSwapService(
			cswap.WithSwapDeviceCapacity(64<<20),
			cswap.WithSwapHostCapacity(256<<20),
			cswap.WithSwapVerify(true),
		)
		if err != nil {
			log.Fatal(err)
		}
		hs := httptest.NewServer(svc.Handler())
		defer func() {
			hs.Close()
			_ = svc.Close()
		}()
		base = hs.URL
		fmt.Printf("in-process swap service at %s\n", base)
	} else {
		fmt.Printf("connecting to %s\n", base)
	}

	ctx := context.Background()
	gen := cswap.NewTensorGenerator(42)

	// Two tenants share the service; each swaps a tensor of its own
	// sparsity through its own codec.
	tenants := []struct {
		name     string
		alg      client.Algorithm
		sparsity float64
	}{
		{"trainer-a", client.ZVC, 0.7},
		{"trainer-b", client.LZ4, 0.3},
	}
	for _, tn := range tenants {
		c := client.New(base, client.WithTenant(tn.name))
		data := gen.Uniform(64*1024, tn.sparsity).Data
		want := append([]float32(nil), data...)

		if err := c.Register(ctx, "act0", data); err != nil {
			log.Fatal(err)
		}
		if err := c.SwapOut(ctx, "act0", client.WithCodec(tn.alg)); err != nil {
			log.Fatal(err)
		}
		got, err := c.SwapIn(ctx, "act0")
		if err != nil {
			log.Fatal(err)
		}
		exact := len(got) == len(want)
		for i := 0; exact && i < len(want); i++ {
			exact = math.Float32bits(got[i]) == math.Float32bits(want[i])
		}
		fmt.Printf("%-10s %s  %6d KiB  sparsity %.0f%%  bit-exact %v\n",
			tn.name, tn.alg, len(want)*4/1024, tn.sparsity*100, exact)
		if !exact {
			errExit = true
		}
	}

	// The service's own accounting, over the same endpoint an operator
	// scrapes.
	text, err := client.New(base).Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, series := range []string{
		"executor_swap_outs_total",
		"executor_swap_ins_total",
		"server_sessions",
		`server_tenant_used_bytes{tenant="trainer-a"}`,
	} {
		fmt.Printf("  %-50s %s\n", series, sample(text, series))
	}

	if *smoke {
		for _, series := range []string{"executor_swap_outs_total", "executor_swap_ins_total"} {
			v := sample(text, series)
			if v == "" || v == "0" {
				fmt.Fprintf(os.Stderr, "smoke: %s = %q, want non-zero\n", series, v)
				errExit = true
			}
		}
		if !errExit {
			fmt.Println("smoke: ok")
		}
	}
	if errExit {
		os.Exit(1)
	}
}

// sample pulls one raw sample value out of Prometheus exposition text.
func sample(text, series string) string {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest
		}
	}
	return ""
}

// driveCluster exercises the sharded service end to end: three tenants
// spread tensors over every shard through the cluster-aware client, every
// restore is verified bit-exact, one shard is drained live, and every
// migrated tensor must restore bit-exactly from its new shard.
func driveCluster(base string) error {
	ctx := context.Background()
	gen := cswap.NewTensorGenerator(7)
	mc := client.New(base)

	tenants := []string{"trainer-a", "trainer-b", "trainer-c"}
	clients := map[string]*client.ClusterClient{}
	for _, tn := range tenants {
		cc := client.NewCluster(base, client.WithTenant(tn))
		if err := cc.Refresh(ctx); err != nil {
			return fmt.Errorf("cluster: refresh: %w", err)
		}
		clients[tn] = cc
	}
	m := clients[tenants[0]].Map()
	fmt.Printf("cluster: %d shards, map version %d\n", len(m.Shards), m.Version)
	if len(m.Shards) < 2 {
		return fmt.Errorf("cluster: want a sharded daemon (cswapd -shards N), got %d shard(s)", len(m.Shards))
	}

	type key struct{ tenant, name string }
	want := map[key][]float32{}
	const perTenant = 12
	for _, tn := range tenants {
		cc := clients[tn]
		for i := 0; i < perTenant; i++ {
			name := fmt.Sprintf("layer%d/act", i)
			data := gen.Uniform(4096, float64(i%5)/5).Data
			want[key{tn, name}] = append([]float32(nil), data...)
			if err := cc.Register(ctx, name, data); err != nil {
				return fmt.Errorf("cluster: register %s/%s: %w", tn, name, err)
			}
			if err := cc.SwapOut(ctx, name); err != nil {
				return fmt.Errorf("cluster: swap-out %s/%s: %w", tn, name, err)
			}
		}
	}

	// verify restores every tensor bit-exactly and swaps it back out, so
	// each stage leaves the population swapped (the state a drain migrates).
	verify := func(stage string) error {
		for k, w := range want {
			got, err := clients[k.tenant].SwapIn(ctx, k.name)
			if err != nil {
				return fmt.Errorf("cluster: %s swap-in %s/%s: %w", stage, k.tenant, k.name, err)
			}
			exact := len(got) == len(w)
			for i := 0; exact && i < len(w); i++ {
				exact = math.Float32bits(got[i]) == math.Float32bits(w[i])
			}
			if !exact {
				return fmt.Errorf("cluster: %s restore of %s/%s is not bit-exact", stage, k.tenant, k.name)
			}
			if err := clients[k.tenant].SwapOut(ctx, k.name); err != nil {
				return fmt.Errorf("cluster: %s re-swap-out %s/%s: %w", stage, k.tenant, k.name, err)
			}
		}
		return nil
	}
	if err := verify("pre-drain"); err != nil {
		return err
	}

	// Every shard must have seen swap traffic: the ring spread the keys.
	text, err := mc.Metrics(ctx)
	if err != nil {
		return err
	}
	for _, s := range m.Shards {
		series := fmt.Sprintf(`executor_swap_outs_total{shard="%d"}`, s.ID)
		if v := sample(text, series); v == "" || v == "0" {
			return fmt.Errorf("cluster: %s = %q, want non-zero (keys not spread)", series, v)
		}
	}

	// Drain one shard live; its tensors migrate to the survivors.
	const victim = 1
	if err := clients[tenants[0]].DrainShard(ctx, victim); err != nil {
		return fmt.Errorf("cluster: drain shard %d: %w", victim, err)
	}
	m2 := clients[tenants[0]].Map()
	drained := false
	for _, s := range m2.Shards {
		if s.ID == victim && s.State == "drained" {
			drained = true
		}
	}
	if !drained || m2.Version <= m.Version {
		return fmt.Errorf("cluster: map after drain = %+v, want shard %d drained and a newer version", m2, victim)
	}
	if err := verify("post-drain"); err != nil {
		return err
	}
	text, err = mc.Metrics(ctx)
	if err != nil {
		return err
	}
	if v := sample(text, "cluster_rebalanced_tensors_total"); v == "" || v == "0" {
		return fmt.Errorf("cluster: cluster_rebalanced_tensors_total = %q, want non-zero", v)
	}
	fmt.Printf("cluster: drained shard %d, rebalanced %s tensors, all restores bit-exact\n",
		victim, sample(text, "cluster_rebalanced_tensors_total"))
	return nil
}

// driveKV drives the batch block API the way a paged-attention serving
// loop would: register one KV-cache pool, write every block once, then
// replay a deterministic decode trace — per step one batch-swap-out of
// the evicted IDs and one batch-swap-in of the returning ones, each
// restore verified bit-exact. It finishes with the head-to-head the
// batch path exists for: 64 single-block round trips versus one 64-block
// batch over the same connection, asserting the batch costs under 25% of
// the singles' wall time, and checks /metrics recorded batch traffic and
// a coalescing ratio below 1.
func driveKV(base string) error {
	ctx := context.Background()
	cfg := cswap.DefaultKVTrace()
	// 1 KiB blocks: small enough that per-request control cost, not codec
	// time, dominates a single-block swap — the regime paged KV caches
	// live in and the one batching exists to amortize.
	blockElems := 256
	numBlocks := cfg.Sequences * cfg.BlocksPerSeq

	c := client.New(base, client.WithTenant("decoder"))
	const pool = "layer0/kv"
	if err := c.RegisterPool(ctx, pool, blockElems, numBlocks); err != nil {
		return fmt.Errorf("kv: register pool: %w", err)
	}
	defer func() { _ = c.Free(context.Background(), pool) }()

	gen := cswap.NewTensorGenerator(11)
	want := gen.Uniform(numBlocks*blockElems, 0.5).Data
	allIDs := make([]int, numBlocks)
	for i := range allIDs {
		allIDs[i] = i
	}
	if err := c.WriteBlocks(ctx, pool, allIDs, want); err != nil {
		return fmt.Errorf("kv: write blocks: %w", err)
	}
	wantBlock := func(id int) []float32 {
		return want[id*blockElems : (id+1)*blockElems]
	}

	// Replay the decode trace: evictions leave as one coalesced batch per
	// step, restores return the same way, and every restored block must be
	// bit-exact.
	steps, blocksMoved := 0, 0
	for s, st := range cswap.GenKVTrace(cfg) {
		if len(st.Out) > 0 {
			if err := c.SwapOutBlocks(ctx, pool, st.Out); err != nil {
				return fmt.Errorf("kv: step %d swap-out %v: %w", s, st.Out, err)
			}
			blocksMoved += len(st.Out)
		}
		if len(st.In) > 0 {
			bd, err := c.SwapInBlocks(ctx, pool, st.In)
			if err != nil {
				return fmt.Errorf("kv: step %d swap-in %v: %w", s, st.In, err)
			}
			for _, id := range st.In {
				got, ok := bd.Block(id)
				if !ok {
					return fmt.Errorf("kv: step %d: block %d missing from batch result", s, id)
				}
				w := wantBlock(id)
				for i := range w {
					if math.Float32bits(got[i]) != math.Float32bits(w[i]) {
						return fmt.Errorf("kv: step %d: block %d not bit-exact at elem %d", s, id, i)
					}
				}
			}
			blocksMoved += len(st.In)
		}
		steps++
	}
	fmt.Printf("kv: replayed %d decode steps, %d blocks moved batched\n", steps, blocksMoved)

	// Head-to-head over the same loopback connection: equal byte volume,
	// only the per-operation control cost differs. Best-of-two per side
	// absorbs scheduler noise.
	batchIDs := allIDs[:64]
	if err := c.PrefetchBlocks(ctx, pool, allIDs); err != nil {
		return fmt.Errorf("kv: prefetch before timing: %w", err)
	}
	roundTrip := func(ids ...int) error {
		if err := c.SwapOutBlocks(ctx, pool, ids); err != nil {
			return err
		}
		_, err := c.SwapInBlocks(ctx, pool, ids)
		return err
	}
	if err := roundTrip(batchIDs...); err != nil { // warm the path
		return fmt.Errorf("kv: warmup: %w", err)
	}
	best := func(f func() error) (time.Duration, error) {
		min := time.Duration(math.MaxInt64)
		for i := 0; i < 2; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < min {
				min = d
			}
		}
		return min, nil
	}
	singles, err := best(func() error {
		for _, id := range batchIDs {
			if err := roundTrip(id); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("kv: single-block round trips: %w", err)
	}
	batched, err := best(func() error { return roundTrip(batchIDs...) })
	if err != nil {
		return fmt.Errorf("kv: batched round trip: %w", err)
	}
	ratio := float64(batched) / float64(singles)
	fmt.Printf("kv: 64 single-block round trips %v, one 64-block batch %v (%.1f%%)\n",
		singles, batched, ratio*100)
	if ratio >= 0.25 {
		return fmt.Errorf("kv: batch took %.1f%% of single-block time, want < 25%%", ratio*100)
	}

	// The service and executor must have accounted the batches: request
	// and block counters moved, and the coalescing histogram saw ratios —
	// strictly fewer runs than blocks, or the run merge did nothing.
	text, err := client.New(base).Metrics(ctx)
	if err != nil {
		return err
	}
	for _, series := range []string{
		`server_batch_requests_total{op="swap-out"}`,
		`server_batch_blocks_total{op="swap-out"}`,
		`server_batch_blocks_total{op="swap-in"}`,
		"executor_batch_coalescing_ratio_count",
	} {
		if v := sample(text, series); v == "" || v == "0" {
			return fmt.Errorf("kv: %s = %q, want non-zero", series, v)
		}
	}
	var runs, blocks float64
	fmt.Sscan(sample(text, "executor_batch_runs_total"), &runs)
	fmt.Sscan(sample(text, "executor_batch_blocks_total"), &blocks)
	if runs <= 0 || blocks <= 0 || runs >= blocks {
		return fmt.Errorf("kv: executor saw %v runs for %v blocks, want coalescing (runs < blocks)", runs, blocks)
	}
	fmt.Printf("kv: coalesced %v blocks into %v runs (ratio %.3f)\n", blocks, runs, runs/blocks)
	return nil
}

// driveDrift swaps a dense workload through the Auto selector until the
// tuner issues a Huffman verdict, then switches the workload sparse and
// waits for the tuner's codec-switch counter to move. Each phase keeps the
// workload live (the tuner only acts on tenants with fresh evidence) and
// fails after a deadline.
// drivePressure overflows the daemon's pinned-host pool on purpose: eight
// raw swap-outs whose blobs cannot all fit must still succeed by demoting
// cold blobs to the disk tier, the tier counters must move with zero quota
// rejections, and every restore must come back bit-exact through the
// promote path. It then frees everything so the tier directory is clean
// for a restart leg.
func drivePressure(base string) error {
	ctx := context.Background()
	const (
		tenant   = "pressured"
		nTensors = 8
		elems    = 96 * 1024 // 384 KiB raw per blob; a -host 1 pool fits two
	)
	c := client.New(base, client.WithTenant(tenant))
	gen := cswap.NewTensorGenerator(42)

	payloads := make([][]float32, nTensors)
	for i := range payloads {
		name := fmt.Sprintf("p%d", i)
		data := gen.Uniform(elems, 0.5).Data
		payloads[i] = append([]float32(nil), data...)
		if err := c.Register(ctx, name, data); err != nil {
			return fmt.Errorf("pressure: register %s: %w", name, err)
		}
		// Raw swap-outs keep the blob sizes deterministic, so the overflow
		// is guaranteed regardless of codec behavior.
		if err := c.SwapOut(ctx, name, client.WithRaw()); err != nil {
			return fmt.Errorf("pressure: swap-out %s overflowed instead of demoting: %w", name, err)
		}
	}

	text, err := client.New(base).Metrics(ctx)
	if err != nil {
		return err
	}
	demotions := sample(text, "executor_tier_demotions_total")
	if demotions == "" || demotions == "0" {
		return fmt.Errorf("pressure: executor_tier_demotions_total = %q, want non-zero", demotions)
	}
	fmt.Printf("pressure: executor_tier_demotions_total = %s\n", demotions)
	rejections := sample(text, `server_quota_rejections_total{tenant="`+tenant+`"}`)
	if rejections != "" && rejections != "0" {
		return fmt.Errorf("pressure: server_quota_rejections_total = %s, want zero", rejections)
	}

	for i := range payloads {
		name := fmt.Sprintf("p%d", i)
		got, err := c.SwapIn(ctx, name)
		if err != nil {
			return fmt.Errorf("pressure: swap-in %s: %w", name, err)
		}
		for j := range payloads[i] {
			if math.Float32bits(got[j]) != math.Float32bits(payloads[i][j]) {
				return fmt.Errorf("pressure: %s restored[%d] = %v, want %v", name, j, got[j], payloads[i][j])
			}
		}
		if err := c.Free(ctx, name); err != nil {
			return fmt.Errorf("pressure: free %s: %w", name, err)
		}
	}
	return nil
}

// driveSLO exercises the SLO-aware admission scheduler end to end: four
// goroutines saturate the speculative lane with prefetches while a train
// of deadline-bound critical swap rounds rides over them. The flood is
// entitled to refusals (saturated lanes, expiries, sheds) — that lane is
// best-effort by contract — but every critical restore must come back
// bit-exact, and /metrics must show both lanes admitted with zero
// critical expiries.
func driveSLO(base string) error {
	ctx := context.Background()
	const (
		tenant = "slo-tenant"
		nSpec  = 6
		nCrit  = 2
		rounds = 20
		elems  = 16 * 1024
	)
	c := client.New(base, client.WithTenant(tenant))
	gen := cswap.NewTensorGenerator(42)

	// Speculative working set: swapped out once, then prefetched in a loop
	// by the flood goroutines below.
	for i := 0; i < nSpec; i++ {
		name := fmt.Sprintf("spec%d", i)
		if err := c.Register(ctx, name, gen.Uniform(elems, 0.6).Data); err != nil {
			return fmt.Errorf("slo: register %s: %w", name, err)
		}
		if err := c.SwapOut(ctx, name); err != nil {
			return fmt.Errorf("slo: swap-out %s: %w", name, err)
		}
	}
	crit := make([][]float32, nCrit)
	for i := range crit {
		name := fmt.Sprintf("crit%d", i)
		data := gen.Uniform(elems, 0.4).Data
		crit[i] = append([]float32(nil), data...)
		if err := c.Register(ctx, name, data); err != nil {
			return fmt.Errorf("slo: register %s: %w", name, err)
		}
	}

	floodCtx, stopFlood := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fc := client.New(base, client.WithTenant(tenant))
			for i := 0; floodCtx.Err() == nil; i++ {
				callCtx, cancel := context.WithTimeout(floodCtx, 250*time.Millisecond)
				_ = fc.Prefetch(callCtx, fmt.Sprintf("spec%d", (g+i)%nSpec),
					client.WithLane(client.LaneSpeculative),
					client.WithDeadline(100*time.Millisecond))
				cancel()
			}
		}(g)
	}

	// Critical train: a deadline the scheduler can trivially meet once the
	// lane outranks the flood, and a hard bit-exactness check per restore.
	var critErr error
	for r := 0; r < rounds && critErr == nil; r++ {
		for i := range crit {
			name := fmt.Sprintf("crit%d", i)
			if err := c.SwapOut(ctx, name,
				client.WithLane(client.LaneCritical), client.WithDeadline(10*time.Second)); err != nil {
				critErr = fmt.Errorf("slo: critical swap-out %s round %d: %w", name, r, err)
				break
			}
			got, err := c.SwapIn(ctx, name,
				client.WithLane(client.LaneCritical), client.WithDeadline(10*time.Second))
			if err != nil {
				critErr = fmt.Errorf("slo: critical swap-in %s round %d: %w", name, r, err)
				break
			}
			for j := range crit[i] {
				if math.Float32bits(got[j]) != math.Float32bits(crit[i][j]) {
					critErr = fmt.Errorf("slo: %s restored[%d] = %v, want %v", name, j, got[j], crit[i][j])
					break
				}
			}
		}
	}
	stopFlood()
	wg.Wait()
	if critErr != nil {
		return critErr
	}

	text, err := client.New(base).Metrics(ctx)
	if err != nil {
		return err
	}
	for _, series := range []string{
		`server_sched_admits_total{lane="critical"}`,
		`server_sched_admits_total{lane="speculative"}`,
	} {
		v := sample(text, series)
		if v == "" || v == "0" {
			return fmt.Errorf("slo: %s = %q, want non-zero (is the daemon running -sched?)", series, v)
		}
		fmt.Printf("slo: %s = %s\n", series, v)
	}
	if exp := sample(text, `server_sched_expiries_total{lane="critical"}`); exp != "" && exp != "0" {
		return fmt.Errorf("slo: server_sched_expiries_total{lane=\"critical\"} = %s, want zero", exp)
	}
	fmt.Println("slo: critical expiries = 0")
	return nil
}

func driveDrift(base string) error {
	ctx := context.Background()
	const tenant = "drifter"
	c := client.New(base, client.WithTenant(tenant))
	gen := cswap.NewTensorGenerator(42)
	mc := client.New(base)

	cycle := func(name string) error {
		if err := c.SwapOut(ctx, name); err != nil {
			return fmt.Errorf("drift: swap-out %s: %w", name, err)
		}
		if _, err := c.SwapIn(ctx, name); err != nil {
			return fmt.Errorf("drift: swap-in %s: %w", name, err)
		}
		return nil
	}
	// Prometheus label sets are alphabetical, so codec sorts before tenant.
	waitSeries := func(name, series string) error {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if err := cycle(name); err != nil {
				return err
			}
			text, err := mc.Metrics(ctx)
			if err != nil {
				return err
			}
			if v := sample(text, series); v != "" && v != "0" {
				fmt.Printf("drift: %s = %s\n", series, v)
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		return fmt.Errorf("drift: %s never moved", series)
	}

	if err := c.Register(ctx, "act0", gen.Uniform(16384, 0).Data); err != nil {
		return err
	}
	if err := waitSeries("act0",
		`server_tuner_verdicts_total{codec="HUF",tenant="`+tenant+`"}`); err != nil {
		return err
	}
	if err := c.Free(ctx, "act0"); err != nil {
		return err
	}
	if err := c.Register(ctx, "act1", gen.Uniform(16384, 0.95).Data); err != nil {
		return err
	}
	return waitSeries("act1",
		`server_tuner_codec_switches_total{tenant="`+tenant+`"}`)
}
