// Framework-comparison: evaluate all five swapping frameworks (vDNN,
// vDNN++, SC, CSWAP, Orac) on one workload through the public API — a
// single cell of the paper's Figure 6.
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap"
)

func main() {
	modelName := flag.String("model", "SqueezeNet", "one of the six evaluated DNNs")
	gpuName := flag.String("gpu", "V100", "V100 or 2080Ti")
	datasetName := flag.String("dataset", "ImageNet", "CIFAR10 or ImageNet")
	flag.Parse()

	ds := cswap.ImageNet
	if *datasetName == "CIFAR10" {
		ds = cswap.CIFAR10
	}
	device, err := cswap.DeviceByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := cswap.BatchSize(*modelName, *gpuName, ds)
	if err != nil {
		log.Fatal(err)
	}
	model, err := cswap.BuildModel(*modelName, ds, batch)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{
		Model: model, Device: device, Seed: 1, SamplesPerAlg: 1000,
	})
	if err != nil {
		log.Fatal(err)
	}

	frameworks := []cswap.SwapFramework{
		cswap.VDNN{},
		cswap.VDNNPP{},
		cswap.Static{Launch: fw.Launch},
		fw.Planner(),
		cswap.Orac{Inner: fw.Planner()},
	}

	fmt.Printf("%s / %s / %s (batch %d), averaged over epochs 0,5,...,45:\n\n",
		*modelName, *gpuName, ds.Name, batch)
	fmt.Printf("%-8s %14s %14s %16s %12s\n",
		"", "iter time(ms)", "samples/s", "swap stall(ms)", "normalized")

	totals := map[string]*cswap.SimResult{}
	var order []string
	for epoch := 0; epoch < 50; epoch += 5 {
		np, err := fw.ProfileAt(epoch)
		if err != nil {
			log.Fatal(err)
		}
		opt := cswap.NewSimOptions(cswap.WithSeed(int64(epoch)))
		for _, f := range frameworks {
			r, err := cswap.Simulate(model, device, np, f.Plan(np, device), opt)
			if err != nil {
				log.Fatal(err)
			}
			acc := totals[f.Name()]
			if acc == nil {
				acc = &cswap.SimResult{Framework: f.Name()}
				totals[f.Name()] = acc
				order = append(order, f.Name())
			}
			acc.IterationTime += r.IterationTime
			acc.Throughput += r.Throughput
			acc.SwapExposed += r.SwapExposed
		}
	}
	const n = 10.0
	base := totals["vDNN"].Throughput
	for _, name := range order {
		r := totals[name]
		fmt.Printf("%-8s %14.1f %14.0f %16.1f %11.2fx\n",
			name, r.IterationTime/n*1e3, r.Throughput/n, r.SwapExposed/n*1e3,
			r.Throughput/base)
	}
}
