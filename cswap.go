// Package cswap is a self-tuning tensor-compression framework for
// accelerating tensor swapping between GPU and host memory during DNN
// training — a from-scratch Go reproduction of "CSWAP: A Self-Tuning
// Compression Framework for Accelerating Tensor Swapping in GPUs"
// (IEEE CLUSTER 2021).
//
// The package is organised around three runtime components (Figure 4 of
// the paper):
//
//   - the tensor profiler collects tensor sizes, per-layer times, link
//     bandwidth, and per-epoch sparsity into an in-memory database;
//   - the execution advisor applies the swapping-cost model (Eq. 1–4) with
//     kernel times predicted by an offline-trained, sparsity-bucketed
//     linear-regression model, choosing per tensor whether and with which
//     codec (ZVC, RLE, CSR, LZ4) to compress;
//   - the swapping executor runs (de)compression on the GPU at a launch
//     geometry tuned by Bayesian optimization (Algorithm 1).
//
// Because this reproduction is hardware-free, GPUs, the PCIe link, and DNN
// training are provided as calibrated simulation substrates (see DESIGN.md),
// while the four compression codecs are real and operate on actual float32
// tensors.
//
// Quick start:
//
//	model, _ := cswap.BuildModel("VGG16", cswap.ImageNet, 128)
//	fw, _ := cswap.NewFramework(cswap.Config{Model: model, Device: cswap.V100(), Seed: 1})
//	result, _ := fw.SimulateIteration(10, cswap.NewSimOptions(cswap.WithSeed(1)))
//	fmt.Println(result.IterationTime, result.Throughput)
//
// Attach an Observer (Config.Observer, ExecutorConfig.Observer, or
// WithObserver) to record metrics, spans, and events from every layer; see
// the Observability section of DESIGN.md.
package cswap

import (
	"io"

	"cswap/internal/bayesopt"
	"cswap/internal/compress"
	"cswap/internal/core"
	"cswap/internal/costmodel"
	"cswap/internal/dnn"
	"cswap/internal/executor"
	"cswap/internal/faultinject"
	"cswap/internal/gpu"
	"cswap/internal/memdb"
	"cswap/internal/metrics"
	"cswap/internal/profiler"
	"cswap/internal/server"
	"cswap/internal/sim"
	"cswap/internal/sparsity"
	"cswap/internal/swap"
	"cswap/internal/tensor"
	"cswap/internal/trace"
)

// ---------------------------------------------------------------------------
// Devices and workloads.

type (
	// Device models one GPU (compute roofline, memory, PCIe link, and the
	// compression-kernel time surface).
	Device = gpu.Device
	// Model is a compiled DNN with inferred activation shapes.
	Model = dnn.Model
	// Dataset describes a training set's input geometry.
	Dataset = dnn.Dataset
	// SwapTensor identifies one swappable ReLU/MAX activation.
	SwapTensor = dnn.SwapTensor
	// NetworkProfile is the tensor profiler's output (Table II).
	NetworkProfile = profiler.NetworkProfile
)

// The two evaluated datasets.
var (
	CIFAR10  = dnn.CIFAR10
	ImageNet = dnn.ImageNet
)

// V100 returns the paper's first test GPU (Tesla V100 32 GB).
func V100() *Device { return gpu.V100() }

// RTX2080Ti returns the paper's second test GPU (RTX 2080Ti 11 GB).
func RTX2080Ti() *Device { return gpu.RTX2080Ti() }

// DeviceByName resolves "V100" or "2080Ti".
func DeviceByName(name string) (*Device, error) { return gpu.ByName(name) }

// KernelParams identifies one (de)compression kernel execution on a device.
type KernelParams = gpu.KernelParams

// CompressionKernelTime returns the device model's compression and
// decompression wall-clock for a tensor under a launch geometry — the
// Figure 5 surface.
func CompressionKernelTime(d *Device, a Algorithm, sizeBytes int64, sparsity float64, l Launch) (comp, decomp float64) {
	return d.CompressionTime(gpu.KernelParams{Alg: a, SizeBytes: sizeBytes, Sparsity: sparsity, Launch: l})
}

// ModelNames lists the six evaluated DNNs.
func ModelNames() []string { return dnn.ModelNames() }

// BuildModel constructs one of the six evaluated DNNs at a batch size.
func BuildModel(name string, ds Dataset, batch int) (*Model, error) {
	return dnn.Build(name, ds, batch)
}

// BatchSize returns the Table III batch size for (model, GPU, dataset); it
// returns dnn.ErrOutOfMemory for combinations that cannot train.
func BatchSize(model, gpuName string, ds Dataset) (int, error) {
	return dnn.BatchSize(model, gpuName, ds)
}

// ---------------------------------------------------------------------------
// Compression codecs.

type (
	// Algorithm identifies a compression algorithm.
	Algorithm = compress.Algorithm
	// Codec compresses and decompresses float32 tensors bit-exactly.
	Codec = compress.Codec
	// Launch is a GPU kernel launch geometry (grid, block).
	Launch = compress.Launch
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// TensorGenerator produces synthetic sparse tensors.
	TensorGenerator = tensor.Generator
)

// The four supported algorithms (Section IV-E), plus the Huffman entropy
// coder implemented as the paper's future-work extension.
const (
	ZVC     = compress.ZVC
	RLE     = compress.RLE
	CSR     = compress.CSR
	LZ4     = compress.LZ4
	Huffman = compress.Huffman
)

// Algorithms lists the paper's four codecs.
func Algorithms() []Algorithm { return compress.Algorithms() }

// ExtendedAlgorithms lists the four plus the Huffman extension.
func ExtendedAlgorithms() []Algorithm { return compress.ExtendedAlgorithms() }

// NewCodec returns the codec for an algorithm.
func NewCodec(a Algorithm) (Codec, error) { return compress.New(a) }

// ParallelEncode compresses src partitioned across launch.Grid chunks, the
// way the GPU kernels partition a tensor across thread blocks.
func ParallelEncode(a Algorithm, src []float32, launch Launch) ([]byte, error) {
	return compress.ParallelEncode(a, src, launch)
}

// ParallelDecode reverses ParallelEncode.
func ParallelDecode(blob []byte, launch Launch) ([]float32, error) {
	return compress.ParallelDecode(blob, launch)
}

// EstimateRatio predicts compressed/original size for a sparsity level.
func EstimateRatio(a Algorithm, sparsity float64) float64 {
	return compress.EstimateRatio(a, sparsity)
}

// Compression error taxonomy: ErrTruncated and ErrCorrupt are data-level
// failures a caller holding a pristine copy can retry (see
// RecoverableError); ErrAlgorithmMismatch is structural misuse.
var (
	ErrTruncated         = compress.ErrTruncated
	ErrCorrupt           = compress.ErrCorrupt
	ErrAlgorithmMismatch = compress.ErrAlgorithmMismatch
)

// ChunkError pins a parallel-container failure to the codec and chunk that
// produced it.
type ChunkError = compress.ChunkError

// RecoverableError reports whether a (de)compression error is a data-level
// failure worth retrying from a pristine copy of the blob.
func RecoverableError(err error) bool { return compress.Recoverable(err) }

// NewTensorGenerator returns a deterministic synthetic tensor source.
func NewTensorGenerator(seed int64) *TensorGenerator { return tensor.NewGenerator(seed) }

// ---------------------------------------------------------------------------
// KV-cache decode traces (paged block pools).

type (
	// KVStep is one decode step's batch swap traffic: the block IDs
	// leaving the device and the block IDs returning.
	KVStep = sim.KVStep
	// KVTraceConfig configures GenKVTrace; see DefaultKVTrace.
	KVTraceConfig = sim.KVTraceConfig
)

// DefaultKVTrace is a serving-shaped decode workload: contiguous
// per-sequence block regions, periodic whole-region evictions, and a
// fragmented single-block tail.
func DefaultKVTrace() KVTraceConfig { return sim.DefaultKVTrace() }

// GenKVTrace generates the deterministic decode-step trace for cfg: the
// same config always yields the same steps.
func GenKVTrace(cfg KVTraceConfig) []KVStep { return sim.GenKVTrace(cfg) }

// ---------------------------------------------------------------------------
// The CSWAP framework.

type (
	// Config configures a CSWAP deployment.
	Config = core.Config
	// Framework is a ready-to-run CSWAP deployment: tuned launch, trained
	// time predictor, collected profile, and the execution advisor.
	Framework = core.Framework
	// Decision is one advisor verdict with its Eq. 1/2 costs.
	Decision = costmodel.Decision
	// CostParams are the Table II inputs to the swapping-cost model.
	CostParams = costmodel.Params
)

// NewFramework tunes, trains, and profiles a CSWAP deployment.
func NewFramework(cfg Config) (*Framework, error) { return core.New(cfg) }

// DB is the in-memory profile/model database (Section IV-A).
type DB = memdb.DB

// NewDB returns an empty in-memory database.
func NewDB() *DB { return memdb.New() }

// ResumeFramework rebuilds a deployment from a previously populated
// database, skipping the BO search, sample generation, and profiling pass.
func ResumeFramework(db *DB, m *Model, d *Device, cfg Config) (*Framework, error) {
	return core.Resume(db, m, d, cfg)
}

// Decide applies the Section IV-B cost-effectiveness rule directly.
func Decide(p CostParams) Decision { return costmodel.Decide(p) }

// ---------------------------------------------------------------------------
// Swapping frameworks and the iteration simulator.

type (
	// SwapFramework plans per-tensor swapping decisions (vDNN, vDNN++,
	// SC, CSWAP, Orac).
	SwapFramework = swap.Framework
	// Plan is a per-iteration set of tensor decisions.
	Plan = swap.Plan
	// TensorPlan is one tensor's decision within a Plan.
	TensorPlan = swap.TensorPlan
	// SimOptions control a simulated training iteration.
	SimOptions = swap.Options
	// SimResult is the emergent timing of one iteration.
	SimResult = swap.Result
	// Timeline records per-stream execution spans (Figure 2 style).
	Timeline = trace.Timeline

	// VDNN is the no-compression baseline.
	VDNN = swap.VDNN
	// VDNNPP compresses on the host CPU (vDNN++).
	VDNNPP = swap.VDNNPP
	// Static is the GPU replica of cDMA's always-compress scheme.
	Static = swap.Static
	// CSWAPPlanner is the paper's selective framework.
	CSWAPPlanner = swap.CSWAP
	// Orac is the zero-cost-compression oracle.
	Orac = swap.Orac
	// MemoryAware wraps any framework with an activation-memory budget:
	// the most stall-expensive tensors stay resident while they fit.
	MemoryAware = swap.MemoryAware
)

// PlanPeakBytes estimates the device activation memory a plan needs.
func PlanPeakBytes(np *NetworkProfile, plan *Plan) int64 {
	return swap.PlanPeakBytes(np, plan)
}

// DefaultSimOptions returns the standard jitter/interference configuration.
//
// Deprecated: use NewSimOptions(WithSeed(seed)) — the functional-options
// constructor composes with the observability and ablation switches.
func DefaultSimOptions(seed int64) SimOptions { return swap.DefaultOptions(seed) }

// SimOption mutates SimOptions; see NewSimOptions.
type SimOption = swap.Option

// NewSimOptions returns the standard jitter/interference configuration with
// opts applied in order.
//
//	opt := cswap.NewSimOptions(cswap.WithSeed(1), cswap.WithObserver(obs))
func NewSimOptions(opts ...SimOption) SimOptions { return swap.NewOptions(opts...) }

// WithSeed sets the jitter stream seed.
func WithSeed(seed int64) SimOption { return swap.WithSeed(seed) }

// WithJitter sets the log-normal duration jitter σ (0 disables noise).
func WithJitter(sigma float64) SimOption { return swap.WithJitter(sigma) }

// WithInterference sets the SM-contention fraction charged to the compute
// stream for software compression kernels.
func WithInterference(f float64) SimOption { return swap.WithInterference(f) }

// WithSimTrace records every simulated job as a span on t.
func WithSimTrace(t *Timeline) SimOption { return swap.WithTrace(t) }

// WithObserver attaches the unified observability surface to the run.
func WithObserver(o *Observer) SimOption { return swap.WithObserver(o) }

// WithPipelinedCodec toggles the double-buffered-swapping ablation.
func WithPipelinedCodec(on bool) SimOption { return swap.WithPipelinedCodec(on) }

// WithEagerPrefetch toggles the issue-all-prefetches-at-backward-start
// prefetch policy.
func WithEagerPrefetch(on bool) SimOption { return swap.WithEagerPrefetch(on) }

// Simulate runs one training iteration of model under plan on device.
func Simulate(m *Model, d *Device, np *NetworkProfile, plan *Plan, opt SimOptions) (*SimResult, error) {
	return swap.Simulate(m, d, np, plan, opt)
}

// ---------------------------------------------------------------------------
// Functional swapping executor (real data movement).

type (
	// Executor moves real tensors between fixed-capacity device and
	// pinned-host pools through the real codecs, verifying bit-exact
	// restores — the data path of the paper's swapping executor.
	Executor = executor.Executor
	// ExecutorConfig sizes the pools and sets the kernel partitioning.
	ExecutorConfig = executor.Config
	// TensorHandle identifies one registered tensor.
	TensorHandle = executor.Handle
	// ExecutorStats accumulates executor activity, including graceful
	// degradation counters (raw fallbacks, decode retries/recoveries).
	ExecutorStats = executor.Stats
	// IterationReport summarises one functional training iteration.
	IterationReport = executor.IterationReport
	// SparsityProfile holds per-tensor sparsity trajectories over epochs.
	SparsityProfile = sparsity.Profile
	// SwapTicket is the awaitable future returned by the asynchronous
	// swap API (Executor.SwapOutAsync / SwapInAsync / Prefetch): Wait
	// blocks for the operation's outcome, Done supports select.
	SwapTicket = executor.Ticket
	// HandleState is a tensor handle's storage state (resident, swapped,
	// freed, or one of the transitional swapping states an in-flight
	// operation holds).
	HandleState = executor.State
)

// Executor errors a caller may want to test for.
var (
	// ErrHandleBusy reports that another swap holds the handle; wait for
	// the in-flight operation (its SwapTicket, or the synchronous call)
	// and retry.
	ErrHandleBusy = executor.ErrBusy
	// ErrExecutorClosed reports a Register or async submission after
	// Executor.Close.
	ErrExecutorClosed = executor.ErrClosed
)

// DefaultMaxInFlight is the async pipeline's bounded in-flight window when
// ExecutorConfig.MaxInFlight is zero.
const DefaultMaxInFlight = executor.DefaultMaxInFlight

// NewExecutor creates a functional swapping executor. Each tensor handle
// is guarded by a state machine — concurrent misuse of one handle returns
// ErrHandleBusy instead of corrupting memory — and the asynchronous API
// (SwapOutAsync, SwapInAsync, Prefetch, Drain) pipelines swaps through a
// bounded in-flight window so transfers overlap compute.
func NewExecutor(cfg ExecutorConfig) (*Executor, error) { return executor.New(cfg) }

// ---------------------------------------------------------------------------
// Fault injection (data-path hardening).

type (
	// FaultInjector deterministically injects data-path faults (corrupted
	// blobs, truncated transfers, failed allocations, delayed codec work)
	// into an Executor via ExecutorConfig.Faults. A nil injector is valid
	// and injects nothing.
	FaultInjector = faultinject.Injector
	// Fault arms one data-path site with one failure mode.
	Fault = faultinject.Fault
	// FaultSite names an interception point on the swapping data path.
	FaultSite = faultinject.Site
	// FaultMode is what an armed fault does when it fires.
	FaultMode = faultinject.Mode
	// FaultStats counts fired faults by mode.
	FaultStats = faultinject.Stats
)

// ErrInjected is the sentinel wrapped by every injected failure.
var ErrInjected = faultinject.ErrInjected

// Fault modes.
const (
	FaultFail     = faultinject.Fail
	FaultCorrupt  = faultinject.Corrupt
	FaultTruncate = faultinject.Truncate
	FaultDelay    = faultinject.Delay
)

// Fault-injection sites on the swapping data path.
const (
	FaultSiteEncode      = faultinject.SiteEncode
	FaultSiteDecode      = faultinject.SiteDecode
	FaultSiteHostAlloc   = faultinject.SiteHostAlloc
	FaultSiteDeviceAlloc = faultinject.SiteDeviceAlloc
	FaultSiteTransferOut = faultinject.SiteTransferOut
	FaultSiteTransferIn  = faultinject.SiteTransferIn
)

// NewFaultInjector returns an injector with the given faults armed.
func NewFaultInjector(faults ...Fault) *FaultInjector { return faultinject.New(faults...) }

// SparsityForModel builds the per-epoch sparsity trajectories for a
// model's swappable tensors.
func SparsityForModel(m *Model, epochs int, seed int64) *SparsityProfile {
	return sparsity.ForModel(m, epochs, seed)
}

// RunFunctionalIteration executes one training iteration with real tensor
// data: activations are synthesised at the epoch's sparsity, swapped out
// per the plan through the real codecs, swapped back in during the
// backward pass, and verified bit-exactly. scaleDiv divides tensor sizes
// so multi-GB workloads fit test-sized pools.
func RunFunctionalIteration(e *Executor, m *Model, plan *Plan, sp *SparsityProfile, epoch, scaleDiv int, seed int64) (*IterationReport, error) {
	return executor.RunIteration(e, m, plan, sp, epoch, scaleDiv, seed)
}

// MinDeviceCapacity and HostCapacityFor size executor pools for a scaled
// workload.
func MinDeviceCapacity(m *Model, scaleDiv int) int64 {
	return executor.MinDeviceCapacity(m, scaleDiv)
}

// HostCapacityFor sizes the pinned pool for an all-raw worst case.
func HostCapacityFor(m *Model, scaleDiv int) int64 {
	return executor.HostCapacityFor(m, scaleDiv)
}

// ---------------------------------------------------------------------------
// GPU-parameter search (Section IV-D).

type (
	// Searcher finds a kernel launch geometry (BO, RD, EP, GS).
	Searcher = bayesopt.Searcher
	// SearchObjective evaluates one launch.
	SearchObjective = bayesopt.Objective
	// SearchResult summarises a completed search.
	SearchResult = bayesopt.Result
	// BayesOpt is Algorithm 1 (s1 random + s2 guided probes).
	BayesOpt = bayesopt.BO
	// RandomSearch is the RD baseline.
	RandomSearch = bayesopt.RandomSearch
	// ExpertChoice is the EP baseline.
	ExpertChoice = bayesopt.Expert
	// GridSearch is the exhaustive GS oracle.
	GridSearch = bayesopt.GridSearch
)

// ---------------------------------------------------------------------------
// Observability: the unified metrics + tracing surface.

type (
	// Observer is the single instrumentation surface threaded through the
	// stack: a metrics registry, an optional span timeline, and an optional
	// structured event hook. Attach one via Config.Observer,
	// ExecutorConfig.Observer, or WithObserver; a nil Observer is valid
	// everywhere and costs ~zero on the hot path.
	Observer = metrics.Observer
	// ObserverEvent is one structured notification (a BO probe, a codec
	// fallback, an iteration boundary) delivered to Observer.OnEvent.
	ObserverEvent = metrics.Event
	// MetricsRegistry holds named counters, gauges, and log-bucketed
	// histograms, labeled by codec/tensor/site.
	MetricsRegistry = metrics.Registry
	// MetricsLabel is one key=value dimension on a metric series.
	MetricsLabel = metrics.Label
	// MetricsSnapshot is a point-in-time, deterministically ordered export
	// of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricsSink writes snapshots somewhere (JSON lines, Prometheus text).
	MetricsSink = metrics.Sink
	// JSONLinesSink writes one self-describing JSON object per series.
	JSONLinesSink = metrics.JSONLines
	// PrometheusSink writes Prometheus text exposition format 0.0.4.
	PrometheusSink = metrics.Prometheus
)

// NewObserver returns an observer with a fresh registry and timeline and no
// event hook.
func NewObserver() *Observer { return metrics.NewObserver() }

// MetricLabel builds one metric label.
func MetricLabel(key, value string) MetricsLabel { return metrics.L(key, value) }

// ParseMetricsJSONLines reads a JSONLinesSink export back into a snapshot.
func ParseMetricsJSONLines(r io.Reader) (*MetricsSnapshot, error) {
	return metrics.ParseJSONLines(r)
}

// ---------------------------------------------------------------------------
// Swap service (cswapd): multi-tenant serving over the executor.

type (
	// SwapServer is the network-facing swap service: it multiplexes
	// per-tenant tensor sessions onto one Executor behind an HTTP + binary
	// frame protocol, with quotas, admission control, and /metrics. Mount
	// SwapServer.Handler on any listener, or run the cswapd daemon.
	SwapServer = server.Server
	// SwapServerConfig sizes the service's executor and sets its tenant
	// quotas, admission window, and shutdown hints.
	//
	// Deprecated: build services with NewSwapService and SwapServerOption
	// functional options instead.
	SwapServerConfig = server.Config
	// SwapServerOption is one functional option for NewSwapService and
	// NewSwapCluster (shard count, pool capacities, quotas, tuner, ...).
	SwapServerOption = server.Option
	// SwapCluster is the sharded swap service: N complete SwapServers
	// behind a consistent-hash router, with per-shard admission and live
	// shard drain (see cswapd -shards).
	SwapCluster = server.Cluster
	// SwapTunerConfig configures the online per-tenant tuner each server
	// (or cluster shard) runs.
	SwapTunerConfig = server.TunerConfig
)

// Functional options for NewSwapService and NewSwapCluster, mirroring
// NewSimOptions' style. WithServerObserver is named to avoid colliding
// with the simulator's WithObserver.
var (
	// WithSwapShards sets the cluster's shard count (NewSwapCluster).
	WithSwapShards = server.WithShards
	// WithSwapDeviceCapacity sizes each shard's device pool in bytes.
	WithSwapDeviceCapacity = server.WithDeviceCapacity
	// WithSwapHostCapacity sizes each shard's pinned-host pool in bytes.
	WithSwapHostCapacity = server.WithHostCapacity
	// WithSwapMaxInFlight bounds each shard's admission window.
	WithSwapMaxInFlight = server.WithMaxInFlight
	// WithSwapTenantQuota sets the per-tenant device quota, per shard.
	WithSwapTenantQuota = server.WithTenantQuota
	// WithSwapVerify enables checksum verification of every restore.
	WithSwapVerify = server.WithVerify
	// WithSwapLaunch sets the initial codec launch geometry.
	WithSwapLaunch = server.WithLaunch
	// WithSwapTuner configures the online per-tenant tuner.
	WithSwapTuner = server.WithTuner
	// WithServerObserver attaches an instrumentation surface to the service.
	WithServerObserver = server.WithObserver
)

// Swap-service errors a caller may want to test for.
var (
	// ErrTenantQuotaExceeded reports a register refused by the tenant's
	// device-memory quota (before the shared pool was touched).
	ErrTenantQuotaExceeded = server.ErrQuotaExceeded
	// ErrUnknownTensor reports a swap operation on a name the tenant never
	// registered or already freed.
	ErrUnknownTensor = server.ErrUnknownTensor
	// ErrAlreadyRegistered reports a duplicate register within a tenant.
	ErrAlreadyRegistered = server.ErrAlreadyRegistered
)

// NewSwapServer builds a swap service and its executor. The caller owns
// the listener: mount Handler, and on shutdown stop the listener first,
// then Close the server to drain and close the executor.
//
// Deprecated: use NewSwapService with functional options.
func NewSwapServer(cfg SwapServerConfig) (*SwapServer, error) { return server.New(cfg) }

// NewSwapService builds a single-shard swap service from functional
// options — the options-first replacement for NewSwapServer:
//
//	svc, err := cswap.NewSwapService(
//		cswap.WithSwapDeviceCapacity(1<<30),
//		cswap.WithSwapHostCapacity(4<<30),
//	)
func NewSwapService(opts ...SwapServerOption) (*SwapServer, error) { return server.NewServer(opts...) }

// NewSwapCluster builds a sharded swap service: WithSwapShards(n)
// complete shards behind a consistent-hash router, each shard sized by
// the same per-shard options NewSwapService takes.
func NewSwapCluster(opts ...SwapServerOption) (*SwapCluster, error) { return server.NewCluster(opts...) }
