module cswap

go 1.22
