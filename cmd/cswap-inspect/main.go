// Command cswap-inspect prints the workload a CSWAP deployment would see:
// the model's layer table with shapes, FLOPs, and modeled times on the
// chosen GPU, the swappable tensors with their hiding windows, and the
// memory accounting that motivates swapping.
//
// Usage:
//
//	cswap-inspect [-model VGG16] [-gpu V100] [-dataset ImageNet] [-batch 0]
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/profiler"
	"cswap/internal/sparsity"
	"cswap/internal/swap"
)

func main() {
	modelName := flag.String("model", "VGG16", "DNN model")
	gpuName := flag.String("gpu", "V100", "GPU")
	datasetName := flag.String("dataset", "ImageNet", "dataset")
	batch := flag.Int("batch", 0, "batch size (0 = Table III default)")
	flag.Parse()

	ds := dnn.ImageNet
	if *datasetName == "CIFAR10" {
		ds = dnn.CIFAR10
	}
	d, err := gpu.ByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	var m *dnn.Model
	b := *batch
	switch *modelName {
	case "BERT-base", "BERT-large":
		cfg := dnn.BERTBase
		if *modelName == "BERT-large" {
			cfg = dnn.BERTLarge
		}
		if b == 0 {
			b = 64
		}
		m, err = dnn.BuildBERT(cfg, b)
		if err != nil {
			log.Fatal(err)
		}
		ds = m.Dataset
	default:
		if b == 0 {
			b, err = dnn.BatchSize(*modelName, *gpuName, ds)
			if err != nil {
				log.Fatal(err)
			}
		}
		m, err = dnn.Build(*modelName, ds, b)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%s / %s / %s, batch %d\n", m.Name, d.Name, ds.Name, b)
	fmt.Printf("  parameters:          %8.1f M (%.0f MB)\n",
		float64(m.WeightElems())/1e6, float64(m.WeightBytes())/(1<<20))
	fmt.Printf("  forward activations: %8.1f GB (%.0fx the weights)\n",
		float64(m.TotalActivationBytes())/(1<<30), m.FeatureToWeightRatio())
	fmt.Printf("  compute/iteration:   %8.1f ms\n", m.IterationComputeTime(d)*1e3)
	fp := m.TrainingFootprint()
	fmt.Printf("  training footprint:  %8.1f GB of %d GB device memory (needs swapping: %v)\n\n",
		float64(fp.Total())/(1<<30), d.MemBytes>>30, m.NeedsSwapping(d))

	fmt.Printf("%-16s %-8s %14s %10s %10s %10s\n",
		"layer", "op", "shape", "out(MB)", "fwd(ms)", "GFLOPs")
	for i := range m.Layers {
		l := &m.Layers[i]
		fmt.Printf("%-16s %-8s %4dx%4dx%4d %10.1f %10.3f %10.2f\n",
			l.Name, l.Op, l.OutH, l.OutW, l.OutCh,
			float64(m.OutputBytes(i))/(1<<20),
			m.ForwardTime(d, i)*1e3,
			m.FLOPs(i)/1e9)
	}

	sp := sparsity.ForModel(m, 50, 1)
	np := profiler.Collect(m, d, sp, 0)
	if err := swap.MeasureHiddenWindows(m, d, np); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswappable tensors (epoch-0 sparsity, measured hiding windows):\n")
	fmt.Printf("%-10s %10s %10s %12s %12s %14s\n",
		"tensor", "size(MB)", "sparsity", "hiddenF(ms)", "hiddenB(ms)", "raw d2h(ms)")
	for _, t := range np.Tensors {
		fmt.Printf("%-10s %10.1f %9.0f%% %12.2f %12.2f %14.2f\n",
			t.Name, float64(t.Bytes)/(1<<20), t.Sparsity*100,
			t.HiddenF*1e3, t.HiddenB*1e3,
			float64(t.Bytes)/np.BWd2h*1e3)
	}
	fmt.Printf("\nmeasured effective bandwidth: d2h %.1f GB/s, h2d %.1f GB/s\n",
		np.BWd2h/1e9, np.BWh2d/1e9)
}
