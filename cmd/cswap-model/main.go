// Command cswap-model reproduces the model-quality experiments: Figure 10
// (RAE of the LR/BR/SVM/DT (de)compression-time predictors), Figure 11
// (compression-decision accuracy per DNN), Figure 3 (static compression's
// per-layer swap time versus no compression), and the Figure 2 execution
// timelines.
//
// Usage:
//
//	cswap-model [-seed N] [-fast] [-skip-fig11]
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	fast := flag.Bool("fast", false, "reduced sample counts")
	skip11 := flag.Bool("skip-fig11", false, "skip the slow decision-accuracy sweep")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	if *fast {
		cfg = experiments.Fast(*seed)
	}

	tl, err := experiments.Fig2Timeline(cfg)
	if err != nil {
		log.Fatalf("figure 2: %v", err)
	}
	fmt.Println(tl)

	f3, err := experiments.Fig3(cfg)
	if err != nil {
		log.Fatalf("figure 3: %v", err)
	}
	fmt.Println(f3)

	f10, err := experiments.Fig10(cfg)
	if err != nil {
		log.Fatalf("figure 10: %v", err)
	}
	fmt.Println(f10)

	if !*skip11 {
		f11, err := experiments.Fig11(cfg)
		if err != nil {
			log.Fatalf("figure 11: %v", err)
		}
		fmt.Println(f11)
	}
}
