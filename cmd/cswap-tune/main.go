// Command cswap-tune reproduces the GPU-parameter tuning experiments:
// Figure 5 (the ZVC kernel-time surface over launch geometries), Figure 12
// (random / expert / Bayesian-optimization / grid search compared on VGG16
// iteration time and search cost), and the Section V-E overhead accounting.
//
// Usage:
//
//	cswap-tune [-seed N] [-fast]
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	fast := flag.Bool("fast", false, "reduced sample counts")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	if *fast {
		cfg = experiments.Fast(*seed)
	}

	f5, err := experiments.Fig5(cfg)
	if err != nil {
		log.Fatalf("figure 5: %v", err)
	}
	fmt.Println(f5)

	f12, err := experiments.Fig12(cfg)
	if err != nil {
		log.Fatalf("figure 12: %v", err)
	}
	fmt.Println(f12)

	ov, err := experiments.Overheads(cfg)
	if err != nil {
		log.Fatalf("overheads: %v", err)
	}
	fmt.Println(ov)

	ls, err := experiments.LinkSweep(cfg)
	if err != nil {
		log.Fatalf("link sweep: %v", err)
	}
	fmt.Println(ls)

	ss, err := experiments.SparsitySweep(cfg)
	if err != nil {
		log.Fatalf("sparsity sweep: %v", err)
	}
	fmt.Println(ss)

	gs, err := experiments.GenerationSweep(cfg)
	if err != nil {
		log.Fatalf("generation sweep: %v", err)
	}
	fmt.Println(gs)
}
