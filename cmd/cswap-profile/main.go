// Command cswap-profile reproduces the profiling-side figures: Figure 1
// (VGG16 per-layer sparsity and size across epochs), Figure 8 (layers
// compressed per epoch for four models), and Figure 9 (the VGG16
// layer × epoch compression dot-matrix).
//
// -metrics and -trace attach an Observer to every deployment the figures
// build and export what it accumulated: advisor verdict counts, BO probe
// trajectories, and setup-phase spans across all workloads.
//
// Usage:
//
//	cswap-profile [-seed N] [-fast] [-metrics out.jsonl] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cswap"
	"cswap/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	fast := flag.Bool("fast", false, "reduced sample counts")
	metricsPath := flag.String("metrics", "", "write a JSON-lines metrics snapshot here")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file here")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	if *fast {
		cfg = experiments.Fast(*seed)
	}
	var obs *cswap.Observer
	if *metricsPath != "" || *tracePath != "" {
		obs = cswap.NewObserver()
		cfg.Observer = obs
	}

	f1, err := experiments.Fig1(cfg)
	if err != nil {
		log.Fatalf("figure 1: %v", err)
	}
	fmt.Println(f1)

	f8, err := experiments.Fig8(cfg)
	if err != nil {
		log.Fatalf("figure 8: %v", err)
	}
	fmt.Println(f8)

	f9, err := experiments.Fig9(cfg)
	if err != nil {
		log.Fatalf("figure 9: %v", err)
	}
	fmt.Println(f9)

	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		werr := cswap.JSONLinesSink{W: f}.Write(obs.Metrics.Snapshot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatalf("write metrics: %v", werr)
		}
		fmt.Printf("metrics: %s\n", *metricsPath)
	}
	if *tracePath != "" {
		b, err := obs.ChromeTrace()
		if err != nil {
			log.Fatalf("export trace: %v", err)
		}
		if err := os.WriteFile(*tracePath, b, 0o644); err != nil {
			log.Fatalf("write trace: %v", err)
		}
		fmt.Printf("trace: %s\n", *tracePath)
	}
}
