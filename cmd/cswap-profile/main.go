// Command cswap-profile reproduces the profiling-side figures: Figure 1
// (VGG16 per-layer sparsity and size across epochs), Figure 8 (layers
// compressed per epoch for four models), and Figure 9 (the VGG16
// layer × epoch compression dot-matrix).
//
// Usage:
//
//	cswap-profile [-seed N] [-fast]
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	fast := flag.Bool("fast", false, "reduced sample counts")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	if *fast {
		cfg = experiments.Fast(*seed)
	}

	f1, err := experiments.Fig1(cfg)
	if err != nil {
		log.Fatalf("figure 1: %v", err)
	}
	fmt.Println(f1)

	f8, err := experiments.Fig8(cfg)
	if err != nil {
		log.Fatalf("figure 8: %v", err)
	}
	fmt.Println(f8)

	f9, err := experiments.Fig9(cfg)
	if err != nil {
		log.Fatalf("figure 9: %v", err)
	}
	fmt.Println(f9)
}
