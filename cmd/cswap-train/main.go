// Command cswap-train runs the *functional* swapping executor through a
// training run: real synthetic activations are produced per layer at each
// epoch's sparsity, swapped out through the real codecs per the CSWAP
// advisor's plan, swapped back in during the backward pass, and verified
// bit-exactly — demonstrating both the memory relief and the PCIe-volume
// reduction on actual data.
//
// Usage:
//
//	cswap-train [-model VGG16] [-gpu V100] [-dataset ImageNet]
//	            [-epochs 10] [-scale 4096] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap/internal/core"
	"cswap/internal/dnn"
	"cswap/internal/executor"
	"cswap/internal/gpu"
)

func main() {
	modelName := flag.String("model", "VGG16", "DNN model")
	gpuName := flag.String("gpu", "V100", "GPU")
	datasetName := flag.String("dataset", "ImageNet", "dataset")
	epochs := flag.Int("epochs", 10, "epochs to run (sampled from the 50-epoch profile)")
	scale := flag.Int("scale", 4096, "tensor size divisor (keeps memory bounded)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	ds := dnn.ImageNet
	if *datasetName == "CIFAR10" {
		ds = dnn.CIFAR10
	}
	d, err := gpu.ByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	m, err := dnn.BuildConfigured(*modelName, *gpuName, ds)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(core.Config{Model: m, Device: d, Seed: *seed, SamplesPerAlg: 1000})
	if err != nil {
		log.Fatal(err)
	}
	exec, err := fw.NewExecutor(*scale, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s / %s / %s — functional swap training at 1/%d scale, launch %v\n\n",
		*modelName, *gpuName, ds.Name, *scale, fw.Launch)
	fmt.Println("epoch  compressed  raw(MB)  moved(MB)  ratio  peak-dev(MB)  sparsity")

	step := 50 / *epochs
	if step < 1 {
		step = 1
	}
	for epoch := 0; epoch < 50; epoch += step {
		plan, err := fw.PlanEpoch(epoch)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := executor.RunIteration(exec, m, plan, fw.Sparsity, epoch, *scale, *seed+int64(epoch))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %4d/%-5d  %7.2f  %9.2f  %5.3f  %12.3f  %7.1f%%\n",
			epoch, rep.Compressed, rep.Tensors,
			float64(rep.RawBytes)/(1<<20), float64(rep.MovedBytes)/(1<<20),
			rep.Ratio(), float64(rep.PeakDeviceBytes)/(1<<20), rep.MeanSparsity*100)
	}

	st := exec.Stats()
	fmt.Printf("\ntotals: %d swap-outs, %d swap-ins, all %d verified bit-exact\n",
		st.SwapOuts, st.SwapIns, st.Verified)
	fmt.Printf("data volume: %.1f MB raw -> %.1f MB moved (ratio %.3f)\n",
		float64(st.RawBytes)/(1<<20), float64(st.MovedBytes)/(1<<20), st.Ratio())
	cs := exec.CacheStats()
	fmt.Printf("buffer cache: %d hits / %d misses (pool-reuse optimisation)\n", cs.Hits, cs.Misses)
}
