// Command cswap-sim reproduces the framework-comparison experiments of the
// paper's evaluation: Figure 6 (normalized training throughput of vDNN,
// vDNN++, SC, CSWAP, and Orac on every model/GPU/dataset combination),
// Figure 7 (CSWAP's improvement over static compression), and the headline
// swap-latency / training-time reductions.
//
// Usage:
//
//	cswap-sim [-seed N] [-fast] [-samples N] [-stride N]
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	fast := flag.Bool("fast", false, "reduced sample counts and epoch grid")
	samples := flag.Int("samples", 0, "override regression samples per algorithm")
	stride := flag.Int("stride", 0, "override epoch stride")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	if *fast {
		cfg = experiments.Fast(*seed)
	}
	if *samples > 0 {
		cfg.SamplesPerAlg = *samples
	}
	if *stride > 0 {
		cfg.EpochStride = *stride
	}

	f6, err := experiments.Fig6(cfg)
	if err != nil {
		log.Fatalf("figure 6: %v", err)
	}
	fmt.Println(f6)

	f7 := &experiments.Fig7Result{Platforms: f6.Platforms}
	fmt.Println(f7)

	head, err := experiments.Headline(cfg)
	if err != nil {
		log.Fatalf("headline: %v", err)
	}
	fmt.Println(head)
}
