// Command cswap-sim reproduces the framework-comparison experiments of the
// paper's evaluation: Figure 6 (normalized training throughput of vDNN,
// vDNN++, SC, CSWAP, and Orac on every model/GPU/dataset combination),
// Figure 7 (CSWAP's improvement over static compression), and the headline
// swap-latency / training-time reductions.
//
// With -metrics and/or -trace it instead runs one observed training
// iteration of a single workload and exports what the Observer saw: a
// JSON-lines metrics snapshot (per-stream busy time, advisor verdicts, BO
// probes) and a Chrome trace-event file loadable in Perfetto.
//
// Usage:
//
//	cswap-sim [-seed N] [-fast] [-samples N] [-stride N]
//	cswap-sim -metrics out.jsonl -trace out.json [-model VGG16] [-gpu V100]
//	          [-dataset ImageNet] [-epoch 10] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"cswap"
	"cswap/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cswap-sim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "experiment seed")
	fast := fs.Bool("fast", false, "reduced sample counts and epoch grid")
	samples := fs.Int("samples", 0, "override regression samples per algorithm")
	stride := fs.Int("stride", 0, "override epoch stride")
	metricsPath := fs.String("metrics", "", "write a JSON-lines metrics snapshot here (switches to single-run mode)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file here (switches to single-run mode)")
	model := fs.String("model", "VGG16", "single-run model")
	gpuName := fs.String("gpu", "V100", "single-run GPU (V100 or 2080Ti)")
	dataset := fs.String("dataset", "ImageNet", "single-run dataset (ImageNet or CIFAR-10)")
	epoch := fs.Int("epoch", 10, "single-run epoch")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *metricsPath != "" || *tracePath != "" {
		return runObserved(out, observedConfig{
			seed: *seed, samples: *samples, fast: *fast,
			metricsPath: *metricsPath, tracePath: *tracePath,
			model: *model, gpu: *gpuName, dataset: *dataset, epoch: *epoch,
		})
	}

	cfg := experiments.Config{Seed: *seed}
	if *fast {
		cfg = experiments.Fast(*seed)
	}
	if *samples > 0 {
		cfg.SamplesPerAlg = *samples
	}
	if *stride > 0 {
		cfg.EpochStride = *stride
	}

	f6, err := experiments.Fig6(cfg)
	if err != nil {
		return fmt.Errorf("figure 6: %w", err)
	}
	fmt.Fprintln(out, f6)

	f7 := &experiments.Fig7Result{Platforms: f6.Platforms}
	fmt.Fprintln(out, f7)

	head, err := experiments.Headline(cfg)
	if err != nil {
		return fmt.Errorf("headline: %w", err)
	}
	fmt.Fprintln(out, head)
	return nil
}

type observedConfig struct {
	seed        int64
	samples     int
	fast        bool
	metricsPath string
	tracePath   string
	model       string
	gpu         string
	dataset     string
	epoch       int
}

// runObserved performs exactly one simulated training iteration with an
// Observer attached, so the exported per-stream busy counters equal the
// printed SimResult totals.
func runObserved(out io.Writer, c observedConfig) error {
	var ds cswap.Dataset
	switch strings.ToUpper(strings.ReplaceAll(c.dataset, "-", "")) {
	case "IMAGENET":
		ds = cswap.ImageNet
	case "CIFAR10":
		ds = cswap.CIFAR10
	default:
		return fmt.Errorf("unknown dataset %q (want ImageNet or CIFAR-10)", c.dataset)
	}
	d, err := cswap.DeviceByName(c.gpu)
	if err != nil {
		return err
	}
	batch, err := cswap.BatchSize(c.model, d.Name, ds)
	if err != nil {
		return err
	}
	m, err := cswap.BuildModel(c.model, ds, batch)
	if err != nil {
		return err
	}

	samples := c.samples
	if samples == 0 && c.fast {
		samples = experiments.Fast(c.seed).SamplesPerAlg
	}
	obs := cswap.NewObserver()
	fw, err := cswap.NewFramework(cswap.Config{
		Model: m, Device: d, Seed: c.seed, SamplesPerAlg: samples, Observer: obs,
	})
	if err != nil {
		return err
	}
	res, err := fw.SimulateIteration(c.epoch, cswap.NewSimOptions(cswap.WithSeed(c.seed)))
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%s %s/%s epoch %d (batch %d, launch grid=%d block=%d)\n",
		c.model, d.Name, ds.Name, c.epoch, batch, fw.Launch.Grid, fw.Launch.Block)
	fmt.Fprintf(out, "iteration %.6fs  throughput %.1f samples/s  exposed %.6fs\n",
		res.IterationTime, res.Throughput, res.SwapExposed)
	fmt.Fprintf(out, "busy: compute %.6fs  kernel %.6fs  d2h %.6fs  h2d %.6fs\n",
		res.ComputeBusy, res.KernelBusy, res.D2HBusy, res.H2DBusy)

	if c.metricsPath != "" {
		f, err := os.Create(c.metricsPath)
		if err != nil {
			return err
		}
		werr := cswap.JSONLinesSink{W: f}.Write(obs.Metrics.Snapshot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write metrics: %w", werr)
		}
		fmt.Fprintf(out, "metrics: %s\n", c.metricsPath)
	}
	if c.tracePath != "" {
		b, err := obs.ChromeTrace()
		if err != nil {
			return fmt.Errorf("export trace: %w", err)
		}
		if err := os.WriteFile(c.tracePath, b, 0o644); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(out, "trace: %s\n", c.tracePath)
	}
	return nil
}
