package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cswap"
)

// TestObservedRunExportsConsistentMetrics is the end-to-end acceptance
// check: one `cswap-sim -metrics -trace` run must produce a JSON-lines
// snapshot whose per-stream busy totals equal the run's SimResult, and a
// Chrome trace Perfetto can load (a JSON array of complete events).
func TestObservedRunExportsConsistentMetrics(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "out.jsonl")
	tracePath := filepath.Join(dir, "out.json")

	var out bytes.Buffer
	err := run([]string{
		"-metrics", metricsPath, "-trace", tracePath,
		"-model", "AlexNet", "-gpu", "V100", "-dataset", "ImageNet",
		"-epoch", "5", "-seed", "7", "-samples", "300",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// Recompute the same deterministic run through the public API; the
	// exported counters must match its SimResult exactly.
	d, err := cswap.DeviceByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := cswap.BatchSize("AlexNet", d.Name, cswap.ImageNet)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cswap.BuildModel("AlexNet", cswap.ImageNet, batch)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := cswap.NewFramework(cswap.Config{Model: m, Device: d, Seed: 7, SamplesPerAlg: 300})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fw.SimulateIteration(5, cswap.NewSimOptions(cswap.WithSeed(7)))
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := cswap.ParseMetricsJSONLines(f)
	if err != nil {
		t.Fatalf("exported JSONL does not parse: %v", err)
	}

	for _, tc := range []struct {
		stream string
		want   float64
	}{
		{"compute", want.ComputeBusy},
		{"kernel", want.KernelBusy},
		{"d2h", want.D2HBusy},
		{"h2d", want.H2DBusy},
	} {
		v, ok := snap.Counter("sim_stream_busy_seconds_total", cswap.MetricLabel("stream", tc.stream))
		if !ok {
			t.Fatalf("no sim_stream_busy_seconds_total{stream=%q} in export", tc.stream)
		}
		if math.Abs(v-tc.want) > 1e-9*math.Max(1, tc.want) {
			t.Fatalf("busy[%s] = %v, SimResult says %v", tc.stream, v, tc.want)
		}
	}
	if v, ok := snap.Counter("sim_iterations_total"); !ok || v != 1 {
		t.Fatalf("sim_iterations_total = %v, %v (want exactly one observed run)", v, ok)
	}
	if v, ok := snap.Counter("core_iterations_total"); !ok || v != 1 {
		t.Fatalf("core_iterations_total = %v, %v", v, ok)
	}

	// The trace must be a non-empty JSON array of Chrome complete events
	// with the fields Perfetto needs.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	spans := 0
	for i, ev := range events {
		switch ev["ph"] {
		case "X": // complete event — one simulated job
			spans++
			for _, k := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("event %d missing %q: %v", i, k, ev)
				}
			}
		case "M": // metadata (stream names)
		default:
			t.Fatalf("event %d: unexpected phase %v", i, ev["ph"])
		}
	}
	if spans == 0 {
		t.Fatal("trace has no complete events")
	}

	// The human-readable output should state the same busy totals it
	// exported (smoke check: the compute figure appears in the text).
	if !bytes.Contains(out.Bytes(), []byte("busy: compute "+trimFloat(want.ComputeBusy))) {
		t.Fatalf("printed output does not carry the busy totals:\n%s", out.String())
	}
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

func TestRunRejectsUnknownDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-metrics", filepath.Join(t.TempDir(), "m.jsonl"), "-dataset", "MNIST"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
