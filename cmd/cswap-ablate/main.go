// Command cswap-ablate runs the consolidated design-choice ablations of
// DESIGN.md §5 — the selective-compression gate, launch tuning, codec
// restriction, codec-stream pipelining, prefetch policy, memory budget,
// and the bucketed time model — and prints one table.
//
// Usage:
//
//	cswap-ablate [-seed N] [-fast]
package main

import (
	"flag"
	"fmt"
	"log"

	"cswap/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "experiment seed")
	fast := flag.Bool("fast", false, "reduced sample counts")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	if *fast {
		cfg = experiments.Fast(*seed)
	}
	r, err := experiments.Ablations(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r)
}
