// Command cswapd runs the CSWAP swap service daemon: a multi-tenant,
// network-facing front end over the functional swapping executor. Clients
// (the client package, or anything speaking the wire frame protocol over
// HTTP) register float32 tensors, swap them out through the real codecs to
// the pinned-host pool, and swap them back bit-exactly; /metrics exposes
// the shared registry in Prometheus text format.
//
// Usage:
//
//	cswapd [-addr :7077] [-addr-file PATH] [-device 1024] [-host 4096]
//	       [-max-inflight 4] [-quota 0] [-verify] [-grid 128] [-block 64]
//
// Sizes are MiB; -quota 0 grants each tenant the full device capacity.
// SIGINT/SIGTERM shut the daemon down gracefully: intake stops (503s),
// open requests finish, the executor drains its in-flight tickets, and
// only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cswap/internal/compress"
	"cswap/internal/server"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address (host:port; port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts wrapping -addr :0)")
	deviceMiB := flag.Int64("device", 1024, "device pool capacity, MiB")
	hostMiB := flag.Int64("host", 4096, "pinned-host pool capacity, MiB")
	maxInFlight := flag.Int("max-inflight", 0, "bound on concurrent swap operations (0 = executor default)")
	quotaMiB := flag.Int64("quota", 0, "per-tenant device-memory quota, MiB (0 = full device capacity)")
	verify := flag.Bool("verify", true, "checksum-verify every restore")
	grid := flag.Int("grid", 0, "codec launch grid (0 = executor default)")
	block := flag.Int("block", 0, "codec launch block (0 = executor default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on waiting out open requests at shutdown")
	flag.Parse()

	cfg := server.Config{
		DeviceCapacity: *deviceMiB << 20,
		HostCapacity:   *hostMiB << 20,
		MaxInFlight:    *maxInFlight,
		TenantQuota:    *quotaMiB << 20,
		Verify:         *verify,
	}
	if *grid > 0 {
		cfg.Launch = compress.Launch{Grid: *grid, Block: *block}
	}
	svc, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cswapd listening on %s (device %d MiB, host %d MiB)\n",
		ln.Addr(), *deviceMiB, *hostMiB)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("cswapd: %s: draining", s)
	case err := <-serveErr:
		log.Fatal(err)
	}

	// Shutdown ordering: stop intake first so new requests see 503 while
	// open ones finish, wait the handlers out, then drain and close the
	// executor — no in-flight ticket is abandoned.
	svc.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("cswapd: http shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("cswapd: close: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("cswapd: serve: %v", err)
	}
	log.Printf("cswapd: drained, exiting")
}
