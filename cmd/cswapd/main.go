// Command cswapd runs the CSWAP swap service daemon: a multi-tenant,
// network-facing front end over the functional swapping executor. Clients
// (the client package, or anything speaking the wire frame protocol over
// HTTP) register float32 tensors, swap them out through the real codecs to
// the pinned-host pool, and swap them back bit-exactly; paged block pools
// (register-pool and the batch-swap operations) move KV-cache-style block
// lists the same way, one coalesced run per codec launch; /metrics exposes
// the shared registry in Prometheus text format.
//
// Usage:
//
//	cswapd [-addr :7077] [-addr-file PATH] [-shards 1] [-device 1024]
//	       [-host 4096] [-max-inflight 4] [-quota 0] [-verify] [-grid 128]
//	       [-block 64] [-tune] [-tune-interval 2s] [-tune-drift 0.15]
//	       [-tier-dir DIR] [-tier-cap 0] [-tier-quota 0] [-tier-watermark 0]
//	       [-sched] [-sched-lanes C,N,S] [-sched-starve 20ms]
//
// Sizes are MiB; -quota 0 grants each tenant the full device capacity.
// -tier-dir attaches a compressed disk spill tier under the pinned-host
// pool: cold swapped payloads demote to CRC-checked blobs in DIR when the
// host pool runs out, promote back transparently on swap-in, and a
// tenant-quota 507 becomes demote-then-admit (see /metrics,
// executor_tier_* and server_tier_* series). -tier-cap 0 sizes the tier
// at four times the host capacity; -tier-quota 0 grants each tenant the
// full tier capacity. A cluster gives each shard DIR/shard-N.
// -tier-watermark F (0 < F < 1) adds a background demoter: whenever the
// host pool is more than F full, cold payloads demote to the tier ahead of
// demand (executor_tier_demotions_total{reason="watermark"}).
// -tune enables the online per-tenant tuner: swap-outs requesting the Auto
// algorithm follow its live codec verdicts, and the launch geometry is
// re-probed as tenant sparsity profiles drift (see /metrics,
// server_tuner_* series).
// -sched replaces each shard's non-blocking admission window with the
// SLO-aware priority scheduler (internal/sched): requests queue briefly in
// three bounded lanes (critical > normal > speculative, earliest deadline
// first within a lane) keyed by the client's WithLane/WithDeadline hints,
// deadline-expired waiters answer 429 "expired", and in-flight speculative
// prefetches are shed at run boundaries while critical work starves
// (server_sched_* and executor_sched_* series). -sched-lanes bounds the
// three queues ("critical,normal,speculative", 0 = default 64);
// -sched-starve sets the critical queue age that triggers shedding.
// -shards N (N > 1) runs the daemon as a multi-executor cluster: N
// complete shards — each with its own device/host pools, admission window,
// and tuner, and with the per-shard knobs above applied to each —
// consistent-hash-routed by (tenant, tensor) key. /cluster publishes the
// shard map, /metrics labels every shard's series with shard="N", and
// POST /admin/drain?shard=N live-migrates one shard's tensors onto the
// rest.
// SIGINT/SIGTERM shut the daemon down gracefully: intake stops (503s),
// open requests finish, the executor drains its in-flight tickets, and
// only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cswap/internal/compress"
	"cswap/internal/sched"
	"cswap/internal/server"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address (host:port; port 0 picks an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts wrapping -addr :0)")
	shards := flag.Int("shards", 1, "executor shards (>1 runs the consistent-hash cluster; per-shard knobs apply to each)")
	deviceMiB := flag.Int64("device", 1024, "device pool capacity, MiB")
	hostMiB := flag.Int64("host", 4096, "pinned-host pool capacity, MiB")
	maxInFlight := flag.Int("max-inflight", 0, "bound on concurrent swap operations (0 = executor default)")
	quotaMiB := flag.Int64("quota", 0, "per-tenant device-memory quota, MiB (0 = full device capacity)")
	tierDir := flag.String("tier-dir", "", "disk spill tier directory (empty disables tiering; a cluster shards it into subdirectories)")
	tierCapMiB := flag.Int64("tier-cap", 0, "spill tier capacity, MiB (0 = 4x host capacity)")
	tierQuotaMiB := flag.Int64("tier-quota", 0, "per-tenant tier-resident quota, MiB (0 = full tier capacity)")
	tierWatermark := flag.Float64("tier-watermark", 0, "host-pool occupancy fraction that triggers background demotion to the tier (0 disables; needs -tier-dir)")
	schedOn := flag.Bool("sched", false, "enable the SLO-aware admission scheduler (priority lanes + deadlines)")
	schedLanes := flag.String("sched-lanes", "", "per-lane queue depths as critical,normal,speculative (0 or empty = defaults)")
	schedStarve := flag.Duration("sched-starve", 0, "critical queue age that sheds in-flight speculative work (0 = 20ms default)")
	verify := flag.Bool("verify", true, "checksum-verify every restore")
	grid := flag.Int("grid", 0, "codec launch grid (0 = executor default)")
	block := flag.Int("block", 0, "codec launch block (0 = executor default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on waiting out open requests at shutdown")
	tune := flag.Bool("tune", false, "enable the online per-tenant tuner (Auto swap-outs follow its verdicts)")
	tuneInterval := flag.Duration("tune-interval", 0, "tuner tick period (0 = 2s default)")
	tuneDrift := flag.Float64("tune-drift", 0, "EWMA-sparsity drift that triggers a retune (0 = 0.15 default)")
	tuneLink := flag.Float64("tune-link", 0, "modeled swap-link bandwidth, bytes/s (0 = 12e9 default)")
	tuneMinSwaps := flag.Int("tune-min-swaps", 0, "swap-outs required before the tuner acts on a tenant (0 = 4 default)")
	tuneProbe := flag.Int("tune-probe", 0, "synthetic probe tensor size, elements (0 = 64Ki default)")
	flag.Parse()

	opts := []server.Option{
		server.WithDeviceCapacity(*deviceMiB << 20),
		server.WithHostCapacity(*hostMiB << 20),
		server.WithMaxInFlight(*maxInFlight),
		server.WithTenantQuota(*quotaMiB << 20),
		server.WithVerify(*verify),
		server.WithTuner(server.TunerConfig{
			Enabled:         *tune,
			Interval:        *tuneInterval,
			DriftThreshold:  *tuneDrift,
			LinkBytesPerSec: *tuneLink,
			MinSwaps:        *tuneMinSwaps,
			ProbeElems:      *tuneProbe,
		}),
	}
	if *grid > 0 {
		opts = append(opts, server.WithLaunch(compress.Launch{Grid: *grid, Block: *block}))
	}
	if *tierDir != "" {
		opts = append(opts,
			server.WithTierDir(*tierDir),
			server.WithTierCap(*tierCapMiB<<20),
			server.WithTenantTierQuota(*tierQuotaMiB<<20),
			server.WithTierWatermark(*tierWatermark),
		)
	} else if *tierWatermark != 0 {
		log.Fatal("cswapd: -tier-watermark needs -tier-dir")
	}
	if *schedOn {
		sc := server.SchedConfig{Enabled: true, StarveAfter: *schedStarve}
		if *schedLanes != "" {
			depths, err := parseLanes(*schedLanes)
			if err != nil {
				log.Fatalf("cswapd: -sched-lanes: %v", err)
			}
			sc.LaneDepth = depths
		}
		opts = append(opts, server.WithSched(sc))
	} else if *schedLanes != "" || *schedStarve != 0 {
		log.Fatal("cswapd: -sched-lanes/-sched-starve need -sched")
	}

	// service is what the daemon needs from either topology; the default
	// single-shard Server keeps its unlabeled metric series and hot path,
	// while -shards N>1 runs the cluster router.
	type service interface {
		Handler() http.Handler
		Drain()
		Close() error
	}
	var svc service
	var err error
	if *shards > 1 {
		svc, err = server.NewCluster(append(opts, server.WithShards(*shards))...)
	} else {
		svc, err = server.NewServer(opts...)
	}
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cswapd listening on %s (%d shard(s), device %d MiB, host %d MiB per shard)\n",
		ln.Addr(), *shards, *deviceMiB, *hostMiB)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("cswapd: %s: draining", s)
	case err := <-serveErr:
		log.Fatal(err)
	}

	// Shutdown ordering: stop intake first so new requests see 503 while
	// open ones finish, wait the handlers out, then drain and close the
	// executor — no in-flight ticket is abandoned.
	svc.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("cswapd: http shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("cswapd: close: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("cswapd: serve: %v", err)
	}
	log.Printf("cswapd: drained, exiting")
}

// parseLanes parses "critical,normal,speculative" queue depths; empty or
// zero fields keep the scheduler default.
func parseLanes(s string) ([sched.NumLanes]int, error) {
	var depths [sched.NumLanes]int
	parts := strings.Split(s, ",")
	if len(parts) != sched.NumLanes {
		return depths, fmt.Errorf("want %d comma-separated depths, got %q", sched.NumLanes, s)
	}
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return depths, fmt.Errorf("lane depth %q must be a non-negative integer", p)
		}
		depths[i] = n
	}
	return depths, nil
}
