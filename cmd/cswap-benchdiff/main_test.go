package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cswap/internal/compress
cpu: Intel(R) Xeon(R)
BenchmarkCodecEncode/ZVC-8     	   50000	     23456 ns/op	2794.20 MB/s	       0 B/op	       0 allocs/op
BenchmarkCodecDecode/ZVC-16    	   60000	     19000 ns/op	     128 B/op	       2 allocs/op
PASS
ok  	cswap/internal/compress	3.2s
`

func TestParseBenchStripsProcSuffix(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d results, want 2", len(got))
	}
	// Sorted by name; the -8/-16 GOMAXPROCS suffixes must be gone.
	if got[0].Name != "BenchmarkCodecDecode/ZVC" || got[1].Name != "BenchmarkCodecEncode/ZVC" {
		t.Fatalf("names = %q, %q", got[0].Name, got[1].Name)
	}
	if got[1].NsPerOp != 23456 || got[1].AllocsPerOp != 0 || got[1].BytesPerOp != 0 {
		t.Fatalf("encode result = %+v", got[1])
	}
	if got[0].AllocsPerOp != 2 || got[0].BytesPerOp != 128 {
		t.Fatalf("decode result = %+v", got[0])
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestMergeRepeatsMinNsMaxAllocs(t *testing.T) {
	in := "BenchmarkX-8 10 1500 ns/op 0 B/op 3 allocs/op\n" +
		"BenchmarkX-8 10 1000 ns/op 0 B/op 4 allocs/op\n" +
		"BenchmarkX-8 10 1200 ns/op 0 B/op 3 allocs/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("merged to %d results, want 1", len(got))
	}
	if got[0].NsPerOp != 1000 || got[0].AllocsPerOp != 4 {
		t.Fatalf("merged = %+v, want min ns 1000 / max allocs 4", got[0])
	}
}

func TestDiffRegressionRules(t *testing.T) {
	base := []Result{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "B", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "C", NsPerOp: 1000, AllocsPerOp: 0},
	}
	cases := []struct {
		name    string
		current []Result
		want    int
	}{
		{"within tolerance", []Result{{Name: "A", NsPerOp: 1050, AllocsPerOp: 2}}, 0},
		{"ns regression over 10%", []Result{{Name: "A", NsPerOp: 1200, AllocsPerOp: 2}}, 1},
		{"any alloc regression", []Result{{Name: "B", NsPerOp: 900, AllocsPerOp: 1}}, 1},
		{"alloc improvement ok", []Result{{Name: "A", NsPerOp: 1000, AllocsPerOp: 0}}, 0},
		{"new benchmark not a failure", []Result{{Name: "D", NsPerOp: 9999, AllocsPerOp: 99}}, 0},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if got := diff(&sb, base, tc.current, 0.10, nil); got != tc.want {
			t.Errorf("%s: %d regressions, want %d\n%s", tc.name, got, tc.want, sb.String())
		}
	}
}

func TestDiffLenientPattern(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkServerRoundTrip", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkCodecDecode", NsPerOp: 1000, AllocsPerOp: 0},
	}
	lenient := regexp.MustCompile(`ServerRoundTrip`)
	cases := []struct {
		name    string
		current []Result
		want    int
	}{
		// 5x the 10% threshold and 10% alloc slack for the matching name.
		{"lenient absorbs 40% ns", []Result{{Name: "BenchmarkServerRoundTrip", NsPerOp: 1400, AllocsPerOp: 100}}, 0},
		{"lenient fails past 50% ns", []Result{{Name: "BenchmarkServerRoundTrip", NsPerOp: 1600, AllocsPerOp: 100}}, 1},
		{"lenient absorbs 10% allocs", []Result{{Name: "BenchmarkServerRoundTrip", NsPerOp: 1000, AllocsPerOp: 109}}, 0},
		{"lenient fails past 10% allocs", []Result{{Name: "BenchmarkServerRoundTrip", NsPerOp: 1000, AllocsPerOp: 115}}, 1},
		// Non-matching names keep the strict rules.
		{"strict name keeps zero alloc tolerance", []Result{{Name: "BenchmarkCodecDecode", NsPerOp: 1000, AllocsPerOp: 1}}, 1},
		{"strict name keeps 10% ns threshold", []Result{{Name: "BenchmarkCodecDecode", NsPerOp: 1150, AllocsPerOp: 0}}, 1},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if got := diff(&sb, base, tc.current, 0.10, lenient); got != tc.want {
			t.Errorf("%s: %d regressions, want %d\n%s", tc.name, got, tc.want, sb.String())
		}
	}
}
