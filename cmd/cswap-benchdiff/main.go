// Command cswap-benchdiff turns `go test -bench -benchmem` text output into
// a machine-readable JSON baseline and gates regressions against it — the
// allocation-regression gate for the codec hot path.
//
// Capture a baseline:
//
//	go test -bench=. -benchmem -run='^$' ./internal/compress/ | cswap-benchdiff -write BENCH_compress.json
//
// Diff a fresh run against it (exit 1 on regression):
//
//	go test -bench=. -benchmem -run='^$' ./internal/compress/ | cswap-benchdiff -baseline BENCH_compress.json
//
// A regression is a ns/op increase beyond -threshold (default 10%) or ANY
// allocs/op increase: timing noise gets a tolerance band, allocation counts
// are deterministic and get none. Benchmark names are normalised by
// stripping the trailing -GOMAXPROCS suffix so baselines diff across
// machines with different core counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the persisted file format.
type Baseline struct {
	Benchmarks []Result `json:"benchmarks"`
}

// procSuffix matches the -N GOMAXPROCS suffix go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from `go test -bench` text output.
// Unrecognised lines (headers, PASS, test logs) are skipped.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := Result{Name: procSuffix.ReplaceAllString(fields[0], "")}
		seenNs := false
		// After the iteration count, measurements come as (value, unit)
		// pairs; keep the units the gate cares about.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				seenNs = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if seenNs {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found in input")
	}
	out = mergeRepeats(out)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// mergeRepeats collapses -count=N repetitions of one benchmark into a
// single result: minimum ns/op and B/op (the least-noisy estimate of the
// code's true cost) but maximum allocs/op (allocation counts are
// deterministic, so any elevated sample is a real behaviour, not noise).
func mergeRepeats(results []Result) []Result {
	idx := map[string]int{}
	var out []Result
	for _, r := range results {
		i, ok := idx[r.Name]
		if !ok {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = r.NsPerOp
		}
		if r.BytesPerOp < out[i].BytesPerOp {
			out[i].BytesPerOp = r.BytesPerOp
		}
		if r.AllocsPerOp > out[i].AllocsPerOp {
			out[i].AllocsPerOp = r.AllocsPerOp
		}
	}
	return out
}

func writeBaseline(path string, results []Result) error {
	data, err := json.MarshalIndent(Baseline{Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diff compares current results to the baseline and returns the number of
// regressions, printing one line per benchmark. Benchmarks matching the
// lenient pattern (nil = none) cross scheduler, network, or GC noise that
// the tight codec-loop thresholds would flake on: they get 5x the ns/op
// threshold and a 10% allocs/op tolerance instead of the strict zero.
func diff(w io.Writer, baseline, current []Result, threshold float64, lenient *regexp.Regexp) int {
	base := map[string]Result{}
	for _, b := range baseline {
		base[b.Name] = b
	}
	regressions := 0
	for _, c := range current {
		b, ok := base[c.Name]
		if !ok {
			fmt.Fprintf(w, "  NEW   %-50s %12.0f ns/op %8.0f allocs/op\n", c.Name, c.NsPerOp, c.AllocsPerOp)
			continue
		}
		delete(base, c.Name)
		nsDelta := 0.0
		if b.NsPerOp > 0 {
			nsDelta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		nsLimit, allocSlack := threshold, 0.0
		if lenient != nil && lenient.MatchString(c.Name) {
			nsLimit, allocSlack = threshold*5, 0.10
		}
		status := "ok"
		if c.AllocsPerOp > b.AllocsPerOp*(1+allocSlack) {
			status = "ALLOC-REGRESSION"
			regressions++
		} else if nsDelta > nsLimit {
			status = "TIME-REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-5s %-50s %+7.1f%% ns/op  allocs %g -> %g\n",
			status, c.Name, 100*nsDelta, b.AllocsPerOp, c.AllocsPerOp)
	}
	for name := range base {
		fmt.Fprintf(w, "  GONE  %-50s (in baseline, not in this run)\n", name)
	}
	return regressions
}

func main() {
	write := flag.String("write", "", "write parsed results to this JSON baseline file")
	baselinePath := flag.String("baseline", "", "compare against this JSON baseline; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional ns/op increase before failing")
	lenientPat := flag.String("lenient", "", "regexp of benchmark names gated leniently (5x ns/op threshold, 10% allocs/op tolerance) — for end-to-end benchmarks crossing scheduler and network noise")
	flag.Parse()
	var lenient *regexp.Regexp
	if *lenientPat != "" {
		var err error
		if lenient, err = regexp.Compile(*lenientPat); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -lenient: %v\n", err)
			os.Exit(2)
		}
	}
	if (*write == "") == (*baselinePath == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -write or -baseline is required")
		os.Exit(2)
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *write != "" {
		if err := writeBaseline(*write, current); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(current), *write)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if n := diff(os.Stdout, base.Benchmarks, current, *threshold, lenient); n > 0 {
		fmt.Printf("benchdiff: %d regression(s) against %s\n", n, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions against %s (threshold %.0f%% ns/op, 0 allocs/op)\n",
		*baselinePath, *threshold*100)
}
