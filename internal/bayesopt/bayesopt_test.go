package bayesopt

import (
	"math"
	"testing"

	"cswap/internal/compress"
	"cswap/internal/gpu"
	"cswap/internal/stats"
)

// fig5Objective is the deterministic Figure 5 surface: ZVC comp+decomp of a
// 500 MB tensor at 50 % sparsity on V100.
func fig5Objective() Objective {
	d := gpu.V100()
	return func(l compress.Launch) float64 {
		return d.CompressionTimeTotal(gpu.KernelParams{
			Alg: compress.ZVC, SizeBytes: 500 << 20, Sparsity: 0.5, Launch: l,
		})
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	g := newGP(0.2, 1e-6)
	x := [][]float64{{0.1, 0}, {0.5, 0}, {0.9, 0}, {0.3, 1}}
	y := []float64{5, 1, 4, 3}
	if err := g.fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mean, std := g.predict(x[i])
		if math.Abs(mean-y[i]) > 0.05 {
			t.Fatalf("GP mean at training point %d = %v, want %v", i, mean, y[i])
		}
		if std > 0.2*g.yStd {
			t.Fatalf("GP std at training point %d = %v, should be near zero", i, std)
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	g := newGP(0.1, 1e-6)
	x := [][]float64{{0.2, 0}, {0.25, 0}}
	y := []float64{1, 2}
	if err := g.fit(x, y); err != nil {
		t.Fatal(err)
	}
	_, near := g.predict([]float64{0.22, 0})
	_, far := g.predict([]float64{0.9, 1})
	if far <= near {
		t.Fatalf("uncertainty near data (%v) should be below far (%v)", near, far)
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// A point predicted well below the incumbent has high EI.
	high := expectedImprovement(1, 0.5, 5, 0)
	low := expectedImprovement(5, 0.5, 5, 0)
	if high <= low {
		t.Fatalf("EI(better mean) %v should exceed EI(equal mean) %v", high, low)
	}
	// Zero std and no improvement → zero EI.
	if got := expectedImprovement(6, 0, 5, 0); got != 0 {
		t.Fatalf("EI = %v, want 0", got)
	}
	// Zero std with improvement → the improvement itself.
	if got := expectedImprovement(3, 0, 5, 0); got != 2 {
		t.Fatalf("EI = %v, want 2", got)
	}
	// Uncertainty adds value even at equal mean.
	if expectedImprovement(5, 1, 5, 0) <= 0 {
		t.Fatal("uncertain point at the incumbent should have positive EI")
	}
}

func TestBOFindsNearOptimalLaunch(t *testing.T) {
	obj := fig5Objective()
	// Exhaustive optimum for reference.
	gs := (&GridSearch{}).Search(obj)

	bo := &BO{Seed: 1}
	res := bo.Search(obj)
	if res.Evaluations != 35 {
		t.Fatalf("BO used %d evaluations, want s1+s2 = 35", res.Evaluations)
	}
	// Paper: BO reaches within ~18 % of the grid-search optimum
	// (66 ms vs 56 ms). Require within 25 %.
	if res.BestValue > 1.25*gs.BestValue {
		t.Fatalf("BO best %.4f vs GS best %.4f (launch %v vs %v)",
			res.BestValue, gs.BestValue, res.Best, gs.Best)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("BO returned invalid launch: %v", err)
	}
}

func TestBOBeatsRandomAndExpertOnAverage(t *testing.T) {
	obj := fig5Objective()
	var boSum, rdSum float64
	const trials = 10
	for s := int64(0); s < trials; s++ {
		boSum += (&BO{Seed: s}).Search(obj).BestValue
		rdSum += (&RandomSearch{Seed: s}).Search(obj).BestValue
	}
	ep := (&Expert{}).Search(obj).BestValue
	if boSum/trials >= rdSum/trials {
		t.Fatalf("BO average %v not better than random %v", boSum/trials, rdSum/trials)
	}
	if boSum/trials >= ep {
		t.Fatalf("BO average %v not better than expert %v", boSum/trials, ep)
	}
}

func TestBODeterministicPerSeed(t *testing.T) {
	obj := fig5Objective()
	a := (&BO{Seed: 7}).Search(obj)
	b := (&BO{Seed: 7}).Search(obj)
	if a.Best != b.Best || a.BestValue != b.BestValue {
		t.Fatal("BO not deterministic for fixed seed")
	}
}

func TestBOHandlesNoisyObjective(t *testing.T) {
	d := gpu.V100()
	rng := stats.NewRNG(3)
	noisy := func(l compress.Launch) float64 {
		c, dc := d.CompressionTimeNoisy(rng, gpu.KernelParams{
			Alg: compress.ZVC, SizeBytes: 500 << 20, Sparsity: 0.5, Launch: l,
		})
		return c + dc
	}
	res := (&BO{Seed: 2}).Search(noisy)
	gs := (&GridSearch{Stride: 8}).Search(fig5Objective())
	if res.BestValue > 1.4*gs.BestValue {
		t.Fatalf("noisy BO best %v far from optimum %v", res.BestValue, gs.BestValue)
	}
}

func TestGridSearchExhaustive(t *testing.T) {
	obj := fig5Objective()
	res := (&GridSearch{}).Search(obj)
	if res.Evaluations != 8192 {
		t.Fatalf("GS evaluations = %d, want 8192", res.Evaluations)
	}
	// The paper's BO saves ≈224× the search cost versus GS.
	bo := (&BO{Seed: 1}).Search(obj)
	if ratio := float64(res.Evaluations) / float64(bo.Evaluations); ratio < 200 {
		t.Fatalf("GS/BO evaluation ratio = %v, want > 200", ratio)
	}
	// GS must find the global minimum: no strided search may beat it.
	strided := (&GridSearch{Stride: 64}).Search(obj)
	if strided.BestValue < res.BestValue {
		t.Fatal("strided search beat exhaustive search")
	}
}

func TestGridSearchStride(t *testing.T) {
	obj := fig5Objective()
	res := (&GridSearch{Stride: 64}).Search(obj)
	if res.Evaluations != 2*64 {
		t.Fatalf("strided GS evaluations = %d, want 128", res.Evaluations)
	}
}

func TestRandomSearchSingleDraw(t *testing.T) {
	obj := fig5Objective()
	res := (&RandomSearch{Seed: 4}).Search(obj)
	if res.Evaluations != 1 || len(res.History) != 1 {
		t.Fatalf("RD should evaluate exactly once, got %d", res.Evaluations)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExpertDefaultLaunch(t *testing.T) {
	obj := fig5Objective()
	res := (&Expert{}).Search(obj)
	if res.Best.Block != 128 {
		t.Fatalf("expert block = %d, want 128 per Section V-D", res.Best.Block)
	}
	if res.Evaluations != 1 {
		t.Fatal("expert should evaluate once")
	}
}

func TestSearcherNames(t *testing.T) {
	names := map[Searcher]string{
		&BO{}: "BO", &RandomSearch{}: "RD", &Expert{}: "EP", &GridSearch{}: "GS",
	}
	for s, want := range names {
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
	}
}

func TestFigure12Ordering(t *testing.T) {
	// RD ≫ EP > BO ≳ GS in (de)compression time.
	obj := fig5Objective()
	rd := (&RandomSearch{Seed: 12}).Search(obj) // single unlucky draw
	ep := (&Expert{}).Search(obj)
	bo := (&BO{Seed: 1}).Search(obj)
	gs := (&GridSearch{}).Search(obj)
	if !(gs.BestValue <= bo.BestValue && bo.BestValue < ep.BestValue) {
		t.Fatalf("ordering violated: GS=%v BO=%v EP=%v RD=%v",
			gs.BestValue, bo.BestValue, ep.BestValue, rd.BestValue)
	}
	// Random is worse than expert in expectation; check over seeds.
	var rdSum float64
	for s := int64(0); s < 20; s++ {
		rdSum += (&RandomSearch{Seed: s}).Search(obj).BestValue
	}
	if rdSum/20 <= ep.BestValue {
		t.Fatalf("average RD %v should exceed EP %v", rdSum/20, ep.BestValue)
	}
	_ = rd
}

func TestAcquisitionVariantsAllConverge(t *testing.T) {
	obj := fig5Objective()
	gs := (&GridSearch{Stride: 4}).Search(obj)
	for _, acq := range []Acquisition{EI, UCB, PI} {
		var sum float64
		const trials = 5
		for s := int64(0); s < trials; s++ {
			res := (&BO{Seed: s, Acq: acq}).Search(obj)
			sum += res.BestValue
		}
		avg := sum / trials
		if avg > 1.5*gs.BestValue {
			t.Errorf("%s average best %v too far from optimum %v", acq, avg, gs.BestValue)
		}
	}
}

func TestAcquisitionNames(t *testing.T) {
	if EI.String() != "EI" || UCB.String() != "UCB" || PI.String() != "PI" {
		t.Fatal("acquisition names wrong")
	}
	if Acquisition(9).String() != "Acquisition(?)" {
		t.Fatal("unknown acquisition name")
	}
}

func TestProbabilityOfImprovementProperties(t *testing.T) {
	// Certain improvement → 1; certain non-improvement → 0.
	if got := probabilityOfImprovement(1, 0, 5, 0); got != 1 {
		t.Fatalf("PI = %v, want 1", got)
	}
	if got := probabilityOfImprovement(9, 0, 5, 0); got != 0 {
		t.Fatalf("PI = %v, want 0", got)
	}
	// Monotone in mean.
	if probabilityOfImprovement(2, 1, 5, 0) <= probabilityOfImprovement(4, 1, 5, 0) {
		t.Fatal("PI not monotone in mean")
	}
	// At the incumbent with uncertainty: ≈0.5.
	if got := probabilityOfImprovement(5, 1, 5, 0); got < 0.45 || got > 0.55 {
		t.Fatalf("PI at incumbent = %v, want ≈0.5", got)
	}
}
