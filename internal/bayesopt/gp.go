// Package bayesopt implements the GPU-parameter auto-tuner of Section IV-D:
// Bayesian optimization (Algorithm 1) with a Gaussian-process posterior and
// expected-improvement acquisition over the (grid, block) launch space, plus
// the comparison searchers from Figure 12 — random search, expert knowledge,
// and exhaustive grid search.
package bayesopt

import (
	"math"

	"cswap/internal/linalg"
)

// gp is a Gaussian-process regressor with a squared-exponential kernel over
// fixed-width inputs, used as the BO posterior ("the posterior distribution
// determines the estimated values and prediction uncertainty of points in
// the entire search space").
type gp struct {
	lengthScale float64 // in normalised input units
	noise       float64 // observation noise variance (standardised y units)

	x     [][]float64
	yMean float64
	yStd  float64
	chol  *linalg.Matrix
	alpha []float64 // K⁻¹·(y standardised)
}

func newGP(lengthScale, noise float64) *gp {
	return &gp{lengthScale: lengthScale, noise: noise}
}

func (g *gp) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * g.lengthScale * g.lengthScale))
}

// fit conditions the GP on observations (x, y). It standardises targets
// internally so kernel amplitudes stay O(1).
func (g *gp) fit(x [][]float64, y []float64) error {
	n := len(x)
	g.x = x
	g.yMean, g.yStd = 0, 0
	for _, v := range y {
		g.yMean += v
	}
	g.yMean /= float64(n)
	for _, v := range y {
		d := v - g.yMean
		g.yStd += d * d
	}
	g.yStd = math.Sqrt(g.yStd / float64(n))
	if g.yStd == 0 {
		g.yStd = 1
	}
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	k.AddDiagonal(g.noise)
	chol, err := linalg.Cholesky(k)
	if err != nil {
		// Numerical fallback: escalate jitter.
		k.AddDiagonal(1e-6)
		chol, err = linalg.Cholesky(k)
		if err != nil {
			return err
		}
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - g.yMean) / g.yStd
	}
	g.chol = chol
	g.alpha = linalg.SolveCholesky(chol, ys)
	return nil
}

// predict returns the posterior mean and standard deviation at xq, in the
// original target units.
func (g *gp) predict(xq []float64) (mean, std float64) {
	n := len(g.x)
	kq := make([]float64, n)
	for i := range g.x {
		kq[i] = g.kernel(xq, g.x[i])
	}
	mu := linalg.Dot(kq, g.alpha)
	// Variance: k(x,x) + noise − kqᵀ K⁻¹ kq via one triangular solve.
	v := forwardSolve(g.chol, kq)
	var kvk float64
	for _, t := range v {
		kvk += t * t
	}
	varq := 1 + g.noise - kvk
	if varq < 0 {
		varq = 0
	}
	return mu*g.yStd + g.yMean, math.Sqrt(varq) * g.yStd
}

// forwardSolve solves L·v = b for lower-triangular L.
func forwardSolve(l *linalg.Matrix, b []float64) []float64 {
	n := l.Rows
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * v[k]
		}
		v[i] = s / l.At(i, i)
	}
	return v
}

// expectedImprovement is the acquisition for *minimisation*: the expected
// amount by which a sample at (mean, std) improves on the incumbent best.
// Designed "to avoid getting trapped in local optima (exploration) and to
// refine the search in the vicinity of a promising solution (exploitation)".
func expectedImprovement(mean, std, best, xi float64) float64 {
	if std <= 0 {
		if imp := best - mean - xi; imp > 0 {
			return imp
		}
		return 0
	}
	imp := best - mean - xi
	z := imp / std
	return imp*stdNormCDF(z) + std*stdNormPDF(z)
}

// probabilityOfImprovement is the PI acquisition for minimisation: the
// posterior probability that a sample at (mean, std) lands below the
// incumbent best minus the exploration margin.
func probabilityOfImprovement(mean, std, best, xi float64) float64 {
	if std <= 0 {
		if best-mean-xi > 0 {
			return 1
		}
		return 0
	}
	return stdNormCDF((best - mean - xi) / std)
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
