package bayesopt

import (
	"fmt"
	"math"

	"cswap/internal/compress"
	"cswap/internal/metrics"
	"cswap/internal/stats"
)

// Objective evaluates one launch geometry and returns its observed cost —
// in CSWAP, the measured sum of compression and decompression time.
type Objective func(l compress.Launch) float64

// Observation is one evaluated point of a search.
type Observation struct {
	Launch compress.Launch
	Value  float64
}

// Result summarises a completed search.
type Result struct {
	Best        compress.Launch
	BestValue   float64
	Evaluations int
	History     []Observation
}

// Searcher finds a good launch geometry by evaluating the objective.
type Searcher interface {
	// Name is the Figure 12 label (RD, EP, BO, GS).
	Name() string
	// Search runs the strategy against the objective.
	Search(obj Objective) Result
}

// Acquisition selects the BO acquisition function. The paper's description
// matches expected improvement; UCB and PI are provided for ablation.
type Acquisition int

// Supported acquisition functions.
const (
	// EI is expected improvement (default; the Algorithm 1 behaviour).
	EI Acquisition = iota
	// UCB is the lower-confidence bound for minimisation (κ = 2).
	UCB
	// PI is the probability of improvement.
	PI
)

// String names the acquisition.
func (a Acquisition) String() string {
	switch a {
	case EI:
		return "EI"
	case UCB:
		return "UCB"
	case PI:
		return "PI"
	default:
		return "Acquisition(?)"
	}
}

// BO implements Algorithm 1: s1 random initial samples seed the dataset D,
// then s2 acquisition-guided probes refine it, and the best observed point
// is returned. The paper's configuration is s1 = 10, s2 = 25, grid in
// [1, 4096], block in {64, 128}, completing in under a minute versus hours
// for a full grid search.
type BO struct {
	S1, S2  int   // defaults 10 and 25
	MaxGrid int   // default 4096
	Seed    int64 // RNG seed for the initial design and candidate sets

	// Candidates is the acquisition-maximisation candidate count per
	// iteration (default 512 grid values × both blocks).
	Candidates int
	// Xi is the EI/PI exploration margin (default 0.01 standardised units).
	Xi float64
	// Acq selects the acquisition function (default EI).
	Acq Acquisition
	// Observer, when non-nil, records the search: a probe counter, the
	// best-observed-value trajectory (gauge plus one event per probe), and
	// the distribution of objective values. Nil records nothing.
	Observer *metrics.Observer
}

// Name implements Searcher.
func (*BO) Name() string { return "BO" }

func (b *BO) defaults() (s1, s2, maxGrid, cands int, xi float64) {
	s1, s2, maxGrid, cands, xi = b.S1, b.S2, b.MaxGrid, b.Candidates, b.Xi
	if s1 <= 0 {
		s1 = 10
	}
	if s2 <= 0 {
		s2 = 25
	}
	if maxGrid <= 0 {
		maxGrid = 4096
	}
	if cands <= 0 {
		cands = 512
	}
	if xi == 0 {
		xi = 0.01
	}
	return
}

// normalise maps a launch to GP input space. Grid is log-scaled: the
// U-shaped cost surface has its valley at small grids (≈100 of 4096), which
// is narrow in linear coordinates but wide and smooth in log coordinates —
// the standard treatment for launch-geometry dimensions.
func normalise(l compress.Launch, maxGrid int) []float64 {
	blk := 0.0
	if l.Block == 128 {
		blk = 1
	}
	return []float64{math.Log(float64(l.Grid)) / math.Log(float64(maxGrid)), blk}
}

// logUniformGrid draws a grid size log-uniformly from [1, maxGrid].
func logUniformGrid(rng interface{ Float64() float64 }, maxGrid int) int {
	g := int(math.Exp(rng.Float64() * math.Log(float64(maxGrid))))
	if g < 1 {
		g = 1
	}
	if g > maxGrid {
		g = maxGrid
	}
	return g
}

// Search implements Searcher, following Algorithm 1 line by line.
func (b *BO) Search(obj Objective) Result {
	s1, s2, maxGrid, cands, xi := b.defaults()
	rng := stats.NewRNG(b.Seed)

	var res Result
	res.BestValue = math.Inf(1)
	var xs [][]float64
	var ys []float64

	observe := func(l compress.Launch) {
		y := obj(l)
		res.Evaluations++
		res.History = append(res.History, Observation{Launch: l, Value: y})
		xs = append(xs, normalise(l, maxGrid))
		ys = append(ys, y)
		if y < res.BestValue {
			res.BestValue = y
			res.Best = l
		}
		if reg := b.Observer.Reg(); reg != nil {
			reg.Counter("bayesopt_probes_total").Inc()
			reg.Gauge("bayesopt_best_seconds").Set(res.BestValue)
			reg.Histogram("bayesopt_probe_seconds").Observe(y)
		}
		b.Observer.Emit("bayesopt.probe",
			"grid", fmt.Sprintf("%d", l.Grid),
			"block", fmt.Sprintf("%d", l.Block),
			"value", fmt.Sprintf("%g", y),
			"best", fmt.Sprintf("%g", res.BestValue))
	}

	// Lines 3–9: initial random design D.
	for i := 0; i < s1; i++ {
		observe(compress.Launch{
			Grid:  1 + rng.Intn(maxGrid),
			Block: []int{64, 128}[rng.Intn(2)],
		})
	}

	// Lines 10–16: posterior-guided probes.
	model := newGP(0.15, 1e-4)
	for i := 0; i < s2; i++ {
		if err := model.fit(xs, ys); err != nil {
			// Degenerate posterior: fall back to a random probe.
			observe(compress.Launch{Grid: 1 + rng.Intn(maxGrid), Block: 64})
			continue
		}
		next := b.selectNext(model, rng, res.BestValue, maxGrid, cands, xi)
		observe(next)
	}

	// Line 17: return the optimal observed point.
	return res
}

// selectNext maximises expected improvement over a log-uniform candidate
// set — the acquisition-function step of Algorithm 1.
func (b *BO) selectNext(model *gp, rng boRand, best float64, maxGrid, cands int, xi float64) compress.Launch {
	bestEI := -1.0
	pick := compress.Launch{Grid: logUniformGrid(rng, maxGrid), Block: 64}
	for i := 0; i < cands; i++ {
		l := compress.Launch{
			Grid:  logUniformGrid(rng, maxGrid),
			Block: []int{64, 128}[rng.Intn(2)],
		}
		mean, std := model.predict(normalise(l, maxGrid))
		var score float64
		switch b.Acq {
		case UCB:
			// Minimisation: prefer low posterior mean with an optimism
			// bonus for uncertainty.
			score = -(mean - 2*std)
		case PI:
			score = probabilityOfImprovement(mean, std, best, xi*model.yStd)
		default:
			score = expectedImprovement(mean, std, best, xi*model.yStd)
		}
		if score > bestEI {
			bestEI = score
			pick = l
		}
	}
	return pick
}

// boRand is the subset of rand.Rand the search uses.
type boRand interface {
	Intn(int) int
	Float64() float64
}
