package bayesopt

import (
	"math"

	"cswap/internal/compress"
	"cswap/internal/stats"
)

// RandomSearch evaluates N uniformly random launch geometries and keeps the
// best; the Figure 12 "RD" baseline uses a single draw ("we randomly choose
// a GPU setting").
type RandomSearch struct {
	N       int // default 1
	MaxGrid int // default 4096
	Seed    int64
}

// Name implements Searcher.
func (*RandomSearch) Name() string { return "RD" }

// Search implements Searcher.
func (r *RandomSearch) Search(obj Objective) Result {
	n, maxGrid := r.N, r.MaxGrid
	if n <= 0 {
		n = 1
	}
	if maxGrid <= 0 {
		maxGrid = 4096
	}
	rng := stats.NewRNG(r.Seed)
	res := Result{BestValue: math.Inf(1)}
	for i := 0; i < n; i++ {
		l := compress.Launch{Grid: 1 + rng.Intn(maxGrid), Block: []int{64, 128}[rng.Intn(2)]}
		y := obj(l)
		res.Evaluations++
		res.History = append(res.History, Observation{Launch: l, Value: y})
		if y < res.BestValue {
			res.BestValue, res.Best = y, l
		}
	}
	return res
}

// Expert is the "expert knowledge" baseline: a hand-picked geometry — block
// 128 so every warp scheduler stays busy, with a heuristic grid sized to the
// SM count — evaluated once.
type Expert struct {
	Launch compress.Launch
}

// Name implements Searcher.
func (*Expert) Name() string { return "EP" }

// Search implements Searcher.
func (e *Expert) Search(obj Objective) Result {
	l := e.Launch
	if l.Grid == 0 {
		l = compress.Launch{Grid: 320, Block: 128}
	}
	y := obj(l)
	return Result{
		Best: l, BestValue: y, Evaluations: 1,
		History: []Observation{{Launch: l, Value: y}},
	}
}

// GridSearch exhaustively evaluates every grid in [1, MaxGrid] × block in
// {64, 128} — the Figure 12 "GS" oracle that "finds the best GPU setting by
// going through all grid/block configurations" at 224× the BO search cost.
type GridSearch struct {
	MaxGrid int // default 4096
	// Stride evaluates every Stride-th grid (default 1 = exhaustive);
	// benchmarks use larger strides to bound runtime.
	Stride int
}

// Name implements Searcher.
func (*GridSearch) Name() string { return "GS" }

// Search implements Searcher.
func (g *GridSearch) Search(obj Objective) Result {
	maxGrid, stride := g.MaxGrid, g.Stride
	if maxGrid <= 0 {
		maxGrid = 4096
	}
	if stride <= 0 {
		stride = 1
	}
	res := Result{BestValue: math.Inf(1)}
	for _, block := range []int{64, 128} {
		for grid := 1; grid <= maxGrid; grid += stride {
			l := compress.Launch{Grid: grid, Block: block}
			y := obj(l)
			res.Evaluations++
			res.History = append(res.History, Observation{Launch: l, Value: y})
			if y < res.BestValue {
				res.BestValue, res.Best = y, l
			}
		}
	}
	return res
}
