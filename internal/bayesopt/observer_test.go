package bayesopt

import (
	"strconv"
	"testing"

	"cswap/internal/compress"
	"cswap/internal/metrics"
)

func TestBOObserverRecordsProbeTrajectory(t *testing.T) {
	obs := metrics.NewObserver()
	var probes []metrics.Event
	obs.OnEvent = func(ev metrics.Event) {
		if ev.Name == "bayesopt.probe" {
			probes = append(probes, ev)
		}
	}

	b := &BO{S1: 5, S2: 5, Seed: 3, Observer: obs}
	res := b.Search(func(l compress.Launch) float64 {
		// A smooth valley at grid 100 — same shape the real objective has.
		d := float64(l.Grid-100) / 100
		return 1 + d*d
	})

	reg := obs.Metrics
	if got := reg.Counter("bayesopt_probes_total").Value(); int(got) != res.Evaluations {
		t.Fatalf("probe counter %v, evaluations %d", got, res.Evaluations)
	}
	if got := reg.Gauge("bayesopt_best_seconds").Value(); got != res.BestValue {
		t.Fatalf("best gauge %v, BestValue %v", got, res.BestValue)
	}
	if h := reg.Histogram("bayesopt_probe_seconds"); int(h.Count()) != res.Evaluations {
		t.Fatalf("probe histogram count %d, evaluations %d", h.Count(), res.Evaluations)
	}

	// The emitted best-so-far trajectory must be non-increasing and end at
	// the returned optimum.
	if len(probes) != res.Evaluations {
		t.Fatalf("%d probe events, %d evaluations", len(probes), res.Evaluations)
	}
	prev := 0.0
	for i, ev := range probes {
		best, err := strconv.ParseFloat(ev.Attrs["best"], 64)
		if err != nil {
			t.Fatalf("probe %d: bad best attr %q", i, ev.Attrs["best"])
		}
		if i > 0 && best > prev {
			t.Fatalf("best-so-far increased at probe %d: %v > %v", i, best, prev)
		}
		prev = best
	}
	if prev != res.BestValue {
		t.Fatalf("trajectory ends at %v, BestValue %v", prev, res.BestValue)
	}
}

func TestBONilObserverUnchanged(t *testing.T) {
	obj := func(l compress.Launch) float64 { return float64(l.Grid) }
	with := (&BO{Seed: 1, Observer: metrics.NewObserver()}).Search(obj)
	without := (&BO{Seed: 1}).Search(obj)
	if with.Best != without.Best || with.BestValue != without.BestValue || with.Evaluations != without.Evaluations {
		t.Fatalf("observer changed the search: %+v vs %+v", with, without)
	}
}
