package compress

import (
	"math"
	"testing"
	"testing/quick"

	"cswap/internal/tensor"
)

func huffRoundTrip(t *testing.T, src []float32) []byte {
	t.Helper()
	c := MustNew(Huffman)
	blob := c.Encode(src)
	got, err := c.Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(src) {
		t.Fatalf("length %d, want %d", len(got), len(src))
	}
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
	return blob
}

func TestHuffmanRoundTripEdgeCases(t *testing.T) {
	cases := map[string][]float32{
		"empty":        {},
		"single zero":  {0},
		"single value": {3.25},
		"all zeros":    make([]float32, 1000),
		"all same":     {7, 7, 7, 7, 7, 7},
		"two values":   {1, 2, 1, 2, 2, 1, 1, 1},
		"dense random": tensor.NewGenerator(1).Uniform(5000, 0).Data,
		"sparse":       tensor.NewGenerator(2).Uniform(5000, 0.7).Data,
		"nan and inf":  {float32(math.NaN()), float32(math.Inf(1)), 0, -1},
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { huffRoundTrip(t, src) })
	}
}

func TestHuffmanRegisteredInDispatch(t *testing.T) {
	blob := huffRoundTrip(t, []float32{0, 1, 0, 2})
	a, err := BlobAlgorithm(blob)
	if err != nil || a != Huffman {
		t.Fatalf("BlobAlgorithm = %v, %v", a, err)
	}
	if _, err := Decode(blob); err != nil {
		t.Fatal(err)
	}
	if Huffman.String() != "HUF" {
		t.Fatalf("String = %q", Huffman.String())
	}
	ext := ExtendedAlgorithms()
	if len(ext) != 5 || ext[4] != Huffman {
		t.Fatalf("ExtendedAlgorithms = %v", ext)
	}
	// The paper set stays the paper set.
	if len(Algorithms()) != 4 {
		t.Fatal("Algorithms() must remain the paper's four")
	}
}

func TestHuffmanCompressesAllZeroToOneBitPerByte(t *testing.T) {
	src := make([]float32, 100000)
	blob := huffRoundTrip(t, src)
	// 1 bit per raw byte plus table/header: ratio ≈ 1/8 of bytes ⇒ 0.125.
	if r := Ratio(blob, len(src)); r > 0.13 {
		t.Fatalf("all-zero ratio %v, want ≈0.125", r)
	}
}

func TestHuffmanBeatsRawOnDenseActivations(t *testing.T) {
	// Unlike the sparsity codecs, Huffman helps even at sparsity 0 thanks
	// to the skewed exponent byte.
	tn := tensor.NewGenerator(3).Uniform(100000, 0)
	blob := huffRoundTrip(t, tn.Data)
	if r := Ratio(blob, tn.Len()); r > 0.95 {
		t.Fatalf("dense ratio %v, want < 0.95", r)
	}
	zvc := Ratio(MustNew(ZVC).Encode(tn.Data), tn.Len())
	if Ratio(blob, tn.Len()) >= zvc {
		t.Fatalf("Huffman should beat ZVC on dense data (%v vs %v)",
			Ratio(blob, tn.Len()), zvc)
	}
}

func TestHuffmanRatioModel(t *testing.T) {
	gen := tensor.NewGenerator(4)
	for _, s := range []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9} {
		tn := gen.Uniform(200000, s)
		real := Ratio(MustNew(Huffman).Encode(tn.Data), tn.Len())
		est := EstimateRatio(Huffman, tn.Sparsity())
		if math.Abs(real-est) > 0.04 {
			t.Errorf("sparsity %.2f: real %v, model %v", s, real, est)
		}
	}
}

func TestHuffmanDeterministic(t *testing.T) {
	tn := tensor.NewGenerator(5).Uniform(10000, 0.5)
	a := MustNew(Huffman).Encode(tn.Data)
	b := MustNew(Huffman).Encode(tn.Data)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic bytes")
		}
	}
}

func TestHuffmanRejectsTruncatedAndCorrupt(t *testing.T) {
	c := MustNew(Huffman)
	blob := c.Encode(tensor.NewGenerator(6).Uniform(1000, 0.5).Data)
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := c.Decode(blob[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	// Flipping bytes must never panic; it may error or decode to a
	// different tensor (bit flips inside the payload can be valid codes).
	bad := append([]byte(nil), blob...)
	for i := headerSize; i < len(bad); i += 3 {
		orig := bad[i]
		bad[i] ^= 0xA5
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupt byte %d: %v", i, r)
				}
			}()
			_, _ = c.Decode(bad)
		}()
		bad[i] = orig
	}
	// An over-subscribed code table must be rejected.
	oversub := append([]byte(nil), blob...)
	for i := headerSize; i < headerSize+256; i++ {
		oversub[i] = 1 // 256 symbols of length 1
	}
	if _, err := c.Decode(oversub); err == nil {
		t.Fatal("accepted over-subscribed code table")
	}
	// An empty code table with n > 0 must be rejected.
	empty := append([]byte(nil), blob...)
	for i := headerSize; i < headerSize+256; i++ {
		empty[i] = 0
	}
	if _, err := c.Decode(empty); err == nil {
		t.Fatal("accepted empty code table")
	}
}

func TestHuffmanParallelContainer(t *testing.T) {
	tn := tensor.NewGenerator(7).Uniform(50000, 0.6)
	launch := Launch{Grid: 32, Block: 64}
	blob, err := ParallelEncode(Huffman, tn.Data, launch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelDecode(blob, launch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != tn.Data[i] {
			t.Fatal("parallel round-trip mismatch")
		}
	}
}

func TestHuffmanQuickProperty(t *testing.T) {
	gen := tensor.NewGenerator(8)
	f := func(n uint16, sp uint8) bool {
		size := int(n%2048) + 1
		tn := gen.Uniform(size, float64(sp)/255)
		c := MustNew(Huffman)
		got, err := c.Decode(c.Encode(tn.Data))
		if err != nil || len(got) != len(tn.Data) {
			return false
		}
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(tn.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// fibonacciFreq returns a frequency table whose optimal Huffman tree is a
// maximally skewed vine: symbol i lands at depth ≈ n-i, so n live symbols
// need codes up to ~n-1 bits. 90 symbols stay within int64 yet demand
// codes far beyond huffMaxCodeLen without the length-limit fallback.
func fibonacciFreq() []int64 {
	freq := make([]int64, 256)
	a, b := int64(1), int64(1)
	for i := 0; i < 90; i++ {
		freq[i] = a
		a, b = b, a+b
	}
	return freq
}

func TestHuffmanDepthGuardFibonacci(t *testing.T) {
	freq := fibonacciFreq()
	lengths := huffmanCodeLengths(freq)
	var kraft float64
	for i := 0; i < 90; i++ {
		ln := lengths[i]
		if ln == 0 {
			t.Fatalf("symbol %d lost its code", i)
		}
		if ln > huffMaxCodeLen {
			t.Fatalf("symbol %d got a %d-bit code, limit %d", i, ln, huffMaxCodeLen)
		}
		kraft += 1 / float64(uint64(1)<<uint(ln))
	}
	for i := 90; i < 256; i++ {
		if lengths[i] != 0 {
			t.Fatalf("absent symbol %d got length %d", i, lengths[i])
		}
	}
	// The dampened rebuild is still a true Huffman tree: complete code.
	if math.Abs(kraft-1) > 1e-9 {
		t.Fatalf("Kraft sum %v, want 1", kraft)
	}
	if _, err := newHuffmanDecoder(lengths); err != nil {
		t.Fatalf("decoder rejects the length-limited table: %v", err)
	}
}

func TestHuffmanFibonacciTableRoundTrips(t *testing.T) {
	// Bit-pack a byte stream under the length-limited Fibonacci table and
	// decode it through the public path: before the depth guard this blob
	// shape was self-rejecting (encoder emitted >56-bit codes its own
	// decoder refused as ErrCorrupt).
	freq := fibonacciFreq()
	lengths := huffmanCodeLengths(freq)
	codes := canonicalCodes(lengths)

	const n = 64 // elements → 256 raw bytes
	raw := make([]byte, n*4)
	for i := range raw {
		raw[i] = byte(i % 90)
	}
	blob := putHeader(nil, Huffman, n)
	blob = append(blob, lengths[:]...)
	var acc uint64
	var nbits uint
	for _, b := range raw {
		c := codes[b]
		acc = acc<<uint64(c.len) | uint64(c.code)
		nbits += uint(c.len)
		for nbits >= 8 {
			nbits -= 8
			blob = append(blob, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		blob = append(blob, byte(acc<<(8-nbits)))
	}

	got, err := MustNew(Huffman).Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := 0; i < n; i++ {
		if math.Float32bits(got[i]) != math.Float32bits(readFloat32(raw[i*4:])) {
			t.Fatalf("mismatch at element %d", i)
		}
	}
}

func TestHuffmanDecoderCache(t *testing.T) {
	blob := MustNew(Huffman).Encode(tensor.NewGenerator(9).Uniform(2000, 0.4).Data)
	var lengths [256]byte
	copy(lengths[:], blob[headerSize:headerSize+256])
	d1, err := cachedHuffmanDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cachedHuffmanDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("same code table built two decoders")
	}
	// Invalid tables are rejected, not cached.
	var bad [256]byte
	for i := range bad {
		bad[i] = 1
	}
	if _, err := cachedHuffmanDecoder(bad); err == nil {
		t.Fatal("over-subscribed table accepted")
	}
	huffDecCache.Lock()
	_, cachedBad := huffDecCache.m[bad]
	huffDecCache.Unlock()
	if cachedBad {
		t.Fatal("invalid table was cached")
	}
	// The cache stays bounded under a flood of distinct tables:
	// single-symbol tables (symbol × length) mint well over the cap.
	for sym := 0; sym < 256; sym++ {
		for ln := byte(1); ln <= 8; ln++ {
			var tbl [256]byte
			tbl[sym] = ln
			if _, err := cachedHuffmanDecoder(tbl); err != nil {
				t.Fatalf("single-symbol table rejected: %v", err)
			}
		}
	}
	huffDecCache.Lock()
	size := len(huffDecCache.m)
	huffDecCache.Unlock()
	if size > huffDecCacheMax {
		t.Fatalf("cache grew to %d entries, cap %d", size, huffDecCacheMax)
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	// Build codes from a skewed distribution and verify the prefix-free
	// property exhaustively.
	freq := make([]int64, 256)
	for i := range freq {
		freq[i] = int64(1 + i*i)
	}
	lengths := huffmanCodeLengths(freq)
	codes := canonicalCodes(lengths)
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if a == b || codes[a].len == 0 || codes[b].len == 0 {
				continue
			}
			if codes[a].len <= codes[b].len {
				prefix := codes[b].code >> uint(codes[b].len-codes[a].len)
				if prefix == codes[a].code {
					t.Fatalf("code %d is a prefix of %d", a, b)
				}
			}
		}
	}
	// Kraft equality for a complete code.
	var kraft float64
	for _, c := range codes {
		if c.len > 0 {
			kraft += 1 / float64(uint64(1)<<uint(c.len))
		}
	}
	if math.Abs(kraft-1) > 1e-9 {
		t.Fatalf("Kraft sum %v, want 1", kraft)
	}
}
