package compress

import (
	"errors"
	"fmt"
)

// ChunkError pins a parallel-container failure to the codec and chunk it
// struck, wrapping the underlying cause so errors.Is(err, ErrCorrupt) and
// friends keep working through the container layer. The swapping executor
// reports it verbatim — "which chunk of which codec" is the difference
// between a debuggable corruption and a mystery.
type ChunkError struct {
	Alg    Algorithm
	Chunk  int // zero-based chunk index
	Chunks int // total chunks in the container
	Err    error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("compress: %s chunk %d/%d: %v", e.Alg, e.Chunk, e.Chunks, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// chunkErr wraps err with chunk context unless it already carries it.
func chunkErr(alg Algorithm, chunk, chunks int, err error) error {
	var ce *ChunkError
	if errors.As(err, &ce) {
		return err
	}
	return &ChunkError{Alg: alg, Chunk: chunk, Chunks: chunks, Err: err}
}

// Recoverable reports whether err is a data-level decode failure —
// truncation or corruption of the bytes themselves — that a caller holding
// a pristine copy of the blob can sensibly retry. Structural misuse
// (decoding with the wrong codec, an unknown algorithm byte, an invalid
// launch geometry) is not recoverable: retrying the same call cannot
// succeed.
func Recoverable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrAlgorithmMismatch) {
		return false
	}
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrCorrupt)
}
