//go:build race

package compress

// raceEnabled reports that this test binary was built with the race
// detector, which makes sync.Pool drop puts at random to widen its race
// coverage — so allocation counts are nondeterministic and the
// AllocsPerRun gates must not run.
const raceEnabled = true
