package compress

import (
	"encoding/binary"
	"sync"
)

// lz4Codec implements the LZ4 block format (the dictionary-matching codec
// from Section IV-E, "abcde_bcde → abcde_(5,4)") over the raw little-endian
// bytes of the tensor. It is a from-scratch greedy compressor with a 4-byte
// hash-chain head table, producing standard LZ4 block streams:
//
//	token: high nibble = literal length, low nibble = match length − 4
//	       (0xF in either nibble extends with 255-valued continuation bytes)
//	then literals, then a 2-byte little-endian match offset (1–65535),
//	then match-length continuation bytes.
//
// The block ends with a literal-only sequence; per the format rules the last
// 5 bytes are always literals and no match begins within the final 12 bytes.
type lz4Codec struct{}

func (lz4Codec) Algorithm() Algorithm { return LZ4 }

const (
	lz4MinMatch    = 4
	lz4HashLog     = 16
	lz4MFLimit     = 12 // no match may start within this many bytes of the end
	lz4LastLits    = 5  // last bytes must be literals
	lz4MaxDistance = 65535
)

func lz4Hash(u uint32) uint32 {
	return (u * 2654435761) >> (32 - lz4HashLog)
}

// lz4Tables recycles the compressor's hash-chain head tables.
var lz4Tables = sync.Pool{
	New: func() interface{} { return new([1 << lz4HashLog]int32) },
}

// MaxEncodedLen bounds the blob by the incompressible case: every raw byte
// a literal, plus one length-extension byte per 255 literals and slack for
// token/offset framing. Sequences containing matches only shrink the total
// (a match costs ≤3 bytes plus extensions yet covers ≥4 raw bytes).
func (lz4Codec) MaxEncodedLen(n int) int {
	raw := 4 * n
	return headerSize + raw + raw/255 + 64
}

func (c lz4Codec) Encode(src []float32) []byte {
	raw := len(src) * 4
	blob := make([]byte, 0, headerSize+raw+raw/255+16)
	return c.AppendEncode(blob, src)
}

func (lz4Codec) AppendEncode(dst []byte, src []float32) []byte {
	p := getScratch(len(src) * 4)
	raw := *p
	for i, v := range src {
		binary.LittleEndian.PutUint32(raw[i*4:], float32bits(v))
	}
	dst = putHeader(dst, LZ4, len(src))
	dst = lz4CompressBlock(dst, raw)
	putScratch(p)
	return dst
}

// lz4CompressBlock appends the LZ4 block encoding of raw to dst.
func lz4CompressBlock(dst, raw []byte) []byte {
	n := len(raw)
	if n == 0 {
		return dst
	}
	emitSeq := func(lits []byte, matchLen, offset int) []byte {
		litLen := len(lits)
		token := byte(0)
		if litLen >= 15 {
			token = 0xF0
		} else {
			token = byte(litLen) << 4
		}
		ml := 0
		if matchLen > 0 {
			ml = matchLen - lz4MinMatch
			if ml >= 15 {
				token |= 0x0F
			} else {
				token |= byte(ml)
			}
		}
		dst = append(dst, token)
		if litLen >= 15 {
			rem := litLen - 15
			for rem >= 255 {
				dst = append(dst, 255)
				rem -= 255
			}
			dst = append(dst, byte(rem))
		}
		dst = append(dst, lits...)
		if matchLen > 0 {
			dst = append(dst, byte(offset), byte(offset>>8))
			if ml >= 15 {
				rem := ml - 15
				for rem >= 255 {
					dst = append(dst, 255)
					rem -= 255
				}
				dst = append(dst, byte(rem))
			}
		}
		return dst
	}

	if n < lz4MFLimit+1 {
		// Too small to contain any match; emit one literal run.
		return emitSeq(raw, 0, 0)
	}

	// The 256 KiB hash table exceeds the compiler's stack-variable limit
	// and would heap-allocate per call; recycle it instead. The reset loop
	// below makes a dirty pooled table safe.
	tp := lz4Tables.Get().(*[1 << lz4HashLog]int32)
	defer lz4Tables.Put(tp)
	table := tp
	for i := range table {
		table[i] = -1
	}
	anchor := 0
	pos := 0
	matchLimit := n - lz4MFLimit
	for pos <= matchLimit {
		cur := binary.LittleEndian.Uint32(raw[pos:])
		h := lz4Hash(cur)
		cand := int(table[h])
		table[h] = int32(pos)
		if cand >= 0 && pos-cand <= lz4MaxDistance &&
			binary.LittleEndian.Uint32(raw[cand:]) == cur {
			// Extend the match forward, respecting the tail-literal rule.
			maxEnd := n - lz4LastLits
			mlen := lz4MinMatch
			for pos+mlen < maxEnd && raw[cand+mlen] == raw[pos+mlen] {
				mlen++
			}
			dst = emitSeq(raw[anchor:pos], mlen, pos-cand)
			pos += mlen
			anchor = pos
			// Seed the table inside the match to find overlapping repeats.
			if pos <= matchLimit {
				table[lz4Hash(binary.LittleEndian.Uint32(raw[pos-2:]))] = int32(pos - 2)
			}
			continue
		}
		pos++
	}
	// Trailing literals.
	return emitSeq(raw[anchor:], 0, 0)
}

func (c lz4Codec) Decode(blob []byte) ([]float32, error) {
	n, _, err := parseHeader(blob, LZ4)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, n)
	if err := c.DecodeInto(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func (lz4Codec) DecodeInto(dst []float32, blob []byte) error {
	n, payload, err := parseHeader(blob, LZ4)
	if err != nil {
		return err
	}
	if err := checkDst(dst, n); err != nil {
		return err
	}
	// Stage through pooled raw bytes; the block decoder fills every byte on
	// success, so a dirty recycled scratch buffer is harmless.
	p := getScratch(n * 4)
	raw := *p
	err = lz4DecompressBlock(raw, payload)
	if err == nil {
		for i := range dst {
			dst[i] = readFloat32(raw[i*4:])
		}
	}
	putScratch(p)
	return err
}

// lz4DecompressBlock decodes an LZ4 block into dst, which must be exactly
// the uncompressed size.
func lz4DecompressBlock(dst, src []byte) error {
	if len(dst) == 0 {
		if len(src) != 0 {
			return ErrCorrupt
		}
		return nil
	}
	di, si := 0, 0
	for {
		if si >= len(src) {
			return ErrTruncated
		}
		token := src[si]
		si++
		// Literal length.
		litLen := int(token >> 4)
		if litLen == 15 {
			for {
				if si >= len(src) {
					return ErrTruncated
				}
				b := src[si]
				si++
				litLen += int(b)
				if b != 255 {
					break
				}
			}
		}
		if si+litLen > len(src) || di+litLen > len(dst) {
			return ErrTruncated
		}
		copy(dst[di:], src[si:si+litLen])
		si += litLen
		di += litLen
		if si == len(src) {
			// Final literal-only sequence.
			if di != len(dst) {
				return ErrCorrupt
			}
			return nil
		}
		// Match.
		if si+2 > len(src) {
			return ErrTruncated
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return ErrCorrupt
		}
		matchLen := int(token&0x0F) + lz4MinMatch
		if token&0x0F == 0x0F {
			for {
				if si >= len(src) {
					return ErrTruncated
				}
				b := src[si]
				si++
				matchLen += int(b)
				if b != 255 {
					break
				}
			}
		}
		if di+matchLen > len(dst) {
			return ErrCorrupt
		}
		// Byte-wise copy: offsets smaller than the match length must
		// replicate (the RLE-within-LZ4 case).
		for i := 0; i < matchLen; i++ {
			dst[di] = dst[di-offset]
			di++
		}
	}
}
