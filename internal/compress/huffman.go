package compress

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
)

// Huffman is an extension codec beyond the paper's four ("we wish to
// support more compression algorithms in the future work", Section IV-E):
// a canonical Huffman entropy coder over the tensor's byte stream. Unlike
// the sparsity codecs it exploits the *distribution* of byte values —
// zeros and the narrow exponent range of activation floats — so it also
// compresses dense tensors somewhat, at a higher computational cost.
const Huffman Algorithm = 5

// ExtendedAlgorithms returns the paper's four codecs plus the extensions.
func ExtendedAlgorithms() []Algorithm {
	return append(Algorithms(), Huffman)
}

// huffmanCodec implements canonical Huffman coding.
//
// Payload layout after the common header:
//
//	[256 bytes]  canonical code length per byte symbol (0 = absent)
//	[...]        MSB-first bit-packed codes for the n·4 data bytes
type huffmanCodec struct{}

func (huffmanCodec) Algorithm() Algorithm { return Huffman }

const huffMaxCodeLen = 56 // fits the decoder's uint64 bit buffer

// MaxEncodedLen bounds the blob via Huffman optimality: the built code
// minimises total bits over all prefix codes, including the fixed 8-bit
// code, so the packed stream never exceeds the 4·n raw bytes (+1 for bit
// padding) after the 256-byte length table.
func (huffmanCodec) MaxEncodedLen(n int) int {
	if n == 0 {
		return headerSize
	}
	return headerSize + 256 + 4*n + 1
}

func (c huffmanCodec) Encode(src []float32) []byte {
	blob := make([]byte, 0, headerSize+256+len(src)*4)
	return c.AppendEncode(blob, src)
}

func (huffmanCodec) AppendEncode(dst []byte, src []float32) []byte {
	dst = putHeader(dst, Huffman, len(src))
	if len(src) == 0 {
		return dst
	}
	p := getScratch(len(src) * 4)
	raw := *p
	for i, v := range src {
		binary.LittleEndian.PutUint32(raw[i*4:], float32bits(v))
	}

	var freq [256]int64
	for _, b := range raw {
		freq[b]++
	}
	lengths := huffmanCodeLengths(freq[:])
	codes := canonicalCodes(lengths)
	dst = append(dst, lengths[:]...)

	// Bit-pack MSB-first.
	var acc uint64
	var nbits uint
	for _, b := range raw {
		c := codes[b]
		acc = acc<<uint64(c.len) | uint64(c.code)
		nbits += uint(c.len)
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc<<(8-nbits)))
	}
	putScratch(p)
	return dst
}

func (c huffmanCodec) Decode(blob []byte) ([]float32, error) {
	n, _, err := parseHeader(blob, Huffman)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, n)
	if err := c.DecodeInto(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func (huffmanCodec) DecodeInto(dst []float32, blob []byte) error {
	n, payload, err := parseHeader(blob, Huffman)
	if err != nil {
		return err
	}
	if err := checkDst(dst, n); err != nil {
		return err
	}
	if n == 0 {
		if len(payload) != 0 {
			return ErrCorrupt
		}
		return nil
	}
	if len(payload) < 256 {
		return ErrTruncated
	}
	var lengths [256]byte
	copy(lengths[:], payload[:256])
	data := payload[256:]

	dec, err := newHuffmanDecoder(lengths)
	if err != nil {
		return err
	}
	// Stage through pooled raw bytes; every byte is written on success.
	p := getScratch(n * 4)
	defer putScratch(p)
	raw := *p
	var acc uint64
	var nbits uint
	pos := 0
	for i := range raw {
		sym, consumed, ok := dec.next(acc, nbits)
		for !ok {
			if pos >= len(data) {
				return ErrTruncated
			}
			acc = acc<<8 | uint64(data[pos])
			nbits += 8
			pos++
			if nbits > 64-8 {
				return fmt.Errorf("%w: oversized huffman code", ErrCorrupt)
			}
			sym, consumed, ok = dec.next(acc, nbits)
		}
		raw[i] = sym
		nbits -= consumed
		acc &= (1 << nbits) - 1
	}
	// Remaining bits must be padding only.
	if pos != len(data) || nbits >= 8 {
		return ErrCorrupt
	}
	for i := range dst {
		dst[i] = readFloat32(raw[i*4:])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Code construction.

type huffNode struct {
	freq        int64
	symbol      int // <256 leaf, else internal
	order       int // deterministic tie-break
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return v
}

// huffmanCodeLengths returns the per-symbol code lengths for the frequency
// table (0 for absent symbols). A single-symbol input gets length 1.
func huffmanCodeLengths(freq []int64) [256]byte {
	var lengths [256]byte
	h := &huffHeap{}
	order := 0
	for sym, f := range freq {
		if f > 0 {
			heap.Push(h, &huffNode{freq: f, symbol: sym, order: order})
			order++
		}
	}
	if h.Len() == 1 {
		lengths[(*h)[0].symbol] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, symbol: 256, order: order, left: a, right: b})
		order++
	}
	root := heap.Pop(h).(*huffNode)
	var walk func(n *huffNode, depth byte)
	walk = func(n *huffNode, depth byte) {
		if n.symbol < 256 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

type huffCode struct {
	code uint64
	len  byte
}

// canonicalCodes assigns canonical codes (sorted by length then symbol).
func canonicalCodes(lengths [256]byte) [256]huffCode {
	type entry struct {
		sym int
		ln  byte
	}
	var entries []entry
	for sym, ln := range lengths {
		if ln > 0 {
			entries = append(entries, entry{sym, ln})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].ln != entries[j].ln {
			return entries[i].ln < entries[j].ln
		}
		return entries[i].sym < entries[j].sym
	})
	var codes [256]huffCode
	code := uint64(0)
	prevLen := byte(0)
	for _, e := range entries {
		code <<= uint(e.ln - prevLen)
		codes[e.sym] = huffCode{code: code, len: e.ln}
		code++
		prevLen = e.ln
	}
	return codes
}

// huffmanDecoder decodes canonical codes via per-length first-code/offset
// tables.
type huffmanDecoder struct {
	maxLen    byte
	firstCode [huffMaxCodeLen + 2]uint64 // first canonical code of each length
	count     [huffMaxCodeLen + 2]int    // symbols per length
	offset    [huffMaxCodeLen + 2]int    // index of first symbol of each length
	symbols   []byte                     // canonical symbol order
}

func newHuffmanDecoder(lengths [256]byte) (*huffmanDecoder, error) {
	d := &huffmanDecoder{}
	type entry struct {
		sym int
		ln  byte
	}
	var entries []entry
	for sym, ln := range lengths {
		if ln == 0 {
			continue
		}
		if ln > huffMaxCodeLen {
			return nil, fmt.Errorf("%w: code length %d", ErrCorrupt, ln)
		}
		entries = append(entries, entry{sym, ln})
		if ln > d.maxLen {
			d.maxLen = ln
		}
		d.count[ln]++
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: empty code table", ErrCorrupt)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].ln != entries[j].ln {
			return entries[i].ln < entries[j].ln
		}
		return entries[i].sym < entries[j].sym
	})
	d.symbols = make([]byte, len(entries))
	for i, e := range entries {
		d.symbols[i] = byte(e.sym)
	}
	// Kraft check and canonical first codes.
	code := uint64(0)
	idx := 0
	var kraft float64
	for ln := byte(1); ln <= d.maxLen; ln++ {
		code <<= 1
		d.firstCode[ln] = code
		d.offset[ln] = idx
		code += uint64(d.count[ln])
		idx += d.count[ln]
		kraft += float64(d.count[ln]) / float64(uint64(1)<<uint(ln))
	}
	if len(entries) > 1 && kraft > 1.0000001 {
		return nil, fmt.Errorf("%w: over-subscribed code table", ErrCorrupt)
	}
	return d, nil
}

// next attempts to decode one symbol from the top of the accumulator
// holding nbits valid bits. It reports the symbol, bits consumed, and
// whether a full code was available.
func (d *huffmanDecoder) next(acc uint64, nbits uint) (sym byte, consumed uint, ok bool) {
	for ln := byte(1); ln <= d.maxLen && uint(ln) <= nbits; ln++ {
		if d.count[ln] == 0 {
			continue
		}
		prefix := acc >> (nbits - uint(ln))
		if prefix >= d.firstCode[ln] && prefix < d.firstCode[ln]+uint64(d.count[ln]) {
			return d.symbols[d.offset[ln]+int(prefix-d.firstCode[ln])], uint(ln), true
		}
	}
	return 0, 0, false
}
