package compress

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Huffman is an extension codec beyond the paper's four ("we wish to
// support more compression algorithms in the future work", Section IV-E):
// a canonical Huffman entropy coder over the tensor's byte stream. Unlike
// the sparsity codecs it exploits the *distribution* of byte values —
// zeros and the narrow exponent range of activation floats — so it also
// compresses dense tensors somewhat, at a higher computational cost.
const Huffman Algorithm = 5

// ExtendedAlgorithms returns the paper's four codecs plus the extensions.
func ExtendedAlgorithms() []Algorithm {
	return append(Algorithms(), Huffman)
}

// huffmanCodec implements canonical Huffman coding.
//
// Payload layout after the common header:
//
//	[256 bytes]  canonical code length per byte symbol (0 = absent)
//	[...]        MSB-first bit-packed codes for the n·4 data bytes
type huffmanCodec struct{}

func (huffmanCodec) Algorithm() Algorithm { return Huffman }

const huffMaxCodeLen = 56 // fits the decoder's uint64 bit buffer

// MaxEncodedLen bounds the blob via Huffman optimality: the built code
// minimises total bits over all prefix codes, including the fixed 8-bit
// code, so the packed stream never exceeds the 4·n raw bytes (+1 for bit
// padding) after the 256-byte length table.
func (huffmanCodec) MaxEncodedLen(n int) int {
	if n == 0 {
		return headerSize
	}
	return headerSize + 256 + 4*n + 1
}

func (c huffmanCodec) Encode(src []float32) []byte {
	blob := make([]byte, 0, headerSize+256+len(src)*4)
	return c.AppendEncode(blob, src)
}

func (huffmanCodec) AppendEncode(dst []byte, src []float32) []byte {
	dst = putHeader(dst, Huffman, len(src))
	if len(src) == 0 {
		return dst
	}
	p := getScratch(len(src) * 4)
	defer putScratch(p)
	raw := *p
	for i, v := range src {
		binary.LittleEndian.PutUint32(raw[i*4:], float32bits(v))
	}

	var freq [256]int64
	for _, b := range raw {
		freq[b]++
	}
	lengths := huffmanCodeLengths(freq[:])
	codes := canonicalCodes(lengths)
	dst = append(dst, lengths[:]...)

	// Bit-pack MSB-first. nbits stays below 8 between symbols and every
	// code is at most huffMaxCodeLen bits, so the accumulator never
	// overflows its 64 bits.
	var acc uint64
	var nbits uint
	for _, b := range raw {
		c := codes[b]
		acc = acc<<uint64(c.len) | uint64(c.code)
		nbits += uint(c.len)
		for nbits >= 8 {
			nbits -= 8
			dst = append(dst, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc<<(8-nbits)))
	}
	return dst
}

func (c huffmanCodec) Decode(blob []byte) ([]float32, error) {
	n, _, err := parseHeader(blob, Huffman)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, n)
	if err := c.DecodeInto(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func (huffmanCodec) DecodeInto(dst []float32, blob []byte) error {
	n, payload, err := parseHeader(blob, Huffman)
	if err != nil {
		return err
	}
	if err := checkDst(dst, n); err != nil {
		return err
	}
	if n == 0 {
		if len(payload) != 0 {
			return ErrCorrupt
		}
		return nil
	}
	if len(payload) < 256 {
		return ErrTruncated
	}
	var lengths [256]byte
	copy(lengths[:], payload[:256])
	data := payload[256:]

	dec, err := cachedHuffmanDecoder(lengths)
	if err != nil {
		return err
	}
	// Stage through pooled raw bytes; every byte is written on success.
	p := getScratch(n * 4)
	defer putScratch(p)
	raw := *p
	var acc uint64
	var nbits uint
	pos := 0
	for i := range raw {
		sym, consumed, ok := dec.next(acc, nbits)
		for !ok {
			if pos >= len(data) {
				return ErrTruncated
			}
			acc = acc<<8 | uint64(data[pos])
			nbits += 8
			pos++
			if nbits > 64-8 {
				return fmt.Errorf("%w: oversized huffman code", ErrCorrupt)
			}
			sym, consumed, ok = dec.next(acc, nbits)
		}
		raw[i] = sym
		nbits -= consumed
		acc &= (1 << nbits) - 1
	}
	// Remaining bits must be padding only.
	if pos != len(data) || nbits >= 8 {
		return ErrCorrupt
	}
	for i := range dst {
		dst[i] = readFloat32(raw[i*4:])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Code construction.

// huffBuilder holds the whole tree-construction workspace as fixed-size
// arrays so building code lengths performs no per-node heap allocations:
// nodes are integer ids (leaves first, in symbol order, then internals in
// creation order) with a binary min-heap of ids keyed on (freq, id). The
// (freq, id) key is a total order, so the pop sequence — and therefore the
// emitted code lengths — is byte-identical to the previous
// container/heap-of-pointers construction.
type huffBuilder struct {
	nodeFreq [511]int64 // id → subtree frequency
	parent   [511]int16 // id → parent id (root: -1)
	sym      [256]int16 // leaf id → byte symbol
	heap     [256]int16 // live node ids, min-heap order
	size     int
}

func (b *huffBuilder) less(i, j int) bool {
	x, y := b.heap[i], b.heap[j]
	if b.nodeFreq[x] != b.nodeFreq[y] {
		return b.nodeFreq[x] < b.nodeFreq[y]
	}
	return x < y
}

func (b *huffBuilder) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= b.size {
			return
		}
		m := l
		if r := l + 1; r < b.size && b.less(r, l) {
			m = r
		}
		if !b.less(m, i) {
			return
		}
		b.heap[i], b.heap[m] = b.heap[m], b.heap[i]
		i = m
	}
}

func (b *huffBuilder) pop() int16 {
	top := b.heap[0]
	b.size--
	b.heap[0] = b.heap[b.size]
	b.siftDown(0)
	return top
}

func (b *huffBuilder) push(id int16) {
	i := b.size
	b.heap[i] = id
	b.size++
	for i > 0 {
		p := (i - 1) / 2
		if !b.less(i, p) {
			break
		}
		b.heap[i], b.heap[p] = b.heap[p], b.heap[i]
		i = p
	}
}

// build computes code lengths for freq into lengths and returns the
// maximum depth (0 when freq is empty). Absent symbols keep length 0.
func (b *huffBuilder) build(freq *[256]int64, lengths *[256]byte) int {
	n := 0
	for s, f := range freq {
		if f > 0 {
			b.nodeFreq[n] = f
			b.sym[n] = int16(s)
			b.heap[n] = int16(n)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	if n == 1 {
		lengths[b.sym[0]] = 1
		return 1
	}
	b.size = n
	for i := n/2 - 1; i >= 0; i-- {
		b.siftDown(i)
	}
	next := int16(n)
	for b.size > 1 {
		x := b.pop()
		y := b.pop()
		b.nodeFreq[next] = b.nodeFreq[x] + b.nodeFreq[y]
		b.parent[x] = next
		b.parent[y] = next
		b.push(next)
		next++
	}
	root := b.heap[0]
	b.parent[root] = -1
	maxDepth := 0
	for i := 0; i < n; i++ {
		d := 0
		for p := int16(i); b.parent[p] >= 0; p = b.parent[p] {
			d++
		}
		if d > maxDepth {
			maxDepth = d
		}
		lengths[b.sym[i]] = byte(d)
	}
	return maxDepth
}

// huffmanCodeLengths returns the per-symbol code lengths for the frequency
// table (0 for absent symbols). A single-symbol input gets length 1.
//
// Lengths are limited to huffMaxCodeLen: an extremely skewed table (e.g.
// Fibonacci-distributed frequencies) can push the optimal tree past the
// decoder's 56-bit accumulator, so when that happens the frequencies are
// dampened (halved, floored at 1) and the tree rebuilt until it fits.
// Dampening preserves a true Huffman tree over the adjusted frequencies,
// so the code stays prefix-free with Kraft sum exactly 1 — it converges
// because equal frequencies yield depth ⌈log2 256⌉ = 8.
func huffmanCodeLengths(freq []int64) [256]byte {
	var lengths [256]byte
	var f [256]int64
	copy(f[:], freq)
	for {
		var b huffBuilder
		if b.build(&f, &lengths) <= huffMaxCodeLen {
			return lengths
		}
		for i := range f {
			if f[i] > 0 {
				f[i] = f[i]>>1 | 1
			}
		}
	}
}

type huffCode struct {
	code uint64
	len  byte
}

// canonicalCodes assigns canonical codes (ordered by length, then symbol)
// via per-length counting — no sorting, no allocation: the first code of
// each length is derived from the code-length histogram (the classic
// bl_count recurrence) and symbols claim codes of their length in symbol
// order, which is exactly canonical order.
func canonicalCodes(lengths [256]byte) [256]huffCode {
	var count [huffMaxCodeLen + 2]int
	for _, ln := range lengths {
		if ln > 0 {
			count[ln]++
		}
	}
	var next [huffMaxCodeLen + 2]uint64
	code := uint64(0)
	for ln := 1; ln <= huffMaxCodeLen; ln++ {
		code = (code + uint64(count[ln-1])) << 1
		next[ln] = code
	}
	var codes [256]huffCode
	for sym, ln := range lengths {
		if ln == 0 {
			continue
		}
		codes[sym] = huffCode{code: next[ln], len: ln}
		next[ln]++
	}
	return codes
}

// ---------------------------------------------------------------------------
// Decoding.

// huffTableBits sizes the decoder's primary lookup table: any code of at
// most this many bits decodes with a single table load instead of the
// per-length scan. 11 bits covers every code the encoder emits for typical
// tensor byte streams while keeping the table at 4 KiB per decoder.
const huffTableBits = 11

// huffmanDecoder decodes canonical codes via a primary lookup table for
// short codes with per-length first-code/offset tables as the fallback for
// longer ones. Decoders are immutable after construction and shared
// concurrently through the package-level cache.
type huffmanDecoder struct {
	maxLen    byte
	firstCode [huffMaxCodeLen + 2]uint64 // first canonical code of each length
	count     [huffMaxCodeLen + 2]int    // symbols per length
	offset    [huffMaxCodeLen + 2]int    // index of first symbol of each length
	nsyms     int
	symbols   [256]byte                 // canonical symbol order
	table     [1 << huffTableBits]uint16 // len<<8 | symbol; 0 = no code ≤ huffTableBits bits
}

// huffDecCacheMax bounds the decoder cache. Parallel-container blobs carry
// one code table per chunk, so steady-state working sets reach hundreds of
// distinct tables; adversarial inputs could mint unlimited ones, hence the
// clear-on-full eviction (each decoder is ~5 KiB).
const huffDecCacheMax = 1024

var huffDecCache = struct {
	sync.Mutex
	m map[[256]byte]*huffmanDecoder
}{m: make(map[[256]byte]*huffmanDecoder)}

// cachedHuffmanDecoder returns a shared decoder for the code-length table,
// building and memoising it on first sight. Invalid tables are not cached:
// rejecting them is already cheap and caching errors would let adversarial
// blobs fill the map with garbage.
func cachedHuffmanDecoder(lengths [256]byte) (*huffmanDecoder, error) {
	huffDecCache.Lock()
	d := huffDecCache.m[lengths]
	huffDecCache.Unlock()
	if d != nil {
		return d, nil
	}
	d, err := newHuffmanDecoder(lengths)
	if err != nil {
		return nil, err
	}
	huffDecCache.Lock()
	if len(huffDecCache.m) >= huffDecCacheMax {
		huffDecCache.m = make(map[[256]byte]*huffmanDecoder, huffDecCacheMax)
	}
	huffDecCache.m[lengths] = d
	huffDecCache.Unlock()
	return d, nil
}

func newHuffmanDecoder(lengths [256]byte) (*huffmanDecoder, error) {
	d := &huffmanDecoder{}
	for _, ln := range lengths {
		if ln == 0 {
			continue
		}
		if ln > huffMaxCodeLen {
			return nil, fmt.Errorf("%w: code length %d", ErrCorrupt, ln)
		}
		if ln > d.maxLen {
			d.maxLen = ln
		}
		d.count[ln]++
		d.nsyms++
	}
	if d.nsyms == 0 {
		return nil, fmt.Errorf("%w: empty code table", ErrCorrupt)
	}
	// Kraft check and canonical first codes.
	code := uint64(0)
	idx := 0
	var kraft float64
	for ln := byte(1); ln <= d.maxLen; ln++ {
		code <<= 1
		d.firstCode[ln] = code
		d.offset[ln] = idx
		code += uint64(d.count[ln])
		idx += d.count[ln]
		kraft += float64(d.count[ln]) / float64(uint64(1)<<uint(ln))
	}
	if d.nsyms > 1 && kraft > 1.0000001 {
		return nil, fmt.Errorf("%w: over-subscribed code table", ErrCorrupt)
	}
	// Fill the canonical symbol list: walking symbols in ascending order
	// and appending each at its length's cursor IS (length, symbol) order.
	var fill [huffMaxCodeLen + 2]int
	copy(fill[:], d.offset[:])
	for sym, ln := range lengths {
		if ln == 0 {
			continue
		}
		rank := fill[ln] - d.offset[ln]
		d.symbols[fill[ln]] = byte(sym)
		fill[ln]++
		if ln <= huffTableBits {
			// Every huffTableBits-bit window starting with this code maps
			// to it; the Kraft bound keeps base+span within the table.
			e := uint16(ln)<<8 | uint16(sym)
			base := (d.firstCode[ln] + uint64(rank)) << (huffTableBits - uint(ln))
			span := uint64(1) << (huffTableBits - uint(ln))
			for j := uint64(0); j < span; j++ {
				d.table[base+j] = e
			}
		}
	}
	return d, nil
}

// next attempts to decode one symbol from the top of the accumulator
// holding nbits valid bits. It reports the symbol, bits consumed, and
// whether a full code was available. Short codes resolve through the
// primary table; only codes longer than huffTableBits fall back to the
// per-length scan.
func (d *huffmanDecoder) next(acc uint64, nbits uint) (sym byte, consumed uint, ok bool) {
	if nbits > 0 {
		var idx uint64
		if nbits >= huffTableBits {
			idx = acc >> (nbits - huffTableBits)
		} else {
			idx = acc << (huffTableBits - nbits) & (1<<huffTableBits - 1)
		}
		if e := d.table[idx]; e != 0 {
			if ln := uint(e >> 8); ln <= nbits {
				return byte(e), ln, true
			}
			// The window's owning code needs more bits than we hold, and
			// any shorter code would own the window instead: no match yet.
			return 0, 0, false
		}
		if nbits <= huffTableBits {
			// All codes of ≤ nbits bits live in the table; a zero entry
			// means nothing this short matches.
			return 0, 0, false
		}
	}
	for ln := byte(huffTableBits + 1); ln <= d.maxLen && uint(ln) <= nbits; ln++ {
		if d.count[ln] == 0 {
			continue
		}
		prefix := acc >> (nbits - uint(ln))
		if prefix >= d.firstCode[ln] && prefix < d.firstCode[ln]+uint64(d.count[ln]) {
			return d.symbols[d.offset[ln]+int(prefix-d.firstCode[ln])], uint(ln), true
		}
	}
	return 0, 0, false
}
