package compress

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the package's two reuse mechanisms for the codec hot
// path: a persistent worker pool that replaces per-call goroutine churn,
// and a sync.Pool of byte scratch buffers for the codecs that serialise
// through a raw little-endian byte image (LZ4, Huffman).

// ---------------------------------------------------------------------------
// Persistent worker pool.
//
// ParallelEncode/ParallelDecode used to spawn and tear down a goroutine
// pool on every call — pure overhead on the hottest path in the repo, paid
// once per swap. The workers below start lazily on the first parallel call,
// are sized to GOMAXPROCS at that moment, and live for the process. Work
// is claimed with an atomic index counter rather than a channel of indices,
// so dispatch is one atomic add per chunk instead of a blocking goroutine
// handoff per chunk.

// parTask is one parallel (de)compression call: fn(i) for i in [0, jobs).
// Workers and the submitting goroutine race on next to claim indices; wg
// tracks the pool workers that were handed the task.
type parTask struct {
	fn   func(int)
	jobs int
	next atomic.Int64
	wg   sync.WaitGroup
}

// run claims and executes job indices until the task is exhausted.
func (t *parTask) run() {
	for {
		i := t.next.Add(1) - 1
		if int(i) >= t.jobs {
			return
		}
		t.fn(int(i))
	}
}

var (
	poolOnce sync.Once
	poolCh   chan *parTask
)

// poolStart launches the persistent workers. Sized to GOMAXPROCS at first
// use: workerCount never asks for more host concurrency than that, so one
// resident worker per P is enough to saturate any launch geometry.
func poolStart() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	poolCh = make(chan *parTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range poolCh {
				t.run()
				t.wg.Done()
			}
		}()
	}
}

// runWorkers runs fn(i) for i in [0,jobs) with at most the given
// concurrency. The calling goroutine always participates, so a task never
// waits idle on pool availability; pool workers only add parallelism. The
// buffered submission channel never blocks the caller: if the pool is
// saturated by concurrent swap streams, the surplus helper slots are
// dropped and the work still completes on the claimants already running.
func runWorkers(jobs, workers int, fn func(int)) {
	if jobs == 0 {
		return
	}
	if workers <= 1 || jobs == 1 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}
	poolOnce.Do(poolStart)
	t := &parTask{fn: fn, jobs: jobs}
	helpers := workers - 1
	t.wg.Add(helpers)
	for h := 0; h < helpers; h++ {
		select {
		case poolCh <- t:
		default:
			t.wg.Done() // pool saturated; shed the helper slot
		}
	}
	t.run()
	t.wg.Wait()
}

// Go schedules fn on the package's persistent worker pool, starting the
// pool on first use. Unlike the chunk helpers runWorkers dispatches, a Go
// submission is never shed: the send blocks until a worker (or channel
// slot) frees up, so the work is guaranteed to run. This is the seam the
// swapping executor's async pipeline shares the codec workers through —
// one resident pool serves both chunk-level parallelism and
// operation-level asynchrony, so async swaps never add goroutine churn.
//
// fn must not call Go (a worker blocked submitting to its own pool can
// deadlock a saturated pool); calling runWorkers from fn is safe, because
// chunk helpers shed rather than block and the caller always participates.
func Go(fn func()) {
	poolOnce.Do(poolStart)
	t := &parTask{fn: func(int) { fn() }, jobs: 1}
	t.wg.Add(1)
	poolCh <- t
}

// ---------------------------------------------------------------------------
// Byte scratch pool.
//
// LZ4 and Huffman operate on the tensor's raw little-endian bytes; their
// encode and decode paths need a 4·n-byte staging buffer that used to be a
// fresh allocation per call (per chunk, on the parallel path). The pool
// recycles them process-wide. Ownership rule: a scratch buffer is borrowed
// for the duration of one encode/decode call and must be returned before
// the call's result escapes — nothing in a returned blob or decoded tensor
// may alias scratch memory.

var byteScratch = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getScratch borrows a byte buffer of length n.
func getScratch(n int) *[]byte {
	p := byteScratch.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putScratch returns a buffer borrowed with getScratch.
func putScratch(p *[]byte) { byteScratch.Put(p) }
