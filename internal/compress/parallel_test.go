package compress

import (
	"math"
	"testing"

	"cswap/internal/tensor"
)

func TestLaunchValidate(t *testing.T) {
	valid := []Launch{{1, 64}, {4096, 128}, {197, 64}}
	for _, l := range valid {
		if err := l.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", l, err)
		}
	}
	invalid := []Launch{{0, 64}, {4097, 64}, {10, 32}, {10, 256}, {-1, 128}}
	for _, l := range invalid {
		if err := l.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", l)
		}
	}
	if (Launch{2, 64}).Threads() != 128 {
		t.Error("Threads() wrong")
	}
	if (Launch{197, 64}).String() != "(197,64)" {
		t.Errorf("String = %q", Launch{197, 64}.String())
	}
}

func TestParallelRoundTripAllAlgorithms(t *testing.T) {
	gen := tensor.NewGenerator(31)
	launches := []Launch{{1, 64}, {7, 64}, {64, 128}, {1024, 64}}
	for _, a := range Algorithms() {
		for _, l := range launches {
			tn := gen.Uniform(50000, 0.5)
			blob, err := ParallelEncode(a, tn.Data, l)
			if err != nil {
				t.Fatalf("%s %v encode: %v", a, l, err)
			}
			got, err := ParallelDecode(blob, l)
			if err != nil {
				t.Fatalf("%s %v decode: %v", a, l, err)
			}
			for i := range tn.Data {
				if math.Float32bits(got[i]) != math.Float32bits(tn.Data[i]) {
					t.Fatalf("%s %v mismatch at %d", a, l, i)
				}
			}
		}
	}
}

func TestParallelEncodeDeterministicAcrossWorkerCounts(t *testing.T) {
	// The blob must depend only on the launch geometry, not on scheduling.
	gen := tensor.NewGenerator(37)
	tn := gen.Uniform(100000, 0.6)
	l := Launch{128, 64}
	a, err := ParallelEncode(ZVC, tn.Data, l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := ParallelEncode(ZVC, tn.Data, l)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatal("non-deterministic parallel encode length")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("non-deterministic parallel encode bytes")
			}
		}
	}
}

func TestParallelSmallTensorFewerChunksThanGrid(t *testing.T) {
	tn := tensor.NewGenerator(41).Uniform(100, 0.5)
	blob, err := ParallelEncode(ZVC, tn.Data, Launch{4096, 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelDecode(blob, Launch{4096, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
}

func TestParallelEmptyTensor(t *testing.T) {
	blob, err := ParallelEncode(RLE, nil, Launch{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelDecode(blob, Launch{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestParallelRejectsBadLaunch(t *testing.T) {
	if _, err := ParallelEncode(ZVC, []float32{1}, Launch{0, 64}); err == nil {
		t.Fatal("accepted invalid launch")
	}
}

func TestParallelDecodeRejectsCorruptContainer(t *testing.T) {
	tn := tensor.NewGenerator(43).Uniform(1000, 0.5)
	blob, err := ParallelEncode(CSR, tn.Data, Launch{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	l := Launch{8, 64}
	if _, err := ParallelDecode(nil, l); err == nil {
		t.Error("accepted nil blob")
	}
	if _, err := ParallelDecode(blob[:10], l); err == nil {
		t.Error("accepted truncated header")
	}
	notContainer := append([]byte{0x00}, blob[1:]...)
	if _, err := ParallelDecode(notContainer, l); err == nil {
		t.Error("accepted wrong container marker")
	}
	truncated := blob[:len(blob)-3]
	if _, err := ParallelDecode(truncated, l); err == nil {
		t.Error("accepted truncated payload")
	}
}

func TestChunkBoundsAlignment(t *testing.T) {
	for _, tc := range []struct{ n, grid int }{
		{0, 4}, {1, 4}, {31, 4}, {32, 4}, {33, 4}, {1000, 7}, {1 << 20, 4096},
	} {
		spans := chunkBounds(tc.n, tc.grid)
		prev := 0
		for i, sp := range spans {
			if sp.lo != prev {
				t.Fatalf("n=%d grid=%d: span %d starts at %d, want %d", tc.n, tc.grid, i, sp.lo, prev)
			}
			if sp.lo%32 != 0 {
				t.Fatalf("n=%d grid=%d: span %d not 32-aligned", tc.n, tc.grid, i)
			}
			if sp.hi <= sp.lo && tc.n > 0 {
				t.Fatalf("n=%d grid=%d: empty span %d", tc.n, tc.grid, i)
			}
			prev = sp.hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d grid=%d: spans cover %d", tc.n, tc.grid, prev)
		}
		if len(spans) > tc.grid && tc.n > 0 {
			t.Fatalf("n=%d grid=%d: %d spans exceed grid", tc.n, tc.grid, len(spans))
		}
	}
}
