package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"

	"cswap/internal/tensor"
)

func TestLaunchValidate(t *testing.T) {
	valid := []Launch{{1, 64}, {4096, 128}, {197, 64}}
	for _, l := range valid {
		if err := l.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", l, err)
		}
	}
	invalid := []Launch{{0, 64}, {4097, 64}, {10, 32}, {10, 256}, {-1, 128}}
	for _, l := range invalid {
		if err := l.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", l)
		}
	}
	if (Launch{2, 64}).Threads() != 128 {
		t.Error("Threads() wrong")
	}
	if (Launch{197, 64}).String() != "(197,64)" {
		t.Errorf("String = %q", Launch{197, 64}.String())
	}
}

func TestParallelRoundTripAllAlgorithms(t *testing.T) {
	gen := tensor.NewGenerator(31)
	launches := []Launch{{1, 64}, {7, 64}, {64, 128}, {1024, 64}}
	for _, a := range Algorithms() {
		for _, l := range launches {
			tn := gen.Uniform(50000, 0.5)
			blob, err := ParallelEncode(a, tn.Data, l)
			if err != nil {
				t.Fatalf("%s %v encode: %v", a, l, err)
			}
			got, err := ParallelDecode(blob, l)
			if err != nil {
				t.Fatalf("%s %v decode: %v", a, l, err)
			}
			for i := range tn.Data {
				if math.Float32bits(got[i]) != math.Float32bits(tn.Data[i]) {
					t.Fatalf("%s %v mismatch at %d", a, l, i)
				}
			}
		}
	}
}

func TestParallelEncodeDeterministicAcrossWorkerCounts(t *testing.T) {
	// The blob must depend only on the launch geometry, not on scheduling.
	gen := tensor.NewGenerator(37)
	tn := gen.Uniform(100000, 0.6)
	l := Launch{128, 64}
	a, err := ParallelEncode(ZVC, tn.Data, l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := ParallelEncode(ZVC, tn.Data, l)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatal("non-deterministic parallel encode length")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("non-deterministic parallel encode bytes")
			}
		}
	}
}

func TestParallelSmallTensorFewerChunksThanGrid(t *testing.T) {
	tn := tensor.NewGenerator(41).Uniform(100, 0.5)
	blob, err := ParallelEncode(ZVC, tn.Data, Launch{4096, 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelDecode(blob, Launch{4096, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
}

func TestParallelEmptyTensor(t *testing.T) {
	blob, err := ParallelEncode(RLE, nil, Launch{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelDecode(blob, Launch{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len = %d, want 0", len(got))
	}
}

func TestParallelRejectsBadLaunch(t *testing.T) {
	if _, err := ParallelEncode(ZVC, []float32{1}, Launch{0, 64}); err == nil {
		t.Fatal("accepted invalid launch")
	}
}

func TestParallelDecodeRejectsCorruptContainer(t *testing.T) {
	tn := tensor.NewGenerator(43).Uniform(1000, 0.5)
	blob, err := ParallelEncode(CSR, tn.Data, Launch{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	l := Launch{8, 64}
	if _, err := ParallelDecode(nil, l); err == nil {
		t.Error("accepted nil blob")
	}
	if _, err := ParallelDecode(blob[:10], l); err == nil {
		t.Error("accepted truncated header")
	}
	notContainer := append([]byte{0x00}, blob[1:]...)
	if _, err := ParallelDecode(notContainer, l); err == nil {
		t.Error("accepted wrong container marker")
	}
	truncated := blob[:len(blob)-3]
	if _, err := ParallelDecode(truncated, l); err == nil {
		t.Error("accepted truncated payload")
	}
}

func TestParallelDecodeValidatesLaunch(t *testing.T) {
	blob, err := ParallelEncode(ZVC, []float32{1, 0, 2}, Launch{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Launch{{0, 64}, {4097, 64}, {8, 32}, {-1, 128}} {
		if _, err := ParallelDecode(blob, l); err == nil {
			t.Errorf("ParallelDecode accepted invalid launch %v", l)
		}
	}
}

func TestWorkerCountNeverOversubscribes(t *testing.T) {
	maxW := runtime.GOMAXPROCS(0)
	// Block=128 used to produce 2×GOMAXPROCS CPU-bound workers.
	if w := workerCount(Launch{Grid: 4096, Block: 128}, 1<<20); w != maxW {
		t.Fatalf("Block=128 workers = %d, want GOMAXPROCS (%d)", w, maxW)
	}
	if w := workerCount(Launch{Grid: 4096, Block: 64}, 1<<20); w != maxW {
		t.Fatalf("Block=64 workers = %d, want GOMAXPROCS (%d)", w, maxW)
	}
	// The job count bounds workers too; zero jobs still yields one.
	wantSmall := 2
	if maxW < wantSmall {
		wantSmall = maxW
	}
	if w := workerCount(Launch{Grid: 16, Block: 128}, 2); w != wantSmall {
		t.Fatalf("2 jobs → %d workers, want %d", w, wantSmall)
	}
	if w := workerCount(Launch{Grid: 1, Block: 64}, 0); w != 1 {
		t.Fatalf("0 jobs → %d workers", w)
	}
}

func TestParallelDecodeRejectsExcessChunkClaim(t *testing.T) {
	tn := tensor.NewGenerator(51).Uniform(1000, 0.5)
	blob, err := ParallelEncode(ZVC, tn.Data, Launch{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 elements support at most ceil(1000/32)=32 chunks; claim 33.
	bad := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(bad[10:14], 33)
	if _, err := ParallelDecode(bad, Launch{8, 64}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("excess chunk claim: err = %v, want ErrCorrupt", err)
	}
	// A zero chunk count is equally corrupt.
	binary.LittleEndian.PutUint32(bad[10:14], 0)
	if _, err := ParallelDecode(bad, Launch{8, 64}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero chunk claim: err = %v, want ErrCorrupt", err)
	}
}

func TestParallelDecodeRejectsHostileElementCount(t *testing.T) {
	tn := tensor.NewGenerator(53).Uniform(1000, 0.5)
	blob, err := ParallelEncode(RLE, tn.Data, Launch{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	// A container header claiming 2^62 elements must be rejected before any
	// allocation happens.
	bad := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(bad[2:10], 1<<62)
	if _, err := ParallelDecode(bad, Launch{4, 64}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile n: err = %v, want ErrCorrupt", err)
	}
	// A plausible-but-wrong count disagrees with the per-chunk headers and
	// is caught by the pre-allocation cross-check.
	binary.LittleEndian.PutUint64(bad[2:10], 1000+32)
	if _, err := ParallelDecode(bad, Launch{4, 64}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inconsistent n: err = %v, want ErrCorrupt", err)
	}
}

func TestParallelDecodeRejectsUnknownAlgorithmByte(t *testing.T) {
	blob, err := ParallelEncode(ZVC, []float32{1, 0, 2, 0}, Launch{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[1] = 0xEE
	if _, err := ParallelDecode(bad, Launch{1, 64}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown algorithm byte: err = %v, want ErrCorrupt", err)
	}
}

func TestParallelDecodeChunkErrorContext(t *testing.T) {
	// A chunk whose own algorithm byte disagrees with the container must
	// surface a ChunkError naming the codec and chunk.
	tn := tensor.NewGenerator(57).Uniform(200, 0.5)
	blob, err := ParallelEncode(CSR, tn.Data, Launch{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	numChunks := int(binary.LittleEndian.Uint32(blob[10:14]))
	dirEnd := 14 + 8*numChunks
	secondOff := dirEnd + int(binary.LittleEndian.Uint64(blob[14:22]))
	bad := append([]byte(nil), blob...)
	bad[secondOff] = byte(ZVC) // chunk 1 claims ZVC inside a CSR container
	_, err = ParallelDecode(bad, Launch{4, 64})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChunkError", err)
	}
	if ce.Alg != CSR || ce.Chunk != 1 || ce.Chunks != numChunks {
		t.Fatalf("chunk context = %+v", ce)
	}
}

func TestParallelTruncationEveryBoundary(t *testing.T) {
	l := Launch{4, 64}
	for _, a := range ExtendedAlgorithms() {
		tn := tensor.NewGenerator(61).Uniform(500, 0.5)
		blob, err := ParallelEncode(a, tn.Data, l)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(blob); i++ {
			got, err := ParallelDecode(blob[:i], l)
			if err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes accepted (decoded %d elements)",
					a, i, len(blob), len(got))
			}
			if !Recoverable(err) {
				t.Fatalf("%s: truncation to %d: err %v not classified recoverable", a, i, err)
			}
		}
	}
}

func TestParallelDirectoryBitFlips(t *testing.T) {
	l := Launch{4, 64}
	for _, a := range ExtendedAlgorithms() {
		tn := tensor.NewGenerator(67).Uniform(200, 0.5)
		blob, err := ParallelEncode(a, tn.Data, l)
		if err != nil {
			t.Fatal(err)
		}
		numChunks := int(binary.LittleEndian.Uint32(blob[10:14]))
		dirEnd := 14 + 8*numChunks
		for pos := 0; pos < dirEnd; pos++ {
			for bit := 0; bit < 8; bit++ {
				bad := append([]byte(nil), blob...)
				bad[pos] ^= 1 << uint(bit)
				got, err := ParallelDecode(bad, l)
				if err != nil {
					continue // rejected: fine
				}
				// A flip the framing tolerates must still round-trip
				// bit-exactly — silent wrong data is the one forbidden
				// outcome.
				if len(got) != len(tn.Data) {
					t.Fatalf("%s: flip %d.%d silently changed length", a, pos, bit)
				}
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(tn.Data[i]) {
						t.Fatalf("%s: flip %d.%d silently corrupted data", a, pos, bit)
					}
				}
			}
		}
	}
}

func TestParallelEncodeHookFailureCarriesChunkContext(t *testing.T) {
	tn := tensor.NewGenerator(71).Uniform(300, 0.5)
	boom := fmt.Errorf("boom")
	hooks := &Hooks{ChunkEncode: func(a Algorithm, chunk int) error {
		if chunk == 1 {
			return boom
		}
		return nil
	}}
	_, err := ParallelEncodeWith(ZVC, tn.Data, Launch{4, 64}, hooks)
	var ce *ChunkError
	if !errors.As(err, &ce) || ce.Chunk != 1 || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ChunkError for chunk 1 wrapping the hook error", err)
	}
}

func TestRecoverableTaxonomy(t *testing.T) {
	if Recoverable(nil) {
		t.Fatal("nil error recoverable")
	}
	if !Recoverable(ErrTruncated) || !Recoverable(ErrCorrupt) {
		t.Fatal("data-level errors must be recoverable")
	}
	if !Recoverable(&ChunkError{Alg: ZVC, Chunk: 0, Chunks: 1, Err: ErrCorrupt}) {
		t.Fatal("wrapped data-level error must stay recoverable")
	}
	if Recoverable(ErrAlgorithmMismatch) {
		t.Fatal("structural misuse must not be recoverable")
	}
	if Recoverable(fmt.Errorf("%w: blob is ZVC, codec is RLE", ErrAlgorithmMismatch)) {
		t.Fatal("wrapped structural misuse must not be recoverable")
	}
}

func TestChunkBoundsAlignment(t *testing.T) {
	for _, tc := range []struct{ n, grid int }{
		{0, 4}, {1, 4}, {31, 4}, {32, 4}, {33, 4}, {1000, 7}, {1 << 20, 4096},
	} {
		spans := chunkBounds(tc.n, tc.grid)
		prev := 0
		for i, sp := range spans {
			if sp.lo != prev {
				t.Fatalf("n=%d grid=%d: span %d starts at %d, want %d", tc.n, tc.grid, i, sp.lo, prev)
			}
			if sp.lo%32 != 0 {
				t.Fatalf("n=%d grid=%d: span %d not 32-aligned", tc.n, tc.grid, i)
			}
			if sp.hi <= sp.lo && tc.n > 0 {
				t.Fatalf("n=%d grid=%d: empty span %d", tc.n, tc.grid, i)
			}
			prev = sp.hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d grid=%d: spans cover %d", tc.n, tc.grid, prev)
		}
		if len(spans) > tc.grid && tc.n > 0 {
			t.Fatalf("n=%d grid=%d: %d spans exceed grid", tc.n, tc.grid, len(spans))
		}
	}
}
