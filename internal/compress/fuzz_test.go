package compress

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRoundTrip drives every codec with arbitrary byte-derived tensors.
// Under plain `go test` the seed corpus runs as regression tests; under
// `go test -fuzz=FuzzRoundTrip` the engine explores further.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // NaN then zero
	f.Add(make([]byte, 256))
	seed := make([]byte, 1024)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		src := make([]float32, n)
		zeroish := 0
		for i := 0; i < n; i++ {
			bits := binary.LittleEndian.Uint32(raw[i*4:])
			// Sparsify: map small mantissas to exact zero so the
			// sparsity paths get exercised.
			if bits%3 == 0 {
				bits = 0
				zeroish++
			}
			src[i] = math.Float32frombits(bits)
		}
		for _, a := range ExtendedAlgorithms() {
			c := MustNew(a)
			blob := c.Encode(src)
			got, err := c.Decode(blob)
			if err != nil {
				t.Fatalf("%s: decode own output: %v", a, err)
			}
			if len(got) != len(src) {
				t.Fatalf("%s: length %d, want %d", a, len(got), len(src))
			}
			for i := range src {
				w, g := math.Float32bits(src[i]), math.Float32bits(got[i])
				// Sparsity codecs canonicalise -0 to +0; accept that
				// single equivalence, nothing else.
				if w != g && !(w == 0x80000000 && g == 0) {
					t.Fatalf("%s: bit mismatch at %d: %08x -> %08x", a, i, w, g)
				}
			}
		}
	})
}

// FuzzParallelRoundTrip drives the parallel container framing: an arbitrary
// byte-derived tensor is encoded with one of the five algorithms at a
// fuzz-chosen launch, then (a) decoded pristine — must round-trip
// bit-exactly, (b) truncated at a fuzz-chosen boundary — must error, and
// (c) bit-flipped at a fuzz-chosen position — must never panic, and must
// never silently return wrong data when the flip lands in the container
// header or chunk directory.
func FuzzParallelRoundTrip(f *testing.F) {
	// Seeds cover all five algorithms, truncation at the framing
	// boundaries (header, directory, chunk edges), and bit-flips inside
	// the chunk directory.
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	for ai := uint8(0); ai < 5; ai++ {
		f.Add(payload, ai, uint16(4), uint32(0), uint8(0))   // truncate to nothing
		f.Add(payload, ai, uint16(4), uint32(13), uint8(0))  // truncate inside header
		f.Add(payload, ai, uint16(4), uint32(14), uint8(0))  // truncate at directory start
		f.Add(payload, ai, uint16(4), uint32(46), uint8(0))  // truncate at directory end (4 chunks)
		f.Add(payload, ai, uint16(4), uint32(60), uint8(0))  // truncate mid-chunk
		f.Add(payload, ai, uint16(1), uint32(21), uint8(1))  // flip in chunk directory
		f.Add(payload, ai, uint16(64), uint32(11), uint8(1)) // flip in chunk count
		f.Add(payload, ai, uint16(9), uint32(2), uint8(1))   // flip in element count
		f.Add(payload, ai, uint16(300), uint32(99), uint8(2))
	}
	// Adversarial Huffman code tables: flips landing inside the first
	// chunk's 256-byte length table (which starts at dir end + chunk
	// header) zero a live length (under-subscribed) or inflate a dead one
	// (over-subscribed); the decoder must reject or stay bit-exact, never
	// panic. algSel 4 selects Huffman, grid 1 keeps a single chunk so the
	// table position is stable.
	for off := uint32(0); off < 256; off += 37 {
		f.Add(payload, uint8(4), uint16(0), uint32(14+8+9)+off, uint8(2))
	}

	f.Fuzz(func(t *testing.T, raw []byte, algSel uint8, gridSel uint16, pos uint32, op uint8) {
		algs := ExtendedAlgorithms()
		alg := algs[int(algSel)%len(algs)]
		launch := Launch{Grid: 1 + int(gridSel)%4096, Block: 64}
		if op&0x80 != 0 {
			launch.Block = 128
		}
		n := len(raw) / 4
		if n > 1<<14 {
			n = 1 << 14
		}
		src := make([]float32, n)
		for i := 0; i < n; i++ {
			bits := binary.LittleEndian.Uint32(raw[i*4:])
			if bits%3 == 0 {
				bits = 0
			}
			src[i] = math.Float32frombits(bits)
		}
		blob, err := ParallelEncode(alg, src, launch)
		if err != nil {
			t.Fatalf("%s %v: encode: %v", alg, launch, err)
		}
		got, err := ParallelDecode(blob, launch)
		if err != nil {
			t.Fatalf("%s %v: decode own output: %v", alg, launch, err)
		}
		bitExact := func(got []float32) bool {
			if len(got) != len(src) {
				return false
			}
			for i := range src {
				w, g := math.Float32bits(src[i]), math.Float32bits(got[i])
				// Sparsity codecs canonicalise -0 to +0.
				if w != g && !(w == 0x80000000 && g == 0) {
					return false
				}
			}
			return true
		}
		if !bitExact(got) {
			t.Fatalf("%s %v: pristine round trip not bit-exact", alg, launch)
		}

		numChunks := int(binary.LittleEndian.Uint32(blob[10:14]))
		dirEnd := 14 + 8*numChunks
		switch op % 3 {
		case 0: // truncation at an arbitrary boundary must error
			cut := int(pos) % len(blob)
			if _, err := ParallelDecode(blob[:cut], launch); err == nil {
				t.Fatalf("%s %v: truncation to %d/%d bytes accepted", alg, launch, cut, len(blob))
			}
		case 1: // bit-flip in header/directory: reject or stay bit-exact
			p := int(pos) % dirEnd
			bad := append([]byte(nil), blob...)
			bad[p] ^= 1 << (pos % 8)
			if got, err := ParallelDecode(bad, launch); err == nil && !bitExact(got) {
				t.Fatalf("%s %v: directory flip at %d silently corrupted data", alg, launch, p)
			}
		case 2: // bit-flip anywhere: must never panic
			p := int(pos) % len(blob)
			bad := append([]byte(nil), blob...)
			bad[p] ^= 1 << (pos % 8)
			_, _ = ParallelDecode(bad, launch)
		}
	})
}

// FuzzDecodeRobustness feeds arbitrary bytes to every decoder: any outcome
// but a panic or a hang is acceptable.
func FuzzDecodeRobustness(f *testing.F) {
	c := MustNew(ZVC)
	f.Add(c.Encode([]float32{1, 0, 2, 0, 0, 3}))
	f.Add(MustNew(RLE).Encode([]float32{0, 0, 1}))
	f.Add(MustNew(CSR).Encode([]float32{5, 0, 0}))
	f.Add(MustNew(LZ4).Encode(make([]float32, 64)))
	f.Add(MustNew(Huffman).Encode([]float32{1, 1, 0, 2}))
	f.Add([]byte{})
	f.Add([]byte{1, 255, 255, 255, 255, 255, 255, 255, 255})
	// Hand-crafted Huffman blobs with degenerate code tables. Under-
	// subscribed: one 8-bit code covering a sliver of the code space, with
	// too little data behind it. Over-subscribed: three 1-bit codes
	// (Kraft 1.5) that the decoder must refuse outright.
	undersub := make([]byte, 9+256+4)
	undersub[0] = byte(Huffman)
	binary.LittleEndian.PutUint64(undersub[1:9], 2)
	undersub[9+7] = 8 // only symbol 7, length 8
	f.Add(undersub)
	oversub := make([]byte, 9+256+8)
	oversub[0] = byte(Huffman)
	binary.LittleEndian.PutUint64(oversub[1:9], 2)
	oversub[9+0], oversub[9+1], oversub[9+2] = 1, 1, 1
	f.Add(oversub)

	f.Fuzz(func(t *testing.T, blob []byte) {
		// Cap the claimed element count so a hostile header cannot force
		// a giant allocation in the fuzz harness.
		if len(blob) >= 9 {
			n := binary.LittleEndian.Uint64(blob[1:9])
			if n > 1<<20 {
				return
			}
		}
		_, _ = Decode(blob)
		for _, a := range ExtendedAlgorithms() {
			codec := MustNew(a)
			_, _ = codec.Decode(blob)
		}
	})
}
