package compress

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRoundTrip drives every codec with arbitrary byte-derived tensors.
// Under plain `go test` the seed corpus runs as regression tests; under
// `go test -fuzz=FuzzRoundTrip` the engine explores further.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // NaN then zero
	f.Add(make([]byte, 256))
	seed := make([]byte, 1024)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		src := make([]float32, n)
		zeroish := 0
		for i := 0; i < n; i++ {
			bits := binary.LittleEndian.Uint32(raw[i*4:])
			// Sparsify: map small mantissas to exact zero so the
			// sparsity paths get exercised.
			if bits%3 == 0 {
				bits = 0
				zeroish++
			}
			src[i] = math.Float32frombits(bits)
		}
		for _, a := range ExtendedAlgorithms() {
			c := MustNew(a)
			blob := c.Encode(src)
			got, err := c.Decode(blob)
			if err != nil {
				t.Fatalf("%s: decode own output: %v", a, err)
			}
			if len(got) != len(src) {
				t.Fatalf("%s: length %d, want %d", a, len(got), len(src))
			}
			for i := range src {
				w, g := math.Float32bits(src[i]), math.Float32bits(got[i])
				// Sparsity codecs canonicalise -0 to +0; accept that
				// single equivalence, nothing else.
				if w != g && !(w == 0x80000000 && g == 0) {
					t.Fatalf("%s: bit mismatch at %d: %08x -> %08x", a, i, w, g)
				}
			}
		}
	})
}

// FuzzDecodeRobustness feeds arbitrary bytes to every decoder: any outcome
// but a panic or a hang is acceptable.
func FuzzDecodeRobustness(f *testing.F) {
	c := MustNew(ZVC)
	f.Add(c.Encode([]float32{1, 0, 2, 0, 0, 3}))
	f.Add(MustNew(RLE).Encode([]float32{0, 0, 1}))
	f.Add(MustNew(CSR).Encode([]float32{5, 0, 0}))
	f.Add(MustNew(LZ4).Encode(make([]float32, 64)))
	f.Add(MustNew(Huffman).Encode([]float32{1, 1, 0, 2}))
	f.Add([]byte{})
	f.Add([]byte{1, 255, 255, 255, 255, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, blob []byte) {
		// Cap the claimed element count so a hostile header cannot force
		// a giant allocation in the fuzz harness.
		if len(blob) >= 9 {
			n := binary.LittleEndian.Uint64(blob[1:9])
			if n > 1<<20 {
				return
			}
		}
		_, _ = Decode(blob)
		for _, a := range ExtendedAlgorithms() {
			codec := MustNew(a)
			_, _ = codec.Decode(blob)
		}
	})
}
