// Package compress implements the four GPU-oriented tensor compression
// algorithms supported by CSWAP (Section IV-E of the paper): zero-value
// compression (ZVC), run-length encoding (RLE), compressed sparse row (CSR),
// and LZ4. Each codec operates on flat float32 tensors, exactly as the
// paper's kernels operate on feature maps, and round-trips bit-identically.
//
// The package also provides:
//
//   - a parallel execution wrapper that partitions a tensor into
//     grid-many chunks processed by block-scaled worker concurrency,
//     mirroring the CUDA launch geometry CSWAP tunes (Section IV-D), and
//   - analytic compressed-size models (ratio.go) used by the simulator and
//     validated against the real codecs in tests.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Algorithm identifies one of the supported compression algorithms.
type Algorithm uint8

// The four algorithms from Section IV-E.
const (
	ZVC Algorithm = iota + 1 // zero-value compression: bitmap + packed non-zeros
	RLE                      // run-length encoding of zero runs
	CSR                      // compressed sparse row: values + column indices + row pointers
	LZ4                      // LZ4 block-format dictionary compression
)

// Auto is not a codec: it is the wire-level selector value (the zero
// Algorithm, so legacy frames that never set an algorithm byte mean it
// implicitly) by which a swap-out delegates the codec choice to the
// service. New(Auto) fails — the server must resolve it to a concrete
// algorithm (the tenant's tuned codec, or the best modeled ratio for the
// tensor's sparsity) before touching a codec.
const Auto Algorithm = 0

// String returns the conventional upper-case algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case ZVC:
		return "ZVC"
	case RLE:
		return "RLE"
	case CSR:
		return "CSR"
	case LZ4:
		return "LZ4"
	case Huffman:
		return "HUF"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Algorithms lists every supported algorithm in the order the paper
// introduces them.
func Algorithms() []Algorithm { return []Algorithm{ZVC, RLE, CSR, LZ4} }

// Codec compresses and decompresses flat float32 tensors. Implementations
// must round-trip bit-identically: Decode(Encode(x)) == x for every x,
// including NaN payload bits (tensors are opaque data on the swap path).
//
// Encode and Decode are convenience wrappers over the allocation-free core
// contract: AppendEncode writes into a caller-supplied buffer and DecodeInto
// scatters into a caller-supplied destination, so the hot path (the parallel
// container and the swapping executor) can recycle buffers across swaps. For
// a given input, AppendEncode produces exactly the bytes Encode produces.
type Codec interface {
	// Algorithm reports which algorithm this codec implements.
	Algorithm() Algorithm
	// Encode compresses src into a self-describing blob.
	Encode(src []float32) []byte
	// Decode reverses Encode. It returns an error for truncated or
	// corrupted input rather than panicking.
	Decode(blob []byte) ([]float32, error)
	// AppendEncode compresses src and appends the blob to dst, returning
	// the extended slice. When cap(dst)-len(dst) >= MaxEncodedLen(len(src))
	// it performs no allocation. The appended bytes are identical to
	// Encode(src).
	AppendEncode(dst []byte, src []float32) []byte
	// DecodeInto reverses Encode into the caller-owned dst, whose length
	// must equal the blob's element count (ErrDstSize otherwise). On
	// success every element of dst has been written — a dirty recycled
	// buffer is fully overwritten; on error dst's contents are
	// unspecified.
	DecodeInto(dst []float32, blob []byte) error
	// MaxEncodedLen returns an upper bound on the encoded size of any
	// n-element tensor, used to pre-size append destinations. It is a
	// cheap arithmetic bound, not a tight estimate.
	MaxEncodedLen(n int) int
}

// New returns the codec for the given algorithm.
func New(a Algorithm) (Codec, error) {
	switch a {
	case ZVC:
		return zvcCodec{}, nil
	case RLE:
		return rleCodec{}, nil
	case CSR:
		return csrCodec{}, nil
	case LZ4:
		return lz4Codec{}, nil
	case Huffman:
		return huffmanCodec{}, nil
	default:
		return nil, fmt.Errorf("compress: unknown algorithm %d", uint8(a))
	}
}

// MustNew is New for statically-known algorithms; it panics on error.
func MustNew(a Algorithm) Codec {
	c, err := New(a)
	if err != nil {
		panic(err)
	}
	return c
}

// Blob framing shared by all codecs:
//
//	[0]    algorithm byte
//	[1:9]  uint64 little-endian element count
//	[9:]   algorithm-specific payload
const headerSize = 9

var (
	// ErrTruncated reports a blob shorter than its framing claims.
	ErrTruncated = errors.New("compress: truncated blob")
	// ErrCorrupt reports a structurally invalid payload.
	ErrCorrupt = errors.New("compress: corrupt blob")
	// ErrAlgorithmMismatch reports decoding a blob with the wrong codec.
	ErrAlgorithmMismatch = errors.New("compress: algorithm mismatch")
	// ErrDstSize reports a DecodeInto destination whose length differs
	// from the blob's declared element count — structural misuse by the
	// caller, not data corruption, so it is not Recoverable.
	ErrDstSize = errors.New("compress: destination length mismatch")
)

// checkDst validates a DecodeInto destination against the blob's declared
// element count.
func checkDst(dst []float32, n int) error {
	if len(dst) != n {
		return fmt.Errorf("%w: dst holds %d elements, blob declares %d", ErrDstSize, len(dst), n)
	}
	return nil
}

func putHeader(dst []byte, a Algorithm, n int) []byte {
	dst = append(dst, byte(a))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	return append(dst, buf[:]...)
}

func parseHeader(blob []byte, want Algorithm) (n int, payload []byte, err error) {
	if len(blob) < headerSize {
		return 0, nil, ErrTruncated
	}
	if Algorithm(blob[0]) != want {
		return 0, nil, fmt.Errorf("%w: blob is %s, codec is %s",
			ErrAlgorithmMismatch, Algorithm(blob[0]), want)
	}
	count := binary.LittleEndian.Uint64(blob[1:9])
	if count > math.MaxInt32*64 {
		return 0, nil, ErrCorrupt
	}
	return int(count), blob[headerSize:], nil
}

// BlobAlgorithm inspects a blob's framing byte without decoding it.
func BlobAlgorithm(blob []byte) (Algorithm, error) {
	if len(blob) == 0 {
		return 0, ErrTruncated
	}
	a := Algorithm(blob[0])
	switch a {
	case ZVC, RLE, CSR, LZ4, Huffman:
		return a, nil
	default:
		return 0, fmt.Errorf("%w: unknown algorithm byte %d", ErrCorrupt, blob[0])
	}
}

// Decode decodes a blob produced by any of the codecs, dispatching on the
// framing byte.
func Decode(blob []byte) ([]float32, error) {
	a, err := BlobAlgorithm(blob)
	if err != nil {
		return nil, err
	}
	c, err := New(a)
	if err != nil {
		return nil, err
	}
	return c.Decode(blob)
}

// Ratio returns compressed bytes / original bytes for the blob and an
// original element count; <1 means the codec saved space.
func Ratio(blob []byte, elems int) float64 {
	if elems == 0 {
		return 1
	}
	return float64(len(blob)) / float64(elems*4)
}

func appendFloat32(dst []byte, v float32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
	return append(dst, buf[:]...)
}

func appendUint32(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return append(dst, buf[:]...)
}

func readFloat32(src []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(src))
}

func float32bits(v float32) uint32 { return math.Float32bits(v) }
