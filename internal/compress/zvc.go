package compress

import "encoding/binary"

// zvcCodec implements zero-value compression (Rhu et al., cDMA), the codec
// CSWAP favours under a PCIe bottleneck. The tensor is processed in groups
// of 32 consecutive floats; each group contributes a 32-bit occupancy bitmap
// (bit i set = element i non-zero) followed by the non-zero values packed in
// order. Index overhead is therefore a fixed 1/32 ≈ 3 % of the original
// size, versus 50 % for CSR at 50 % sparsity (Section IV-E).
type zvcCodec struct{}

func (zvcCodec) Algorithm() Algorithm { return ZVC }

func (zvcCodec) Encode(src []float32) []byte {
	// Size hint: bitmaps + worst case all non-zero.
	groups := (len(src) + 31) / 32
	blob := make([]byte, 0, headerSize+groups*4+len(src)*4)
	blob = putHeader(blob, ZVC, len(src))
	var valbuf [4]byte
	for g := 0; g < groups; g++ {
		start := g * 32
		end := start + 32
		if end > len(src) {
			end = len(src)
		}
		var bitmap uint32
		for i := start; i < end; i++ {
			if src[i] != 0 {
				bitmap |= 1 << uint(i-start)
			}
		}
		blob = appendUint32(blob, bitmap)
		for i := start; i < end; i++ {
			if src[i] != 0 {
				binary.LittleEndian.PutUint32(valbuf[:], float32bits(src[i]))
				blob = append(blob, valbuf[:]...)
			}
		}
	}
	return blob
}

func (zvcCodec) Decode(blob []byte) ([]float32, error) {
	n, payload, err := parseHeader(blob, ZVC)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, n)
	groups := (n + 31) / 32
	pos := 0
	for g := 0; g < groups; g++ {
		if pos+4 > len(payload) {
			return nil, ErrTruncated
		}
		bitmap := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		start := g * 32
		end := start + 32
		if end > n {
			end = n
			// Bits beyond the tail must be clear.
			if bitmap>>(uint(end-start)) != 0 {
				return nil, ErrCorrupt
			}
		}
		for i := start; i < end; i++ {
			if bitmap&(1<<uint(i-start)) != 0 {
				if pos+4 > len(payload) {
					return nil, ErrTruncated
				}
				dst[i] = readFloat32(payload[pos:])
				pos += 4
			}
		}
	}
	if pos != len(payload) {
		return nil, ErrCorrupt
	}
	return dst, nil
}
