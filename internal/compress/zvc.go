package compress

import "encoding/binary"

// zvcCodec implements zero-value compression (Rhu et al., cDMA), the codec
// CSWAP favours under a PCIe bottleneck. The tensor is processed in groups
// of 32 consecutive floats; each group contributes a 32-bit occupancy bitmap
// (bit i set = element i non-zero) followed by the non-zero values packed in
// order. Index overhead is therefore a fixed 1/32 ≈ 3 % of the original
// size, versus 50 % for CSR at 50 % sparsity (Section IV-E).
type zvcCodec struct{}

func (zvcCodec) Algorithm() Algorithm { return ZVC }

// MaxEncodedLen bounds the blob at one bitmap word per group plus every
// element non-zero.
func (zvcCodec) MaxEncodedLen(n int) int {
	return headerSize + ((n+31)/32)*4 + n*4
}

func (c zvcCodec) Encode(src []float32) []byte {
	return c.AppendEncode(make([]byte, 0, c.MaxEncodedLen(len(src))), src)
}

func (zvcCodec) AppendEncode(dst []byte, src []float32) []byte {
	dst = putHeader(dst, ZVC, len(src))
	groups := (len(src) + 31) / 32
	var valbuf [4]byte
	for g := 0; g < groups; g++ {
		start := g * 32
		end := start + 32
		if end > len(src) {
			end = len(src)
		}
		var bitmap uint32
		for i := start; i < end; i++ {
			if src[i] != 0 {
				bitmap |= 1 << uint(i-start)
			}
		}
		dst = appendUint32(dst, bitmap)
		for i := start; i < end; i++ {
			if src[i] != 0 {
				binary.LittleEndian.PutUint32(valbuf[:], float32bits(src[i]))
				dst = append(dst, valbuf[:]...)
			}
		}
	}
	return dst
}

func (c zvcCodec) Decode(blob []byte) ([]float32, error) {
	n, _, err := parseHeader(blob, ZVC)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, n)
	if err := c.DecodeInto(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func (zvcCodec) DecodeInto(dst []float32, blob []byte) error {
	n, payload, err := parseHeader(blob, ZVC)
	if err != nil {
		return err
	}
	if err := checkDst(dst, n); err != nil {
		return err
	}
	groups := (n + 31) / 32
	pos := 0
	for g := 0; g < groups; g++ {
		if pos+4 > len(payload) {
			return ErrTruncated
		}
		bitmap := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		start := g * 32
		end := start + 32
		if end > n {
			end = n
			// Bits beyond the tail must be clear.
			if bitmap>>(uint(end-start)) != 0 {
				return ErrCorrupt
			}
		}
		// Zeros are written explicitly: dst may be a dirty recycled buffer.
		for i := start; i < end; i++ {
			if bitmap&(1<<uint(i-start)) != 0 {
				if pos+4 > len(payload) {
					return ErrTruncated
				}
				dst[i] = readFloat32(payload[pos:])
				pos += 4
			} else {
				dst[i] = 0
			}
		}
	}
	if pos != len(payload) {
		return ErrCorrupt
	}
	return nil
}
