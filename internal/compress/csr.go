package compress

import "encoding/binary"

// csrCodec implements compressed sparse row storage over the flat tensor
// viewed as rows of a fixed logical width. The payload stores row pointers,
// per-row column indices, and the non-zero values — the paper's
// "(A00B0C000) → (ABC),(035)" example. Index overhead is 4 bytes per
// non-zero (so ≈50 % of the original size at 50 % sparsity, the comparison
// the paper draws against ZVC's 3 %).
type csrCodec struct{}

// csrRowWidth is the logical row width used when a tensor is flattened to a
// matrix. 1024 keeps column indices small while amortising the row-pointer
// array to <0.4 % of the original size.
const csrRowWidth = 1024

func (csrCodec) Algorithm() Algorithm { return CSR }

// MaxEncodedLen bounds the blob at the full row-pointer array plus an
// index and a value for every element non-zero.
func (csrCodec) MaxEncodedLen(n int) int {
	rows := (n + csrRowWidth - 1) / csrRowWidth
	return headerSize + 4*(rows+1) + 8*n
}

func (c csrCodec) Encode(src []float32) []byte {
	rows := (len(src) + csrRowWidth - 1) / csrRowWidth
	nnz := 0
	for _, v := range src {
		if v != 0 {
			nnz++
		}
	}
	blob := make([]byte, 0, headerSize+4*(rows+1)+8*nnz)
	return c.AppendEncode(blob, src)
}

func (csrCodec) AppendEncode(dst []byte, src []float32) []byte {
	rows := (len(src) + csrRowWidth - 1) / csrRowWidth
	dst = putHeader(dst, CSR, len(src))
	// Row pointers: rows+1 cumulative non-zero counts.
	count := uint32(0)
	dst = appendUint32(dst, count)
	for r := 0; r < rows; r++ {
		start := r * csrRowWidth
		end := start + csrRowWidth
		if end > len(src) {
			end = len(src)
		}
		for i := start; i < end; i++ {
			if src[i] != 0 {
				count++
			}
		}
		dst = appendUint32(dst, count)
	}
	// Column indices. The paper's CSR accounting charges a full 4-byte
	// index per non-zero ("Instead of using a float as an index for each
	// non-zero value" — Section IV-E), giving the 50 % overhead at 50 %
	// sparsity it contrasts with ZVC's 3 %; we keep that layout.
	for i, v := range src {
		if v != 0 {
			dst = appendUint32(dst, uint32(i%csrRowWidth))
		}
	}
	// Values.
	for _, v := range src {
		if v != 0 {
			dst = appendFloat32(dst, v)
		}
	}
	return dst
}

func (c csrCodec) Decode(blob []byte) ([]float32, error) {
	n, _, err := parseHeader(blob, CSR)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, n)
	if err := c.DecodeInto(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func (csrCodec) DecodeInto(dst []float32, blob []byte) error {
	n, payload, err := parseHeader(blob, CSR)
	if err != nil {
		return err
	}
	if err := checkDst(dst, n); err != nil {
		return err
	}
	rows := (n + csrRowWidth - 1) / csrRowWidth
	ptrBytes := 4 * (rows + 1)
	if len(payload) < ptrBytes {
		return ErrTruncated
	}
	// Row pointers are read in place from the payload; no materialised
	// pointer slice on the hot path.
	rowPtr := func(i int) uint32 {
		return binary.LittleEndian.Uint32(payload[i*4:])
	}
	nnz := int(rowPtr(rows))
	if rowPtr(0) != 0 || nnz > n {
		return ErrCorrupt
	}
	colBase := ptrBytes
	valBase := colBase + 4*nnz
	if len(payload) != valBase+4*nnz {
		return ErrTruncated
	}
	// The scatter below writes only non-zeros, so a dirty recycled dst is
	// cleared first.
	clear(dst)
	for r := 0; r < rows; r++ {
		lo, hi := int(rowPtr(r)), int(rowPtr(r+1))
		if lo > hi || hi > nnz {
			return ErrCorrupt
		}
		for k := lo; k < hi; k++ {
			col := int(binary.LittleEndian.Uint32(payload[colBase+4*k:]))
			idx := r*csrRowWidth + col
			if col >= csrRowWidth || idx >= n {
				return ErrCorrupt
			}
			dst[idx] = readFloat32(payload[valBase+4*k:])
		}
	}
	return nil
}
