package compress

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGoRunsEverySubmission pins the executor-facing pool contract: Go
// submissions are never shed — every fn runs exactly once, even when far
// more work is submitted than there are workers, and even while the same
// pool is serving chunk-level parallel codec calls.
func TestGoRunsEverySubmission(t *testing.T) {
	const jobs = 200
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for i := 0; i < jobs; i++ {
		i := i
		Go(func() {
			defer wg.Done()
			ran.Add(1)
			if i%4 == 0 {
				// A Go task may itself fan chunk work out through
				// runWorkers (the async executor does exactly this);
				// helpers shed under saturation, so this cannot deadlock.
				data := make([]float32, 4096)
				if _, err := ParallelEncode(ZVC, data, Launch{Grid: 4, Block: 64}); err != nil {
					t.Error(err)
				}
			}
		})
	}
	wg.Wait()
	if got := ran.Load(); got != jobs {
		t.Fatalf("ran %d of %d submissions", got, jobs)
	}
}
