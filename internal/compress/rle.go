package compress

import "encoding/binary"

// rleCodec implements run-length encoding specialised for sparse activation
// tensors: only zero runs are collapsed, since ReLU/MAX outputs contain long
// stretches of exact zeros but essentially random non-zero values (the
// paper's "A0000000 → A70" example generalised to float data).
//
// Payload format: a sequence of tokens
//
//	[zeroRun uint16][litCount uint16][litCount × float32 literals]
//
// meaning "zeroRun zeros followed by litCount literal values". Runs longer
// than 65535 split across tokens (with litCount 0 for the continuation).
// Worst case (no zeros) overhead is 4 bytes per 65535 literals; dense
// alternating data degrades towards the paper's observation that RLE "will
// increase the original sequence size when the length of consecutive zeros
// cannot be efficiently reduced".
type rleCodec struct{}

const rleMaxRun = 0xFFFF

func (rleCodec) Algorithm() Algorithm { return RLE }

// MaxEncodedLen bounds the blob by charging every element the worst
// per-element token cost: an isolated literal preceded by no zeros costs a
// 4-byte token plus its 4-byte value; every other token amortises better.
func (rleCodec) MaxEncodedLen(n int) int {
	return headerSize + 8*n
}

func (c rleCodec) Encode(src []float32) []byte {
	// Size hint matches the historical Encode: the common sparse case, not
	// the adversarial bound.
	blob := make([]byte, 0, headerSize+len(src)*4/2+64)
	return c.AppendEncode(blob, src)
}

func (rleCodec) AppendEncode(dst []byte, src []float32) []byte {
	dst = putHeader(dst, RLE, len(src))
	var u16 [2]byte
	putU16 := func(v int) {
		binary.LittleEndian.PutUint16(u16[:], uint16(v))
		dst = append(dst, u16[:]...)
	}
	i := 0
	for i < len(src) {
		// Count the zero run.
		zs := i
		for i < len(src) && src[i] == 0 {
			i++
		}
		zeroRun := i - zs
		// Count the literal run.
		ls := i
		for i < len(src) && src[i] != 0 {
			i++
		}
		lits := src[ls:i]
		// Emit continuation tokens for oversized zero runs.
		for zeroRun > rleMaxRun {
			putU16(rleMaxRun)
			putU16(0)
			zeroRun -= rleMaxRun
		}
		// Emit the run plus literal chunks.
		for {
			chunk := len(lits)
			if chunk > rleMaxRun {
				chunk = rleMaxRun
			}
			putU16(zeroRun)
			putU16(chunk)
			for _, v := range lits[:chunk] {
				dst = appendFloat32(dst, v)
			}
			lits = lits[chunk:]
			zeroRun = 0
			if len(lits) == 0 {
				break
			}
		}
	}
	return dst
}

func (c rleCodec) Decode(blob []byte) ([]float32, error) {
	n, _, err := parseHeader(blob, RLE)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, n)
	if err := c.DecodeInto(dst, blob); err != nil {
		return nil, err
	}
	return dst, nil
}

func (rleCodec) DecodeInto(dst []float32, blob []byte) error {
	n, payload, err := parseHeader(blob, RLE)
	if err != nil {
		return err
	}
	if err := checkDst(dst, n); err != nil {
		return err
	}
	out, pos := 0, 0
	for pos < len(payload) {
		if pos+4 > len(payload) {
			return ErrTruncated
		}
		zeroRun := int(binary.LittleEndian.Uint16(payload[pos:]))
		litCount := int(binary.LittleEndian.Uint16(payload[pos+2:]))
		pos += 4
		if out+zeroRun+litCount > n {
			return ErrCorrupt
		}
		// Zero runs are written explicitly: dst may be a dirty recycled
		// buffer, so nothing can rely on it being pre-zeroed.
		clear(dst[out : out+zeroRun])
		out += zeroRun
		if pos+litCount*4 > len(payload) {
			return ErrTruncated
		}
		for j := 0; j < litCount; j++ {
			dst[out] = readFloat32(payload[pos:])
			pos += 4
			out++
		}
	}
	if out != n {
		return ErrCorrupt
	}
	return nil
}
