package compress

import (
	"testing"

	"cswap/internal/tensor"
)

// Allocation-regression gates for the pooled hot paths. Budgets are pinned
// deliberately tight: the zero-copy contract promises allocation-free
// encode/decode for the sparsity codecs once buffers are provided, and a
// small fixed overhead elsewhere (Huffman builds its code tree per call by
// design; the parallel container keeps two bookkeeping slices). A failure
// here means a regression re-introduced per-call garbage on the swap path.
//
// testing.AllocsPerRun runs with GOMAXPROCS(1), so the parallel budgets
// measure the serial fast path deterministically — goroutine-count jitter
// cannot leak into the gate.

// allocBudgets: encode = AppendEncode into a pre-sized buffer,
// decode = DecodeInto a pre-sized destination.
var allocBudgets = map[Algorithm]struct{ encode, decode float64 }{
	ZVC: {0, 0},
	RLE: {0, 0},
	CSR: {0, 0},
	LZ4: {0, 0},
	// Huffman's tree/code construction is array-based on the stack and its
	// decoder is memoised by code-length table, so steady state is
	// allocation-free too; the small budgets absorb the one-off decoder
	// build and incidental runtime noise.
	Huffman: {8, 1},
}

func TestAllocsPerRunCodecHotPaths(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomises sync.Pool reuse; alloc counts are meaningless")
	}
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	gen := tensor.NewGenerator(211)
	src := gen.Uniform(8192, 0.6).Data
	for _, a := range ExtendedAlgorithms() {
		c, err := New(a)
		if err != nil {
			t.Fatal(err)
		}
		budget := allocBudgets[a]
		buf := make([]byte, 0, c.MaxEncodedLen(len(src)))
		if got := testing.AllocsPerRun(50, func() {
			buf = c.AppendEncode(buf[:0], src)
		}); got > budget.encode {
			t.Errorf("%s AppendEncode: %.1f allocs/op, budget %.0f", a, got, budget.encode)
		}
		blob := c.Encode(src)
		dst := make([]float32, len(src))
		if got := testing.AllocsPerRun(50, func() {
			if err := c.DecodeInto(dst, blob); err != nil {
				t.Fatal(err)
			}
		}); got > budget.decode {
			t.Errorf("%s DecodeInto: %.1f allocs/op, budget %.0f", a, got, budget.decode)
		}
	}
}

func TestAllocsPerRunParallelContainer(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomises sync.Pool reuse; alloc counts are meaningless")
	}
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	gen := tensor.NewGenerator(223)
	src := gen.Uniform(16384, 0.6).Data
	launch := Launch{Grid: 16, Block: 64}
	bound, err := MaxParallelEncodedLen(ZVC, len(src), launch)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, bound)
	// chunkBounds + encoded + errs + the worker closure — fixed
	// bookkeeping, independent of tensor size and chunk payloads.
	const encodeBudget = 4
	if got := testing.AllocsPerRun(50, func() {
		out, err := AppendParallelEncode(buf[:0], ZVC, src, launch)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	}); got > encodeBudget {
		t.Errorf("AppendParallelEncode: %.1f allocs/op, budget %d", got, encodeBudget)
	}

	blob, err := ParallelEncode(ZVC, src, launch)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, len(src))
	// offsets + bounds + errs + the worker closure.
	const decodeBudget = 4
	if got := testing.AllocsPerRun(50, func() {
		if err := ParallelDecodeInto(dst, blob, launch); err != nil {
			t.Fatal(err)
		}
	}); got > decodeBudget {
		t.Errorf("ParallelDecodeInto: %.1f allocs/op, budget %d", got, decodeBudget)
	}
}
