package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
)

// Launch is a GPU kernel launch geometry: the (grid, block) pair CSWAP
// tunes with Bayesian optimization (Section IV-D). Grid is the number of
// thread blocks (1–4096 in the paper's search space); Block is threads per
// block (64 or 128, matching the 2/4 warp schedulers per SM on the
// evaluated GPUs).
type Launch struct {
	Grid  int
	Block int
}

// Validate reports whether the launch geometry is inside the paper's search
// space.
func (l Launch) Validate() error {
	if l.Grid < 1 || l.Grid > 4096 {
		return fmt.Errorf("compress: grid %d outside [1,4096]", l.Grid)
	}
	if l.Block != 64 && l.Block != 128 {
		return fmt.Errorf("compress: block %d not in {64,128}", l.Block)
	}
	return nil
}

// Threads returns the total thread count of the launch.
func (l Launch) Threads() int { return l.Grid * l.Block }

func (l Launch) String() string { return fmt.Sprintf("(%d,%d)", l.Grid, l.Block) }

// Hooks intercepts per-chunk codec work on the parallel path — the seam the
// fault injector (internal/faultinject) and instrumentation attach to. A
// nil *Hooks or nil field is a no-op; a non-nil error from a hook aborts
// that chunk.
type Hooks struct {
	ChunkEncode func(alg Algorithm, chunk int) error
	ChunkDecode func(alg Algorithm, chunk int) error
}

func (h *Hooks) chunkEncode(alg Algorithm, chunk int) error {
	if h == nil || h.ChunkEncode == nil {
		return nil
	}
	return h.ChunkEncode(alg, chunk)
}

func (h *Hooks) chunkDecode(alg Algorithm, chunk int) error {
	if h == nil || h.ChunkDecode == nil {
		return nil
	}
	return h.ChunkDecode(alg, chunk)
}

// Parallel blob framing:
//
//	[0]      0x50 ('P') container marker
//	[1]      algorithm byte
//	[2:10]   uint64 total element count
//	[10:14]  uint32 chunk count
//	[14:..]  chunk count × uint64 chunk blob lengths
//	then the concatenated per-chunk codec blobs.
const parallelMarker = 0x50

// parHeaderSize is the fixed container prefix before the chunk directory.
const parHeaderSize = 14

// maxParallelElems bounds the element count a container header may claim;
// anything larger is treated as corrupt before any allocation happens.
const maxParallelElems = math.MaxInt32

// ParallelEncode compresses src with the codec for alg, partitioned into
// launch.Grid independent chunks the way a GPU kernel assigns one tensor
// slice per thread block. Chunks are 32-element aligned so ZVC bitmap words
// never straddle a boundary. Worker concurrency follows the launch geometry
// capped at GOMAXPROCS — on a real GPU every block runs concurrently; on the
// CPU host this wrapper preserves the partitioning semantics (and therefore
// byte-exact output for a given launch) while bounding threads.
func ParallelEncode(alg Algorithm, src []float32, launch Launch) ([]byte, error) {
	return ParallelEncodeWith(alg, src, launch, nil)
}

// ParallelEncodeWith is ParallelEncode with per-chunk hooks attached.
func ParallelEncodeWith(alg Algorithm, src []float32, launch Launch, hooks *Hooks) ([]byte, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	bound, err := MaxParallelEncodedLen(alg, len(src), launch)
	if err != nil {
		return nil, err
	}
	return AppendParallelEncodeWith(make([]byte, 0, bound), alg, src, launch, hooks)
}

// MaxParallelEncodedLen returns an upper bound on the container size
// AppendParallelEncode can produce for an n-element tensor at the given
// launch, derived arithmetically from the codec's per-chunk MaxEncodedLen.
// Callers use it to pre-size append destinations (e.g. arena buffers) so
// the encode path performs no allocation.
func MaxParallelEncodedLen(alg Algorithm, n int, launch Launch) (int, error) {
	codec, err := New(alg)
	if err != nil {
		return 0, err
	}
	per, k := chunkShape(n, launch.Grid)
	last := n - (k-1)*per
	if last > per {
		last = per // single-chunk case: the chunk holds all n <= per elements
	}
	return parHeaderSize + 8*k + (k-1)*codec.MaxEncodedLen(per) + codec.MaxEncodedLen(last), nil
}

// AppendParallelEncode appends the parallel container encoding of src to
// dst, returning the extended slice. The appended bytes are identical to
// ParallelEncode's output for the same launch. When cap(dst)-len(dst) is at
// least MaxParallelEncodedLen, no allocation occurs: every chunk encodes
// directly into a disjoint span of dst and the spans are then compacted in
// place — there is no per-chunk blob or concatenation copy.
func AppendParallelEncode(dst []byte, alg Algorithm, src []float32, launch Launch) ([]byte, error) {
	return AppendParallelEncodeWith(dst, alg, src, launch, nil)
}

// AppendParallelEncodeWith is AppendParallelEncode with per-chunk hooks.
func AppendParallelEncodeWith(dst []byte, alg Algorithm, src []float32, launch Launch, hooks *Hooks) ([]byte, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	codec, err := New(alg)
	if err != nil {
		return nil, err
	}
	chunks := chunkBounds(len(src), launch.Grid)
	k := len(chunks)

	// Reserve the header, the directory, and one worst-case span per chunk.
	// Every non-last chunk has the same element count, hence the same bound.
	base := len(dst)
	dirEnd := base + parHeaderSize + 8*k
	maxPer := codec.MaxEncodedLen(chunks[0].hi - chunks[0].lo)
	need := dirEnd + (k-1)*maxPer + codec.MaxEncodedLen(chunks[k-1].hi-chunks[k-1].lo)
	if cap(dst) < need {
		grown := make([]byte, need, need+(need-base)/4)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:need]
	}

	// Each chunk encodes into its own capacity-capped span; the three-index
	// slice keeps appends inside the reservation. encoded records where each
	// blob actually lives — normally the span itself, or an escaped append
	// allocation if a MaxEncodedLen bound were ever violated (the compaction
	// below copies from wherever the blob is, so correctness never depends
	// on the bound).
	encoded := make([][]byte, k)
	errs := make([]error, k)
	runWorkers(k, workerCount(launch, k), func(i int) {
		if herr := hooks.chunkEncode(alg, i); herr != nil {
			errs[i] = chunkErr(alg, i, k, herr)
			return
		}
		off := dirEnd + i*maxPer
		lim := off + codec.MaxEncodedLen(chunks[i].hi-chunks[i].lo)
		encoded[i] = codec.AppendEncode(dst[off:off:lim], src[chunks[i].lo:chunks[i].hi])
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	// Header, directory, then left-compaction. Chunk i's final position
	// starts at dirEnd + sum(len(b_j), j<i) <= dirEnd + i*maxPer, its
	// scratch position, so the ascending copy never clobbers unread bytes.
	dst[base] = parallelMarker
	dst[base+1] = byte(alg)
	binary.LittleEndian.PutUint64(dst[base+2:], uint64(len(src)))
	binary.LittleEndian.PutUint32(dst[base+10:], uint32(k))
	w := dirEnd
	for i, b := range encoded {
		binary.LittleEndian.PutUint64(dst[base+parHeaderSize+8*i:], uint64(len(b)))
		copy(dst[w:], b)
		w += len(b)
	}
	return dst[:w], nil
}

// ParallelDecode reverses ParallelEncode, decoding chunks concurrently with
// the worker concurrency derived from the caller's launch geometry (the
// same BO-tuned geometry ParallelEncode honours).
func ParallelDecode(blob []byte, launch Launch) ([]float32, error) {
	return ParallelDecodeWith(blob, launch, nil)
}

// ParallelDecodeWith is ParallelDecode with per-chunk hooks attached.
//
// The container is fully validated before the n-element destination is
// allocated: the algorithm byte must name a known codec, the chunk count
// must be consistent with the declared element count (no blob may claim
// more chunks than ceil(n/32) 32-aligned spans), the chunk directory must
// exactly tile the payload, and the per-chunk headers must agree with the
// container header — so a hostile header cannot drive a huge allocation or
// a mismatched decode.
func ParallelDecodeWith(blob []byte, launch Launch, hooks *Hooks) ([]float32, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	pc, err := parseParallelContainer(blob)
	if err != nil {
		return nil, err
	}
	dst := make([]float32, pc.n)
	if err := pc.decodeInto(dst, blob, launch, hooks); err != nil {
		return nil, err
	}
	return dst, nil
}

// ParallelDecodeInto reverses ParallelEncode into the caller-owned dst,
// whose length must equal the container's declared element count
// (ErrDstSize otherwise). Each chunk scatters straight into its span of
// dst with no intermediate slices; on success every element of dst has
// been written, so a dirty recycled buffer is fully overwritten. On error
// dst's contents are unspecified.
func ParallelDecodeInto(dst []float32, blob []byte, launch Launch) error {
	return ParallelDecodeIntoWith(dst, blob, launch, nil)
}

// ParallelDecodeIntoWith is ParallelDecodeInto with per-chunk hooks.
func ParallelDecodeIntoWith(dst []float32, blob []byte, launch Launch, hooks *Hooks) error {
	if err := launch.Validate(); err != nil {
		return err
	}
	pc, err := parseParallelContainer(blob)
	if err != nil {
		return err
	}
	if len(dst) != pc.n {
		return fmt.Errorf("%w: dst holds %d elements, container declares %d",
			ErrDstSize, len(dst), pc.n)
	}
	return pc.decodeInto(dst, blob, launch, hooks)
}

// parContainer is a validated view over a parallel container blob.
type parContainer struct {
	codec   Codec
	alg     Algorithm
	n       int
	bounds  []span // element spans, one per chunk
	offsets []int  // len(bounds)+1 absolute byte offsets of chunk blobs
}

// parseParallelContainer performs the full structural validation described
// on ParallelDecodeWith and returns the chunk layout. Nothing is allocated
// proportional to the (untrusted) declared element count.
func parseParallelContainer(blob []byte) (parContainer, error) {
	var pc parContainer
	if len(blob) < parHeaderSize {
		return pc, fmt.Errorf("%w: parallel container header", ErrTruncated)
	}
	if blob[0] != parallelMarker {
		return pc, fmt.Errorf("%w: not a parallel container", ErrCorrupt)
	}
	// The algorithm byte must map to a known codec before anything is
	// allocated on the strength of the header.
	alg := Algorithm(blob[1])
	codec, err := New(alg)
	if err != nil {
		return pc, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := int(binary.LittleEndian.Uint64(blob[2:10]))
	if n < 0 || n > maxParallelElems {
		return pc, fmt.Errorf("%w: container claims %d elements", ErrCorrupt, n)
	}
	numChunks := int(binary.LittleEndian.Uint32(blob[10:14]))
	// Chunks are 32-element aligned and non-empty (except the single empty
	// chunk of an empty tensor), so a container claiming more chunks than
	// ceil(n/32) — or none at all — is corrupt.
	maxChunks := (n + 31) / 32
	if maxChunks < 1 {
		maxChunks = 1
	}
	if numChunks < 1 || numChunks > maxChunks {
		return pc, fmt.Errorf("%w: %d chunks for %d elements (max %d)",
			ErrCorrupt, numChunks, n, maxChunks)
	}
	dirEnd := parHeaderSize + 8*numChunks
	if len(blob) < dirEnd {
		return pc, fmt.Errorf("%w: chunk directory", ErrTruncated)
	}
	offsets := make([]int, numChunks+1)
	offsets[0] = dirEnd
	for i := 0; i < numChunks; i++ {
		length := int(binary.LittleEndian.Uint64(blob[parHeaderSize+8*i:]))
		if length < 0 || offsets[i]+length > len(blob) {
			return pc, chunkErr(alg, i, numChunks, ErrTruncated)
		}
		offsets[i+1] = offsets[i] + length
	}
	if offsets[numChunks] != len(blob) {
		return pc, fmt.Errorf("%w: directory covers %d bytes, payload has %d",
			ErrCorrupt, offsets[numChunks]-dirEnd, len(blob)-dirEnd)
	}
	bounds := chunkBounds(n, numChunks)
	if len(bounds) != numChunks {
		return pc, fmt.Errorf("%w: chunk count %d inconsistent with %d elements",
			ErrCorrupt, numChunks, n)
	}
	// Cross-check every chunk's own header against the container before
	// the destination is touched: each must carry the container's algorithm
	// and declare exactly its span's element count (which also forces the
	// counts to sum to n). Classifying a count mismatch here keeps it
	// ErrCorrupt — recoverable data corruption — rather than surfacing as a
	// structural ErrDstSize from the per-chunk DecodeInto.
	for i := range bounds {
		chunk := blob[offsets[i]:offsets[i+1]]
		if len(chunk) < headerSize {
			return pc, chunkErr(alg, i, numChunks, ErrTruncated)
		}
		if Algorithm(chunk[0]) != alg {
			return pc, chunkErr(alg, i, numChunks, fmt.Errorf(
				"%w: chunk algorithm byte %d, container is %s", ErrCorrupt, chunk[0], alg))
		}
		if count := binary.LittleEndian.Uint64(chunk[1:9]); count != uint64(bounds[i].hi-bounds[i].lo) {
			return pc, chunkErr(alg, i, numChunks, fmt.Errorf(
				"%w: chunk declares %d elements, span holds %d",
				ErrCorrupt, count, bounds[i].hi-bounds[i].lo))
		}
	}
	return parContainer{codec: codec, alg: alg, n: n, bounds: bounds, offsets: offsets}, nil
}

// decodeInto runs the per-chunk decodes, scattering each chunk straight
// into its span of dst.
func (pc parContainer) decodeInto(dst []float32, blob []byte, launch Launch, hooks *Hooks) error {
	numChunks := len(pc.bounds)
	errs := make([]error, numChunks)
	runWorkers(numChunks, workerCount(launch, numChunks), func(i int) {
		if herr := hooks.chunkDecode(pc.alg, i); herr != nil {
			errs[i] = chunkErr(pc.alg, i, numChunks, herr)
			return
		}
		chunk := blob[pc.offsets[i]:pc.offsets[i+1]]
		if derr := pc.codec.DecodeInto(dst[pc.bounds[i].lo:pc.bounds[i].hi], chunk); derr != nil {
			errs[i] = chunkErr(pc.alg, i, numChunks, derr)
		}
	})
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

type span struct{ lo, hi int }

// chunkShape returns the 32-aligned per-chunk element count and the number
// of chunks chunkBounds produces for (n, grid).
func chunkShape(n, grid int) (per, k int) {
	if grid < 1 {
		grid = 1
	}
	per = (n + grid - 1) / grid
	per = (per + 31) &^ 31
	if per == 0 {
		per = 32
	}
	k = (n + per - 1) / per
	if k < 1 {
		k = 1
	}
	return per, k
}

// chunkBounds splits n elements into at most grid 32-aligned spans; the last
// span absorbs the remainder. Fewer spans than grid are produced when the
// tensor is small.
func chunkBounds(n, grid int) []span {
	per, k := chunkShape(n, grid)
	out := make([]span, 0, k)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, span{lo, hi})
	}
	if len(out) == 0 {
		out = append(out, span{0, 0})
	}
	return out
}

// workerCount bounds host-side concurrency for a parallel codec call.
//
// The Block/64 factor models the launch's occupancy, not a thread count:
// Block 64 keeps 2 warps resident per "SM" and Block 128 keeps 4, so a
// 128-thread block asks for twice the concurrency of a 64-thread one, the
// way the paper's two block sizes trade occupancy against scheduling slack.
// The workers are CPU-bound here, so the scaled count never exceeds the
// machine's parallelism: scaling applies only below the GOMAXPROCS cap,
// not past it — at the cap, workerCount(Block=128) == workerCount(Block=64)
// by design, and the geometry only changes the chunk partitioning (hence
// the bytes), not the host thread count.
func workerCount(l Launch, jobs int) int {
	maxW := runtime.GOMAXPROCS(0)
	w := maxW * l.Block / 64
	if w > maxW {
		w = maxW
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}
