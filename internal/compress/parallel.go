package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Launch is a GPU kernel launch geometry: the (grid, block) pair CSWAP
// tunes with Bayesian optimization (Section IV-D). Grid is the number of
// thread blocks (1–4096 in the paper's search space); Block is threads per
// block (64 or 128, matching the 2/4 warp schedulers per SM on the
// evaluated GPUs).
type Launch struct {
	Grid  int
	Block int
}

// Validate reports whether the launch geometry is inside the paper's search
// space.
func (l Launch) Validate() error {
	if l.Grid < 1 || l.Grid > 4096 {
		return fmt.Errorf("compress: grid %d outside [1,4096]", l.Grid)
	}
	if l.Block != 64 && l.Block != 128 {
		return fmt.Errorf("compress: block %d not in {64,128}", l.Block)
	}
	return nil
}

// Threads returns the total thread count of the launch.
func (l Launch) Threads() int { return l.Grid * l.Block }

func (l Launch) String() string { return fmt.Sprintf("(%d,%d)", l.Grid, l.Block) }

// Hooks intercepts per-chunk codec work on the parallel path — the seam the
// fault injector (internal/faultinject) and instrumentation attach to. A
// nil *Hooks or nil field is a no-op; a non-nil error from a hook aborts
// that chunk.
type Hooks struct {
	ChunkEncode func(alg Algorithm, chunk int) error
	ChunkDecode func(alg Algorithm, chunk int) error
}

func (h *Hooks) chunkEncode(alg Algorithm, chunk int) error {
	if h == nil || h.ChunkEncode == nil {
		return nil
	}
	return h.ChunkEncode(alg, chunk)
}

func (h *Hooks) chunkDecode(alg Algorithm, chunk int) error {
	if h == nil || h.ChunkDecode == nil {
		return nil
	}
	return h.ChunkDecode(alg, chunk)
}

// Parallel blob framing:
//
//	[0]      0x50 ('P') container marker
//	[1]      algorithm byte
//	[2:10]   uint64 total element count
//	[10:14]  uint32 chunk count
//	[14:..]  chunk count × uint64 chunk blob lengths
//	then the concatenated per-chunk codec blobs.
const parallelMarker = 0x50

// maxParallelElems bounds the element count a container header may claim;
// anything larger is treated as corrupt before any allocation happens.
const maxParallelElems = math.MaxInt32

// ParallelEncode compresses src with the codec for alg, partitioned into
// launch.Grid independent chunks the way a GPU kernel assigns one tensor
// slice per thread block. Chunks are 32-element aligned so ZVC bitmap words
// never straddle a boundary. Worker concurrency follows the launch geometry
// capped at GOMAXPROCS — on a real GPU every block runs concurrently; on the
// CPU host this wrapper preserves the partitioning semantics (and therefore
// byte-exact output for a given launch) while bounding threads.
func ParallelEncode(alg Algorithm, src []float32, launch Launch) ([]byte, error) {
	return ParallelEncodeWith(alg, src, launch, nil)
}

// ParallelEncodeWith is ParallelEncode with per-chunk hooks attached.
func ParallelEncodeWith(alg Algorithm, src []float32, launch Launch, hooks *Hooks) ([]byte, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	codec, err := New(alg)
	if err != nil {
		return nil, err
	}
	chunks := chunkBounds(len(src), launch.Grid)
	blobs := make([][]byte, len(chunks))
	errs := make([]error, len(chunks))
	runWorkers(len(chunks), workerCount(launch, len(chunks)), func(i int) {
		if herr := hooks.chunkEncode(alg, i); herr != nil {
			errs[i] = chunkErr(alg, i, len(chunks), herr)
			return
		}
		blobs[i] = codec.Encode(src[chunks[i].lo:chunks[i].hi])
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	total := 14 + 8*len(chunks)
	for _, b := range blobs {
		total += len(b)
	}
	out := make([]byte, 0, total)
	out = append(out, parallelMarker, byte(alg))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(src)))
	out = append(out, u64[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(chunks)))
	out = append(out, u32[:]...)
	for _, b := range blobs {
		binary.LittleEndian.PutUint64(u64[:], uint64(len(b)))
		out = append(out, u64[:]...)
	}
	for _, b := range blobs {
		out = append(out, b...)
	}
	return out, nil
}

// ParallelDecode reverses ParallelEncode, decoding chunks concurrently with
// the worker concurrency derived from the caller's launch geometry (the
// same BO-tuned geometry ParallelEncode honours).
func ParallelDecode(blob []byte, launch Launch) ([]float32, error) {
	return ParallelDecodeWith(blob, launch, nil)
}

// ParallelDecodeWith is ParallelDecode with per-chunk hooks attached.
//
// The container is fully validated before the n-element destination is
// allocated: the algorithm byte must name a known codec, the chunk count
// must be consistent with the declared element count (no blob may claim
// more chunks than ceil(n/32) 32-aligned spans), the chunk directory must
// exactly tile the payload, and the per-chunk headers must agree with the
// container header — so a hostile header cannot drive a huge allocation or
// a mismatched decode.
func ParallelDecodeWith(blob []byte, launch Launch, hooks *Hooks) ([]float32, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	if len(blob) < 14 {
		return nil, fmt.Errorf("%w: parallel container header", ErrTruncated)
	}
	if blob[0] != parallelMarker {
		return nil, fmt.Errorf("%w: not a parallel container", ErrCorrupt)
	}
	// The algorithm byte must map to a known codec before anything is
	// allocated on the strength of the header.
	alg := Algorithm(blob[1])
	codec, err := New(alg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n := int(binary.LittleEndian.Uint64(blob[2:10]))
	if n < 0 || n > maxParallelElems {
		return nil, fmt.Errorf("%w: container claims %d elements", ErrCorrupt, n)
	}
	numChunks := int(binary.LittleEndian.Uint32(blob[10:14]))
	// Chunks are 32-element aligned and non-empty (except the single empty
	// chunk of an empty tensor), so a container claiming more chunks than
	// ceil(n/32) — or none at all — is corrupt.
	maxChunks := (n + 31) / 32
	if maxChunks < 1 {
		maxChunks = 1
	}
	if numChunks < 1 || numChunks > maxChunks {
		return nil, fmt.Errorf("%w: %d chunks for %d elements (max %d)",
			ErrCorrupt, numChunks, n, maxChunks)
	}
	dirEnd := 14 + 8*numChunks
	if len(blob) < dirEnd {
		return nil, fmt.Errorf("%w: chunk directory", ErrTruncated)
	}
	lengths := make([]int, numChunks)
	pos := dirEnd
	for i := range lengths {
		lengths[i] = int(binary.LittleEndian.Uint64(blob[14+8*i:]))
		if lengths[i] < 0 || pos+lengths[i] > len(blob) {
			return nil, chunkErr(alg, i, numChunks, ErrTruncated)
		}
		pos += lengths[i]
	}
	if pos != len(blob) {
		return nil, fmt.Errorf("%w: directory covers %d bytes, payload has %d",
			ErrCorrupt, pos-dirEnd, len(blob)-dirEnd)
	}
	offsets := make([]int, numChunks)
	off := dirEnd
	for i := range offsets {
		offsets[i] = off
		off += lengths[i]
	}
	// Cross-check every chunk's own header against the container before
	// allocating the destination: each must carry the container's
	// algorithm, and the per-chunk element counts must sum to n.
	var declared uint64
	for i := range lengths {
		chunk := blob[offsets[i] : offsets[i]+lengths[i]]
		if len(chunk) < headerSize {
			return nil, chunkErr(alg, i, numChunks, ErrTruncated)
		}
		if Algorithm(chunk[0]) != alg {
			return nil, chunkErr(alg, i, numChunks, fmt.Errorf(
				"%w: chunk algorithm byte %d, container is %s", ErrCorrupt, chunk[0], alg))
		}
		declared += binary.LittleEndian.Uint64(chunk[1:9])
	}
	if declared != uint64(n) {
		return nil, fmt.Errorf("%w: chunks declare %d elements, container claims %d",
			ErrCorrupt, declared, n)
	}

	bounds := chunkBounds(n, numChunks)
	if len(bounds) != numChunks {
		return nil, fmt.Errorf("%w: chunk count %d inconsistent with %d elements",
			ErrCorrupt, numChunks, n)
	}
	dst := make([]float32, n)
	errs := make([]error, numChunks)
	runWorkers(numChunks, workerCount(launch, numChunks), func(i int) {
		if herr := hooks.chunkDecode(alg, i); herr != nil {
			errs[i] = chunkErr(alg, i, numChunks, herr)
			return
		}
		part, derr := codec.Decode(blob[offsets[i] : offsets[i]+lengths[i]])
		if derr != nil {
			errs[i] = chunkErr(alg, i, numChunks, derr)
			return
		}
		if len(part) != bounds[i].hi-bounds[i].lo {
			errs[i] = chunkErr(alg, i, numChunks, fmt.Errorf(
				"%w: decoded to %d elements, want %d", ErrCorrupt, len(part), bounds[i].hi-bounds[i].lo))
			return
		}
		copy(dst[bounds[i].lo:], part)
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return dst, nil
}

type span struct{ lo, hi int }

// chunkBounds splits n elements into at most grid 32-aligned spans; the last
// span absorbs the remainder. Fewer spans than grid are produced when the
// tensor is small.
func chunkBounds(n, grid int) []span {
	if grid < 1 {
		grid = 1
	}
	per := (n + grid - 1) / grid
	per = (per + 31) &^ 31
	if per == 0 {
		per = 32
	}
	var out []span
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, span{lo, hi})
	}
	if out == nil {
		out = []span{{0, 0}}
	}
	return out
}

// workerCount bounds host-side concurrency. The Block/64 factor models more
// resident warps per "SM", but the workers are CPU-bound here, so the
// scaled count never exceeds the machine's parallelism: scaling applies
// only below the GOMAXPROCS cap, not past it.
func workerCount(l Launch, jobs int) int {
	maxW := runtime.GOMAXPROCS(0)
	w := maxW * l.Block / 64
	if w > maxW {
		w = maxW
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runWorkers runs fn(i) for i in [0,jobs) with the given concurrency.
func runWorkers(jobs, workers int, fn func(int)) {
	if jobs == 0 {
		return
	}
	if workers <= 1 || jobs == 1 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
