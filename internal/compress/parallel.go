package compress

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
)

// Launch is a GPU kernel launch geometry: the (grid, block) pair CSWAP
// tunes with Bayesian optimization (Section IV-D). Grid is the number of
// thread blocks (1–4096 in the paper's search space); Block is threads per
// block (64 or 128, matching the 2/4 warp schedulers per SM on the
// evaluated GPUs).
type Launch struct {
	Grid  int
	Block int
}

// Validate reports whether the launch geometry is inside the paper's search
// space.
func (l Launch) Validate() error {
	if l.Grid < 1 || l.Grid > 4096 {
		return fmt.Errorf("compress: grid %d outside [1,4096]", l.Grid)
	}
	if l.Block != 64 && l.Block != 128 {
		return fmt.Errorf("compress: block %d not in {64,128}", l.Block)
	}
	return nil
}

// Threads returns the total thread count of the launch.
func (l Launch) Threads() int { return l.Grid * l.Block }

func (l Launch) String() string { return fmt.Sprintf("(%d,%d)", l.Grid, l.Block) }

// Parallel blob framing:
//
//	[0]      0x50 ('P') container marker
//	[1]      algorithm byte
//	[2:10]   uint64 total element count
//	[10:14]  uint32 chunk count
//	[14:..]  chunk count × uint64 chunk blob lengths
//	then the concatenated per-chunk codec blobs.
const parallelMarker = 0x50

// ParallelEncode compresses src with the codec for alg, partitioned into
// launch.Grid independent chunks the way a GPU kernel assigns one tensor
// slice per thread block. Chunks are 32-element aligned so ZVC bitmap words
// never straddle a boundary. Worker concurrency follows the launch geometry
// capped at GOMAXPROCS — on a real GPU every block runs concurrently; on the
// CPU host this wrapper preserves the partitioning semantics (and therefore
// byte-exact output for a given launch) while bounding threads.
func ParallelEncode(alg Algorithm, src []float32, launch Launch) ([]byte, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	codec, err := New(alg)
	if err != nil {
		return nil, err
	}
	chunks := chunkBounds(len(src), launch.Grid)
	blobs := make([][]byte, len(chunks))
	runWorkers(len(chunks), workerCount(launch, len(chunks)), func(i int) {
		blobs[i] = codec.Encode(src[chunks[i].lo:chunks[i].hi])
	})

	total := 14 + 8*len(chunks)
	for _, b := range blobs {
		total += len(b)
	}
	out := make([]byte, 0, total)
	out = append(out, parallelMarker, byte(alg))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(src)))
	out = append(out, u64[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(chunks)))
	out = append(out, u32[:]...)
	for _, b := range blobs {
		binary.LittleEndian.PutUint64(u64[:], uint64(len(b)))
		out = append(out, u64[:]...)
	}
	for _, b := range blobs {
		out = append(out, b...)
	}
	return out, nil
}

// ParallelDecode reverses ParallelEncode, decoding chunks concurrently.
func ParallelDecode(blob []byte, launch Launch) ([]float32, error) {
	if len(blob) < 14 {
		return nil, ErrTruncated
	}
	if blob[0] != parallelMarker {
		return nil, fmt.Errorf("%w: not a parallel container", ErrCorrupt)
	}
	alg := Algorithm(blob[1])
	codec, err := New(alg)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint64(blob[2:10]))
	numChunks := int(binary.LittleEndian.Uint32(blob[10:14]))
	if numChunks < 0 || numChunks > 1<<20 {
		return nil, ErrCorrupt
	}
	dirEnd := 14 + 8*numChunks
	if len(blob) < dirEnd {
		return nil, ErrTruncated
	}
	lengths := make([]int, numChunks)
	pos := dirEnd
	for i := range lengths {
		lengths[i] = int(binary.LittleEndian.Uint64(blob[14+8*i:]))
		if lengths[i] < 0 || pos+lengths[i] > len(blob) {
			return nil, ErrTruncated
		}
		pos += lengths[i]
	}
	if pos != len(blob) {
		return nil, ErrCorrupt
	}

	dst := make([]float32, n)
	bounds := chunkBounds(n, numChunks)
	if len(bounds) != numChunks {
		return nil, fmt.Errorf("%w: chunk count %d inconsistent with %d elements",
			ErrCorrupt, numChunks, n)
	}
	errs := make([]error, numChunks)
	offsets := make([]int, numChunks)
	off := dirEnd
	for i := range offsets {
		offsets[i] = off
		off += lengths[i]
	}
	runWorkers(numChunks, workerCount(Launch{Grid: numChunks, Block: 64}, numChunks), func(i int) {
		part, derr := codec.Decode(blob[offsets[i] : offsets[i]+lengths[i]])
		if derr != nil {
			errs[i] = derr
			return
		}
		if len(part) != bounds[i].hi-bounds[i].lo {
			errs[i] = fmt.Errorf("%w: chunk %d decoded to %d elements, want %d",
				ErrCorrupt, i, len(part), bounds[i].hi-bounds[i].lo)
			return
		}
		copy(dst[bounds[i].lo:], part)
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return dst, nil
}

type span struct{ lo, hi int }

// chunkBounds splits n elements into at most grid 32-aligned spans; the last
// span absorbs the remainder. Fewer spans than grid are produced when the
// tensor is small.
func chunkBounds(n, grid int) []span {
	if grid < 1 {
		grid = 1
	}
	per := (n + grid - 1) / grid
	per = (per + 31) &^ 31
	if per == 0 {
		per = 32
	}
	var out []span
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, span{lo, hi})
	}
	if out == nil {
		out = []span{{0, 0}}
	}
	return out
}

// workerCount bounds host-side concurrency: a bigger Block means more
// resident warps per "SM", so we scale workers with Block/64 before capping
// at the machine's parallelism.
func workerCount(l Launch, jobs int) int {
	w := runtime.GOMAXPROCS(0) * l.Block / 64
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runWorkers runs fn(i) for i in [0,jobs) with the given concurrency.
func runWorkers(jobs, workers int, fn func(int)) {
	if jobs == 0 {
		return
	}
	if workers <= 1 || jobs == 1 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
