package compress

import (
	"fmt"
	"testing"

	"cswap/internal/tensor"
)

// Per-codec hot-path benchmarks. Names are stable identifiers consumed by
// cmd/cswap-benchdiff (see the bench-compress / bench-diff Makefile
// targets): renaming one orphans its baseline entry in BENCH_compress.json.

const benchElems = 16384
const benchSparsity = 0.6

func benchTensor(b *testing.B) []float32 {
	b.Helper()
	return tensor.NewGenerator(97).Uniform(benchElems, benchSparsity).Data
}

func BenchmarkCodecEncode(b *testing.B) {
	src := benchTensor(b)
	for _, a := range ExtendedAlgorithms() {
		c := MustNew(a)
		b.Run(a.String(), func(b *testing.B) {
			buf := make([]byte, 0, c.MaxEncodedLen(len(src)))
			b.SetBytes(int64(len(src) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = c.AppendEncode(buf[:0], src)
			}
		})
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	src := benchTensor(b)
	for _, a := range ExtendedAlgorithms() {
		c := MustNew(a)
		b.Run(a.String(), func(b *testing.B) {
			blob := c.Encode(src)
			dst := make([]float32, len(src))
			b.SetBytes(int64(len(src) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.DecodeInto(dst, blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelContainer(b *testing.B) {
	src := benchTensor(b)
	launch := Launch{Grid: 16, Block: 64}
	for _, a := range []Algorithm{ZVC, LZ4} {
		b.Run(fmt.Sprintf("encode-%s", a), func(b *testing.B) {
			bound, err := MaxParallelEncodedLen(a, len(src), launch)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 0, bound)
			b.SetBytes(int64(len(src) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := AppendParallelEncode(buf[:0], a, src, launch)
				if err != nil {
					b.Fatal(err)
				}
				buf = out[:0]
			}
		})
		b.Run(fmt.Sprintf("decode-%s", a), func(b *testing.B) {
			blob, err := ParallelEncode(a, src, launch)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]float32, len(src))
			b.SetBytes(int64(len(src) * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ParallelDecodeInto(dst, blob, launch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
