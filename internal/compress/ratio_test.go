package compress

import (
	"math"
	"testing"

	"cswap/internal/tensor"
)

// TestEstimateRatioMatchesRealCodecs validates the analytic size models the
// simulator uses against the actual codecs on uniformly-sparse tensors.
func TestEstimateRatioMatchesRealCodecs(t *testing.T) {
	gen := tensor.NewGenerator(47)
	tolerances := map[Algorithm]float64{
		ZVC: 0.01, // exact model
		CSR: 0.01, // exact model
		RLE: 0.03, // run-count expectation
		LZ4: 0.10, // heuristic match-cost model
	}
	for _, a := range Algorithms() {
		c := MustNew(a)
		for _, s := range []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9} {
			tn := gen.Uniform(200000, s)
			real := Ratio(c.Encode(tn.Data), tn.Len())
			est := EstimateRatio(a, tn.Sparsity())
			if math.Abs(real-est) > tolerances[a] {
				t.Errorf("%s sparsity %.2f: real ratio %.4f, model %.4f (tol %.2f)",
					a, s, real, est, tolerances[a])
			}
		}
	}
}

func TestEstimateRatioClampsAndMonotonicity(t *testing.T) {
	for _, a := range Algorithms() {
		if EstimateRatio(a, -1) != EstimateRatio(a, 0) {
			t.Errorf("%s: sparsity not clamped at 0", a)
		}
		if EstimateRatio(a, 2) != EstimateRatio(a, 1) {
			t.Errorf("%s: sparsity not clamped at 1", a)
		}
	}
	// ZVC and CSR ratios must decrease strictly with sparsity.
	for _, a := range []Algorithm{ZVC, CSR} {
		prev := EstimateRatio(a, 0)
		for s := 0.1; s <= 1.001; s += 0.1 {
			cur := EstimateRatio(a, s)
			if cur >= prev {
				t.Errorf("%s ratio not decreasing at sparsity %.1f", a, s)
			}
			prev = cur
		}
	}
}

func TestEstimateRatioUnknownAlgorithm(t *testing.T) {
	if got := EstimateRatio(Algorithm(99), 0.5); got != 1 {
		t.Fatalf("unknown algorithm ratio = %v, want 1", got)
	}
}

func TestEstimateCompressedBytes(t *testing.T) {
	got := EstimateCompressedBytes(ZVC, 3200, 0.5)
	want := int64(3200 * (0.5 + 1.0/32))
	if got != want {
		t.Fatalf("EstimateCompressedBytes = %d, want %d", got, want)
	}
}

func TestBestRatioAlgorithmBySparsityRegime(t *testing.T) {
	// Huffman is the only codec whose modeled ratio beats 1.0 on dense
	// tensors (0.895 at s=0 vs ZVC's 1.03), so it must win the dense/low-
	// sparsity regime; in the paper's moderate-to-high operating range the
	// sparsity codecs overtake it (ZVC from s≈0.4); near-total sparsity
	// RLE's 1−s² drops below ZVC's bitmap floor. The crossover near s≈0.37
	// is deliberately not pinned — the models are fits, not laws.
	cases := []struct {
		sparsity float64
		want     Algorithm
	}{
		{0.0, Huffman},
		{0.1, Huffman},
		{0.2, Huffman},
		{0.3, Huffman},
		{0.4, ZVC},
		{0.5, ZVC},
		{0.65, ZVC},
		{0.8, ZVC},
		{0.9, ZVC},
		{1.0, RLE},
	}
	for _, tc := range cases {
		if got := BestRatioAlgorithm(tc.sparsity); got != tc.want {
			t.Errorf("BestRatioAlgorithm(%.2f) = %s, want %s", tc.sparsity, got, tc.want)
		}
	}
	// Huffman must lose everywhere in the high-sparsity regime, whatever
	// wins: its byte-entropy floor cannot follow the sparsity codecs down.
	for s := 0.5; s <= 1.001; s += 0.05 {
		if got := BestRatioAlgorithm(s); got == Huffman {
			t.Errorf("BestRatioAlgorithm(%.2f) = HUF, want a sparsity codec", s)
		}
	}
}
