package compress

import (
	"math"
	"testing"
	"testing/quick"

	"cswap/internal/tensor"
)

// roundTrip checks Decode(Encode(src)) == src bit-exactly for one codec.
func roundTrip(t *testing.T, c Codec, src []float32) {
	t.Helper()
	blob := c.Encode(src)
	got, err := c.Decode(blob)
	if err != nil {
		t.Fatalf("%s decode error: %v", c.Algorithm(), err)
	}
	if len(got) != len(src) {
		t.Fatalf("%s round-trip length %d, want %d", c.Algorithm(), len(got), len(src))
	}
	for i := range src {
		if math.Float32bits(got[i]) != math.Float32bits(src[i]) {
			t.Fatalf("%s round-trip mismatch at %d: got %x want %x",
				c.Algorithm(), i, math.Float32bits(got[i]), math.Float32bits(src[i]))
		}
	}
}

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, a := range Algorithms() {
		c, err := New(a)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{ZVC: "ZVC", RLE: "RLE", CSR: "CSR", LZ4: "LZ4"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if Algorithm(200).String() != "Algorithm(200)" {
		t.Errorf("unknown algorithm String = %q", Algorithm(200).String())
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	if _, err := New(Algorithm(0)); err == nil {
		t.Fatal("New(0) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) should panic")
		}
	}()
	MustNew(Algorithm(0))
}

func TestRoundTripEdgeCases(t *testing.T) {
	cases := map[string][]float32{
		"empty":            {},
		"single zero":      {0},
		"single value":     {3.25},
		"all zeros":        make([]float32, 100),
		"no zeros":         {1, 2, 3, 4, 5, 6, 7, 8, 9},
		"leading zeros":    {0, 0, 0, 1, 2},
		"trailing zeros":   {1, 2, 0, 0, 0},
		"alternating":      {0, 1, 0, 2, 0, 3, 0, 4},
		"exactly 32":       append(make([]float32, 16), []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}...),
		"33 elements":      append(make([]float32, 32), 7),
		"negative values":  {-1, 0, -2.5, 0, -1e-30},
		"subnormals":       {math.Float32frombits(1), 0, math.Float32frombits(0x007FFFFF)},
		"inf and nan bits": {float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()), 0},
	}
	for _, c := range allCodecs(t) {
		for name, src := range cases {
			t.Run(c.Algorithm().String()+"/"+name, func(t *testing.T) {
				roundTrip(t, c, src)
			})
		}
	}
}

// Note: negative zero has non-zero bits but compares == 0, so sparsity-based
// codecs treat it as a zero and canonicalise it to +0. That is acceptable on
// the swap path only if it round-trips *numerically*; verify that exactly.
func TestNegativeZeroNumericRoundTrip(t *testing.T) {
	src := []float32{math.Float32frombits(0x80000000), 5}
	for _, c := range allCodecs(t) {
		blob := c.Encode(src)
		got, err := c.Decode(blob)
		if err != nil {
			t.Fatalf("%s: %v", c.Algorithm(), err)
		}
		if got[0] != 0 || got[1] != 5 {
			t.Fatalf("%s: numeric round-trip failed: %v", c.Algorithm(), got)
		}
	}
	// LZ4 works on raw bytes and must preserve even the −0 bit pattern.
	got, err := MustNew(LZ4).Decode(MustNew(LZ4).Encode(src))
	if err != nil || math.Float32bits(got[0]) != 0x80000000 {
		t.Fatalf("LZ4 lost the -0 bit pattern: %v %v", got, err)
	}
}

func TestRoundTripSyntheticTensors(t *testing.T) {
	gen := tensor.NewGenerator(11)
	for _, c := range allCodecs(t) {
		for _, s := range []float64{0, 0.2, 0.5, 0.8, 0.95, 1} {
			tn := gen.Uniform(10000, s)
			roundTrip(t, c, tn.Data)
			rn := gen.Runs(10000, s, 32)
			roundTrip(t, c, rn.Data)
		}
	}
}

func TestRoundTripQuickProperty(t *testing.T) {
	gen := tensor.NewGenerator(13)
	for _, c := range allCodecs(t) {
		c := c
		f := func(n uint16, sparsityByte uint8) bool {
			size := int(n%4096) + 1
			s := float64(sparsityByte) / 255
			tn := gen.Uniform(size, s)
			blob := c.Encode(tn.Data)
			got, err := c.Decode(blob)
			if err != nil || len(got) != len(tn.Data) {
				return false
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(tn.Data[i]) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", c.Algorithm(), err)
		}
	}
}

func TestDecodeRejectsWrongCodec(t *testing.T) {
	blob := MustNew(ZVC).Encode([]float32{1, 0, 2})
	if _, err := MustNew(RLE).Decode(blob); err == nil {
		t.Fatal("RLE codec decoded a ZVC blob")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	for _, c := range allCodecs(t) {
		blob := c.Encode([]float32{1, 0, 2, 0, 0, 3, 4, 0, 5})
		for cut := 0; cut < len(blob); cut++ {
			if _, err := c.Decode(blob[:cut]); err == nil {
				t.Fatalf("%s accepted blob truncated to %d/%d bytes",
					c.Algorithm(), cut, len(blob))
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	for _, c := range allCodecs(t) {
		if c.Algorithm() == LZ4 {
			// LZ4's final literal run absorbs a suffix check differently;
			// covered by its own corrupt-stream tests.
			continue
		}
		blob := c.Encode([]float32{1, 0, 2})
		blob = append(blob, 0xAB)
		if _, err := c.Decode(blob); err == nil {
			t.Fatalf("%s accepted blob with trailing garbage", c.Algorithm())
		}
	}
}

func TestBlobAlgorithmDispatch(t *testing.T) {
	src := []float32{0, 1, 0, 0, 2}
	for _, c := range allCodecs(t) {
		blob := c.Encode(src)
		a, err := BlobAlgorithm(blob)
		if err != nil || a != c.Algorithm() {
			t.Fatalf("BlobAlgorithm = %v, %v; want %v", a, err, c.Algorithm())
		}
		got, err := Decode(blob)
		if err != nil || len(got) != len(src) {
			t.Fatalf("generic Decode failed for %s: %v", c.Algorithm(), err)
		}
	}
	if _, err := BlobAlgorithm(nil); err == nil {
		t.Fatal("BlobAlgorithm(nil) should fail")
	}
	if _, err := BlobAlgorithm([]byte{99}); err == nil {
		t.Fatal("BlobAlgorithm of unknown byte should fail")
	}
	if _, err := Decode([]byte{99, 0, 0}); err == nil {
		t.Fatal("Decode of unknown algorithm should fail")
	}
}

func TestZVCCompressionRatioAtSparsity(t *testing.T) {
	gen := tensor.NewGenerator(17)
	tn := gen.Uniform(100000, 0.5)
	blob := MustNew(ZVC).Encode(tn.Data)
	ratio := Ratio(blob, tn.Len())
	// (1−0.5) + 1/32 ≈ 0.531.
	if math.Abs(ratio-0.531) > 0.02 {
		t.Fatalf("ZVC ratio at 50%% sparsity = %v, want ≈0.531", ratio)
	}
}

func TestZVCIndexOverheadVersusCSR(t *testing.T) {
	// Paper, Section IV-E: at 50 % sparsity ZVC's index overhead is ≈3 %
	// of the original size versus ≈50 % for CSR.
	gen := tensor.NewGenerator(19)
	tn := gen.Uniform(100000, 0.5)
	orig := float64(tn.SizeBytes())
	payload := 0.5 * orig // non-zero values
	zvcOverhead := (float64(len(MustNew(ZVC).Encode(tn.Data))) - payload) / orig
	csrOverhead := (float64(len(MustNew(CSR).Encode(tn.Data))) - payload) / orig
	if zvcOverhead > 0.05 {
		t.Errorf("ZVC index overhead = %.3f, want ≈0.03", zvcOverhead)
	}
	if csrOverhead < 0.45 || csrOverhead > 0.56 {
		t.Errorf("CSR index overhead = %.3f, want ≈0.50", csrOverhead)
	}
}

func TestRLEExpandsAdversarialInput(t *testing.T) {
	// Alternating single zeros: every zero costs a 4-byte token; RLE must
	// report a ratio > 1 (the paper's caveat about RLE expansion).
	src := make([]float32, 10000)
	for i := range src {
		if i%2 == 1 {
			src[i] = float32(i)
		}
	}
	blob := MustNew(RLE).Encode(src)
	if r := Ratio(blob, len(src)); r <= 1 {
		t.Fatalf("RLE ratio on alternating data = %v, want > 1", r)
	}
	roundTrip(t, MustNew(RLE), src)
}

func TestRLELongRunsSplit(t *testing.T) {
	// A zero run longer than 65535 must split into continuation tokens.
	src := make([]float32, 200000)
	src[0] = 1
	src[len(src)-1] = 2
	roundTrip(t, MustNew(RLE), src)
	// Long literal run (no zeros) likewise.
	lit := make([]float32, 70000)
	for i := range lit {
		lit[i] = float32(i + 1)
	}
	roundTrip(t, MustNew(RLE), lit)
}

func TestRLERunStructuredBeatsUniform(t *testing.T) {
	gen := tensor.NewGenerator(23)
	uniform := gen.Uniform(100000, 0.6)
	runs := gen.Runs(100000, 0.6, 64)
	rU := Ratio(MustNew(RLE).Encode(uniform.Data), uniform.Len())
	rR := Ratio(MustNew(RLE).Encode(runs.Data), runs.Len())
	if rR >= rU {
		t.Fatalf("RLE run-structured ratio %v not better than uniform %v", rR, rU)
	}
}

func TestLZ4CompressesRepetitiveData(t *testing.T) {
	src := make([]float32, 10000)
	for i := range src {
		src[i] = float32(i % 4)
	}
	blob := MustNew(LZ4).Encode(src)
	if r := Ratio(blob, len(src)); r > 0.1 {
		t.Fatalf("LZ4 ratio on periodic data = %v, want < 0.1", r)
	}
	roundTrip(t, MustNew(LZ4), src)
}

func TestLZ4LongLiteralAndMatchLengths(t *testing.T) {
	gen := tensor.NewGenerator(29)
	// >15 literals then a long zero match then >15 literals exercises both
	// nibble-extension paths.
	src := append([]float32{}, gen.Uniform(500, 0).Data...)
	src = append(src, make([]float32, 5000)...)
	src = append(src, gen.Uniform(500, 0).Data...)
	roundTrip(t, MustNew(LZ4), src)
}

func TestLZ4RejectsCorruptStreams(t *testing.T) {
	c := MustNew(LZ4)
	blob := c.Encode(make([]float32, 1000)) // highly compressible
	for cut := headerSize; cut < len(blob); cut++ {
		if _, err := c.Decode(blob[:cut]); err == nil {
			t.Fatalf("LZ4 accepted truncation at %d/%d", cut, len(blob))
		}
	}
	// Corrupt the offset of the first match to zero.
	bad := append([]byte(nil), blob...)
	// Find a plausible offset location: first token at headerSize.
	// Rather than hand-decoding, flip bytes across the payload and require
	// either an error or a different-but-valid tensor, never a panic.
	for i := headerSize; i < len(bad); i++ {
		orig := bad[i]
		bad[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LZ4 Decode panicked on corrupt byte %d: %v", i, r)
				}
			}()
			_, _ = c.Decode(bad)
		}()
		bad[i] = orig
	}
}

func TestCSRRejectsCorruptRowPointers(t *testing.T) {
	c := MustNew(CSR)
	blob := c.Encode([]float32{1, 0, 2, 0, 3})
	// Row pointer words start at headerSize; make them non-monotonic.
	bad := append([]byte(nil), blob...)
	bad[headerSize] = 0xFF
	if _, err := c.Decode(bad); err == nil {
		t.Fatal("CSR accepted corrupt row pointers")
	}
}

func TestZVCRejectsTailBitsBeyondLength(t *testing.T) {
	c := MustNew(ZVC)
	blob := c.Encode([]float32{1, 2, 3}) // one group of 3; bits 3..31 clear
	bad := append([]byte(nil), blob...)
	// Set a bitmap bit beyond the tail (bit 31 of the only group).
	bad[headerSize+3] |= 0x80
	if _, err := c.Decode(bad); err == nil {
		t.Fatal("ZVC accepted bitmap bits beyond tensor length")
	}
}

func TestRatioHelper(t *testing.T) {
	if got := Ratio(make([]byte, 50), 25); got != 0.5 {
		t.Fatalf("Ratio = %v, want 0.5", got)
	}
	if got := Ratio(nil, 0); got != 1 {
		t.Fatalf("Ratio with 0 elements = %v, want 1", got)
	}
}

func TestRLEFavoursChannelStructuredSparsity(t *testing.T) {
	// Whole-channel zeros (structured sparsity) are RLE's best case: long
	// runs collapse to single tokens, beating its uniform-sparsity ratio
	// and approaching ZVC.
	gen := tensor.NewGenerator(51)
	structured := gen.ChannelSparse(128000, 128, 0.5)
	uniform := gen.Uniform(128000, structured.Sparsity())
	rle := MustNew(RLE)
	rStructured := Ratio(rle.Encode(structured.Data), structured.Len())
	rUniform := Ratio(rle.Encode(uniform.Data), uniform.Len())
	if rStructured >= rUniform {
		t.Fatalf("structured %v not better than uniform %v", rStructured, rUniform)
	}
	zvc := Ratio(MustNew(ZVC).Encode(structured.Data), structured.Len())
	if rStructured > zvc+0.05 {
		t.Fatalf("structured RLE %v should approach ZVC %v", rStructured, zvc)
	}
}
