package compress

// Analytic compressed-size models for tensors with uniformly scattered
// zeros, used by the swapping simulator and execution advisor to estimate
// post-compression transfer sizes without materialising multi-GB tensors.
// ratio_test.go validates each model against the real codec on synthetic
// tensors.
//
// All models return the expected ratio compressed/original in (0, +inf);
// values above 1 mean the codec expands the data (the paper's RLE caveat).

// EstimateRatio predicts compressed bytes / original bytes for a tensor
// with the given zero fraction under the given algorithm, assuming the
// uniformly-scattered-zero layout of ReLU/MAX activations. sparsity is
// clamped to [0, 1].
func EstimateRatio(a Algorithm, sparsity float64) float64 {
	s := sparsity
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	switch a {
	case ZVC:
		// Non-zero payload + 1 bitmap bit per element (1/32 of a float).
		return (1 - s) + 1.0/32
	case CSR:
		// 4-byte value + 4-byte column index per non-zero, plus row
		// pointers every csrRowWidth elements.
		return 2*(1-s) + 1.0/csrRowWidth
	case RLE:
		// Each maximal zero run costs one 4-byte token that also carries
		// the following literal run; for i.i.d. zeros the expected number
		// of zero runs is n·s·(1−s), giving ratio (1−s) + s(1−s) = 1−s².
		return 1 - s*s
	case LZ4:
		// Literals (non-zero floats, essentially incompressible) dominate;
		// zero runs become matches costing ~3 bytes per run plus length
		// continuation bytes (~4/255 per zero element). Calibrated against
		// the real codec in ratio_test.go.
		return (1-s)*1.0 + 0.75*s*(1-s) + 0.016*s
	case Huffman:
		// Entropy of the byte stream: the exponent byte of activation
		// floats is highly redundant even at zero sparsity, and zeros
		// shrink to one bit per byte. Quadratic fit to measured ratios
		// (huffman_test.go validates it).
		return 0.895 - 0.534*s - 0.236*s*s
	default:
		return 1
	}
}

// EstimateCompressedBytes predicts the compressed size in bytes of a tensor
// of originalBytes at the given sparsity.
func EstimateCompressedBytes(a Algorithm, originalBytes int64, sparsity float64) int64 {
	return int64(float64(originalBytes) * EstimateRatio(a, sparsity))
}

// BestRatioAlgorithm returns the algorithm with the smallest estimated
// ratio at the given sparsity, over the full extended codec set — Huffman
// is the only codec that beats 1.0 on dense tensors, so excluding it (as
// an earlier version did by slicing the base set) froze dense profiles out
// of compression entirely. Ties break in favour of the cheaper codec: the
// strict `<` keeps the earlier entry, and ExtendedAlgorithms() is ordered
// by ascending modeled kernel time.
func BestRatioAlgorithm(sparsity float64) Algorithm {
	algs := ExtendedAlgorithms()
	best := algs[0]
	bestR := EstimateRatio(best, sparsity)
	for _, a := range algs[1:] {
		if r := EstimateRatio(a, sparsity); r < bestR {
			best, bestR = a, r
		}
	}
	return best
}
