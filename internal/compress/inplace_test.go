package compress

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"testing"

	"cswap/internal/tensor"
)

// allExtendedCodecs returns a codec per extended algorithm (the paper's
// four plus Huffman).
func allExtendedCodecs(t *testing.T) []Codec {
	t.Helper()
	var cs []Codec
	for _, a := range ExtendedAlgorithms() {
		c, err := New(a)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

// sparsityLadder spans the paper's evaluated activation sparsity range.
var sparsityLadder = []float64{0.2, 0.3, 0.5, 0.7, 0.8, 0.9}

// dirtyFloats returns an n-element buffer pre-filled with NaN garbage, to
// prove DecodeInto overwrites every element of a recycled destination.
func dirtyFloats(n int) []float32 {
	d := make([]float32, n)
	for i := range d {
		d[i] = float32(math.NaN())
	}
	return d
}

// TestAppendEncodeParityWithEncode pins the in-place contract to the legacy
// one: for every algorithm and sparsity, AppendEncode produces exactly the
// bytes Encode produces — both appended to nil and appended after an
// existing prefix, which must survive untouched.
func TestAppendEncodeParityWithEncode(t *testing.T) {
	gen := tensor.NewGenerator(101)
	prefix := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	for _, c := range allExtendedCodecs(t) {
		for _, s := range sparsityLadder {
			for _, src := range [][]float32{
				gen.Uniform(4096, s).Data,
				gen.Runs(4096, s, 32).Data,
				nil,
				{0}, {1.5},
			} {
				want := c.Encode(src)
				if got := c.AppendEncode(nil, src); !bytes.Equal(got, want) {
					t.Fatalf("%s sparsity %.1f: AppendEncode(nil) differs from Encode", c.Algorithm(), s)
				}
				got := c.AppendEncode(append([]byte(nil), prefix...), src)
				if !bytes.Equal(got[:len(prefix)], prefix) {
					t.Fatalf("%s: AppendEncode clobbered the existing prefix", c.Algorithm())
				}
				if !bytes.Equal(got[len(prefix):], want) {
					t.Fatalf("%s sparsity %.1f: AppendEncode after prefix differs from Encode", c.Algorithm(), s)
				}
			}
		}
	}
}

// TestDecodeIntoParityWithDecode pins DecodeInto against Decode across the
// sparsity ladder, decoding into a dirty recycled buffer: every element must
// come out bit-identical to the legacy path.
func TestDecodeIntoParityWithDecode(t *testing.T) {
	gen := tensor.NewGenerator(103)
	for _, c := range allExtendedCodecs(t) {
		for _, s := range sparsityLadder {
			src := gen.Uniform(4096, s).Data
			blob := c.Encode(src)
			want, err := c.Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			dst := dirtyFloats(len(src))
			if err := c.DecodeInto(dst, blob); err != nil {
				t.Fatalf("%s DecodeInto: %v", c.Algorithm(), err)
			}
			for i := range want {
				if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
					t.Fatalf("%s sparsity %.1f: DecodeInto[%d] = %x, Decode = %x",
						c.Algorithm(), s, i, math.Float32bits(dst[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestDecodeIntoRejectsWrongDstSize pins the structural-misuse contract: a
// destination of the wrong length fails with ErrDstSize, which is not
// recoverable (a retry cannot fix a caller bug).
func TestDecodeIntoRejectsWrongDstSize(t *testing.T) {
	src := []float32{1, 0, 2, 0, 3}
	for _, c := range allExtendedCodecs(t) {
		blob := c.Encode(src)
		for _, bad := range []int{0, len(src) - 1, len(src) + 1} {
			err := c.DecodeInto(make([]float32, bad), blob)
			if !errors.Is(err, ErrDstSize) {
				t.Fatalf("%s dst len %d: err = %v, want ErrDstSize", c.Algorithm(), bad, err)
			}
			if Recoverable(err) {
				t.Fatalf("%s: ErrDstSize must not be Recoverable", c.Algorithm())
			}
		}
	}
}

// TestMaxEncodedLenBoundsActualSize is the property the zero-copy encode
// path depends on: no encoding, at any sparsity (including fully dense and
// adversarial alternating data), exceeds the codec's arithmetic bound.
func TestMaxEncodedLenBoundsActualSize(t *testing.T) {
	gen := tensor.NewGenerator(107)
	inputs := [][]float32{nil, {0}, {1}, dirtyFloats(33)}
	for _, s := range []float64{0, 0.2, 0.5, 0.9, 1} {
		inputs = append(inputs, gen.Uniform(5000, s).Data, gen.Runs(5000, s, 16).Data)
	}
	alternating := make([]float32, 4096)
	for i := range alternating {
		if i%2 == 0 {
			alternating[i] = float32(i)
		}
	}
	inputs = append(inputs, alternating)
	for _, c := range allExtendedCodecs(t) {
		for _, src := range inputs {
			if got, bound := len(c.Encode(src)), c.MaxEncodedLen(len(src)); got > bound {
				t.Fatalf("%s: encoded %d elements to %d bytes, MaxEncodedLen says %d",
					c.Algorithm(), len(src), got, bound)
			}
		}
	}
}

// TestAppendParallelEncodeParity pins the zero-copy container path to the
// legacy one byte-for-byte, and MaxParallelEncodedLen as a true bound.
func TestAppendParallelEncodeParity(t *testing.T) {
	gen := tensor.NewGenerator(109)
	prefix := []byte{1, 2, 3}
	for _, alg := range ExtendedAlgorithms() {
		for _, launch := range []Launch{{1, 64}, {4, 64}, {16, 128}, {4096, 128}} {
			src := gen.Uniform(10000, 0.6).Data
			want, err := ParallelEncode(alg, src, launch)
			if err != nil {
				t.Fatal(err)
			}
			bound, err := MaxParallelEncodedLen(alg, len(src), launch)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) > bound {
				t.Fatalf("%s %v: container is %d bytes, MaxParallelEncodedLen says %d",
					alg, launch, len(want), bound)
			}
			got, err := AppendParallelEncode(append([]byte(nil), prefix...), alg, src, launch)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:len(prefix)], prefix) || !bytes.Equal(got[len(prefix):], want) {
				t.Fatalf("%s %v: AppendParallelEncode differs from ParallelEncode", alg, launch)
			}

			// And the scatter path reads it back bit-exactly into a dirty
			// destination.
			dst := dirtyFloats(len(src))
			if err := ParallelDecodeInto(dst, want, launch); err != nil {
				t.Fatal(err)
			}
			for i := range src {
				if math.Float32bits(dst[i]) != math.Float32bits(src[i]) {
					t.Fatalf("%s %v: ParallelDecodeInto[%d] mismatch", alg, launch, i)
				}
			}
		}
	}
}

// TestParallelDecodeIntoRejectsWrongDstSize mirrors the per-codec contract
// at the container level.
func TestParallelDecodeIntoRejectsWrongDstSize(t *testing.T) {
	src := make([]float32, 100)
	blob, err := ParallelEncode(ZVC, src, Launch{2, 64})
	if err != nil {
		t.Fatal(err)
	}
	err = ParallelDecodeInto(make([]float32, 99), blob, Launch{2, 64})
	if !errors.Is(err, ErrDstSize) {
		t.Fatalf("err = %v, want ErrDstSize", err)
	}
}

// TestChunkBoundsSpanCounts pins the 32-alignment shape at the edges: span
// counts and boundaries for tensors around one bitmap word, and a grid far
// larger than the number of alignable spans.
func TestChunkBoundsSpanCounts(t *testing.T) {
	cases := []struct {
		n, grid int
		want    []span
	}{
		{0, 4, []span{{0, 0}}},                         // empty tensor: one empty span
		{31, 4, []span{{0, 31}}},                       // under one word: one span
		{32, 4, []span{{0, 32}}},                       // exactly one word
		{33, 4, []span{{0, 32}, {32, 33}}},             // one word + remainder
		{33, 4096, []span{{0, 32}, {32, 33}}},          // grid >> n/32: capped at alignable spans
		{100, 4096, []span{{0, 32}, {32, 64}, {64, 96}, {96, 100}}},
		{128, 2, []span{{0, 64}, {64, 128}}},
	}
	for _, tc := range cases {
		got := chunkBounds(tc.n, tc.grid)
		if len(got) != len(tc.want) {
			t.Fatalf("chunkBounds(%d,%d) = %v spans, want %v", tc.n, tc.grid, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("chunkBounds(%d,%d)[%d] = %v, want %v", tc.n, tc.grid, i, got[i], tc.want[i])
			}
			if got[i].lo%32 != 0 {
				t.Fatalf("chunkBounds(%d,%d)[%d] starts at unaligned %d", tc.n, tc.grid, i, got[i].lo)
			}
		}
	}
}

// TestWorkerCountBlockScalingCapped pins the documented modeling intent:
// the Block/64 occupancy factor scales concurrency only below the
// GOMAXPROCS cap, so at the cap the two block sizes ask for identical host
// parallelism — the geometry changes the bytes, never the thread count.
func TestWorkerCountBlockScalingCapped(t *testing.T) {
	maxW := runtime.GOMAXPROCS(0)
	jobs := 4 * maxW // enough chunks that the jobs clamp is not the binding one
	w64 := workerCount(Launch{Grid: jobs, Block: 64}, jobs)
	w128 := workerCount(Launch{Grid: jobs, Block: 128}, jobs)
	if w64 != maxW {
		t.Fatalf("workerCount(Block=64) = %d, want GOMAXPROCS cap %d", w64, maxW)
	}
	if w128 != w64 {
		t.Fatalf("workerCount(Block=128) = %d, want %d (Block=64) at the cap", w128, w64)
	}
	// Below the cap the jobs clamp binds identically for both blocks.
	if got := workerCount(Launch{Grid: 1, Block: 128}, 1); got != 1 {
		t.Fatalf("workerCount(1 job) = %d, want 1", got)
	}
}
