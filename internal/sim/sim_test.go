package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("event order = %v", order)
	}
	if e.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3", e.Processed())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested times = %v", times)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestResourceSerialises(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "copy")
	var intervals [][2]float64
	record := func(s, en float64) { intervals = append(intervals, [2]float64{s, en}) }
	r.Submit(2, record)
	r.Submit(3, record)
	r.Submit(1, record)
	e.Run()
	want := [][2]float64{{0, 2}, {2, 5}, {5, 6}}
	if len(intervals) != len(want) {
		t.Fatalf("got %d intervals", len(intervals))
	}
	for i := range want {
		if intervals[i] != want[i] {
			t.Fatalf("interval %d = %v, want %v", i, intervals[i], want[i])
		}
	}
	if r.BusyTotal() != 6 {
		t.Fatalf("BusyTotal = %v, want 6", r.BusyTotal())
	}
	if r.Jobs() != 3 {
		t.Fatalf("Jobs = %d, want 3", r.Jobs())
	}
}

func TestResourceIdleGapThenWork(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "compute")
	var start2 float64
	e.Schedule(5, func() {
		r.Submit(1, func(s, _ float64) { start2 = s })
	})
	r.Submit(2, nil) // occupies [0,2]
	e.Run()
	if start2 != 5 {
		t.Fatalf("job after idle gap started at %v, want 5", start2)
	}
	if got := r.Utilization(10); got != 0.3 {
		t.Fatalf("Utilization = %v, want 0.3", got)
	}
}

func TestResourceSubmitWhileBusyQueues(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	var second float64
	e.Schedule(1, func() {
		// Resource is busy until t=4; this job must start then.
		r.Submit(2, func(s, _ float64) { second = s })
	})
	r.Submit(4, nil)
	e.Run()
	if second != 4 {
		t.Fatalf("queued job started at %v, want 4", second)
	}
}

func TestResourceRejectsInvalidDuration(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative duration")
		}
	}()
	r.Submit(-1, nil)
}

func TestUtilizationBounds(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x")
	r.Submit(10, nil)
	e.Run()
	if got := r.Utilization(5); got != 1 {
		t.Fatalf("Utilization clamped = %v, want 1", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
}

func TestBarrierFiresWhenAllDone(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e)
	b.Add()
	b.Add()
	fired := -1.0
	e.Schedule(1, func() { b.Done() })
	e.Schedule(4, func() { b.Done() })
	b.Arm(func() { fired = e.Now() })
	e.Run()
	if fired != 4 {
		t.Fatalf("barrier fired at %v, want 4", fired)
	}
}

func TestBarrierFiresImmediatelyWhenNoDeps(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e)
	fired := false
	b.Arm(func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("barrier with no deps never fired")
	}
}

func TestBarrierDoneWithoutAddPanics(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Done()
}

func TestBarrierDoubleArmPanics(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e)
	b.Arm(func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Arm(func() {})
}

func TestPipelineOverlapScenario(t *testing.T) {
	// Model: compute layers of 2 s each; each layer's offload (3 s) runs
	// on the copy engine concurrently; layer n+1 additionally waits for
	// offload n (vDNN-style). Expected: F1 [0,2], O1 [0,3], F2 starts at 3
	// (waits on O1), O2 [3,6], F3 starts 6, total = 8.
	e := NewEngine()
	compute := NewResource(e, "compute")
	copyEng := NewResource(e, "d2h")

	var done float64
	var runLayer func(n int, ready float64)
	runLayer = func(n int, ready float64) {
		if n > 3 {
			done = ready
			return
		}
		b := NewBarrier(e)
		b.Add() // compute
		compute.Submit(2, func(_, _ float64) { b.Done() })
		if n < 3 {
			b.Add() // offload gating the next layer
			copyEng.Submit(3, func(_, _ float64) { b.Done() })
		}
		b.Arm(func() { runLayer(n+1, e.Now()) })
	}
	runLayer(1, 0)
	e.Run()
	if done != 8 {
		t.Fatalf("pipeline finished at %v, want 8", done)
	}
}

func TestEngineStressRandomWorkload(t *testing.T) {
	// Thousands of interleaved jobs across several resources: time must
	// never regress, every callback must fire, and per-resource intervals
	// must be disjoint and ordered.
	e := NewEngine()
	res := []*Resource{NewResource(e, "a"), NewResource(e, "b"), NewResource(e, "c")}
	state := uint64(12345)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 11) % n
	}
	fired := 0
	lastEnd := make([]float64, len(res))
	const jobs = 5000
	for i := 0; i < jobs; i++ {
		r := int(next(uint64(len(res))))
		dur := float64(next(1000)) / 1e4
		delay := float64(next(100)) / 1e3
		r2 := r
		e.Schedule(delay, func() {
			res[r2].Submit(dur, func(start, end float64) {
				fired++
				if start < lastEnd[r2]-1e-12 {
					t.Errorf("resource %d interval overlap: start %v < last end %v", r2, start, lastEnd[r2])
				}
				lastEnd[r2] = end
			})
		})
	}
	final := e.Run()
	if fired != jobs {
		t.Fatalf("fired %d of %d callbacks", fired, jobs)
	}
	for i, r := range res {
		if lastEnd[i] > final {
			t.Fatalf("resource %d finished after the engine: %v > %v", i, lastEnd[i], final)
		}
		if r.Jobs() == 0 {
			t.Fatalf("resource %d never used", i)
		}
	}
}
