package sim

import "testing"

func TestGenKVTraceDeterministic(t *testing.T) {
	a := GenKVTrace(DefaultKVTrace())
	b := GenKVTrace(DefaultKVTrace())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Out) != len(b[i].Out) || len(a[i].In) != len(b[i].In) {
			t.Fatalf("step %d differs between identical configs", i)
		}
		for j := range a[i].Out {
			if a[i].Out[j] != b[i].Out[j] {
				t.Fatalf("step %d out[%d]: %d vs %d", i, j, a[i].Out[j], b[i].Out[j])
			}
		}
	}
}

func TestCoalesceIDs(t *testing.T) {
	cases := []struct {
		ids         []int
		runs, total int
	}{
		{nil, 0, 0},
		{[]int{4}, 1, 1},
		{[]int{4, 5, 6}, 1, 3},
		{[]int{6, 4, 5, 5}, 1, 3},
		{[]int{0, 2, 3, 9}, 3, 4},
	}
	for _, c := range cases {
		runs, total := CoalesceIDs(c.ids)
		if runs != c.runs || total != c.total {
			t.Fatalf("CoalesceIDs(%v) = %d runs/%d blocks, want %d/%d",
				c.ids, runs, total, c.runs, c.total)
		}
	}
}

// TestKVTraceReplayable pins the ordering contract: replaying every step
// as Out-then-In against a strict residency state machine (swap-out of a
// swapped block is illegal, swap-in of a resident block is a no-op) must
// never hit an illegal transition — the property that lets a client
// replay the trace against the executor's block-pool state machine.
func TestKVTraceReplayable(t *testing.T) {
	for _, cfg := range []KVTraceConfig{
		DefaultKVTrace(),
		{Sequences: 2, BlocksPerSeq: 4, Steps: 200, EvictEvery: 1, ScatterPerStep: 8, Seed: 3},
		{Sequences: 16, BlocksPerSeq: 8, Steps: 100, EvictEvery: 2, ScatterPerStep: 5, Seed: 9},
	} {
		resident := map[int]bool{}
		for id := 0; id < cfg.Sequences*cfg.BlocksPerSeq; id++ {
			resident[id] = true
		}
		for s, st := range GenKVTrace(cfg) {
			for _, id := range st.Out {
				if !resident[id] {
					t.Fatalf("cfg %+v step %d: swap-out of non-resident block %d", cfg, s, id)
				}
				resident[id] = false
			}
			for _, id := range st.In {
				resident[id] = true
			}
		}
	}
}

// TestEvictionRegionsCoalesce pins the workload shape the layout exists
// for: a sequence's eviction is one sequential region, so its swap-out
// coalesces to a single run.
func TestEvictionRegionsCoalesce(t *testing.T) {
	cfg := DefaultKVTrace()
	cfg.ScatterPerStep = 0 // isolate eviction traffic
	for i, st := range GenKVTrace(cfg) {
		if len(st.Out) == 0 {
			continue
		}
		if runs, blocks := CoalesceIDs(st.Out); runs != 1 || blocks != cfg.BlocksPerSeq {
			t.Fatalf("step %d eviction coalesced to %d runs / %d blocks, want 1 / %d",
				i, runs, blocks, cfg.BlocksPerSeq)
		}
	}
}

// TestCoalescingWinsOnServingTrace is the scorer-level version of the
// batching acceptance criterion: on the default serving trace, with a
// control cost comparable to one small block's transfer time, coalescing
// must cut total link time by a wide margin.
func TestCoalescingWinsOnServingTrace(t *testing.T) {
	trace := GenKVTrace(DefaultKVTrace())
	lc := LinkCost{
		PerOpSeconds: 50e-6,  // ~HTTP/admission/launch overhead per op
		BytesPerSec:  12e9,   // PCIe-ish
		BlockBytes:   16 << 10,
	}
	sc := ScoreKVTrace(trace, lc)
	if sc.Blocks == 0 || sc.Ops == 0 {
		t.Fatalf("empty score: %+v", sc)
	}
	if sc.Ops >= sc.Blocks {
		t.Fatalf("coalescing merged nothing: %d ops for %d blocks", sc.Ops, sc.Blocks)
	}
	if sp := sc.Speedup(); sp < 2 {
		t.Fatalf("coalescing speedup = %.2fx, want >= 2x on the serving trace", sp)
	}
	// Byte volume is identical both ways; only control cost differs.
	bytesSec := float64(sc.Blocks*lc.BlockBytes) / lc.BytesPerSec
	wantPerBlock := float64(sc.Blocks)*lc.PerOpSeconds + bytesSec
	if diff := sc.PerBlockSeconds - wantPerBlock; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("per-block cost %.9f, want %.9f", sc.PerBlockSeconds, wantPerBlock)
	}
}
