package sim

// SLO admission model: a discrete-event replay of the server's admission
// window under two policies — FIFO (the plain window: first come, first
// granted) and scheduled (internal/sched's strict lane priority with
// earliest-deadline-first inside a lane, expired waiters dropped). The
// workload shape is the serving story from DESIGN.md §16: a saturating
// stream of speculative prefetch work, with small bursts of deadline-bound
// critical swap-ins riding on top. Under FIFO the criticals queue behind
// the speculative backlog and blow their deadlines; under the scheduler
// they jump the queue and pay at most the residual of whatever is already
// in flight (admission is non-preemptive — the model matches the real
// scheduler, which sheds only at run boundaries).
//
// Everything is deterministic: the trace generator is pure arithmetic and
// the engine breaks ties by schedule order, so the scheduled-vs-FIFO
// attainment gap is a pinnable number, not a statistical tendency.

import "sort"

// SLOLane mirrors sched.Lane for the model (the simulator carries no
// dependency on the real scheduler, same as CoalesceIDs restates the
// executor's coalescing rule).
type SLOLane uint8

const (
	SLOCritical SLOLane = iota
	SLONormal
	SLOSpeculative
	sloLanes = 3
)

// SLORequest is one admission request in the model: it arrives, waits for
// a slot under the policy, holds the slot for Service seconds, and — when
// Deadline > 0 — attains its SLO only if it completes by that absolute
// time.
type SLORequest struct {
	Arrival  float64
	Service  float64
	Deadline float64 // absolute completion deadline; 0 = none
	Lane     SLOLane
}

// SLOPolicy selects the admission order.
type SLOPolicy int

const (
	// PolicyFIFO grants slots strictly in arrival order, lane-blind — the
	// plain admission window with a queue bolted on.
	PolicyFIFO SLOPolicy = iota
	// PolicySched grants the highest-priority lane first, EDF within a
	// lane, and drops queued requests whose deadline has already passed
	// instead of wasting a slot on work whose SLO is lost.
	PolicySched
)

// SLOReport aggregates one replay.
type SLOReport struct {
	// Done counts completed requests per lane; Dropped counts requests the
	// scheduled policy expired in queue (FIFO never drops).
	Done, Dropped [sloLanes]int
	// Deadlined counts requests that carried a deadline; Attained counts
	// those that completed by it.
	Deadlined, Attained [sloLanes]int
	// Makespan is the virtual time at which the last request completed.
	Makespan float64
}

// Attainment is the fraction of lane l's deadlined requests that met
// their deadline (1 when the lane carried none).
func (r SLOReport) Attainment(l SLOLane) float64 {
	if r.Deadlined[l] == 0 {
		return 1
	}
	return float64(r.Attained[l]) / float64(r.Deadlined[l])
}

// RunSLO replays the request trace against `slots` admission slots under
// the policy and reports per-lane SLO attainment.
func RunSLO(reqs []SLORequest, slots int, policy SLOPolicy) SLOReport {
	if slots <= 0 {
		slots = 1
	}
	e := NewEngine()
	var rep SLOReport
	free := slots

	type qitem struct {
		req SLORequest
		seq int
	}
	var queue []qitem
	next := 0 // FIFO head (the slice is append-only; done items advance next)

	// pick removes and returns the next request to grant, or ok=false when
	// nothing grantable is queued. The scheduled policy drops expired
	// waiters here — exactly where the real scheduler answers ErrExpired.
	pick := func() (qitem, bool) {
		if policy == PolicyFIFO {
			if next >= len(queue) {
				return qitem{}, false
			}
			it := queue[next]
			next++
			return it, true
		}
		for {
			best := -1
			for i, it := range queue {
				if best < 0 {
					best = i
					continue
				}
				b := queue[best]
				switch {
				case it.req.Lane != b.req.Lane:
					if it.req.Lane < b.req.Lane {
						best = i
					}
				case (it.req.Deadline > 0) != (b.req.Deadline > 0):
					if it.req.Deadline > 0 {
						best = i
					}
				case it.req.Deadline > 0 && it.req.Deadline != b.req.Deadline:
					if it.req.Deadline < b.req.Deadline {
						best = i
					}
				case it.seq < b.seq:
					best = i
				}
			}
			if best < 0 {
				return qitem{}, false
			}
			it := queue[best]
			queue = append(queue[:best], queue[best+1:]...)
			if it.req.Deadline > 0 && e.Now() >= it.req.Deadline {
				rep.Dropped[it.req.Lane]++
				continue
			}
			return it, true
		}
	}

	var dispatch func()
	dispatch = func() {
		for free > 0 {
			it, ok := pick()
			if !ok {
				return
			}
			free--
			req := it.req
			e.Schedule(req.Service, func() {
				rep.Done[req.Lane]++
				if req.Deadline > 0 && e.Now() <= req.Deadline {
					rep.Attained[req.Lane]++
				}
				if e.Now() > rep.Makespan {
					rep.Makespan = e.Now()
				}
				free++
				dispatch()
			})
		}
	}

	ordered := append([]SLORequest(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })
	for i, req := range ordered {
		if req.Deadline > 0 {
			rep.Deadlined[req.Lane]++
		}
		it := qitem{req: req, seq: i}
		e.Schedule(req.Arrival, func() {
			queue = append(queue, it)
			dispatch()
		})
	}
	e.Run()
	return rep
}

// SLOTraceConfig configures the bursty decode trace. The zero value is
// not usable; see DefaultSLOTrace.
type SLOTraceConfig struct {
	// Steps is the number of decode steps; one step fires every
	// StepPeriod seconds.
	Steps      int
	StepPeriod float64
	// Each step issues SpecPerStep speculative prefetches of SpecService
	// seconds (no deadline) first, then CriticalPerStep critical swap-ins
	// of CriticalService seconds that must complete within CriticalSlack
	// of their arrival.
	SpecPerStep     int
	SpecService     float64
	CriticalPerStep int
	CriticalService float64
	CriticalSlack   float64
}

// DefaultSLOTrace is the pinned scenario: two admission slots' worth of
// capacity fully booked by speculative prefetch (4 x 5 ms per 10 ms
// step), with two 1 ms critical restores per step that must land within
// 8 ms — enough slack to absorb one in-flight speculative residual, not
// enough to sit behind the whole backlog.
func DefaultSLOTrace() SLOTraceConfig {
	return SLOTraceConfig{
		Steps: 32, StepPeriod: 10e-3,
		SpecPerStep: 4, SpecService: 5e-3,
		CriticalPerStep: 2, CriticalService: 1e-3,
		CriticalSlack: 8e-3,
	}
}

// GenSLOTrace expands the config into the deterministic request trace.
// Within a step, speculative work arrives strictly before the criticals —
// the adversarial ordering for a lane-blind window.
func GenSLOTrace(cfg SLOTraceConfig) []SLORequest {
	var reqs []SLORequest
	for s := 0; s < cfg.Steps; s++ {
		t := float64(s) * cfg.StepPeriod
		for i := 0; i < cfg.SpecPerStep; i++ {
			reqs = append(reqs, SLORequest{
				Arrival: t + float64(i)*1e-5,
				Service: cfg.SpecService,
				Lane:    SLOSpeculative,
			})
		}
		for i := 0; i < cfg.CriticalPerStep; i++ {
			arr := t + 1e-4 + float64(i)*1e-5
			reqs = append(reqs, SLORequest{
				Arrival:  arr,
				Service:  cfg.CriticalService,
				Deadline: arr + cfg.CriticalSlack,
				Lane:     SLOCritical,
			})
		}
	}
	return reqs
}
