// Package sim is a minimal discrete-event simulation engine used to model
// the GPU execution timeline: compute stream, PCIe copy engines, and the
// compression stream run as serial FIFO resources over a shared virtual
// clock. The swapping frameworks (internal/swap) build their per-iteration
// timelines on top of it, so overlap and contention between computation,
// (de)compression, and transfers *emerge* from event ordering instead of
// being asserted analytically.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. Time is in seconds. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	now    float64
	seq    int
	queue  eventHeap
	events int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the total number of events executed.
func (e *Engine) Processed() int { return e.events }

// Schedule runs fn at Now()+delay. A negative delay panics: events cannot
// be scheduled in the past.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: invalid delay %v", delay))
	}
	e.seq++
	heap.Push(&e.queue, &event{time: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.time < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.time
		e.events++
		ev.fn()
	}
	return e.now
}

type event struct {
	time float64
	seq  int // FIFO tiebreak for simultaneous events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Resource is a serial FIFO execution engine (a CUDA stream, a DMA copy
// engine). Work submitted to it runs back to back in submission order; a
// job submitted while the resource is busy queues until the in-flight work
// drains.
type Resource struct {
	Name string

	eng       *Engine
	busyUntil float64
	busyTotal float64
	jobs      int
}

// NewResource attaches a named serial resource to the engine.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{Name: name, eng: eng}
}

// Submit enqueues a job of the given duration. done, if non-nil, runs at
// the job's completion time and receives the job's [start, end] interval.
// Submit returns the scheduled completion time.
func (r *Resource) Submit(duration float64, done func(start, end float64)) float64 {
	if duration < 0 || math.IsNaN(duration) {
		panic(fmt.Sprintf("sim: resource %s got invalid duration %v", r.Name, duration))
	}
	start := r.eng.now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end := start + duration
	r.busyUntil = end
	r.busyTotal += duration
	r.jobs++
	if done != nil {
		r.eng.Schedule(end-r.eng.now, func() { done(start, end) })
	}
	return end
}

// BusyUntil returns the time at which currently queued work drains.
func (r *Resource) BusyUntil() float64 { return r.busyUntil }

// Utilization returns the fraction of [0, horizon] the resource was busy.
func (r *Resource) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := r.busyTotal / horizon
	if u > 1 {
		u = 1
	}
	return u
}

// BusyTotal returns the cumulative busy seconds.
func (r *Resource) BusyTotal() float64 { return r.busyTotal }

// Jobs returns the number of jobs submitted.
func (r *Resource) Jobs() int { return r.jobs }

// Barrier tracks a set of dependencies and fires a callback once all of
// them (and the arm call) have completed. It is the join primitive used to
// model stream synchronisation (cudaStreamSynchronize / events).
type Barrier struct {
	eng     *Engine
	pending int
	armed   bool
	fn      func()
}

// NewBarrier creates a barrier on the engine.
func NewBarrier(eng *Engine) *Barrier { return &Barrier{eng: eng} }

// Add registers one outstanding dependency.
func (b *Barrier) Add() { b.pending++ }

// Done resolves one dependency; when the barrier is armed and all
// dependencies resolved, the callback fires immediately (same virtual time).
func (b *Barrier) Done() {
	b.pending--
	if b.pending < 0 {
		panic("sim: barrier Done without Add")
	}
	b.maybeFire()
}

// Arm sets the completion callback; the barrier fires as soon as no
// dependencies remain (possibly immediately).
func (b *Barrier) Arm(fn func()) {
	if b.armed {
		panic("sim: barrier armed twice")
	}
	b.armed = true
	b.fn = fn
	b.maybeFire()
}

func (b *Barrier) maybeFire() {
	if b.armed && b.pending == 0 && b.fn != nil {
		fn := b.fn
		b.fn = nil
		// Schedule at zero delay to keep callback ordering FIFO.
		b.eng.Schedule(0, fn)
	}
}
