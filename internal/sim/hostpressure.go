package sim

// Host-pressure scenario: the service's sharpest failure mode replayed as
// an event timeline. A stream of swap-outs lands in a bounded pinned-host
// pool; once the pool fills, every further swap-out needs space another
// blob is holding. Without a spill tier the caller recovers synchronously
// — the coldest blob is swapped back to the device and freed before the
// swap-out can proceed, and that whole round trip is exposed stall. With a
// tier, cold blobs demote to disk in the background ahead of need (issued
// when the previous swap-out lands, overlapping the next compute step), so
// the swap-out usually finds space waiting and stalls only when the disk
// cannot keep up. Victims leave coldest-first, the idle term of the
// executor's ratio x coldness demotion score.
//
// The scenario exists to put a number on the tentpole's claim: the same
// overflow workload scores materially less exposed stall with the tier
// attached, not because any single demotion is faster than a reclaim (disk
// is slower than the link), but because demotion is asynchronous and hides
// behind compute while reclaim serialises with it.

// HostPressureScenario describes one overflow workload. All bandwidths are
// bytes per second; times are seconds; sizes are bytes.
type HostPressureScenario struct {
	// HostCapacity bounds the pinned-host pool.
	HostCapacity int64
	// LinkBytesPerSec is the swap-link bandwidth (d2h and h2d).
	LinkBytesPerSec float64
	// TierBytesPerSec is the disk-tier bandwidth; 0 runs without a tier.
	TierBytesPerSec float64
	// ComputeStep is the compute time between consecutive swap-outs — the
	// hidden window background demotion can use.
	ComputeStep float64
	// Blobs is the swap-out stream: each entry is one blob's host-resident
	// size (post-codec bytes). Every blob must fit the host pool alone.
	Blobs []int64
}

// HostPressureResult scores one run of the scenario.
type HostPressureResult struct {
	// Makespan is the virtual time at which all work (including trailing
	// transfers and demotions) drains.
	Makespan float64
	// ExposedStall is the total time swap-outs waited on host-pool space —
	// overflow the compute stream had to absorb.
	ExposedStall float64
	// MaxStall is the worst single swap-out's wait.
	MaxStall float64
	// Demotions counts blobs pushed down to the disk tier.
	Demotions int
	// Reclaims counts synchronous swap-back reclaims, the no-tier recovery.
	Reclaims int
	// TierBusy is the disk resource's cumulative busy time.
	TierBusy float64
}

// Run plays the scenario to completion on a fresh engine.
func (s HostPressureScenario) Run() HostPressureResult {
	if s.HostCapacity <= 0 || s.LinkBytesPerSec <= 0 {
		panic("sim: host-pressure scenario needs a host capacity and a link bandwidth")
	}
	for _, b := range s.Blobs {
		if b <= 0 || b > s.HostCapacity {
			panic("sim: host-pressure blob does not fit the host pool")
		}
	}
	eng := NewEngine()
	compute := NewResource(eng, "compute")
	d2h := NewResource(eng, "d2h")
	h2d := NewResource(eng, "h2d")
	var disk *Resource
	if s.TierBytesPerSec > 0 {
		disk = NewResource(eng, "disk")
	}

	var res HostPressureResult
	free := s.HostCapacity
	var resident []int64 // landed blobs, oldest (coldest) first
	var inflight int64   // bytes mid-demotion, credited back on completion

	// At most one swap-out waits for space at a time (the stream is
	// sequential), but credits arrive from demotion completions, so the
	// wait is a tiny queue rather than a direct callback.
	type waiter struct {
		need  int64
		ready func(float64)
	}
	var waiters []waiter
	credit := func(b int64) {
		free += b
		for len(waiters) > 0 && free >= waiters[0].need {
			w := waiters[0]
			waiters = waiters[1:]
			free -= w.need
			w.ready(eng.Now())
		}
	}
	demoteOldest := func() {
		victim := resident[0]
		resident = resident[1:]
		inflight += victim
		res.Demotions++
		disk.Submit(float64(victim)/s.TierBytesPerSec, func(_, _ float64) {
			inflight -= victim
			credit(victim)
		})
	}
	// reclaimOldest is the no-tier recovery: the caller synchronously
	// swaps the coldest blob back over the link and frees it before the
	// refused swap-out can retry — the cost a 507 pushes onto the client.
	var reclaimOldest func(need int64, ready func(float64))
	reclaimOldest = func(need int64, ready func(float64)) {
		victim := resident[0]
		resident = resident[1:]
		res.Reclaims++
		h2d.Submit(float64(victim)/s.LinkBytesPerSec, func(_, _ float64) {
			free += victim
			if free >= need {
				free -= need
				ready(eng.Now())
				return
			}
			reclaimOldest(need, ready)
		})
	}
	secure := func(need int64, ready func(float64)) {
		if free >= need {
			free -= need
			ready(eng.Now())
			return
		}
		if disk == nil {
			reclaimOldest(need, ready)
			return
		}
		for free+inflight < need && len(resident) > 0 {
			demoteOldest()
		}
		waiters = append(waiters, waiter{need: need, ready: ready})
	}
	// topUp keeps headroom for the next blob demoting in the background:
	// issued when the previous blob lands, it overlaps the compute step
	// instead of stalling the swap-out that will need the space.
	topUp := func(next int64) {
		if disk == nil {
			return
		}
		for free+inflight < next && len(resident) > 0 {
			demoteOldest()
		}
	}

	var step func(i int)
	step = func(i int) {
		if i == len(s.Blobs) {
			return
		}
		compute.Submit(s.ComputeStep, func(_, end float64) {
			request := end
			secure(s.Blobs[i], func(ready float64) {
				stall := ready - request
				res.ExposedStall += stall
				if stall > res.MaxStall {
					res.MaxStall = stall
				}
				blob := s.Blobs[i]
				d2h.Submit(float64(blob)/s.LinkBytesPerSec, func(_, _ float64) {
					resident = append(resident, blob)
					if i+1 < len(s.Blobs) {
						topUp(s.Blobs[i+1])
					}
				})
				step(i + 1)
			})
		})
	}
	step(0)
	res.Makespan = eng.Run()
	if disk != nil {
		res.TierBusy = disk.BusyTotal()
	}
	return res
}

// Compare scores the same workload with the configured tier and with the
// tier disabled, the ablation pair the tentpole's acceptance rests on.
func (s HostPressureScenario) Compare() (withTier, withoutTier HostPressureResult) {
	withTier = s.Run()
	ablated := s
	ablated.TierBytesPerSec = 0
	withoutTier = ablated.Run()
	return withTier, withoutTier
}
