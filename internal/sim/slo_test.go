package sim

import "testing"

// TestScheduledBeatsFIFOAttainment pins the tentpole claim on the default
// bursty decode trace: the lane-priority scheduler attains every critical
// deadline while the lane-blind FIFO window attains none, at identical
// total work (same Done counts, same makespan — priority changes who
// waits, not how much runs).
func TestScheduledBeatsFIFOAttainment(t *testing.T) {
	trace := GenSLOTrace(DefaultSLOTrace())
	fifo := RunSLO(trace, 2, PolicyFIFO)
	schd := RunSLO(trace, 2, PolicySched)

	fa, sa := fifo.Attainment(SLOCritical), schd.Attainment(SLOCritical)
	if sa <= fa {
		t.Fatalf("scheduled attainment %.3f not above FIFO %.3f", sa, fa)
	}
	if sa != 1 {
		t.Errorf("scheduled critical attainment = %.3f, want 1.0 (slack covers one residual)", sa)
	}
	if fa != 0 {
		t.Errorf("FIFO critical attainment = %.3f, want 0.0 (criticals behind the whole backlog)", fa)
	}
	for l := SLOLane(0); l < sloLanes; l++ {
		if fifo.Done[l] != schd.Done[l] {
			t.Errorf("lane %d: FIFO completed %d, sched %d — policy must not change total work",
				l, fifo.Done[l], schd.Done[l])
		}
	}
	if fifo.Makespan != schd.Makespan {
		t.Errorf("makespan diverged: FIFO %.4f vs sched %.4f", fifo.Makespan, schd.Makespan)
	}
}

func TestRunSLOEDFWithinLane(t *testing.T) {
	// One slot, blocked until t=10. Three normal requests queue; the
	// tightest deadline must run first, the no-deadline one last.
	reqs := []SLORequest{
		{Arrival: 0, Service: 10, Lane: SLONormal},                // occupies the slot
		{Arrival: 1, Service: 1, Lane: SLONormal},                 // no deadline: runs last
		{Arrival: 2, Service: 1, Deadline: 30, Lane: SLONormal},   // loose
		{Arrival: 3, Service: 1, Deadline: 11.5, Lane: SLONormal}, // tight: must run first
	}
	rep := RunSLO(reqs, 1, PolicySched)
	if rep.Attained[SLONormal] != 2 || rep.Deadlined[SLONormal] != 2 {
		t.Fatalf("EDF order: attained %d of %d deadlined, want 2 of 2",
			rep.Attained[SLONormal], rep.Deadlined[SLONormal])
	}
	// FIFO runs them in arrival order: the tight deadline (third in line,
	// done at t=13) is missed.
	rep = RunSLO(reqs, 1, PolicyFIFO)
	if rep.Attained[SLONormal] != 1 {
		t.Fatalf("FIFO attained %d deadlines, want 1 (tight one missed)", rep.Attained[SLONormal])
	}
}

func TestRunSLODropsExpiredOnlyUnderSched(t *testing.T) {
	reqs := []SLORequest{
		{Arrival: 0, Service: 10, Lane: SLONormal},
		{Arrival: 1, Service: 1, Deadline: 5, Lane: SLOCritical}, // expires at t=5, slot frees at t=10
	}
	schd := RunSLO(reqs, 1, PolicySched)
	if schd.Dropped[SLOCritical] != 1 || schd.Done[SLOCritical] != 0 {
		t.Fatalf("sched: dropped=%d done=%d, want the expired critical dropped unrun",
			schd.Dropped[SLOCritical], schd.Done[SLOCritical])
	}
	fifo := RunSLO(reqs, 1, PolicyFIFO)
	if fifo.Dropped[SLOCritical] != 0 || fifo.Done[SLOCritical] != 1 || fifo.Attained[SLOCritical] != 0 {
		t.Fatalf("fifo: dropped=%d done=%d attained=%d, want it run late, never dropped",
			fifo.Dropped[SLOCritical], fifo.Done[SLOCritical], fifo.Attained[SLOCritical])
	}
}

func TestGenSLOTraceDeterministic(t *testing.T) {
	a, b := GenSLOTrace(DefaultSLOTrace()), GenSLOTrace(DefaultSLOTrace())
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg := DefaultSLOTrace()
	want := cfg.Steps * (cfg.SpecPerStep + cfg.CriticalPerStep)
	if len(a) != want {
		t.Fatalf("trace has %d requests, want %d", len(a), want)
	}
}
