package sim

// KV-cache decode-step traces: a deterministic generator for the block
// access pattern of paged-attention serving, and a link-cost scorer that
// quantifies what contiguous-run coalescing buys on it.
//
// The workload shape follows the paged KV-cache layout: each sequence
// owns a contiguous region of blocks, appended to as it decodes. When
// memory pressure evicts a sequence, its whole region swaps out — a
// sequential ID range, perfectly coalescible — and returns the same way
// when the scheduler resumes it. On top rides a fragmented tail: single
// blocks touched out of order (sampled sequences re-scored, beam
// candidates), which do not coalesce. The scorer prices both with a fixed
// per-operation control cost plus bytes over the link, so the ratio of
// coalesced to per-block cost is exactly the cDMA amortization argument:
// fewer, larger transfers beat many small ones at equal byte volume.

import (
	"math/rand"
)

// KVStep is one decode step's swap traffic: the block IDs leaving the
// device and the block IDs returning. IDs may repeat across steps (the
// same region swaps in and out over time), never within one list. A
// step's Out list issues before its In list — evictions free the device
// memory the restores need — and the generator keeps every step valid
// under that ordering: Out only ever lists resident blocks, In only
// blocks the step (or an earlier one) swapped out.
type KVStep struct {
	Out, In []int
}

// KVTraceConfig configures the generator. The zero value is not usable;
// see DefaultKVTrace.
type KVTraceConfig struct {
	// Sequences is the number of concurrent decode sequences; each owns a
	// contiguous region of BlocksPerSeq block IDs.
	Sequences    int
	BlocksPerSeq int
	// Steps is the number of decode steps to generate.
	Steps int
	// EvictEvery evicts one sequence's whole region every k steps (and
	// restores the previously evicted one). 0 disables eviction.
	EvictEvery int
	// ScatterPerStep adds this many fragmented single-block touches per
	// step: blocks of random live sequences swapped out and immediately
	// needed back — the non-coalescible tail.
	ScatterPerStep int
	Seed           int64
}

// DefaultKVTrace is a serving-shaped workload: 8 sequences of 16 blocks,
// 64 decode steps, one region eviction every 4 steps, 3 scattered
// touches per step.
func DefaultKVTrace() KVTraceConfig {
	return KVTraceConfig{
		Sequences: 8, BlocksPerSeq: 16, Steps: 64,
		EvictEvery: 4, ScatterPerStep: 3, Seed: 1,
	}
}

// GenKVTrace generates the deterministic decode-step trace for cfg: the
// same config always yields the same steps.
func GenKVTrace(cfg KVTraceConfig) []KVStep {
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := func(seq int) []int {
		ids := make([]int, cfg.BlocksPerSeq)
		for i := range ids {
			ids[i] = seq*cfg.BlocksPerSeq + i
		}
		return ids
	}
	steps := make([]KVStep, cfg.Steps)
	evicted := -1 // sequence currently swapped out, if any
	for s := range steps {
		var st KVStep
		restoring := -1 // sequence returning this step: not resident until In lands
		if cfg.EvictEvery > 0 && s%cfg.EvictEvery == cfg.EvictEvery-1 {
			if evicted >= 0 {
				st.In = append(st.In, region(evicted)...)
				restoring = evicted
			}
			victim := rng.Intn(cfg.Sequences)
			for victim == evicted && cfg.Sequences > 1 {
				victim = rng.Intn(cfg.Sequences)
			}
			st.Out = append(st.Out, region(victim)...)
			evicted = victim
		}
		seen := map[int]bool{}
		for i := 0; i < cfg.ScatterPerStep; i++ {
			seq := rng.Intn(cfg.Sequences)
			// Scattered touches swap out before they swap back in, so they
			// must hit resident sequences: not the one leaving this step,
			// and not the one whose restore lands after the step's Outs.
			if seq == evicted || seq == restoring {
				continue
			}
			id := seq*cfg.BlocksPerSeq + rng.Intn(cfg.BlocksPerSeq)
			if seen[id] {
				continue
			}
			seen[id] = true
			st.Out = append(st.Out, id)
			st.In = append(st.In, id)
		}
		steps[s] = st
	}
	return steps
}

// CoalesceIDs sorts and dedups ids and merges contiguous runs, returning
// the run count and total distinct blocks — the same rule the executor's
// block pools apply, restated here so the simulator carries no executor
// dependency.
func CoalesceIDs(ids []int) (runs, blocks int) {
	if len(ids) == 0 {
		return 0, 0
	}
	sorted := append([]int(nil), ids...)
	insertionSort(sorted)
	runs, blocks = 1, 1
	for i := 1; i < len(sorted); i++ {
		switch sorted[i] {
		case sorted[i-1]: // duplicate
		case sorted[i-1] + 1:
			blocks++
		default:
			runs++
			blocks++
		}
	}
	return runs, blocks
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// LinkCost prices block movement: a fixed per-operation control cost
// (request framing, admission, codec launch) plus bytes over the link.
type LinkCost struct {
	PerOpSeconds float64
	BytesPerSec  float64
	BlockBytes   int
}

// Seconds prices moving a step's ID list as `ops` operations carrying
// `blocks` blocks total.
func (lc LinkCost) Seconds(ops, blocks int) float64 {
	return float64(ops)*lc.PerOpSeconds + float64(blocks*lc.BlockBytes)/lc.BytesPerSec
}

// KVScore is the scorer's verdict over one trace.
type KVScore struct {
	// CoalescedSeconds and PerBlockSeconds are total link-time with runs
	// merged versus one operation per block.
	CoalescedSeconds, PerBlockSeconds float64
	// Ops and Blocks are total issued operations (coalesced) and blocks
	// moved.
	Ops, Blocks int
}

// Speedup is the per-block / coalesced cost ratio (>1 when coalescing
// wins).
func (s KVScore) Speedup() float64 {
	if s.CoalescedSeconds == 0 {
		return 1
	}
	return s.PerBlockSeconds / s.CoalescedSeconds
}

// ScoreKVTrace prices a trace both ways. Byte volume is identical in the
// two columns; only the per-operation control cost differs — the scorer
// isolates exactly what batching amortizes.
func ScoreKVTrace(trace []KVStep, lc LinkCost) KVScore {
	var sc KVScore
	for _, st := range trace {
		for _, ids := range [][]int{st.Out, st.In} {
			runs, blocks := CoalesceIDs(ids)
			sc.CoalescedSeconds += lc.Seconds(runs, blocks)
			sc.PerBlockSeconds += lc.Seconds(blocks, blocks)
			sc.Ops += runs
			sc.Blocks += blocks
		}
	}
	return sc
}
