package sim

import "testing"

// pressureScenario is the shared overflow workload: twelve 8 MiB blobs
// against a pool that holds three, with a compute step wide enough for a
// background demotion (4 ms at 2 GB/s) to hide inside.
func pressureScenario() HostPressureScenario {
	blobs := make([]int64, 12)
	for i := range blobs {
		blobs[i] = 8 << 20
	}
	return HostPressureScenario{
		HostCapacity:    24 << 20,
		LinkBytesPerSec: 12e9,
		TierBytesPerSec: 2e9,
		ComputeStep:     0.010,
		Blobs:           blobs,
	}
}

// TestHostPressureTierReducesExposedStalls pins the scenario's reason to
// exist: the same overflow workload scores materially less exposed stall
// with the tier attached, because demotion hides behind compute while the
// no-tier reclaim serialises with it.
func TestHostPressureTierReducesExposedStalls(t *testing.T) {
	with, without := pressureScenario().Compare()

	if without.ExposedStall <= 0 {
		t.Fatal("no-tier run recorded no exposed stall; the workload is not overflowing the pool")
	}
	if without.Reclaims == 0 {
		t.Fatal("no-tier run recorded no synchronous reclaims")
	}
	if without.Demotions != 0 {
		t.Fatalf("no-tier run recorded %d demotions", without.Demotions)
	}
	if with.Demotions == 0 {
		t.Fatal("tier run recorded no demotions; overflow never reached the disk")
	}
	if with.Reclaims != 0 {
		t.Fatalf("tier run fell back to %d synchronous reclaims", with.Reclaims)
	}
	if with.TierBusy <= 0 {
		t.Fatal("tier run shows an idle disk resource")
	}
	if with.ExposedStall >= without.ExposedStall {
		t.Fatalf("tier did not reduce exposed stall: with %.6fs, without %.6fs",
			with.ExposedStall, without.ExposedStall)
	}
	if with.Makespan <= 0 || without.Makespan <= 0 {
		t.Fatal("a run reported a zero makespan")
	}
}

// TestHostPressureNoOverflowNeedsNoTier: a stream that fits the pool
// scores zero stall, zero demotions, zero reclaims either way — the tier
// is pure headroom, never a tax on the fitting case.
func TestHostPressureNoOverflowNeedsNoTier(t *testing.T) {
	s := pressureScenario()
	s.Blobs = s.Blobs[:3] // exactly fills the pool, never overflows
	with, without := s.Compare()
	for name, r := range map[string]HostPressureResult{"with": with, "without": without} {
		if r.ExposedStall != 0 || r.Demotions != 0 || r.Reclaims != 0 {
			t.Fatalf("%s-tier fitting run: stall %v, demotions %d, reclaims %d; want all zero",
				name, r.ExposedStall, r.Demotions, r.Reclaims)
		}
	}
}

// TestHostPressureSlowDiskStillStalls: with a disk too slow for the hidden
// window the tier run stalls too — the scenario reports contention, it
// does not assume the tier is free.
func TestHostPressureSlowDiskStillStalls(t *testing.T) {
	s := pressureScenario()
	s.TierBytesPerSec = 100e6 // 80 ms per demotion against a 10 ms window
	with := s.Run()
	if with.ExposedStall <= 0 {
		t.Fatal("overloaded disk tier recorded no exposed stall")
	}
	if with.Demotions == 0 {
		t.Fatal("overloaded disk tier recorded no demotions")
	}
}
