package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"cswap/internal/stats"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	if m.At(0, 1) != 5 || m.At(1, 2) != 7 || m.At(0, 0) != 0 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T()
	if tt.Rows != 3 || tt.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tt.Rows, tt.Cols)
	}
	if tt.At(2, 1) != 6 || tt.At(0, 0) != 1 {
		t.Fatal("transpose values wrong")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulKnownProduct(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Mul(b)
}

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := FromRows([][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(l.At(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
	b := NewMatrix(2, 3)
	if _, err := Cholesky(b); err == nil {
		t.Fatal("Cholesky accepted a non-square matrix")
	}
}

func TestSolveCholeskyRoundTrip(t *testing.T) {
	a := FromRows([][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	got := SolveCholesky(l, b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveSPDRandomSystems(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		// Build SPD A = GᵀG + I.
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.T().Mul(g).AddDiagonal(1)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveSPDJitterRecovery(t *testing.T) {
	// A rank-deficient PSD matrix fails plain Cholesky; SolveSPD must
	// recover via diagonal jitter.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected plain Cholesky to fail on singular matrix")
	}
	if _, err := SolveSPD(a, []float64{1, 1}); err != nil {
		t.Fatalf("SolveSPD failed to recover: %v", err)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestCholeskySolvePropertyQuick(t *testing.T) {
	rng := stats.NewRNG(7)
	f := func(seed uint8) bool {
		n := 2 + int(seed)%5
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.T().Mul(g).AddDiagonal(0.5)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeProductIdentity(t *testing.T) {
	// (A·B)ᵀ = Bᵀ·Aᵀ on random matrices.
	rng := stats.NewRNG(11)
	for trial := 0; trial < 10; trial++ {
		r, k, c := 2+rng.Intn(5), 2+rng.Intn(5), 2+rng.Intn(5)
		a, b := NewMatrix(r, k), NewMatrix(k, c)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		left := a.Mul(b).T()
		right := b.T().Mul(a.T())
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-12 {
				t.Fatalf("transpose identity violated at %d", i)
			}
		}
	}
}

func TestDoubleTransposeIsIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T().T()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("double transpose changed the matrix")
		}
	}
}

func TestAddDiagonalOnRectangular(t *testing.T) {
	m := NewMatrix(2, 4)
	m.AddDiagonal(3)
	if m.At(0, 0) != 3 || m.At(1, 1) != 3 || m.At(0, 1) != 0 {
		t.Fatal("AddDiagonal wrong on rectangular matrix")
	}
}

func TestCholeskyDeterminantConsistency(t *testing.T) {
	// det(A) = (Π diag(L))² for A = L·Lᵀ.
	a := FromRows([][]float64{{4, 12, -16}, {12, 37, -43}, {-16, -43, 98}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := 1.0
	for i := 0; i < 3; i++ {
		prod *= l.At(i, i)
	}
	// det of this classic matrix is 36.
	if math.Abs(prod*prod-36) > 1e-9 {
		t.Fatalf("det via Cholesky = %v, want 36", prod*prod)
	}
}
