// Package linalg provides the small dense linear-algebra substrate used by
// the regression models (internal/regress) and the Gaussian process inside
// the Bayesian optimizer (internal/bayesopt): column-major-free row-major
// matrices, matrix products, and Cholesky factorisation/solves for symmetric
// positive-definite systems.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix of the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d", i))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d",
			m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mRow := m.Data[i*m.Cols : (i+1)*m.Cols]
		outRow := out.Data[i*o.Cols : (i+1)*o.Cols]
		for k, mik := range mRow {
			if mik == 0 {
				continue
			}
			oRow := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, okj := range oRow {
				outRow[j] += mik * okj
			}
		}
	}
	return out
}

// MulVec returns m × v for a column vector v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// AddDiagonal adds v to every diagonal element in place and returns m.
func (m *Matrix) AddDiagonal(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A. Only the lower triangle of A is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A via forward
// then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveCholesky dimension mismatch")
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive-definite A, adding up to
// three escalating jitter levels to the diagonal if the factorisation fails
// numerically.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	work := a.Clone()
	jitter := 0.0
	for attempt := 0; attempt < 4; attempt++ {
		if jitter > 0 {
			work = a.Clone().AddDiagonal(jitter)
		}
		l, err := Cholesky(work)
		if err == nil {
			return SolveCholesky(l, b), nil
		}
		if jitter == 0 {
			jitter = 1e-10
		} else {
			jitter *= 1e3
		}
	}
	return nil, ErrNotPositiveDefinite
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
