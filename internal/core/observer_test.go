package core

import (
	"testing"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/metrics"
	"cswap/internal/swap"
)

func newObservedFramework(t *testing.T, obs *metrics.Observer) *Framework {
	t.Helper()
	d, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnn.BuildConfigured("AlexNet", "V100", dnn.ImageNet)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Model: m, Device: d, Seed: 1, SamplesPerAlg: 300, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestObserverThreadedThroughDeployment(t *testing.T) {
	obs := metrics.NewObserver()
	f := newObservedFramework(t, obs)

	// New's setup phases land on the "core" trace stream, and the BO search
	// it ran recorded its probes.
	streams := obs.Trace.Streams()
	hasCore := false
	for _, s := range streams {
		if s == "core" {
			hasCore = true
		}
	}
	if !hasCore {
		t.Fatalf("no core stream in %v", streams)
	}
	if probes := obs.Metrics.Counter("bayesopt_probes_total").Value(); int(probes) != f.Overhead.BOEvaluations {
		t.Fatalf("bayesopt probes %v, BO evaluations %d", probes, f.Overhead.BOEvaluations)
	}

	// One simulated iteration produces simulator metrics plus the
	// iteration-level rollups, consistent with the returned result.
	res, err := f.SimulateIteration(0, swap.NewOptions(swap.WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.Metrics.Snapshot()
	if v, ok := snap.Counter("core_iterations_total"); !ok || v != 1 {
		t.Fatalf("core_iterations_total = %v, %v", v, ok)
	}
	if v, ok := snap.Counter("sim_iterations_total"); !ok || v != 1 {
		t.Fatalf("sim_iterations_total = %v, %v", v, ok)
	}
	if g := obs.Metrics.Gauge("core_throughput_samples_per_second").Value(); g != res.Throughput {
		t.Fatalf("throughput gauge %v, result %v", g, res.Throughput)
	}
	plan, err := f.PlanEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Counter("core_compressed_tensors_total"); int(v) != plan.CompressedCount() {
		t.Fatalf("compressed rollup %v, plan compresses %d", v, plan.CompressedCount())
	}

	// Planning went through the observed advisor: verdict counters exist.
	total := 0.0
	for _, c := range snap.Counters {
		if c.Name == "costmodel_decisions_total" {
			total += c.Value
		}
	}
	if total == 0 {
		t.Fatal("no advisor verdicts recorded")
	}
}

func TestDecisionAccuracyFeedsRealizedErrors(t *testing.T) {
	obs := metrics.NewObserver()
	d, err := gpu.ByName("V100")
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnn.BuildConfigured("AlexNet", "V100", dnn.ImageNet)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Model: m, Device: d, Seed: 1, SamplesPerAlg: 300,
		Epochs: 2, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DecisionAccuracy(0); err != nil {
		t.Fatal(err)
	}
	if v := obs.Metrics.Counter("costmodel_realized_samples_total").Value(); v == 0 {
		t.Fatal("DecisionAccuracy recorded no realized samples")
	}
	h := obs.Metrics.HistogramWith("costmodel_time_error_ratio", metrics.ExpBuckets(0.001, 2, 12))
	if h.Count() == 0 {
		t.Fatal("no prediction-error observations")
	}
}
