package core

import (
	"testing"

	"cswap/internal/dnn"
	"cswap/internal/executor"
	"cswap/internal/faultinject"
	"cswap/internal/gpu"
	"cswap/internal/profiler"
	"cswap/internal/swap"
)

// newTestFramework builds a small-sample deployment for fast tests.
func newTestFramework(t *testing.T, model string, gpuName string, ds dnn.Dataset) *Framework {
	t.Helper()
	d, err := gpu.ByName(gpuName)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnn.BuildConfigured(model, gpuName, ds)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Model: m, Device: d, Seed: 1, SamplesPerAlg: 300})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestNewTunesLaunchAndTrainsPredictor(t *testing.T) {
	f := newTestFramework(t, "VGG16", "V100", dnn.ImageNet)
	if err := f.Launch.Validate(); err != nil {
		t.Fatalf("tuned launch invalid: %v", err)
	}
	if f.Predictor == nil || f.Profile == nil || f.Sparsity == nil {
		t.Fatal("components missing")
	}
	if f.Overhead.BOEvaluations != 35 {
		t.Fatalf("BO evaluations = %d, want 35 (s1=10 + s2=25)", f.Overhead.BOEvaluations)
	}
	if f.Overhead.BOModeledSeconds <= 0 {
		t.Fatal("BO modeled time missing")
	}
	// The tuned launch must beat the expert default on the calibration
	// workload.
	cal := gpu.KernelParams{SizeBytes: 500 << 20, Sparsity: 0.5}
	cal.Alg = 1 // ZVC
	tuned := cal
	tuned.Launch = f.Launch
	expert := cal
	expert.Launch = f.Config.Device.DefaultLaunch()
	if f.Config.Device.CompressionTimeTotal(tuned) >= f.Config.Device.CompressionTimeTotal(expert) {
		t.Fatal("BO-tuned launch not better than expert default")
	}
}

func TestSkipTuningUsesExpertLaunch(t *testing.T) {
	d := gpu.V100()
	m := dnn.MustBuild("AlexNet", dnn.ImageNet, 64)
	f, err := New(Config{Model: m, Device: d, Seed: 1, SamplesPerAlg: 200, SkipTuning: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Launch != d.DefaultLaunch() {
		t.Fatalf("launch = %v, want expert default %v", f.Launch, d.DefaultLaunch())
	}
	if f.Overhead.BOEvaluations != 0 {
		t.Fatal("BO should not have run")
	}
}

func TestProfilePersistedInDB(t *testing.T) {
	f := newTestFramework(t, "AlexNet", "V100", dnn.CIFAR10)
	np, ok, err := profiler.Load(f.DB, "AlexNet", "V100")
	if err != nil || !ok {
		t.Fatalf("profile not in memdb: %v %v", ok, err)
	}
	if len(np.Tensors) != len(f.Profile.Tensors) {
		t.Fatal("stored profile differs")
	}
}

func TestPlanEpochSelectiveAndValid(t *testing.T) {
	f := newTestFramework(t, "VGG16", "V100", dnn.ImageNet)
	early, err := f.PlanEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := f.PlanEpoch(49)
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Validate(f.Profile); err != nil {
		t.Fatal(err)
	}
	// Figure 8/9: the compressed-layer count grows as sparsity rises.
	if late.CompressedCount() <= early.CompressedCount() {
		t.Fatalf("compressed layers: epoch 0 = %d, epoch 49 = %d; expected growth",
			early.CompressedCount(), late.CompressedCount())
	}
}

func TestCompressedLayerCountMatchesPlan(t *testing.T) {
	f := newTestFramework(t, "AlexNet", "V100", dnn.CIFAR10)
	n, err := f.CompressedLayerCount(49)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := f.PlanEpoch(49)
	if err != nil {
		t.Fatal(err)
	}
	if n != plan.CompressedCount() {
		t.Fatalf("count %d != plan %d", n, plan.CompressedCount())
	}
}

func TestDecisionsAtNamesAndVerdicts(t *testing.T) {
	f := newTestFramework(t, "VGG16", "V100", dnn.ImageNet)
	decs, algs, names, err := f.DecisionsAt(49)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(algs) || len(decs) != len(names) {
		t.Fatal("length mismatch")
	}
	if names[0] != "ReLU1" {
		t.Fatalf("first tensor = %s", names[0])
	}
	anyCompress := false
	for i, d := range decs {
		if d.Compress {
			anyCompress = true
			if _, err := algs[i], error(nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !anyCompress {
		t.Fatal("no tensor compressed at epoch 49")
	}
}

func TestSimulateIterationBeatsVDNN(t *testing.T) {
	f := newTestFramework(t, "SqueezeNet", "V100", dnn.ImageNet)
	opt := swap.DefaultOptions(7)
	rc, err := f.SimulateIteration(49, opt)
	if err != nil {
		t.Fatal(err)
	}
	np, err := f.ProfileAt(49)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := swap.Simulate(f.Config.Model, f.Config.Device, np, swap.VDNN{}.Plan(np, f.Config.Device), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rc.IterationTime >= rv.IterationTime {
		t.Fatalf("CSWAP %v not faster than vDNN %v", rc.IterationTime, rv.IterationTime)
	}
}

func TestDecisionAccuracyHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("long: 50 epochs × 2 simulations")
	}
	f := newTestFramework(t, "VGG16", "V100", dnn.ImageNet)
	acc, err := f.DecisionAccuracy(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 11: ≈94.2 % average. Accept anything clearly above
	// chance and below suspicious perfection... high but imperfect.
	if acc < 0.80 {
		t.Fatalf("decision accuracy %.3f, want ≥ 0.80", acc)
	}
	if acc > 0.999 {
		t.Fatalf("decision accuracy %.3f suspiciously perfect — jitter not biting?", acc)
	}
}

func TestEstimateTrainingProjection(t *testing.T) {
	f := newTestFramework(t, "SqueezeNet", "V100", dnn.ImageNet)
	te, err := f.EstimateTraining(10, swap.DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(te.Epochs) != f.Config.Epochs {
		t.Fatalf("epochs = %d, want %d", len(te.Epochs), f.Config.Epochs)
	}
	if te.TotalTime <= 0 || te.VDNNTotalTime <= te.TotalTime {
		t.Fatalf("totals: cswap %v, vdnn %v", te.TotalTime, te.VDNNTotalTime)
	}
	if te.Reduction() <= 0 || te.Reduction() > 0.6 {
		t.Fatalf("reduction %v out of plausible range", te.Reduction())
	}
	if te.TotalSwapSaved <= 0 {
		t.Fatal("no swap latency saved")
	}
	// Compressed-layer counts must not decrease over the run for a
	// rising-sparsity model (allowing wobble of one layer).
	first, last := te.Epochs[0].Compressed, te.Epochs[len(te.Epochs)-1].Compressed
	if last+1 < first {
		t.Fatalf("compressed layers fell from %d to %d", first, last)
	}
	// Totals scale linearly with itersPerEpoch.
	te2, err := f.EstimateTraining(20, swap.DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	ratio := te2.TotalTime / te.TotalTime
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("doubling iterations scaled time by %v", ratio)
	}
}

func TestEstimateTrainingValidatesInput(t *testing.T) {
	f := newTestFramework(t, "AlexNet", "V100", dnn.CIFAR10)
	if _, err := f.EstimateTraining(0, swap.DefaultOptions(1)); err == nil {
		t.Fatal("accepted zero iterations per epoch")
	}
}

func TestResumeFromDatabase(t *testing.T) {
	f := newTestFramework(t, "SqueezeNet", "V100", dnn.ImageNet)

	// Resume a second deployment purely from the stored state.
	g, err := Resume(f.DB, f.Config.Model, f.Config.Device, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Launch != f.Launch {
		t.Fatalf("resumed launch %v, want %v", g.Launch, f.Launch)
	}
	// The resumed advisor must make identical decisions.
	d1, a1, _, err := f.DecisionsAt(30)
	if err != nil {
		t.Fatal(err)
	}
	d2, a2, _, err := g.DecisionsAt(30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i].Compress != d2[i].Compress || a1[i] != a2[i] {
			t.Fatalf("decision %d differs after resume", i)
		}
	}
}

func TestResumeValidation(t *testing.T) {
	f := newTestFramework(t, "AlexNet", "V100", dnn.CIFAR10)
	if _, err := Resume(nil, f.Config.Model, f.Config.Device, Config{}); err == nil {
		t.Fatal("nil db accepted")
	}
	// Wrong model: no profile stored.
	other := dnn.MustBuild("VGG16", dnn.CIFAR10, 8)
	if _, err := Resume(f.DB, other, f.Config.Device, Config{}); err == nil {
		t.Fatal("missing profile accepted")
	}
	// Model mismatch against a stored profile of the same name: VGG16 on
	// CIFAR10 has 19 swappable tensors, on ImageNet 20.
	g := newTestFramework(t, "VGG16", "V100", dnn.ImageNet)
	mismatched := dnn.MustBuild("VGG16", dnn.CIFAR10, 8)
	if _, err := Resume(g.DB, mismatched, g.Config.Device, Config{}); err == nil {
		t.Fatal("tensor-count mismatch accepted")
	}
}

func TestNewExecutorWiresTunedLaunchAndFaults(t *testing.T) {
	f := newTestFramework(t, "AlexNet", "V100", dnn.ImageNet)
	inj := faultinject.New(
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Fail, After: 2, Every: 50},
	)
	e, err := f.NewExecutor(4096, inj)
	if err != nil {
		t.Fatal(err)
	}
	// Drive one functional iteration under the deployment's own plan; the
	// injected encode failures must degrade to raw swaps, not abort.
	plan, err := f.PlanEpoch(10)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := executor.RunIteration(e, f.Config.Model, plan, f.Sparsity, 10, 4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tensors == 0 {
		t.Fatal("iteration touched no tensors")
	}
	if st := e.Stats(); st.Verified != rep.Tensors {
		t.Fatalf("verified %d of %d tensors", st.Verified, rep.Tensors)
	}
}
