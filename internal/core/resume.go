package core

import (
	"fmt"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/memdb"
	"cswap/internal/profiler"
	"cswap/internal/regress"
	"cswap/internal/sparsity"
	"cswap/internal/swap"
)

// Resume rebuilds a deployment from a previously populated in-memory
// database — the retrieval path Section IV promises for both the network
// profile and the (de)compression time model. It skips the BO search, the
// sample generation, and the first-iteration profiling pass entirely; only
// the sparsity trajectories (per-epoch measurements by nature) are
// reconstructed.
func Resume(db *memdb.DB, m *dnn.Model, d *gpu.Device, cfg Config) (*Framework, error) {
	if db == nil || m == nil || d == nil {
		return nil, fmt.Errorf("core: Resume needs db, model, and device")
	}
	np, ok, err := profiler.Load(db, m.Name, d.Name)
	if err != nil {
		return nil, fmt.Errorf("core: load profile: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("core: no stored profile for %s/%s", m.Name, d.Name)
	}
	tp, ok, err := regress.LoadTimePredictor(db, d.Name)
	if err != nil {
		return nil, fmt.Errorf("core: load time model: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("core: no stored time model for %s", d.Name)
	}
	if len(np.Tensors) != len(m.SwapTensors()) {
		return nil, fmt.Errorf("core: stored profile has %d tensors, model has %d",
			len(np.Tensors), len(m.SwapTensors()))
	}
	cfg.Model, cfg.Device = m, d
	if cfg.Epochs <= 0 {
		cfg.Epochs = sparsity.DefaultEpochs
	}
	f := &Framework{
		Config:    cfg,
		DB:        db,
		Launch:    tp.Launch,
		Predictor: tp,
		Sparsity:  sparsity.ForModel(m, cfg.Epochs, cfg.Seed+3),
		Profile:   np,
	}
	f.planner = swap.CSWAP{Predictor: tp, Launch: tp.Launch}
	return f, nil
}
