// Package core wires the CSWAP components into the runtime of Figure 4:
// the tensor profiler collects the network profile into the in-memory
// database, the Bayesian-optimization engine tunes the compression-kernel
// launch geometry before training starts, the offline-trained time model
// predicts (de)compression costs, and the execution advisor produces
// per-epoch compression plans for the swapping executor.
package core

import (
	"fmt"
	"math"
	"time"

	"cswap/internal/bayesopt"
	"cswap/internal/compress"
	"cswap/internal/costmodel"
	"cswap/internal/dnn"
	"cswap/internal/executor"
	"cswap/internal/faultinject"
	"cswap/internal/gpu"
	"cswap/internal/memdb"
	"cswap/internal/metrics"
	"cswap/internal/profiler"
	"cswap/internal/regress"
	"cswap/internal/sparsity"
	"cswap/internal/stats"
	"cswap/internal/swap"
)

// Config configures a CSWAP deployment for one (model, device) pair.
type Config struct {
	Model  *dnn.Model
	Device *gpu.Device
	// Epochs is the training length (default sparsity.DefaultEpochs).
	Epochs int
	// Seed drives every random component (BO design, predictor samples,
	// sparsity wobble, simulation jitter).
	Seed int64
	// SamplesPerAlg sizes the predictor training set (default 3000).
	SamplesPerAlg int
	// SkipTuning uses the device's expert-default launch instead of
	// running BO (ablation switch).
	SkipTuning bool
	// Observer, when non-nil, is threaded through every component the
	// deployment builds: the BO search, the execution advisor, the
	// executor, and each simulated iteration. Setup phases land as spans
	// on its "core" stream; iteration-level rollups land in its registry.
	// Nil disables all recording at ~zero cost.
	Observer *metrics.Observer
}

// Overheads reports the one-time and runtime costs of Section V-E.
type Overheads struct {
	// BOEvaluations and BOModeledSeconds describe the pre-training search:
	// evaluation count and the modeled GPU time spent executing probes.
	BOEvaluations    int
	BOModeledSeconds float64
	// PredictorTrainWall is the measured wall-clock of fitting the time
	// models (the paper's 21 ms claim scales with host speed).
	PredictorTrainWall time.Duration
	// SampleGenWall is the measured wall-clock of generating the training
	// samples.
	SampleGenWall time.Duration
}

// Framework is a ready-to-run CSWAP deployment.
type Framework struct {
	Config    Config
	DB        *memdb.DB
	Launch    compress.Launch
	Predictor *regress.TimePredictor
	Sparsity  *sparsity.Profile
	Profile   *profiler.NetworkProfile
	Overhead  Overheads

	planner swap.CSWAP
}

// New builds a deployment: tunes the launch geometry (Algorithm 1), trains
// the time predictor offline, and runs the first-iteration profiling pass.
func New(cfg Config) (*Framework, error) {
	if cfg.Model == nil || cfg.Device == nil {
		return nil, fmt.Errorf("core: Model and Device are required")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = sparsity.DefaultEpochs
	}
	f := &Framework{Config: cfg, DB: memdb.New()}

	// Setup phases are timed against one wall-clock origin so they appear
	// in order on the observer's "core" trace stream.
	setupStart := time.Now()
	phase := func(label string, began time.Time) {
		cfg.Observer.Span("core", label,
			began.Sub(setupStart).Seconds(), time.Since(setupStart).Seconds())
	}

	// 1. Pre-training BO search over (grid, block) on the calibration
	// workload (500 MB @ 50 % ZVC), measuring noisy kernel executions.
	tuneStart := time.Now()
	if cfg.SkipTuning {
		f.Launch = cfg.Device.DefaultLaunch()
	} else {
		rng := stats.NewRNG(cfg.Seed + 1)
		objective := func(l compress.Launch) float64 {
			c, dc := cfg.Device.CompressionTimeNoisy(rng, gpu.KernelParams{
				Alg:       compress.ZVC,
				SizeBytes: 500 << 20,
				Sparsity:  0.5,
				Launch:    l,
			})
			return c + dc
		}
		res := (&bayesopt.BO{Seed: cfg.Seed, Observer: cfg.Observer}).Search(objective)
		f.Launch = res.Best
		f.Overhead.BOEvaluations = res.Evaluations
		for _, ob := range res.History {
			f.Overhead.BOModeledSeconds += ob.Value
		}
	}
	phase("tune", tuneStart)

	// 2. Offline (de)compression-time model.
	samples := cfg.SamplesPerAlg
	if samples <= 0 {
		samples = regress.DefaultSamples
	}
	genStart := time.Now()
	tp, err := regress.TrainTimePredictor(cfg.Device, f.Launch, samples, cfg.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("core: train time predictor: %w", err)
	}
	f.Overhead.PredictorTrainWall = time.Since(genStart)
	f.Overhead.SampleGenWall = f.Overhead.PredictorTrainWall // generation dominates fitting
	f.Predictor = tp
	if err := tp.Store(f.DB); err != nil {
		return nil, fmt.Errorf("core: store time model: %w", err)
	}
	phase("train-predictor", genStart)

	// 3. First-iteration profile, with hidden windows refined by the
	// compression-free measurement pass (Table II's "overlapped swapping
	// latency").
	profStart := time.Now()
	f.Sparsity = sparsity.ForModel(cfg.Model, cfg.Epochs, cfg.Seed+3)
	f.Profile = profiler.Collect(cfg.Model, cfg.Device, f.Sparsity, 0)
	if err := swap.MeasureHiddenWindows(cfg.Model, cfg.Device, f.Profile); err != nil {
		return nil, fmt.Errorf("core: measure hidden windows: %w", err)
	}
	if err := f.Profile.Store(f.DB); err != nil {
		return nil, fmt.Errorf("core: store profile: %w", err)
	}
	phase("profile", profStart)

	f.planner = swap.CSWAP{Predictor: tp, Launch: f.Launch, Observer: cfg.Observer}
	return f, nil
}

// Planner exposes the configured CSWAP framework (e.g. to build the Orac
// upper bound sharing its decisions).
func (f *Framework) Planner() swap.CSWAP { return f.planner }

// NewExecutor builds a functional swapping executor for the deployment:
// pools sized for the model at scaleDiv, the BO-tuned launch geometry, and
// bit-exact verification on. faults optionally wires a fault injector into
// the data path (nil for none) — the executor degrades gracefully on
// injected codec or allocator failures instead of aborting training.
func (f *Framework) NewExecutor(scaleDiv int, faults *faultinject.Injector) (*executor.Executor, error) {
	return executor.New(executor.Config{
		DeviceCapacity: executor.MinDeviceCapacity(f.Config.Model, scaleDiv),
		HostCapacity:   executor.HostCapacityFor(f.Config.Model, scaleDiv),
		Launch:         f.Launch,
		Verify:         true,
		Faults:         faults,
		Observer:       f.Config.Observer,
	})
}

// ProfileAt refreshes the per-epoch sparsity measurement and persists the
// updated profile, returning it.
func (f *Framework) ProfileAt(epoch int) (*profiler.NetworkProfile, error) {
	f.Profile.RefreshSparsity(f.Sparsity, epoch)
	if err := f.Profile.Store(f.DB); err != nil {
		return nil, err
	}
	return f.Profile, nil
}

// PlanEpoch produces the swapping plan for one epoch.
func (f *Framework) PlanEpoch(epoch int) (*swap.Plan, error) {
	np, err := f.ProfileAt(epoch)
	if err != nil {
		return nil, err
	}
	return f.planner.Plan(np, f.Config.Device), nil
}

// DecisionsAt returns the advisor's verdicts and chosen algorithms for one
// epoch, plus the tensor names (the Figure 9 dot-matrix row labels).
func (f *Framework) DecisionsAt(epoch int) ([]costmodel.Decision, []compress.Algorithm, []string, error) {
	np, err := f.ProfileAt(epoch)
	if err != nil {
		return nil, nil, nil, err
	}
	decs, algs := f.planner.Decisions(np)
	names := make([]string, len(np.Tensors))
	for i, t := range np.Tensors {
		names[i] = t.Name
	}
	return decs, algs, names, nil
}

// CompressedLayerCount returns how many layers the advisor compresses at an
// epoch — the Figure 8 series.
func (f *Framework) CompressedLayerCount(epoch int) (int, error) {
	plan, err := f.PlanEpoch(epoch)
	if err != nil {
		return 0, err
	}
	return plan.CompressedCount(), nil
}

// SimulateIteration runs one training iteration under the epoch's plan.
// The deployment's Observer (if any, and unless opt names its own) sees
// the run: per-stream metrics from the simulator plus iteration-level
// rollups (core_iterations_total, core_iteration_seconds,
// core_compressed_tensors_total, core_throughput_samples_per_second).
func (f *Framework) SimulateIteration(epoch int, opt swap.Options) (*swap.Result, error) {
	plan, err := f.PlanEpoch(epoch)
	if err != nil {
		return nil, err
	}
	if opt.Observer == nil {
		opt.Observer = f.Config.Observer
	}
	res, err := swap.Simulate(f.Config.Model, f.Config.Device, f.Profile, plan, opt)
	if err != nil {
		return nil, err
	}
	if reg := opt.Observer.Reg(); reg != nil {
		reg.Counter("core_iterations_total").Inc()
		reg.Counter("core_compressed_tensors_total").Add(float64(plan.CompressedCount()))
		reg.Histogram("core_iteration_seconds").Observe(res.IterationTime)
		reg.Gauge("core_throughput_samples_per_second").Set(res.Throughput)
	}
	return res, nil
}

// DecisionAccuracy measures Figure 11's metric over the training run: for
// every tensor at every epoch, the advisor's model-based verdict is
// compared against the measured ground truth at runtime. Ground truth for
// tensor i is obtained marginally: starting from the advisor's own plan,
// the tensor is forced compressed and forced raw in two jittered
// simulations, and the measured swap costs (exposed stall plus kernel time
// when compressed, exposed stall alone when raw) decide which side really
// was cheaper. A decision is correct when the advisor picked the measured
// winner.
func (f *Framework) DecisionAccuracy(jitter float64) (float64, error) {
	correct, total := 0, 0
	for epoch := 0; epoch < f.Config.Epochs; epoch++ {
		np, err := f.ProfileAt(epoch)
		if err != nil {
			return 0, err
		}
		decs, algs := f.planner.Decisions(np)
		basePlan := f.planner.Plan(np, f.Config.Device)
		opt := swap.Options{Seed: f.Config.Seed + int64(epoch)*97, Jitter: jitter}

		for i := range np.Tensors {
			planC := clonePlan(basePlan)
			c, dc := f.Config.Device.CompressionTime(gpu.KernelParams{
				Alg: algs[i], SizeBytes: np.Tensors[i].Bytes,
				Sparsity: np.Tensors[i].Sparsity, Launch: f.Launch,
			})
			planC.Tensors[i] = swap.TensorPlan{
				Compress: true, Alg: algs[i], TimeC: c, TimeDC: dc,
				TransferRatio: compress.EstimateRatio(algs[i], np.Tensors[i].Sparsity),
			}
			planN := clonePlan(basePlan)
			planN.Tensors[i] = swap.TensorPlan{TransferRatio: 1}

			simC, err := swap.Simulate(f.Config.Model, f.Config.Device, np, planC, opt)
			if err != nil {
				return 0, err
			}
			simN, err := swap.Simulate(f.Config.Model, f.Config.Device, np, planN, opt)
			if err != nil {
				return 0, err
			}
			// The measured decision applies the same Eq. 2 rule with
			// measured quantities: measured kernel durations plus the
			// measured exposed transfer portions. The pipeline exposure
			// includes the in-line kernel, so the transfer-only exposed
			// parts are the exposures minus the kernel durations,
			// floored at zero (Eq. 3/4's max).
			cT := simC.Tensors[i]
			tMeas := cT.CompDur + cT.DecompDur +
				math.Max(cT.ExposedF-cT.CompDur, 0) +
				math.Max(cT.ExposedB-cT.DecompDur, 0)
			tPrimeMeas := simN.Tensors[i].ExposedF + simN.Tensors[i].ExposedB
			if (tPrimeMeas > tMeas) == decs[i].Compress {
				correct++
			}
			total++
			// Feed predicted-vs-realized cost back to the observer: the
			// advisor predicted Eq. 2's T when compressing and Eq. 1's T′
			// when not; the jittered simulation measured the same quantity.
			if decs[i].Compress {
				costmodel.RecordRealized(f.Config.Observer, decs[i].T, tMeas)
			} else {
				costmodel.RecordRealized(f.Config.Observer, decs[i].TPrime, tPrimeMeas)
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("core: no decisions to score")
	}
	return float64(correct) / float64(total), nil
}

func clonePlan(p *swap.Plan) *swap.Plan {
	cp := &swap.Plan{Framework: p.Framework, Tensors: append([]swap.TensorPlan(nil), p.Tensors...)}
	return cp
}
