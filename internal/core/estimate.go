package core

import (
	"fmt"

	"cswap/internal/swap"
)

// EpochEstimate is one epoch's simulated cost under the framework's plan.
type EpochEstimate struct {
	Epoch         int
	Compressed    int
	IterationTime float64 // seconds per iteration
	SwapExposed   float64 // un-hidden swap seconds per iteration
	VDNNIteration float64 // the vDNN baseline for the same epoch
}

// TrainingEstimate projects a whole training run from per-epoch iteration
// simulations — the quantity the paper's Figure 6 throughput numbers
// integrate.
type TrainingEstimate struct {
	Model, GPU     string
	ItersPerEpoch  int
	Epochs         []EpochEstimate
	TotalTime      float64 // seconds under CSWAP
	VDNNTotalTime  float64 // seconds under vDNN
	TotalSwapSaved float64 // Σ (vDNN exposed − CSWAP exposed) over the run
}

// Reduction returns the relative training-time reduction vs vDNN.
func (te *TrainingEstimate) Reduction() float64 {
	if te.VDNNTotalTime == 0 {
		return 0
	}
	return (te.VDNNTotalTime - te.TotalTime) / te.VDNNTotalTime
}

// EstimateTraining simulates one iteration per epoch under both the
// framework's plan and the vDNN baseline and scales by itersPerEpoch,
// producing a whole-run projection. Jitter follows opt; each epoch gets an
// independent seed derived from it.
func (f *Framework) EstimateTraining(itersPerEpoch int, opt swap.Options) (*TrainingEstimate, error) {
	if itersPerEpoch <= 0 {
		return nil, fmt.Errorf("core: itersPerEpoch must be positive")
	}
	te := &TrainingEstimate{
		Model:         f.Config.Model.Name,
		GPU:           f.Config.Device.Name,
		ItersPerEpoch: itersPerEpoch,
	}
	for epoch := 0; epoch < f.Config.Epochs; epoch++ {
		np, err := f.ProfileAt(epoch)
		if err != nil {
			return nil, err
		}
		epochOpt := opt
		epochOpt.Seed = opt.Seed + int64(epoch)*131
		plan := f.planner.Plan(np, f.Config.Device)
		rc, err := swap.Simulate(f.Config.Model, f.Config.Device, np, plan, epochOpt)
		if err != nil {
			return nil, err
		}
		rv, err := swap.Simulate(f.Config.Model, f.Config.Device, np,
			swap.VDNN{}.Plan(np, f.Config.Device), epochOpt)
		if err != nil {
			return nil, err
		}
		te.Epochs = append(te.Epochs, EpochEstimate{
			Epoch:         epoch,
			Compressed:    plan.CompressedCount(),
			IterationTime: rc.IterationTime,
			SwapExposed:   rc.SwapExposed,
			VDNNIteration: rv.IterationTime,
		})
		n := float64(itersPerEpoch)
		te.TotalTime += rc.IterationTime * n
		te.VDNNTotalTime += rv.IterationTime * n
		te.TotalSwapSaved += (rv.SwapExposed - rc.SwapExposed) * n
	}
	return te, nil
}
