// Package metrics is a dependency-free metrics registry for the CSWAP
// runtime: counters, gauges, and fixed-log-bucket histograms, labeled by
// codec/tensor/site, with snapshot export through pluggable sinks
// (JSON-lines and Prometheus text exposition).
//
// The registry is the single backing store for every ad-hoc counter the
// repo used to scatter across executor.Stats, SimResult, and the cmd/
// tools: instruments are cheap atomic cells that hot paths pre-resolve
// once and update lock-free, so a registry-backed view costs no
// allocations per operation. All instrument methods and the registry
// lookups are nil-receiver safe — a nil *Registry hands out nil
// instruments whose operations no-op — which is what lets an optional
// Observer cost ~zero when absent.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// value is a float64 cell updated with atomic compare-and-swap; counters
// and gauges share it.
type value struct {
	bits atomic.Uint64
}

func (v *value) add(delta float64) {
	for {
		old := v.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if v.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (v *value) set(x float64) { v.bits.Store(math.Float64bits(x)) }
func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing metric. The nil counter no-ops,
// so call sites need no guards when metrics are disabled.
type Counter struct {
	v value
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds a non-negative delta; negative deltas are dropped (a counter
// never goes down).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.add(delta)
}

// Value returns the accumulated total (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a set-to-current-value metric. The nil gauge no-ops.
type Gauge struct {
	v value
}

// Set stores the current value.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.v.set(x)
}

// Add shifts the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v.add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start
// with the given factor — the fixed log-scale bucket layouts histograms
// use. It panics on a non-positive start, a factor ≤ 1, or n < 1
// (mis-specified buckets are a programming error, not runtime input).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid bucket spec (start=%v factor=%v n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// DefaultBuckets spans 1 µs to 100 s in half-decade steps — the range of
// every duration the simulator and executor observe (kernel times, DMA
// transfers, exposed stalls, whole iterations).
func DefaultBuckets() []float64 { return ExpBuckets(1e-6, math.Sqrt(10), 17) }

// ByteBuckets spans 256 B to 4 GiB in ×4 steps — blob and tensor sizes.
func ByteBuckets() []float64 { return ExpBuckets(256, 4, 13) }

// Histogram accumulates observations into fixed upper-bound buckets
// (first bucket with bound ≥ v wins; larger values overflow into an
// implicit +Inf bucket). Observe is lock-free. The nil histogram no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	sum    value
	n      atomic.Int64
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Bounds returns the bucket upper bounds (the +Inf overflow is implicit).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Registry holds named, labeled instruments. Lookup methods register on
// first use and return the same cell for the same (name, labels)
// afterwards; hot paths should resolve once and hold the pointer. The nil
// registry hands out nil instruments.
//
// A Registry is a view over a shared store: Sub derives a view whose every
// series carries additional base labels (e.g. shard="2"), while all views
// share one backing store — a Snapshot taken through any view sees every
// series, which is how a cluster's per-shard components write shard-
// labeled series into one /metrics exposition without knowing they are
// sharded.
type Registry struct {
	store *store
	base  []Label
}

// store is the backing state all views of one registry share.
type store struct {
	mu       sync.Mutex
	counters map[string]*labeled[*Counter]
	gauges   map[string]*labeled[*Gauge]
	hists    map[string]*labeled[*Histogram]
}

type labeled[T any] struct {
	name   string
	labels []Label
	inst   T
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{store: &store{
		counters: map[string]*labeled[*Counter]{},
		gauges:   map[string]*labeled[*Gauge]{},
		hists:    map[string]*labeled[*Histogram]{},
	}}
}

// Sub returns a view of r that stamps base onto every series it touches,
// in addition to call-site labels. Views share r's backing store; Sub of
// a Sub accumulates labels. Nil-safe: a nil registry's view is nil.
func (r *Registry) Sub(base ...Label) *Registry {
	if r == nil || len(base) == 0 {
		return r
	}
	merged := append(append([]Label(nil), r.base...), base...)
	return &Registry{store: r.store, base: merged}
}

// BaseLabels returns the labels this view stamps onto every series (nil
// for the root view). Callers reading a shared Snapshot use these to find
// their own series among other views'.
func (r *Registry) BaseLabels() []Label {
	if r == nil || len(r.base) == 0 {
		return nil
	}
	return append([]Label(nil), r.base...)
}

// withBase merges the view's base labels with call-site labels.
func (r *Registry) withBase(labels []Label) []Label {
	if len(r.base) == 0 {
		return labels
	}
	return append(append([]Label(nil), r.base...), labels...)
}

// key builds the canonical identity of (name, labels); labels are sorted
// so call-site order never mints a duplicate series.
func key(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), ls
}

// Counter returns the counter for (name, labels), registering it on first
// use. Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k, ls := key(name, r.withBase(labels))
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	e, ok := r.store.counters[k]
	if !ok {
		e = &labeled[*Counter]{name: name, labels: ls, inst: &Counter{}}
		r.store.counters[k] = e
	}
	return e.inst
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k, ls := key(name, r.withBase(labels))
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	e, ok := r.store.gauges[k]
	if !ok {
		e = &labeled[*Gauge]{name: name, labels: ls, inst: &Gauge{}}
		r.store.gauges[k] = e
	}
	return e.inst
}

// Histogram returns the histogram for (name, labels) with DefaultBuckets,
// registering it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramWith(name, nil, labels...)
}

// HistogramWith is Histogram with explicit bucket upper bounds (nil selects
// DefaultBuckets). The first registration of a name fixes its buckets;
// later callers get the existing series regardless of the bounds they pass.
func (r *Registry) HistogramWith(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k, ls := key(name, r.withBase(labels))
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	e, ok := r.store.hists[k]
	if !ok {
		if bounds == nil {
			bounds = DefaultBuckets()
		} else {
			bounds = append([]float64(nil), bounds...)
			if !sort.Float64sAreSorted(bounds) || len(bounds) == 0 {
				panic(fmt.Sprintf("metrics: histogram %q bounds must be sorted and non-empty", name))
			}
		}
		e = &labeled[*Histogram]{name: name, labels: ls, inst: &Histogram{
			bounds: bounds,
			counts: make([]atomic.Int64, len(bounds)+1),
		}}
		r.store.hists[k] = e
	}
	return e.inst
}
