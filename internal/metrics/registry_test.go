package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrentStreams drives shared instruments from parallel
// goroutines the way concurrent swap streams drive the executor's
// registry; run under -race it also proves the lookup path and the
// atomic cells are data-race free.
func TestRegistryConcurrentStreams(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Re-resolve through the registry every time to stress the
				// map path, not just the atomic cells.
				r.Counter("swap_outs_total").Inc()
				r.Counter("moved_bytes_total", L("codec", "ZVC")).Add(4)
				r.Gauge("inflight").Add(1)
				r.Histogram("stall_seconds").Observe(float64(i%7) * 1e-4)
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if got := r.Counter("swap_outs_total").Value(); got != total {
		t.Fatalf("swap_outs_total = %v, want %d", got, total)
	}
	if got := r.Counter("moved_bytes_total", L("codec", "ZVC")).Value(); got != 4*total {
		t.Fatalf("moved_bytes_total = %v, want %d", got, 4*total)
	}
	if got := r.Gauge("inflight").Value(); got != total {
		t.Fatalf("inflight = %v, want %d", got, total)
	}
	if got := r.Histogram("stall_seconds").Count(); got != total {
		t.Fatalf("stall_seconds count = %v, want %d", got, total)
	}
}

func TestCounterIgnoresNegativeAndLabelOrder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bytes", L("a", "1"), L("b", "2"))
	c.Add(-5)
	if c.Value() != 0 {
		t.Fatalf("negative delta applied: %v", c.Value())
	}
	c.Add(3)
	// Same labels in a different call-site order must hit the same series.
	if r.Counter("bytes", L("b", "2"), L("a", "1")) != c {
		t.Fatal("label order minted a new series")
	}
	if r.Counter("bytes", L("b", "2")) == c {
		t.Fatal("different label set aliased an existing series")
	}
}

// TestHistogramBucketBoundaries pins the placement rule: an observation
// lands in the first bucket whose upper bound is ≥ the value, with
// everything above the last bound in the +Inf overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("h", []float64{1, 10, 100})
	cases := []struct {
		v    float64
		want int // bucket index; 3 = +Inf overflow
	}{
		{-1, 0},
		{0, 0},
		{0.5, 0},
		{1, 0}, // on-boundary values belong to their bound's bucket (le semantics)
		{1.0001, 1},
		{10, 1},
		{99.9, 2},
		{100, 2},
		{100.0001, 3},
		{1e12, 3},
	}
	for _, tc := range cases {
		before := make([]int64, 4)
		for i := range before {
			before[i] = h.counts[i].Load()
		}
		h.Observe(tc.v)
		for i := range before {
			delta := h.counts[i].Load() - before[i]
			switch {
			case i == tc.want && delta != 1:
				t.Fatalf("Observe(%v): bucket %d delta %d, want 1", tc.v, i, delta)
			case i != tc.want && delta != 0:
				t.Fatalf("Observe(%v): bucket %d delta %d, want 0", tc.v, i, delta)
			}
		}
	}
	if got := h.Count(); got != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", got, len(cases))
	}
	h.Observe(math.NaN())
	if got := h.Count(); got != int64(len(cases)) {
		t.Fatal("NaN observation was counted")
	}
}

func TestExpBucketsLayouts(t *testing.T) {
	b := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	d := DefaultBuckets()
	if len(d) != 17 || d[0] != 1e-6 {
		t.Fatalf("DefaultBuckets = %v", d)
	}
	if math.Abs(d[16]-100) > 1e-9 {
		t.Fatalf("DefaultBuckets top = %v, want ~100", d[16])
	}
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Fatalf("DefaultBuckets not increasing at %d: %v", i, d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bucket spec accepted")
		}
	}()
	ExpBuckets(0, 2, 3)
}

// TestNilSafety proves the disabled-observability path: nil registries,
// instruments, and observers all no-op instead of crashing, which is what
// lets instrumented code run unguarded.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry produced series")
	}

	var o *Observer
	o.Span("s", "l", 0, 1)
	o.Emit("e", "k", "v")
	o.Reg().Counter("x").Inc()
	if _, err := o.ChromeTrace(); err != nil {
		t.Fatalf("nil observer ChromeTrace: %v", err)
	}
}

func TestObserverSpanCountsBadSpans(t *testing.T) {
	o := NewObserver()
	o.Span("exec", "enc:ReLU1", 0, 1)
	o.Span("exec", "enc:ReLU2", 5, 4) // inverted: dropped, counted, no panic
	if len(o.Trace.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(o.Trace.Spans))
	}
	if got := o.Metrics.Counter("observer_bad_spans_total").Value(); got != 1 {
		t.Fatalf("observer_bad_spans_total = %v, want 1", got)
	}
}

func TestObserverEmit(t *testing.T) {
	var got []Event
	o := NewObserver()
	o.OnEvent = func(e Event) { got = append(got, e) }
	o.Emit("bo.probe", "grid", "128", "block", "64")
	o.Emit("plain")
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2", len(got))
	}
	if got[0].Name != "bo.probe" || got[0].Attrs["grid"] != "128" || got[0].Attrs["block"] != "64" {
		t.Fatalf("event 0 = %+v", got[0])
	}
	if got[1].Attrs != nil {
		t.Fatalf("attr-less event got attrs %v", got[1].Attrs)
	}
}

// TestSubRegistryLabelsSeries: a Sub view stamps its base labels onto
// every series while sharing the root's backing store — distinct shards
// get distinct cells, and one snapshot sees them all.
func TestSubRegistryLabelsSeries(t *testing.T) {
	root := NewRegistry()
	s0 := root.Sub(L("shard", "0"))
	s1 := root.Sub(L("shard", "1"))

	s0.Counter("swaps_total").Add(3)
	s1.Counter("swaps_total").Add(5)
	s0.Counter("swaps_total", L("codec", "ZVC")).Inc()
	root.Counter("swaps_total").Add(7) // unlabeled root series is its own cell

	snap := root.Snapshot()
	if v, ok := snap.Counter("swaps_total", L("shard", "0")); !ok || v != 3 {
		t.Errorf("shard 0 series = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := snap.Counter("swaps_total", L("shard", "1")); !ok || v != 5 {
		t.Errorf("shard 1 series = %v (ok=%v), want 5", v, ok)
	}
	if v, ok := snap.Counter("swaps_total", L("codec", "ZVC"), L("shard", "0")); !ok || v != 1 {
		t.Errorf("shard 0 codec series = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Counter("swaps_total"); !ok || v != 7 {
		t.Errorf("root series = %v (ok=%v), want 7", v, ok)
	}
	// A snapshot through a sub view is the same shared store.
	if v, ok := s1.Snapshot().Counter("swaps_total", L("shard", "0")); !ok || v != 3 {
		t.Errorf("snapshot via sub view: shard 0 = %v (ok=%v), want 3", v, ok)
	}
}

func TestSubRegistryBaseLabels(t *testing.T) {
	root := NewRegistry()
	if root.BaseLabels() != nil {
		t.Errorf("root BaseLabels = %v, want nil", root.BaseLabels())
	}
	sub := root.Sub(L("shard", "2")).Sub(L("tier", "hot"))
	base := sub.BaseLabels()
	if len(base) != 2 || base[0] != L("shard", "2") || base[1] != L("tier", "hot") {
		t.Errorf("nested BaseLabels = %v", base)
	}
	// Same (name, merged labels) resolves to the same cell from either path.
	a := sub.Counter("x_total")
	b := root.Counter("x_total", L("tier", "hot"), L("shard", "2"))
	if a != b {
		t.Error("sub view and explicit labels minted different cells")
	}
	var nilReg *Registry
	if nilReg.Sub(L("a", "b")) != nil {
		t.Error("nil registry Sub must stay nil")
	}
	if nilReg.Sub(L("a", "b")).Counter("x") != nil {
		t.Error("nil sub view must hand out nil instruments")
	}
}
