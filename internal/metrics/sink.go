package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CounterSnapshot is one counter series at snapshot time.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// GaugeSnapshot is one gauge series at snapshot time.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// BucketSnapshot is one histogram bucket: the count of observations that
// landed in it (non-cumulative; each sink decides the presentation). The
// overflow bucket carries UpperBound +Inf, which sinks encode themselves —
// it is not JSON-representable directly.
type BucketSnapshot struct {
	UpperBound float64
	Count      int64
}

// HistogramSnapshot is one histogram series at snapshot time.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Sum     float64           `json:"sum"`
	Count   int64             `json:"count"`
	Buckets []BucketSnapshot  `json:"buckets"`
}

// Snapshot is a point-in-time copy of every registered series, ordered
// deterministically (by name, then label set).
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

func sortKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

// Snapshot copies the registry's current state. Nil-safe: a nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.store.mu.Lock()
	for _, e := range r.store.counters {
		s.Counters = append(s.Counters, CounterSnapshot{
			Name: e.name, Labels: labelMap(e.labels), Value: e.inst.Value(),
		})
	}
	for _, e := range r.store.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{
			Name: e.name, Labels: labelMap(e.labels), Value: e.inst.Value(),
		})
	}
	for _, e := range r.store.hists {
		h := e.inst
		hs := HistogramSnapshot{
			Name: e.name, Labels: labelMap(e.labels),
			Sum: h.Sum(), Count: h.Count(),
			Buckets: make([]BucketSnapshot, len(h.bounds)+1),
		}
		for i := range h.bounds {
			hs.Buckets[i] = BucketSnapshot{UpperBound: h.bounds[i], Count: h.counts[i].Load()}
		}
		hs.Buckets[len(h.bounds)] = BucketSnapshot{
			UpperBound: math.Inf(1), Count: h.counts[len(h.bounds)].Load(),
		}
		s.Histograms = append(s.Histograms, hs)
	}
	r.store.mu.Unlock()
	sort.Slice(s.Counters, func(i, j int) bool {
		return sortKey(s.Counters[i].Name, s.Counters[i].Labels) < sortKey(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return sortKey(s.Gauges[i].Name, s.Gauges[i].Labels) < sortKey(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return sortKey(s.Histograms[i].Name, s.Histograms[i].Labels) < sortKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

// Counter returns the snapshotted value of a counter series (0, false when
// absent) — the read side of the registry-backed views.
func (s *Snapshot) Counter(name string, labels ...Label) (float64, bool) {
	want := labelMap(labels)
	for _, c := range s.Counters {
		if c.Name == name && sortKey(name, c.Labels) == sortKey(name, want) {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshotted value of a gauge series (0, false when
// absent) — e.g. the executor's async in-flight gauge and its peak.
func (s *Snapshot) Gauge(name string, labels ...Label) (float64, bool) {
	want := labelMap(labels)
	for _, g := range s.Gauges {
		if g.Name == name && sortKey(name, g.Labels) == sortKey(name, want) {
			return g.Value, true
		}
	}
	return 0, false
}

// Sink consumes one metrics snapshot.
type Sink interface {
	Write(s *Snapshot) error
}

// ---------------------------------------------------------------------------
// JSON-lines sink.

// jsonLine is the on-disk record: one JSON object per series per line.
type jsonLine struct {
	Type   string            `json:"type"` // "counter" | "gauge" | "histogram"
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	Count  int64             `json:"count,omitempty"`
	// Buckets holds "le:count" pairs; +Inf is the literal "+Inf".
	Buckets []string `json:"buckets,omitempty"`
}

func encodeBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// JSONLines writes a snapshot as JSON lines: one self-describing object
// per series, machine-diffable against another snapshot or the paper's
// Figure 8/9 breakdowns.
type JSONLines struct {
	W io.Writer
}

// Write implements Sink.
func (j JSONLines) Write(s *Snapshot) error {
	w := bufio.NewWriter(j.W)
	enc := json.NewEncoder(w)
	for _, c := range s.Counters {
		if err := enc.Encode(jsonLine{Type: "counter", Name: c.Name, Labels: c.Labels, Value: c.Value}); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := enc.Encode(jsonLine{Type: "gauge", Name: g.Name, Labels: g.Labels, Value: g.Value}); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		line := jsonLine{Type: "histogram", Name: h.Name, Labels: h.Labels, Sum: h.Sum, Count: h.Count}
		for _, b := range h.Buckets {
			line.Buckets = append(line.Buckets, fmt.Sprintf("%s:%d", encodeBound(b.UpperBound), b.Count))
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ParseJSONLines reads a snapshot back from its JSON-lines form — the
// round-trip used by tests and by tools that diff two snapshots.
func ParseJSONLines(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal([]byte(text), &line); err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		switch line.Type {
		case "counter":
			s.Counters = append(s.Counters, CounterSnapshot{Name: line.Name, Labels: line.Labels, Value: line.Value})
		case "gauge":
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: line.Name, Labels: line.Labels, Value: line.Value})
		case "histogram":
			hs := HistogramSnapshot{Name: line.Name, Labels: line.Labels, Sum: line.Sum, Count: line.Count}
			for _, b := range line.Buckets {
				cut := strings.LastIndexByte(b, ':')
				if cut < 0 {
					return nil, fmt.Errorf("metrics: line %d: malformed bucket %q", lineNo, b)
				}
				var bound float64
				if b[:cut] == "+Inf" {
					bound = math.Inf(1)
				} else {
					v, err := strconv.ParseFloat(b[:cut], 64)
					if err != nil {
						return nil, fmt.Errorf("metrics: line %d: bucket bound %q: %w", lineNo, b[:cut], err)
					}
					bound = v
				}
				count, err := strconv.ParseInt(b[cut+1:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("metrics: line %d: bucket count %q: %w", lineNo, b[cut+1:], err)
				}
				hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: bound, Count: count})
			}
			s.Histograms = append(s.Histograms, hs)
		default:
			return nil, fmt.Errorf("metrics: line %d: unknown series type %q", lineNo, line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Prometheus text-exposition sink.

// Prometheus writes a snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative _bucket/_sum/_count families.
type Prometheus struct {
	W io.Writer
}

func promLabels(labels map[string]string, extra ...string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write implements Sink.
func (p Prometheus) Write(s *Snapshot) error {
	w := bufio.NewWriter(p.W)
	typed := map[string]bool{}
	family := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, c := range s.Counters {
		family(c.Name, "counter")
		fmt.Fprintf(w, "%s%s %s\n", c.Name, promLabels(c.Labels), promValue(c.Value))
	}
	for _, g := range s.Gauges {
		family(g.Name, "gauge")
		fmt.Fprintf(w, "%s%s %s\n", g.Name, promLabels(g.Labels), promValue(g.Value))
	}
	for _, h := range s.Histograms {
		family(h.Name, "histogram")
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", encodeBound(b.UpperBound)), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, promLabels(h.Labels), promValue(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels), h.Count)
	}
	return w.Flush()
}
