package metrics

import (
	"sync"

	"cswap/internal/trace"
)

// Event is one structured notification from an instrumented component —
// the qualitative channel beside the registry's quantitative one (a BO
// probe, a codec fallback, an iteration boundary).
type Event struct {
	Name  string
	Attrs map[string]string
}

// Observer is the single instrumentation surface threaded through the
// CSWAP stack: a metrics registry, an optional span timeline, and an
// optional structured event hook. Components receive a *Observer and
// record through it; a nil Observer is valid everywhere and costs ~zero —
// every method no-ops on a nil receiver, and the registry it exposes is
// nil (whose instruments also no-op).
//
// The registry and timeline may be shared by concurrent swap streams:
// registry instruments are lock-free, and Span serialises timeline
// appends internally. OnEvent must be safe for concurrent use by its
// provider.
type Observer struct {
	// Metrics receives counters, gauges, and histograms. Nil disables
	// quantitative recording.
	Metrics *Registry
	// Trace receives execution spans (Figure 2-style timelines; exportable
	// as a Chrome trace). Nil disables span recording.
	Trace *trace.Timeline
	// OnEvent, when non-nil, receives structured events.
	OnEvent func(Event)

	mu sync.Mutex // serialises Trace appends from concurrent streams
}

// NewObserver returns an observer with a fresh registry and timeline and
// no event hook.
func NewObserver() *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: &trace.Timeline{}}
}

// Reg returns the observer's registry; nil-safe, so call sites can chain
// o.Reg().Counter(...) unconditionally.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Span records one [start, end] interval on a stream through the
// non-panicking trace.AddChecked: instrumentation fed by wall clocks or
// replayed data must never take down the process, so an invalid span is
// counted (observer_bad_spans_total) and dropped instead.
func (o *Observer) Span(stream, label string, start, end float64) {
	if o == nil || o.Trace == nil {
		return
	}
	o.mu.Lock()
	err := o.Trace.AddChecked(stream, label, start, end)
	o.mu.Unlock()
	if err != nil {
		o.Reg().Counter("observer_bad_spans_total").Inc()
	}
}

// Emit fires the structured event hook with alternating key/value attrs.
func (o *Observer) Emit(name string, attrs ...string) {
	if o == nil || o.OnEvent == nil {
		return
	}
	var m map[string]string
	if len(attrs) > 1 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	o.OnEvent(Event{Name: name, Attrs: m})
}

// ChromeTrace exports the observer's timeline as Chrome trace-event JSON
// (nil-safe; an observer without a timeline exports an empty trace).
func (o *Observer) ChromeTrace() ([]byte, error) {
	if o == nil || o.Trace == nil {
		return (&trace.Timeline{}).ChromeTrace()
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.Trace.ChromeTrace()
}
