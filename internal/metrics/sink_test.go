package metrics

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// goldenRegistry builds the fixed registry both sink tests snapshot.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("executor_swap_outs_total").Add(3)
	r.Counter("executor_moved_bytes_total", L("codec", "ZVC")).Add(1024)
	r.Gauge("sim_throughput").Set(2.5)
	h := r.HistogramWith("sim_stall_seconds", []float64{0.5, 1, 2})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(4)
	return r
}

func TestPrometheusExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (Prometheus{W: &buf}).Write(goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "exposition.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s:\n--- got ---\n%s--- want ---\n%s",
			goldenPath, buf.String(), want)
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	snap := goldenRegistry().Snapshot()
	if err := (JSONLines{W: &buf}).Write(snap); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != len(snap.Counters) ||
		len(back.Gauges) != len(snap.Gauges) ||
		len(back.Histograms) != len(snap.Histograms) {
		t.Fatalf("round trip shape: %+v vs %+v", back, snap)
	}
	if v, ok := back.Counter("executor_moved_bytes_total", L("codec", "ZVC")); !ok || v != 1024 {
		t.Fatalf("moved bytes = %v (present=%v)", v, ok)
	}
	if v, ok := back.Counter("executor_swap_outs_total"); !ok || v != 3 {
		t.Fatalf("swap outs = %v (present=%v)", v, ok)
	}
	h := back.Histograms[0]
	if h.Name != "sim_stall_seconds" || h.Count != 3 || h.Sum != 4.75 {
		t.Fatalf("histogram = %+v", h)
	}
	if len(h.Buckets) != 4 || !math.IsInf(h.Buckets[3].UpperBound, 1) {
		t.Fatalf("buckets = %+v", h.Buckets)
	}
	if h.Buckets[0].Count != 2 || h.Buckets[3].Count != 1 {
		t.Fatalf("bucket counts = %+v", h.Buckets)
	}
	if v, ok := back.Gauge("sim_throughput"); !ok || v != 2.5 {
		t.Fatalf("gauge read-back = %v (present=%v)", v, ok)
	}
	if _, ok := back.Gauge("sim_throughput", L("stream", "dma")); ok {
		t.Fatal("gauge lookup matched a label set that was never registered")
	}
	if _, ok := back.Gauge("absent"); ok {
		t.Fatal("gauge lookup matched an absent series")
	}
}

func TestParseJSONLinesRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json\n",
		`{"type":"sparkline","name":"x"}` + "\n",
		`{"type":"histogram","name":"x","buckets":["nope"]}` + "\n",
		`{"type":"histogram","name":"x","buckets":["abc:1"]}` + "\n",
		`{"type":"histogram","name":"x","buckets":["1:xyz"]}` + "\n",
	}
	for _, c := range cases {
		if _, err := ParseJSONLines(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
	// Blank lines are tolerated.
	s, err := ParseJSONLines(bytes.NewBufferString("\n\n"))
	if err != nil || len(s.Counters) != 0 {
		t.Fatalf("blank input: %v %+v", err, s)
	}
}

func TestSnapshotOrderingIsDeterministic(t *testing.T) {
	mk := func() *Snapshot {
		r := NewRegistry()
		r.Counter("b_total").Inc()
		r.Counter("a_total", L("x", "2")).Inc()
		r.Counter("a_total", L("x", "1")).Inc()
		return r.Snapshot()
	}
	s := mk()
	if s.Counters[0].Name != "a_total" || s.Counters[0].Labels["x"] != "1" {
		t.Fatalf("order = %+v", s.Counters)
	}
	if s.Counters[2].Name != "b_total" {
		t.Fatalf("order = %+v", s.Counters)
	}
	var b1, b2 bytes.Buffer
	if err := (JSONLines{W: &b1}).Write(mk()); err != nil {
		t.Fatal(err)
	}
	if err := (JSONLines{W: &b2}).Write(mk()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two identical registries serialised differently")
	}
}
