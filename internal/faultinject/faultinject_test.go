package faultinject

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fail(SiteEncode); err != nil {
		t.Fatalf("nil Fail = %v", err)
	}
	blob := []byte{1, 2, 3}
	out, mutated := in.MutateBlob(SiteTransferIn, blob)
	if mutated || &out[0] != &blob[0] {
		t.Fatal("nil injector mutated a blob")
	}
	in.Sleep(SiteDecode)
	if s := in.Stats(); s.Total() != 0 {
		t.Fatalf("nil stats %+v", s)
	}
}

func TestFailAfterAndEvery(t *testing.T) {
	in := New(Fault{Site: SiteHostAlloc, Mode: Fail, After: 3, Every: 2})
	var fired []int
	for i := 1; i <= 9; i++ {
		if err := in.Fail(SiteHostAlloc); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: error %v does not wrap ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	want := []int{3, 5, 7, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if s := in.Stats(); s.Failures != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFailFiresOnceByDefault(t *testing.T) {
	in := New(Fault{Site: SiteEncode, Mode: Fail}) // After defaults to 1
	if err := in.Fail(SiteEncode); err == nil {
		t.Fatal("first op did not fail")
	}
	for i := 0; i < 5; i++ {
		if err := in.Fail(SiteEncode); err != nil {
			t.Fatal("one-shot fault fired twice")
		}
	}
	// Other sites and modes are untouched.
	if err := in.Fail(SiteDecode); err != nil {
		t.Fatal("unarmed site fired")
	}
}

func TestMutateBlobCorruptPreservesInput(t *testing.T) {
	in := New(Fault{Site: SiteTransferIn, Mode: Corrupt})
	orig := []byte{10, 20, 30, 40, 50, 60, 70, 80}
	pristine := append([]byte(nil), orig...)
	out, mutated := in.MutateBlob(SiteTransferIn, orig)
	if !mutated {
		t.Fatal("armed corrupt fault did not fire")
	}
	if !bytes.Equal(orig, pristine) {
		t.Fatal("input slice was modified")
	}
	if bytes.Equal(out, orig) {
		t.Fatal("output not corrupted")
	}
	if len(out) != len(orig) {
		t.Fatal("corrupt changed length")
	}
	// Exactly one bit differs.
	diffBits := 0
	for i := range out {
		x := out[i] ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("%d bits flipped, want 1", diffBits)
	}
	if s := in.Stats(); s.Corruptions != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMutateBlobTruncateShortens(t *testing.T) {
	in := New(Fault{Site: SiteTransferOut, Mode: Truncate})
	orig := make([]byte, 100)
	out, mutated := in.MutateBlob(SiteTransferOut, orig)
	if !mutated || len(out) >= len(orig) {
		t.Fatalf("truncate produced %d of %d bytes (mutated=%v)", len(out), len(orig), mutated)
	}
	if s := in.Stats(); s.Truncations != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMutateBlobDeterministic(t *testing.T) {
	run := func() []byte {
		in := New(Fault{Site: SiteTransferIn, Mode: Corrupt, After: 2})
		blob := make([]byte, 64)
		for i := range blob {
			blob[i] = byte(i)
		}
		in.MutateBlob(SiteTransferIn, blob) // op 1: no fire
		out, _ := in.MutateBlob(SiteTransferIn, blob)
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("corruption not deterministic across runs")
	}
}

func TestSleepDelay(t *testing.T) {
	in := New(Fault{Site: SiteDecode, Mode: Delay, Delay: 5 * time.Millisecond})
	start := time.Now()
	in.Sleep(SiteDecode)
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay fault did not sleep")
	}
	if s := in.Stats(); s.Delays != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	in := New(
		Fault{Site: SiteEncode, Mode: Fail, After: 1, Every: 3},
		Fault{Site: SiteTransferIn, Mode: Corrupt, After: 1, Every: 5},
	)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blob := make([]byte, 32)
			for i := 0; i < 100; i++ {
				_ = in.Fail(SiteEncode)
				_, _ = in.MutateBlob(SiteTransferIn, blob)
			}
		}()
	}
	wg.Wait()
	s := in.Stats()
	// 800 ops per site: encode fires on 1,4,7,... = 267; corrupt on 1,6,11,... = 160.
	if s.Failures != 267 || s.Corruptions != 160 {
		t.Fatalf("stats %+v, want 267 failures, 160 corruptions", s)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Fail: "fail", Corrupt: "corrupt", Truncate: "truncate", Delay: "delay"} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}
