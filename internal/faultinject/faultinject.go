// Package faultinject deterministically injects faults into the swapping
// data path: corrupted blobs, truncated transfers, failed pool allocations,
// and delayed codec work. The executor and the parallel codec wrapper call
// into an Injector at well-known sites; tests arm the sites they want to
// perturb and every firing is a pure function of the arming and the
// operation count, so failures reproduce exactly across runs — the property
// that makes a fault-tolerance test trustworthy.
//
// A nil *Injector is valid everywhere and injects nothing, so production
// call sites carry no configuration branching.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected failure; callers
// use errors.Is to distinguish an injected fault from an organic one.
var ErrInjected = errors.New("faultinject: injected fault")

// Site names one interception point on the swapping data path.
type Site string

// The data-path sites the executor and codec wrapper expose.
const (
	SiteEncode      Site = "encode"       // per-chunk codec encode work
	SiteDecode      Site = "decode"       // per-chunk codec decode work
	SiteHostAlloc   Site = "host-alloc"   // pinned-host pool allocation
	SiteDeviceAlloc Site = "device-alloc" // device pool allocation
	SiteTransferOut Site = "transfer-out" // device→host blob transfer (persistent: the stored blob)
	SiteTransferIn  Site = "transfer-in"  // host→device blob transfer (transient: the in-flight copy)
	SiteTierCommit  Site = "tier-commit"  // disk-tier demote: between blob write and index commit
)

// Mode is what an armed fault does when it fires.
type Mode int

// Fault modes.
const (
	// Fail makes the operation return ErrInjected.
	Fail Mode = iota
	// Corrupt flips a deterministically chosen bit in a copy of the blob.
	Corrupt
	// Truncate cuts a copy of the blob short.
	Truncate
	// Delay sleeps for the fault's Delay before the operation proceeds.
	Delay
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault arms one site with one failure mode.
type Fault struct {
	Site Site
	Mode Mode
	// After fires the fault on the Nth matching operation, 1-based; zero
	// means the first.
	After int
	// Every repeats the fault every Every matching operations after the
	// first firing; zero fires once.
	Every int
	// Delay is the sleep applied by Delay-mode faults.
	Delay time.Duration
}

// Stats counts fired faults by mode and observed operations by site.
type Stats struct {
	Failures, Corruptions, Truncations, Delays int
}

// Total returns the number of faults fired.
func (s Stats) Total() int {
	return s.Failures + s.Corruptions + s.Truncations + s.Delays
}

// Injector applies armed faults deterministically. It is safe for
// concurrent use; each armed fault keeps its own operation counter.
type Injector struct {
	mu     sync.Mutex
	faults []armedFault
	stats  Stats
}

type armedFault struct {
	Fault
	count int // matching operations observed
}

// New returns an injector with the given faults armed.
func New(faults ...Fault) *Injector {
	in := &Injector{faults: make([]armedFault, len(faults))}
	for i, f := range faults {
		if f.After < 1 {
			f.After = 1
		}
		in.faults[i] = armedFault{Fault: f}
	}
	return in
}

// fire advances the counters of every armed fault matching (site, modes)
// and returns the first that fires this operation, along with its count.
func (in *Injector) fire(site Site, modes ...Mode) (Fault, int, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	var hit Fault
	hitCount := 0
	found := false
	for i := range in.faults {
		f := &in.faults[i]
		if f.Site != site || !modeIn(f.Mode, modes) {
			continue
		}
		f.count++
		fires := f.count == f.After ||
			(f.Every > 0 && f.count > f.After && (f.count-f.After)%f.Every == 0)
		if fires && !found {
			hit, hitCount, found = f.Fault, f.count, true
			switch f.Mode {
			case Fail:
				in.stats.Failures++
			case Corrupt:
				in.stats.Corruptions++
			case Truncate:
				in.stats.Truncations++
			case Delay:
				in.stats.Delays++
			}
		}
	}
	return hit, hitCount, found
}

func modeIn(m Mode, modes []Mode) bool {
	for _, x := range modes {
		if x == m {
			return true
		}
	}
	return false
}

// Fail returns an ErrInjected-wrapped error when a Fail fault fires at the
// site, nil otherwise. A nil injector never fails.
func (in *Injector) Fail(site Site) error {
	if in == nil {
		return nil
	}
	if _, _, ok := in.fire(site, Fail); ok {
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
	return nil
}

// Sleep applies any Delay fault armed at the site. A nil injector returns
// immediately.
func (in *Injector) Sleep(site Site) {
	if in == nil {
		return
	}
	if f, _, ok := in.fire(site, Delay); ok {
		time.Sleep(f.Delay)
	}
}

// MutateBlob returns blob, or — when a Corrupt or Truncate fault fires at
// the site — a mutated copy and true. The input slice is never modified, so
// a caller retaining the original holds pristine data to retry from.
func (in *Injector) MutateBlob(site Site, blob []byte) ([]byte, bool) {
	if in == nil || len(blob) == 0 {
		return blob, false
	}
	f, count, ok := in.fire(site, Corrupt, Truncate)
	if !ok {
		return blob, false
	}
	out := append([]byte(nil), blob...)
	switch f.Mode {
	case Corrupt:
		// Position and bit derive from the firing count alone, so the
		// corruption is reproducible run to run.
		pos := (len(out)/2 + 13*count) % len(out)
		out[pos] ^= 1 << (uint(count) % 8)
	case Truncate:
		// Drop a tail segment; at least one byte always goes.
		cut := len(out)/3 + 1
		out = out[:len(out)-cut]
	}
	return out, true
}

// Stats returns a snapshot of fired-fault counts.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
