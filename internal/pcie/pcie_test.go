package pcie

import (
	"math"
	"testing"
)

func TestDirectionString(t *testing.T) {
	if DeviceToHost.String() != "d2h" || HostToDevice.String() != "h2d" {
		t.Fatal("direction names wrong")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("unknown direction format")
	}
}

func TestNewLinkBandwidths(t *testing.T) {
	l := NewLink(10.6, 11.7)
	if l.Bandwidth(HostToDevice) != 10.6*GB {
		t.Fatalf("h2d = %v", l.Bandwidth(HostToDevice))
	}
	if l.Bandwidth(DeviceToHost) != 11.7*GB {
		t.Fatalf("d2h = %v", l.Bandwidth(DeviceToHost))
	}
}

func TestTransferTime(t *testing.T) {
	l := NewLink(10, 10)
	// 1 GB at 10 GB/s = 0.1 s plus setup.
	got := l.TransferTime(1e9, HostToDevice)
	want := 0.1 + l.SetupLatency
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	if l.TransferTime(0, HostToDevice) != 0 {
		t.Fatal("zero-byte transfer should be free")
	}
	if l.TransferTime(-5, DeviceToHost) != 0 {
		t.Fatal("negative bytes should be free")
	}
}

func TestTransferTimeAsymmetry(t *testing.T) {
	l := NewLink(10.6, 11.7)
	d2h := l.TransferTime(1<<30, DeviceToHost)
	h2d := l.TransferTime(1<<30, HostToDevice)
	if d2h >= h2d {
		t.Fatalf("d2h (%v) should be faster than h2d (%v) on the V100 link", d2h, h2d)
	}
}

func TestMeasureEffectiveBelowConfigured(t *testing.T) {
	l := NewLink(10, 10)
	meas := l.MeasureEffective(64<<20, HostToDevice)
	if meas >= 10*GB {
		t.Fatalf("measured %v should be below configured %v", meas, 10*GB)
	}
	if meas < 9.5*GB {
		t.Fatalf("measured %v unreasonably low for a 64 MB probe", meas)
	}
	if l.MeasureEffective(0, HostToDevice) != 0 {
		t.Fatal("zero probe should measure 0")
	}
}

func TestLargerProbeMeasuresCloserToNominal(t *testing.T) {
	l := NewLink(12, 12)
	small := l.MeasureEffective(1<<20, DeviceToHost)
	large := l.MeasureEffective(1<<30, DeviceToHost)
	if large <= small {
		t.Fatalf("large probe (%v) should measure higher than small (%v)", large, small)
	}
}

func TestFasterLinkGenerations(t *testing.T) {
	v100 := NewLink(10.6, 11.7)
	g4 := Gen4()
	nv := NVLink2()
	if g4.D2H <= v100.D2H || nv.D2H <= g4.D2H {
		t.Fatal("link generations not strictly faster")
	}
	scaled := v100.Scale(2)
	if scaled.D2H != 2*v100.D2H || scaled.H2D != 2*v100.H2D {
		t.Fatal("Scale wrong")
	}
	if scaled.SetupLatency != v100.SetupLatency {
		t.Fatal("Scale must not change setup latency")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive scale")
		}
	}()
	v100.Scale(0)
}

func TestTransferTimeMonotoneInBytes(t *testing.T) {
	l := NewLink(11, 12)
	prev := 0.0
	for bytes := int64(1); bytes < 1<<34; bytes *= 7 {
		got := l.TransferTime(bytes, DeviceToHost)
		if got <= prev {
			t.Fatalf("TransferTime not strictly increasing at %d bytes", bytes)
		}
		prev = got
	}
}
