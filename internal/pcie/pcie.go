// Package pcie models the CPU↔GPU interconnect used for tensor swapping.
// The paper deliberately uses *measured effective* bandwidths rather than
// the PCIe 3.0 ×16 name-tag 16 GB/s ("its effective bandwidth is affected
// by other factors, e.g., memory configurations of CPUs and GPUs",
// Section IV-A), so the link is parameterised by directional effective
// bandwidths plus a small per-transfer setup latency.
package pcie

import "fmt"

// GB is 10⁹ bytes, matching vendor bandwidth units.
const GB = 1e9

// Direction of a transfer across the link.
type Direction int

// Transfer directions.
const (
	DeviceToHost Direction = iota // offload (swap out)
	HostToDevice                  // prefetch (swap in)
)

// String names the direction with the CUDA convention.
func (d Direction) String() string {
	switch d {
	case DeviceToHost:
		return "d2h"
	case HostToDevice:
		return "h2d"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Link is an asymmetric point-to-point interconnect.
type Link struct {
	// H2D and D2H are effective bandwidths in bytes/second.
	H2D, D2H float64
	// SetupLatency is the fixed per-transfer cost in seconds (DMA
	// programming, doorbell, completion interrupt). Measured effective
	// bandwidth curves flatten for large transfers, which this captures.
	SetupLatency float64
}

// NewLink builds a link from effective bandwidths in GB/s.
func NewLink(h2dGBs, d2hGBs float64) Link {
	return Link{H2D: h2dGBs * GB, D2H: d2hGBs * GB, SetupLatency: 10e-6}
}

// Gen4 returns a PCIe 4.0 ×16 link with effective bandwidth twice the
// measured V100 gen3 numbers — the near-future interconnect the paper's
// Section II-C argues still trails GPU compute growth.
func Gen4() Link { return NewLink(21.2, 23.4) }

// NVLink2 returns an NVLink 2.0 CPU-attached link (POWER9-class, ≈45 GB/s
// effective per direction), the fastest host interconnect contemporary
// with the paper.
func NVLink2() Link { return NewLink(45, 45) }

// Scale returns a copy of the link with both bandwidths multiplied by f
// (> 0), for bandwidth-sensitivity sweeps.
func (l Link) Scale(f float64) Link {
	if f <= 0 {
		panic(fmt.Sprintf("pcie: non-positive scale %v", f))
	}
	return Link{H2D: l.H2D * f, D2H: l.D2H * f, SetupLatency: l.SetupLatency}
}

// Bandwidth returns the effective bandwidth for a direction in bytes/s.
func (l Link) Bandwidth(dir Direction) float64 {
	if dir == HostToDevice {
		return l.H2D
	}
	return l.D2H
}

// TransferTime returns the seconds needed to move bytes in the given
// direction. Zero-byte transfers are free (no DMA is issued).
func (l Link) TransferTime(bytes int64, dir Direction) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.SetupLatency + float64(bytes)/l.Bandwidth(dir)
}

// MeasureEffective emulates the NVIDIA bandwidthTest probe the paper runs:
// it reports the apparent bandwidth (bytes/s) observed when moving a probe
// buffer of the given size, which is slightly below the configured
// effective bandwidth because of setup latency. The tensor profiler uses
// this as its "measured" PCIe bandwidth.
func (l Link) MeasureEffective(probeBytes int64, dir Direction) float64 {
	t := l.TransferTime(probeBytes, dir)
	if t == 0 {
		return 0
	}
	return float64(probeBytes) / t
}
