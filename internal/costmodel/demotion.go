package costmodel

import "math"

// DefaultReaccessHalfLife is the idle half-life (seconds) DemotionScore
// assumes when the caller passes no horizon: after 30 idle seconds a
// blob's predicted re-access probability has halved.
const DefaultReaccessHalfLife = 30.0

// DemotionScore ranks candidates for demotion from the pinned-host pool
// into the disk spill tier. It is the expected cost of having to fetch the
// blob back: the compressed/raw ratio (well-compressed blobs are cheap to
// re-read — the cDMA premise applied downward) weighted by a re-access
// prediction that decays with idle time (cold tensors are unlikely to be
// needed soon). Lower scores demote first.
//
// ratio is compressed/raw bytes for the stored blob (1 for raw swaps),
// idleSeconds the time since it was swapped out, and halfLife the idle
// horizon after which the re-access prediction halves (<= 0 selects
// DefaultReaccessHalfLife).
func DemotionScore(ratio, idleSeconds, halfLife float64) float64 {
	if halfLife <= 0 {
		halfLife = DefaultReaccessHalfLife
	}
	if ratio < 0 {
		ratio = 0
	}
	if idleSeconds < 0 {
		idleSeconds = 0
	}
	return ratio * math.Exp2(-idleSeconds/halfLife)
}
