package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// base is a 500 MB tensor at 50 % sparsity on V100-like effective links
// with 10 ms hiding windows and 20 ms total (de)compression — the
// transfer-dominated regime where swapping latency is exposed.
func base() Params {
	return Params{
		SizeBytes: 500 << 20,
		Sparsity:  0.5,
		BWd2h:     11.7e9,
		BWh2d:     10.6e9,
		HiddenF:   0.010,
		HiddenB:   0.010,
		TimeC:     0.012,
		TimeDC:    0.008,
	}
}

func TestUncompressedCostEq1(t *testing.T) {
	p := base()
	size := float64(p.SizeBytes)
	want := (size/p.BWd2h - 0.010) + (size/p.BWh2d - 0.010)
	if got := UncompressedCost(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("T' = %v, want %v", got, want)
	}
}

func TestUncompressedCostFullyHidden(t *testing.T) {
	p := base()
	p.HiddenF, p.HiddenB = 10, 10 // enormous compute windows
	if got := UncompressedCost(p); got != 0 {
		t.Fatalf("fully hidden T' = %v, want 0", got)
	}
}

func TestCompressedCostUsesSparsityApproxByDefault(t *testing.T) {
	p := base()
	csize := float64(p.SizeBytes) * 0.5 // 1 − sparsity
	wantOf := math.Max(csize/p.BWd2h-p.HiddenF, 0)
	wantOb := math.Max(csize/p.BWh2d-p.HiddenB, 0)
	want := p.TimeC + p.TimeDC + wantOf + wantOb
	if got := CompressedCost(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("T = %v, want %v", got, want)
	}
}

func TestCompressedCostWithExplicitRatio(t *testing.T) {
	p := base()
	p.Ratio = 0.53125 // ZVC at 50 %: 0.5 + 1/32
	withRatio := CompressedCost(p)
	p.Ratio = 0
	approx := CompressedCost(p)
	if withRatio <= approx {
		t.Fatal("index overhead should make the ratio-based cost higher")
	}
}

func TestDecideCompressesLargeSparseTensor(t *testing.T) {
	p := base()
	p.Sparsity = 0.8
	d := Decide(p)
	if !d.Compress {
		t.Fatalf("large sparse tensor not compressed: T=%v T'=%v", d.T, d.TPrime)
	}
	if d.Gain() <= 0 {
		t.Fatalf("Gain = %v", d.Gain())
	}
}

func TestDecideSkipsSmallTensor(t *testing.T) {
	// A small tensor's transfer hides entirely; compression only adds
	// kernel time (the paper's ReLU7/ReLU8 case).
	p := base()
	p.SizeBytes = 8 << 20
	d := Decide(p)
	if d.Compress {
		t.Fatalf("small tensor compressed: T=%v T'=%v", d.T, d.TPrime)
	}
	if d.TPrime != 0 {
		t.Fatalf("small tensor T' = %v, want 0 (fully hidden)", d.TPrime)
	}
}

func TestDecideSkipsDenseTensor(t *testing.T) {
	// Low sparsity: compressed size ≈ original, so compression only adds
	// Time_c + Time_dc (the MAX4 case).
	p := base()
	p.Sparsity = 0.05
	p.TimeC, p.TimeDC = 0.030, 0.020
	d := Decide(p)
	if d.Compress {
		t.Fatalf("dense tensor compressed: T=%v T'=%v", d.T, d.TPrime)
	}
}

func TestDecisionMonotoneInSparsity(t *testing.T) {
	// Once compression wins at sparsity s, it must also win at s' > s
	// (all else equal): compressed cost is non-increasing in sparsity.
	p := base()
	prevT := math.Inf(1)
	wasCompress := false
	for s := 0.0; s <= 1.0; s += 0.05 {
		p.Sparsity = s
		d := Decide(p)
		if d.T > prevT+1e-12 {
			t.Fatalf("T increased with sparsity at %v", s)
		}
		prevT = d.T
		if wasCompress && !d.Compress {
			t.Fatalf("decision flipped back to no-compress at sparsity %v", s)
		}
		wasCompress = d.Compress
	}
}

func TestExposedTermsNonNegativeProperty(t *testing.T) {
	f := func(size uint32, sp, hf, hb uint8) bool {
		p := Params{
			SizeBytes: int64(size)%(2<<30) + 1,
			Sparsity:  float64(sp) / 255,
			BWd2h:     11.7e9,
			BWh2d:     10.6e9,
			HiddenF:   float64(hf) / 1000,
			HiddenB:   float64(hb) / 1000,
			TimeC:     0.01,
			TimeDC:    0.01,
		}
		return ExposedForward(p) >= 0 && ExposedBackward(p) >= 0 &&
			UncompressedCost(p) >= 0 && CompressedCost(p) >= p.TimeC+p.TimeDC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedBytesNeverNegative(t *testing.T) {
	p := base()
	p.Ratio = -0.5
	if CompressedCost(p) < p.TimeC+p.TimeDC {
		t.Fatal("negative ratio produced negative transfer cost")
	}
}

func TestGainSymmetry(t *testing.T) {
	p := base()
	p.Sparsity = 0.9
	d := Decide(p)
	if !d.Compress {
		t.Fatal("expected compress")
	}
	if math.Abs(d.Gain()-(d.TPrime-d.T)) > 1e-15 {
		t.Fatal("Gain mismatch for compress decision")
	}
	p.SizeBytes = 1 << 20
	d = Decide(p)
	if d.Compress {
		t.Fatal("expected no-compress")
	}
	if math.Abs(d.Gain()-(d.T-d.TPrime)) > 1e-15 {
		t.Fatal("Gain mismatch for no-compress decision")
	}
}
