package costmodel

import (
	"math"
	"testing"

	"cswap/internal/metrics"
)

func TestDecisionObserveCountsByVerdictAndCodec(t *testing.T) {
	obs := metrics.NewObserver()
	Decision{Compress: true, T: 1, TPrime: 3}.Observe(obs, "ZVC")
	Decision{Compress: true, T: 2, TPrime: 3}.Observe(obs, "ZVC")
	Decision{Compress: false, T: 5, TPrime: 3}.Observe(obs, "LZ4")

	snap := obs.Metrics.Snapshot()
	if v, ok := snap.Counter("costmodel_decisions_total",
		metrics.L("verdict", "compress"), metrics.L("codec", "ZVC")); !ok || v != 2 {
		t.Fatalf("compress/ZVC = %v, %v", v, ok)
	}
	if v, ok := snap.Counter("costmodel_decisions_total",
		metrics.L("verdict", "raw"), metrics.L("codec", "LZ4")); !ok || v != 1 {
		t.Fatalf("raw/LZ4 = %v, %v", v, ok)
	}
	// Gains: (3-1) + (3-2) + (5-3) = 5 across three observations.
	h := obs.Metrics.Histogram("costmodel_predicted_gain_seconds")
	if h.Count() != 3 || math.Abs(h.Sum()-5) > 1e-12 {
		t.Fatalf("gain histogram count=%d sum=%v", h.Count(), h.Sum())
	}

	// Nil observer must be a no-op, not a panic.
	Decision{Compress: true}.Observe(nil, "ZVC")
}

func TestRecordRealizedGuardsBadInputs(t *testing.T) {
	obs := metrics.NewObserver()
	RecordRealized(obs, 1.0, 0)          // no measurement
	RecordRealized(obs, 1.0, -1)         // negative measurement
	RecordRealized(obs, math.NaN(), 1)   // bad prediction
	RecordRealized(obs, math.Inf(1), 1)  // bad prediction
	RecordRealized(obs, 1.0, math.NaN()) // bad measurement
	RecordRealized(nil, 1.0, 1.0)        // nil observer
	if v, _ := obs.Metrics.Snapshot().Counter("costmodel_realized_samples_total"); v != 0 {
		t.Fatalf("guarded inputs recorded %v samples", v)
	}

	RecordRealized(obs, 1.2, 1.0) // 20 % relative error
	RecordRealized(obs, 0.9, 1.0) // 10 % relative error
	snap := obs.Metrics.Snapshot()
	if v, ok := snap.Counter("costmodel_realized_samples_total"); !ok || v != 2 {
		t.Fatalf("realized samples = %v, %v", v, ok)
	}
	h := obs.Metrics.HistogramWith("costmodel_time_error_ratio", errorRatioBuckets())
	if h.Count() != 2 {
		t.Fatalf("error histogram count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.3; math.Abs(got-want) > 1e-9 {
		t.Fatalf("error histogram sum = %v, want %v", got, want)
	}
}
