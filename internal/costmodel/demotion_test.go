package costmodel

import "testing"

func TestDemotionScoreOrdersVictims(t *testing.T) {
	// A well-compressed blob is cheaper to re-fetch than a poorly
	// compressed one at equal temperature: lower score, demotes first.
	if good, bad := DemotionScore(0.1, 10, 0), DemotionScore(0.9, 10, 0); good >= bad {
		t.Fatalf("good compressor should score below bad: %g vs %g", good, bad)
	}
	// A cold blob demotes before a hot one at equal ratio.
	if cold, hot := DemotionScore(0.5, 300, 0), DemotionScore(0.5, 1, 0); cold >= hot {
		t.Fatalf("cold should score below hot: %g vs %g", cold, hot)
	}
	// The half-life is exactly that: prediction halves per horizon.
	fresh, aged := DemotionScore(1, 0, 10), DemotionScore(1, 10, 10)
	if fresh != 1 || aged != 0.5 {
		t.Fatalf("half-life decay: fresh=%g aged=%g, want 1 and 0.5", fresh, aged)
	}
	// Degenerate inputs clamp instead of producing negative or NaN scores.
	if s := DemotionScore(-1, -5, -3); s != 0 {
		t.Fatalf("clamped score = %g, want 0", s)
	}
}
