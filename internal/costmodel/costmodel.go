// Package costmodel implements the swapping-cost model of Section IV-B
// (Equations 1–4). Given a tensor's size, sparsity, the measured effective
// PCIe bandwidths, the hidden (overlappable) forward/backward windows, and
// the predicted (de)compression times, it decides whether compressing the
// tensor for swapping is cost-effective:
//
//	T' = max(Size/BW_d2h − Hidden_f, 0) + max(Size/BW_h2d − Hidden_b, 0)   (Eq. 1)
//	T  = Time_c + Time_dc + O_f + O_b                                      (Eq. 2)
//	O_f = max(CSize/BW_d2h − Hidden_f, 0)                                  (Eq. 3)
//	O_b = max(CSize/BW_h2d − Hidden_b, 0)                                  (Eq. 4)
//
// The paper approximates the compressed size as Size×(1−Sparsity); this
// implementation defaults to that but accepts a codec-specific ratio that
// includes index overhead (compress.EstimateRatio), which is what the CSWAP
// advisor uses.
package costmodel

import (
	"math"

	"cswap/internal/metrics"
)

// Params collects the Table II quantities for one tensor.
type Params struct {
	// SizeBytes is the uncompressed tensor size.
	SizeBytes int64
	// Sparsity is the tensor's zero fraction (refreshed per epoch).
	Sparsity float64
	// BWd2h and BWh2d are the measured effective link bandwidths in
	// bytes/second.
	BWd2h, BWh2d float64
	// HiddenF and HiddenB are the overlappable forward/backward compute
	// windows in seconds.
	HiddenF, HiddenB float64
	// TimeC and TimeDC are the predicted compression and decompression
	// times in seconds.
	TimeC, TimeDC float64
	// Ratio is the predicted compressed/original size. Zero selects the
	// paper's approximation 1−Sparsity.
	Ratio float64
}

func (p Params) compressedBytes() float64 {
	r := p.Ratio
	if r == 0 {
		r = 1 - p.Sparsity
	}
	if r < 0 {
		r = 0
	}
	return float64(p.SizeBytes) * r
}

// UncompressedCost is T′ (Eq. 1): the transfer time that cannot be hidden
// behind DNN propagation when the tensor is swapped raw.
func UncompressedCost(p Params) float64 {
	size := float64(p.SizeBytes)
	of := math.Max(size/p.BWd2h-p.HiddenF, 0)
	ob := math.Max(size/p.BWh2d-p.HiddenB, 0)
	return of + ob
}

// CompressedCost is T (Eq. 2): (de)compression time plus the exposed
// portion of the compressed transfers.
func CompressedCost(p Params) float64 {
	return p.TimeC + p.TimeDC + ExposedForward(p) + ExposedBackward(p)
}

// ExposedForward is O_f (Eq. 3).
func ExposedForward(p Params) float64 {
	return math.Max(p.compressedBytes()/p.BWd2h-p.HiddenF, 0)
}

// ExposedBackward is O_b (Eq. 4).
func ExposedBackward(p Params) float64 {
	return math.Max(p.compressedBytes()/p.BWh2d-p.HiddenB, 0)
}

// Decision is the advisor's verdict for one tensor.
type Decision struct {
	Compress bool
	// T and TPrime are the Eq. 2 / Eq. 1 costs backing the verdict.
	T, TPrime float64
}

// Gain is the predicted saving (seconds) of the chosen action over the
// alternative; negative never occurs since Decide picks the cheaper side.
func (d Decision) Gain() float64 {
	if d.Compress {
		return d.TPrime - d.T
	}
	return d.T - d.TPrime
}

// Decide applies the Section IV-B rule: compress exactly when T′ > T.
func Decide(p Params) Decision {
	t := CompressedCost(p)
	tp := UncompressedCost(p)
	return Decision{Compress: tp > t, T: t, TPrime: tp}
}

// Verdict is the decision's label value ("compress" or "raw") in the
// costmodel_decisions_total series.
func (d Decision) Verdict() string {
	if d.Compress {
		return "compress"
	}
	return "raw"
}

// Observe records the verdict into the observer's registry: a decision
// counter labeled by verdict and the chosen codec, and the predicted gain
// of taking the cheaper side. A nil observer records nothing.
func (d Decision) Observe(o *metrics.Observer, codec string) {
	r := o.Reg()
	if r == nil {
		return
	}
	r.Counter("costmodel_decisions_total",
		metrics.L("verdict", d.Verdict()), metrics.L("codec", codec)).Inc()
	r.Histogram("costmodel_predicted_gain_seconds").Observe(d.Gain())
}

// RecordRealized feeds back a measured swap cost against the predicted one
// (Eq. 2's T when compressing, Eq. 1's T′ when not), recording the
// relative prediction error — the quantity behind the paper's Figure 11
// decision-accuracy claim. Non-positive or non-finite realized values are
// dropped (no measurement to compare against).
func RecordRealized(o *metrics.Observer, predicted, realized float64) {
	r := o.Reg()
	if r == nil || realized <= 0 || math.IsNaN(predicted) || math.IsInf(predicted, 0) || math.IsNaN(realized) || math.IsInf(realized, 0) {
		return
	}
	r.HistogramWith("costmodel_time_error_ratio", errorRatioBuckets()).
		Observe(math.Abs(predicted-realized) / realized)
	r.Counter("costmodel_realized_samples_total").Inc()
}

// errorRatioBuckets spans 0.1 % to ~400 % relative error.
func errorRatioBuckets() []float64 { return metrics.ExpBuckets(0.001, 2, 12) }
