package sched

import (
	"context"
	"time"
)

// Hint carries a request's scheduling intent — the lane it was admitted
// on and its absolute deadline (zero = none) — across API layers that
// should not grow lane/deadline parameters. The server attaches it to the
// request context after admission; the executor reads it to decide
// whether a batch is sheddable and to label its own sched metrics.
type Hint struct {
	Lane     Lane
	Deadline time.Time
}

type hintKey struct{}

// WithHint returns a context carrying h.
func WithHint(ctx context.Context, h Hint) context.Context {
	return context.WithValue(ctx, hintKey{}, h)
}

// HintFrom extracts the hint, reporting whether one was attached.
func HintFrom(ctx context.Context) (Hint, bool) {
	h, ok := ctx.Value(hintKey{}).(Hint)
	return h, ok
}
