package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cswap/internal/metrics"
)

func newTest(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitDepth spins until lane's queue reaches n (waiters enqueue from
// goroutines; the tests need to observe the queue before releasing).
func waitDepth(t *testing.T, s *Scheduler, lane Lane, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Depth(lane) != n {
		if time.Now().After(deadline) {
			t.Fatalf("lane %s never reached depth %d (at %d)", lane, n, s.Depth(lane))
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestLaneSpelling(t *testing.T) {
	want := map[Lane]string{LaneCritical: "critical", LaneNormal: "normal", LaneSpeculative: "speculative"}
	for l, s := range want {
		if l.String() != s || !l.Valid() {
			t.Errorf("lane %d: String=%q Valid=%v", uint8(l), l.String(), l.Valid())
		}
	}
	if Lane(7).Valid() {
		t.Error("lane 7 should be invalid")
	}
}

func TestNewRejectsZeroSlots(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for zero slots")
	}
}

func TestFastPathAndRelease(t *testing.T) {
	s := newTest(t, Config{Slots: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := s.Acquire(ctx, LaneNormal, time.Time{}); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := s.Acquire(cctx, LaneNormal, time.Time{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("third acquire: want DeadlineExceeded, got %v", err)
	}
	s.Release()
	if err := s.Acquire(ctx, LaneNormal, time.Time{}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := newTest(t, Config{Slots: 1})
	ctx := context.Background()
	if err := s.Acquire(ctx, LaneNormal, time.Time{}); err != nil {
		t.Fatal(err)
	}
	order := make(chan Lane, 3)
	var wg sync.WaitGroup
	start := func(l Lane) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(ctx, l, time.Time{}); err != nil {
				t.Errorf("lane %s: %v", l, err)
				return
			}
			order <- l
			s.Release()
		}()
		waitDepth(t, s, l, 1)
	}
	// Enqueue lowest priority first so the grant order can only come
	// from lane priority, not arrival order.
	start(LaneSpeculative)
	start(LaneNormal)
	start(LaneCritical)
	s.Release()
	wg.Wait()
	close(order)
	var got []Lane
	for l := range order {
		got = append(got, l)
	}
	want := []Lane{LaneCritical, LaneNormal, LaneSpeculative}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

func TestEDFWithinLane(t *testing.T) {
	s := newTest(t, Config{Slots: 1})
	ctx := context.Background()
	if err := s.Acquire(ctx, LaneNormal, time.Time{}); err != nil {
		t.Fatal(err)
	}
	type tagged struct {
		tag      string
		deadline time.Time
	}
	far := time.Now().Add(time.Hour)
	near := time.Now().Add(time.Minute)
	order := make(chan string, 3)
	var wg sync.WaitGroup
	for i, c := range []tagged{{"far", far}, {"near", near}, {"none", time.Time{}}} {
		wg.Add(1)
		go func(c tagged) {
			defer wg.Done()
			if err := s.Acquire(ctx, LaneNormal, c.deadline); err != nil {
				t.Errorf("%s: %v", c.tag, err)
				return
			}
			order <- c.tag
			s.Release()
		}(c)
		waitDepth(t, s, LaneNormal, i+1)
	}
	s.Release()
	wg.Wait()
	close(order)
	var got []string
	for tag := range order {
		got = append(got, tag)
	}
	want := []string{"near", "far", "none"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EDF order %v, want %v", got, want)
		}
	}
}

func TestExpiry(t *testing.T) {
	r := metrics.NewRegistry()
	s := newTest(t, Config{Slots: 1, Metrics: r, Prefix: "test"})
	ctx := context.Background()
	if err := s.Acquire(ctx, LaneCritical, time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Already expired on arrival: refuse without queueing.
	if err := s.Acquire(ctx, LaneCritical, time.Now().Add(-time.Second)); !errors.Is(err, ErrExpired) {
		t.Fatalf("pre-expired: want ErrExpired, got %v", err)
	}
	// Expires while queued.
	startT := time.Now()
	err := s.Acquire(ctx, LaneCritical, time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("queued: want ErrExpired, got %v", err)
	}
	if waited := time.Since(startT); waited < 20*time.Millisecond {
		t.Fatalf("expired after only %v; should have waited the deadline out", waited)
	}
	if s.Depth(LaneCritical) != 0 {
		t.Fatalf("expired waiter left in queue (depth %d)", s.Depth(LaneCritical))
	}
	if v, ok := r.Snapshot().Counter("test_sched_expiries_total", metrics.L("lane", "critical")); !ok || v != 2 {
		t.Fatalf("expiries counter = %v (ok=%v), want 2", v, ok)
	}
	// The slot was not leaked: release frees it for a fresh acquire.
	s.Release()
	if err := s.Acquire(ctx, LaneNormal, time.Time{}); err != nil {
		t.Fatalf("after expiries: %v", err)
	}
}

func TestLaneFull(t *testing.T) {
	var depths [NumLanes]int
	depths[LaneNormal] = 2
	s := newTest(t, Config{Slots: 1, LaneDepth: depths})
	ctx := context.Background()
	if err := s.Acquire(ctx, LaneNormal, time.Time{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		go s.Acquire(ctx, LaneNormal, time.Time{}) //nolint:errcheck
		waitDepth(t, s, LaneNormal, i+1)
	}
	if err := s.Acquire(ctx, LaneNormal, time.Time{}); !errors.Is(err, ErrLaneFull) {
		t.Fatalf("want ErrLaneFull, got %v", err)
	}
	// Other lanes have their own depth budget.
	go s.Acquire(ctx, LaneCritical, time.Time{}) //nolint:errcheck
	waitDepth(t, s, LaneCritical, 1)
	s.Release()
	s.Release()
	s.Release()
	s.Release()
}

func TestContextCancelRequeues(t *testing.T) {
	s := newTest(t, Config{Slots: 1})
	if err := s.Acquire(context.Background(), LaneNormal, time.Time{}); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(cctx, LaneNormal, time.Time{}) }()
	waitDepth(t, s, LaneNormal, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if s.Depth(LaneNormal) != 0 {
		t.Fatalf("canceled waiter left queued")
	}
	s.Release()
	if err := s.Acquire(context.Background(), LaneNormal, time.Time{}); err != nil {
		t.Fatalf("slot leaked by cancel: %v", err)
	}
}

func TestCloseFailsWaiters(t *testing.T) {
	s := newTest(t, Config{Slots: 1})
	if err := s.Acquire(context.Background(), LaneNormal, time.Time{}); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(context.Background(), LaneSpeculative, time.Time{}) }()
	waitDepth(t, s, LaneSpeculative, 1)
	s.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued waiter: want ErrClosed, got %v", err)
	}
	if err := s.Acquire(context.Background(), LaneNormal, time.Time{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close acquire: want ErrClosed, got %v", err)
	}
}

func TestShouldShed(t *testing.T) {
	s := newTest(t, Config{Slots: 1, StarveAfter: 5 * time.Millisecond})
	ctx := context.Background()
	if err := s.Acquire(ctx, LaneSpeculative, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if s.ShouldShed(LaneSpeculative) {
		t.Fatal("shed with empty critical lane")
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Acquire(ctx, LaneCritical, time.Time{}) }()
	waitDepth(t, s, LaneCritical, 1)
	time.Sleep(15 * time.Millisecond)
	if !s.ShouldShed(LaneSpeculative) {
		t.Fatal("no shed signal with critical waiter starved past threshold")
	}
	if s.ShouldShed(LaneCritical) || s.ShouldShed(LaneNormal) {
		t.Fatal("only speculative work sheds")
	}
	s.Release()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if s.ShouldShed(LaneSpeculative) {
		t.Fatal("shed signal stuck after critical waiter was granted")
	}
	s.Release()
}

// TestStarvationUnderSpeculativeLoad is the scheduler-level starvation
// test: a saturating stream of speculative acquisitions must not starve
// concurrent critical requests — every critical acquire admits before its
// deadline (zero expiries) and the critical queue wait stays bounded.
// Run under -race via `make race`.
func TestStarvationUnderSpeculativeLoad(t *testing.T) {
	s := newTest(t, Config{Slots: 4, StarveAfter: time.Millisecond})
	ctx := context.Background()
	stop := make(chan struct{})
	var specOps atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Acquire(ctx, LaneSpeculative, time.Time{}); err != nil {
					if !errors.Is(err, ErrLaneFull) {
						t.Errorf("speculative acquire: %v", err)
					}
					continue
				}
				specOps.Add(1)
				time.Sleep(200 * time.Microsecond) // hold the slot: "in-flight prefetch"
				s.Release()
			}
		}()
	}

	const criticals = 64
	waits := make([]time.Duration, criticals)
	var expiries atomic.Int64
	var cwg sync.WaitGroup
	for i := 0; i < criticals; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			startT := time.Now()
			err := s.Acquire(ctx, LaneCritical, startT.Add(2*time.Second))
			if err != nil {
				expiries.Add(1)
				t.Errorf("critical %d: %v", i, err)
				return
			}
			waits[i] = time.Since(startT)
			time.Sleep(100 * time.Microsecond)
			s.Release()
		}(i)
		time.Sleep(500 * time.Microsecond)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	if n := expiries.Load(); n != 0 {
		t.Fatalf("%d critical expiries under speculative load, want 0", n)
	}
	if specOps.Load() == 0 {
		t.Fatal("speculative stream never ran; the test exercised nothing")
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	p99 := waits[criticals*99/100]
	if p99 > time.Second {
		t.Fatalf("critical p99 queue wait %v; starvation bound blown", p99)
	}
}

func TestHintRoundTrip(t *testing.T) {
	if _, ok := HintFrom(context.Background()); ok {
		t.Fatal("hint from bare context")
	}
	want := Hint{Lane: LaneCritical, Deadline: time.Unix(1000, 0)}
	got, ok := HintFrom(WithHint(context.Background(), want))
	if !ok || got != want {
		t.Fatalf("hint round trip: got %+v ok=%v", got, ok)
	}
}
