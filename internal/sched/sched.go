// Package sched is the SLO-aware admission scheduler: a small-N
// priority-lane queue that decides which swap requests get the service's
// bounded concurrency slots, and in what order. It sits between the
// server's refuse-don't-queue admission layers and the executor's async
// gate — the one place in the stack where *waiting* is allowed, so the
// wait has to be principled:
//
//   - Three lanes, strictly prioritized: LaneCritical (decode-blocking
//     swap-ins) ahead of LaneNormal (ordinary swaps) ahead of
//     LaneSpeculative (prefetch, read-ahead). A freed slot always goes to
//     the highest non-empty lane.
//   - Earliest-deadline-first within a lane: each request may carry a
//     deadline hint (from the wire frame's sched extension); among queued
//     requests of equal priority the tightest deadline runs first, and
//     requests without a deadline order behind all deadlined ones, FIFO.
//   - Bounded depth per lane: a full lane refuses immediately (ErrLaneFull
//     → the server's 429/Retry-After taxonomy) rather than queueing
//     unboundedly. The scheduler converts the admission window from
//     refuse-don't-queue into refuse-or-bounded-queue without giving up
//     the "no hidden unbounded buffers" property.
//   - Expiry: a queued request whose deadline passes is answered
//     (ErrExpired → 429 with code "expired") instead of occupying a slot
//     on work whose SLO is already lost.
//   - Starvation signal: ShouldShed reports whether speculative work
//     should yield because a critical request has been queued past the
//     starvation threshold. The executor consults it at run boundaries to
//     shed in-flight speculative batches (DESIGN.md §16).
//
// The scheduler is deliberately ignorant of HTTP, frames, and the
// executor: it hands out slots and errors, and carries lane/deadline
// hints across API layers via a context carrier (WithHint/HintFrom) so
// executor signatures stay unchanged.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cswap/internal/metrics"
)

// Lane is a priority class. Lower values are higher priority; the wire
// protocol carries the lane as this byte value (see wire's sched
// extension), so the constants are part of the protocol surface.
type Lane uint8

const (
	// LaneCritical is for latency-SLO-bound work: decode-blocking
	// swap-ins whose stall is exposed to an end user.
	LaneCritical Lane = iota
	// LaneNormal is the default for swaps that carry no hint.
	LaneNormal
	// LaneSpeculative is for work that is useful but optional right now:
	// prefetch and read-ahead. It runs only when nothing above it waits,
	// and is the only lane the executor will shed mid-batch.
	LaneSpeculative
	// NumLanes bounds the lane space; wire and flag parsing validate
	// against it.
	NumLanes = 3
)

// String returns the metric-label spelling of the lane.
func (l Lane) String() string {
	switch l {
	case LaneCritical:
		return "critical"
	case LaneNormal:
		return "normal"
	case LaneSpeculative:
		return "speculative"
	}
	return fmt.Sprintf("lane-%d", uint8(l))
}

// Valid reports whether l is one of the defined lanes.
func (l Lane) Valid() bool { return l < NumLanes }

// Defaults. DefaultLaneDepth bounds each lane's queue; DefaultStarveAfter
// is how long a critical request may sit queued before speculative work
// is asked to yield.
const (
	DefaultLaneDepth   = 64
	DefaultStarveAfter = 20 * time.Millisecond
)

// Sentinel errors. ErrExpired and ErrLaneFull are admission refusals (the
// server maps them onto its 429 taxonomy); ErrClosed means the scheduler
// is shutting down.
var (
	ErrExpired  = errors.New("sched: deadline expired while queued")
	ErrLaneFull = errors.New("sched: lane queue full")
	ErrClosed   = errors.New("sched: scheduler closed")
)

// Config configures a Scheduler.
type Config struct {
	// Slots is the number of concurrently admitted requests — the same
	// bound the plain admission window enforced. Required, > 0.
	Slots int
	// LaneDepth bounds each lane's queue; a zero entry takes
	// DefaultLaneDepth.
	LaneDepth [NumLanes]int
	// StarveAfter is the critical-lane queue age past which ShouldShed
	// tells speculative work to yield. Zero takes DefaultStarveAfter.
	StarveAfter time.Duration
	// Metrics receives the sched series; nil disables them. Prefix
	// prepends a component name ("server", "executor") so the series
	// land as e.g. server_sched_admits_total.
	Metrics *metrics.Registry
	Prefix  string
}

// waiter is one queued Acquire. grant is buffered so Release never blocks
// handing a slot to a waiter that is concurrently timing out; the
// index/grant handshake under the scheduler mutex decides who owns the
// slot (see abandon).
type waiter struct {
	lane     Lane
	deadline time.Time // zero = no deadline (orders after all deadlined)
	seq      uint64
	enqueued time.Time
	grant    chan struct{}
	err      error // written under mu before the grant send; nil = token carries a slot
	index    int   // heap index; -1 once popped or removed
}

// laneHeap orders waiters earliest-deadline-first; no-deadline waiters
// sort after every deadlined one, FIFO among themselves by sequence.
type laneHeap []*waiter

func (h laneHeap) Len() int { return len(h) }
func (h laneHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	switch {
	case a.deadline.IsZero() != b.deadline.IsZero():
		return !a.deadline.IsZero()
	case !a.deadline.IsZero() && !a.deadline.Equal(b.deadline):
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}
func (h laneHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *laneHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *laneHeap) Pop() any {
	old := *h
	w := old[len(old)-1]
	old[len(old)-1] = nil
	w.index = -1
	*h = old[:len(old)-1]
	return w
}

// instruments are the scheduler's metric cells; all nil-safe.
type instruments struct {
	depth    [NumLanes]*metrics.Gauge
	admits   [NumLanes]*metrics.Counter
	expiries [NumLanes]*metrics.Counter
	rejects  [NumLanes]*metrics.Counter
	preempts *metrics.Counter
	wait     [NumLanes]*metrics.Histogram
}

// Scheduler hands out admission slots by lane priority and deadline.
type Scheduler struct {
	mu     sync.Mutex
	free   int
	seq    uint64
	lanes  [NumLanes]laneHeap
	depth  [NumLanes]int
	starve time.Duration
	closed bool
	ins    instruments
}

// New builds a scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("sched: Slots must be positive, got %d", cfg.Slots)
	}
	s := &Scheduler{free: cfg.Slots, starve: cfg.StarveAfter}
	if s.starve <= 0 {
		s.starve = DefaultStarveAfter
	}
	for l := range s.depth {
		s.depth[l] = cfg.LaneDepth[l]
		if s.depth[l] <= 0 {
			s.depth[l] = DefaultLaneDepth
		}
	}
	name := func(suffix string) string {
		if cfg.Prefix == "" {
			return "sched_" + suffix
		}
		return cfg.Prefix + "_sched_" + suffix
	}
	r := cfg.Metrics // nil registry hands out nil (no-op) instruments
	for l := Lane(0); l < NumLanes; l++ {
		lab := metrics.L("lane", l.String())
		s.ins.depth[l] = r.Gauge(name("depth"), lab)
		s.ins.admits[l] = r.Counter(name("admits_total"), lab)
		s.ins.expiries[l] = r.Counter(name("expiries_total"), lab)
		s.ins.rejects[l] = r.Counter(name("rejects_total"), lab)
		s.ins.wait[l] = r.HistogramWith(name("queue_wait_seconds"), metrics.ExpBuckets(1e-5, 10, 8), lab)
	}
	s.ins.preempts = r.Counter(name("preemptions_total"))
	return s, nil
}

// Acquire claims one slot for lane, waiting in the lane's bounded queue if
// none is free. A zero deadline means none. It returns nil once the slot
// is owned (pair with Release), ErrLaneFull without queueing when the lane
// is at depth, ErrExpired when the deadline passes while queued (or had
// already passed on arrival), the context error if ctx ends first, and
// ErrClosed during shutdown.
func (s *Scheduler) Acquire(ctx context.Context, lane Lane, deadline time.Time) error {
	if !lane.Valid() {
		return fmt.Errorf("sched: invalid lane %d", uint8(lane))
	}
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !deadline.IsZero() && !deadline.After(now) {
		s.ins.expiries[lane].Inc()
		s.mu.Unlock()
		return ErrExpired
	}
	// Fast path: a free slot and nobody of this or higher priority
	// queued ahead (waiters below this lane keep waiting — priority is
	// strict, not fair).
	if s.free > 0 && !s.queuedThroughLocked(lane) {
		s.free--
		s.ins.admits[lane].Inc()
		s.ins.wait[lane].Observe(0)
		s.mu.Unlock()
		return nil
	}
	if len(s.lanes[lane]) >= s.depth[lane] {
		s.ins.rejects[lane].Inc()
		s.mu.Unlock()
		return ErrLaneFull
	}
	s.seq++
	w := &waiter{
		lane:     lane,
		deadline: deadline,
		seq:      s.seq,
		enqueued: now,
		grant:    make(chan struct{}, 1),
	}
	heap.Push(&s.lanes[lane], w)
	s.ins.depth[lane].Set(float64(len(s.lanes[lane])))
	s.mu.Unlock()

	var expire <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-w.grant:
		// w.err is written under mu before the send, so the channel
		// receive orders this read after it.
		if w.err != nil {
			return w.err
		}
		s.ins.admits[lane].Inc()
		s.ins.wait[lane].Observe(time.Since(w.enqueued).Seconds())
		return nil
	case <-ctx.Done():
		return s.abandon(w, ctx.Err())
	case <-expire:
		return s.abandon(w, ErrExpired)
	}
}

// queuedThroughLocked reports whether any waiter is queued in lane or a
// higher-priority lane.
func (s *Scheduler) queuedThroughLocked(lane Lane) bool {
	for l := Lane(0); l <= lane; l++ {
		if len(s.lanes[l]) > 0 {
			return true
		}
	}
	return false
}

// abandon resolves a waiter that stopped waiting (context end or deadline
// expiry). If the waiter is still queued it is simply removed; if Release
// already granted it the slot (the index/grant race), the slot is passed
// on so it is not leaked.
func (s *Scheduler) abandon(w *waiter, cause error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(cause, ErrExpired) {
		s.ins.expiries[w.lane].Inc()
	}
	if w.index >= 0 {
		heap.Remove(&s.lanes[w.lane], w.index)
		s.ins.depth[w.lane].Set(float64(len(s.lanes[w.lane])))
		return cause
	}
	// Already popped: under mu, index == -1 implies the token is in the
	// channel (or Acquire consumed it and never got here). Reclaim it;
	// if it carried a slot, pass the slot on rather than leak it.
	select {
	case <-w.grant:
		if w.err == nil {
			s.releaseLocked()
		}
	default:
	}
	return cause
}

// Release returns a slot; the highest-priority queued waiter (EDF within
// its lane) is granted it, or the free count grows.
func (s *Scheduler) Release() {
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
}

func (s *Scheduler) releaseLocked() {
	for l := Lane(0); l < NumLanes; l++ {
		if len(s.lanes[l]) == 0 {
			continue
		}
		w := heap.Pop(&s.lanes[l]).(*waiter)
		s.ins.depth[l].Set(float64(len(s.lanes[l])))
		w.grant <- struct{}{}
		return
	}
	s.free++
}

// ShouldShed reports whether work admitted on lane should yield its
// remaining slot time: true only for LaneSpeculative, and only while some
// critical request has been queued longer than the starvation threshold.
// The executor consults it between runs of a speculative batch.
func (s *Scheduler) ShouldShed(lane Lane) bool {
	if lane != LaneSpeculative {
		return false
	}
	cutoff := time.Now().Add(-s.starve)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.lanes[LaneCritical] {
		if w.enqueued.Before(cutoff) {
			return true
		}
	}
	return false
}

// Preempted records that in-flight work was shed in favor of a starved
// critical request (the executor calls it once per shed batch).
func (s *Scheduler) Preempted() { s.ins.preempts.Inc() }

// Depth returns how many requests are queued in lane (not counting
// admitted ones).
func (s *Scheduler) Depth(lane Lane) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !lane.Valid() {
		return 0
	}
	return len(s.lanes[lane])
}

// Close fails all queued waiters with ErrClosed and makes further
// Acquires refuse. Admitted slots may still Release afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for l := Lane(0); l < NumLanes; l++ {
		for len(s.lanes[l]) > 0 {
			w := heap.Pop(&s.lanes[l]).(*waiter)
			w.err = ErrClosed
			w.grant <- struct{}{} // slot-less token: Acquire returns w.err
		}
		s.ins.depth[l].Set(0)
	}
}
