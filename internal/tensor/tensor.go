// Package tensor provides the dense float32 tensor representation used by
// the CSWAP compression codecs and the synthetic tensor generator from the
// paper (Section IV-C): "we develop a synthetic tensor generator which can
// output tensors of different size and sparsity".
//
// Tensors here are flat float32 buffers with an optional logical shape. DNN
// feature maps in the swapping path are treated as opaque byte streams by
// the codecs, so the flat view is the primary one.
package tensor

import (
	"fmt"
	"math/rand"

	"cswap/internal/stats"
)

// BytesPerElement is the size of one tensor element (float32).
const BytesPerElement = 4

// Tensor is a dense float32 tensor. Data is the flat row-major buffer;
// Shape, when non-empty, records the logical dimensions (its product must
// equal len(Data)).
type Tensor struct {
	Data  []float32
	Shape []int
}

// New returns a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Data: make([]float32, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a 1-D tensor without copying.
func FromSlice(data []float32) *Tensor {
	return &Tensor{Data: data, Shape: []int{len(data)}}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// SizeBytes returns the in-memory footprint of the raw data in bytes.
func (t *Tensor) SizeBytes() int { return len(t.Data) * BytesPerElement }

// Sparsity returns the fraction of exactly-zero elements, the quantity the
// paper tracks per layer per epoch (Figure 1). An empty tensor has sparsity 0.
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(t.Data))
}

// CountNonZero returns the number of non-zero elements.
func (t *Tensor) CountNonZero() int {
	nz := 0
	for _, v := range t.Data {
		if v != 0 {
			nz++
		}
	}
	return nz
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	cp := &Tensor{
		Data:  append([]float32(nil), t.Data...),
		Shape: append([]int(nil), t.Shape...),
	}
	return cp
}

// Equal reports whether two tensors hold bit-identical data. Shapes are not
// compared: the swapping path only round-trips the flat buffer.
func (t *Tensor) Equal(o *Tensor) bool {
	if len(t.Data) != len(o.Data) {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Generator produces synthetic sparse tensors of controlled size and
// sparsity, mimicking ReLU/MAX layer outputs: non-negative activations with
// exact zeros at the requested density. It is deterministic for a given
// seed.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a deterministic synthetic tensor generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: stats.NewRNG(seed)}
}

// Uniform returns a tensor with n elements where each element is zero with
// probability sparsity and otherwise a positive activation value. The
// realized sparsity concentrates tightly around the target for large n.
func (g *Generator) Uniform(n int, sparsity float64) *Tensor {
	if sparsity < 0 || sparsity > 1 {
		panic(fmt.Sprintf("tensor: sparsity %v out of [0,1]", sparsity))
	}
	t := &Tensor{Data: make([]float32, n), Shape: []int{n}}
	for i := range t.Data {
		if g.rng.Float64() >= sparsity {
			// ReLU outputs are non-negative; keep values in a small
			// positive range typical of normalized activations.
			t.Data[i] = float32(g.rng.Float64()*4 + 1e-3)
		}
	}
	return t
}

// Runs returns a tensor whose zeros appear in contiguous runs with the given
// mean run length, at the target overall sparsity. Run-structured zeros are
// the favourable case for RLE and the adversarial case for per-element
// schemes, so codec tests and benchmarks use both layouts.
func (g *Generator) Runs(n int, sparsity float64, meanRun int) *Tensor {
	if meanRun < 1 {
		meanRun = 1
	}
	t := &Tensor{Data: make([]float32, n), Shape: []int{n}}
	i := 0
	for i < n {
		// Alternate a zero run and a non-zero run whose expected lengths
		// keep the global zero fraction at the target sparsity.
		zeroLen := 1 + g.rng.Intn(2*meanRun)
		var nonZeroLen int
		if sparsity > 0 {
			nonZeroLen = int(float64(zeroLen) * (1 - sparsity) / sparsity)
		} else {
			zeroLen = 0
			nonZeroLen = n - i
		}
		if nonZeroLen < 1 && sparsity < 1 {
			nonZeroLen = 1
		}
		for j := 0; j < zeroLen && i < n; j++ {
			t.Data[i] = 0
			i++
		}
		for j := 0; j < nonZeroLen && i < n; j++ {
			t.Data[i] = float32(g.rng.Float64()*4 + 1e-3)
			i++
		}
	}
	return t
}

// SizedUniform returns a tensor of approximately sizeBytes bytes at the
// target sparsity; this matches the paper's synthetic training-sample
// protocol (size 20 MB–2000 MB, sparsity 20–90 %). The element count is
// rounded down to a multiple of 32 so ZVC bitmap words are always full.
func (g *Generator) SizedUniform(sizeBytes int, sparsity float64) *Tensor {
	n := sizeBytes / BytesPerElement
	if n < 32 {
		n = 32
	}
	n -= n % 32
	return g.Uniform(n, sparsity)
}

// ChannelSparse returns a tensor of `channels` equal-length channels where
// each whole channel is zero with probability channelSparsity — the
// structured sparsity that BN+ReLU dead channels produce. Block-structured
// zeros are the favourable layout for run-length style codecs.
func (g *Generator) ChannelSparse(n, channels int, channelSparsity float64) *Tensor {
	if channels < 1 {
		channels = 1
	}
	t := &Tensor{Data: make([]float32, n), Shape: []int{channels, (n + channels - 1) / channels}}
	per := (n + channels - 1) / channels
	for c := 0; c < channels; c++ {
		dead := g.rng.Float64() < channelSparsity
		lo, hi := c*per, (c+1)*per
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if dead {
				t.Data[i] = 0
			} else {
				t.Data[i] = float32(g.rng.Float64()*4 + 1e-3)
			}
		}
	}
	return t
}
