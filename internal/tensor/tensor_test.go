package tensor

import (
	"math"
	"testing"
)

func TestNewShapeAndSize(t *testing.T) {
	tn := New(2, 3, 4)
	if tn.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tn.Len())
	}
	if tn.SizeBytes() != 96 {
		t.Fatalf("SizeBytes = %d, want 96", tn.SizeBytes())
	}
	if tn.Sparsity() != 1 {
		t.Fatalf("zero tensor sparsity = %v, want 1", tn.Sparsity())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimension")
		}
	}()
	New(3, 0)
}

func TestSparsityCounts(t *testing.T) {
	tn := FromSlice([]float32{0, 1, 0, 2, 0, 0, 3, 0})
	if got := tn.Sparsity(); got != 5.0/8 {
		t.Fatalf("Sparsity = %v, want 0.625", got)
	}
	if got := tn.CountNonZero(); got != 3 {
		t.Fatalf("CountNonZero = %d, want 3", got)
	}
	if got := (&Tensor{}).Sparsity(); got != 0 {
		t.Fatalf("empty tensor sparsity = %v, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float32{1, 2})
	b := FromSlice([]float32{1, 2, 3})
	if a.Equal(b) {
		t.Fatal("tensors of different length reported Equal")
	}
	c := FromSlice([]float32{1, 3})
	if a.Equal(c) {
		t.Fatal("different data reported Equal")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(1).Uniform(1000, 0.5)
	b := NewGenerator(1).Uniform(1000, 0.5)
	if !a.Equal(b) {
		t.Fatal("same seed produced different tensors")
	}
	c := NewGenerator(2).Uniform(1000, 0.5)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical tensors")
	}
}

func TestGeneratorUniformSparsityTargets(t *testing.T) {
	g := NewGenerator(42)
	for _, s := range []float64{0, 0.2, 0.5, 0.8, 1} {
		tn := g.Uniform(200000, s)
		if got := tn.Sparsity(); math.Abs(got-s) > 0.01 {
			t.Errorf("target sparsity %v, got %v", s, got)
		}
	}
}

func TestGeneratorUniformNonNegative(t *testing.T) {
	tn := NewGenerator(3).Uniform(10000, 0.5)
	for _, v := range tn.Data {
		if v < 0 {
			t.Fatalf("activation %v is negative; ReLU outputs are non-negative", v)
		}
	}
}

func TestGeneratorPanicsOnBadSparsity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for sparsity > 1")
		}
	}()
	NewGenerator(1).Uniform(10, 1.5)
}

func TestGeneratorRunsSparsityAndStructure(t *testing.T) {
	g := NewGenerator(7)
	tn := g.Runs(100000, 0.6, 16)
	s := tn.Sparsity()
	if math.Abs(s-0.6) > 0.08 {
		t.Fatalf("runs sparsity = %v, want ≈0.6", s)
	}
	// Run-structured data must have far fewer zero runs than i.i.d. data
	// at the same sparsity (≈ n·s·(1−s) runs for i.i.d.).
	runs := 0
	inZero := false
	for _, v := range tn.Data {
		if v == 0 && !inZero {
			runs++
			inZero = true
		} else if v != 0 {
			inZero = false
		}
	}
	iid := int(float64(tn.Len()) * s * (1 - s))
	if runs >= iid/2 {
		t.Fatalf("run-structured tensor has %d zero runs, i.i.d. would have ≈%d", runs, iid)
	}
}

func TestGeneratorRunsExtremes(t *testing.T) {
	g := NewGenerator(9)
	dense := g.Runs(1000, 0, 8)
	if got := dense.Sparsity(); got != 0 {
		t.Errorf("sparsity-0 runs tensor has sparsity %v", got)
	}
	if dense.Len() != 1000 {
		t.Errorf("len = %d, want 1000", dense.Len())
	}
}

func TestSizedUniform(t *testing.T) {
	g := NewGenerator(5)
	tn := g.SizedUniform(1<<20, 0.5)
	if tn.SizeBytes() > 1<<20 || tn.SizeBytes() < (1<<20)-128 {
		t.Fatalf("SizedUniform bytes = %d, want ≈%d", tn.SizeBytes(), 1<<20)
	}
	if tn.Len()%32 != 0 {
		t.Fatalf("element count %d not 32-aligned", tn.Len())
	}
	tiny := g.SizedUniform(10, 0.5)
	if tiny.Len() != 32 {
		t.Fatalf("minimum tensor length = %d, want 32", tiny.Len())
	}
}

func TestChannelSparseStructure(t *testing.T) {
	g := NewGenerator(21)
	tn := g.ChannelSparse(64000, 64, 0.5)
	if tn.Len() != 64000 {
		t.Fatalf("len = %d", tn.Len())
	}
	// Each channel must be entirely zero or entirely non-zero.
	per := 1000
	dead := 0
	for c := 0; c < 64; c++ {
		zeros := 0
		for i := c * per; i < (c+1)*per; i++ {
			if tn.Data[i] == 0 {
				zeros++
			}
		}
		if zeros != 0 && zeros != per {
			t.Fatalf("channel %d partially zero (%d of %d)", c, zeros, per)
		}
		if zeros == per {
			dead++
		}
	}
	if dead < 20 || dead > 44 {
		t.Fatalf("dead channels = %d, want ≈32", dead)
	}
	// Degenerate channel count clamps.
	if g.ChannelSparse(100, 0, 0.5).Len() != 100 {
		t.Fatal("channel clamp failed")
	}
}
