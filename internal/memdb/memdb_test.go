package memdb

import (
	"fmt"
	"sync"
	"testing"
)

type rec struct {
	A int
	B string
}

func TestPutGetRoundTrip(t *testing.T) {
	db := New()
	if err := db.Put("k", rec{A: 7, B: "x"}); err != nil {
		t.Fatal(err)
	}
	var out rec
	ok, err := db.Get("k", &out)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if out.A != 7 || out.B != "x" {
		t.Fatalf("out = %+v", out)
	}
}

func TestGetMissingKey(t *testing.T) {
	db := New()
	var out rec
	ok, err := db.Get("missing", &out)
	if err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
}

func TestPutUnserializable(t *testing.T) {
	db := New()
	if err := db.Put("bad", make(chan int)); err == nil {
		t.Fatal("expected marshal error")
	}
}

func TestVersionMonotonic(t *testing.T) {
	db := New()
	if db.Version("k") != 0 {
		t.Fatal("unwritten key should have version 0")
	}
	for i := 1; i <= 3; i++ {
		if err := db.Put("k", i); err != nil {
			t.Fatal(err)
		}
		if v := db.Version("k"); v != uint64(i) {
			t.Fatalf("version = %d, want %d", v, i)
		}
	}
}

func TestDelete(t *testing.T) {
	db := New()
	db.Put("k", 1)
	if !db.Delete("k") {
		t.Fatal("Delete existing = false")
	}
	if db.Delete("k") {
		t.Fatal("Delete missing = true")
	}
	var out int
	if ok, _ := db.Get("k", &out); ok {
		t.Fatal("deleted key still present")
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	db := New()
	for _, k := range []string{"profile/b", "profile/a", "model/x"} {
		db.Put(k, 1)
	}
	got := db.Keys("profile/")
	if len(got) != 2 || got[0] != "profile/a" || got[1] != "profile/b" {
		t.Fatalf("Keys = %v", got)
	}
	if len(db.Keys("")) != 3 {
		t.Fatal("all-keys scan wrong")
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%10)
				if err := db.Put(key, w*1000+i); err != nil {
					t.Error(err)
					return
				}
				var out int
				if _, err := db.Get(key, &out); err != nil {
					t.Error(err)
					return
				}
				db.Keys("k")
				db.Version(key)
			}
		}()
	}
	wg.Wait()
	if db.Len() != 10 {
		t.Fatalf("Len = %d, want 10", db.Len())
	}
}
