// Package memdb is the in-memory database the CSWAP tensor profiler stores
// its profiling data in ("the profiling data is stored in an in-memory
// database for retrieval with low latency", Section IV-A). It is a
// concurrency-safe key-value store with JSON-serialised values, prefix
// scans, and per-key versioning so refreshed epoch profiles supersede stale
// ones.
package memdb

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// DB is a concurrent in-memory key-value store. The zero value is not
// usable; construct with New.
type DB struct {
	mu   sync.RWMutex
	data map[string]entry
}

type entry struct {
	blob    []byte
	version uint64
}

// New returns an empty database.
func New() *DB {
	return &DB{data: make(map[string]entry)}
}

// Put serialises value under key, replacing any previous value and bumping
// the key's version.
func (db *DB) Put(key string, value interface{}) error {
	blob, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("memdb: put %q: %w", key, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.data[key] = entry{blob: blob, version: db.data[key].version + 1}
	return nil
}

// Get deserialises the value stored under key into out (a pointer). It
// reports whether the key existed.
func (db *DB) Get(key string, out interface{}) (bool, error) {
	db.mu.RLock()
	e, ok := db.data[key]
	db.mu.RUnlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(e.blob, out); err != nil {
		return true, fmt.Errorf("memdb: get %q: %w", key, err)
	}
	return true, nil
}

// Version returns the monotonically increasing write count of key (0 if
// the key has never been written).
func (db *DB) Version(key string) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data[key].version
}

// Delete removes key and reports whether it existed.
func (db *DB) Delete(key string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.data[key]
	delete(db.data, key)
	return ok
}

// Keys returns the sorted keys having the given prefix ("" for all keys).
func (db *DB) Keys(prefix string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for k := range db.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored keys.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data)
}
