package dnn

import "fmt"

// ModelNames lists the six evaluated models in the paper's order: four
// linear (AlexNet, Plain20, VGG16, MobileNet) and two non-linear (ResNet,
// SqueezeNet).
func ModelNames() []string {
	return []string{"AlexNet", "VGG16", "MobileNet", "Plain20", "ResNet", "SqueezeNet"}
}

// Build constructs a model for the dataset at the given batch size.
func Build(name string, ds Dataset, batch int) (*Model, error) {
	switch name {
	case "AlexNet":
		return buildAlexNet(ds, batch), nil
	case "VGG16":
		return buildVGG16(ds, batch), nil
	case "MobileNet":
		return buildMobileNet(ds, batch), nil
	case "Plain20":
		return buildPlain20(ds, batch), nil
	case "ResNet":
		return buildResNet18(ds, batch), nil
	case "SqueezeNet":
		return buildSqueezeNet(ds, batch), nil
	default:
		return nil, fmt.Errorf("dnn: unknown model %q", name)
	}
}

// MustBuild is Build for statically-known names; it panics on error.
func MustBuild(name string, ds Dataset, batch int) *Model {
	m, err := Build(name, ds, batch)
	if err != nil {
		panic(err)
	}
	return m
}

func buildAlexNet(ds Dataset, batch int) *Model {
	// Channel configuration follows the torchvision AlexNet (64, 192,
	// 384, 256, 256) that Torch-based setups train, whose shallow compute
	// makes data transfer dominate training time (Section V-A observes a
	// 71 % transfer share).
	b := newBuilder("AlexNet", ds, batch, true)
	if ds.Name == ImageNet.Name {
		b.conv("conv1", 64, 11, 4, 2)
		b.relu("relu1")
		b.maxPool("pool1", 3, 2)
		b.conv("conv2", 192, 5, 1, 2)
		b.relu("relu2")
		b.maxPool("pool2", 3, 2)
	} else {
		b.conv("conv1", 64, 3, 1, 1)
		b.relu("relu1")
		b.maxPool("pool1", 2, 2)
		b.conv("conv2", 192, 3, 1, 1)
		b.relu("relu2")
		b.maxPool("pool2", 2, 2)
	}
	b.conv("conv3", 384, 3, 1, 1)
	b.relu("relu3")
	b.conv("conv4", 256, 3, 1, 1)
	b.relu("relu4")
	b.conv("conv5", 256, 3, 1, 1)
	b.relu("relu5")
	if ds.Name == ImageNet.Name {
		b.maxPool("pool5", 3, 2)
	} else {
		b.maxPool("pool5", 2, 2)
	}
	b.fc("fc6", 4096)
	b.relu("relu6")
	b.fc("fc7", 4096)
	b.relu("relu7")
	b.fc("fc8", ds.Classes)
	b.softmax("prob")
	return b.m
}

func buildVGG16(ds Dataset, batch int) *Model {
	b := newBuilder("VGG16", ds, batch, true)
	blocks := [][]int{{64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}}
	ci := 0
	for bi, chans := range blocks {
		for _, ch := range chans {
			ci++
			b.conv(fmt.Sprintf("conv%d", ci), ch, 3, 1, 1)
			b.relu(fmt.Sprintf("relu%d", ci))
		}
		b.maxPool(fmt.Sprintf("pool%d", bi+1), 2, 2)
	}
	if ds.Name == ImageNet.Name {
		b.fc("fc6", 4096)
		b.relu("relu_fc6")
		b.fc("fc7", 4096)
		b.relu("relu_fc7")
	} else {
		b.fc("fc6", 512)
		b.relu("relu_fc6")
	}
	b.fc("fc8", ds.Classes)
	b.softmax("prob")
	return b.m
}

func buildMobileNet(ds Dataset, batch int) *Model {
	b := newBuilder("MobileNet", ds, batch, true)
	stemStride := 2
	if ds.Name == CIFAR10.Name {
		stemStride = 1
	}
	b.conv("conv1", 32, 3, stemStride, 1)
	b.bn("bn1")
	b.relu("relu1")
	// (output channels, stride) of each depthwise-separable block.
	cfg := []struct{ c, s int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for i, c := range cfg {
		stride := c.s
		if ds.Name == CIFAR10.Name && i < 3 {
			stride = 1 // keep spatial size on tiny inputs
		}
		b.dwconv(fmt.Sprintf("dw%d", i+2), 3, stride, 1)
		b.bn(fmt.Sprintf("bn_dw%d", i+2))
		b.relu(fmt.Sprintf("relu_dw%d", i+2))
		b.conv(fmt.Sprintf("pw%d", i+2), c.c, 1, 1, 0)
		b.bn(fmt.Sprintf("bn_pw%d", i+2))
		b.relu(fmt.Sprintf("relu_pw%d", i+2))
	}
	last := b.m.Layers[len(b.m.Layers)-1]
	b.avgPool("gap", last.OutH, 1)
	b.fc("fc", ds.Classes)
	b.softmax("prob")
	return b.m
}

func buildPlain20(ds Dataset, batch int) *Model {
	// Plain20 is the 20-layer plain (shortcut-free) network from the
	// ResNet paper's CIFAR study, used by AMC; the ImageNet variant keeps
	// the 3-stage/6-conv structure with a 7×7 stride-2 stem and 4× wider
	// channels.
	b := newBuilder("Plain20", ds, batch, true)
	var widths [3]int
	if ds.Name == ImageNet.Name {
		b.conv("conv1", 64, 7, 2, 3)
		b.relu("relu1")
		widths = [3]int{64, 128, 256}
	} else {
		b.conv("conv1", 16, 3, 1, 1)
		b.relu("relu1")
		widths = [3]int{16, 32, 64}
	}
	ci := 1
	for stage, w := range widths {
		for i := 0; i < 6; i++ {
			ci++
			stride := 1
			if stage > 0 && i == 0 {
				stride = 2
			}
			b.conv(fmt.Sprintf("conv%d", ci), w, 3, stride, 1)
			b.relu(fmt.Sprintf("relu%d", ci))
		}
	}
	last := b.m.Layers[len(b.m.Layers)-1]
	b.avgPool("gap", last.OutH, 1)
	b.fc("fc", ds.Classes)
	b.softmax("prob")
	return b.m
}

func buildResNet18(ds Dataset, batch int) *Model {
	b := newBuilder("ResNet", ds, batch, false)
	if ds.Name == ImageNet.Name {
		b.conv("conv1", 64, 7, 2, 3)
	} else {
		b.conv("conv1", 64, 3, 1, 1)
	}
	b.bn("bn1")
	prev := b.relu("relu1")
	if ds.Name == ImageNet.Name {
		prev = b.maxPool("pool1", 3, 2)
	}
	widths := []int{64, 128, 256, 512}
	blockID := 0
	for stage, w := range widths {
		for blk := 0; blk < 2; blk++ {
			blockID++
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			c1 := b.conv(fmt.Sprintf("res%d_conv1", blockID), w, 3, stride, 1, prev)
			b.bn(fmt.Sprintf("res%d_bn1", blockID))
			b.relu(fmt.Sprintf("res%d_relu1", blockID))
			b.conv(fmt.Sprintf("res%d_conv2", blockID), w, 3, 1, 1)
			c2 := b.bn(fmt.Sprintf("res%d_bn2", blockID))
			shortcut := prev
			if stride != 1 || b.m.Layers[prev].OutCh != w {
				shortcut = b.conv(fmt.Sprintf("res%d_down", blockID), w, 1, stride, 0, prev)
			}
			sum := b.residual(fmt.Sprintf("res%d_add", blockID), shortcut, c2)
			prev = b.relu(fmt.Sprintf("res%d_relu2", blockID), sum)
			_ = c1
		}
	}
	last := b.m.Layers[prev]
	b.add(Layer{Name: "gap", Op: OpAvgPool, K: last.OutH, Stride: 1, Inputs: []int{prev}})
	b.fc("fc", ds.Classes)
	b.softmax("prob")
	return b.m
}

func buildSqueezeNet(ds Dataset, batch int) *Model {
	b := newBuilder("SqueezeNet", ds, batch, false)
	fire := func(id, squeeze, expand int) int {
		s := b.conv(fmt.Sprintf("fire%d_squeeze", id), squeeze, 1, 1, 0)
		_ = s
		b.relu(fmt.Sprintf("fire%d_srelu", id))
		srelu := len(b.m.Layers) - 1
		b.conv(fmt.Sprintf("fire%d_e1", id), expand, 1, 1, 0, srelu)
		e1 := b.relu(fmt.Sprintf("fire%d_e1relu", id))
		b.conv(fmt.Sprintf("fire%d_e3", id), expand, 3, 1, 1, srelu)
		e3 := b.relu(fmt.Sprintf("fire%d_e3relu", id))
		return b.concat(fmt.Sprintf("fire%d_concat", id), e1, e3)
	}
	if ds.Name == ImageNet.Name {
		b.conv("conv1", 96, 7, 2, 0)
	} else {
		b.conv("conv1", 96, 3, 1, 1)
	}
	b.relu("relu1")
	b.maxPool("pool1", 3, 2)
	fire(2, 16, 64)
	fire(3, 16, 64)
	fire(4, 32, 128)
	b.maxPool("pool4", 3, 2)
	fire(5, 32, 128)
	fire(6, 48, 192)
	fire(7, 48, 192)
	fire(8, 64, 256)
	b.maxPool("pool8", 3, 2)
	fire(9, 64, 256)
	b.conv("conv10", ds.Classes, 1, 1, 0)
	b.relu("relu10")
	last := b.m.Layers[len(b.m.Layers)-1]
	b.avgPool("gap", last.OutH, 1)
	b.softmax("prob")
	return b.m
}
