// Package dnn provides the DNN workload substrate: a layer-graph IR with
// shape inference, builders for the six models evaluated in the paper
// (AlexNet, VGG16, Plain20, MobileNet — linear; ResNet, SqueezeNet —
// non-linear), per-layer FLOP and memory-traffic accounting, and the
// Table III batch-size configuration.
//
// Feature-map tensor sizes are computed from the real architectures: e.g.
// VGG16 on ImageNet at batch 128 yields a 1568 MiB first ReLU output and a
// 49 MiB last-block ReLU output, exactly the range the paper reports in
// Figure 1.
package dnn

import (
	"fmt"

	"cswap/internal/gpu"
	"cswap/internal/tensor"
)

// Dataset describes the input geometry of a training set.
type Dataset struct {
	Name    string
	H, W, C int
	Classes int
}

// The two datasets of Section V.
var (
	CIFAR10  = Dataset{Name: "CIFAR10", H: 32, W: 32, C: 3, Classes: 10}
	ImageNet = Dataset{Name: "ImageNet", H: 224, W: 224, C: 3, Classes: 1000}
)

// Datasets lists both evaluated datasets.
func Datasets() []Dataset { return []Dataset{CIFAR10, ImageNet} }

// Op is a layer operator type.
type Op int

// Supported operator types.
const (
	OpConv   Op = iota
	OpDWConv    // depthwise convolution (MobileNet)
	OpReLU
	OpMaxPool
	OpAvgPool
	OpFC
	OpBatchNorm
	OpAdd    // residual element-wise addition (ResNet)
	OpConcat // channel concatenation (SqueezeNet fire modules)
	OpSoftmax
)

// String returns the operator mnemonic.
func (o Op) String() string {
	switch o {
	case OpConv:
		return "CONV"
	case OpDWConv:
		return "DWCONV"
	case OpReLU:
		return "ReLU"
	case OpMaxPool:
		return "MAX"
	case OpAvgPool:
		return "AVG"
	case OpFC:
		return "FC"
	case OpBatchNorm:
		return "BN"
	case OpAdd:
		return "ADD"
	case OpConcat:
		return "CONCAT"
	case OpSoftmax:
		return "SOFTMAX"
	case OpMatMul:
		return "MATMUL"
	case OpAttention:
		return "ATTN"
	case OpGELU:
		return "GELU"
	case OpLayerNorm:
		return "LN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Layer is one node of the model graph with inferred activation shapes.
type Layer struct {
	Name string
	Op   Op

	// Convolution / pooling hyper-parameters (zero for other ops).
	K, Stride, Pad int
	OutC           int // output channels (conv/fc); 0 = same as input

	// Inputs are indices of predecessor layers; empty means the previous
	// layer (linear chaining). Multiple inputs occur at Add/Concat.
	Inputs []int

	// Inferred shapes (per sample, not including batch).
	InH, InW, InC     int
	OutH, OutW, OutCh int
}

// Model is a compiled DNN: layers in topological (execution) order with
// shapes inferred for a dataset and batch size.
type Model struct {
	Name    string
	Dataset Dataset
	Batch   int
	Linear  bool // true when the graph is a simple chain
	Layers  []Layer
}

// OutputElems returns the element count of the layer's output activation
// for the model's batch size.
func (m *Model) OutputElems(i int) int64 {
	l := &m.Layers[i]
	return int64(l.OutH) * int64(l.OutW) * int64(l.OutCh) * int64(m.Batch)
}

// OutputBytes returns the activation size in bytes for the layer output —
// the tensor that would be swapped.
func (m *Model) OutputBytes(i int) int64 {
	return m.OutputElems(i) * tensor.BytesPerElement
}

// InputElems returns the total element count of the layer's inputs.
func (m *Model) InputElems(i int) int64 {
	l := &m.Layers[i]
	return int64(l.InH) * int64(l.InW) * int64(l.InC) * int64(m.Batch)
}

// FLOPs returns the forward floating-point operations of layer i.
func (m *Model) FLOPs(i int) float64 {
	if f, ok := m.transformerFLOPs(i); ok {
		return f
	}
	l := &m.Layers[i]
	outElems := float64(m.OutputElems(i))
	switch l.Op {
	case OpConv:
		return 2 * float64(l.K*l.K*l.InC) * outElems
	case OpDWConv:
		// One input channel per output channel.
		return 2 * float64(l.K*l.K) * outElems
	case OpFC:
		return 2 * float64(l.InH*l.InW*l.InC) * outElems
	case OpMaxPool, OpAvgPool:
		return float64(l.K*l.K) * outElems
	case OpBatchNorm:
		return 4 * outElems
	case OpAdd, OpReLU:
		return outElems
	case OpConcat:
		return 0 // pure data movement
	case OpSoftmax:
		return 5 * outElems
	default:
		return outElems
	}
}

// MemBytes returns the forward global-memory traffic of layer i (activations
// read + written + weights read).
func (m *Model) MemBytes(i int) float64 {
	l := &m.Layers[i]
	in := float64(m.InputElems(i)) * tensor.BytesPerElement
	out := float64(m.OutputBytes(i))
	var weights float64
	switch l.Op {
	case OpConv:
		weights = float64(l.K*l.K*l.InC*l.OutCh) * tensor.BytesPerElement
	case OpDWConv:
		weights = float64(l.K*l.K*l.OutCh) * tensor.BytesPerElement
	case OpFC:
		weights = float64(l.InH*l.InW*l.InC*l.OutCh) * tensor.BytesPerElement
	case OpMatMul:
		weights = float64(l.InC*l.OutCh) * tensor.BytesPerElement
	case OpAttention:
		// The seq×seq score matrices are written and re-read.
		weights = 2 * float64(m.AttentionScoreBytes(i))
	}
	if l.Op == OpAdd || l.Op == OpConcat {
		in *= 2 // two operands
	}
	return in + out + weights
}

// Class maps the layer operator to the roofline class of the GPU model.
func (m *Model) Class(i int) gpu.LayerClass {
	switch m.Layers[i].Op {
	case OpConv, OpDWConv, OpMatMul, OpAttention:
		return gpu.ClassConv
	case OpFC:
		return gpu.ClassFC
	case OpMaxPool, OpAvgPool:
		return gpu.ClassPool
	case OpBatchNorm, OpSoftmax, OpAdd, OpConcat, OpLayerNorm:
		return gpu.ClassNorm
	default:
		return gpu.ClassActivation
	}
}

// ForwardTime returns the modeled forward wall-clock of layer i on a device.
func (m *Model) ForwardTime(d *gpu.Device, i int) float64 {
	return d.ComputeTime(m.Class(i), m.FLOPs(i), m.MemBytes(i))
}

// BackwardTime returns the modeled backward wall-clock of layer i: conv and
// FC layers compute both data and weight gradients (≈2× forward); element
// ops replay roughly the forward traffic.
func (m *Model) BackwardTime(d *gpu.Device, i int) float64 {
	f := m.ForwardTime(d, i)
	switch m.Layers[i].Op {
	case OpConv, OpDWConv, OpFC, OpMatMul, OpAttention:
		return 2 * f
	default:
		return f
	}
}

// IterationComputeTime is the pure compute time of one training iteration
// (forward + backward, no swapping).
func (m *Model) IterationComputeTime(d *gpu.Device) float64 {
	var t float64
	for i := range m.Layers {
		t += m.ForwardTime(d, i) + m.BackwardTime(d, i)
	}
	return t
}

// TotalActivationBytes sums every layer's output activation — a proxy for
// the training memory footprint that determines whether swapping is needed.
func (m *Model) TotalActivationBytes() int64 {
	var s int64
	for i := range m.Layers {
		s += m.OutputBytes(i)
	}
	return s
}

// SwapTensor identifies one swappable activation: the output of a ReLU or
// MAX layer, the tensors CSWAP considers for compression (Section IV). Seq
// numbers tensors in execution order; Kind distinguishes the paper's
// "ReLU<i>" and "MAX<i>" labels.
type SwapTensor struct {
	LayerIdx int
	Name     string // e.g. "ReLU4", "MAX2"
	Kind     Op     // OpReLU or OpMaxPool
	Seq      int    // position among swappable tensors, 0-based
	Bytes    int64
}

// SwapTensors enumerates the swappable tensors of the model in execution
// order, labeled ReLU1..n / MAX1..m the way the paper's figures are.
func (m *Model) SwapTensors() []SwapTensor {
	var out []SwapTensor
	relu, max := 0, 0
	for i := range m.Layers {
		l := &m.Layers[i]
		var name string
		switch l.Op {
		case OpReLU:
			relu++
			name = fmt.Sprintf("ReLU%d", relu)
		case OpMaxPool:
			max++
			name = fmt.Sprintf("MAX%d", max)
		default:
			continue
		}
		out = append(out, SwapTensor{
			LayerIdx: i,
			Name:     name,
			Kind:     l.Op,
			Seq:      len(out),
			Bytes:    m.OutputBytes(i),
		})
	}
	return out
}
