package dnn

import "cswap/internal/tensor"

// Weight accounting backs the paper's Section III argument for compressing
// feature maps rather than weights: "the size of feature maps used in
// training VGG16 is 50× larger than the size of its weight matrices when
// batch size is 256".

// LayerWeightElems returns the parameter count of layer i (weights plus
// biases; batch norm carries scale and shift per channel).
func (m *Model) LayerWeightElems(i int) int64 {
	l := &m.Layers[i]
	switch l.Op {
	case OpConv:
		return int64(l.K)*int64(l.K)*int64(l.InC)*int64(l.OutCh) + int64(l.OutCh)
	case OpDWConv:
		return int64(l.K)*int64(l.K)*int64(l.OutCh) + int64(l.OutCh)
	case OpFC:
		return int64(l.InH)*int64(l.InW)*int64(l.InC)*int64(l.OutCh) + int64(l.OutCh)
	case OpBatchNorm, OpLayerNorm:
		return 2 * int64(l.OutCh)
	case OpMatMul:
		return int64(l.InC)*int64(l.OutCh) + int64(l.OutCh)
	default:
		return 0
	}
}

// WeightElems returns the model's total parameter count.
func (m *Model) WeightElems() int64 {
	var s int64
	for i := range m.Layers {
		s += m.LayerWeightElems(i)
	}
	return s
}

// WeightBytes returns the parameter footprint in bytes.
func (m *Model) WeightBytes() int64 {
	return m.WeightElems() * tensor.BytesPerElement
}

// FeatureToWeightRatio returns total activation bytes (forward feature
// maps) divided by weight bytes — the Section III quantity.
func (m *Model) FeatureToWeightRatio() float64 {
	w := m.WeightBytes()
	if w == 0 {
		return 0
	}
	return float64(m.TotalActivationBytes()) / float64(w)
}
