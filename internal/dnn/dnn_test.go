package dnn

import (
	"math"
	"testing"

	"cswap/internal/gpu"
	"cswap/internal/stats"
)

func TestAllModelsBuildOnBothDatasets(t *testing.T) {
	for _, name := range ModelNames() {
		for _, ds := range Datasets() {
			m, err := Build(name, ds, 8)
			if err != nil {
				t.Fatalf("Build(%s, %s): %v", name, ds.Name, err)
			}
			if len(m.Layers) == 0 {
				t.Fatalf("%s/%s has no layers", name, ds.Name)
			}
			// Every layer must have a valid inferred shape.
			for i := range m.Layers {
				l := &m.Layers[i]
				if l.OutH <= 0 || l.OutW <= 0 || l.OutCh <= 0 {
					t.Fatalf("%s/%s layer %s has shape %dx%dx%d",
						name, ds.Name, l.Name, l.OutH, l.OutW, l.OutCh)
				}
			}
			// Final layer must be the classifier output.
			lastFC := -1
			for i := range m.Layers {
				if m.Layers[i].Op == OpFC || (m.Layers[i].Op == OpConv && m.Layers[i].OutC == ds.Classes) {
					lastFC = i
				}
			}
			if lastFC < 0 || m.Layers[lastFC].OutCh != ds.Classes {
				t.Fatalf("%s/%s classifier emits %d classes, want %d",
					name, ds.Name, m.Layers[lastFC].OutCh, ds.Classes)
			}
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("LeNet", CIFAR10, 8); err == nil {
		t.Fatal("unknown model should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic")
		}
	}()
	MustBuild("LeNet", CIFAR10, 8)
}

func TestLinearityFlags(t *testing.T) {
	// Paper Section V: AlexNet, Plain20, VGG16, MobileNet are linear;
	// ResNet and SqueezeNet are non-linear.
	linear := map[string]bool{
		"AlexNet": true, "VGG16": true, "MobileNet": true, "Plain20": true,
		"ResNet": false, "SqueezeNet": false,
	}
	for name, want := range linear {
		m := MustBuild(name, ImageNet, 8)
		if m.Linear != want {
			t.Errorf("%s.Linear = %v, want %v", name, m.Linear, want)
		}
	}
}

func TestVGG16Figure1TensorSizes(t *testing.T) {
	// Figure 1: at batch 128 on ImageNet the first ReLU output is 1568 MB
	// and the last conv-block ReLU is 49 MB.
	m := MustBuild("VGG16", ImageNet, 128)
	sw := m.SwapTensors()
	if len(sw) == 0 {
		t.Fatal("no swap tensors")
	}
	firstMB := float64(sw[0].Bytes) / (1 << 20)
	if math.Abs(firstMB-1568) > 1 {
		t.Errorf("first ReLU = %.1f MiB, want 1568", firstMB)
	}
	// ReLU13 is the last conv-block activation.
	var relu13 *SwapTensor
	for i := range sw {
		if sw[i].Name == "ReLU13" {
			relu13 = &sw[i]
		}
	}
	if relu13 == nil {
		t.Fatal("ReLU13 missing")
	}
	if got := float64(relu13.Bytes) / (1 << 20); math.Abs(got-49) > 0.5 {
		t.Errorf("ReLU13 = %.1f MiB, want 49", got)
	}
}

func TestVGG16LayerStructure(t *testing.T) {
	m := MustBuild("VGG16", ImageNet, 128)
	sw := m.SwapTensors()
	relu, max := 0, 0
	for _, s := range sw {
		switch s.Kind {
		case OpReLU:
			relu++
		case OpMaxPool:
			max++
		}
	}
	// 13 conv ReLUs + 2 FC ReLUs, 5 max pools.
	if relu != 15 || max != 5 {
		t.Fatalf("VGG16 swap tensors: %d ReLU, %d MAX; want 15, 5", relu, max)
	}
	// Seq must be strictly increasing and match slice order.
	for i, s := range sw {
		if s.Seq != i {
			t.Fatalf("Seq[%d] = %d", i, s.Seq)
		}
	}
}

func TestSwapTensorNames(t *testing.T) {
	m := MustBuild("VGG16", ImageNet, 8)
	sw := m.SwapTensors()
	if sw[0].Name != "ReLU1" {
		t.Errorf("first tensor = %s, want ReLU1", sw[0].Name)
	}
	foundMax := false
	for _, s := range sw {
		if s.Name == "MAX1" {
			foundMax = true
			if s.Kind != OpMaxPool {
				t.Error("MAX1 is not a pool layer")
			}
		}
	}
	if !foundMax {
		t.Error("MAX1 missing")
	}
}

func TestFLOPsAndBytesPositive(t *testing.T) {
	for _, name := range ModelNames() {
		m := MustBuild(name, ImageNet, 8)
		for i := range m.Layers {
			if m.Layers[i].Op == OpConcat {
				continue // pure data movement, zero FLOPs by design
			}
			if m.FLOPs(i) <= 0 {
				t.Errorf("%s layer %s FLOPs = %v", name, m.Layers[i].Name, m.FLOPs(i))
			}
			if m.MemBytes(i) <= 0 {
				t.Errorf("%s layer %s MemBytes = %v", name, m.Layers[i].Name, m.MemBytes(i))
			}
		}
	}
}

func TestVGG16FLOPsMagnitude(t *testing.T) {
	// VGG16 forward is ≈15.5 GFLOPs (multiply-accumulate ×2) per 224×224
	// image.
	m := MustBuild("VGG16", ImageNet, 1)
	var total float64
	for i := range m.Layers {
		total += m.FLOPs(i)
	}
	if total < 28e9 || total > 34e9 {
		t.Fatalf("VGG16 forward FLOPs = %.2e, want ≈3.1e10", total)
	}
}

func TestResNetHasResidualAdds(t *testing.T) {
	m := MustBuild("ResNet", ImageNet, 8)
	adds := 0
	for i := range m.Layers {
		if m.Layers[i].Op == OpAdd {
			adds++
			if len(m.Layers[i].Inputs) != 2 {
				t.Error("residual add without two inputs")
			}
		}
	}
	if adds != 8 {
		t.Fatalf("ResNet-18 has %d residual adds, want 8", adds)
	}
}

func TestSqueezeNetFireConcat(t *testing.T) {
	m := MustBuild("SqueezeNet", ImageNet, 8)
	concats := 0
	for i := range m.Layers {
		l := &m.Layers[i]
		if l.Op == OpConcat {
			concats++
			in1 := &m.Layers[l.Inputs[0]]
			in2 := &m.Layers[l.Inputs[1]]
			if l.OutCh != in1.OutCh+in2.OutCh {
				t.Errorf("%s concat channels %d != %d+%d", l.Name, l.OutCh, in1.OutCh, in2.OutCh)
			}
		}
	}
	if concats != 8 {
		t.Fatalf("SqueezeNet has %d fire concats, want 8", concats)
	}
}

func TestMobileNetDepthwiseStructure(t *testing.T) {
	m := MustBuild("MobileNet", ImageNet, 8)
	dw, pw := 0, 0
	for i := range m.Layers {
		switch {
		case m.Layers[i].Op == OpDWConv:
			dw++
		case m.Layers[i].Op == OpConv && m.Layers[i].K == 1:
			pw++
		}
	}
	if dw != 13 || pw != 13 {
		t.Fatalf("MobileNet has %d dw / %d pw convs, want 13/13", dw, pw)
	}
	// Depthwise FLOPs must be far below a dense conv of the same shape.
	for i := range m.Layers {
		if m.Layers[i].Op == OpDWConv {
			dense := 2 * float64(m.Layers[i].K*m.Layers[i].K*m.Layers[i].InC) * float64(m.OutputElems(i))
			if m.FLOPs(i) >= dense/8 {
				t.Errorf("depthwise conv %s FLOPs not reduced", m.Layers[i].Name)
			}
			break
		}
	}
}

func TestForwardBackwardTimes(t *testing.T) {
	d := gpu.V100()
	m := MustBuild("VGG16", ImageNet, 128)
	for i := range m.Layers {
		f, b := m.ForwardTime(d, i), m.BackwardTime(d, i)
		if f <= 0 || b <= 0 {
			t.Fatalf("layer %s times f=%v b=%v", m.Layers[i].Name, f, b)
		}
		switch m.Layers[i].Op {
		case OpConv, OpDWConv, OpFC:
			if math.Abs(b-2*f) > 1e-12 {
				t.Fatalf("conv backward should be 2x forward")
			}
		}
	}
	it := m.IterationComputeTime(d)
	if it <= 0 {
		t.Fatal("iteration time must be positive")
	}
	// 2080Ti must be slower than V100 for the same model.
	if m.IterationComputeTime(gpu.RTX2080Ti()) <= it {
		t.Fatal("2080Ti should be slower than V100")
	}
}

func TestActivationFootprintMotivatesSwapping(t *testing.T) {
	// The premise of swapping: the training working set exceeds GPU
	// memory. Forward activations alone for VGG16@128 are ≈13 GiB; with
	// activation gradients and cuDNN workspace (≈2–3× activations) the
	// footprint exceeds the V100's 32 GiB.
	m := MustBuild("VGG16", ImageNet, 128)
	act := m.TotalActivationBytes()
	if act < 12<<30 {
		t.Fatalf("VGG16@128 activations = %d GiB, expected ≥ 12 GiB", act>>30)
	}
	if 3*act < 32<<30 {
		t.Fatalf("training footprint 3×%d GiB should exceed V100 memory", act>>30)
	}
}

func TestBatchSizeTableIII(t *testing.T) {
	cases := []struct {
		model, gpu string
		ds         Dataset
		want       int
	}{
		{"AlexNet", "V100", CIFAR10, 2560},
		{"AlexNet", "V100", ImageNet, 512},
		{"VGG16", "2080Ti", ImageNet, 32},
		{"ResNet", "2080Ti", ImageNet, 16},
		{"SqueezeNet", "V100", ImageNet, 512},
		{"Plain20", "2080Ti", CIFAR10, 1024},
	}
	for _, c := range cases {
		got, err := BatchSize(c.model, c.gpu, c.ds)
		if err != nil || got != c.want {
			t.Errorf("BatchSize(%s,%s,%s) = %d,%v; want %d",
				c.model, c.gpu, c.ds.Name, got, err, c.want)
		}
	}
}

func TestBatchSizePlain20OOMOn2080TiImageNet(t *testing.T) {
	if _, err := BatchSize("Plain20", "2080Ti", ImageNet); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if _, err := BuildConfigured("Plain20", "2080Ti", ImageNet); err != ErrOutOfMemory {
		t.Fatalf("BuildConfigured err = %v, want ErrOutOfMemory", err)
	}
}

func TestBatchSizeUnknownKeys(t *testing.T) {
	if _, err := BatchSize("VGG16", "A100", ImageNet); err == nil {
		t.Error("unknown GPU should error")
	}
	if _, err := BatchSize("LeNet", "V100", ImageNet); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := BatchSize("VGG16", "V100", Dataset{Name: "MNIST"}); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestBuildConfigured(t *testing.T) {
	m, err := BuildConfigured("VGG16", "V100", ImageNet)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batch != 128 {
		t.Fatalf("batch = %d, want 128", m.Batch)
	}
}

func TestBuilderPanicsOnBadBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newBuilder("x", CIFAR10, 0, true)
}

func TestOpStrings(t *testing.T) {
	if OpConv.String() != "CONV" || OpReLU.String() != "ReLU" || OpMaxPool.String() != "MAX" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() != "Op(99)" {
		t.Fatal("unknown op format")
	}
}

func TestVGG16ParameterCount(t *testing.T) {
	// The canonical VGG16 has ≈138 M parameters.
	m := MustBuild("VGG16", ImageNet, 1)
	params := m.WeightElems()
	if params < 130e6 || params > 145e6 {
		t.Fatalf("VGG16 parameters = %d, want ≈138 M", params)
	}
}

func TestFeatureToWeightRatioSection3Claim(t *testing.T) {
	// Section III: feature maps of VGG16 at batch 256 are ≈50× the weight
	// matrices.
	m := MustBuild("VGG16", ImageNet, 256)
	ratio := m.FeatureToWeightRatio()
	if ratio < 40 || ratio > 60 {
		t.Fatalf("feature/weight ratio = %.1f, paper says ≈50", ratio)
	}
	// The ratio scales with batch size.
	small := MustBuild("VGG16", ImageNet, 32)
	if small.FeatureToWeightRatio() >= ratio {
		t.Fatal("ratio should grow with batch size")
	}
}

func TestWeightElemsPerLayerClass(t *testing.T) {
	m := MustBuild("MobileNet", ImageNet, 8)
	for i := range m.Layers {
		w := m.LayerWeightElems(i)
		switch m.Layers[i].Op {
		case OpReLU, OpMaxPool, OpAvgPool, OpAdd, OpConcat, OpSoftmax:
			if w != 0 {
				t.Errorf("%s should have no weights, got %d", m.Layers[i].Name, w)
			}
		case OpConv, OpDWConv, OpFC, OpBatchNorm:
			if w <= 0 {
				t.Errorf("%s should have weights", m.Layers[i].Name)
			}
		}
	}
	// MobileNet v1 has ≈4.2 M parameters.
	p := m.WeightElems()
	if p < 3.5e6 || p > 5e6 {
		t.Errorf("MobileNet parameters = %d, want ≈4.2 M", p)
	}
}

func TestTrainingFootprintModel(t *testing.T) {
	v100 := gpu.V100()
	// VGG16 at the paper's batch 128 fills most of the V100; at batch 256
	// it cannot train without swapping.
	vgg128 := MustBuild("VGG16", ImageNet, 128)
	if f := vgg128.TrainingFootprint().Total(); f < v100.MemBytes/2 {
		t.Fatalf("VGG16@128 footprint %d GiB, want > half of V100", f>>30)
	}
	vgg256 := MustBuild("VGG16", ImageNet, 256)
	if !vgg256.NeedsSwapping(v100) {
		t.Fatalf("VGG16@256 footprint %d GiB should exceed V100 memory",
			vgg256.TrainingFootprint().Total()>>30)
	}
	// A small-batch run fits comfortably.
	small := MustBuild("VGG16", ImageNet, 8)
	if small.NeedsSwapping(v100) {
		t.Fatalf("VGG16@8 footprint %d GiB should fit",
			small.TrainingFootprint().Total()>>30)
	}
	// Breakdown sums and is activation-dominated for feature-map-heavy
	// training (the Section III argument).
	f := vgg128.TrainingFootprint()
	sum := f.Activations + f.Gradients + f.Weights + f.WeightGradients +
		f.OptimizerState + f.Workspace
	if f.Total() != sum {
		t.Fatal("Total() != sum of parts")
	}
	if f.Activations < f.Weights*10 {
		t.Fatalf("activations (%d) should dwarf weights (%d) at batch 128",
			f.Activations, f.Weights)
	}
	// Footprint grows monotonically with batch size.
	if vgg256.TrainingFootprint().Total() <= vgg128.TrainingFootprint().Total() {
		t.Fatal("footprint not monotone in batch")
	}
}

func TestShapeInferencePropertyRandomConvChains(t *testing.T) {
	// Random conv/pool chains: inferred shapes must match the closed-form
	// formula applied step by step, and every intermediate must be valid.
	rng := stats.NewRNG(33)
	for trial := 0; trial < 40; trial++ {
		b := newBuilder("prop", ImageNet, 4, true)
		h, w := ImageNet.H, ImageNet.W
		for layer := 0; layer < 6 && h >= 8 && w >= 8; layer++ {
			k := []int{1, 3, 5, 7}[rng.Intn(4)]
			stride := 1 + rng.Intn(2)
			pad := rng.Intn(k)
			outC := 8 << rng.Intn(4)
			var idx int
			if rng.Intn(2) == 0 {
				idx = b.conv("c", outC, k, stride, pad)
			} else {
				idx = b.maxPool("p", k, stride)
				pad = 0
			}
			wantH := (h+2*pad-k)/stride + 1
			wantW := (w+2*pad-k)/stride + 1
			got := b.m.Layers[idx]
			if got.OutH != wantH || got.OutW != wantW {
				t.Fatalf("trial %d layer %d: got %dx%d, want %dx%d",
					trial, layer, got.OutH, got.OutW, wantH, wantW)
			}
			h, w = wantH, wantW
		}
	}
}
