package dnn

import "fmt"

// ErrOutOfMemory reports a (model, GPU, dataset) combination the paper
// could not train: "Plain20 is a large model and 2080Ti only has 11GB GPU
// memory, which cannot meet the memory requirement of Plain20 even when the
// batch size is set to one" (Section V-A, Figure 6d).
var ErrOutOfMemory = fmt.Errorf("dnn: model does not fit in GPU memory at any batch size")

// batchTable encodes Table III of the paper: training batch sizes per
// model for each (GPU, dataset). A zero entry means out-of-memory.
var batchTable = map[string]map[string][2]int{
	// GPU -> model -> [CIFAR10, ImageNet]
	"V100": {
		"AlexNet":    {2560, 512},
		"VGG16":      {2560, 128},
		"MobileNet":  {2560, 128},
		"Plain20":    {2560, 32},
		"ResNet":     {2560, 64},
		"SqueezeNet": {2560, 512},
	},
	"2080Ti": {
		"AlexNet":    {2560, 256},
		"VGG16":      {2560, 32},
		"MobileNet":  {1280, 32},
		"Plain20":    {1024, 0},
		"ResNet":     {1280, 16},
		"SqueezeNet": {1280, 128},
	},
}

// BatchSize returns the Table III batch size for the combination, or
// ErrOutOfMemory for the one untrainable configuration.
func BatchSize(model, gpuName string, ds Dataset) (int, error) {
	g, ok := batchTable[gpuName]
	if !ok {
		return 0, fmt.Errorf("dnn: no batch configuration for GPU %q", gpuName)
	}
	row, ok := g[model]
	if !ok {
		return 0, fmt.Errorf("dnn: no batch configuration for model %q", model)
	}
	idx := 0
	switch ds.Name {
	case CIFAR10.Name:
		idx = 0
	case ImageNet.Name:
		idx = 1
	default:
		return 0, fmt.Errorf("dnn: no batch configuration for dataset %q", ds.Name)
	}
	if row[idx] == 0 {
		return 0, ErrOutOfMemory
	}
	return row[idx], nil
}

// BuildConfigured builds the model with its Table III batch size.
func BuildConfigured(model, gpuName string, ds Dataset) (*Model, error) {
	batch, err := BatchSize(model, gpuName, ds)
	if err != nil {
		return nil, err
	}
	return Build(model, ds, batch)
}
