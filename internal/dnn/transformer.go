package dnn

import "fmt"

// Transformer support — the workload the paper's introduction motivates:
// "the latest BERT model needs more than 70 GB memory during the training
// period with batch size 64". BERT's activations are GELU outputs, which
// are dense (no exact zeros), so CSWAP's sparsity codecs have nothing to
// grab: the cost model correctly leaves its tensors uncompressed and the
// framework degenerates gracefully to vDNN. This file exists to validate
// both halves of that story.

// Additional operator types for sequence models.
const (
	// OpMatMul is a batched dense matrix multiply (QKV projections,
	// attention output, FFN layers).
	OpMatMul Op = 100 + iota
	// OpAttention is the scaled dot-product attention score+context
	// computation (the S = QKᵀ and SV products plus softmax).
	OpAttention
	// OpGELU is the dense transformer activation — no exact zeros.
	OpGELU
	// OpLayerNorm normalises the hidden dimension.
	OpLayerNorm
)

// SeqDataset describes a token-sequence workload; W carries the sequence
// length and C the hidden size so the existing shape machinery applies
// (H = 1).
func SeqDataset(name string, seqLen, hidden int) Dataset {
	return Dataset{Name: name, H: 1, W: seqLen, C: hidden, Classes: hidden}
}

// BERTConfig sizes a BERT-style encoder.
type BERTConfig struct {
	Layers, Hidden, Heads, FFN, SeqLen int
}

// BERTBase and BERTLarge are the canonical configurations.
var (
	BERTBase  = BERTConfig{Layers: 12, Hidden: 768, Heads: 12, FFN: 3072, SeqLen: 512}
	BERTLarge = BERTConfig{Layers: 24, Hidden: 1024, Heads: 16, FFN: 4096, SeqLen: 512}
)

// BuildBERT constructs a BERT-style encoder as a linear chain of encoder
// blocks (attention details folded into OpAttention nodes).
func BuildBERT(cfg BERTConfig, batch int) (*Model, error) {
	if cfg.Layers <= 0 || cfg.Hidden <= 0 || cfg.Heads <= 0 || cfg.SeqLen <= 0 {
		return nil, fmt.Errorf("dnn: invalid BERT config %+v", cfg)
	}
	ds := SeqDataset("Tokens", cfg.SeqLen, cfg.Hidden)
	b := newBuilder(fmt.Sprintf("BERT-%dL", cfg.Layers), ds, batch, true)
	for l := 1; l <= cfg.Layers; l++ {
		p := func(part string) string { return fmt.Sprintf("enc%d_%s", l, part) }
		// QKV projection: one fused matmul hidden → 3·hidden.
		b.add(Layer{Name: p("qkv"), Op: OpMatMul, OutC: 3 * cfg.Hidden})
		// Attention: scores (seq × seq × heads) and context back to hidden.
		b.add(Layer{Name: p("attn"), Op: OpAttention, OutC: cfg.Hidden, K: cfg.Heads})
		b.add(Layer{Name: p("proj"), Op: OpMatMul, OutC: cfg.Hidden})
		b.add(Layer{Name: p("ln1"), Op: OpLayerNorm})
		b.add(Layer{Name: p("ffn1"), Op: OpMatMul, OutC: cfg.FFN})
		b.add(Layer{Name: p("gelu"), Op: OpGELU})
		b.add(Layer{Name: p("ffn2"), Op: OpMatMul, OutC: cfg.Hidden})
		b.add(Layer{Name: p("ln2"), Op: OpLayerNorm})
	}
	return b.m, nil
}

// transformer-op shape inference hooks (see builder.add) ------------------

// transformerOutShape infers output shapes for the sequence operators; it
// returns ok=false for non-transformer ops.
func transformerOutShape(l *Layer, h, w, c int) (oh, ow, oc int, ok bool) {
	switch l.Op {
	case OpMatMul:
		return h, w, l.OutC, true
	case OpAttention:
		// Context output back at hidden width.
		return h, w, l.OutC, true
	case OpGELU, OpLayerNorm:
		return h, w, c, true
	default:
		return 0, 0, 0, false
	}
}

// transformerFLOPs returns forward FLOPs for the sequence operators.
func (m *Model) transformerFLOPs(i int) (float64, bool) {
	l := &m.Layers[i]
	batch := float64(m.Batch)
	seq := float64(l.InW)
	switch l.Op {
	case OpMatMul:
		return 2 * seq * float64(l.InC) * float64(l.OutCh) * batch, true
	case OpAttention:
		// QKᵀ and SV: 2 × (seq² · hidden) MACs.
		return 4 * seq * seq * float64(l.OutCh) * batch, true
	case OpGELU:
		return 8 * float64(m.OutputElems(i)), true
	case OpLayerNorm:
		return 6 * float64(m.OutputElems(i)), true
	default:
		return 0, false
	}
}

// AttentionScoreBytes returns the attention-probability tensor footprint of
// layer i (seq² per head), the dominant BERT activation; zero for other
// ops.
func (m *Model) AttentionScoreBytes(i int) int64 {
	l := &m.Layers[i]
	if l.Op != OpAttention {
		return 0
	}
	seq := int64(l.InW)
	return seq * seq * int64(l.K) * int64(m.Batch) * 4
}

// TransformerActivationBytes sums the retained activations including the
// attention score matrices that OutputBytes cannot see.
func (m *Model) TransformerActivationBytes() int64 {
	total := m.TotalActivationBytes()
	for i := range m.Layers {
		total += m.AttentionScoreBytes(i)
	}
	return total
}
