package dnn

import "fmt"

// builder assembles a model graph with shape inference. Layer helper
// methods return the new layer's index so non-linear graphs (residual adds,
// fire-module concats) can reference branch points.
type builder struct {
	m *Model
}

func newBuilder(name string, ds Dataset, batch int, linear bool) *builder {
	if batch <= 0 {
		panic(fmt.Sprintf("dnn: non-positive batch %d", batch))
	}
	return &builder{m: &Model{Name: name, Dataset: ds, Batch: batch, Linear: linear}}
}

// inShape resolves the input activation shape for a layer with the given
// predecessor indices (empty = previous layer, or the dataset input for the
// first layer).
func (b *builder) inShape(inputs []int) (h, w, c int) {
	if len(b.m.Layers) == 0 && len(inputs) == 0 {
		return b.m.Dataset.H, b.m.Dataset.W, b.m.Dataset.C
	}
	if len(inputs) == 0 {
		inputs = []int{len(b.m.Layers) - 1}
	}
	first := &b.m.Layers[inputs[0]]
	h, w, c = first.OutH, first.OutW, first.OutCh
	for _, idx := range inputs[1:] {
		l := &b.m.Layers[idx]
		if l.OutH != h || l.OutW != w {
			panic(fmt.Sprintf("dnn: %s: merge of mismatched shapes %dx%d vs %dx%d",
				b.m.Name, h, w, l.OutH, l.OutW))
		}
	}
	return h, w, c
}

func (b *builder) add(l Layer) int {
	h, w, c := b.inShape(l.Inputs)
	l.InH, l.InW, l.InC = h, w, c
	if oh, ow, oc, ok := transformerOutShape(&l, h, w, c); ok {
		l.OutH, l.OutW, l.OutCh = oh, ow, oc
		if l.OutH <= 0 || l.OutW <= 0 || l.OutCh <= 0 {
			panic(fmt.Sprintf("dnn: %s layer %s(%s) inferred empty shape", b.m.Name, l.Name, l.Op))
		}
		b.m.Layers = append(b.m.Layers, l)
		return len(b.m.Layers) - 1
	}
	switch l.Op {
	case OpConv, OpDWConv:
		l.OutH = (h+2*l.Pad-l.K)/l.Stride + 1
		l.OutW = (w+2*l.Pad-l.K)/l.Stride + 1
		if l.Op == OpDWConv {
			l.OutC = c
		}
		l.OutCh = l.OutC
	case OpMaxPool, OpAvgPool:
		l.OutH = (h+2*l.Pad-l.K)/l.Stride + 1
		l.OutW = (w+2*l.Pad-l.K)/l.Stride + 1
		l.OutCh = c
	case OpFC:
		l.OutH, l.OutW, l.OutCh = 1, 1, l.OutC
	case OpConcat:
		inputs := l.Inputs
		l.OutH, l.OutW = h, w
		l.OutCh = 0
		for _, idx := range inputs {
			l.OutCh += b.m.Layers[idx].OutCh
		}
	default: // ReLU, BN, Add, Softmax preserve shape
		l.OutH, l.OutW, l.OutCh = h, w, c
	}
	if l.OutH <= 0 || l.OutW <= 0 || l.OutCh <= 0 {
		panic(fmt.Sprintf("dnn: %s layer %s(%s) inferred empty shape %dx%dx%d from %dx%dx%d",
			b.m.Name, l.Name, l.Op, l.OutH, l.OutW, l.OutCh, h, w, c))
	}
	b.m.Layers = append(b.m.Layers, l)
	return len(b.m.Layers) - 1
}

func (b *builder) conv(name string, outC, k, stride, pad int, inputs ...int) int {
	return b.add(Layer{Name: name, Op: OpConv, OutC: outC, K: k, Stride: stride, Pad: pad, Inputs: inputs})
}

func (b *builder) dwconv(name string, k, stride, pad int) int {
	return b.add(Layer{Name: name, Op: OpDWConv, K: k, Stride: stride, Pad: pad})
}

func (b *builder) relu(name string, inputs ...int) int {
	return b.add(Layer{Name: name, Op: OpReLU, Inputs: inputs})
}

func (b *builder) maxPool(name string, k, stride int) int {
	return b.add(Layer{Name: name, Op: OpMaxPool, K: k, Stride: stride})
}

func (b *builder) avgPool(name string, k, stride int) int {
	return b.add(Layer{Name: name, Op: OpAvgPool, K: k, Stride: stride})
}

func (b *builder) fc(name string, outC int) int {
	return b.add(Layer{Name: name, Op: OpFC, OutC: outC})
}

func (b *builder) bn(name string) int {
	return b.add(Layer{Name: name, Op: OpBatchNorm})
}

func (b *builder) residual(name string, a, c int) int {
	return b.add(Layer{Name: name, Op: OpAdd, Inputs: []int{a, c}})
}

func (b *builder) concat(name string, inputs ...int) int {
	return b.add(Layer{Name: name, Op: OpConcat, Inputs: inputs})
}

func (b *builder) softmax(name string) int {
	return b.add(Layer{Name: name, Op: OpSoftmax})
}
