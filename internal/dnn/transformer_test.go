package dnn

import (
	"testing"

	"cswap/internal/gpu"
)

func TestBERTLargeIntroClaim(t *testing.T) {
	// Introduction: "the latest BERT model needs more than 70 GB memory
	// during the training period with batch size 64". BERT-large at
	// sequence length 512, batch 64, FP32.
	m, err := BuildBERT(BERTLarge, 64)
	if err != nil {
		t.Fatal(err)
	}
	total := m.TrainingFootprint().Total()
	gb := float64(total) / (1 << 30)
	if gb < 60 || gb > 110 {
		t.Fatalf("BERT-large@64 training footprint %.0f GiB, paper claims > 70 GB", gb)
	}
	if gb < 70*1e9/(1<<30) {
		t.Fatalf("footprint %.0f GiB below the paper's 70 GB claim", gb)
	}
	// Far beyond a 32 GiB V100.
	if total <= gpu.V100().MemBytes {
		t.Fatal("BERT-large should not fit a V100")
	}
	// BERT-large has ≈340 M parameters (encoder stack accounts for ≈302 M
	// of them; embeddings are out of scope here).
	p := m.WeightElems()
	if p < 250e6 || p > 340e6 {
		t.Fatalf("BERT-large encoder parameters = %d M, want ≈300 M", p/1e6)
	}
}

func TestBERTStructure(t *testing.T) {
	m, err := BuildBERT(BERTBase, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 12*8 {
		t.Fatalf("layers = %d, want 96", len(m.Layers))
	}
	gelu, attn := 0, 0
	for i := range m.Layers {
		switch m.Layers[i].Op {
		case OpGELU:
			gelu++
			if m.Layers[i].OutCh != BERTBase.FFN {
				t.Fatal("GELU not at FFN width")
			}
		case OpAttention:
			attn++
			if m.AttentionScoreBytes(i) <= 0 {
				t.Fatal("attention without score bytes")
			}
		}
		if m.FLOPs(i) <= 0 || m.MemBytes(i) <= 0 {
			t.Fatalf("layer %s has no cost", m.Layers[i].Name)
		}
	}
	if gelu != 12 || attn != 12 {
		t.Fatalf("gelu=%d attn=%d, want 12/12", gelu, attn)
	}
	// No ReLU/MAX layers ⇒ CSWAP finds nothing to compress.
	if n := len(m.SwapTensors()); n != 0 {
		t.Fatalf("BERT has %d ReLU/MAX swap tensors, want 0 (GELU is dense)", n)
	}
	// BERT-base forward ≈ 2·seq·hidden²-scale GFLOPs: sanity bounds only.
	var flops float64
	for i := range m.Layers {
		flops += m.FLOPs(i)
	}
	perSample := flops / 8
	if perSample < 50e9 || perSample > 250e9 {
		t.Fatalf("BERT-base forward = %.1f GFLOPs/sample, want O(100)", perSample/1e9)
	}
}

func TestBuildBERTValidation(t *testing.T) {
	if _, err := BuildBERT(BERTConfig{}, 8); err == nil {
		t.Fatal("empty config accepted")
	}
	if BERTBase.Hidden != 768 || BERTLarge.Layers != 24 {
		t.Fatal("canonical configs wrong")
	}
	if OpGELU.String() != "GELU" || OpAttention.String() != "ATTN" || OpMatMul.String() != "MATMUL" || OpLayerNorm.String() != "LN" {
		t.Fatal("transformer op names wrong")
	}
}

func TestTransformerBackwardDouble(t *testing.T) {
	m, err := BuildBERT(BERTBase, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := gpu.V100()
	for i := range m.Layers {
		switch m.Layers[i].Op {
		case OpMatMul, OpAttention:
			if m.BackwardTime(d, i) != 2*m.ForwardTime(d, i) {
				t.Fatalf("%s backward not 2x forward", m.Layers[i].Name)
			}
		}
	}
}
