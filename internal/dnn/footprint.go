package dnn

import "cswap/internal/gpu"

// Training-memory footprint model: the quantity that decides whether a
// workload needs swapping at all (the paper's premise: "training popular
// DNNs often requires a larger amount of memory than a GPU may have").

// FootprintBreakdown itemises the training working set.
type FootprintBreakdown struct {
	// Activations are the forward feature maps (retained for backward).
	Activations int64
	// Gradients are the activation gradients (≈ one live copy per layer
	// pair; we charge the two largest adjacent activations).
	Gradients int64
	// Weights, WeightGradients, and OptimizerState (SGD+momentum: one
	// extra copy) all scale with the parameter count.
	Weights, WeightGradients, OptimizerState int64
	// Workspace is the cuDNN scratch estimate (proportional to the
	// largest layer's activation).
	Workspace int64
}

// Total sums the breakdown.
func (f FootprintBreakdown) Total() int64 {
	return f.Activations + f.Gradients + f.Weights + f.WeightGradients +
		f.OptimizerState + f.Workspace
}

// TrainingFootprint estimates the peak training memory demand without any
// swapping: all forward activations retained, plus gradients in flight,
// parameters with their gradients and momentum, and convolution workspace.
func (m *Model) TrainingFootprint() FootprintBreakdown {
	var f FootprintBreakdown
	// Attention score matrices are retained activations too (they carry
	// the softmax outputs the backward pass needs).
	f.Activations = m.TransformerActivationBytes()
	// Backward holds the gradient of the current layer and its input:
	// charge the two largest consecutive activations.
	var largest, second int64
	for i := range m.Layers {
		b := m.OutputBytes(i)
		if b > largest {
			largest, second = b, largest
		} else if b > second {
			second = b
		}
	}
	f.Gradients = largest + second
	w := m.WeightBytes()
	f.Weights = w
	f.WeightGradients = w
	f.OptimizerState = w
	f.Workspace = largest / 2
	return f
}

// NeedsSwapping reports whether the no-swapping footprint exceeds the
// device's memory.
func (m *Model) NeedsSwapping(d *gpu.Device) bool {
	return m.TrainingFootprint().Total() > d.MemBytes
}
