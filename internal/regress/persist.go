package regress

import (
	"fmt"

	"cswap/internal/compress"
	"cswap/internal/memdb"
)

// Persistence for the deployed time model: Section IV-C stores the trained
// (de)compression-time model in the in-memory database so the execution
// advisor retrieves it with low latency and deployments survive across
// training sessions without re-generating samples.

// lrSnapshot serialises one linear sub-model.
type lrSnapshot struct {
	Coef      []float64
	Intercept float64
}

// bucketedSnapshot serialises a BucketedLR. Buckets that aliased the
// pooled fallback at fit time are stored as independent copies; prediction
// is unaffected.
type bucketedSnapshot struct {
	SparsityFeature int
	Base, Range     float64
	Buckets         int
	Subs            []lrSnapshot
}

// predictorSnapshot is the full stored model.
type predictorSnapshot struct {
	Device string
	Launch compress.Launch
	Comp   map[string]bucketedSnapshot
	Decomp map[string]bucketedSnapshot
}

func snapshotBucketed(m *BucketedLR) bucketedSnapshot {
	s := bucketedSnapshot{
		SparsityFeature: m.SparsityFeature,
		Base:            m.Base,
		Range:           m.Range,
		Buckets:         m.Buckets,
	}
	for _, sub := range m.subs {
		s.Subs = append(s.Subs, lrSnapshot{Coef: sub.Coef, Intercept: sub.Intercept})
	}
	return s
}

func restoreBucketed(s bucketedSnapshot) *BucketedLR {
	m := &BucketedLR{
		SparsityFeature: s.SparsityFeature,
		Base:            s.Base,
		Range:           s.Range,
		Buckets:         s.Buckets,
	}
	for _, sub := range s.Subs {
		m.subs = append(m.subs, &LinearRegression{Coef: sub.Coef, Intercept: sub.Intercept})
	}
	return m
}

// PredictorKey is the memdb key a device's time model is stored under.
func PredictorKey(gpuName string) string { return "timemodel/" + gpuName }

// Store persists the trained predictor into the in-memory database.
func (tp *TimePredictor) Store(db *memdb.DB) error {
	snap := predictorSnapshot{
		Launch: tp.Launch,
		Comp:   map[string]bucketedSnapshot{},
		Decomp: map[string]bucketedSnapshot{},
	}
	if tp.Device != nil {
		snap.Device = tp.Device.Name
	}
	for alg, m := range tp.comp {
		snap.Comp[alg.String()] = snapshotBucketed(m)
	}
	for alg, m := range tp.decomp {
		snap.Decomp[alg.String()] = snapshotBucketed(m)
	}
	return db.Put(PredictorKey(snap.Device), snap)
}

// LoadTimePredictor restores a stored predictor. The returned predictor
// has a nil Device (only the name was stored); prediction needs nothing
// more.
func LoadTimePredictor(db *memdb.DB, gpuName string) (*TimePredictor, bool, error) {
	var snap predictorSnapshot
	ok, err := db.Get(PredictorKey(gpuName), &snap)
	if err != nil || !ok {
		return nil, ok, err
	}
	tp := &TimePredictor{
		Launch: snap.Launch,
		comp:   map[compress.Algorithm]*BucketedLR{},
		decomp: map[compress.Algorithm]*BucketedLR{},
	}
	for name, s := range snap.Comp {
		alg, err := algByName(name)
		if err != nil {
			return nil, true, err
		}
		tp.comp[alg] = restoreBucketed(s)
	}
	for name, s := range snap.Decomp {
		alg, err := algByName(name)
		if err != nil {
			return nil, true, err
		}
		tp.decomp[alg] = restoreBucketed(s)
	}
	return tp, true, nil
}

func algByName(name string) (compress.Algorithm, error) {
	for _, a := range compress.ExtendedAlgorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("regress: unknown algorithm %q in stored model", name)
}
