// Package regress implements the (de)compression-time prediction models of
// Section IV-C and their Figure 10 comparison set: CSWAP's bucketed linear
// regression alongside Bayesian ridge regression, linear ε-SVR, and a CART
// regression tree (the scikit-learn baselines, reimplemented from scratch).
//
// All models receive the raw features the paper's samples carry — tensor
// size and sparsity — and predict a kernel time. The true kernel time
// contains a size×sparsity interaction, which is why CSWAP's sparsity-
// bucketed sub-models (piecewise linearisation over the 20–80 % range)
// outperform the single global fits.
package regress

import (
	"errors"
	"fmt"
	"math"

	"cswap/internal/linalg"
)

// Model is a trainable regression model over fixed-width feature vectors.
type Model interface {
	// Name is the short identifier used in reports (LR, BR, SVM, DT).
	Name() string
	// Fit trains on rows X (each the same length) and targets y.
	Fit(x [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) float64
}

// ErrNoData is returned by Fit when the training set is empty or
// degenerate.
var ErrNoData = errors.New("regress: empty or degenerate training set")

func checkTrainingSet(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return ErrNoData
	}
	w := len(x[0])
	if w == 0 {
		return ErrNoData
	}
	for i := range x {
		if len(x[i]) != w {
			return fmt.Errorf("regress: ragged feature row %d", i)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ordinary least squares.

// LinearRegression is ordinary least squares with an intercept, solved by
// normal equations.
type LinearRegression struct {
	Coef      []float64
	Intercept float64
}

// Name implements Model.
func (*LinearRegression) Name() string { return "LR" }

// Fit implements Model.
func (m *LinearRegression) Fit(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	w := len(x[0]) + 1 // bias column
	xtx := linalg.NewMatrix(w, w)
	xty := make([]float64, w)
	row := make([]float64, w)
	for i := range x {
		row[0] = 1
		copy(row[1:], x[i])
		for a := 0; a < w; a++ {
			xty[a] += row[a] * y[i]
			for b := 0; b <= a; b++ {
				xtx.Set(a, b, xtx.At(a, b)+row[a]*row[b])
			}
		}
	}
	for a := 0; a < w; a++ {
		for b := a + 1; b < w; b++ {
			xtx.Set(a, b, xtx.At(b, a))
		}
	}
	beta, err := linalg.SolveSPD(xtx, xty)
	if err != nil {
		return fmt.Errorf("regress: LR normal equations: %w", err)
	}
	m.Intercept = beta[0]
	m.Coef = beta[1:]
	return nil
}

// Predict implements Model.
func (m *LinearRegression) Predict(x []float64) float64 {
	return m.Intercept + linalg.Dot(m.Coef, x)
}

// ---------------------------------------------------------------------------
// Bayesian ridge regression.

// BayesianRidge is Bayesian linear regression with a zero-mean Gaussian
// weight prior: the posterior mean is the ridge solution
// (XᵀX + λI)⁻¹Xᵀy on standardised features. Lambda defaults to 1 (the
// standard unit-information prior), which shrinks coefficients and leaves
// the model biased where the data carry interactions it cannot represent.
type BayesianRidge struct {
	Lambda float64

	scaler scaler
	coef   []float64 // on standardised features
	mean   float64   // target mean (intercept on standardised data)
}

// Name implements Model.
func (*BayesianRidge) Name() string { return "BR" }

// Fit implements Model.
func (m *BayesianRidge) Fit(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	if m.Lambda <= 0 {
		m.Lambda = 1
	}
	m.scaler.fit(x)
	w := len(x[0])
	xtx := linalg.NewMatrix(w, w)
	xty := make([]float64, w)
	m.mean = 0
	for _, yi := range y {
		m.mean += yi
	}
	m.mean /= float64(len(y))
	row := make([]float64, w)
	for i := range x {
		m.scaler.transform(x[i], row)
		yc := y[i] - m.mean
		for a := 0; a < w; a++ {
			xty[a] += row[a] * yc
			for b := 0; b <= a; b++ {
				xtx.Set(a, b, xtx.At(a, b)+row[a]*row[b])
			}
		}
	}
	for a := 0; a < w; a++ {
		for b := a + 1; b < w; b++ {
			xtx.Set(a, b, xtx.At(b, a))
		}
	}
	xtx.AddDiagonal(m.Lambda * float64(len(x)) / 100)
	coef, err := linalg.SolveSPD(xtx, xty)
	if err != nil {
		return fmt.Errorf("regress: BR posterior: %w", err)
	}
	m.coef = coef
	return nil
}

// Predict implements Model.
func (m *BayesianRidge) Predict(x []float64) float64 {
	row := make([]float64, len(x))
	m.scaler.transform(x, row)
	return m.mean + linalg.Dot(m.coef, row)
}

// ---------------------------------------------------------------------------
// Linear epsilon-insensitive support vector regression.

// SVR is a linear ε-insensitive support vector regressor trained with
// averaged stochastic subgradient descent on standardised features and
// target. Epsilon follows the library default of 0.1 (in standardised
// target units), which deliberately tolerates — and therefore commits —
// errors up to a tenth of the target's standard deviation.
type SVR struct {
	Epsilon float64 // default 0.1
	C       float64 // default 1
	Epochs  int     // default 200
	Seed    int64

	scaler scaler
	yMean  float64
	yStd   float64
	coef   []float64
	bias   float64
}

// Name implements Model.
func (*SVR) Name() string { return "SVM" }

// Fit implements Model.
func (m *SVR) Fit(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	if m.Epsilon == 0 {
		m.Epsilon = 0.1
	}
	if m.C == 0 {
		m.C = 1
	}
	if m.Epochs == 0 {
		m.Epochs = 200
	}
	m.scaler.fit(x)
	m.yMean, m.yStd = meanStd(y)
	if m.yStd == 0 {
		m.yStd = 1
	}
	n := len(x)
	w := len(x[0])
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range x {
		xs[i] = make([]float64, w)
		m.scaler.transform(x[i], xs[i])
		ys[i] = (y[i] - m.yMean) / m.yStd
	}
	coef := make([]float64, w)
	sumCoef := make([]float64, w)
	var bias, sumBias float64
	lambda := 1 / (m.C * float64(n))
	state := uint64(m.Seed)*2654435761 + 12345
	steps := 0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for it := 0; it < n; it++ {
			state = state*6364136223846793005 + 1442695040888963407
			i := int(state>>33) % n
			steps++
			lr := 1 / (lambda * float64(steps+1000))
			pred := bias + linalg.Dot(coef, xs[i])
			r := pred - ys[i]
			// Epsilon-insensitive subgradient.
			var g float64
			if r > m.Epsilon {
				g = 1
			} else if r < -m.Epsilon {
				g = -1
			}
			for j := range coef {
				coef[j] -= lr * (lambda*coef[j] + g*xs[i][j])
			}
			bias -= lr * g * 0.1
			for j := range coef {
				sumCoef[j] += coef[j]
			}
			sumBias += bias
		}
	}
	total := float64(m.Epochs * n)
	for j := range coef {
		coef[j] = sumCoef[j] / total
	}
	m.coef = coef
	m.bias = sumBias / total
	return nil
}

// Predict implements Model.
func (m *SVR) Predict(x []float64) float64 {
	row := make([]float64, len(x))
	m.scaler.transform(x, row)
	return (m.bias+linalg.Dot(m.coef, row))*m.yStd + m.yMean
}

// ---------------------------------------------------------------------------
// Shared feature standardisation.

type scaler struct {
	mean, std []float64
}

func (s *scaler) fit(x [][]float64) {
	w := len(x[0])
	s.mean = make([]float64, w)
	s.std = make([]float64, w)
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
}

func (s *scaler) transform(in, out []float64) {
	for j, v := range in {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
}

func meanStd(y []float64) (mean, std float64) {
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(y)))
}
