package regress

import (
	"fmt"

	"cswap/internal/compress"
	"cswap/internal/gpu"
)

// TimePredictor is the deployed (de)compression time model: one bucketed-LR
// pair (compression, decompression) per supported algorithm, trained
// offline on synthetic tensors and queried online by the execution advisor
// ("one prediction ... is only 1 ms", Section V-E — here it is a pair of
// dot products).
type TimePredictor struct {
	Device *gpu.Device
	Launch compress.Launch

	comp   map[compress.Algorithm]*BucketedLR
	decomp map[compress.Algorithm]*BucketedLR
}

// TrainTimePredictor generates per-algorithm datasets from the device's
// kernel model at the given launch geometry and fits the bucketed LR
// sub-models. samplesPerAlg ≤ 0 uses the paper's 3000. The extended codec
// set is trained, not just the paper's four: an advisor can only pick a
// codec the predictor has a model for, and training only Algorithms()
// silently excluded Huffman from every downstream selection.
func TrainTimePredictor(d *gpu.Device, launch compress.Launch, samplesPerAlg int, seed int64) (*TimePredictor, error) {
	tp := &TimePredictor{
		Device: d,
		Launch: launch,
		comp:   make(map[compress.Algorithm]*BucketedLR),
		decomp: make(map[compress.Algorithm]*BucketedLR),
	}
	for _, alg := range compress.ExtendedAlgorithms() {
		ds := Generate(d, alg, launch, samplesPerAlg, seed+int64(alg))
		mc := NewBucketedLR()
		if err := mc.Fit(ds.X, ds.YC); err != nil {
			return nil, fmt.Errorf("regress: fit %s compression model: %w", alg, err)
		}
		mdc := NewBucketedLR()
		if err := mdc.Fit(ds.X, ds.YDC); err != nil {
			return nil, fmt.Errorf("regress: fit %s decompression model: %w", alg, err)
		}
		tp.comp[alg] = mc
		tp.decomp[alg] = mdc
	}
	return tp, nil
}

// Predict returns the estimated compression and decompression seconds for a
// tensor under the predictor's launch geometry.
func (tp *TimePredictor) Predict(alg compress.Algorithm, sizeBytes int64, sparsity float64) (timeC, timeDC float64, err error) {
	mc, ok := tp.comp[alg]
	if !ok {
		return 0, 0, fmt.Errorf("regress: no model for algorithm %s", alg)
	}
	x := []float64{float64(sizeBytes) / (1 << 20), sparsity}
	timeC = mc.Predict(x)
	timeDC = tp.decomp[alg].Predict(x)
	if timeC < 0 {
		timeC = 0
	}
	if timeDC < 0 {
		timeDC = 0
	}
	return timeC, timeDC, nil
}
