package regress

import (
	"math/rand"

	"cswap/internal/compress"
	"cswap/internal/gpu"
	"cswap/internal/stats"
)

// Sample generation protocol from Section IV-C / V-C: synthetic tensors
// with sizes between 20 MB and 2000 MB and sparsity between 20 % and 90 %,
// timed with the kernel model at a fixed launch geometry (the one the BO
// search selected for the deployment).
const (
	// MinSampleBytes and MaxSampleBytes bound the synthetic tensor sizes.
	MinSampleBytes = 20 << 20
	MaxSampleBytes = 2000 << 20
	// MinSampleSparsity and MaxSampleSparsity bound the sparsity sweep.
	MinSampleSparsity = 0.20
	MaxSampleSparsity = 0.90
	// DefaultSamples is the per-algorithm sample count (Section V-C:
	// "we generate a total of 3000 sparse tensors" per algorithm).
	DefaultSamples = 3000
)

// Dataset holds time-model training data for one (device, algorithm,
// launch) combination. Feature rows are [size in MB, sparsity].
type Dataset struct {
	Alg    compress.Algorithm
	Launch compress.Launch
	X      [][]float64
	YC     []float64 // measured compression seconds
	YDC    []float64 // measured decompression seconds
}

// Generate produces n timed samples from the device's kernel model with
// measurement noise, deterministic in the seed.
func Generate(d *gpu.Device, alg compress.Algorithm, launch compress.Launch, n int, seed int64) *Dataset {
	if n <= 0 {
		n = DefaultSamples
	}
	rng := stats.NewRNG(seed)
	ds := &Dataset{
		Alg:    alg,
		Launch: launch,
		X:      make([][]float64, n),
		YC:     make([]float64, n),
		YDC:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sizeBytes := MinSampleBytes + rng.Int63n(MaxSampleBytes-MinSampleBytes+1)
		s := MinSampleSparsity + rng.Float64()*(MaxSampleSparsity-MinSampleSparsity)
		c, dc := d.CompressionTimeNoisy(rng, gpu.KernelParams{
			Alg:       alg,
			SizeBytes: sizeBytes,
			Sparsity:  s,
			Launch:    launch,
		})
		ds.X[i] = []float64{float64(sizeBytes) / (1 << 20), s}
		ds.YC[i] = c
		ds.YDC[i] = dc
	}
	return ds
}

// Split partitions the dataset into train and test subsets with the given
// training fraction, shuffled deterministically by seed.
func (ds *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	n := len(ds.X)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	pick := func(idx []int) *Dataset {
		out := &Dataset{Alg: ds.Alg, Launch: ds.Launch}
		for _, i := range idx {
			out.X = append(out.X, ds.X[i])
			out.YC = append(out.YC, ds.YC[i])
			out.YDC = append(out.YDC, ds.YDC[i])
		}
		return out
	}
	return pick(perm[:cut]), pick(perm[cut:])
}

// EvalRAE fits a fresh instance of each model on the training set and
// returns its relative absolute error on the test set for both targets.
func EvalRAE(newModel func() Model, train, test *Dataset) (raeC, raeDC float64, err error) {
	mc := newModel()
	if err := mc.Fit(train.X, train.YC); err != nil {
		return 0, 0, err
	}
	mdc := newModel()
	if err := mdc.Fit(train.X, train.YDC); err != nil {
		return 0, 0, err
	}
	predC := make([]float64, len(test.X))
	predDC := make([]float64, len(test.X))
	for i, x := range test.X {
		predC[i] = mc.Predict(x)
		predDC[i] = mdc.Predict(x)
	}
	return stats.RAE(predC, test.YC), stats.RAE(predDC, test.YDC), nil
}
