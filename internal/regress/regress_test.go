package regress

import (
	"math"
	"testing"

	"cswap/internal/compress"
	"cswap/internal/gpu"
	"cswap/internal/memdb"
	"cswap/internal/stats"
)

// synthLinear builds y = 2 + 3·x0 − x1 with optional noise.
func synthLinear(n int, noise float64, seed int64) (x [][]float64, y []float64) {
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 2+3*a-b+noise*rng.NormFloat64())
	}
	return
}

func TestLinearRegressionExactFit(t *testing.T) {
	x, y := synthLinear(200, 0, 1)
	m := &LinearRegression{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-2) > 1e-8 || math.Abs(m.Coef[0]-3) > 1e-8 || math.Abs(m.Coef[1]+1) > 1e-8 {
		t.Fatalf("coefficients: intercept=%v coef=%v", m.Intercept, m.Coef)
	}
	if got := m.Predict([]float64{1, 1}); math.Abs(got-4) > 1e-8 {
		t.Fatalf("Predict = %v, want 4", got)
	}
}

func TestLinearRegressionNoisyFitClose(t *testing.T) {
	x, y := synthLinear(2000, 0.1, 2)
	m := &LinearRegression{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 0.05 || math.Abs(m.Coef[1]+1) > 0.05 {
		t.Fatalf("noisy coefficients drifted: %v", m.Coef)
	}
}

func TestFitRejectsDegenerateSets(t *testing.T) {
	models := []Model{&LinearRegression{}, &BayesianRidge{}, &SVR{}, &DecisionTree{}, NewBucketedLR()}
	for _, m := range models {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%s accepted empty training set", m.Name())
		}
		if err := m.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
			t.Errorf("%s accepted length mismatch", m.Name())
		}
		if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
			t.Errorf("%s accepted ragged rows", m.Name())
		}
	}
}

func TestBayesianRidgeShrinksTowardMean(t *testing.T) {
	x, y := synthLinear(500, 0.1, 3)
	br := &BayesianRidge{Lambda: 1}
	if err := br.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lr := &LinearRegression{}
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// BR must still be a sensible predictor.
	var seBR, seLR float64
	for i := range x {
		dBR := br.Predict(x[i]) - y[i]
		dLR := lr.Predict(x[i]) - y[i]
		seBR += dBR * dBR
		seLR += dLR * dLR
	}
	if seBR < seLR {
		t.Fatal("shrunk BR should not beat OLS on its own training data")
	}
	if seBR > 10*seLR+1 {
		t.Fatalf("BR unreasonably bad: %v vs %v", seBR, seLR)
	}
}

func TestSVRFitsLinearTrend(t *testing.T) {
	x, y := synthLinear(800, 0.05, 4)
	m := &SVR{Seed: 1}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(y))
	for i := range x {
		pred[i] = m.Predict(x[i])
	}
	if rae := stats.RAE(pred, y); rae > 0.30 {
		t.Fatalf("SVR training RAE = %v, should capture the trend", rae)
	}
}

func TestDecisionTreeFitsStepFunction(t *testing.T) {
	// A step function is the tree's best case and a linear model's worst.
	var x [][]float64
	var y []float64
	rng := stats.NewRNG(5)
	for i := 0; i < 800; i++ {
		v := rng.Float64()
		x = append(x, []float64{v, rng.Float64()})
		if v < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 9)
		}
	}
	dt := &DecisionTree{}
	if err := dt.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := dt.Predict([]float64{0.2, 0.5}); math.Abs(got-1) > 0.2 {
		t.Fatalf("left leaf = %v, want ≈1", got)
	}
	if got := dt.Predict([]float64{0.9, 0.5}); math.Abs(got-9) > 0.2 {
		t.Fatalf("right leaf = %v, want ≈9", got)
	}
	if dt.Depth() < 1 || dt.Leaves() < 2 {
		t.Fatalf("tree shape: depth=%d leaves=%d", dt.Depth(), dt.Leaves())
	}
}

func TestDecisionTreeRespectsMinLeaf(t *testing.T) {
	x, y := synthLinear(100, 0.5, 6)
	dt := &DecisionTree{MaxDepth: 30, MinLeaf: 20}
	if err := dt.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if dt.Leaves() > 100/20+1 {
		t.Fatalf("tree has %d leaves with MinLeaf=20 over 100 samples", dt.Leaves())
	}
}

func TestBucketedLRRouting(t *testing.T) {
	m := NewBucketedLR()
	if m.bucket(0.19) != 0 {
		t.Error("below-range sparsity should clamp to bucket 0")
	}
	if m.bucket(0.95) != m.Buckets-1 {
		t.Error("above-range sparsity should clamp to last bucket")
	}
	if m.bucket(0.21) != 0 || m.bucket(0.79) != m.Buckets-1 {
		t.Error("in-range routing wrong")
	}
}

func TestBucketedLRBeatsGlobalOnInteraction(t *testing.T) {
	// y = size·(0.7 + 0.6(1−s)) — the kernel model's interaction shape.
	rng := stats.NewRNG(7)
	var x [][]float64
	var y []float64
	for i := 0; i < 3000; i++ {
		size := 20 + rng.Float64()*1980
		s := 0.2 + rng.Float64()*0.7
		x = append(x, []float64{size, s})
		y = append(y, size*(0.7+0.6*(1-s)))
	}
	bucketed := NewBucketedLR()
	if err := bucketed.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	global := &LinearRegression{}
	if err := global.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	predB := make([]float64, len(y))
	predG := make([]float64, len(y))
	for i := range x {
		predB[i] = bucketed.Predict(x[i])
		predG[i] = global.Predict(x[i])
	}
	raeB, raeG := stats.RAE(predB, y), stats.RAE(predG, y)
	if raeB >= raeG {
		t.Fatalf("bucketed RAE %v not better than global %v", raeB, raeG)
	}
	if raeB > 0.04 {
		t.Fatalf("bucketed RAE %v, want ≤ 4%%", raeB)
	}
}

func TestBucketedLRSparseBucketFallsBackToGlobal(t *testing.T) {
	// All samples in one bucket: the other buckets must still predict
	// (via the pooled fallback) instead of returning zero.
	var x [][]float64
	var y []float64
	rng := stats.NewRNG(8)
	for i := 0; i < 100; i++ {
		size := rng.Float64() * 100
		x = append(x, []float64{size, 0.25}) // bucket 0 only
		y = append(y, 5*size)
	}
	m := NewBucketedLR()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{50, 0.75}); math.Abs(got-250) > 1 {
		t.Fatalf("fallback prediction = %v, want 250", got)
	}
}

func TestGenerateDatasetProtocol(t *testing.T) {
	d := gpu.V100()
	ds := Generate(d, compress.ZVC, compress.Launch{Grid: 199, Block: 64}, 500, 1)
	if len(ds.X) != 500 {
		t.Fatalf("n = %d", len(ds.X))
	}
	for i, x := range ds.X {
		sizeMB, s := x[0], x[1]
		if sizeMB < 20 || sizeMB > 2000 {
			t.Fatalf("sample %d size %v MB outside [20,2000]", i, sizeMB)
		}
		if s < 0.2 || s > 0.9 {
			t.Fatalf("sample %d sparsity %v outside [0.2,0.9]", i, s)
		}
		if ds.YC[i] <= 0 || ds.YDC[i] <= 0 {
			t.Fatalf("sample %d non-positive time", i)
		}
	}
	// Deterministic for the same seed.
	ds2 := Generate(d, compress.ZVC, compress.Launch{Grid: 199, Block: 64}, 500, 1)
	if ds.YC[7] != ds2.YC[7] {
		t.Fatal("dataset generation not deterministic")
	}
	// Default count.
	if n := len(Generate(d, compress.ZVC, d.DefaultLaunch(), 0, 2).X); n != DefaultSamples {
		t.Fatalf("default n = %d, want %d", n, DefaultSamples)
	}
}

func TestSplitPartitions(t *testing.T) {
	d := gpu.V100()
	ds := Generate(d, compress.RLE, d.DefaultLaunch(), 100, 3)
	train, test := ds.Split(0.7, 1)
	if len(train.X) != 70 || len(test.X) != 30 {
		t.Fatalf("split sizes %d/%d", len(train.X), len(test.X))
	}
	// Degenerate fractions stay non-empty.
	tr, te := ds.Split(0, 1)
	if len(tr.X) == 0 || len(te.X) == 0 {
		t.Fatal("degenerate split produced empty partition")
	}
	tr, te = ds.Split(1, 1)
	if len(tr.X) == 0 || len(te.X) == 0 {
		t.Fatal("degenerate split produced empty partition")
	}
}

func TestFigure10Ordering(t *testing.T) {
	// The headline of Section V-C: bucketed LR achieves ≈3 % RAE, clearly
	// better than BR and SVM.
	d := gpu.V100()
	ds := Generate(d, compress.ZVC, compress.Launch{Grid: 199, Block: 64}, 3000, 42)
	train, test := ds.Split(0.7, 42)

	rae := map[string]float64{}
	for name, mk := range map[string]func() Model{
		"LR":  func() Model { return NewBucketedLR() },
		"BR":  func() Model { return &BayesianRidge{} },
		"SVM": func() Model { return &SVR{Seed: 1} },
		"DT":  func() Model { return &DecisionTree{} },
	} {
		c, dc, err := EvalRAE(mk, train, test)
		if err != nil {
			t.Fatal(err)
		}
		rae[name] = (c + dc) / 2
	}
	if rae["LR"] > 0.05 {
		t.Errorf("LR RAE = %v, paper reports ≈3%%", rae["LR"])
	}
	if rae["LR"] >= rae["BR"] {
		t.Errorf("LR (%v) should beat BR (%v)", rae["LR"], rae["BR"])
	}
	if rae["LR"] >= rae["SVM"] {
		t.Errorf("LR (%v) should beat SVM (%v)", rae["LR"], rae["SVM"])
	}
	if rae["LR"] >= rae["DT"] {
		t.Errorf("LR (%v) should beat DT (%v)", rae["LR"], rae["DT"])
	}
}

func TestTimePredictorAccuracy(t *testing.T) {
	d := gpu.V100()
	launch := compress.Launch{Grid: 199, Block: 64}
	tp, err := TrainTimePredictor(d, launch, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11)
	for _, alg := range compress.Algorithms() {
		var relErrs []float64
		for trial := 0; trial < 50; trial++ {
			size := int64(MinSampleBytes + rng.Int63n(MaxSampleBytes-MinSampleBytes))
			s := 0.25 + rng.Float64()*0.5
			wc, wdc := d.CompressionTime(gpu.KernelParams{Alg: alg, SizeBytes: size, Sparsity: s, Launch: launch})
			pc, pdc, err := tp.Predict(alg, size, s)
			if err != nil {
				t.Fatal(err)
			}
			relErrs = append(relErrs, math.Abs(pc-wc)/wc, math.Abs(pdc-wdc)/wdc)
		}
		// Small tensors near the 20 MB sampling floor carry the largest
		// relative error, so bound the mean tightly and the worst case
		// loosely.
		if m := stats.Mean(relErrs); m > 0.08 {
			t.Errorf("%s mean relative error %v, want ≤ 8%%", alg, m)
		}
		if worst := stats.Max(relErrs); worst > 0.30 {
			t.Errorf("%s worst relative error %v, want ≤ 30%%", alg, worst)
		}
	}
}

func TestTimePredictorUnknownAlgorithm(t *testing.T) {
	d := gpu.V100()
	tp, err := TrainTimePredictor(d, d.DefaultLaunch(), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tp.Predict(compress.Algorithm(99), 1<<20, 0.5); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	// Predictions are clamped non-negative.
	c, dc, err := tp.Predict(compress.ZVC, 1, 0.99)
	if err != nil || c < 0 || dc < 0 {
		t.Fatalf("tiny-tensor prediction %v/%v err=%v", c, dc, err)
	}
}

func TestTimePredictorPersistence(t *testing.T) {
	d := gpu.V100()
	launch := compress.Launch{Grid: 199, Block: 64}
	tp, err := TrainTimePredictor(d, launch, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	db := memdb.New()
	if err := tp.Store(db); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadTimePredictor(db, "V100")
	if err != nil || !ok {
		t.Fatalf("load: %v %v", ok, err)
	}
	if got.Launch != launch {
		t.Fatalf("launch %v, want %v", got.Launch, launch)
	}
	// Restored predictions must match the original bit for bit.
	for _, alg := range compress.Algorithms() {
		for _, size := range []int64{30 << 20, 500 << 20, 1800 << 20} {
			for _, s := range []float64{0.25, 0.5, 0.8} {
				c1, dc1, err1 := tp.Predict(alg, size, s)
				c2, dc2, err2 := got.Predict(alg, size, s)
				if err1 != nil || err2 != nil || c1 != c2 || dc1 != dc2 {
					t.Fatalf("%s size=%d s=%v: (%v,%v,%v) vs (%v,%v,%v)",
						alg, size, s, c1, dc1, err1, c2, dc2, err2)
				}
			}
		}
	}
	// Absent key.
	if _, ok, _ := LoadTimePredictor(db, "2080Ti"); ok {
		t.Fatal("absent model reported present")
	}
	// Corrupt stored algorithm name.
	var snap predictorSnapshot
	if _, err := db.Get(PredictorKey("V100"), &snap); err != nil {
		t.Fatal(err)
	}
	snap.Comp["BOGUS"] = snap.Comp["ZVC"]
	if err := db.Put(PredictorKey("V100"), snap); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTimePredictor(db, "V100"); err == nil {
		t.Fatal("corrupt algorithm name accepted")
	}
}

func TestCrossValidateBucketedLR(t *testing.T) {
	d := gpu.V100()
	ds := Generate(d, compress.ZVC, compress.Launch{Grid: 199, Block: 64}, 1200, 13)
	raeC, raeDC, err := CrossValidate(func() Model { return NewBucketedLR() }, ds, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(raeC) != 5 || len(raeDC) != 5 {
		t.Fatalf("folds: %d/%d", len(raeC), len(raeDC))
	}
	mean, std := CVSummary(raeC)
	if mean > 0.06 {
		t.Fatalf("cross-validated RAE %v, want ≈3-4%%", mean)
	}
	if std > mean {
		t.Fatalf("fold variance too high: %v ± %v", mean, std)
	}
}

func TestCrossValidateRejectsBadInputs(t *testing.T) {
	d := gpu.V100()
	ds := Generate(d, compress.ZVC, d.DefaultLaunch(), 30, 1)
	if _, _, err := CrossValidate(func() Model { return NewBucketedLR() }, ds, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, _, err := CrossValidate(func() Model { return NewBucketedLR() }, ds, 20, 1); err == nil {
		t.Fatal("too many folds accepted")
	}
}

func TestInteractionLRMatchesBucketed(t *testing.T) {
	// The kernel time is linear in {size, size·sparsity}; an explicit
	// interaction term should fit it at least as well as six buckets.
	d := gpu.V100()
	ds := Generate(d, compress.ZVC, compress.Launch{Grid: 199, Block: 64}, 2000, 17)
	train, test := ds.Split(0.7, 17)
	ixC, _, err := EvalRAE(func() Model { return &InteractionLR{} }, train, test)
	if err != nil {
		t.Fatal(err)
	}
	bC, _, err := EvalRAE(func() Model { return NewBucketedLR() }, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if ixC > bC*1.1 {
		t.Fatalf("interaction LR RAE %v much worse than bucketed %v", ixC, bC)
	}
	if ixC > 0.06 {
		t.Fatalf("interaction LR RAE %v", ixC)
	}
	// Degenerate feature config self-heals; out-of-range errors.
	m := &InteractionLR{SparsityFeature: 0, SizeFeature: 0}
	if err := m.Fit(train.X, train.YC); err != nil {
		t.Fatal(err)
	}
	bad := &InteractionLR{SparsityFeature: 9, SizeFeature: 0}
	if err := bad.Fit(train.X, train.YC); err == nil {
		t.Fatal("out-of-range feature accepted")
	}
}
