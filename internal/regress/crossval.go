package regress

import (
	"fmt"
	"math/rand"

	"cswap/internal/stats"
)

// CrossValidate scores a model family with k-fold cross-validation on both
// targets of a dataset, returning per-fold RAE values. It is the
// variance-aware counterpart of the single split the paper's Figure 10
// reports.
func CrossValidate(newModel func() Model, ds *Dataset, k int, seed int64) (raeC, raeDC []float64, err error) {
	n := len(ds.X)
	if k < 2 {
		return nil, nil, fmt.Errorf("regress: need k ≥ 2, got %d", k)
	}
	if n < 2*k {
		return nil, nil, fmt.Errorf("regress: %d samples too few for %d folds", n, k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	foldOf := make([]int, n)
	for i, p := range perm {
		foldOf[p] = i % k
	}
	for fold := 0; fold < k; fold++ {
		train := &Dataset{Alg: ds.Alg, Launch: ds.Launch}
		test := &Dataset{Alg: ds.Alg, Launch: ds.Launch}
		for i := range ds.X {
			dst := train
			if foldOf[i] == fold {
				dst = test
			}
			dst.X = append(dst.X, ds.X[i])
			dst.YC = append(dst.YC, ds.YC[i])
			dst.YDC = append(dst.YDC, ds.YDC[i])
		}
		c, dc, err := EvalRAE(newModel, train, test)
		if err != nil {
			return nil, nil, fmt.Errorf("regress: fold %d: %w", fold, err)
		}
		raeC = append(raeC, c)
		raeDC = append(raeDC, dc)
	}
	return raeC, raeDC, nil
}

// CVSummary condenses cross-validation folds to mean ± std.
func CVSummary(folds []float64) (mean, std float64) {
	return stats.Mean(folds), stats.StdDev(folds)
}
