package regress

import (
	"fmt"
)

// BucketedLR is CSWAP's (de)compression time model (Section IV-C): n linear
// sub-models, each trained on the samples whose sparsity falls in
// [base + R·i/n, base + R·(i+1)/n), combined into one holistic model for
// inference. Bucketing piecewise-linearises the size×sparsity interaction
// that a single global linear fit cannot represent.
type BucketedLR struct {
	// SparsityFeature is the index of the sparsity feature in X.
	SparsityFeature int
	// Base and Range define the bucketed sparsity interval; the paper uses
	// base 20 % and range R = 60 % (sparsity is "mostly located" in
	// 20–80 %). Samples outside clamp to the nearest bucket.
	Base, Range float64
	// Buckets is n, the sub-model count (default 6).
	Buckets int

	subs []*LinearRegression
}

// Name implements Model.
func (*BucketedLR) Name() string { return "LR" }

// NewBucketedLR returns the paper-default configuration: 6 sub-models over
// sparsity 20–80 %, sparsity as the second feature.
func NewBucketedLR() *BucketedLR {
	return &BucketedLR{SparsityFeature: 1, Base: 0.20, Range: 0.60, Buckets: 6}
}

func (m *BucketedLR) bucket(s float64) int {
	if m.Range <= 0 || m.Buckets <= 0 {
		return 0
	}
	i := int((s - m.Base) / m.Range * float64(m.Buckets))
	if i < 0 {
		i = 0
	}
	if i >= m.Buckets {
		i = m.Buckets - 1
	}
	return i
}

// Fit implements Model, training each sparsity sub-model independently. A
// bucket with too few samples falls back to the pooled global fit.
func (m *BucketedLR) Fit(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	if m.Buckets <= 0 {
		m.Buckets = 6
	}
	if m.Range <= 0 {
		m.Base, m.Range = 0.20, 0.60
	}
	if m.SparsityFeature >= len(x[0]) {
		return fmt.Errorf("regress: sparsity feature %d out of range", m.SparsityFeature)
	}
	byBucket := make([][]int, m.Buckets)
	for i := range x {
		b := m.bucket(x[i][m.SparsityFeature])
		byBucket[b] = append(byBucket[b], i)
	}
	global := &LinearRegression{}
	if err := global.Fit(x, y); err != nil {
		return err
	}
	minSamples := len(x[0]) + 2
	m.subs = make([]*LinearRegression, m.Buckets)
	for b, idx := range byBucket {
		if len(idx) < minSamples {
			m.subs[b] = global
			continue
		}
		bx := make([][]float64, len(idx))
		by := make([]float64, len(idx))
		for k, i := range idx {
			bx[k] = x[i]
			by[k] = y[i]
		}
		sub := &LinearRegression{}
		if err := sub.Fit(bx, by); err != nil {
			m.subs[b] = global
			continue
		}
		m.subs[b] = sub
	}
	return nil
}

// Predict implements Model, routing to the sparsity bucket's sub-model.
func (m *BucketedLR) Predict(x []float64) float64 {
	if len(m.subs) == 0 {
		return 0
	}
	return m.subs[m.bucket(x[m.SparsityFeature])].Predict(x)
}

// InteractionLR is the ablation alternative to bucketing: a single global
// linear fit with the size×sparsity interaction added as an explicit
// feature. It can represent exactly the surface the bucketed model
// piecewise-approximates, at the cost of committing to the interaction's
// functional form.
type InteractionLR struct {
	SparsityFeature int // default 1
	SizeFeature     int // default 0

	inner LinearRegression
}

// Name implements Model.
func (*InteractionLR) Name() string { return "LR+ix" }

func (m *InteractionLR) expand(x []float64) []float64 {
	out := make([]float64, len(x)+1)
	copy(out, x)
	out[len(x)] = x[m.SizeFeature] * x[m.SparsityFeature]
	return out
}

// Fit implements Model.
func (m *InteractionLR) Fit(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	if m.SparsityFeature == m.SizeFeature {
		m.SparsityFeature, m.SizeFeature = 1, 0
	}
	if m.SparsityFeature >= len(x[0]) || m.SizeFeature >= len(x[0]) {
		return fmt.Errorf("regress: interaction features out of range")
	}
	expanded := make([][]float64, len(x))
	for i := range x {
		expanded[i] = m.expand(x[i])
	}
	return m.inner.Fit(expanded, y)
}

// Predict implements Model.
func (m *InteractionLR) Predict(x []float64) float64 {
	return m.inner.Predict(m.expand(x))
}
