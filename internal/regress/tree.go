package regress

import "sort"

// DecisionTree is a CART regression tree: greedy binary splits minimising
// the sum of squared errors, grown to MaxDepth with at least MinLeaf
// samples per leaf.
type DecisionTree struct {
	MaxDepth int // default 12
	MinLeaf  int // default 5

	root *treeNode
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64 // leaf mean
	leaf      bool
}

// Name implements Model.
func (*DecisionTree) Name() string { return "DT" }

// Fit implements Model.
func (m *DecisionTree) Fit(x [][]float64, y []float64) error {
	if err := checkTrainingSet(x, y); err != nil {
		return err
	}
	if m.MaxDepth == 0 {
		m.MaxDepth = 12
	}
	if m.MinLeaf == 0 {
		m.MinLeaf = 5
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	m.root = m.grow(x, y, idx, 0)
	return nil
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func (m *DecisionTree) grow(x [][]float64, y []float64, idx []int, depth int) *treeNode {
	if depth >= m.MaxDepth || len(idx) < 2*m.MinLeaf {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	bestFeature, bestPos := -1, -1
	bestGain := 0.0
	var bestOrder []int

	// Precompute total sum/sumsq for SSE deltas.
	var total, totalSq float64
	for _, i := range idx {
		total += y[i]
		totalSq += y[i] * y[i]
	}
	n := float64(len(idx))
	baseSSE := totalSq - total*total/n

	order := make([]int, len(idx))
	for f := 0; f < len(x[0]); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		var leftSum, leftSq float64
		for p := 0; p < len(order)-1; p++ {
			yi := y[order[p]]
			leftSum += yi
			leftSq += yi * yi
			nl := float64(p + 1)
			if p+1 < m.MinLeaf || len(order)-p-1 < m.MinLeaf {
				continue
			}
			if x[order[p]][f] == x[order[p+1]][f] {
				continue // cannot split between equal values
			}
			nr := n - nl
			rightSum := total - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
			if gain := baseSSE - sse; gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestPos = p
				bestOrder = append(bestOrder[:0], order...)
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	left := append([]int(nil), bestOrder[:bestPos+1]...)
	right := append([]int(nil), bestOrder[bestPos+1:]...)
	threshold := (x[bestOrder[bestPos]][bestFeature] + x[bestOrder[bestPos+1]][bestFeature]) / 2
	return &treeNode{
		feature:   bestFeature,
		threshold: threshold,
		left:      m.grow(x, y, left, depth+1),
		right:     m.grow(x, y, right, depth+1),
	}
}

// Predict implements Model.
func (m *DecisionTree) Predict(x []float64) float64 {
	node := m.root
	for node != nil && !node.leaf {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	if node == nil {
		return 0
	}
	return node.value
}

// Depth returns the maximum depth of the fitted tree (0 for a stump).
func (m *DecisionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(m.root)
}

// Leaves returns the number of leaf nodes.
func (m *DecisionTree) Leaves() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		return walk(n.left) + walk(n.right)
	}
	return walk(m.root)
}
