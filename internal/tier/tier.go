// Package tier is the second spill tier under the swapping executor: a
// file-backed blob store that cold swapped tensors and pool runs demote
// into when the pinned-host pool is under pressure, and promote back from
// transparently on swap-in. Where host memory stops, the tier continues —
// CSWAP's blobs are already compressed, so moving them one level further
// down the hierarchy costs only the (much smaller) compressed size, the
// cDMA premise applied to disk.
//
// Layout: one file per blob under the store directory, named by the
// URL-escaped key (keys look like the host pool's "tenant/tensor" names).
// Each file carries a fixed header (magic, version, section lengths, a
// CRC-32 over metadata+payload), a JSON metadata section, and the raw blob
// bytes. Per-blob metadata is mirrored in an internal/memdb database for
// low-latency retrieval without touching disk; the in-memory index carries
// the occupancy accounting the capacity check runs against.
//
// Crash-consistency contract: Put writes the complete file to a temporary
// name and renames it into place — the rename is the commit point. A crash
// (or an injected faultinject.SiteTierCommit failure) between the blob
// write and the commit leaves at most a *.tmp file, which Open deletes; a
// torn or bit-rotted blob fails its CRC and is scrubbed at Open and
// refused at Get. A demotion interrupted before commit therefore leaves
// the blob absent from the tier — and still owned by the executor's host
// state — never readable-but-torn.
package tier

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"cswap/internal/faultinject"
	"cswap/internal/memdb"
)

// Store errors.
var (
	// ErrFull reports that admitting the blob would exceed the store's
	// byte capacity; the caller must evict (or give up) first.
	ErrFull = errors.New("tier: store full")
	// ErrNotFound reports a key with no committed blob.
	ErrNotFound = errors.New("tier: blob not found")
	// ErrCorrupt reports a committed blob that failed its integrity check;
	// Get never returns torn bytes.
	ErrCorrupt = errors.New("tier: blob corrupt")
)

const (
	magic      = 0x43535754 // "CSWT"
	version    = 1
	headerLen  = 20 // magic, version, metaLen, payloadLen, crc — uint32 each
	blobSuffix = ".blob"
	tmpSuffix  = ".tmp"
)

// Stats counts store activity since Open.
type Stats struct {
	// Puts/Gets/Deletes are successful committed operations.
	Puts, Gets, Deletes int
	// Recovered counts blobs rebuilt into the index by Open from a
	// previous incarnation's directory.
	Recovered int
	// Scrubbed counts files Open discarded: uncommitted *.tmp leftovers
	// and blobs failing their integrity check.
	Scrubbed int
}

// Store is the file-backed spill tier. All methods are safe for concurrent
// use; operations serialize on one lock (callers bound disk concurrency
// anyway — the executor runs tier I/O under its own small in-flight
// window).
type Store struct {
	dir string
	cap int64 // bytes; 0 = unbounded
	inj *faultinject.Injector

	mu    sync.Mutex
	index map[string]int64 // key → committed payload bytes
	used  int64
	db    *memdb.DB // key → blob metadata (JSON), mirrored from the files
	stats Stats
}

// Open creates (or reopens) a store rooted at dir with the given byte
// capacity (0 = unbounded). Reopening a directory from a previous
// incarnation recovers every committed blob into the index and metadata
// database, deletes uncommitted *.tmp leftovers, and scrubs blobs that
// fail their integrity check — restart recovery is just Open. inj
// optionally injects a commit-point failure (faultinject.SiteTierCommit);
// nil injects nothing.
func Open(dir string, capacity int64, inj *faultinject.Injector) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tier: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tier: %w", err)
	}
	s := &Store{
		dir:   dir,
		cap:   capacity,
		inj:   inj,
		index: make(map[string]int64),
		db:    memdb.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tier: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// An uncommitted write from a crashed demotion: the blob never
			// made the index, so its host-state owner still holds it.
			_ = os.Remove(filepath.Join(dir, name))
			s.stats.Scrubbed++
		case strings.HasSuffix(name, blobSuffix):
			key, kerr := url.PathUnescape(strings.TrimSuffix(name, blobSuffix))
			buf, rerr := os.ReadFile(filepath.Join(dir, name))
			var meta, payload []byte
			var perr error
			if rerr == nil {
				meta, payload, perr = parseBlob(buf)
			}
			if kerr != nil || rerr != nil || perr != nil {
				_ = os.Remove(filepath.Join(dir, name))
				s.stats.Scrubbed++
				continue
			}
			s.index[key] = int64(len(payload))
			s.used += int64(len(payload))
			_ = s.db.Put(key, json.RawMessage(meta))
			s.stats.Recovered++
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Capacity returns the store's byte capacity (0 = unbounded).
func (s *Store) Capacity() int64 { return s.cap }

// Used returns the committed payload bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Len returns the number of committed blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys returns the committed keys, sorted.
func (s *Store) Keys() []string { return s.db.Keys("") }

// Contains reports whether a committed blob exists for key.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Stats returns a snapshot of store activity.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// path maps a key to its committed file path.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, url.PathEscape(key)+blobSuffix)
}

// Put commits blob under key with its JSON-serialisable metadata,
// replacing any previous blob. It fails with ErrFull when the store
// cannot hold the payload; any failure — including an injected
// SiteTierCommit fault at the commit point — leaves the store without the
// new blob (the previous one, if any, survives) and the index unchanged.
// The blob is copied; the caller keeps ownership of its slice.
func (s *Store) Put(key string, blob []byte, meta any) error {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("tier: put %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.index[key] // 0 when absent
	if s.cap > 0 && s.used-prev+int64(len(blob)) > s.cap {
		return fmt.Errorf("%w: %q needs %d, %d of %d in use", ErrFull, key, len(blob), s.used, s.cap)
	}

	buf := make([]byte, headerLen+len(metaJSON)+len(blob))
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(metaJSON)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(blob)))
	copy(buf[headerLen:], metaJSON)
	copy(buf[headerLen+len(metaJSON):], blob)
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(buf[headerLen:]))

	final := s.path(key)
	tmp := final + tmpSuffix
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tier: put %q: %w", key, err)
	}
	// The seam crash-consistency tests kill the store at: the blob is fully
	// written but not yet committed. Recovery (Open) deletes the *.tmp.
	if err := s.inj.Fail(faultinject.SiteTierCommit); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tier: put %q: %w", key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tier: put %q: %w", key, err)
	}
	s.index[key] = int64(len(blob))
	s.used += int64(len(blob)) - prev
	_ = s.db.Put(key, json.RawMessage(metaJSON))
	s.stats.Puts++
	return nil
}

// Get returns a copy of the committed blob and, when metaOut is non-nil,
// unmarshals the blob's metadata section into it. Integrity is verified
// end to end: a blob whose header or CRC does not check out returns
// ErrCorrupt, never torn bytes.
func (s *Store) Get(key string, metaOut any) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	buf, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, fmt.Errorf("tier: get %q: %w", key, err)
	}
	meta, payload, err := parseBlob(buf)
	if err != nil {
		return nil, fmt.Errorf("tier: get %q: %w", key, err)
	}
	if metaOut != nil {
		if err := json.Unmarshal(meta, metaOut); err != nil {
			return nil, fmt.Errorf("tier: get %q: %w", key, err)
		}
	}
	s.stats.Gets++
	return payload, nil
}

// Meta unmarshals key's metadata from the in-memory database into out
// without touching disk, reporting whether the key exists.
func (s *Store) Meta(key string, out any) (bool, error) {
	return s.db.Get(key, out)
}

// Delete removes key's blob and metadata. Deleting an absent key is a
// no-op returning false.
func (s *Store) Delete(key string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.index[key]
	if !ok {
		return false, nil
	}
	if err := os.Remove(s.path(key)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return false, fmt.Errorf("tier: delete %q: %w", key, err)
	}
	delete(s.index, key)
	s.used -= size
	s.db.Delete(key)
	s.stats.Deletes++
	return true, nil
}

// parseBlob validates one blob file image end to end and returns views of
// its metadata section and payload (backed by buf).
func parseBlob(buf []byte) (meta, payload []byte, err error) {
	if len(buf) < headerLen {
		return nil, nil, fmt.Errorf("%w: %d-byte file", ErrCorrupt, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != version {
		return nil, nil, fmt.Errorf("%w: version %d", ErrCorrupt, v)
	}
	metaLen := int64(binary.LittleEndian.Uint32(buf[8:]))
	payloadLen := int64(binary.LittleEndian.Uint32(buf[12:]))
	if int64(len(buf)) != headerLen+metaLen+payloadLen {
		return nil, nil, fmt.Errorf("%w: %d bytes, header promises %d",
			ErrCorrupt, len(buf), headerLen+metaLen+payloadLen)
	}
	if crc32.ChecksumIEEE(buf[headerLen:]) != binary.LittleEndian.Uint32(buf[16:]) {
		return nil, nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return buf[headerLen : headerLen+metaLen], buf[headerLen+metaLen:], nil
}
