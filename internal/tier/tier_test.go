package tier

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cswap/internal/faultinject"
)

type meta struct {
	RawBytes int64
	Alg      string
}

func open(t *testing.T, dir string, capacity int64, inj *faultinject.Injector) *Store {
	t.Helper()
	s, err := Open(dir, capacity, inj)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0, nil)
	blob := []byte("compressed-ish payload bytes")
	want := meta{RawBytes: 4096, Alg: "zvc"}
	if err := s.Put("tenant/tensor-0", blob, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !s.Contains("tenant/tensor-0") || s.Len() != 1 || s.Used() != int64(len(blob)) {
		t.Fatalf("index after put: contains=%v len=%d used=%d", s.Contains("tenant/tensor-0"), s.Len(), s.Used())
	}
	var got meta
	back, err := s.Get("tenant/tensor-0", &got)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(back, blob) {
		t.Fatalf("payload mismatch: got %q want %q", back, blob)
	}
	if got != want {
		t.Fatalf("meta mismatch: got %+v want %+v", got, want)
	}
	var fast meta
	if ok, err := s.Meta("tenant/tensor-0", &fast); err != nil || !ok || fast != want {
		t.Fatalf("Meta: ok=%v err=%v got %+v", ok, err, fast)
	}
	if ok, err := s.Delete("tenant/tensor-0"); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if s.Contains("tenant/tensor-0") || s.Used() != 0 {
		t.Fatalf("index after delete: contains=%v used=%d", s.Contains("tenant/tensor-0"), s.Used())
	}
	if _, err := s.Get("tenant/tensor-0", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
	if ok, _ := s.Delete("tenant/tensor-0"); ok {
		t.Fatal("double delete reported true")
	}
}

func TestPutReplacesAndAccountsCapacity(t *testing.T) {
	s := open(t, t.TempDir(), 100, nil)
	if err := s.Put("k", make([]byte, 80), nil); err != nil {
		t.Fatalf("Put 80: %v", err)
	}
	// A replacement is charged against the slot it frees, not on top of it.
	if err := s.Put("k", make([]byte, 90), nil); err != nil {
		t.Fatalf("replace 90: %v", err)
	}
	if s.Used() != 90 || s.Len() != 1 {
		t.Fatalf("used=%d len=%d after replace", s.Used(), s.Len())
	}
	if err := s.Put("k2", make([]byte, 20), nil); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull put: %v, want ErrFull", err)
	}
	if s.Contains("k2") {
		t.Fatal("refused put left an index entry")
	}
}

func TestReopenRecoversCommittedBlobs(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0, nil)
	if err := s.Put("a/x", []byte("alpha"), meta{RawBytes: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b/y", []byte("bravo-bravo"), meta{RawBytes: 11}); err != nil {
		t.Fatal(err)
	}

	// A new incarnation over the same directory sees exactly the committed
	// state: both blobs, bit-identical, metadata rebuilt into memdb.
	s2 := open(t, dir, 0, nil)
	if s2.Len() != 2 || s2.Used() != int64(len("alpha")+len("bravo-bravo")) {
		t.Fatalf("recovered len=%d used=%d", s2.Len(), s2.Used())
	}
	if got := s2.Stats().Recovered; got != 2 {
		t.Fatalf("Recovered = %d, want 2", got)
	}
	var m meta
	back, err := s2.Get("b/y", &m)
	if err != nil || !bytes.Equal(back, []byte("bravo-bravo")) || m.RawBytes != 11 {
		t.Fatalf("recovered get: %q %+v %v", back, m, err)
	}
}

func TestOpenScrubsTmpAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0, nil)
	if err := s.Put("keep", []byte("keep-me"), nil); err != nil {
		t.Fatal(err)
	}
	// An uncommitted write (crash between blob write and rename) and a
	// bit-rotted committed blob.
	if err := os.WriteFile(filepath.Join(dir, "torn.blob.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := s.path("keep")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rot := append([]byte(nil), buf...)
	rot[len(rot)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "rotted.blob"), rot, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0, nil)
	if got := s2.Stats().Scrubbed; got != 2 {
		t.Fatalf("Scrubbed = %d, want 2", got)
	}
	if s2.Len() != 1 || !s2.Contains("keep") {
		t.Fatalf("recovered len=%d contains(keep)=%v", s2.Len(), s2.Contains("keep"))
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d files survive the scrub, want 1", len(entries))
	}
}

func TestGetRefusesCorruptBlob(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0, nil)
	if err := s.Put("k", []byte("payload-payload-payload"), nil); err != nil {
		t.Fatal(err)
	}
	path := s.path("k")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-3] ^= 0x10
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k", nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of rotted blob: %v, want ErrCorrupt", err)
	}
	// Truncation (a torn write) is refused the same way.
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k", nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of truncated blob: %v, want ErrCorrupt", err)
	}
}

func TestCommitFaultLeavesBlobCleanlyAbsent(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Fault{Site: faultinject.SiteTierCommit, Mode: faultinject.Fail})
	s := open(t, dir, 0, inj)
	err := s.Put("t/x", []byte("doomed"), nil)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put under commit fault: %v, want ErrInjected", err)
	}
	if s.Contains("t/x") || s.Used() != 0 {
		t.Fatalf("failed commit left index state: contains=%v used=%d", s.Contains("t/x"), s.Used())
	}
	// The "restart": reopening the directory finds nothing to recover —
	// the blob is cleanly absent, not torn.
	s2 := open(t, dir, 0, nil)
	if s2.Len() != 0 || s2.Stats().Recovered != 0 {
		t.Fatalf("reopen after failed commit: len=%d recovered=%d", s2.Len(), s2.Stats().Recovered)
	}
	if _, err := s2.Get("t/x", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after failed commit: %v, want ErrNotFound", err)
	}
	// The second attempt (the injector fires once) commits normally.
	if err := s.Put("t/x", []byte("doomed"), nil); err != nil {
		t.Fatalf("retry put: %v", err)
	}
	if !s.Contains("t/x") {
		t.Fatal("retry put did not commit")
	}
}

func TestKeysEscapeSafely(t *testing.T) {
	s := open(t, t.TempDir(), 0, nil)
	keys := []string{"a/b", "a%2Fb", "../escape", "plain", "sp ace"}
	for _, k := range keys {
		if err := s.Put(k, []byte(k), nil); err != nil {
			t.Fatalf("Put %q: %v", k, err)
		}
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d (keys must not collide)", s.Len(), len(keys))
	}
	for _, k := range keys {
		back, err := s.Get(k, nil)
		if err != nil || !bytes.Equal(back, []byte(k)) {
			t.Fatalf("Get %q: %q %v", k, back, err)
		}
	}
	// Every file stays inside the store directory.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(keys) {
		t.Fatalf("%d files for %d keys", len(entries), len(keys))
	}
}
