package server_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"cswap/client"
	"cswap/internal/compress"
	"cswap/internal/metrics"
	"cswap/internal/server"
	"cswap/internal/tensor"
)

// tunerTestConfig is tuned for test latency, not serving, and every knob
// matters for determinism:
//
//   - Grid 4 keeps parallel-container chunks large enough that Huffman's
//     256-byte per-chunk code table amortizes (at the 128-grid default a
//     16 Ki-element tensor would carry more table than data).
//   - The modeled link is glacial (128 KiB/s) so the transfer saving of a
//     good ratio dwarfs probe kernel times, which are wall-clock and
//     inflated ~10x by the race detector.
//   - The probe matches the swapped tensors' size (scale factor 1), so
//     kernel-time extrapolation adds no noise.
//   - BOProbes -1 pins the launch: this test is about codec verdicts, and
//     a re-probed geometry would change the chunking mid-test.
func tunerTestTuner() server.TunerConfig {
	return server.TunerConfig{
		Enabled:         true,
		Interval:        20 * time.Millisecond,
		MinSwaps:        2,
		DriftThreshold:  0.15,
		LinkBytesPerSec: 128 << 10,
		ProbeElems:      16384,
		BOProbes:        -1,
		Seed:            1,
	}
}

func tunerTestOptions(tc server.TunerConfig) []server.Option {
	return []server.Option{
		server.WithLaunch(compress.Launch{Grid: 4, Block: 64}),
		server.WithTuner(tc),
	}
}

// TestTunerSwitchesCodecOnDrift is the tuning loop end to end: a tenant
// swapping dense tensors through the Auto selector gets a Huffman verdict
// (the codec the selection bug excluded), and when the same tenant's
// workload turns sparse the tuner notices the drift and switches its
// codec — all of it visible in the registry behind /metrics.
func TestTunerSwitchesCodecOnDrift(t *testing.T) {
	s, url := newTestServer(t, tunerTestOptions(tunerTestTuner())...)
	c := client.New(url)
	ctx := context.Background()

	gen := tensor.NewGenerator(7)
	dense := gen.Uniform(16384, 0).Data
	if err := c.Register(ctx, "dense0", dense); err != nil {
		t.Fatal(err)
	}

	// cycle swaps one tensor out through Auto and back in, feeding the
	// tenant profile one observation per call.
	cycle := func(name string) {
		t.Helper()
		if err := c.SwapOut(ctx, name); err != nil {
			t.Fatalf("swap-out %s: %v", name, err)
		}
		if _, err := c.SwapIn(ctx, name); err != nil {
			t.Fatalf("swap-in %s: %v", name, err)
		}
	}

	// driveUntil keeps swapping until the counter reaches min or the
	// deadline passes (the tuner ticks on its own clock, so the workload
	// must stay live while we wait).
	driveUntil := func(name, counter string, min float64, labels ...metrics.Label) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			cycle(name)
			if counterValue(t, s, counter, labels...) >= min {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		snap := s.Registry().Snapshot()
		for _, c := range snap.Counters {
			if strings.HasPrefix(c.Name, "server_tuner") || strings.HasPrefix(c.Name, "server_auto") ||
				strings.HasPrefix(c.Name, "costmodel") {
				t.Logf("%s %v = %v", c.Name, c.Labels, c.Value)
			}
		}
		t.Fatalf("%s%v never reached %v", counter, labels, min)
	}

	// Phase 1: dense workload → the tuner's verdict must be Huffman, the
	// codec BestRatioAlgorithm's off-by-one exclusion could never pick.
	driveUntil("dense0", "server_tuner_verdicts_total", 1,
		metrics.L("tenant", "default"), metrics.L("codec", "HUF"))

	// The verdict steers real traffic: subsequent Auto swap-outs move
	// Huffman-compressed bytes through the executor.
	driveUntil("dense0", "server_auto_codec_total", 1,
		metrics.L("tenant", "default"), metrics.L("codec", "HUF"))
	if v, _ := s.Registry().Snapshot().Counter("executor_moved_bytes_by_codec_total",
		metrics.L("codec", "HUF")); v <= 0 {
		t.Errorf("executor_moved_bytes_by_codec_total{codec=HUF} = %v, want > 0", v)
	}

	// Phase 2: the workload turns sparse. The EWMA profile drifts past the
	// threshold within a few swaps and the tuner must switch the codec.
	if err := c.Free(ctx, "dense0"); err != nil {
		t.Fatal(err)
	}
	sparse := gen.Uniform(16384, 0.95).Data
	if err := c.Register(ctx, "sparse0", sparse); err != nil {
		t.Fatal(err)
	}
	// The EWMA converges toward 0.95 over a few swaps; once it does, ZVC's
	// measured ratio beats every other codec, so requiring a ZVC verdict
	// (not merely "the verdict changed") proves a genuine codec switch.
	driveUntil("sparse0", "server_tuner_verdicts_total", 1,
		metrics.L("tenant", "default"), metrics.L("codec", "ZVC"))
	if v := counterValue(t, s, "server_tuner_codec_switches_total",
		metrics.L("tenant", "default")); v < 1 {
		t.Errorf("server_tuner_codec_switches_total = %v, want >= 1", v)
	}

	// The whole loop is observable where an operator looks: /metrics.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"server_tuner_verdicts_total",
		"server_tuner_codec_switches_total",
		"server_tuner_sparsity",
		"server_auto_codec_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestTunerReprobesLaunch exercises the geometry half of the loop: a new
// compressing verdict triggers a Bayesian-optimisation launch re-probe,
// and the winner lands atomically on the executor.
func TestTunerReprobesLaunch(t *testing.T) {
	tc := tunerTestTuner()
	tc.BOProbes = 2
	s, url := newTestServer(t, tunerTestOptions(tc)...)
	c := client.New(url)
	ctx := context.Background()

	dense := tensor.NewGenerator(11).Uniform(16384, 0).Data
	if err := c.Register(ctx, "d0", dense); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.SwapOut(ctx, "d0"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.SwapIn(ctx, "d0"); err != nil {
			t.Fatal(err)
		}
		if counterValue(t, s, "server_tuner_reprobes_total") >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := counterValue(t, s, "server_tuner_reprobes_total"); v < 1 {
		t.Fatalf("server_tuner_reprobes_total = %v, want >= 1", v)
	}
	// The installed geometry is the BO winner: valid, and published on the
	// tuner's launch gauges.
	l := s.Executor().Launch()
	if err := l.Validate(); err != nil {
		t.Fatalf("executor launch after reprobe invalid: %v", err)
	}
	grid, _ := s.Registry().Snapshot().Gauge("server_tuner_launch_grid")
	block, _ := s.Registry().Snapshot().Gauge("server_tuner_launch_block")
	if int(grid) != l.Grid || int(block) != l.Block {
		t.Errorf("launch gauges (%v,%v) != executor launch %v", grid, block, l)
	}
}

// TestAutoWithoutTunerFallsBack proves Auto is safe with tuning off: the
// service resolves it per tensor from the analytic ratio model, so a dense
// tensor compresses with Huffman and round-trips bit-exactly.
func TestAutoWithoutTunerFallsBack(t *testing.T) {
	s, url := newTestServer(t)
	c := client.New(url)
	ctx := context.Background()

	data := tensor.NewGenerator(3).Uniform(4096, 0).Data
	want := append([]float32(nil), data...)
	if err := c.Register(ctx, "t0", data); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOut(ctx, "t0"); err != nil {
		t.Fatal(err)
	}
	got, err := c.SwapIn(ctx, "t0")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if v := counterValue(t, s, "server_auto_codec_total",
		metrics.L("tenant", "default"), metrics.L("codec", "HUF")); v != 1 {
		t.Errorf("server_auto_codec_total{codec=HUF} = %v, want 1 (dense fallback is Huffman)", v)
	}
}
