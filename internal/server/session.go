package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cswap/internal/compress"
	"cswap/internal/executor"
	"cswap/internal/metrics"
)

// ErrQuotaExceeded reports that a register would push a tenant past its
// device-memory quota. It is a per-tenant admission refusal, enforced
// before the shared devmem pool is touched, so one tenant's appetite
// cannot starve the others out of the device.
var ErrQuotaExceeded = errors.New("server: tenant device-memory quota exceeded")

// ErrAlreadyRegistered reports a register for a name the tenant already
// holds.
var ErrAlreadyRegistered = errors.New("server: tensor already registered")

// ErrUnknownTensor reports an operation on a name the tenant never
// registered (or already freed).
var ErrUnknownTensor = errors.New("server: unknown tensor")

// errEntryBusy reports that another request of the same tenant holds the
// tensor right now; it maps to the same retry guidance as the executor's
// ErrBusy.
var errEntryBusy = errors.New("server: tensor busy")

// session is one tenant's view of the service: its registered tensors and
// its quota accounting. Sessions are created on first use of a tenant
// name and live until the server shuts down — freeing every tensor empties
// a session but keeps it (and its metric series) warm.
type session struct {
	tenant string
	quota  int64 // bound on the tenant's registered (live) tensor bytes
	// tierQuota bounds the tenant's tier-resident bytes (the second
	// bucket quota charges migrate into when a tensor demotes to disk);
	// zero or negative means unbounded.
	tierQuota int64
	used      *metrics.Gauge
	tierUsed  *metrics.Gauge

	mu sync.Mutex
	// usedB charges registered tensors whose payload is device- or
	// host-resident; tierUsedB charges the ones demoted to the disk tier.
	// Charges migrate lazily (syncTier), as the server observes residency
	// at operation boundaries. Block pools always charge usedB: their
	// reservation is whole-pool, even while individual runs are tiered.
	usedB     int64
	tierUsedB int64
	entries   map[string]*entry

	// Tuning state (guarded by mu): the live workload profile the tuner
	// folds swap-outs into, and the current/previous codec verdicts. prev
	// is the rollback target when cur's realized cost belies its
	// prediction.
	prof      tenantProfile
	cur, prev verdict
}

// profileAlpha is the EWMA smoothing factor for the tenant workload
// profile: heavy enough that a genuine phase change (a new layer's
// activations, a densified model) shows within a handful of swaps, light
// enough that one outlier tensor does not trigger a retune.
const profileAlpha = 0.3

// tenantProfile is what the tuner knows about a tenant's swap-out stream:
// exponentially weighted sparsity and size, plus the swap count since the
// tuner last acted (its evidence budget).
type tenantProfile struct {
	ewmaSparsity float64
	ewmaBytes    float64
	swaps        int64
	seeded       bool
}

// verdict is one tuner decision for a tenant: what an Auto swap-out
// resolves to, at which observed sparsity it was made, and the cost model's
// predicted per-swap cost backing it (the rollback comparison point).
type verdict struct {
	valid      bool
	compress   bool
	alg        compress.Algorithm
	atSparsity float64
	predicted  float64
}

// codecLabel is the verdict's metric label value: the codec name, or "raw"
// when the verdict is not to compress.
func (v verdict) codecLabel() string {
	if !v.compress {
		return "raw"
	}
	return v.alg.String()
}

// observeSwap folds one swap-out into the tenant profile.
func (s *session) observeSwap(sparsity float64, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.prof.seeded {
		s.prof = tenantProfile{ewmaSparsity: sparsity, ewmaBytes: float64(bytes), seeded: true}
	} else {
		s.prof.ewmaSparsity += profileAlpha * (sparsity - s.prof.ewmaSparsity)
		s.prof.ewmaBytes += profileAlpha * (float64(bytes) - s.prof.ewmaBytes)
	}
	s.prof.swaps++
}

// currentVerdict returns the tuner's standing verdict, if any.
func (s *session) currentVerdict() (verdict, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur, s.cur.valid
}

// tunerState snapshots the profile and both verdicts for one tuner pass.
func (s *session) tunerState() (tenantProfile, verdict, verdict) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prof, s.cur, s.prev
}

// setVerdict installs a new verdict, demoting the old one to the rollback
// slot and resetting the evidence budget.
func (s *session) setVerdict(v verdict) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prev = s.cur
	s.cur = v
	s.prof.swaps = 0
}

// rollbackVerdict reverts to the previous verdict (when one exists),
// re-anchoring it at the current profile so the revert itself does not
// immediately read as drift. Reports whether a rollback happened.
func (s *session) rollbackVerdict() (verdict, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.prev.valid {
		return verdict{}, false
	}
	s.cur, s.prev = s.prev, s.cur
	s.cur.atSparsity = s.prof.ewmaSparsity
	s.prof.swaps = 0
	return s.cur, true
}

// entry is one registered tensor. Its lock serialises same-tensor requests
// inside the server: handlers TryLock and answer "busy, retry" instead of
// queueing, which both preserves the executor's ErrBusy discipline at the
// HTTP boundary and keeps a response's view of the tensor's data exclusive
// while it is encoded.
type entry struct {
	mu sync.Mutex
	h  *executor.Handle
	// pool is set instead of h when the entry is a paged block pool
	// (register-pool): one name, one quota charge, many blocks. Exactly one
	// of h and pool is non-nil once the register commits.
	pool *executor.BlockPool
	// bytes is the tensor's uncompressed footprint, the unit of quota
	// accounting (what the tensor pins on device while resident).
	bytes int64
	// sparsity is the zero fraction measured at register time — the
	// per-tensor signal behind Auto codec resolution and the tenant
	// profile the tuner tracks. Written once under mu before the register
	// response; read under the entry lock afterwards.
	sparsity float64
	// tierCharged mirrors which quota bucket currently charges this
	// entry: false = device bucket (usedB), true = tier bucket
	// (tierUsedB). Guarded by the entry lock, reconciled by syncTier.
	tierCharged bool
}

func newSession(tenant string, quota, tierQuota int64, reg *metrics.Registry) *session {
	s := &session{
		tenant:    tenant,
		quota:     quota,
		tierQuota: tierQuota,
		used:      reg.Gauge("server_tenant_used_bytes", metrics.L("tenant", tenant)),
		tierUsed:  reg.Gauge("server_tenant_tier_used_bytes", metrics.L("tenant", tenant)),
		entries:   map[string]*entry{},
	}
	reg.Gauge("server_tenant_quota_bytes", metrics.L("tenant", tenant)).Set(float64(quota))
	reg.Gauge("server_tenant_tier_quota_bytes", metrics.L("tenant", tenant)).Set(float64(tierQuota))
	return s
}

// reserve admits `bytes` of new registration against the quota and
// installs a placeholder entry, locked by the caller. The caller must
// commit (entry.h set) or abort (release) it. Admitting before touching
// the executor means a rejected tenant never consumes shared pool
// capacity, and the placeholder makes duplicate names of one tenant —
// including two concurrent registers — a clean conflict.
func (s *session) reserve(name string, bytes int64) (*entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[name]; ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrAlreadyRegistered, s.tenant, name)
	}
	if s.quota > 0 && s.usedB+bytes > s.quota {
		return nil, fmt.Errorf("%w: %s holds %d of %d bytes, register needs %d",
			ErrQuotaExceeded, s.tenant, s.usedB, s.quota, bytes)
	}
	ent := &entry{bytes: bytes}
	ent.mu.Lock()
	s.entries[name] = ent
	s.usedB += bytes
	s.used.Set(float64(s.usedB))
	return ent, nil
}

// release removes an entry and returns its bytes to whichever quota
// bucket currently charges it — the abort path of a failed register and
// the commit path of a free. Returning a tier-charged entry's bytes to
// the device bucket instead would leak the tenant's tier quota for good.
// The caller holds the entry's lock.
func (s *session) release(name string, ent *entry) {
	s.mu.Lock()
	delete(s.entries, name)
	if ent.tierCharged {
		s.tierUsedB -= ent.bytes
		s.tierUsed.Set(float64(s.tierUsedB))
	} else {
		s.usedB -= ent.bytes
		s.used.Set(float64(s.usedB))
	}
	s.mu.Unlock()
}

// moveCharge migrates `bytes` of quota charge between the device and tier
// buckets.
func (s *session) moveCharge(bytes int64, toTier bool) {
	s.mu.Lock()
	if toTier {
		s.usedB -= bytes
		s.tierUsedB += bytes
	} else {
		s.tierUsedB -= bytes
		s.usedB += bytes
	}
	s.used.Set(float64(s.usedB))
	s.tierUsed.Set(float64(s.tierUsedB))
	s.mu.Unlock()
}

// syncTier reconciles a tensor entry's quota charge with its observed
// tier residency. It runs at operation boundaries (after swaps, demotions,
// promotions), so charges follow payloads lazily: an executor-initiated
// demotion is charged to the tier bucket the next time the server touches
// the entry. Block pools are exempt (see the usedB comment). The caller
// holds the entry lock.
func (s *session) syncTier(ent *entry) {
	if ent.h == nil {
		return
	}
	if inTier := ent.h.InTier(); inTier != ent.tierCharged {
		s.moveCharge(ent.bytes, inTier)
		ent.tierCharged = inTier
	}
}

// tierHeadroom reports whether the tier bucket can take `bytes` more.
func (s *session) tierHeadroom(bytes int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tierQuota <= 0 || s.tierUsedB+bytes <= s.tierQuota
}

// deviceHeadroom reports whether the device bucket can admit `bytes` more.
func (s *session) deviceHeadroom(bytes int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quota <= 0 || s.usedB+bytes <= s.quota
}

// lookup returns the tenant's entry for name.
func (s *session) lookup(name string) (*entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownTensor, s.tenant, name)
	}
	return ent, nil
}

// acquire looks the tensor up and claims its request lock without
// blocking: contention answers errEntryBusy — the HTTP layer's bounded
// analogue of the executor's ErrBusy — rather than queueing the request.
func (s *session) acquire(name string) (*entry, error) {
	ent, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	if !ent.mu.TryLock() {
		return nil, fmt.Errorf("%w: %s/%s (request in flight)", errEntryBusy, s.tenant, name)
	}
	if ent.h == nil && ent.pool == nil {
		// A placeholder whose register aborted between lookup and lock.
		ent.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownTensor, s.tenant, name)
	}
	return ent, nil
}

// entryNames snapshots the tenant's registered tensor names, sorted — the
// work list a drain walks. Entries freed (or registered) after the
// snapshot are the drain's responsibility to tolerate, not prevent.
func (s *session) entryNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for n := range s.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Used returns the tenant's device-bucket registered bytes (for tests and
// introspection).
func (s *session) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usedB
}

// TierUsed returns the tenant's tier-bucket charged bytes.
func (s *session) TierUsed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tierUsedB
}
