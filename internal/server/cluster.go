package server

// Cluster shards the swap service across N executors. Each shard is a
// complete Server — its own device/host pools, admission window, tenant
// sessions, and tuner — so every admission decision (quota 507,
// backpressure 429, per-tensor busy 409) is made per shard, and one
// shard's saturation never refuses another shard's traffic. A consistent-
// hash ring over the active shards (internal/placement) decides which
// shard owns each (tenant, tensor) key; the router peeks the tensor name
// out of the wire frame, dispatches to the owner, and validates the
// client's routing hint so a cluster-aware client and the server always
// agree on placement or find out immediately (421 misrouted).
//
// Topology changes are versioned: the /cluster endpoint publishes the
// shard map, and a drain (POST /admin/drain?shard=N) marks the shard
// draining, bumps the version, and migrates every tensor it holds to the
// ring's new owners over the existing swap wire format — each tensor is
// encoded as a TensorData frame and decoded on arrival, so a migrated
// tensor restores byte-identically. While a drain runs, requests for
// not-yet-moved tensors fall back from the ring owner to the draining
// shard, so clients see at worst a retryable refusal, never a lost tensor.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"cswap/internal/compress"
	"cswap/internal/executor"
	"cswap/internal/metrics"
	"cswap/internal/placement"
	"cswap/internal/tensor"
	"cswap/internal/wire"
)

// Cluster-routing headers. A cluster-aware client sends ShardHeader with
// the shard it computed from its cached map; the router answers 421 with
// OwnerHeader when the hint disagrees with the current ring, so the
// client knows to refresh its map and retry.
const (
	ShardHeader      = "X-CSwap-Shard"
	OwnerHeader      = "X-CSwap-Owner"
	MapVersionHeader = "X-CSwap-Map-Version"
)

// CodeMisrouted is the ErrorHeader code for a stale routing hint.
const CodeMisrouted = "misrouted"

// clusterInstruments are the cluster-level metric cells; per-shard series
// live in each shard's shard="N"-labeled registry view.
type clusterInstruments struct {
	misrouted    *metrics.Counter // 421s: stale client routing hints
	fallbacks    *metrics.Counter // requests served by a draining shard
	rebTensors   *metrics.Counter // tensors moved by drains
	rebBytes     *metrics.Counter // bytes moved by drains
	activeShards *metrics.Gauge
	mapVersion   *metrics.Gauge
}

// Cluster multiplexes tenant traffic across shard Servers behind one
// HTTP handler.
type Cluster struct {
	shards     []*Server
	obs        *metrics.Observer
	reg        *metrics.Registry
	ins        clusterInstruments
	mux        *http.ServeMux
	maxPayload uint32
	retryAfter time.Duration

	mu       sync.Mutex
	states   []string // placement.State* per shard, indexed by shard ID
	version  int
	ring     *placement.Ring // over active shards; rebuilt on topology change
	draining bool
}

// NewCluster builds an n-shard cluster from functional options (n from
// WithShards, default 1). Per-shard knobs apply to each shard
// independently; the observer's registry is shared, with each shard
// writing through a shard="N"-labeled view.
func NewCluster(opts ...Option) (*Cluster, error) {
	o := resolve(opts)
	cfg := o.cfg
	if cfg.Observer == nil {
		cfg.Observer = &metrics.Observer{Metrics: metrics.NewRegistry()}
	}
	reg := cfg.Observer.Reg()
	c := &Cluster{
		obs:        cfg.Observer,
		reg:        reg,
		maxPayload: cfg.MaxPayload,
		retryAfter: cfg.RetryAfter,
		version:    1,
		ins: clusterInstruments{
			misrouted:    reg.Counter("cluster_misrouted_total"),
			fallbacks:    reg.Counter("cluster_drain_fallback_total"),
			rebTensors:   reg.Counter("cluster_rebalanced_tensors_total"),
			rebBytes:     reg.Counter("cluster_rebalanced_bytes_total"),
			activeShards: reg.Gauge("cluster_active_shards"),
			mapVersion:   reg.Gauge("cluster_map_version"),
		},
	}
	if c.maxPayload == 0 {
		c.maxPayload = wire.DefaultMaxPayload
	}
	if c.retryAfter <= 0 {
		c.retryAfter = time.Second
	}
	for i := 0; i < o.shards; i++ {
		shardCfg := cfg
		// Shards share the registry through labeled views but not the span
		// timeline: concurrent shards appending to one timeline would
		// interleave unrelated streams.
		shardCfg.Observer = &metrics.Observer{
			Metrics: reg.Sub(metrics.L("shard", strconv.Itoa(i))),
			OnEvent: cfg.Observer.OnEvent,
		}
		if cfg.TierDir != "" {
			// Each shard owns its own spill directory: tier keys are only
			// unique per executor, and a drained shard's leftovers must not
			// shadow a live shard's blobs.
			shardCfg.TierDir = filepath.Join(cfg.TierDir, "shard-"+strconv.Itoa(i))
		}
		s, err := New(shardCfg)
		if err != nil {
			for _, prev := range c.shards {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		c.shards = append(c.shards, s)
		c.states = append(c.states, placement.StateActive)
	}
	c.rebuildRingLocked()
	c.mux = http.NewServeMux()
	for _, path := range []string{
		"register", "swap-out", "swap-in", "prefetch", "free",
		"register-pool", "batch-write", "batch-swap-out", "batch-swap-in", "batch-prefetch",
	} {
		c.mux.HandleFunc("POST /v1/"+path, c.route)
	}
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /cluster", c.handleClusterMap)
	c.mux.HandleFunc("POST /admin/drain", c.handleDrain)
	return c, nil
}

// rebuildRingLocked recomputes the ring over active shards and refreshes
// the topology gauges. Caller holds c.mu (or is still constructing).
func (c *Cluster) rebuildRingLocked() {
	var active []int
	for i, st := range c.states {
		if st == placement.StateActive {
			active = append(active, i)
		}
	}
	c.ring = placement.NewRing(active, placement.DefaultReplicas)
	c.ins.activeShards.Set(float64(len(active)))
	c.ins.mapVersion.Set(float64(c.version))
}

// Handler returns the cluster's HTTP handler.
func (c *Cluster) Handler() http.Handler { return c.mux }

// Registry exposes the shared metrics registry backing /metrics.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// NumShards returns the shard count (drained shards included).
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard exposes one shard's Server (tests and embedders).
func (c *Cluster) Shard(i int) *Server { return c.shards[i] }

// Map returns the current shard map, the same document /cluster serves.
func (c *Cluster) Map() placement.Map {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := placement.Map{Version: c.version, Replicas: placement.DefaultReplicas}
	for i, st := range c.states {
		m.Shards = append(m.Shards, placement.Shard{ID: i, State: st})
	}
	return m
}

// Drain stops intake on the cluster and every shard; in-flight requests
// finish.
func (c *Cluster) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	for _, s := range c.shards {
		s.Drain()
	}
}

// Close shuts the cluster down: stop intake everywhere, then close each
// shard (which drains its executor's in-flight window first).
func (c *Cluster) Close() error {
	c.Drain()
	var first error
	for _, s := range c.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (c *Cluster) isDraining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// fail mirrors Server.fail at the cluster boundary.
func (c *Cluster) fail(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set(ErrorHeader, code)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(c.retryAfter/time.Second)))
	}
	http.Error(w, msg, status)
}

// route is the cluster's /v1/* entry point: peek the tensor name, find
// the ring owner, validate the client's hint, dispatch — falling back to
// draining shards for tensors a live drain has not moved yet.
func (c *Cluster) route(w http.ResponseWriter, r *http.Request) {
	if c.isDraining() {
		c.fail(w, http.StatusServiceUnavailable, CodeDraining, "cluster is draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, wire.HeaderLen+int64(c.maxPayload)+1))
	if err != nil {
		c.fail(w, http.StatusBadRequest, CodeBadFrame, err.Error())
		return
	}
	typ, name, err := wire.PeekName(body, c.maxPayload)
	if err != nil {
		c.fail(w, http.StatusBadRequest, CodeBadFrame, err.Error())
		return
	}
	key := placement.Key(tenantOf(r), name)
	c.mu.Lock()
	ring, version := c.ring, c.version
	c.mu.Unlock()
	owner, ok := ring.Owner(key)
	if !ok {
		c.fail(w, http.StatusServiceUnavailable, CodeDraining, "cluster has no active shards")
		return
	}
	w.Header().Set(MapVersionHeader, strconv.Itoa(version))
	if hint := r.Header.Get(ShardHeader); hint != "" && hint != strconv.Itoa(owner) {
		// The client routed from a stale map. Refuse rather than silently
		// absorb: the refusal carries the authoritative owner and map
		// version, and the client refreshes once instead of drifting.
		c.ins.misrouted.Inc()
		w.Header().Set(OwnerHeader, strconv.Itoa(owner))
		c.fail(w, http.StatusMisdirectedRequest, CodeMisrouted,
			fmt.Sprintf("cluster: key %q is owned by shard %d, not %s", key, owner, hint))
		return
	}
	cw := newCapture()
	c.dispatch(owner, cw, r, body)
	// A tensor a live drain has not migrated yet still lives on its old
	// (draining) shard; the owner answers 404 for it. Registers are exempt
	// — a new name belongs on the ring owner unconditionally.
	if cw.status == http.StatusNotFound && cw.header.Get(ErrorHeader) == CodeNotFound &&
		typ != wire.TypeRegister && typ != wire.TypeRegisterPool {
		for _, d := range c.drainingShards() {
			dw := newCapture()
			c.dispatch(d, dw, r, body)
			if dw.status != http.StatusNotFound {
				c.ins.fallbacks.Inc()
				dw.flush(w)
				return
			}
		}
	}
	cw.flush(w)
}

// dispatch forwards the buffered request to one shard's handler.
func (c *Cluster) dispatch(shard int, w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	c.shards[shard].Handler().ServeHTTP(wireShard(w, shard), r2)
}

// drainingShards lists shards currently mid-drain (fallback targets).
func (c *Cluster) drainingShards() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []int
	for i, st := range c.states {
		if st == placement.StateDraining {
			ids = append(ids, i)
		}
	}
	return ids
}

// capture buffers one shard's response so the router can inspect the
// outcome before committing it to the client (the drain-fallback path).
type capture struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newCapture() *capture { return &capture{header: http.Header{}} }

func (cw *capture) Header() http.Header { return cw.header }

func (cw *capture) WriteHeader(status int) {
	if cw.status == 0 {
		cw.status = status
	}
}

func (cw *capture) Write(b []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	return cw.body.Write(b)
}

func (cw *capture) flush(w http.ResponseWriter) {
	for k, vs := range cw.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	w.WriteHeader(cw.status)
	_, _ = w.Write(cw.body.Bytes())
}

// wireShard tags the response with the shard that served it, so clients,
// tests, and the smoke harness can observe routing decisions.
func wireShard(w http.ResponseWriter, shard int) http.ResponseWriter {
	w.Header().Set(ShardHeader, strconv.Itoa(shard))
	return w
}

// handleMetrics exposes the shared registry — every shard's labeled
// series plus the cluster-level ones — in Prometheus text format.
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = (metrics.Prometheus{W: w}).Write(c.reg.Snapshot())
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.isDraining() {
		c.fail(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleClusterMap publishes the shard map clients route by.
func (c *Cluster) handleClusterMap(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(c.Map())
}

// handleDrain is the admin entry point: drain one shard synchronously,
// migrating its tensors to the ring's new owners.
func (c *Cluster) handleDrain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		c.fail(w, http.StatusBadRequest, CodeBadFrame, "drain: shard query parameter must be an integer")
		return
	}
	tensors, bytesMoved, err := c.DrainShard(id)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, errUnknownShard) {
			status = http.StatusNotFound
		}
		c.fail(w, status, CodeState, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shard": id, "tensors": tensors, "bytes": bytesMoved,
	})
}

var errUnknownShard = errors.New("server: unknown shard")

// DrainShard migrates every tensor off shard id and retires it. The shard
// is first marked draining — the version bumps and the ring excludes it,
// so no new placements land there — then each tensor is moved to its new
// ring owner and finally the shard stops intake entirely.
//
// A partially failed drain (a tensor's new owner refused it: quota, pool
// exhaustion) leaves the shard in the draining state with the failed
// tensors still served through the router's fallback path; the operator
// fixes capacity and re-issues the drain, which resumes where it left off.
func (c *Cluster) DrainShard(id int) (tensors int, bytesMoved int64, err error) {
	c.mu.Lock()
	if id < 0 || id >= len(c.shards) {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %d", errUnknownShard, id)
	}
	switch c.states[id] {
	case placement.StateDrained:
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("server: shard %d is already drained", id)
	case placement.StateActive:
		active := 0
		for _, st := range c.states {
			if st == placement.StateActive {
				active++
			}
		}
		if active <= 1 {
			c.mu.Unlock()
			return 0, 0, fmt.Errorf("server: refusing to drain shard %d: it is the last active shard", id)
		}
		c.states[id] = placement.StateDraining
		c.version++
		c.rebuildRingLocked()
	}
	ring := c.ring
	c.mu.Unlock()

	src := c.shards[id]
	var firstErr error
	for _, sess := range src.sessionList() {
		for _, name := range sess.entryNames() {
			owner, ok := ring.Owner(placement.Key(sess.tenant, name))
			if !ok {
				firstErr = errors.New("server: drain lost all active shards")
				break
			}
			nbytes, merr := c.migrate(src, sess, name, c.shards[owner])
			if merr != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("migrate %s/%s to shard %d: %w", sess.tenant, name, owner, merr)
				}
				continue
			}
			tensors++
			bytesMoved += nbytes
			c.ins.rebTensors.Inc()
			c.ins.rebBytes.Add(float64(nbytes))
		}
	}
	if firstErr != nil {
		return tensors, bytesMoved, firstErr
	}
	c.mu.Lock()
	c.states[id] = placement.StateDrained
	c.version++
	c.rebuildRingLocked()
	c.mu.Unlock()
	src.Drain()
	return tensors, bytesMoved, nil
}

// acquireForMigration claims a tensor's entry lock, contending politely
// with in-flight client requests (they hold the lock only for one
// operation) and giving up after a bounded wait.
func acquireForMigration(sess *session, name string) (*entry, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ent, err := sess.acquire(name)
		if err == nil {
			return ent, nil
		}
		if !errors.Is(err, errEntryBusy) {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(time.Millisecond)
	}
}

// migrate moves one tensor from src to dst through the swap wire format:
// restore on the source if swapped, encode as a TensorData frame, decode
// on arrival, register on the destination, re-swap-out if it was swapped,
// then free the source copy. The entry locks on both sides exclude client
// requests for the duration (they see 409 busy and retry), and the wire
// round-trip guarantees the migrated tensor restores byte-identically.
func (c *Cluster) migrate(src *Server, sess *session, name string, dst *Server) (int64, error) {
	ent, err := acquireForMigration(sess, name)
	if err != nil {
		if errors.Is(err, ErrUnknownTensor) {
			return 0, nil // freed while the drain walked the session: nothing to move
		}
		return 0, err
	}
	defer ent.mu.Unlock()

	if ent.pool != nil {
		return c.migratePool(src, sess, name, ent, dst)
	}
	wasSwapped := ent.h.State() == executor.Swapped
	if wasSwapped {
		if err := src.exec.SwapIn(ent.h); err != nil {
			return 0, err
		}
	}
	// restoreSrc puts the source copy back the way we found it on any
	// failure past this point, so an aborted migration is invisible.
	restoreSrc := func() {
		if wasSwapped {
			doCompress, alg := src.resolveCodec(sess, ent, true, compress.Auto)
			_ = src.exec.SwapOut(ent.h, doCompress, alg)
		}
	}
	data, err := ent.h.Data()
	if err != nil {
		restoreSrc()
		return 0, err
	}
	frame, err := wire.Encode(&wire.Frame{Type: wire.TypeTensorData, Name: name, Data: data})
	if err != nil {
		restoreSrc()
		return 0, err
	}
	decoded, err := wire.Decode(frame, c.maxPayload)
	if err != nil {
		restoreSrc()
		return 0, err
	}

	dsess := dst.session(sess.tenant)
	dent, err := dsess.reserve(name, ent.bytes)
	if err != nil {
		restoreSrc()
		return 0, err
	}
	h2, err := dst.exec.Register(qualified(sess.tenant, name), tensor.FromSlice(decoded.Data))
	if err != nil {
		dsess.release(name, dent)
		dent.mu.Unlock()
		restoreSrc()
		return 0, err
	}
	dent.h = h2
	dent.sparsity = ent.sparsity
	if wasSwapped {
		doCompress, alg := dst.resolveCodec(dsess, dent, true, compress.Auto)
		if err := dst.exec.SwapOut(h2, doCompress, alg); err != nil {
			_ = dst.exec.Free(h2)
			dsess.release(name, dent)
			dent.mu.Unlock()
			restoreSrc()
			return 0, err
		}
	}
	dent.mu.Unlock()

	if err := src.exec.Free(ent.h); err != nil {
		// The destination copy is live and owns the name on the ring; a
		// failed source free leaks pool bytes on a shard that is going away,
		// which the drained state eventually reclaims via Close.
		return ent.bytes, nil
	}
	sess.release(name, ent)
	return ent.bytes, nil
}

// migratePool moves one block pool between shards through the batch wire
// format: restore every swapped run on the source, read the whole region,
// round-trip it as a batch-data frame, rebuild the pool on the destination,
// and re-swap the blocks that were swapped so residency survives the move.
// The caller holds ent's lock and unlocks it.
func (c *Cluster) migratePool(src *Server, sess *session, name string, ent *entry, dst *Server) (int64, error) {
	pool := ent.pool
	swappedIDs := pool.SwappedIDs()
	if err := pool.SwapInBlocks(swappedIDs); err != nil {
		return 0, err
	}
	// restoreSrc re-swaps the restored blocks so an aborted migration
	// leaves the source pool the way the drain found it.
	restoreSrc := func() {
		if len(swappedIDs) > 0 {
			doCompress, alg := src.resolveCodec(sess, ent, true, compress.Auto)
			_ = pool.SwapOutBlocks(swappedIDs, doCompress, alg)
		}
	}
	allIDs := make([]int, pool.NumBlocks())
	for i := range allIDs {
		allIDs[i] = i
	}
	data, err := pool.ReadBlocks(allIDs)
	if err != nil {
		restoreSrc()
		return 0, err
	}
	frame, err := wire.Encode(&wire.Frame{
		Type: wire.TypeBatchData, Name: name,
		BlockElems: pool.BlockElems(),
		Runs:       []wire.BlockRun{{Start: 0, Count: pool.NumBlocks()}},
		Data:       data,
	})
	if err != nil {
		restoreSrc()
		return 0, err
	}
	decoded, err := wire.Decode(frame, c.maxPayload)
	if err != nil {
		restoreSrc()
		return 0, err
	}

	dsess := dst.session(sess.tenant)
	dent, err := dsess.reserve(name, ent.bytes)
	if err != nil {
		restoreSrc()
		return 0, err
	}
	abortDst := func(pool2 *executor.BlockPool) {
		if pool2 != nil {
			_ = pool2.Free()
		}
		dsess.release(name, dent)
		dent.mu.Unlock()
		restoreSrc()
	}
	pool2, err := dst.exec.RegisterBlockPool(qualified(sess.tenant, name), pool.BlockElems(), pool.NumBlocks())
	if err != nil {
		abortDst(nil)
		return 0, err
	}
	if err := pool2.WriteBlocks(allIDs, decoded.Data); err != nil {
		abortDst(pool2)
		return 0, err
	}
	dent.pool = pool2
	dent.sparsity = ent.sparsity
	if len(swappedIDs) > 0 {
		doCompress, alg := dst.resolveCodec(dsess, dent, true, compress.Auto)
		if err := pool2.SwapOutBlocks(swappedIDs, doCompress, alg); err != nil {
			abortDst(pool2)
			return 0, err
		}
	}
	dent.mu.Unlock()

	if err := pool.Free(); err != nil {
		return ent.bytes, nil // same leak-on-retiring-shard tradeoff as tensors
	}
	sess.release(name, ent)
	return ent.bytes, nil
}
