// Package server is the network-facing swap service: it multiplexes many
// tenants onto one swapping executor, the way the paper frames CSWAP as a
// shared substrate under a training framework (and cDMA models its DMA
// engines as a service many streams contend over).
//
// The protocol is HTTP for the envelope — routing, status codes, deadline
// propagation — with the wire package's length-prefixed binary frames as
// the request and response bodies. Five operations (register, swap-out,
// swap-in, prefetch, free) act on per-tenant tensor namespaces, and five
// batch operations (register-pool, batch-write, batch-swap-out,
// batch-swap-in, batch-prefetch; see batch.go) act on paged block pools;
// /metrics exposes the shared registry in Prometheus text format and
// /healthz the liveness/draining state.
//
// Three admission layers keep the shared executor healthy under load:
//
//   - Per-tenant device-memory quotas, charged at register time before the
//     shared pool is touched, so tenants fail individually, not each other.
//   - A non-blocking admission window sized to the executor's MaxInFlight:
//     a saturated window answers 429 + Retry-After instead of queueing
//     without bound — the service-level face of the async pipeline's
//     backpressure. With Config.Sched enabled the window becomes the
//     SLO-aware priority scheduler (internal/sched): requests queue
//     briefly in per-lane bounded EDF queues keyed by the wire frame's
//     lane/deadline hint, critical work jumps queued speculative work,
//     deadline-expired waiters answer 429 "expired", and in-flight
//     speculative prefetches shed at run boundaries when critical work
//     starves.
//   - Per-tensor request locks that answer 409 "busy" on contention — the
//     executor's ErrBusy discipline surfaced at the HTTP boundary, and the
//     guarantee that a response encodes a tensor no concurrent request is
//     mutating.
//
// Shutdown is ordered: stop intake (everything answers 503), let in-flight
// handlers finish, Drain() the executor's ticket window, then Close it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cswap/internal/compress"
	"cswap/internal/devmem"
	"cswap/internal/executor"
	"cswap/internal/faultinject"
	"cswap/internal/metrics"
	"cswap/internal/placement"
	"cswap/internal/sched"
	"cswap/internal/tensor"
	"cswap/internal/tier"
	"cswap/internal/wire"
)

// TenantHeader names the HTTP header that selects a tenant session.
// Requests without it share the DefaultTenant namespace.
const (
	TenantHeader  = "X-CSwap-Tenant"
	ErrorHeader   = "X-CSwap-Error" // short machine-readable error code
	DefaultTenant = "default"
)

// Error codes carried in ErrorHeader. Clients key retry behaviour off
// these rather than parsing message text.
const (
	CodeBusy      = "busy"      // per-tensor contention or executor ErrBusy: retry after backoff
	CodeSaturated = "saturated" // admission window full: retry after Retry-After
	CodeExpired   = "expired"   // deadline passed while queued for admission: do NOT retry
	CodeQuota     = "quota"     // tenant quota exceeded: free something first
	CodeOOM       = "oom"       // shared pool exhausted
	CodeNotFound  = "not-found" // unknown tensor
	CodeExists    = "exists"    // duplicate register
	CodeState     = "state"     // operation illegal in the tensor's state
	CodeDraining  = "draining"  // server shutting down
	CodeBadFrame  = "bad-frame" // malformed wire frame
	CodeTimeout   = "timeout"   // request context died mid-operation
	CodeInternal  = "internal"
)

// Config configures a Server.
type Config struct {
	// DeviceCapacity and HostCapacity size the shared executor pools.
	DeviceCapacity, HostCapacity int64
	// MaxInFlight bounds the executor's async window and, equally, the
	// server's admission window: at most this many swap operations hold
	// slots at once; the rest see 429. Zero selects the executor default.
	MaxInFlight int
	// Launch is the codec partitioning geometry (zero selects the
	// executor's default).
	Launch compress.Launch
	// Verify enables the executor's post-restore checksum check.
	Verify bool
	// TenantQuota is the per-tenant registered-bytes quota. Zero grants
	// each tenant the full device capacity (no subdivision); the shared
	// pool still enforces the global bound.
	TenantQuota int64
	// TierDir, when set, attaches a disk spill tier under the executor's
	// host pool: swapped payloads demote into it under host pressure, and
	// a tenant-quota 507 at register time becomes demote-then-admit —
	// the tenant's swapped tensors move to disk, their quota charge moves
	// to the tier bucket, and the register proceeds. 507 remains only
	// when both tiers are full. Empty disables tiering.
	TierDir string
	// TierCap bounds the tier directory's committed bytes. Zero selects
	// four times the host capacity.
	TierCap int64
	// TenantTierQuota is the per-tenant bound on tier-resident bytes.
	// Zero grants each tenant the full tier capacity.
	TenantTierQuota int64
	// TierWatermark, in (0,1), enables the executor's background demoter:
	// whenever host-pool occupancy exceeds this fraction of capacity, cold
	// swapped payloads demote to the tier until it is back under. Zero
	// leaves demotion purely demand-driven (allocation pressure only).
	// Requires TierDir.
	TierWatermark float64
	// MaxPayload caps the wire frames the server will decode; zero
	// selects wire.DefaultMaxPayload.
	MaxPayload uint32
	// RetryAfter is the hint returned with 429/409 responses. Zero
	// selects one second (Retry-After has whole-second granularity).
	RetryAfter time.Duration
	// Observer optionally supplies the instrumentation surface. Nil
	// creates a registry-only observer (no span timeline — a daemon must
	// not accumulate spans without bound).
	Observer *metrics.Observer
	// Faults optionally injects data-path faults into the executor, for
	// tests proving the service degrades instead of dropping sessions.
	Faults *faultinject.Injector
	// Tuner configures the online per-tenant self-tuning loop (tuner.go).
	// The zero value leaves tuning off; Auto swap-outs then fall back to
	// the analytic ratio model per tensor.
	Tuner TunerConfig
	// Sched configures the SLO-aware admission scheduler. The zero value
	// keeps the plain non-blocking window.
	Sched SchedConfig
}

// SchedConfig configures the server's SLO-aware admission scheduler. When
// Enabled, the admission window is replaced by an internal/sched.Scheduler
// with MaxInFlight slots: swap requests queue per lane (bounded,
// earliest-deadline-first) instead of answering 429 the instant the window
// fills, critical requests are granted ahead of queued speculative ones,
// and the executor sheds in-flight speculative prefetch work at run
// boundaries while a critical waiter starves.
type SchedConfig struct {
	Enabled bool
	// LaneDepth bounds each lane's queue (critical, normal, speculative);
	// zero entries select sched.DefaultLaneDepth.
	LaneDepth [sched.NumLanes]int
	// StarveAfter is how long a queued critical request may wait before
	// in-flight speculative work is told to shed. Zero selects
	// sched.DefaultStarveAfter.
	StarveAfter time.Duration
}

// instruments are the server's pre-resolved metric cells; per-tenant
// series are resolved per request (registry lookups are cheap and the
// label space is small).
type instruments struct {
	backpressure *metrics.Counter // 429s: admission window full
	busy         *metrics.Counter // 409s: per-tensor contention
	sessions     *metrics.Gauge
	reg          *metrics.Registry
}

// Server multiplexes tenant sessions onto one executor.
type Server struct {
	cfg   Config
	exec  *executor.Executor
	tier  *tier.Store // nil without TierDir
	obs   *metrics.Observer
	ins   instruments
	admit chan struct{}    // plain admission window (Sched disabled)
	sched *sched.Scheduler // SLO-aware admission (Sched.Enabled); nil otherwise
	mux   *http.ServeMux
	tuner *tuner

	mu       sync.Mutex
	sessions map[string]*session
	draining bool
}

// New builds a server and its executor.
func New(cfg Config) (*Server, error) {
	if cfg.Observer == nil {
		cfg.Observer = &metrics.Observer{Metrics: metrics.NewRegistry()}
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = executor.DefaultMaxInFlight
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = cfg.DeviceCapacity
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	var ts *tier.Store
	if cfg.TierDir != "" {
		if cfg.TierCap == 0 {
			cfg.TierCap = 4 * cfg.HostCapacity
		}
		if cfg.TenantTierQuota == 0 {
			cfg.TenantTierQuota = cfg.TierCap
		}
		var err error
		if ts, err = tier.Open(cfg.TierDir, cfg.TierCap, cfg.Faults); err != nil {
			return nil, fmt.Errorf("server: spill tier: %w", err)
		}
	}
	var schd *sched.Scheduler
	if cfg.Sched.Enabled {
		var err error
		schd, err = sched.New(sched.Config{
			Slots:       cfg.MaxInFlight,
			LaneDepth:   cfg.Sched.LaneDepth,
			StarveAfter: cfg.Sched.StarveAfter,
			Metrics:     cfg.Observer.Reg(),
			Prefix:      "server",
		})
		if err != nil {
			return nil, fmt.Errorf("server: sched: %w", err)
		}
	}
	execCfg := executor.Config{
		DeviceCapacity: cfg.DeviceCapacity,
		HostCapacity:   cfg.HostCapacity,
		Launch:         cfg.Launch,
		Verify:         cfg.Verify,
		MaxInFlight:    cfg.MaxInFlight,
		Faults:         cfg.Faults,
		Tier:           ts,
		TierWatermark:  cfg.TierWatermark,
		Observer:       cfg.Observer,
	}
	if schd != nil {
		// The scheduler doubles as the executor's shed signal — signal
		// only, never slot acquisition, so the two windows cannot deadlock.
		execCfg.Sched = schd
	}
	exec, err := executor.New(execCfg)
	if err != nil {
		return nil, err
	}
	reg := cfg.Observer.Reg()
	s := &Server{
		cfg:  cfg,
		exec: exec,
		tier: ts,
		obs:  cfg.Observer,
		ins: instruments{
			backpressure: reg.Counter("server_backpressure_total"),
			busy:         reg.Counter("server_busy_total"),
			sessions:     reg.Gauge("server_sessions"),
			reg:          reg,
		},
		admit:    make(chan struct{}, cfg.MaxInFlight),
		sched:    schd,
		sessions: map[string]*session{},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/register", s.instrumented("register", s.handleRegister))
	s.mux.HandleFunc("POST /v1/swap-out", s.instrumented("swap-out", s.handleSwapOut))
	s.mux.HandleFunc("POST /v1/swap-in", s.instrumented("swap-in", s.handleSwapIn))
	s.mux.HandleFunc("POST /v1/prefetch", s.instrumented("prefetch", s.handlePrefetch))
	s.mux.HandleFunc("POST /v1/free", s.instrumented("free", s.handleFree))
	s.mux.HandleFunc("POST /v1/register-pool", s.instrumented("register-pool", s.handleRegisterPool))
	s.mux.HandleFunc("POST /v1/batch-write", s.instrumented("batch-write", s.handleBatchWrite))
	s.mux.HandleFunc("POST /v1/batch-swap-out", s.instrumented("batch-swap-out", s.handleBatchSwapOut))
	s.mux.HandleFunc("POST /v1/batch-swap-in", s.instrumented("batch-swap-in", s.handleBatchSwapIn))
	s.mux.HandleFunc("POST /v1/batch-prefetch", s.instrumented("batch-prefetch", s.handleBatchPrefetch))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /cluster", s.handleClusterMap)
	if cfg.Tuner.Enabled {
		s.tuner = startTuner(s, cfg.Tuner)
	}
	return s, nil
}

// Handler returns the server's HTTP handler, for mounting on any listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Executor exposes the shared executor (tests and embedders).
func (s *Server) Executor() *executor.Executor { return s.exec }

// Tier exposes the disk spill tier, nil when TierDir is unset.
func (s *Server) Tier() *tier.Store { return s.tier }

// Registry exposes the shared metrics registry backing /metrics.
func (s *Server) Registry() *metrics.Registry { return s.ins.reg }

// Drain stops intake: every subsequent /v1/ request (and /healthz) answers
// 503 with the draining code. In-flight requests are unaffected.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close shuts the service down in order: stop intake, wait out the
// executor's in-flight tickets (Drain barrier), then close the executor.
// The HTTP listener's own shutdown — waiting for handlers to return — is
// the caller's first step (http.Server.Shutdown), so by the time Close's
// Drain runs, no handler is still submitting.
func (s *Server) Close() error {
	s.Drain()
	if s.tuner != nil {
		// Stop the tuner before the executor drains: a probe never races
		// shutdown, and no SetLaunch lands on a closing executor.
		s.tuner.Stop()
	}
	if s.sched != nil {
		// Fail queued admission waiters (503 draining) before the drain
		// barrier, so no handler is left waiting on a lane that will never
		// be granted.
		s.sched.Close()
	}
	s.exec.Drain()
	return s.exec.Close()
}

// session returns the tenant's session, creating it on first use.
func (s *Server) session(tenant string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[tenant]
	if !ok {
		sess = newSession(tenant, s.cfg.TenantQuota, s.cfg.TenantTierQuota, s.ins.reg)
		s.sessions[tenant] = sess
		s.ins.sessions.Set(float64(len(s.sessions)))
	}
	return sess
}

// isDraining reports whether intake is stopped.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// tenantOf extracts the request's tenant name.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// instrumented wraps an operation handler with the draining gate and the
// per-tenant request/latency series.
func (s *Server) instrumented(op string, fn func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.isDraining() {
			s.fail(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
			return
		}
		tenant := tenantOf(r)
		s.ins.reg.Counter("server_requests_total",
			metrics.L("tenant", tenant), metrics.L("op", op)).Inc()
		start := time.Now()
		fn(w, r)
		s.ins.reg.Histogram("server_request_seconds", metrics.L("op", op)).
			Observe(time.Since(start).Seconds())
	}
}

// fail writes an error response: the machine code in ErrorHeader, the
// human message in the body.
func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set(ErrorHeader, code)
	if status == http.StatusTooManyRequests || code == CodeBusy || code == CodeDraining {
		// Truncated to whole seconds; "0" is a legal hint meaning "retry
		// immediately" and lets tests run sub-second backoff loops.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
	}
	http.Error(w, msg, status)
}

// failErr maps a service/executor error onto an HTTP response.
func (s *Server) failErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errEntryBusy), errors.Is(err, executor.ErrBusy):
		s.ins.busy.Inc()
		s.fail(w, http.StatusConflict, CodeBusy, err.Error())
	case errors.Is(err, executor.ErrShed):
		// Speculative work shed under critical pressure: same retry story
		// as a saturated window.
		s.ins.backpressure.Inc()
		s.fail(w, http.StatusTooManyRequests, CodeSaturated, err.Error())
	case errors.Is(err, ErrQuotaExceeded):
		s.fail(w, http.StatusInsufficientStorage, CodeQuota, err.Error())
	case errors.Is(err, devmem.ErrOutOfMemory):
		s.fail(w, http.StatusInsufficientStorage, CodeOOM, err.Error())
	case errors.Is(err, ErrUnknownTensor):
		s.fail(w, http.StatusNotFound, CodeNotFound, err.Error())
	case errors.Is(err, ErrAlreadyRegistered):
		s.fail(w, http.StatusConflict, CodeExists, err.Error())
	case errors.Is(err, executor.ErrFreed):
		s.fail(w, http.StatusGone, CodeState, err.Error())
	case errors.Is(err, executor.ErrClosed):
		s.fail(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
	default:
		// "already swapped/resident" misuse and everything else the state
		// machine refuses: a conflict the client can resolve, not a server
		// fault — but genuinely unknown failures are 500s.
		if errors.Is(err, executor.ErrNotResident) || errors.Is(err, executor.ErrNotSwapped) ||
			errors.Is(err, errNotPool) || errors.Is(err, errNotTensor) {
			s.fail(w, http.StatusConflict, CodeState, err.Error())
			return
		}
		s.fail(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// readFrame decodes the request body as one frame of the expected type.
func (s *Server) readFrame(w http.ResponseWriter, r *http.Request, want wire.Type) (*wire.Frame, bool) {
	f, err := wire.Read(r.Body, s.cfg.MaxPayload)
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadFrame, err.Error())
		return nil, false
	}
	if f.Type != want {
		s.fail(w, http.StatusBadRequest, CodeBadFrame,
			fmt.Sprintf("server: %s endpoint got %s frame", want, f.Type))
		return nil, false
	}
	return f, true
}

// writeFrame encodes and writes a response frame.
func (s *Server) writeFrame(w http.ResponseWriter, f *wire.Frame) {
	b, err := wire.Encode(f)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	_, _ = w.Write(b)
}

// qualified is the executor-facing tensor name, namespaced by tenant so
// spans and per-tensor series stay distinct across sessions.
func qualified(tenant, name string) string { return tenant + "/" + name }

// handleRegister admits the tensor against the tenant quota, then places
// it in the shared device pool.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeRegister)
	if !ok {
		return
	}
	tenant := tenantOf(r)
	sess := s.session(tenant)
	bytes := int64(len(f.Data)) * tensor.BytesPerElement
	ent, err := s.reserveDemoting(sess, f.Name, bytes)
	if err != nil {
		if errors.Is(err, ErrQuotaExceeded) {
			s.ins.reg.Counter("server_quota_rejections_total", metrics.L("tenant", tenant)).Inc()
		}
		s.failErr(w, err)
		return
	}
	h, err := s.exec.Register(qualified(tenant, f.Name), tensor.FromSlice(f.Data))
	if err != nil {
		sess.release(f.Name, ent)
		ent.mu.Unlock()
		s.failErr(w, err)
		return
	}
	ent.h = h
	ent.sparsity = sliceSparsity(f.Data)
	ent.mu.Unlock()
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}

// reserveDemoting is reserve with the demote-then-admit fallback: a
// tenant-quota refusal with a spill tier attached first tries to demote
// the tenant's swapped tensors to disk — migrating their quota charge to
// the tier bucket — and retries the reservation. 507 survives only when
// both the device quota and the tier quota are exhausted.
func (s *Server) reserveDemoting(sess *session, name string, bytes int64) (*entry, error) {
	ent, err := sess.reserve(name, bytes)
	if err != nil && errors.Is(err, ErrQuotaExceeded) && s.tier != nil && s.demoteForAdmit(sess, bytes) {
		ent, err = sess.reserve(name, bytes)
	}
	return ent, err
}

// demoteForAdmit walks the tenant's entries demoting swapped,
// host-resident tensors into the disk tier until the device quota bucket
// has room for `need` more bytes, reporting whether it does. Busy entries,
// block pools, resident tensors (Demote refuses them), and entries the
// tier quota cannot take are skipped. Executor-initiated demotions the
// server has not yet accounted (tierCharged lagging) are reconciled for
// free: Demote on an already-tiered handle is a no-op and syncTier moves
// the charge.
func (s *Server) demoteForAdmit(sess *session, need int64) bool {
	if sess.deviceHeadroom(need) {
		return true
	}
	for _, name := range sess.entryNames() {
		ent, err := sess.acquire(name)
		if err != nil {
			continue
		}
		if ent.h == nil || ent.tierCharged || !sess.tierHeadroom(ent.bytes) {
			ent.mu.Unlock()
			continue
		}
		if err := s.exec.Demote(ent.h); err == nil {
			sess.syncTier(ent)
			s.ins.reg.Counter("server_tier_demote_admits_total",
				metrics.L("tenant", sess.tenant)).Inc()
		}
		ent.mu.Unlock()
		if sess.deviceHeadroom(need) {
			return true
		}
	}
	return sess.deviceHeadroom(need)
}

// admitSlot claims one admission slot without blocking; a full window is
// the 429 path — bounded refusal, not unbounded queueing.
func (s *Server) admitSlot(w http.ResponseWriter) bool {
	select {
	case s.admit <- struct{}{}:
		return true
	default:
		s.ins.backpressure.Inc()
		s.fail(w, http.StatusTooManyRequests, CodeSaturated,
			fmt.Sprintf("server: %d swap operations in flight", cap(s.admit)))
		return false
	}
}

// hintOf derives a request's scheduling hint from the wire frame's
// optional sched extension: without one, demand swaps ride LaneNormal and
// prefetches LaneSpeculative with no deadline. The frame's relative
// deadline becomes absolute here, at decode time.
func hintOf(f *wire.Frame, fallback sched.Lane) sched.Hint {
	h := sched.Hint{Lane: fallback}
	if f.HasSched {
		h.Lane = sched.Lane(f.Lane)
		if f.DeadlineMicros > 0 {
			h.Deadline = time.Now().Add(time.Duration(f.DeadlineMicros) * time.Microsecond)
		}
	}
	return h
}

// admitReq claims one admission slot for a swap request. Without the
// scheduler it is the non-blocking window (429 saturated on full). With
// it, the request joins its lane's bounded EDF queue: a full lane still
// answers 429 saturated immediately, a deadline that passes while queued
// answers 429 "expired" (retrying the same deadline is pointless), and a
// granted request proceeds holding one of the MaxInFlight slots.
func (s *Server) admitReq(w http.ResponseWriter, r *http.Request, h sched.Hint) bool {
	if s.sched == nil {
		return s.admitSlot(w)
	}
	if err := s.sched.Acquire(r.Context(), h.Lane, h.Deadline); err != nil {
		switch {
		case errors.Is(err, sched.ErrExpired):
			s.ins.backpressure.Inc()
			s.fail(w, http.StatusTooManyRequests, CodeExpired, err.Error())
		case errors.Is(err, sched.ErrLaneFull):
			s.ins.backpressure.Inc()
			s.fail(w, http.StatusTooManyRequests, CodeSaturated, err.Error())
		case errors.Is(err, sched.ErrClosed):
			s.fail(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
		default:
			// The client's own context died while queued.
			s.fail(w, http.StatusRequestTimeout, CodeTimeout, err.Error())
		}
		return false
	}
	return true
}

// admitRelease returns the slot claimed by admitReq, waking the highest-
// priority queued waiter when the scheduler runs admission.
func (s *Server) admitRelease() {
	if s.sched != nil {
		s.sched.Release()
		return
	}
	<-s.admit
}

// finishAsync releases an entry lock and admission slot once the ticket
// has fully resolved. When the handler's context died first, the release
// runs in a goroutine so the admission slot stays held exactly as long as
// the executor window slot it mirrors.
func (s *Server) finishAsync(t *executor.Ticket, ent *entry) {
	_ = t.Wait()
	ent.mu.Unlock()
	s.admitRelease()
}

// swapOp runs one admission-gated async operation against an entry and
// waits for it under the request context. The hint picks the admission
// lane/deadline and rides the operation context so the executor can shed
// speculative work at run boundaries. On success the entry is returned
// still locked and still holding the admission slot — the caller reads
// what it needs, unlocks, and releases.
func (s *Server) swapOp(w http.ResponseWriter, r *http.Request, sess *session, name string, hint sched.Hint,
	submit func(context.Context, *entry) *executor.Ticket) (*entry, bool) {
	ent, err := sess.acquire(name)
	if err != nil {
		s.failErr(w, err)
		return nil, false
	}
	if ent.h == nil {
		// A block-pool entry: the per-tensor endpoints don't apply.
		ent.mu.Unlock()
		s.failErr(w, errNotTensor)
		return nil, false
	}
	if !s.admitReq(w, r, hint) {
		ent.mu.Unlock()
		return nil, false
	}
	t := submit(sched.WithHint(r.Context(), hint), ent)
	if err := t.WaitContext(r.Context()); err != nil {
		select {
		case <-t.Done():
			// The ticket resolved (possibly racing the dying context):
			// report its actual outcome.
			if opErr := t.Err(); opErr != nil {
				ent.mu.Unlock()
				s.admitRelease()
				s.failErr(w, opErr)
				return nil, false
			}
			return ent, true
		default:
			// The client stopped waiting mid-operation. The work still
			// runs to completion; the entry lock and admission slot follow
			// the ticket, not the request.
			go s.finishAsync(t, ent)
			s.fail(w, http.StatusRequestTimeout, CodeTimeout, err.Error())
			return nil, false
		}
	}
	return ent, true
}

// handleSwapOut moves the tensor to the host pool through the async
// pipeline, compressing per the request.
func (s *Server) handleSwapOut(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeSwapOut)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, ok := s.swapOp(w, r, sess, f.Name, hintOf(f, sched.LaneNormal), func(ctx context.Context, ent *entry) *executor.Ticket {
		sess.observeSwap(ent.sparsity, ent.bytes)
		doCompress, alg := s.resolveCodec(sess, ent, f.Compress, f.Alg)
		return s.exec.SwapOutAsyncCtx(ctx, ent.h, doCompress, alg)
	})
	if !ok {
		return
	}
	sess.syncTier(ent)
	ent.mu.Unlock()
	s.admitRelease()
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}

// resolveCodec turns a swap-out request's codec choice into a concrete
// one. Explicit algorithms pass through untouched; Auto delegates to the
// service: the tenant's standing tuner verdict when one exists (which may
// be "don't compress"), else the analytic best-ratio codec for this
// tensor's measured sparsity. Every Auto resolution is counted so
// operators can see what the service decided on the tenant's behalf.
func (s *Server) resolveCodec(sess *session, ent *entry, reqCompress bool, reqAlg compress.Algorithm) (bool, compress.Algorithm) {
	if !reqCompress || reqAlg != compress.Auto {
		return reqCompress, reqAlg
	}
	doCompress, alg := true, compress.BestRatioAlgorithm(ent.sparsity)
	if v, ok := sess.currentVerdict(); ok {
		doCompress, alg = v.compress, v.alg
	}
	label := "raw"
	if doCompress {
		label = alg.String()
	}
	s.ins.reg.Counter("server_auto_codec_total",
		metrics.L("tenant", sess.tenant), metrics.L("codec", label)).Inc()
	if !doCompress {
		// The executor ignores the algorithm on a raw swap; ZVC keeps the
		// value well-formed.
		return false, compress.ZVC
	}
	return true, alg
}

// sliceSparsity is the zero fraction of a register payload (1 for the
// empty tensor: nothing to compress).
func sliceSparsity(data []float32) float64 {
	if len(data) == 0 {
		return 1
	}
	zeros := 0
	for _, v := range data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(data))
}

// handleSwapIn restores the tensor and streams it back.
func (s *Server) handleSwapIn(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeSwapIn)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, ok := s.swapOp(w, r, sess, f.Name, hintOf(f, sched.LaneNormal), func(ctx context.Context, ent *entry) *executor.Ticket {
		return s.exec.SwapInAsyncCtx(ctx, ent.h)
	})
	if !ok {
		return
	}
	sess.syncTier(ent) // a promotion moves the charge back to the device bucket
	data, err := ent.h.Data()
	if err != nil {
		ent.mu.Unlock()
		s.admitRelease()
		s.failErr(w, err)
		return
	}
	// Encode while the entry lock still excludes concurrent mutation of
	// this tensor; the frame owns a copy once Encode returns.
	b, encErr := wire.Encode(&wire.Frame{Type: wire.TypeTensorData, Name: f.Name, Data: data})
	ent.mu.Unlock()
	s.admitRelease()
	if encErr != nil {
		s.fail(w, http.StatusInternalServerError, CodeInternal, encErr.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	_, _ = w.Write(b)
}

// handlePrefetch requests residency ahead of need; an already-resident
// tensor acks immediately.
func (s *Server) handlePrefetch(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypePrefetch)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, ok := s.swapOp(w, r, sess, f.Name, hintOf(f, sched.LaneSpeculative), func(ctx context.Context, ent *entry) *executor.Ticket {
		return s.exec.PrefetchCtx(ctx, ent.h)
	})
	if !ok {
		return
	}
	sess.syncTier(ent)
	ent.mu.Unlock()
	s.admitRelease()
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}

// handleFree releases the tensor and returns its bytes to the quota.
func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeFree)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, err := sess.acquire(f.Name)
	if err != nil {
		s.failErr(w, err)
		return
	}
	freeErr := func() error {
		if ent.pool != nil {
			return ent.pool.Free()
		}
		return s.exec.Free(ent.h)
	}()
	if freeErr != nil {
		ent.mu.Unlock()
		s.failErr(w, freeErr)
		return
	}
	sess.release(f.Name, ent)
	ent.mu.Unlock()
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}

// handleMetrics exposes the shared registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = (metrics.Prometheus{W: w}).Write(s.ins.reg.Snapshot())
}

// handleClusterMap publishes a one-shard map, so a cluster-aware client
// pointed at a plain server routes everything here without special-casing.
func (s *Server) handleClusterMap(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(placement.Map{
		Version:  1,
		Replicas: placement.DefaultReplicas,
		Shards:   []placement.Shard{{ID: 0, State: placement.StateActive}},
	})
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.fail(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
