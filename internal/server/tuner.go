package server

// Online per-tenant self-tuning: the serving-layer closure of the paper's
// offline loop. The offline pipeline (Sections IV-C/IV-D) trains time
// predictors and tunes launch geometry once, before serving; this tuner
// re-runs the same three ingredients — measured codec cost, the Section
// IV-B cost model, and Bayesian-optimised launch search — continuously
// against the live workload each tenant actually swaps:
//
//   - Every swap-out folds the tensor's sparsity and size into a per-tenant
//     EWMA profile (session.observeSwap).
//   - On a fixed tick, tenants whose profile drifted past the threshold
//     (or who have no verdict yet) are retuned: each candidate codec is
//     probed on a synthetic tensor shaped like the profile, the measured
//     encode/decode times and realized ratio feed costmodel.Decide, and
//     the cheapest verdict becomes the tenant's Auto resolution.
//   - Between retunes the tuner audits its own verdicts against the
//     executor's per-codec series (realized seconds and moved bytes). A
//     verdict whose realized cost exceeds its prediction by the rollback
//     factor is reverted to the previous one — the self-correction the
//     offline pipeline cannot do.
//   - When a retune lands on a new codec, the launch geometry is re-probed
//     with the existing Bayesian optimiser and installed atomically on the
//     executor (SetLaunch); in-flight decodes are unaffected because chunk
//     bounds travel in the blob directory.
//
// Everything the tuner concludes is observable: verdicts, codec switches,
// rollbacks, re-probes, and the profile itself are registry series on
// /metrics.

import (
	"time"

	"cswap/internal/bayesopt"
	"cswap/internal/compress"
	"cswap/internal/costmodel"
	"cswap/internal/metrics"
	"cswap/internal/tensor"
)

// TunerConfig configures the online per-tenant tuner. The zero value is
// disabled; Enabled with everything else zero selects serving defaults.
type TunerConfig struct {
	// Enabled starts the background tuning loop.
	Enabled bool
	// Interval is the tick period (default 2s).
	Interval time.Duration
	// DriftThreshold is the absolute EWMA-sparsity drift from the standing
	// verdict's anchor that triggers a retune (default 0.15).
	DriftThreshold float64
	// MinSwaps is the evidence budget: a tenant is not retuned (or
	// audited) until this many swap-outs accrued since the tuner last
	// acted on it (default 4).
	MinSwaps int
	// LinkBytesPerSec models the swap link bandwidth in the cost model,
	// both directions (default 12 GB/s, PCIe 3.0 x16 effective).
	LinkBytesPerSec float64
	// ProbeElems sizes the synthetic probe tensor (default 64Ki elements;
	// probe times are scaled to the profile's mean tensor size).
	ProbeElems int
	// RollbackFactor: a verdict whose realized per-swap cost exceeds
	// prediction by this factor is reverted (default 1.5).
	RollbackFactor float64
	// BOProbes is the acquisition-guided probe budget of a launch
	// re-probe; 0 selects 6, negative disables launch re-probing.
	BOProbes int
	// Seed fixes the probe generator and BO seeds (default 1).
	Seed int64
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.15
	}
	if c.MinSwaps <= 0 {
		c.MinSwaps = 4
	}
	if c.LinkBytesPerSec <= 0 {
		c.LinkBytesPerSec = 12e9
	}
	if c.ProbeElems <= 0 {
		c.ProbeElems = 64 << 10
	}
	if c.RollbackFactor <= 1 {
		c.RollbackFactor = 1.5
	}
	if c.BOProbes == 0 {
		c.BOProbes = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// codecStats is one codec's cumulative executor-series reading; the tuner
// diffs consecutive readings to get per-interval realized cost.
type codecStats struct {
	encSum, decSum float64
	encN           int64
	movedBytes     float64
}

// tuner is the background loop. One per server; stopped by Close before
// the executor drains.
type tuner struct {
	srv *Server
	cfg TunerConfig
	obs *metrics.Observer

	stop chan struct{}
	done chan struct{}

	// Probe scratch, reused across ticks (the tuner must not become an
	// allocation hot spot on small intervals).
	probeSrc []float32
	probeDst []float32
	probeBuf []byte

	last map[string]codecStats // by codec label, previous tick's reading

	verdicts  func(tenant, codec string) *metrics.Counter
	switches  func(tenant string) *metrics.Counter
	rollbacks func(tenant string) *metrics.Counter
	reprobes  *metrics.Counter
	sparsityG func(tenant string) *metrics.Gauge
	gridG     *metrics.Gauge
	blockG    *metrics.Gauge
}

func startTuner(s *Server, cfg TunerConfig) *tuner {
	cfg = cfg.withDefaults()
	reg := s.ins.reg
	t := &tuner{
		srv:      s,
		cfg:      cfg,
		obs:      s.obs,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		probeDst: make([]float32, cfg.ProbeElems),
		last:     map[string]codecStats{},
		verdicts: func(tenant, codec string) *metrics.Counter {
			return reg.Counter("server_tuner_verdicts_total",
				metrics.L("tenant", tenant), metrics.L("codec", codec))
		},
		switches: func(tenant string) *metrics.Counter {
			return reg.Counter("server_tuner_codec_switches_total", metrics.L("tenant", tenant))
		},
		rollbacks: func(tenant string) *metrics.Counter {
			return reg.Counter("server_tuner_rollbacks_total", metrics.L("tenant", tenant))
		},
		reprobes: reg.Counter("server_tuner_reprobes_total"),
		sparsityG: func(tenant string) *metrics.Gauge {
			return reg.Gauge("server_tuner_sparsity", metrics.L("tenant", tenant))
		},
		gridG:  reg.Gauge("server_tuner_launch_grid"),
		blockG: reg.Gauge("server_tuner_launch_block"),
	}
	// One deterministic probe tensor per sparsity is regenerated in place;
	// the generator itself is re-seeded per probe so a given (sparsity,
	// seed) always yields the same tensor regardless of tick history.
	go t.run()
	return t
}

// Stop terminates the loop and waits for the in-flight tick to finish, so
// no probe races executor shutdown.
func (t *tuner) Stop() {
	close(t.stop)
	<-t.done
}

func (t *tuner) run() {
	defer close(t.done)
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
			t.tick()
		}
	}
}

// sessionList snapshots the live sessions for one tuner pass.
func (s *Server) sessionList() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

func (t *tuner) tick() {
	snap := t.srv.ins.reg.Snapshot()
	base := t.srv.ins.reg.BaseLabels()
	for _, sess := range t.srv.sessionList() {
		prof, cur, prev := sess.tunerState()
		if !prof.seeded || prof.swaps < int64(t.cfg.MinSwaps) {
			continue
		}
		t.sparsityG(sess.tenant).Set(prof.ewmaSparsity)
		drifted := !cur.valid || abs(prof.ewmaSparsity-cur.atSparsity) >= t.cfg.DriftThreshold
		if drifted {
			t.retune(sess, prof, cur)
			continue
		}
		t.audit(snap, base, sess, cur, prev)
	}
	t.remember(snap, base)
}

// audit compares the standing verdict's predicted per-swap cost against
// what the executor actually measured since the last tick, feeding the
// cost model's realized-error series and reverting verdicts that the data
// contradicts. The executor series are device-global: with several tenants
// on one codec the attribution is approximate, which is why the revert
// needs a RollbackFactor-sized margin, not a mere excess.
func (t *tuner) audit(snap *metrics.Snapshot, base []metrics.Label, sess *session, cur, prev verdict) {
	if !cur.valid || !cur.compress {
		return
	}
	label := cur.alg.String()
	now := readCodecStats(snap, base, label)
	before, ok := t.last[label]
	if !ok {
		return
	}
	ops := now.encN - before.encN
	if ops <= 0 {
		return
	}
	kernel := (now.encSum - before.encSum + now.decSum - before.decSum) / float64(ops)
	link := (now.movedBytes - before.movedBytes) / float64(ops) / t.cfg.LinkBytesPerSec
	realized := kernel + link
	costmodel.RecordRealized(t.obs, cur.predicted, realized)
	if realized > t.cfg.RollbackFactor*cur.predicted &&
		prev.valid && (prev.alg != cur.alg || prev.compress != cur.compress) {
		if v, ok := sess.rollbackVerdict(); ok {
			t.rollbacks(sess.tenant).Inc()
			t.verdicts(sess.tenant, v.codecLabel()).Inc()
		}
	}
}

// remember stores this tick's per-codec readings as the next tick's
// baseline.
func (t *tuner) remember(snap *metrics.Snapshot, base []metrics.Label) {
	for _, a := range compress.ExtendedAlgorithms() {
		label := a.String()
		t.last[label] = readCodecStats(snap, base, label)
	}
}

// readCodecStats pulls one codec's cumulative executor series out of a
// registry snapshot. base is the registry view's base label set: inside a
// cluster a shard's executor writes shard-labeled series into the shared
// store, and its tuner must read back exactly its own shard's, not a
// sibling's.
func readCodecStats(snap *metrics.Snapshot, base []metrics.Label, codec string) codecStats {
	var cs codecStats
	cs.encSum, cs.encN = histTotals(snap, base, "executor_encode_seconds", codec)
	cs.decSum, _ = histTotals(snap, base, "executor_decode_seconds", codec)
	cs.movedBytes, _ = snap.Counter("executor_moved_bytes_by_codec_total",
		append(append([]metrics.Label(nil), base...), metrics.L("codec", codec))...)
	return cs
}

// histTotals finds a histogram series by name, codec label, and the view's
// base labels (exact label-set match, so one shard never reads another's).
func histTotals(snap *metrics.Snapshot, base []metrics.Label, name, codec string) (sum float64, count int64) {
	for i := range snap.Histograms {
		h := &snap.Histograms[i]
		if h.Name != name || h.Labels["codec"] != codec || len(h.Labels) != 1+len(base) {
			continue
		}
		match := true
		for _, l := range base {
			if h.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return h.Sum, h.Count
		}
	}
	return 0, 0
}

// retune probes every candidate codec against a synthetic tensor shaped
// like the tenant's profile and installs the cost model's cheapest verdict.
func (t *tuner) retune(sess *session, prof tenantProfile, cur verdict) {
	meanBytes := prof.ewmaBytes
	if meanBytes <= 0 {
		return
	}
	probeBytes := float64(t.cfg.ProbeElems) * 4
	scale := meanBytes / probeBytes

	launch := t.srv.exec.Launch()
	base := costmodel.Params{
		SizeBytes: int64(meanBytes),
		Sparsity:  prof.ewmaSparsity,
		BWd2h:     t.cfg.LinkBytesPerSec,
		BWh2d:     t.cfg.LinkBytesPerSec,
	}
	var (
		best    costmodel.Decision
		bestAlg compress.Algorithm
		first   = true
	)
	for _, alg := range compress.ExtendedAlgorithms() {
		encSec, decSec, ratio, err := t.probe(alg, prof.ewmaSparsity, launch)
		if err != nil {
			continue
		}
		p := base
		p.TimeC, p.TimeDC = encSec*scale, decSec*scale
		p.Ratio = ratio
		dec := costmodel.Decide(p)
		dec.Observe(t.obs, alg.String())
		if first || dec.T < best.T {
			best, bestAlg, first = dec, alg, false
		}
	}
	if first {
		return // every probe failed; keep whatever verdict stands
	}
	v := verdict{
		valid:      true,
		compress:   best.Compress,
		alg:        bestAlg,
		atSparsity: prof.ewmaSparsity,
		predicted:  best.T,
	}
	if !best.Compress {
		v.predicted = best.TPrime
	}
	sess.setVerdict(v)
	t.verdicts(sess.tenant, v.codecLabel()).Inc()
	if cur.valid && (cur.compress != v.compress || (v.compress && cur.alg != v.alg)) {
		t.switches(sess.tenant).Inc()
	}
	if v.compress && (!cur.valid || cur.alg != v.alg) {
		t.reprobeLaunch(v.alg, prof.ewmaSparsity)
	}
}

// probe measures one codec on a deterministic synthetic tensor at the
// profile's sparsity: wall-clock encode and decode at the given launch,
// plus the realized compression ratio — live measurements standing in for
// the offline pipeline's trained predictor.
func (t *tuner) probe(alg compress.Algorithm, sparsity float64, launch compress.Launch) (encSec, decSec, ratio float64, err error) {
	t.fillProbe(sparsity)
	start := time.Now()
	t.probeBuf, err = compress.AppendParallelEncode(t.probeBuf[:0], alg, t.probeSrc, launch)
	if err != nil {
		return 0, 0, 0, err
	}
	encSec = time.Since(start).Seconds()
	start = time.Now()
	if err := compress.ParallelDecodeInto(t.probeDst, t.probeBuf, launch); err != nil {
		return 0, 0, 0, err
	}
	decSec = time.Since(start).Seconds()
	return encSec, decSec, float64(len(t.probeBuf)) / (float64(len(t.probeSrc)) * 4), nil
}

// fillProbe regenerates the probe tensor at the given sparsity. Re-seeding
// per call keeps the probe a pure function of (seed, sparsity), so repeated
// retunes compare codecs on identical data.
func (t *tuner) fillProbe(sparsity float64) {
	src := tensor.NewGenerator(t.cfg.Seed).Uniform(t.cfg.ProbeElems, sparsity)
	t.probeSrc = src.Data
}

// launchObjective scores one launch-geometry probe: measured kernel
// seconds plus the modeled link time of the blob that geometry actually
// produced, out and back. Geometry changes the chunking, and chunking
// changes the realized compressed size (per-chunk directories, broken
// value runs), so scoring kernels alone would drift toward fragmenting
// geometries whose faster kernels are paid back in transfer time.
func launchObjective(kernelSec float64, compressedBytes int, linkBytesPerSec float64) float64 {
	return kernelSec + 2*float64(compressedBytes)/linkBytesPerSec
}

// reprobeLaunch re-runs the launch-geometry search for the newly chosen
// codec with a small Bayesian-optimisation budget and installs the winner
// atomically. In-flight operations are unaffected: each swap reads the
// geometry once, and decode chunk bounds come from the blob directory.
func (t *tuner) reprobeLaunch(alg compress.Algorithm, sparsity float64) {
	if t.cfg.BOProbes < 0 {
		return
	}
	t.fillProbe(sparsity)
	bo := &bayesopt.BO{
		S1:       4,
		S2:       t.cfg.BOProbes,
		MaxGrid:  1024,
		Seed:     t.cfg.Seed,
		Observer: t.obs,
	}
	res := bo.Search(func(l compress.Launch) float64 {
		start := time.Now()
		buf, err := compress.AppendParallelEncode(t.probeBuf[:0], alg, t.probeSrc, l)
		if err != nil {
			return 1e9
		}
		t.probeBuf = buf
		if err := compress.ParallelDecodeInto(t.probeDst, buf, l); err != nil {
			return 1e9
		}
		return launchObjective(time.Since(start).Seconds(), len(buf), t.cfg.LinkBytesPerSec)
	})
	if err := t.srv.exec.SetLaunch(res.Best); err != nil {
		return
	}
	t.reprobes.Inc()
	t.gridG.Set(float64(res.Best.Grid))
	t.blockG.Set(float64(res.Best.Block))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
