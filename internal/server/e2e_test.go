package server_test

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"cswap/client"
	"cswap/internal/server"
	"cswap/internal/tensor"
)

// TestE2EBitExactSparsityLadder is the end-to-end acceptance test: a
// ladder of tensors spanning the paper's sparsity range (§IV: activation
// sparsity varies 20–80% across layers), each driven through a full
// register → swap-out → swap-in cycle by its own goroutine over loopback
// HTTP, every restore compared bit-for-bit. Run under -race this also
// shakes the server's entry locks and admission window.
func TestE2EBitExactSparsityLadder(t *testing.T) {
	_, url := newTestServer(t,
		server.WithDeviceCapacity(256<<20),
		server.WithHostCapacity(256<<20),
		server.WithMaxInFlight(4))

	type rung struct {
		name     string
		sparsity float64
		alg      client.Algorithm
		elems    int
	}
	var rungs []rung
	algs := []client.Algorithm{client.ZVC, client.RLE, client.CSR, client.LZ4}
	for i, sp := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		for j, alg := range algs {
			rungs = append(rungs, rung{
				name:     fmt.Sprintf("ladder/s%02d-%s", int(sp*100), alg),
				sparsity: sp,
				alg:      alg,
				elems:    4096 + 1024*((i+j)%3), // vary sizes across the ladder
			})
		}
	}

	const rounds = 3
	var wg sync.WaitGroup
	for i, r := range rungs {
		wg.Add(1)
		go func(seed int64, r rung) {
			defer wg.Done()
			// High retry budget: rungs outnumber MaxInFlight on purpose, so
			// saturation refusals are part of what this test exercises.
			c := client.New(url, client.WithTenant("e2e"), client.WithRetry(50, 2*time.Millisecond))
			ctx := context.Background()
			tn := tensor.NewGenerator(seed).Uniform(r.elems, r.sparsity)
			want := append([]float32(nil), tn.Data...)
			if err := c.Register(ctx, r.name, tn.Data); err != nil {
				t.Errorf("%s: register: %v", r.name, err)
				return
			}
			for round := 0; round < rounds; round++ {
				if err := c.SwapOut(ctx, r.name, client.WithCodec(r.alg)); err != nil {
					t.Errorf("%s round %d: swap-out: %v", r.name, round, err)
					return
				}
				got, err := c.SwapIn(ctx, r.name)
				if err != nil {
					t.Errorf("%s round %d: swap-in: %v", r.name, round, err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("%s round %d: %d elements back, want %d", r.name, round, len(got), len(want))
					return
				}
				for k := range want {
					if math.Float32bits(got[k]) != math.Float32bits(want[k]) {
						t.Errorf("%s round %d: bit mismatch at [%d]: %08x != %08x",
							r.name, round, k, math.Float32bits(got[k]), math.Float32bits(want[k]))
						return
					}
				}
			}
			if err := c.Free(ctx, r.name); err != nil {
				t.Errorf("%s: free: %v", r.name, err)
			}
		}(int64(100+i), r)
	}
	wg.Wait()

	// The hot path reused pooled arenas: swap rounds after the first must
	// hit the executor's arena pool, and the evidence must be visible
	// through the same /metrics endpoint an operator would scrape.
	text, err := client.New(url).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hits := scrapeValue(t, text, `executor_arena_gets_total{outcome="hit"}`)
	if hits <= 0 {
		t.Errorf("executor_arena_gets_total{outcome=\"hit\"} = %v, want > 0 (arena reuse invisible over /metrics)", hits)
	}
	puts := scrapeValue(t, text, "executor_arena_puts_total")
	if puts <= 0 {
		t.Errorf("executor_arena_puts_total = %v, want > 0", puts)
	}
	wantSwaps := float64(len(rungs) * rounds)
	if outs := scrapeValue(t, text, "executor_swap_outs_total"); outs != wantSwaps {
		t.Errorf("executor_swap_outs_total = %v, want %v", outs, wantSwaps)
	}

	// Nothing left registered: the tenant's quota drained back to zero.
	if used := scrapeValue(t, text, `server_tenant_used_bytes{tenant="e2e"}`); used != 0 {
		t.Errorf("tenant used bytes after frees = %v, want 0", used)
	}
}

// scrapeValue pulls one sample out of Prometheus exposition text by its
// full series name (including labels).
func scrapeValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Fatalf("series %s: bad sample %q: %v", series, rest, err)
		}
		return v
	}
	t.Fatalf("series %s not found in /metrics exposition", series)
	return 0
}
