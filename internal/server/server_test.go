package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cswap/client"
	"cswap/internal/compress"
	"cswap/internal/faultinject"
	"cswap/internal/metrics"
	"cswap/internal/server"
	"cswap/internal/tensor"
	"cswap/internal/wire"
)

// newTestServer starts a loopback-HTTP service and returns it with its
// base URL. Defaults come first, so caller options override them; the
// millisecond RetryAfter truncates to a "Retry-After: 0" hint, so
// retrying clients in these tests spin on their own millisecond backoff
// instead of sleeping whole seconds.
func newTestServer(t *testing.T, opts ...server.Option) (*server.Server, string) {
	t.Helper()
	defaults := []server.Option{
		server.WithDeviceCapacity(64 << 20),
		server.WithHostCapacity(64 << 20),
		server.WithRetryAfter(time.Millisecond),
		server.WithVerify(true),
	}
	s, err := server.NewServer(append(defaults, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = s.Close()
	})
	return s, hs.URL
}

func counterValue(t *testing.T, s *server.Server, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, _ := s.Registry().Snapshot().Counter(name, labels...)
	return v
}

func TestRegisterSwapRoundTrip(t *testing.T) {
	s, url := newTestServer(t)
	c := client.New(url)
	ctx := context.Background()

	data := tensor.NewGenerator(1).Uniform(4096, 0.6).Data
	want := append([]float32(nil), data...)
	if err := c.Register(ctx, "t0", data); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOut(ctx, "t0", client.WithCodec(client.ZVC)); err != nil {
		t.Fatal(err)
	}
	got, err := c.SwapIn(ctx, "t0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	st := s.Executor().Stats()
	if st.SwapOuts != 1 || st.SwapIns != 1 || st.CompressedTensors != 1 {
		t.Errorf("stats = %+v, want 1 swap-out/in, 1 compressed", st)
	}
	if err := c.Free(ctx, "t0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SwapIn(ctx, "t0"); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("swap-in after free: %v, want ErrNotFound", err)
	}
}

func TestErrorMapping(t *testing.T) {
	_, url := newTestServer(t)
	c := client.New(url, client.WithRetry(0, 0))
	ctx := context.Background()

	if err := c.SwapOut(ctx, "missing", client.WithCodec(client.ZVC)); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("swap-out of unknown tensor: %v, want ErrNotFound", err)
	}
	if err := c.Register(ctx, "dup", make([]float32, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(ctx, "dup", make([]float32, 64)); !errors.Is(err, client.ErrExists) {
		t.Errorf("duplicate register: %v, want ErrExists", err)
	}
	// Swap-in of a resident tensor is a state conflict, not contention —
	// the client must not retry it.
	if _, err := c.SwapIn(ctx, "dup"); !errors.Is(err, client.ErrState) {
		t.Errorf("swap-in of resident tensor: %v, want ErrState", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
}

func TestTenantQuotaEnforcement(t *testing.T) {
	// Quota admits one 1024-element tensor (4 KiB) per tenant but not two.
	s, url := newTestServer(t, server.WithTenantQuota(6<<10))
	ctx := context.Background()
	a := client.New(url, client.WithTenant("a"))
	b := client.New(url, client.WithTenant("b"))

	if err := a.Register(ctx, "t0", make([]float32, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(ctx, "t1", make([]float32, 1024)); !errors.Is(err, client.ErrQuota) {
		t.Fatalf("register past quota: %v, want ErrQuota", err)
	}
	// Quotas are per tenant: b's budget is untouched by a's.
	if err := b.Register(ctx, "t0", make([]float32, 1024)); err != nil {
		t.Fatalf("tenant b blocked by tenant a's quota: %v", err)
	}
	if got := counterValue(t, s, "server_quota_rejections_total", metrics.L("tenant", "a")); got != 1 {
		t.Errorf("quota rejections for a = %v, want 1", got)
	}
	// Freeing returns quota: the refused register now fits.
	if err := a.Free(ctx, "t0"); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(ctx, "t1", make([]float32, 1024)); err != nil {
		t.Errorf("register after free: %v", err)
	}
	// The per-tenant gauges track registered bytes.
	snap := s.Registry().Snapshot()
	if v, _ := snap.Gauge("server_tenant_used_bytes", metrics.L("tenant", "a")); v != 4096 {
		t.Errorf("tenant a used bytes = %v, want 4096", v)
	}
}

// TestSaturationYields429 fills the admission window with artificially
// slow swaps and verifies the overflow answers 429 + Retry-After, counted
// on the backpressure series — bounded refusal instead of queueing.
func TestSaturationYields429(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Site: faultinject.SiteEncode, Mode: faultinject.Delay,
		Delay: 150 * time.Millisecond, Every: 1,
	})
	// One chunk per tensor so the injected delay fires once per swap-out,
	// not once per codec chunk.
	s, url := newTestServer(t, server.WithMaxInFlight(1), server.WithFaults(inj),
		server.WithLaunch(compress.Launch{Grid: 1, Block: 64}))
	ctx := context.Background()
	c := client.New(url) // registers don't need slots

	const n = 4
	for i := 0; i < n; i++ {
		if err := c.Register(ctx, fmt.Sprintf("t%d", i), tensor.NewGenerator(int64(i)).Uniform(4096, 0.5).Data); err != nil {
			t.Fatal(err)
		}
	}
	// Raw requests (no retries) so the 429s surface.
	frames := make([][]byte, n)
	for i := range frames {
		b, err := wire.Encode(&wire.Frame{Type: wire.TypeSwapOut, Name: fmt.Sprintf("t%d", i), Compress: true, Alg: compress.ZVC})
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = b
	}
	var mu sync.Mutex
	statuses := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/swap-out", "application/octet-stream", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			mu.Lock()
			statuses[resp.StatusCode]++
			mu.Unlock()
		}(frames[i])
	}
	wg.Wait()
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no swap-out succeeded: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("saturating MaxInFlight=1 produced no 429s: %v", statuses)
	}
	if got := counterValue(t, s, "server_backpressure_total"); got != float64(statuses[http.StatusTooManyRequests]) {
		t.Errorf("backpressure counter = %v, want %d", got, statuses[http.StatusTooManyRequests])
	}
	// A retrying client grinds through the same saturation without errors.
	rc := client.New(url, client.WithRetry(20, 10*time.Millisecond))
	var wg2 sync.WaitGroup
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if _, err := rc.SwapIn(context.Background(), name); err != nil && !errors.Is(err, client.ErrState) {
				t.Errorf("retrying swap-in %s: %v", name, err)
			}
		}()
	}
	wg2.Wait()
}

// TestBusyContention drives two concurrent op streams at one tensor: the
// loser of each race sees 409/busy, the retrying client absorbs it, and
// the tensor survives with its data intact.
func TestBusyContention(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Site: faultinject.SiteEncode, Mode: faultinject.Delay,
		Delay: 80 * time.Millisecond, Every: 1,
	})
	s, url := newTestServer(t, server.WithFaults(inj),
		server.WithLaunch(compress.Launch{Grid: 1, Block: 64}))
	ctx := context.Background()
	c := client.New(url, client.WithRetry(0, 0))

	if err := c.Register(ctx, "contended", tensor.NewGenerator(7).Uniform(4096, 0.5).Data); err != nil {
		t.Fatal(err)
	}
	// First swap-out stalls in the encode; the second finds the entry
	// locked and must answer busy, not queue.
	errc := make(chan error, 1)
	go func() { errc <- c.SwapOut(ctx, "contended", client.WithCodec(client.ZVC)) }()
	time.Sleep(20 * time.Millisecond)
	err2 := c.SwapOut(ctx, "contended", client.WithCodec(client.ZVC))
	if err := <-errc; err != nil {
		t.Fatalf("first swap-out: %v", err)
	}
	if !errors.Is(err2, client.ErrBusy) && !errors.Is(err2, client.ErrState) {
		t.Fatalf("racing swap-out: %v, want ErrBusy (or ErrState if it lost the race late)", err2)
	}
	if errors.Is(err2, client.ErrBusy) {
		if got := counterValue(t, s, "server_busy_total"); got == 0 {
			t.Error("server_busy_total = 0 after a busy refusal")
		}
	}
}

// TestFaultDegradationKeepsSessionAlive proves the service degrades —
// raw-swap fallback on encode failure, decode retry on transfer
// corruption — without dropping the tenant's session or its data.
func TestFaultDegradationKeepsSessionAlive(t *testing.T) {
	inj := faultinject.New(
		// Every encode fails: every compressed swap-out must fall back raw.
		faultinject.Fault{Site: faultinject.SiteEncode, Mode: faultinject.Fail, Every: 1},
		// The first transfer-in corrupts the in-flight copy: the decode
		// retries from the retained blob.
		faultinject.Fault{Site: faultinject.SiteTransferIn, Mode: faultinject.Corrupt},
	)
	s, url := newTestServer(t, server.WithFaults(inj))
	ctx := context.Background()
	c := client.New(url)

	data := tensor.NewGenerator(3).Uniform(4096, 0.5).Data
	want := append([]float32(nil), data...)
	if err := c.Register(ctx, "hardy", data); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOut(ctx, "hardy", client.WithCodec(client.ZVC)); err != nil {
		t.Fatalf("swap-out under injected encode failure: %v (should fall back raw)", err)
	}
	got, err := c.SwapIn(ctx, "hardy")
	if err != nil {
		t.Fatalf("swap-in under injected transfer corruption: %v (should retry)", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degraded path corrupted data at [%d]: %v != %v", i, got[i], want[i])
		}
	}
	st := s.Executor().Stats()
	if st.EncodeFallbacks == 0 {
		t.Error("no encode fallback counted; the degradation path did not run")
	}
	if st.DecodeRecoveries == 0 {
		t.Error("no decode recovery counted; the retry path did not run")
	}
	// The session is alive and consistent: the tensor swaps again cleanly.
	if err := c.SwapOut(ctx, "hardy", client.WithRaw()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SwapIn(ctx, "hardy"); err != nil {
		t.Fatal(err)
	}
}

// TestDrainAndShutdownOrdering verifies the shutdown contract: draining
// stops intake with 503s, in-flight work completes, and Close returns
// only after every ticket resolved.
func TestDrainAndShutdownOrdering(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Site: faultinject.SiteEncode, Mode: faultinject.Delay,
		Delay: 150 * time.Millisecond, Every: 1,
	})
	s, url := newTestServer(t, server.WithFaults(inj),
		server.WithLaunch(compress.Launch{Grid: 1, Block: 64}))
	ctx := context.Background()
	c := client.New(url, client.WithRetry(0, 0))

	if err := c.Register(ctx, "slow", tensor.NewGenerator(9).Uniform(4096, 0.5).Data); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.SwapOut(ctx, "slow", client.WithCodec(client.ZVC)) }()
	time.Sleep(30 * time.Millisecond) // the swap is now mid-encode

	s.Drain()
	if err := c.Health(ctx); !errors.Is(err, client.ErrUnavailable) {
		t.Errorf("healthz while draining: %v, want ErrUnavailable", err)
	}
	if err := c.Register(ctx, "late", make([]float32, 64)); !errors.Is(err, client.ErrUnavailable) {
		t.Errorf("register while draining: %v, want ErrUnavailable", err)
	}
	// The in-flight swap-out, admitted before the drain, completes.
	if err := <-done; err != nil {
		t.Fatalf("in-flight swap-out during drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := s.Executor().InFlight(); n != 0 {
		t.Errorf("in-flight after Close = %d, want 0", n)
	}
	st := s.Executor().Stats()
	if st.SwapOuts != 1 {
		t.Errorf("swap-outs = %d, want 1 (the drained ticket committed)", st.SwapOuts)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, url := newTestServer(t)
	c := client.New(url)
	ctx := context.Background()
	if err := c.Register(ctx, "m", make([]float32, 256)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4" {
		t.Errorf("metrics content type %q, want text/plain; version=0.0.4", got)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`server_requests_total{op="register",tenant="default"}`,
		"server_sessions",
		`server_tenant_used_bytes{tenant="default"}`,
		"# TYPE server_request_seconds histogram",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics exposition lacks %q", series)
		}
	}
}

func TestMalformedFramesRejected(t *testing.T) {
	_, url := newTestServer(t, server.WithMaxPayload(1<<16))
	// Truncated, corrupt, oversized, and wrong-type frames all answer 400.
	ok, err := wire.Encode(&wire.Frame{Type: wire.TypeFree, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	big, err := wire.Encode(&wire.Frame{Type: wire.TypeRegister, Name: "big", Data: make([]float32, 1<<15)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"truncated", ok[:len(ok)-2]},
		{"garbage", []byte("not a frame at all")},
		{"oversized", big},
		{"wrong type", ok}, // a free frame at the register endpoint
	}
	for _, tc := range cases {
		resp, err := http.Post(url+"/v1/register", "application/octet-stream", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
