package server

// Batch block swapping: the service face of the executor's paged block
// pools. One registered name maps to a whole pool; the batch endpoints
// move lists of block IDs per request, so a decode step's worth of
// KV-cache blocks costs one admission slot and one HTTP round trip
// instead of one per block.
//
// Admission and quota accounting for batches:
//
//   - Quota is charged ONCE, at register-pool time, for the pool's full
//     device reservation (numBlocks x blockElems x 4 bytes). Batch
//     operations move block contents inside that reservation and are
//     never re-charged.
//   - A batch swap operation claims ONE admission slot regardless of its
//     block count. The executor fans the batch out into coalesced runs on
//     its own bounded window; admitting per-block would re-introduce the
//     per-block control cost batching exists to amortize.
//   - The entry lock is per pool: one batch per pool at a time at the
//     HTTP boundary (409 on contention), same discipline as tensors.

import (
	"context"
	"errors"
	"net/http"

	"cswap/internal/executor"
	"cswap/internal/metrics"
	"cswap/internal/sched"
	"cswap/internal/wire"
)

// errNotPool reports a batch operation addressed to a plain tensor name.
var errNotPool = errors.New("server: name is a tensor, not a block pool")

// errNotTensor reports a tensor operation addressed to a block-pool name.
var errNotTensor = errors.New("server: name is a block pool, not a tensor")

// batchSeen counts one batch request and its block volume.
func (s *Server) batchSeen(op string, blocks int) {
	s.ins.reg.Counter("server_batch_requests_total", metrics.L("op", op)).Inc()
	s.ins.reg.Counter("server_batch_blocks_total", metrics.L("op", op)).Add(float64(blocks))
}

// toWireRuns converts the executor's coalesced runs to their wire form.
func toWireRuns(runs []executor.BlockRun) []wire.BlockRun {
	out := make([]wire.BlockRun, len(runs))
	for i, r := range runs {
		out[i] = wire.BlockRun{Start: r.Start, Count: r.Count}
	}
	return out
}

// expandRuns flattens a canonical (sorted, disjoint) run table into the
// strictly-ascending ID list the pool's packed read/write API wants.
func expandRuns(runs []wire.BlockRun) []int {
	var ids []int
	for _, r := range runs {
		for id := r.Start; id < r.Start+r.Count; id++ {
			ids = append(ids, id)
		}
	}
	return ids
}

// acquirePool is acquire plus the kind check: the locked entry must be a
// block pool.
func (s *Server) acquirePool(w http.ResponseWriter, sess *session, name string) (*entry, bool) {
	ent, err := sess.acquire(name)
	if err != nil {
		s.failErr(w, err)
		return nil, false
	}
	if ent.pool == nil {
		ent.mu.Unlock()
		s.failErr(w, errNotPool)
		return nil, false
	}
	return ent, true
}

// batchOp runs one admission-gated batch operation against a pool entry —
// swapOp's analogue with the pool kind check and one slot per batch. The
// hint picks the admission lane/deadline (one slot, one lane entry, per
// batch regardless of block count) and rides the operation context so the
// executor can shed speculative batches at run boundaries. On success the
// entry is returned still locked and still holding the slot.
func (s *Server) batchOp(w http.ResponseWriter, r *http.Request, sess *session, name string, hint sched.Hint,
	submit func(context.Context, *entry) *executor.Ticket) (*entry, bool) {
	ent, ok := s.acquirePool(w, sess, name)
	if !ok {
		return nil, false
	}
	if !s.admitReq(w, r, hint) {
		ent.mu.Unlock()
		return nil, false
	}
	t := submit(sched.WithHint(r.Context(), hint), ent)
	if err := t.WaitContext(r.Context()); err != nil {
		select {
		case <-t.Done():
			if opErr := t.Err(); opErr != nil {
				ent.mu.Unlock()
				s.admitRelease()
				s.failErr(w, opErr)
				return nil, false
			}
			return ent, true
		default:
			go s.finishAsync(t, ent)
			s.fail(w, http.StatusRequestTimeout, CodeTimeout, err.Error())
			return nil, false
		}
	}
	return ent, true
}

// handleRegisterPool admits the pool's whole device reservation against
// the tenant quota — the batch ops that follow are pre-paid.
func (s *Server) handleRegisterPool(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeRegisterPool)
	if !ok {
		return
	}
	tenant := tenantOf(r)
	sess := s.session(tenant)
	bytes := int64(f.BlockElems) * int64(f.NumBlocks) * 4
	ent, err := s.reserveDemoting(sess, f.Name, bytes)
	if err != nil {
		if errors.Is(err, ErrQuotaExceeded) {
			s.ins.reg.Counter("server_quota_rejections_total", metrics.L("tenant", tenant)).Inc()
		}
		s.failErr(w, err)
		return
	}
	pool, err := s.exec.RegisterBlockPool(qualified(tenant, f.Name), f.BlockElems, f.NumBlocks)
	if err != nil {
		sess.release(f.Name, ent)
		ent.mu.Unlock()
		s.failErr(w, err)
		return
	}
	ent.pool = pool
	ent.sparsity = 1 // the region starts zeroed; batch-write re-measures
	ent.mu.Unlock()
	s.batchSeen("register-pool", f.NumBlocks)
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}

// handleBatchWrite stores packed block contents into resident blocks. It
// is a device-memory write, not a swap: no admission slot is consumed.
func (s *Server) handleBatchWrite(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeBatchData)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, ok := s.acquirePool(w, sess, f.Name)
	if !ok {
		return
	}
	if f.BlockElems != ent.pool.BlockElems() {
		ent.mu.Unlock()
		s.fail(w, http.StatusBadRequest, CodeBadFrame,
			"server: batch-write block geometry does not match the pool")
		return
	}
	ids := expandRuns(f.Runs)
	if err := ent.pool.WriteBlocks(ids, f.Data); err != nil {
		ent.mu.Unlock()
		s.failErr(w, err)
		return
	}
	// Fold what was actually written into the pool-wide sparsity, weighted
	// by the fraction of blocks this write covers: the signal Auto codec
	// resolution and the tuner profile key off describes the whole pool,
	// and letting a partial write overwrite it would swing every later
	// codec decision on the sliver this batch happened to touch.
	frac := float64(len(ids)) / float64(ent.pool.NumBlocks())
	ent.sparsity = ent.sparsity*(1-frac) + sliceSparsity(f.Data)*frac
	ent.mu.Unlock()
	s.batchSeen("write", len(ids))
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}

// handleBatchSwapOut moves the listed blocks to the host pool: one
// admission slot, one coalesced executor batch, one ack.
func (s *Server) handleBatchSwapOut(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeBatchSwapOut)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, ok := s.batchOp(w, r, sess, f.Name, hintOf(f, sched.LaneNormal), func(ctx context.Context, ent *entry) *executor.Ticket {
		bytes := int64(len(f.BlockIDs)) * int64(ent.pool.BlockElems()) * 4
		sess.observeSwap(ent.sparsity, bytes)
		doCompress, alg := s.resolveCodec(sess, ent, f.Compress, f.Alg)
		return ent.pool.SwapOutBlocksCtx(ctx, f.BlockIDs, doCompress, alg)
	})
	if !ok {
		return
	}
	ent.mu.Unlock()
	s.admitRelease()
	s.batchSeen("swap-out", len(f.BlockIDs))
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}

// handleBatchSwapIn restores the listed blocks and streams their packed
// contents back as one batch-data frame (run table + payload).
func (s *Server) handleBatchSwapIn(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeBatchSwapIn)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, ok := s.batchOp(w, r, sess, f.Name, hintOf(f, sched.LaneNormal), func(ctx context.Context, ent *entry) *executor.Ticket {
		return ent.pool.SwapInBlocksCtx(ctx, f.BlockIDs)
	})
	if !ok {
		return
	}
	runs := executor.CoalesceBlockIDs(f.BlockIDs)
	ids := expandRuns(toWireRuns(runs))
	data, err := ent.pool.ReadBlocks(ids)
	if err != nil {
		ent.mu.Unlock()
		s.admitRelease()
		s.failErr(w, err)
		return
	}
	resp := &wire.Frame{
		Type: wire.TypeBatchData, Name: f.Name,
		BlockElems: ent.pool.BlockElems(),
		Runs:       toWireRuns(runs), Data: data,
	}
	b, encErr := wire.Encode(resp)
	ent.mu.Unlock()
	s.admitRelease()
	if encErr != nil {
		s.fail(w, http.StatusInternalServerError, CodeInternal, encErr.Error())
		return
	}
	s.batchSeen("swap-in", len(ids))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(b)
}

// handleBatchPrefetch requests residency for the listed blocks;
// already-resident blocks complete without work.
func (s *Server) handleBatchPrefetch(w http.ResponseWriter, r *http.Request) {
	f, ok := s.readFrame(w, r, wire.TypeBatchPrefetch)
	if !ok {
		return
	}
	sess := s.session(tenantOf(r))
	ent, ok := s.batchOp(w, r, sess, f.Name, hintOf(f, sched.LaneSpeculative), func(ctx context.Context, ent *entry) *executor.Ticket {
		return ent.pool.PrefetchBlocksCtx(ctx, f.BlockIDs)
	})
	if !ok {
		return
	}
	ent.mu.Unlock()
	s.admitRelease()
	s.batchSeen("prefetch", len(f.BlockIDs))
	s.writeFrame(w, &wire.Frame{Type: wire.TypeAck, Name: f.Name})
}
