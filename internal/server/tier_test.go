package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"cswap/client"
	"cswap/internal/metrics"
	"cswap/internal/server"
	"cswap/internal/tensor"
)

// gaugeValue reads one gauge from the server registry.
func gaugeValue(t *testing.T, s *server.Server, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, _ := s.Registry().Snapshot().Gauge(name, labels...)
	return v
}

// TestQuotaDemoteThenAdmit pins the tentpole's service-level contract: a
// register that would previously have drawn a tenant-quota 507 instead
// demotes the tenant's swapped tensors to the disk tier, migrates their
// quota charge to the tier bucket, and admits.
func TestQuotaDemoteThenAdmit(t *testing.T) {
	const elems = 4096
	quota := int64(elems * 4)
	s, url := newTestServer(t,
		server.WithTierDir(t.TempDir()),
		server.WithTenantQuota(quota),
	)
	c := client.New(url)
	ctx := context.Background()

	gen := tensor.NewGenerator(1)
	d1 := gen.Uniform(elems, 0.6).Data
	want1 := append([]float32(nil), d1...)
	if err := c.Register(ctx, "t1", d1); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOut(ctx, "t1", client.WithCodec(client.ZVC)); err != nil {
		t.Fatal(err)
	}
	// The quota is full; without the tier this register answers 507.
	d2 := gen.Uniform(elems, 0.5).Data
	if err := c.Register(ctx, "t2", d2); err != nil {
		t.Fatalf("register under full quota with tier attached: %v", err)
	}
	lab := metrics.L("tenant", server.DefaultTenant)
	if n := counterValue(t, s, "server_tier_demote_admits_total", lab); n != 1 {
		t.Fatalf("demote-admits = %v, want 1", n)
	}
	if n := counterValue(t, s, "server_quota_rejections_total", lab); n != 0 {
		t.Fatalf("quota rejections = %v, want 0", n)
	}
	if st := s.Executor().Stats(); st.TierDemotions != 1 {
		t.Fatalf("TierDemotions = %d, want 1", st.TierDemotions)
	}
	if v := gaugeValue(t, s, "server_tenant_tier_used_bytes", lab); v != float64(quota) {
		t.Fatalf("tier bucket holds %v bytes, want %v", v, quota)
	}

	// The demoted tensor restores bit-exact through the real HTTP path,
	// and promotion returns its charge to the device bucket.
	got, err := c.SwapIn(ctx, "t1")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want1 {
		if got[i] != want1[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want1[i])
		}
	}
	if v := gaugeValue(t, s, "server_tenant_tier_used_bytes", lab); v != 0 {
		t.Fatalf("tier bucket holds %v bytes after promotion, want 0", v)
	}
	if st := s.Executor().Stats(); st.TierPromotions != 1 {
		t.Fatalf("TierPromotions = %d, want 1", st.TierPromotions)
	}
}

// TestQuota507OnlyWhenBothTiersFull: with the tier quota too small to
// absorb a demotion, the register still answers 507 — the tier widens the
// hierarchy, it does not remove the bound.
func TestQuota507OnlyWhenBothTiersFull(t *testing.T) {
	const elems = 4096
	s, url := newTestServer(t,
		server.WithTierDir(t.TempDir()),
		server.WithTenantQuota(elems*4),
		server.WithTenantTierQuota(64),
	)
	c := client.New(url)
	ctx := context.Background()
	gen := tensor.NewGenerator(2)
	if err := c.Register(ctx, "t1", gen.Uniform(elems, 0.6).Data); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOut(ctx, "t1", client.WithCodec(client.ZVC)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(ctx, "t2", gen.Uniform(elems, 0.5).Data); !errors.Is(err, client.ErrQuota) {
		t.Fatalf("register with both tiers full = %v, want ErrQuota", err)
	}
	lab := metrics.L("tenant", server.DefaultTenant)
	if n := counterValue(t, s, "server_quota_rejections_total", lab); n != 1 {
		t.Fatalf("quota rejections = %v, want 1", n)
	}
}

// TestHostPressureCompletesWithTier is the acceptance workload: a swap
// stream that overflows the pinned-host pool, which previously drew 507s,
// now completes with demotions recorded and every restore byte-identical
// over the real HTTP path.
func TestHostPressureCompletesWithTier(t *testing.T) {
	const (
		nTensors = 6
		elems    = 40000 // 160000-byte raw blobs; the host pool fits one
	)
	hostCap := int64(256 << 10)
	gen := tensor.NewGenerator(3)
	payloads := make([][]float32, nTensors)
	for i := range payloads {
		payloads[i] = gen.Uniform(elems, 0.5).Data
	}
	names := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	ctx := context.Background()

	// Control: without a tier the same stream hits the host-pool bound.
	{
		_, url := newTestServer(t, server.WithHostCapacity(hostCap))
		c := client.New(url)
		var failed bool
		for i, name := range names {
			if err := c.Register(ctx, name, payloads[i]); err != nil {
				t.Fatal(err)
			}
			if err := c.SwapOut(ctx, name, client.WithRaw()); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			t.Fatal("control server absorbed the overflow workload; pressure scenario is not exercising the bound")
		}
	}

	s, url := newTestServer(t,
		server.WithHostCapacity(hostCap),
		server.WithTierDir(t.TempDir()),
	)
	c := client.New(url)
	for i, name := range names {
		if err := c.Register(ctx, name, payloads[i]); err != nil {
			t.Fatal(err)
		}
		if err := c.SwapOut(ctx, name, client.WithRaw()); err != nil {
			t.Fatalf("swap-out %s under host pressure: %v", name, err)
		}
	}
	st := s.Executor().Stats()
	if st.TierDemotions == 0 {
		t.Fatal("overflow workload recorded no demotions")
	}
	for i, name := range names {
		got, err := c.SwapIn(ctx, name)
		if err != nil {
			t.Fatalf("swap-in %s: %v", name, err)
		}
		for j := range payloads[i] {
			if got[j] != payloads[i][j] {
				t.Fatalf("%s restored[%d] = %v, want %v", name, j, got[j], payloads[i][j])
			}
		}
	}
	if n := counterValue(t, s, "server_quota_rejections_total",
		metrics.L("tenant", server.DefaultTenant)); n != 0 {
		t.Fatalf("quota rejections = %v, want 0", n)
	}
}

// TestClusterDrainMigratesTierResidentBlobs: a drain moves tier-resident
// payloads to the shard's successors bit-exactly, exactly like
// host-resident ones (migration restores through the promote path).
func TestClusterDrainMigratesTierResidentBlobs(t *testing.T) {
	const (
		nTensors = 8
		elems    = 40000
	)
	cl, err := server.NewCluster(
		server.WithShards(2),
		server.WithDeviceCapacity(64<<20),
		server.WithHostCapacity(256<<10), // one raw blob per shard: overflow demotes
		server.WithTierDir(t.TempDir()),
		server.WithVerify(true),
		server.WithRetryAfter(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(cl.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = cl.Close()
	})
	c := client.New(hs.URL)
	ctx := context.Background()

	gen := tensor.NewGenerator(4)
	payloads := make(map[string][]float32, nTensors)
	for i := 0; i < nTensors; i++ {
		name := "kv" + string(rune('a'+i))
		payloads[name] = gen.Uniform(elems, 0.5).Data
		if err := c.Register(ctx, name, payloads[name]); err != nil {
			t.Fatal(err)
		}
		if err := c.SwapOut(ctx, name, client.WithRaw()); err != nil {
			t.Fatal(err)
		}
	}
	// Drain a shard that holds tier-resident payloads, so the migration
	// demonstrably crosses the disk tier.
	victim := -1
	for i := 0; i < cl.NumShards(); i++ {
		if cl.Shard(i).Executor().TierUsed() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard holds tier-resident payloads; pressure setup is wrong")
	}
	if _, _, err := cl.DrainShard(victim); err != nil {
		t.Fatalf("drain shard %d: %v", victim, err)
	}
	if used := cl.Shard(victim).Executor().TierUsed(); used != 0 {
		t.Fatalf("drained shard still holds %d tier bytes", used)
	}
	for name, want := range payloads {
		got, err := c.SwapIn(ctx, name)
		if err != nil {
			t.Fatalf("swap-in %s after drain: %v", name, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s restored[%d] = %v, want %v", name, j, got[j], want[j])
			}
		}
	}
}
