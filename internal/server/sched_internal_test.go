package server

// Tests for the SLO-aware admission path: deadline expiry while queued
// behind a held window, and critical traffic staying ahead of a
// saturating speculative stream (run with -race in `make race`).

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cswap/client"
	"cswap/internal/metrics"
	"cswap/internal/sched"
	"cswap/internal/tensor"
)

func schedCounter(t *testing.T, s *Server, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, _ := s.Registry().Snapshot().Counter(name, labels...)
	return v
}

func TestDeadlineExpiryUnderQueueing(t *testing.T) {
	s, url := newInternalServer(t, Config{
		MaxInFlight: 1,
		Sched:       SchedConfig{Enabled: true},
	})
	c := client.New(url, client.WithRetry(0, 0))
	ctx := context.Background()

	data := tensor.NewGenerator(1).Uniform(4096, 0.5).Data
	if err := c.Register(ctx, "t0", data); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOut(ctx, "t0"); err != nil {
		t.Fatal(err)
	}

	// Occupy the only admission slot from under the server, so the next
	// request queues in its lane instead of running.
	if err := s.sched.Acquire(ctx, sched.LaneNormal, time.Time{}); err != nil {
		t.Fatal(err)
	}
	_, err := c.SwapIn(ctx, "t0", client.WithDeadline(30*time.Millisecond))
	if !errors.Is(err, client.ErrExpired) {
		t.Fatalf("queued swap-in past its deadline: %v, want ErrExpired", err)
	}
	if v := schedCounter(t, s, "server_sched_expiries_total", metrics.L("lane", "normal")); v != 1 {
		t.Fatalf("server_sched_expiries_total{lane=normal} = %v, want 1", v)
	}
	if v := schedCounter(t, s, "server_backpressure_total"); v != 1 {
		t.Fatalf("server_backpressure_total = %v, want 1 (expiry counts as backpressure)", v)
	}

	// Releasing the slot un-wedges the window; the same request succeeds.
	s.sched.Release()
	got, err := c.SwapIn(ctx, "t0", client.WithDeadline(5*time.Second))
	if err != nil {
		t.Fatalf("swap-in after release: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("restored %d elements, want %d", len(got), len(data))
	}
}

func TestCriticalAheadOfSpeculativeFlood(t *testing.T) {
	s, url := newInternalServer(t, Config{
		MaxInFlight: 2,
		Sched:       SchedConfig{Enabled: true, StarveAfter: 2 * time.Millisecond},
	})
	ctx := context.Background()

	// A pool of speculative tensors the flood prefetches (idempotent once
	// resident: each round trip still takes an admission slot, which is
	// exactly the contention the scheduler must referee), plus one tensor
	// the critical path swaps out and back per iteration.
	flood := client.New(url, client.WithRetry(64, time.Millisecond))
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("spec%d", i)
		if err := flood.Register(ctx, name, tensor.NewGenerator(int64(i)).Uniform(32*1024, 0.5).Data); err != nil {
			t.Fatal(err)
		}
		if err := flood.SwapOut(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	crit := client.New(url, client.WithRetry(64, time.Millisecond))
	if err := crit.Register(ctx, "hot", tensor.NewGenerator(99).Uniform(32*1024, 0.5).Data); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("spec%d", g)
			for !stop.Load() {
				// Saturated/busy refusals are the flood doing its job.
				_ = flood.Prefetch(ctx, name)
			}
		}(g)
	}

	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := crit.SwapOut(ctx, "hot"); err != nil {
			t.Fatalf("round %d: critical swap-out: %v", i, err)
		}
		if _, err := crit.SwapIn(ctx, "hot",
			client.WithLane(client.LaneCritical), client.WithDeadline(10*time.Second)); err != nil {
			t.Fatalf("round %d: critical swap-in: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if v := schedCounter(t, s, "server_sched_expiries_total", metrics.L("lane", "critical")); v != 0 {
		t.Fatalf("critical expiries = %v under speculative flood, want 0", v)
	}
	if v := schedCounter(t, s, "server_sched_admits_total", metrics.L("lane", "critical")); v < rounds {
		t.Fatalf("critical admits = %v, want >= %d", v, rounds)
	}
	if v := schedCounter(t, s, "server_sched_admits_total", metrics.L("lane", "speculative")); v == 0 {
		t.Fatal("speculative lane never admitted — the flood did not exercise the scheduler")
	}
}
