package server

import (
	"time"

	"cswap/internal/compress"
	"cswap/internal/faultinject"
	"cswap/internal/metrics"
)

// Option configures NewServer and NewCluster — the functional counterpart
// of the Config struct, mirroring the simulator's NewSimOptions surface so
// both entry points of the repo read the same way. New code composes
// options; Config remains for existing callers.
type Option func(*options)

// options is the resolved option set. shards only matters to NewCluster;
// NewServer ignores it (a Server is exactly one shard).
type options struct {
	cfg    Config
	shards int
}

// WithShards sets the executor-shard count for NewCluster (default 1).
// Every per-shard knob — capacities, in-flight window, quota, tuner — is
// applied to each shard independently: a 3-shard cluster with
// WithDeviceCapacity(1 GiB) holds 3 GiB of device memory in total.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithDeviceCapacity sizes each shard's device pool in bytes.
func WithDeviceCapacity(b int64) Option { return func(o *options) { o.cfg.DeviceCapacity = b } }

// WithHostCapacity sizes each shard's host (swap-target) pool in bytes.
func WithHostCapacity(b int64) Option { return func(o *options) { o.cfg.HostCapacity = b } }

// WithMaxInFlight bounds each shard's async window and admission window.
func WithMaxInFlight(n int) Option { return func(o *options) { o.cfg.MaxInFlight = n } }

// WithLaunch sets each shard's initial codec partitioning geometry; a
// shard's tuner may re-probe and move its own geometry independently.
func WithLaunch(l compress.Launch) Option { return func(o *options) { o.cfg.Launch = l } }

// WithVerify enables the executor's post-restore checksum check.
func WithVerify(v bool) Option { return func(o *options) { o.cfg.Verify = v } }

// WithTenantQuota sets the per-tenant registered-bytes quota, enforced per
// shard (a tenant's tensors spread across shards, each charging its own
// quota).
func WithTenantQuota(b int64) Option { return func(o *options) { o.cfg.TenantQuota = b } }

// WithTierDir attaches a disk spill tier rooted at dir (empty disables).
// A cluster gives each shard its own subdirectory under dir.
func WithTierDir(dir string) Option { return func(o *options) { o.cfg.TierDir = dir } }

// WithTierCap bounds each shard's tier directory in bytes (zero selects
// four times the host capacity).
func WithTierCap(b int64) Option { return func(o *options) { o.cfg.TierCap = b } }

// WithTenantTierQuota sets the per-tenant tier-resident-bytes quota,
// enforced per shard like the device quota.
func WithTenantTierQuota(b int64) Option { return func(o *options) { o.cfg.TenantTierQuota = b } }

// WithTierWatermark enables each shard's background host->tier demoter at
// the given occupancy fraction in (0,1); zero keeps demotion demand-driven.
func WithTierWatermark(f float64) Option { return func(o *options) { o.cfg.TierWatermark = f } }

// WithMaxPayload caps decodable wire frames.
func WithMaxPayload(n uint32) Option { return func(o *options) { o.cfg.MaxPayload = n } }

// WithRetryAfter sets the hint returned with 429/409 responses.
func WithRetryAfter(d time.Duration) Option { return func(o *options) { o.cfg.RetryAfter = d } }

// WithObserver supplies the instrumentation surface. A cluster derives a
// per-shard shard="N"-labeled view of its registry for each shard.
func WithObserver(obs *metrics.Observer) Option { return func(o *options) { o.cfg.Observer = obs } }

// WithFaults injects data-path faults into each shard's executor.
func WithFaults(f *faultinject.Injector) Option { return func(o *options) { o.cfg.Faults = f } }

// WithTuner configures the online per-tenant tuner, run per shard.
func WithTuner(tc TunerConfig) Option { return func(o *options) { o.cfg.Tuner = tc } }

// WithSched configures the SLO-aware admission scheduler, run per shard
// (each shard's lanes queue independently, like its admission window).
func WithSched(sc SchedConfig) Option { return func(o *options) { o.cfg.Sched = sc } }

func resolve(opts []Option) options {
	o := options{shards: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards < 1 {
		o.shards = 1
	}
	return o
}

// NewServer builds a single-shard server from functional options — the
// options-first face of New. Prefer it in new code.
func NewServer(opts ...Option) (*Server, error) {
	return New(resolve(opts).cfg)
}
