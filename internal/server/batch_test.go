package server_test

import (
	"context"
	"fmt"
	"testing"

	"cswap/client"
	"cswap/internal/metrics"
	"cswap/internal/placement"
	"cswap/internal/server"
	"cswap/internal/tensor"
)

func TestBatchBlockRoundTrip(t *testing.T) {
	s, url := newTestServer(t)
	c := client.New(url)
	ctx := context.Background()
	const elems, blocks = 128, 64

	if err := c.RegisterPool(ctx, "kv", elems, blocks); err != nil {
		t.Fatal(err)
	}
	// Quota is charged once, for the whole reservation, at register time.
	wantBytes := float64(elems * blocks * 4)
	if g, _ := s.Registry().Snapshot().Gauge("server_tenant_used_bytes", metrics.L("tenant", "default")); g != wantBytes {
		t.Fatalf("tenant used bytes = %v after register-pool, want %v", g, wantBytes)
	}

	ids := []int{0, 1, 2, 3, 9, 10, 40}
	packed := tensor.NewGenerator(7).Uniform(len(ids)*elems, 0.6).Data
	want := append([]float32(nil), packed...)
	if err := c.WriteBlocks(ctx, "kv", ids, packed); err != nil {
		t.Fatal(err)
	}

	bpBefore := counterValue(t, s, "server_backpressure_total")
	if err := c.SwapOutBlocks(ctx, "kv", ids); err != nil {
		t.Fatal(err)
	}
	bd, err := c.SwapInBlocks(ctx, "kv", ids)
	if err != nil {
		t.Fatal(err)
	}
	if bd.BlockElems != elems {
		t.Fatalf("batch-data elems = %d, want %d", bd.BlockElems, elems)
	}
	// The run table covers exactly the request: {0,4} {9,2} {40,1}.
	if len(bd.Runs) != 3 || bd.Runs[0] != (client.BlockRun{Start: 0, Count: 4}) {
		t.Fatalf("batch-data runs = %v", bd.Runs)
	}
	if len(bd.Data) != len(want) {
		t.Fatalf("batch-data payload %d elements, want %d", len(bd.Data), len(want))
	}
	for i := range want {
		if bd.Data[i] != want[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, bd.Data[i], want[i])
		}
	}
	// The per-block accessor agrees with the packed layout.
	blk, ok := bd.Block(9)
	if !ok || blk[0] != want[4*elems] {
		t.Fatalf("Block(9) = %v/%v, want first element %v", blk[0], ok, want[4*elems])
	}
	if _, ok := bd.Block(5); ok {
		t.Fatal("Block(5) found data for an unrequested ID")
	}

	// Batch counters advanced; quota was never re-charged and the batch
	// took one admission slot each way — no backpressure events.
	if v := counterValue(t, s, "server_batch_blocks_total", metrics.L("op", "swap-out")); v != float64(len(ids)) {
		t.Fatalf("server_batch_blocks_total{op=swap-out} = %v, want %d", v, len(ids))
	}
	if v := counterValue(t, s, "server_batch_requests_total", metrics.L("op", "swap-out")); v != 1 {
		t.Fatalf("server_batch_requests_total{op=swap-out} = %v, want 1", v)
	}
	if v := counterValue(t, s, "server_backpressure_total"); v != bpBefore {
		t.Fatalf("server_backpressure_total moved %v -> %v during batches", bpBefore, v)
	}
	if g, _ := s.Registry().Snapshot().Gauge("server_tenant_used_bytes", metrics.L("tenant", "default")); g != wantBytes {
		t.Fatalf("tenant used bytes = %v after batches, want %v (charged once)", g, wantBytes)
	}

	if err := c.Free(ctx, "kv"); err != nil {
		t.Fatal(err)
	}
	if g, _ := s.Registry().Snapshot().Gauge("server_tenant_used_bytes", metrics.L("tenant", "default")); g != 0 {
		t.Fatalf("tenant used bytes = %v after pool free, want 0", g)
	}
}

// TestBatchOneAdmissionSlot pins the admission accounting: a batch that
// fans out into many executor runs claims ONE server admission slot, so a
// window of one admits any batch without a single 429.
func TestBatchOneAdmissionSlot(t *testing.T) {
	s, url := newTestServer(t, server.WithMaxInFlight(1))
	c := client.New(url, client.WithRetry(0, 0))
	ctx := context.Background()

	if err := c.RegisterPool(ctx, "kv", 64, 256); err != nil {
		t.Fatal(err)
	}
	// Fragmented batches: many runs per batch, sequentially issued.
	for round := 0; round < 4; round++ {
		var ids []int
		for b := 0; b < 32; b++ {
			ids = append(ids, b*8, b*8+1) // 32 runs of 2 blocks
		}
		if err := c.SwapOutBlocks(ctx, "kv", ids, client.WithCodec(client.ZVC)); err != nil {
			t.Fatalf("round %d swap-out: %v", round, err)
		}
		if _, err := c.SwapInBlocks(ctx, "kv", ids); err != nil {
			t.Fatalf("round %d swap-in: %v", round, err)
		}
	}
	if v := counterValue(t, s, "server_backpressure_total"); v != 0 {
		t.Fatalf("server_backpressure_total = %v; batches charged more than one slot", v)
	}
	if v := counterValue(t, s, "server_batch_blocks_total", metrics.L("op", "swap-out")); v != 4*64 {
		t.Fatalf("server_batch_blocks_total{op=swap-out} = %v, want %d", v, 4*64)
	}
}

// TestBatchKindMismatch pins the taxonomy when tensor and pool namespaces
// collide: batch ops on a tensor name and tensor ops on a pool name are
// state conflicts, not crashes or silent misreads.
func TestBatchKindMismatch(t *testing.T) {
	_, url := newTestServer(t)
	c := client.New(url, client.WithRetry(0, 0))
	ctx := context.Background()

	if err := c.Register(ctx, "plain", make([]float32, 64)); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterPool(ctx, "paged", 8, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapOutBlocks(ctx, "plain", []int{0}); !isErr(err, client.ErrState) {
		t.Errorf("batch op on tensor: %v, want ErrState", err)
	}
	if err := c.SwapOut(ctx, "paged", client.WithCodec(client.ZVC)); !isErr(err, client.ErrState) {
		t.Errorf("tensor op on pool: %v, want ErrState", err)
	}
	if err := c.SwapOutBlocks(ctx, "ghost", []int{0}); !isErr(err, client.ErrNotFound) {
		t.Errorf("batch op on unknown name: %v, want ErrNotFound", err)
	}
	if err := c.RegisterPool(ctx, "paged", 8, 8); !isErr(err, client.ErrExists) {
		t.Errorf("duplicate register-pool: %v, want ErrExists", err)
	}
	if err := c.SwapOutBlocks(ctx, "paged", []int{64}); !isErr(err, client.ErrProtocol) && err == nil {
		t.Errorf("out-of-range block ID accepted")
	}
}

// TestBatchPoolQuota: a pool reservation is quota-checked like any
// register, and refusing it leaves the tenant clean.
func TestBatchPoolQuota(t *testing.T) {
	_, url := newTestServer(t, server.WithTenantQuota(4<<10))
	c := client.New(url, client.WithRetry(0, 0))
	ctx := context.Background()

	if err := c.RegisterPool(ctx, "big", 1024, 1024); !isErr(err, client.ErrQuota) {
		t.Fatalf("oversized pool: %v, want ErrQuota", err)
	}
	// The refused reservation must not have leaked quota.
	if err := c.RegisterPool(ctx, "fits", 32, 32); err != nil {
		t.Fatalf("in-quota pool after refusal: %v", err)
	}
}

// TestClusterBatchDrain is the batch acceptance e2e: batched ops route by
// pool name across shards, and a live shard drain migrates pools so every
// block restores byte-identically afterwards — while batches keep running.
func TestClusterBatchDrain(t *testing.T) {
	cl, url := newTestCluster(t)
	ctx := context.Background()
	const elems, blocks = 64, 32

	// One pool per shard, steered by name so shard 1 definitely owns one.
	m := cl.Map()
	ring := m.Ring()
	pools := map[string][]float32{}
	for shard := 0; shard < cl.NumShards(); shard++ {
		var name string
		for i := 0; ; i++ {
			name = fmt.Sprintf("pool-%d-%d/kv", shard, i)
			if o, ok := ring.Owner(placement.Key("default", name)); ok && o == shard {
				break
			}
			if i > 100000 {
				t.Fatalf("no pool name landed on shard %d in 100k probes", shard)
			}
		}
		cc := client.NewCluster(url)
		if err := cc.RegisterPool(ctx, name, elems, blocks); err != nil {
			t.Fatal(err)
		}
		allIDs := make([]int, blocks)
		for i := range allIDs {
			allIDs[i] = i
		}
		data := tensor.NewGenerator(int64(100 + shard)).Uniform(blocks*elems, 0.5).Data
		pools[name] = append([]float32(nil), data...)
		if err := cc.WriteBlocks(ctx, name, allIDs, data); err != nil {
			t.Fatal(err)
		}
		// Leave half of each pool swapped for the migrator.
		var half []int
		for i := 0; i < blocks; i += 2 {
			half = append(half, i)
		}
		if err := cc.SwapOutBlocks(ctx, name, half); err != nil {
			t.Fatal(err)
		}
	}

	admin := client.NewCluster(url)
	if err := admin.DrainShard(ctx, 1); err != nil {
		t.Fatalf("drain shard 1: %v", err)
	}

	// Every pool restores byte-identically through the new topology.
	for name, want := range pools {
		cc := client.NewCluster(url)
		allIDs := make([]int, blocks)
		for i := range allIDs {
			allIDs[i] = i
		}
		bd, err := cc.SwapInBlocks(ctx, name, allIDs)
		if err != nil {
			t.Fatalf("post-drain swap-in %s: %v", name, err)
		}
		for i := range want {
			if bd.Data[i] != want[i] {
				t.Fatalf("post-drain %s element %d = %v, want %v", name, i, bd.Data[i], want[i])
			}
		}
	}
	if v, _ := cl.Registry().Snapshot().Counter("cluster_rebalanced_tensors_total"); v == 0 {
		t.Error("drain migrated nothing; shard 1 owned no pools?")
	}
}
