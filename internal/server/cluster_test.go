package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"cswap/client"
	"cswap/internal/compress"
	"cswap/internal/metrics"
	"cswap/internal/placement"
	"cswap/internal/server"
	"cswap/internal/tensor"
	"cswap/internal/wire"
)

// newTestCluster starts a 3-shard cluster behind loopback HTTP. Caller
// options come after the defaults, so they override.
func newTestCluster(t *testing.T, opts ...server.Option) (*server.Cluster, string) {
	t.Helper()
	defaults := []server.Option{
		server.WithShards(3),
		server.WithDeviceCapacity(64 << 20),
		server.WithHostCapacity(64 << 20),
		server.WithRetryAfter(time.Millisecond),
		server.WithVerify(true),
	}
	c, err := server.NewCluster(append(defaults, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = c.Close()
	})
	return c, hs.URL
}

// namesOwnedBy probes synthetic names until count of them land on the
// wanted shard under the given ring — the tests' way of steering keys.
func namesOwnedBy(t *testing.T, ring *placement.Ring, tenant string, shard, count int) []string {
	t.Helper()
	var names []string
	for i := 0; len(names) < count; i++ {
		if i > 100000 {
			t.Fatalf("no %d names landed on shard %d in 100k probes", count, shard)
		}
		name := fmt.Sprintf("probe-%d", i)
		if owner, ok := ring.Owner(placement.Key(tenant, name)); ok && owner == shard {
			names = append(names, name)
		}
	}
	return names
}

// TestClusterConcurrentRoundTrip drives three tenants concurrently
// through a 3-shard cluster and verifies every restore is bit-exact and
// every shard served traffic (the per-shard labeled executor series).
func TestClusterConcurrentRoundTrip(t *testing.T) {
	cl, url := newTestCluster(t)
	tenants := []string{"trainer-a", "trainer-b", "trainer-c"}
	var wg sync.WaitGroup
	for ti, tn := range tenants {
		wg.Add(1)
		go func(ti int, tn string) {
			defer wg.Done()
			cc := client.NewCluster(url, client.WithTenant(tn))
			ctx := context.Background()
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("layer%d/act", i)
				data := tensor.NewGenerator(int64(ti*100 + i)).Uniform(2048, float64(i%5)/5).Data
				want := append([]float32(nil), data...)
				if err := cc.Register(ctx, name, data); err != nil {
					t.Errorf("%s: register %s: %v", tn, name, err)
					return
				}
				if err := cc.SwapOut(ctx, name); err != nil {
					t.Errorf("%s: swap-out %s: %v", tn, name, err)
					return
				}
				got, err := cc.SwapIn(ctx, name)
				if err != nil {
					t.Errorf("%s: swap-in %s: %v", tn, name, err)
					return
				}
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("%s: %s restored[%d] = %v, want %v", tn, name, j, got[j], want[j])
						return
					}
				}
			}
		}(ti, tn)
	}
	wg.Wait()

	// 3 tenants x 8 names across a 256-vnode ring: every shard should have
	// seen swap-outs, each on its own shard-labeled series.
	snap := cl.Registry().Snapshot()
	for i := 0; i < cl.NumShards(); i++ {
		v, ok := snap.Counter("executor_swap_outs_total", metrics.L("shard", strconv.Itoa(i)))
		if !ok || v == 0 {
			t.Errorf("shard %d served no swap-outs (got %v, present %v)", i, v, ok)
		}
	}
}

// TestClusterPerShardQuota verifies admission is per shard: one shard
// refusing a tenant on quota neither consumes nor blocks the same
// tenant's budget on another shard, and the rejection lands on the
// refusing shard's labeled series only.
func TestClusterPerShardQuota(t *testing.T) {
	// Quota admits one 1024-element (4 KiB) tensor per tenant per shard.
	cl, url := newTestCluster(t, server.WithTenantQuota(6<<10))
	ring := placement.NewRing([]int{0, 1, 2}, 0)
	const tn = "tenant-q"
	onShard0 := namesOwnedBy(t, ring, tn, 0, 2)
	onShard1 := namesOwnedBy(t, ring, tn, 1, 1)
	cc := client.NewCluster(url, client.WithTenant(tn), client.WithRetry(0, 0))
	ctx := context.Background()

	if err := cc.Register(ctx, onShard0[0], make([]float32, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := cc.Register(ctx, onShard0[1], make([]float32, 1024)); !isErr(err, client.ErrQuota) {
		t.Fatalf("second register on shard 0: %v, want ErrQuota", err)
	}
	// Shard 1 runs its own admission: the same tenant still has its full
	// budget there.
	if err := cc.Register(ctx, onShard1[0], make([]float32, 1024)); err != nil {
		t.Fatalf("register on shard 1 blocked by shard 0's quota: %v", err)
	}

	snap := cl.Registry().Snapshot()
	if v, _ := snap.Counter("server_quota_rejections_total",
		metrics.L("shard", "0"), metrics.L("tenant", tn)); v != 1 {
		t.Errorf("shard 0 quota rejections = %v, want 1", v)
	}
	if v, ok := snap.Counter("server_quota_rejections_total",
		metrics.L("shard", "1"), metrics.L("tenant", tn)); ok && v != 0 {
		t.Errorf("shard 1 quota rejections = %v, want none", v)
	}
}

// TestClusterLiveDrainBitExact rebalances a shard away mid-traffic: churn
// clients keep swapping while /admin/drain migrates shard 1's tensors,
// and afterwards every tensor — migrated or not — restores byte-exactly.
func TestClusterLiveDrainBitExact(t *testing.T) {
	cl, url := newTestCluster(t)
	ctx := context.Background()
	tenants := []string{"trainer-a", "trainer-b"}

	type tkey struct{ tenant, name string }
	want := map[tkey][]float32{}
	for ti, tn := range tenants {
		cc := client.NewCluster(url, client.WithTenant(tn))
		for i := 0; i < 12; i++ {
			name := fmt.Sprintf("layer%d/act", i)
			data := tensor.NewGenerator(int64(1+ti*100+i)).Uniform(2048, float64(i%5)/5).Data
			want[tkey{tn, name}] = append([]float32(nil), data...)
			if err := cc.Register(ctx, name, data); err != nil {
				t.Fatal(err)
			}
			// Leave a mix of swapped and resident tensors for the migrator.
			if i%2 == 0 {
				if err := cc.SwapOut(ctx, name); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Churners hammer their own tensors for the duration of the drain;
	// migration-held entry locks surface as retryable 409s, topology
	// changes as one 421 + refresh — never as hard errors.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for gi, tn := range tenants {
		wg.Add(1)
		go func(gi int, tn string) {
			defer wg.Done()
			cc := client.NewCluster(url, client.WithTenant(tn))
			name := "churn/act"
			data := tensor.NewGenerator(int64(1000 + gi)).Uniform(1024, 0.5).Data
			ref := append([]float32(nil), data...)
			if err := cc.Register(ctx, name, data); err != nil {
				t.Errorf("%s: churn register: %v", tn, err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := cc.SwapOut(ctx, name); err != nil {
					t.Errorf("%s: churn swap-out: %v", tn, err)
					return
				}
				got, err := cc.SwapIn(ctx, name)
				if err != nil {
					t.Errorf("%s: churn swap-in: %v", tn, err)
					return
				}
				for j := range ref {
					if got[j] != ref[j] {
						t.Errorf("%s: churn restored[%d] = %v, want %v", tn, j, got[j], ref[j])
						return
					}
				}
			}
		}(gi, tn)
	}

	admin := client.NewCluster(url)
	if err := admin.DrainShard(ctx, 1); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("drain shard 1: %v", err)
	}
	close(stop)
	wg.Wait()

	m := cl.Map()
	if got := m.Shards[1].State; got != placement.StateDrained {
		t.Errorf("shard 1 state = %q, want drained", got)
	}
	if m.Version < 3 {
		t.Errorf("map version = %d, want >= 3 after drain", m.Version)
	}
	if v, _ := cl.Registry().Snapshot().Counter("cluster_rebalanced_tensors_total"); v == 0 {
		t.Error("drain rebalanced no tensors; the ring put nothing on shard 1?")
	}

	// Every pre-drain tensor restores bit-exactly through the new topology.
	for ti, tn := range tenants {
		cc := client.NewCluster(url, client.WithTenant(tn))
		for i := 0; i < 12; i++ {
			name := fmt.Sprintf("layer%d/act", i)
			ref := want[tkey{tn, name}]
			// Force a full swap cycle regardless of current residency; a
			// resident tensor answers ErrState to the redundant swap-out.
			if err := cc.SwapOut(ctx, name); err != nil && !isErr(err, client.ErrState) {
				t.Fatalf("%s: post-drain swap-out %s: %v", tn, name, err)
			}
			got, err := cc.SwapIn(ctx, name)
			if err != nil {
				t.Fatalf("%s: post-drain swap-in %s: %v", tn, name, err)
			}
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("%s: post-drain %s restored[%d] = %v, want %v (tenant %d)",
						tn, name, j, got[j], ref[j], ti)
				}
			}
		}
	}
}

// TestClusterPerShardLaunch verifies launch geometry is a per-shard knob:
// retuning one shard's executor leaves the others' untouched.
func TestClusterPerShardLaunch(t *testing.T) {
	base := compress.Launch{Grid: 4, Block: 64}
	cl, _ := newTestCluster(t, server.WithLaunch(base))
	retuned := compress.Launch{Grid: 16, Block: 128}
	if err := cl.Shard(1).Executor().SetLaunch(retuned); err != nil {
		t.Fatal(err)
	}
	if got := cl.Shard(1).Executor().Launch(); got != retuned {
		t.Errorf("shard 1 launch = %+v, want %+v", got, retuned)
	}
	for _, i := range []int{0, 2} {
		if got := cl.Shard(i).Executor().Launch(); got != base {
			t.Errorf("shard %d launch = %+v, want base %+v (leaked from shard 1)", i, got, base)
		}
	}
}

// TestClusterMisroutedHint checks the routing-hint contract over raw
// HTTP: a stale hint is refused with 421 + the authoritative owner, a
// correct hint is served and stamped with the serving shard.
func TestClusterMisroutedHint(t *testing.T) {
	cl, url := newTestCluster(t)
	ring := placement.NewRing([]int{0, 1, 2}, 0)
	name := namesOwnedBy(t, ring, "default", 0, 1)[0]
	body, err := wire.Encode(&wire.Frame{Type: wire.TypeRegister, Name: name, Data: make([]float32, 64)})
	if err != nil {
		t.Fatal(err)
	}

	post := func(hint string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, url+"/v1/register", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if hint != "" {
			req.Header.Set(server.ShardHeader, hint)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := post("1") // lies about the owner
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("stale hint answered %d, want 421", resp.StatusCode)
	}
	if code := resp.Header.Get(server.ErrorHeader); code != server.CodeMisrouted {
		t.Errorf("error code = %q, want %q", code, server.CodeMisrouted)
	}
	if owner := resp.Header.Get(server.OwnerHeader); owner != "0" {
		t.Errorf("owner header = %q, want 0", owner)
	}
	if v := resp.Header.Get(server.MapVersionHeader); v != "1" {
		t.Errorf("map version header = %q, want 1", v)
	}

	resp = post("0") // correct hint
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("correct hint answered %d, want 200", resp.StatusCode)
	}
	if shard := resp.Header.Get(server.ShardHeader); shard != "0" {
		t.Errorf("serving shard header = %q, want 0", shard)
	}
	if v, _ := cl.Registry().Snapshot().Counter("cluster_misrouted_total"); v != 1 {
		t.Errorf("misrouted counter = %v, want 1", v)
	}
}

// TestClusterClientRefreshOnMisroute drains a shard behind a client's
// back and verifies the client's stale hint costs exactly one refresh
// round trip, not an error.
func TestClusterClientRefreshOnMisroute(t *testing.T) {
	cl, url := newTestCluster(t)
	cc := client.NewCluster(url)
	ctx := context.Background()
	if err := cc.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	// A name shard 1 owns on the 3-shard ring must move on the 2-shard one.
	ring3 := placement.NewRing([]int{0, 1, 2}, 0)
	name := namesOwnedBy(t, ring3, "default", 1, 1)[0]

	// Topology changes server-side only; cc still routes by the old map.
	if _, _, err := cl.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	if err := cc.Register(ctx, name, make([]float32, 256)); err != nil {
		t.Fatalf("register after hidden drain: %v", err)
	}
	if got := cc.Map().Version; got < 3 {
		t.Errorf("client map version = %d, want refreshed to >= 3", got)
	}
	if v, _ := cl.Registry().Snapshot().Counter("cluster_misrouted_total"); v == 0 {
		t.Error("no misroute was counted; the stale hint was silently absorbed")
	}
}

// TestClusterDrainRefusals pins the admin-drain error contract.
func TestClusterDrainRefusals(t *testing.T) {
	cl, _ := newTestCluster(t)
	if _, _, err := cl.DrainShard(7); err == nil {
		t.Error("draining unknown shard succeeded")
	}
	if _, _, err := cl.DrainShard(1); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if _, _, err := cl.DrainShard(1); err == nil {
		t.Error("re-draining a drained shard succeeded")
	}
	if _, _, err := cl.DrainShard(0); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if _, _, err := cl.DrainShard(2); err == nil {
		t.Error("draining the last active shard succeeded")
	}
}

// TestClusterClientAgainstSingleShard points the cluster-aware client at
// a plain single-shard server: the one-shard map routes everything to
// shard 0 and round trips work unchanged.
func TestClusterClientAgainstSingleShard(t *testing.T) {
	_, url := newTestServer(t)
	cc := client.NewCluster(url)
	ctx := context.Background()

	m := cc.Map()
	if m.Version != 0 {
		t.Errorf("map version before first use = %d, want zero value", m.Version)
	}
	data := tensor.NewGenerator(9).Uniform(1024, 0.5).Data
	want := append([]float32(nil), data...)
	if err := cc.Register(ctx, "solo", data); err != nil {
		t.Fatal(err)
	}
	if err := cc.SwapOut(ctx, "solo"); err != nil {
		t.Fatal(err)
	}
	got, err := cc.SwapIn(ctx, "solo")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	m = cc.Map()
	if len(m.Shards) != 1 || m.Shards[0].State != placement.StateActive {
		t.Errorf("single-shard map = %+v, want one active shard", m)
	}
}

func isErr(err, target error) bool { return errors.Is(err, target) }
