package server

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cswap/client"
	"cswap/internal/compress"
	"cswap/internal/faultinject"
	"cswap/internal/wire"
)

// newInternalServer builds a Server directly (internal tests need entry
// and session access the exported surface hides).
func newInternalServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.DeviceCapacity == 0 {
		cfg.DeviceCapacity = 64 << 20
	}
	if cfg.HostCapacity == 0 {
		cfg.HostCapacity = 64 << 20
	}
	cfg.Verify = true
	cfg.RetryAfter = time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		_ = s.Close()
	})
	return s, hs.URL
}

// entrySparsity reads an entry's pool-wide sparsity under its lock.
func entrySparsity(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	ent, err := s.session(DefaultTenant).lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	return ent.sparsity
}

// TestBatchWriteBlendsSparsityByCoverage pins the satellite fix: a
// partial batch-write must fold its measured sparsity into the pool-wide
// value weighted by the fraction of blocks it covers, not overwrite it —
// a dense write to a sparse pool's corner moves the profile
// proportionally, it does not swing every later codec decision to the
// corner's density.
func TestBatchWriteBlendsSparsityByCoverage(t *testing.T) {
	const (
		blockElems = 64
		numBlocks  = 16
	)
	s, url := newInternalServer(t, Config{})
	c := client.New(url)
	ctx := context.Background()
	if err := c.RegisterPool(ctx, "kv", blockElems, numBlocks); err != nil {
		t.Fatal(err)
	}

	// Fill the whole pool 90% sparse.
	allIDs := make([]int, numBlocks)
	sparse := make([]float32, numBlocks*blockElems)
	for i := range allIDs {
		allIDs[i] = i
	}
	for i := range sparse {
		if i%10 == 0 {
			sparse[i] = float32(i + 1)
		}
	}
	if err := c.WriteBlocks(ctx, "kv", allIDs, sparse); err != nil {
		t.Fatal(err)
	}
	base := entrySparsity(t, s, "kv")
	if base < 0.8 {
		t.Fatalf("pool sparsity after sparse fill = %v, want ~0.9", base)
	}

	// Write a fully dense corner: 2 of 16 blocks.
	dense := make([]float32, 2*blockElems)
	for i := range dense {
		dense[i] = float32(i + 1)
	}
	if err := c.WriteBlocks(ctx, "kv", []int{0, 1}, dense); err != nil {
		t.Fatal(err)
	}
	got := entrySparsity(t, s, "kv")
	want := base * (1 - 2.0/numBlocks) // blended with sparsity 0 at 2/16 weight
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("pool sparsity after dense corner write = %v, want blended %v", got, want)
	}
	if got < 0.5 {
		t.Fatalf("dense corner write clobbered the pool profile: sparsity %v", got)
	}
}

// TestFreePoolBusyTaxonomy pins the satellite fix: freeing a pool while a
// batch swap is in flight answers the busy taxonomy — 409, the busy error
// code, and a Retry-After hint — and a retry after the batch resolves
// frees cleanly, returning the full quota charge (no leak).
func TestFreePoolBusyTaxonomy(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Site: faultinject.SiteEncode, Mode: faultinject.Delay, Delay: 500 * time.Millisecond,
	})
	s, url := newInternalServer(t, Config{Faults: inj})
	c := client.New(url, client.WithRetry(0, 0))
	ctx := context.Background()
	if err := c.RegisterPool(ctx, "kv", 64, 8); err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2, 3}
	data := make([]float32, 4*64)
	for i := range data {
		if i%2 == 0 {
			data[i] = float32(i)
		}
	}
	if err := c.WriteBlocks(ctx, "kv", ids, data); err != nil {
		t.Fatal(err)
	}
	ent, err := s.session(DefaultTenant).lookup("kv")
	if err != nil {
		t.Fatal(err)
	}
	// Submit the batch on the executor directly: the entry lock stays
	// free, so the free request reaches pool.Free() while the run's blocks
	// are genuinely mid-swap (the delayed encode holds them SwappingOut).
	tk := ent.pool.SwapOutBlocksCtx(context.Background(), ids, true, compress.ZVC)

	body, err := wire.Encode(&wire.Frame{Type: wire.TypeFree, Name: "kv"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/free", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("free of busy pool = %d, want 409", resp.StatusCode)
	}
	if code := resp.Header.Get(ErrorHeader); code != CodeBusy {
		t.Fatalf("free of busy pool error code = %q, want %q", code, CodeBusy)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("busy free refusal carries no Retry-After hint")
	}
	if used := s.session(DefaultTenant).Used(); used == 0 {
		t.Fatal("refused free released the quota charge while the pool still lives")
	}

	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(ctx, "kv"); err != nil {
		t.Fatalf("free after batch resolved: %v", err)
	}
	if used := s.session(DefaultTenant).Used(); used != 0 {
		t.Fatalf("quota still charged %d bytes after successful free", used)
	}
}
