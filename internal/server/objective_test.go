package server

import "testing"

// The launch objective must weigh realized compressed size, not kernels
// alone: at equal kernel time the smaller blob wins, and a kernel saving
// smaller than the transfer cost it induces must lose.
func TestLaunchObjective(t *testing.T) {
	const link = 12e9
	if a, b := launchObjective(1e-3, 1<<20, link), launchObjective(1e-3, 2<<20, link); a >= b {
		t.Fatalf("equal kernels: smaller blob scored %v >= larger %v", a, b)
	}
	// 10µs faster kernel, 1 MiB larger blob: the extra ~175µs of two-way
	// transfer dwarfs the kernel saving.
	fastButFat := launchObjective(990e-6, 2<<20, link)
	slowButLean := launchObjective(1e-3, 1<<20, link)
	if fastButFat <= slowButLean {
		t.Fatalf("fragmenting geometry won: %v <= %v", fastButFat, slowButLean)
	}
	// The blob term is the two-way modeled transfer, additive on kernels.
	want := 1e-3 + 2*float64(1<<20)/link
	if got := launchObjective(1e-3, 1<<20, link); got != want {
		t.Fatalf("objective = %v, want %v", got, want)
	}
}
