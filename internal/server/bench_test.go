package server_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"cswap/client"
	"cswap/internal/server"
	"cswap/internal/tensor"
)

// BenchmarkServerRoundTrip measures one full service round trip — an Auto
// swap-out resolved by the server plus the swap-in streaming the tensor
// back — through the real HTTP stack and wire codec. It rides in the
// bench-diff gate under the lenient rules (cswap-benchdiff -lenient): the
// path crosses the network stack, the scheduler, and the executor's async
// pipeline, so its ns/op and allocs/op carry noise the tight codec-loop
// thresholds would flake on; what the gate catches here is gross
// regressions — an allocation storm or a serialization cliff, not a cache
// miss.
func BenchmarkServerRoundTrip(b *testing.B) {
	s, err := server.NewServer(
		server.WithDeviceCapacity(64<<20),
		server.WithHostCapacity(64<<20),
		server.WithVerify(true))
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() {
		hs.Close()
		_ = s.Close()
	}()
	c := client.New(hs.URL)
	ctx := context.Background()

	data := tensor.NewGenerator(1).Uniform(64*1024, 0.6).Data
	if err := c.Register(ctx, "bench0", data); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.SetBytes(int64(len(data)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SwapOut(ctx, "bench0"); err != nil {
			b.Fatal(err)
		}
		if _, err := c.SwapIn(ctx, "bench0"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSwap is the batching acceptance head-to-head over real
// loopback HTTP: moving 64 one-KiB blocks out and back as 64 single-block
// batches versus one 64-block batch. Byte volume is identical; the delta
// is pure per-request control cost — framing, admission, codec launch —
// which the contiguous-run batch issues once. The 64-block case must land
// well under a quarter of the single-block wall time (the kv-smoke target
// asserts the <25% bound end to end); like ServerRoundTrip it rides in
// bench-diff's lenient band, since the path crosses the HTTP stack and
// the async pipeline.
func BenchmarkBatchSwap(b *testing.B) {
	const blockElems, numBlocks = 256, 64
	run := func(b *testing.B, batch [][]int) {
		s, err := server.NewServer(
			server.WithDeviceCapacity(64<<20),
			server.WithHostCapacity(64<<20),
			server.WithVerify(true))
		if err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		defer func() {
			hs.Close()
			_ = s.Close()
		}()
		c := client.New(hs.URL)
		ctx := context.Background()

		if err := c.RegisterPool(ctx, "kv", blockElems, numBlocks); err != nil {
			b.Fatal(err)
		}
		all := make([]int, numBlocks)
		for i := range all {
			all[i] = i
		}
		data := tensor.NewGenerator(1).Uniform(numBlocks*blockElems, 0.5).Data
		if err := c.WriteBlocks(ctx, "kv", all, data); err != nil {
			b.Fatal(err)
		}

		b.ReportAllocs()
		b.SetBytes(int64(numBlocks * blockElems * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, ids := range batch {
				if err := c.SwapOutBlocks(ctx, "kv", ids); err != nil {
					b.Fatal(err)
				}
				if _, err := c.SwapInBlocks(ctx, "kv", ids); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("single-block", func(b *testing.B) {
		singles := make([][]int, numBlocks)
		for i := range singles {
			singles[i] = []int{i}
		}
		run(b, singles)
	})
	b.Run("64-block", func(b *testing.B) {
		all := make([]int, numBlocks)
		for i := range all {
			all[i] = i
		}
		run(b, [][]int{all})
	})
}
