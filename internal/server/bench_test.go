package server_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"cswap/client"
	"cswap/internal/server"
	"cswap/internal/tensor"
)

// BenchmarkServerRoundTrip measures one full service round trip — an Auto
// swap-out resolved by the server plus the swap-in streaming the tensor
// back — through the real HTTP stack and wire codec. It rides in the
// bench-diff gate under the lenient rules (cswap-benchdiff -lenient): the
// path crosses the network stack, the scheduler, and the executor's async
// pipeline, so its ns/op and allocs/op carry noise the tight codec-loop
// thresholds would flake on; what the gate catches here is gross
// regressions — an allocation storm or a serialization cliff, not a cache
// miss.
func BenchmarkServerRoundTrip(b *testing.B) {
	s, err := server.NewServer(
		server.WithDeviceCapacity(64<<20),
		server.WithHostCapacity(64<<20),
		server.WithVerify(true))
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() {
		hs.Close()
		_ = s.Close()
	}()
	c := client.New(hs.URL)
	ctx := context.Background()

	data := tensor.NewGenerator(1).Uniform(64*1024, 0.6).Data
	if err := c.Register(ctx, "bench0", data); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.SetBytes(int64(len(data)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SwapOut(ctx, "bench0"); err != nil {
			b.Fatal(err)
		}
		if _, err := c.SwapIn(ctx, "bench0"); err != nil {
			b.Fatal(err)
		}
	}
}
