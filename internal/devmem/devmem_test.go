package devmem

import (
	"errors"
	"sync"
	"testing"
)

func TestPoolAllocFreeAccounting(t *testing.T) {
	p := NewPool("dev", 1000)
	a, err := p.Alloc(400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc(600)
	if err != nil {
		t.Fatal(err)
	}
	if p.Used() != 1000 {
		t.Fatalf("Used = %d", p.Used())
	}
	if _, err := p.Alloc(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-capacity alloc err = %v", err)
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 600 {
		t.Fatalf("Used after free = %d", p.Used())
	}
	st := p.Stats()
	if st.Peak != 1000 || st.Allocs != 2 || st.Frees != 1 || st.FailedAllocs != 1 {
		t.Fatalf("stats %+v", st)
	}
	if b.Size() != 600 {
		t.Fatalf("Size = %d", b.Size())
	}
}

func TestPoolDoubleFree(t *testing.T) {
	p := NewPool("dev", 100)
	a, _ := p.Alloc(50)
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free err = %v", err)
	}
	if p.Used() != 0 {
		t.Fatal("double free corrupted accounting")
	}
}

func TestPoolRejectsNegativeAndBadCapacity(t *testing.T) {
	p := NewPool("dev", 100)
	if _, err := p.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if _, err := p.Alloc(0); err != nil {
		t.Fatal("zero alloc should succeed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	NewPool("bad", 0)
}

func TestPoolConcurrentAllocFree(t *testing.T) {
	p := NewPool("dev", 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b, err := p.Alloc(128)
				if err != nil {
					t.Error(err)
					return
				}
				if err := b.Free(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p.Used() != 0 {
		t.Fatalf("leaked %d bytes", p.Used())
	}
	if st := p.Stats(); st.Allocs != 4000 || st.Frees != 4000 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheReuse(t *testing.T) {
	c := NewCache()
	a := c.Get(1000)
	if len(a) != 1000 || cap(a) != 1024 {
		t.Fatalf("len=%d cap=%d", len(a), cap(a))
	}
	c.Put(a)
	b := c.Get(900) // same class (1024)
	if len(b) != 900 {
		t.Fatalf("len = %d", len(b))
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Different class: miss.
	c.Get(5000)
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheIgnoresForeignBuffers(t *testing.T) {
	c := NewCache()
	c.Put(make([]byte, 1000)) // non-power-of-two capacity
	if st := c.Stats(); st.Puts != 0 {
		t.Fatal("foreign buffer cached")
	}
	c.Put(nil)
	if got := c.Get(0); got != nil {
		t.Fatal("Get(0) should be nil")
	}
}

func TestCacheBoundedDepth(t *testing.T) {
	c := NewCache()
	for i := 0; i < 20; i++ {
		c.Put(make([]byte, 1024))
	}
	hits := 0
	for i := 0; i < 20; i++ {
		before := c.Stats().Hits
		c.Get(1024)
		if c.Stats().Hits > before {
			hits++
		}
	}
	if hits > 8 {
		t.Fatalf("cache retained %d buffers, cap is 8", hits)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				buf := c.Get(512)
				buf[0] = byte(i)
				c.Put(buf)
			}
		}()
	}
	wg.Wait()
}

func TestAllocHookGatesAllocations(t *testing.T) {
	p := NewPool("hooked", 1<<20)
	boom := errors.New("boom")
	calls := 0
	p.SetAllocHook(func(n int64) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if _, err := p.Alloc(100); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(100); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want hook error", err)
	}
	// A hook rejection counts as a failed alloc and reserves nothing.
	st := p.Stats()
	if st.FailedAllocs != 1 || st.Used != 100 || st.Allocs != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Removing the hook restores normal behavior.
	p.SetAllocHook(nil)
	if _, err := p.Alloc(100); err != nil {
		t.Fatal(err)
	}
}
