// Package devmem provides the memory-management substrate of the swapping
// executor: fixed-capacity allocation pools standing in for GPU global
// memory and pinned host memory, plus a size-classed buffer cache that
// recycles allocations the way the paper's prototype uses Torch's
// getCUDADeviceAllocator/getPinnedMemoryAllocator memory pools "to avoid
// using the expensive cudaMalloc() and cudaMallocHost() functions"
// (Section V).
package devmem

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfMemory reports that an allocation exceeds the pool's remaining
// capacity.
var ErrOutOfMemory = errors.New("devmem: out of memory")

// ErrDoubleFree reports freeing an already-freed block.
var ErrDoubleFree = errors.New("devmem: double free")

// Pool is a fixed-capacity accounting allocator. It tracks usage, never
// hands out more than its capacity, and records high-water statistics.
type Pool struct {
	name     string
	capacity int64

	mu     sync.Mutex
	hook   func(n int64) error
	used   int64
	peak   int64
	allocs int64
	frees  int64
	fails  int64
}

// SetAllocHook installs a gate consulted by Alloc before capacity
// accounting: a non-nil return fails the allocation with that error (it
// counts as a failed alloc in Stats). This is the seam the fault injector
// uses to model transient allocator failures; passing nil removes the hook.
func (p *Pool) SetAllocHook(hook func(n int64) error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hook = hook
}

// NewPool creates a pool with the given byte capacity (> 0).
func NewPool(name string, capacity int64) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("devmem: non-positive capacity %d", capacity))
	}
	return &Pool{name: name, capacity: capacity}
}

// Block is one outstanding allocation.
type Block struct {
	pool *Pool
	size int64

	mu    sync.Mutex
	freed bool
}

// Alloc reserves n bytes, failing with ErrOutOfMemory when the pool cannot
// hold them. Zero-byte allocations are legal and free.
func (p *Pool) Alloc(n int64) (*Block, error) {
	if n < 0 {
		return nil, fmt.Errorf("devmem: negative allocation %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.hook != nil {
		if err := p.hook(n); err != nil {
			p.fails++
			return nil, fmt.Errorf("%s pool: %w", p.name, err)
		}
	}
	if p.used+n > p.capacity {
		p.fails++
		return nil, fmt.Errorf("%w: %s needs %d, %d of %d in use",
			ErrOutOfMemory, p.name, n, p.used, p.capacity)
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	p.allocs++
	return &Block{pool: p, size: n}, nil
}

// Size returns the block's byte size.
func (b *Block) Size() int64 { return b.size }

// Free releases the block back to its pool. Freeing twice returns
// ErrDoubleFree and leaves accounting untouched.
func (b *Block) Free() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.freed {
		return ErrDoubleFree
	}
	b.freed = true
	p := b.pool
	p.mu.Lock()
	p.used -= b.size
	p.frees++
	p.mu.Unlock()
	return nil
}

// Stats is a snapshot of pool accounting.
type Stats struct {
	Name         string
	Capacity     int64
	Used         int64
	Peak         int64
	Allocs       int64
	Frees        int64
	FailedAllocs int64
}

// Stats returns a snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Name: p.name, Capacity: p.capacity,
		Used: p.used, Peak: p.peak,
		Allocs: p.allocs, Frees: p.frees, FailedAllocs: p.fails,
	}
}

// Used returns the bytes currently allocated.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Capacity returns the pool's byte capacity.
func (p *Pool) Capacity() int64 { return p.capacity }

// ---------------------------------------------------------------------------
// Buffer cache.

// Cache recycles byte buffers by power-of-two size class, avoiding repeated
// large allocations on the swap path (the memory-pool optimisation of
// Section V). It is concurrency-safe.
type Cache struct {
	mu      sync.Mutex
	classes map[uint][][]byte
	hits    int64
	misses  int64
	puts    int64
}

// NewCache returns an empty buffer cache.
func NewCache() *Cache {
	return &Cache{classes: make(map[uint][][]byte)}
}

// sizeClass returns the power-of-two class covering n.
func sizeClass(n int) uint {
	c := uint(0)
	s := 1
	for s < n {
		s <<= 1
		c++
	}
	return c
}

// Get returns a buffer with length n, reusing a cached buffer of the same
// size class when available.
func (c *Cache) Get(n int) []byte {
	if n == 0 {
		return nil
	}
	cls := sizeClass(n)
	c.mu.Lock()
	bufs := c.classes[cls]
	if len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		c.classes[cls] = bufs[:len(bufs)-1]
		c.hits++
		c.mu.Unlock()
		return buf[:n]
	}
	c.misses++
	c.mu.Unlock()
	return make([]byte, n, 1<<cls)
}

// Put returns a buffer to the cache for reuse. Buffers are kept at most
// eight deep per class to bound retention.
func (c *Cache) Put(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	cls := sizeClass(cap(buf))
	if 1<<cls != cap(buf) {
		// Only cache exact power-of-two capacities (our own allocations).
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if len(c.classes[cls]) < 8 {
		c.classes[cls] = append(c.classes[cls], buf[:cap(buf)])
	}
}

// CacheStats snapshots hit/miss accounting.
type CacheStats struct {
	Hits, Misses, Puts int64
}

// Stats returns a snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Puts: c.puts}
}
