package wire

import (
	"errors"
	"testing"

	"cswap/internal/compress"
)

// FuzzFrameRoundTrip is the wire-protocol counterpart of the codec
// container's FuzzParallelRoundTrip: arbitrary bytes fed to the frame
// decoder must either decode into a frame that re-encodes and re-decodes
// to an equal frame, or fail inside the declared error taxonomy —
// compress.ErrTruncated / compress.ErrCorrupt (recoverable: retransmit)
// or ErrTooLarge (policy refusal). Panics and silent misdecodes are the
// bugs this hunts: hostile length prefixes, truncation at every boundary,
// and bit flips all arrive here as plain byte mutations of the corpus.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, fr := range []*Frame{
		{Type: TypeRegister, Name: "conv1/act", Data: []float32{0, 1.5, -2.25, 0, 7}},
		{Type: TypeSwapOut, Name: "t", Compress: true, Alg: compress.LZ4},
		{Type: TypeSwapOut, Name: "t", Compress: false, Alg: 0},
		{Type: TypeSwapIn, Name: "fc7/act"},
		{Type: TypePrefetch, Name: "p"},
		{Type: TypeFree, Name: "f"},
		{Type: TypeTensorData, Name: "resp", Data: []float32{3}},
		{Type: TypeAck, Name: "ok"},
	} {
		b, err := Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Seed the obvious hostile shapes too: truncations at the header
		// and name boundaries, and a flipped length byte.
		f.Add(b[:HeaderLen/2])
		f.Add(b[:HeaderLen])
		if len(b) > HeaderLen+1 {
			f.Add(b[:HeaderLen+1])
		}
		flipped := append([]byte(nil), b...)
		flipped[9] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("CSWP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data, 1<<20)
		if err != nil {
			if !compress.Recoverable(err) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			return
		}
		// Anything that decodes must re-encode canonically and round-trip.
		out, err := Encode(fr)
		if err != nil {
			t.Fatalf("decoded frame %+v refuses to re-encode: %v", fr, err)
		}
		back, err := Decode(out, 1<<20)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if !Equal(fr, back) {
			t.Fatalf("round trip drift: %+v -> %+v", fr, back)
		}
	})
}
