package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"cswap/internal/compress"
)

// restampCRC rewrites a hand-mutated frame's payload CRC so the mutation
// reaches the structural validators instead of tripping the checksum.
func restampCRC(b []byte) {
	binary.BigEndian.PutUint32(b[12:16], crc32.ChecksumIEEE(b[HeaderLen:]))
}

// FuzzFrameRoundTrip is the wire-protocol counterpart of the codec
// container's FuzzParallelRoundTrip: arbitrary bytes fed to the frame
// decoder must either decode into a frame that re-encodes and re-decodes
// to an equal frame, or fail inside the declared error taxonomy —
// compress.ErrTruncated / compress.ErrCorrupt (recoverable: retransmit)
// or ErrTooLarge (policy refusal). Panics and silent misdecodes are the
// bugs this hunts: hostile length prefixes, truncation at every boundary,
// and bit flips all arrive here as plain byte mutations of the corpus.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, fr := range []*Frame{
		{Type: TypeRegister, Name: "conv1/act", Data: []float32{0, 1.5, -2.25, 0, 7}},
		{Type: TypeSwapOut, Name: "t", Compress: true, Alg: compress.LZ4},
		{Type: TypeSwapOut, Name: "t", Compress: false, Alg: 0},
		{Type: TypeSwapIn, Name: "fc7/act"},
		{Type: TypePrefetch, Name: "p"},
		{Type: TypeFree, Name: "f"},
		{Type: TypeTensorData, Name: "resp", Data: []float32{3}},
		{Type: TypeAck, Name: "ok"},
	} {
		b, err := Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Seed the obvious hostile shapes too: truncations at the header
		// and name boundaries, and a flipped length byte.
		f.Add(b[:HeaderLen/2])
		f.Add(b[:HeaderLen])
		if len(b) > HeaderLen+1 {
			f.Add(b[:HeaderLen+1])
		}
		flipped := append([]byte(nil), b...)
		flipped[9] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("CSWP"))

	// Sched-extension seeds: the optional lane byte + uvarint deadline
	// after the name (FlagSched), plus the hostile shapes it adds — the
	// flag without its bytes, an out-of-range lane, and the flag on a
	// frame type that must refuse it.
	for _, fr := range []*Frame{
		{Type: TypeSwapIn, Name: "kv", HasSched: true, Lane: 0, DeadlineMicros: 1500},
		{Type: TypePrefetch, Name: "kv", HasSched: true, Lane: 2},
		{Type: TypeBatchSwapIn, Name: "kv", BlockIDs: []int{1, 2}, HasSched: true, Lane: 0, DeadlineMicros: 1 << 40},
		{Type: TypeBatchPrefetch, Name: "kv", BlockIDs: []int{9}, HasSched: true, Lane: 2, DeadlineMicros: 300},
	} {
		b, err := Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		for cut := HeaderLen + 2 + len(fr.Name); cut < len(b); cut++ {
			f.Add(b[:cut])
		}
		badLane := append([]byte(nil), b...)
		badLane[HeaderLen+2+len(fr.Name)] = 3 // past maxLaneByte
		restampCRC(badLane)
		f.Add(badLane)
	}
	flagOnAck, err := Encode(&Frame{Type: TypeAck, Name: "ok"})
	if err != nil {
		f.Fatal(err)
	}
	flagOnAck[7] |= byte(FlagSched)
	restampCRC(flagOnAck)
	f.Add(flagOnAck)

	// Batch-frame seeds. The hostile shapes the block-pool surface adds:
	// truncation at every block-ID boundary, duplicate and out-of-range
	// IDs, zero-length lists, and a run table that disagrees with the
	// payload it ships.
	batch := []*Frame{
		{Type: TypeRegisterPool, Name: "kv", BlockElems: 16, NumBlocks: 64},
		{Type: TypeBatchSwapOut, Name: "kv", Compress: true, Alg: compress.Auto,
			BlockIDs: []int{3, 4, 5, 9, 300}},
		{Type: TypeBatchSwapOut, Name: "kv", Compress: false,
			BlockIDs: []int{7, 7, 7, 2}}, // duplicates are legal on the wire
		{Type: TypeBatchSwapIn, Name: "kv", BlockIDs: []int{0, 1, 2, 1 << 20}},
		{Type: TypeBatchSwapIn, Name: "kv", BlockIDs: []int{}}, // zero-length list
		{Type: TypeBatchPrefetch, Name: "kv", BlockIDs: []int{12, 10, 11}},
		{Type: TypeBatchData, Name: "kv", BlockElems: 2,
			Runs: []BlockRun{{Start: 3, Count: 2}, {Start: 8, Count: 1}},
			Data: []float32{1, 0, 2, 0, 3, 0}},
	}
	for _, fr := range batch {
		b, err := Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Truncate at every byte past the name — this walks every block-ID
		// (and run-table) boundary, since varints make each ID 1+ bytes.
		for cut := HeaderLen + 2 + len(fr.Name); cut < len(b); cut++ {
			f.Add(b[:cut])
		}
	}
	// An out-of-range block ID cannot be produced by Encode, so patch one
	// into a valid frame and re-stamp the CRC: the last seeded batch-swap-in
	// ID below encodes MaxBlockID (rejected on decode as out of range).
	hostile, err := Encode(&Frame{Type: TypeBatchSwapIn, Name: "kv", BlockIDs: []int{MaxBlockID - 1}})
	if err != nil {
		f.Fatal(err)
	}
	// MaxBlockID-1 = 0xFFFFFF is uvarint ff ff ff 07; bump the top group to
	// make the decoded value MaxBlockID.
	hostile[len(hostile)-1] = 0x08
	restampCRC(hostile)
	f.Add(hostile)
	// A run table that lies about the payload: claim 3 blocks, ship 2.
	liar, err := Encode(&Frame{Type: TypeBatchData, Name: "kv", BlockElems: 1,
		Runs: []BlockRun{{Start: 0, Count: 2}}, Data: []float32{1, 2}})
	if err != nil {
		f.Fatal(err)
	}
	// The count byte of the single run [0,+2) is the last byte before the
	// 8 payload bytes; rewrite it to 3 and re-stamp.
	liar[len(liar)-9] = 3
	restampCRC(liar)
	f.Add(liar)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data, 1<<20)
		if err != nil {
			if !compress.Recoverable(err) && !errors.Is(err, ErrTooLarge) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			return
		}
		// Anything that decodes must re-encode canonically and round-trip.
		out, err := Encode(fr)
		if err != nil {
			t.Fatalf("decoded frame %+v refuses to re-encode: %v", fr, err)
		}
		back, err := Decode(out, 1<<20)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if !Equal(fr, back) {
			t.Fatalf("round trip drift: %+v -> %+v", fr, back)
		}
	})
}
