package wire

// Batch frames: the multi-tensor wire surface for paged KV-cache block
// pools. Where the scalar frames address one named tensor, the batch
// frames address a named *pool* of fixed-size blocks and carry a block-ID
// list, so one framed request (one HTTP round trip, one CRC, one admission
// slot) moves an entire decode step's working set. The payload still
// begins with the uint16-prefixed name — PeekName, and therefore cluster
// routing, works on batch frames unchanged, keying on the pool name.
//
// Layouts after the name prefix:
//
//	register-pool   u32 blockElems + u32 numBlocks
//	batch-swap-out  compress flag + algorithm byte + uvarint ID count + uvarint IDs
//	batch-swap-in   uvarint ID count + uvarint IDs
//	batch-prefetch  uvarint ID count + uvarint IDs
//	batch-data      u32 blockElems + uvarint run count
//	                + (uvarint start, uvarint count) per run
//	                + packed little-endian float32 data, run by run
//
// ID lists travel as varints because decode-step batches are dominated by
// small IDs (a sequence's blocks are allocated low and contiguous); they
// may repeat and arrive unsorted — the executor's coalescer sorts and
// dedups. The data frame instead carries a canonical *run table* (sorted,
// non-overlapping, non-empty runs): it is only ever produced by a
// coalescer, and requiring the canonical form lets the decoder cross-check
// the run table against the payload length exactly.

import (
	"encoding/binary"

	"cswap/internal/compress"
)

// Batch frame bounds, enforced on both encode and decode. MaxBlockID caps
// block indices (16M blocks — at typical KV block sizes, far past any one
// pool this service would hold); MaxBatchBlocks caps how many blocks one
// frame may address, so a hostile count prefix cannot force a huge
// allocation before the per-ID bytes are checked.
const (
	MaxBlockID     = 1 << 24
	MaxBatchBlocks = 1 << 20
)

// BlockRun is one contiguous run of block IDs: Count blocks starting at
// Start. The coalescer's unit — one codec/pool operation per run.
type BlockRun struct {
	Start, Count int
}

// isBatch reports whether the type is one of the block-pool batch frames.
func (t Type) isBatch() bool { return t >= TypeRegisterPool && t <= TypeBatchData }

// hasIDList reports whether the type carries a varint block-ID list after
// the name (and, for batch-swap-out, after its option bytes).
func (t Type) hasIDList() bool {
	return t == TypeBatchSwapOut || t == TypeBatchSwapIn || t == TypeBatchPrefetch
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// batchPayloadLen sizes the post-name payload of a batch frame, validating
// the fields an encoder controls (ID bounds, run-table shape).
func (f *Frame) batchPayloadLen() (int, error) {
	switch f.Type {
	case TypeRegisterPool:
		if f.BlockElems <= 0 || f.NumBlocks <= 0 {
			return 0, corruptErr("register-pool frame with %d elems/block, %d blocks", f.BlockElems, f.NumBlocks)
		}
		if f.NumBlocks > MaxBlockID {
			return 0, corruptErr("register-pool frame with %d blocks exceeds limit %d", f.NumBlocks, MaxBlockID)
		}
		return 8, nil
	case TypeBatchSwapOut, TypeBatchSwapIn, TypeBatchPrefetch:
		n := 0
		if f.Type == TypeBatchSwapOut {
			n = 2 // compress flag + algorithm byte
		}
		if len(f.BlockIDs) > MaxBatchBlocks {
			return 0, corruptErr("%s frame with %d block IDs exceeds limit %d", f.Type, len(f.BlockIDs), MaxBatchBlocks)
		}
		n += uvarintLen(uint64(len(f.BlockIDs)))
		for _, id := range f.BlockIDs {
			if id < 0 || id >= MaxBlockID {
				return 0, corruptErr("%s frame block ID %d out of range", f.Type, id)
			}
			n += uvarintLen(uint64(id))
		}
		return n, nil
	case TypeBatchData:
		if f.BlockElems <= 0 {
			return 0, corruptErr("batch-data frame with %d elems/block", f.BlockElems)
		}
		n := 4 + uvarintLen(uint64(len(f.Runs)))
		total := 0
		prevEnd := -1
		for _, run := range f.Runs {
			if run.Count <= 0 || run.Start < 0 || run.Start+run.Count > MaxBlockID {
				return 0, corruptErr("batch-data run [%d,+%d) out of range", run.Start, run.Count)
			}
			if run.Start <= prevEnd {
				return 0, corruptErr("batch-data run table not sorted and disjoint at start %d", run.Start)
			}
			prevEnd = run.Start + run.Count - 1
			total += run.Count
			n += uvarintLen(uint64(run.Start)) + uvarintLen(uint64(run.Count))
		}
		if total > MaxBatchBlocks {
			return 0, corruptErr("batch-data frame with %d blocks exceeds limit %d", total, MaxBatchBlocks)
		}
		if total*f.BlockElems != len(f.Data) {
			return 0, corruptErr("batch-data run table covers %d elements but frame carries %d", total*f.BlockElems, len(f.Data))
		}
		return n + 4*len(f.Data), nil
	}
	return 0, corruptErr("unhandled batch frame type %d", uint8(f.Type))
}

// appendBatchPayload encodes the post-name payload of a batch frame. The
// caller (Append) has already validated via batchPayloadLen.
func appendBatchPayload(dst []byte, f *Frame) []byte {
	switch f.Type {
	case TypeRegisterPool:
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.BlockElems))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.NumBlocks))
	case TypeBatchSwapOut, TypeBatchSwapIn, TypeBatchPrefetch:
		if f.Type == TypeBatchSwapOut {
			var c byte
			if f.Compress {
				c = 1
			}
			dst = append(dst, c, byte(f.Alg))
		}
		dst = binary.AppendUvarint(dst, uint64(len(f.BlockIDs)))
		for _, id := range f.BlockIDs {
			dst = binary.AppendUvarint(dst, uint64(id))
		}
	case TypeBatchData:
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.BlockElems))
		dst = binary.AppendUvarint(dst, uint64(len(f.Runs)))
		for _, run := range f.Runs {
			dst = binary.AppendUvarint(dst, uint64(run.Start))
			dst = binary.AppendUvarint(dst, uint64(run.Count))
		}
		dst = appendFloats(dst, f.Data)
	}
	return dst
}

// parseUvarint reads one canonical-or-not uvarint, surfacing truncation in
// the frame taxonomy.
func parseUvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		if n == 0 {
			return 0, nil, truncErr("payload ends inside %s varint", what)
		}
		return 0, nil, corruptErr("%s varint overflows 64 bits", what)
	}
	return v, p[n:], nil
}

// parseIDList decodes a varint block-ID list, bounding the count before
// allocating (each ID takes at least one byte, so a count past the
// remaining payload is structurally a lie).
func parseIDList(typ Type, rest []byte) ([]int, []byte, error) {
	count, rest, err := parseUvarint(rest, "block-ID count")
	if err != nil {
		return nil, nil, err
	}
	if count > MaxBatchBlocks {
		return nil, nil, corruptErr("%s frame with %d block IDs exceeds limit %d", typ, count, MaxBatchBlocks)
	}
	if count > uint64(len(rest)) {
		return nil, nil, corruptErr("%s frame claims %d block IDs but carries %d bytes", typ, count, len(rest))
	}
	ids := make([]int, count)
	for i := range ids {
		var v uint64
		v, rest, err = parseUvarint(rest, "block ID")
		if err != nil {
			return nil, nil, err
		}
		if v >= MaxBlockID {
			return nil, nil, corruptErr("%s frame block ID %d out of range", typ, v)
		}
		ids[i] = int(v)
	}
	return ids, rest, nil
}

// parseBatchPayload decodes the post-name payload of a batch frame into f.
// Every inner length is cross-checked against the payload bounds; trailing
// bytes are refused by the caller's len check via the returned rest.
func parseBatchPayload(f *Frame, rest []byte) error {
	switch f.Type {
	case TypeRegisterPool:
		if len(rest) != 8 {
			return corruptErr("register-pool frame carries %d geometry bytes, want 8", len(rest))
		}
		f.BlockElems = int(binary.BigEndian.Uint32(rest[0:4]))
		f.NumBlocks = int(binary.BigEndian.Uint32(rest[4:8]))
		if f.BlockElems <= 0 || f.NumBlocks <= 0 || f.NumBlocks > MaxBlockID {
			return corruptErr("register-pool frame with %d elems/block, %d blocks", f.BlockElems, f.NumBlocks)
		}
		return nil
	case TypeBatchSwapOut, TypeBatchSwapIn, TypeBatchPrefetch:
		if f.Type == TypeBatchSwapOut {
			if len(rest) < 2 {
				return truncErr("batch-swap-out frame lacks option bytes")
			}
			switch rest[0] {
			case 0:
			case 1:
				f.Compress = true
			default:
				return corruptErr("batch-swap-out compress flag %d", rest[0])
			}
			f.Alg = compress.Algorithm(rest[1])
			if f.Compress && f.Alg != compress.Auto {
				if _, err := compress.New(f.Alg); err != nil {
					return corruptErr("batch-swap-out algorithm byte %d", rest[1])
				}
			}
			rest = rest[2:]
		}
		ids, rest, err := parseIDList(f.Type, rest)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return corruptErr("%s frame carries %d trailing bytes", f.Type, len(rest))
		}
		f.BlockIDs = ids
		return nil
	case TypeBatchData:
		if len(rest) < 4 {
			return truncErr("batch-data frame lacks block-elems field")
		}
		f.BlockElems = int(binary.BigEndian.Uint32(rest[0:4]))
		if f.BlockElems <= 0 {
			return corruptErr("batch-data frame with %d elems/block", f.BlockElems)
		}
		rest = rest[4:]
		runCount, rest, err := parseUvarint(rest, "run count")
		if err != nil {
			return err
		}
		if runCount > MaxBatchBlocks {
			return corruptErr("batch-data frame with %d runs exceeds limit %d", runCount, MaxBatchBlocks)
		}
		if 2*runCount > uint64(len(rest)) {
			return corruptErr("batch-data frame claims %d runs but carries %d bytes", runCount, len(rest))
		}
		runs := make([]BlockRun, runCount)
		total := 0
		prevEnd := -1
		for i := range runs {
			var start, count uint64
			start, rest, err = parseUvarint(rest, "run start")
			if err != nil {
				return err
			}
			count, rest, err = parseUvarint(rest, "run count")
			if err != nil {
				return err
			}
			if count == 0 || start+count > MaxBlockID {
				return corruptErr("batch-data run [%d,+%d) out of range", start, count)
			}
			if int(start) <= prevEnd {
				return corruptErr("batch-data run table not sorted and disjoint at start %d", start)
			}
			prevEnd = int(start+count) - 1
			runs[i] = BlockRun{Start: int(start), Count: int(count)}
			total += int(count)
		}
		if total > MaxBatchBlocks {
			return corruptErr("batch-data frame with %d blocks exceeds limit %d", total, MaxBatchBlocks)
		}
		// The run table and the payload must agree exactly: a table that
		// promises more (or fewer) blocks than the data it ships is
		// structural damage, not a short read.
		elems := total * f.BlockElems
		if len(rest) != 4*elems {
			return corruptErr("batch-data run table covers %d elements but frame carries %d bytes", elems, len(rest))
		}
		f.Runs = runs
		f.Data = parseFloats(rest, elems)
		return nil
	}
	return corruptErr("unhandled batch frame type %d", uint8(f.Type))
}

// TotalBlocks returns how many blocks a run table covers.
func TotalBlocks(runs []BlockRun) int {
	n := 0
	for _, r := range runs {
		n += r.Count
	}
	return n
}

// runsEqual compares run tables element-wise.
func runsEqual(a, b []BlockRun) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// idsEqual compares block-ID lists element-wise.
func idsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
