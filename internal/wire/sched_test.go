package wire

import (
	"errors"
	"testing"

	"cswap/internal/compress"
)

func TestSchedExtensionRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: TypeSwapIn, Name: "fc7/act", HasSched: true, Lane: 0, DeadlineMicros: 2500},
		{Type: TypeSwapOut, Name: "t", Compress: true, Alg: compress.Auto, HasSched: true, Lane: 1},
		{Type: TypePrefetch, Name: "p", HasSched: true, Lane: 2, DeadlineMicros: 0},
		{Type: TypeBatchSwapIn, Name: "kv", BlockIDs: []int{0, 5, 6}, HasSched: true, Lane: 0, DeadlineMicros: 1 << 33},
		{Type: TypeBatchSwapOut, Name: "kv", Compress: true, Alg: compress.Auto,
			BlockIDs: []int{1, 2}, HasSched: true, Lane: 1, DeadlineMicros: 7},
		{Type: TypeBatchPrefetch, Name: "kv", BlockIDs: []int{3}, HasSched: true, Lane: 2, DeadlineMicros: 12},
	}
	for _, f := range frames {
		b, err := Encode(f)
		if err != nil {
			t.Fatalf("%s: encode: %v", f.Type, err)
		}
		got, err := Decode(b, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.Type, err)
		}
		if !Equal(f, got) {
			t.Fatalf("%s: round trip drift: %+v -> %+v", f.Type, f, got)
		}
		// The name stays first: routing must not care about the flag.
		typ, name, err := PeekName(b, 0)
		if err != nil || typ != f.Type || name != f.Name {
			t.Fatalf("%s: PeekName on sched frame: %v %s %v", f.Type, typ, name, err)
		}
	}
}

func TestSchedExtensionDistinguishesFrames(t *testing.T) {
	plain := &Frame{Type: TypeSwapIn, Name: "n"}
	hinted := &Frame{Type: TypeSwapIn, Name: "n", HasSched: true, Lane: 0}
	if Equal(plain, hinted) {
		t.Fatal("Equal ignores the sched extension")
	}
	b, err := Encode(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasSched {
		t.Fatal("plain frame decoded with a sched extension")
	}
}

func TestSchedExtensionValidation(t *testing.T) {
	// Encode refusals: a non-schedulable type and an out-of-range lane.
	if _, err := Encode(&Frame{Type: TypeAck, Name: "a", HasSched: true}); err == nil {
		t.Fatal("ack frame encoded a sched extension")
	}
	if _, err := Encode(&Frame{Type: TypeFree, Name: "f", HasSched: true}); err == nil {
		t.Fatal("free frame encoded a sched extension")
	}
	if _, err := Encode(&Frame{Type: TypeSwapIn, Name: "n", HasSched: true, Lane: 3}); err == nil {
		t.Fatal("lane 3 encoded")
	}

	// Decode refusals, each built by mutating a valid frame + CRC restamp.
	valid, err := Encode(&Frame{Type: TypeSwapIn, Name: "n", HasSched: true, Lane: 1, DeadlineMicros: 9})
	if err != nil {
		t.Fatal(err)
	}
	laneOff := HeaderLen + 2 + 1 // header, u16 name len, 1-byte name
	badLane := append([]byte(nil), valid...)
	badLane[laneOff] = 3
	restampCRC(badLane)
	if _, err := Decode(badLane, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("lane 3 decode: %v, want ErrCorrupt", err)
	}

	// FlagSched on a type that must refuse it.
	ack, err := Encode(&Frame{Type: TypeAck, Name: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	ack[7] |= byte(FlagSched)
	restampCRC(ack)
	if _, err := Decode(ack, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("sched flag on ack: %v, want ErrCorrupt", err)
	}

	// Reserved flag bits stay refused.
	reserved, err := Encode(&Frame{Type: TypeSwapIn, Name: "n"})
	if err != nil {
		t.Fatal(err)
	}
	reserved[6] = 0x80
	restampCRC(reserved)
	if _, err := Decode(reserved, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("reserved flag: %v, want ErrCorrupt", err)
	}

	// The flag without its bytes: truncate the body right after the name.
	short := append([]byte(nil), valid[:laneOff]...)
	// Fix up the declared payload length and CRC for the shorter body.
	short[11] = byte(laneOff - HeaderLen)
	restampCRC(short)
	if _, err := Decode(short, 0); err == nil || !compress.Recoverable(err) {
		t.Fatalf("sched flag without bytes: %v, want recoverable refusal", err)
	}
}
