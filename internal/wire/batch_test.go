package wire

import (
	"errors"
	"testing"

	"cswap/internal/compress"
)

func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	b, err := Encode(f)
	if err != nil {
		t.Fatalf("encode %s: %v", f.Type, err)
	}
	out, err := Decode(b, 0)
	if err != nil {
		t.Fatalf("decode %s: %v", f.Type, err)
	}
	if !Equal(f, out) {
		t.Fatalf("round trip drift: %+v -> %+v", f, out)
	}
	return out
}

func TestBatchFrameRoundTrip(t *testing.T) {
	roundTrip(t, &Frame{Type: TypeRegisterPool, Name: "kv", BlockElems: 256, NumBlocks: 1024})
	roundTrip(t, &Frame{Type: TypeBatchSwapOut, Name: "kv", Compress: true, Alg: compress.Auto,
		BlockIDs: []int{9, 3, 3, 700}})
	roundTrip(t, &Frame{Type: TypeBatchSwapOut, Name: "kv", Compress: false, BlockIDs: []int{0}})
	roundTrip(t, &Frame{Type: TypeBatchSwapIn, Name: "kv", BlockIDs: []int{}})
	roundTrip(t, &Frame{Type: TypeBatchPrefetch, Name: "kv", BlockIDs: []int{5, 6, 7}})
	roundTrip(t, &Frame{Type: TypeBatchData, Name: "kv", BlockElems: 3,
		Runs: []BlockRun{{Start: 1, Count: 2}, {Start: 9, Count: 1}},
		Data: []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}})
}

// TestBatchPeekName pins the tentpole routing property: the cluster peeks
// the pool name out of batch frames exactly as it does tensor names.
func TestBatchPeekName(t *testing.T) {
	for _, f := range []*Frame{
		{Type: TypeRegisterPool, Name: "tenant-pool", BlockElems: 8, NumBlocks: 8},
		{Type: TypeBatchSwapOut, Name: "tenant-pool", BlockIDs: []int{1, 2}},
		{Type: TypeBatchSwapIn, Name: "tenant-pool", BlockIDs: []int{1}},
		{Type: TypeBatchPrefetch, Name: "tenant-pool", BlockIDs: []int{}},
		{Type: TypeBatchData, Name: "tenant-pool", BlockElems: 1,
			Runs: []BlockRun{{Start: 0, Count: 1}}, Data: []float32{42}},
	} {
		b, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		typ, name, err := PeekName(b, 0)
		if err != nil {
			t.Fatalf("PeekName(%s): %v", f.Type, err)
		}
		if typ != f.Type || name != "tenant-pool" {
			t.Fatalf("PeekName(%s) = %s, %q", f.Type, typ, name)
		}
	}
}

func TestBatchFrameErrors(t *testing.T) {
	encodeRejects := []*Frame{
		{Type: TypeRegisterPool, Name: "p", BlockElems: 0, NumBlocks: 4},
		{Type: TypeRegisterPool, Name: "p", BlockElems: 4, NumBlocks: 0},
		{Type: TypeRegisterPool, Name: "p", BlockElems: 4, NumBlocks: MaxBlockID + 1},
		{Type: TypeBatchSwapIn, Name: "p", BlockIDs: []int{-1}},
		{Type: TypeBatchSwapIn, Name: "p", BlockIDs: []int{MaxBlockID}},
		{Type: TypeBatchData, Name: "p", BlockElems: 2,
			Runs: []BlockRun{{Start: 0, Count: 1}}, Data: []float32{1, 2, 3}}, // table/payload mismatch
		{Type: TypeBatchData, Name: "p", BlockElems: 1,
			Runs: []BlockRun{{Start: 4, Count: 2}, {Start: 5, Count: 1}}, Data: []float32{1, 2, 3}}, // overlap
		{Type: TypeBatchData, Name: "p", BlockElems: 1,
			Runs: []BlockRun{{Start: 4, Count: 0}}, Data: nil}, // empty run
	}
	for i, f := range encodeRejects {
		if _, err := Encode(f); err == nil {
			t.Errorf("case %d: Encode accepted invalid %s frame", i, f.Type)
		}
	}

	// Truncation inside the ID list must surface as the recoverable
	// taxonomy, never a panic or misdecode.
	b, err := Encode(&Frame{Type: TypeBatchSwapIn, Name: "p", BlockIDs: []int{1, 2, 300}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := HeaderLen; cut < len(b); cut++ {
		if _, err := Decode(b[:cut], 0); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		} else if !compress.Recoverable(err) && !errors.Is(err, ErrTooLarge) {
			t.Fatalf("truncation at %d outside taxonomy: %v", cut, err)
		}
	}
}

func TestTotalBlocks(t *testing.T) {
	if n := TotalBlocks(nil); n != 0 {
		t.Fatalf("TotalBlocks(nil) = %d", n)
	}
	if n := TotalBlocks([]BlockRun{{0, 3}, {7, 2}}); n != 5 {
		t.Fatalf("TotalBlocks = %d, want 5", n)
	}
}
