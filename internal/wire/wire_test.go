package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"cswap/internal/compress"
)

// sampleFrames covers every frame type, including a NaN-bearing tensor
// payload (tensors are opaque bits on the swap path).
func sampleFrames() []*Frame {
	return []*Frame{
		{Type: TypeRegister, Name: "conv1/act", Data: []float32{0, 1.5, -2.25, float32(math.NaN()), 0}},
		{Type: TypeSwapOut, Name: "conv1/act", Compress: true, Alg: compress.ZVC},
		{Type: TypeSwapOut, Name: "conv1/act", Compress: false},
		{Type: TypeSwapIn, Name: "conv1/act"},
		{Type: TypePrefetch, Name: "fc7/act"},
		{Type: TypeFree, Name: "fc7/act"},
		{Type: TypeTensorData, Name: "t", Data: []float32{3.25}},
		{Type: TypeAck, Name: "t"},
		{Type: TypeRegister, Name: "empty", Data: nil},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, f := range sampleFrames() {
		b, err := Encode(f)
		if err != nil {
			t.Fatalf("Encode(%v): %v", f.Type, err)
		}
		got, err := Decode(b, 0)
		if err != nil {
			t.Fatalf("Decode(%v): %v", f.Type, err)
		}
		if !Equal(f, got) {
			t.Errorf("%v: round trip mismatch: sent %+v, got %+v", f.Type, f, got)
		}
		// The streaming reader must agree with the in-memory decoder.
		rf, err := Read(bytes.NewReader(b), 0)
		if err != nil {
			t.Fatalf("Read(%v): %v", f.Type, err)
		}
		if !Equal(f, rf) {
			t.Errorf("%v: Read mismatch", f.Type)
		}
	}
}

// TestTruncationEveryBoundary chops a valid frame at every byte offset;
// each prefix must fail with the recoverable taxonomy, never decode.
func TestTruncationEveryBoundary(t *testing.T) {
	for _, f := range sampleFrames() {
		b, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(b[:cut], 0); err == nil {
				t.Fatalf("%v: prefix of %d/%d bytes decoded", f.Type, cut, len(b))
			} else if !compress.Recoverable(err) {
				t.Fatalf("%v: prefix of %d bytes: %v not in the recoverable taxonomy", f.Type, cut, err)
			}
			if _, err := Read(bytes.NewReader(b[:cut]), 0); err == nil {
				t.Fatalf("%v: Read of %d/%d-byte prefix succeeded", f.Type, cut, len(b))
			}
		}
	}
}

// TestHostileLengthPrefix plants the maximum length prefix in an otherwise
// valid header: both decoders must refuse before allocating the claimed
// payload.
func TestHostileLengthPrefix(t *testing.T) {
	b, err := Encode(&Frame{Type: TypeSwapIn, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(b[8:12], math.MaxUint32)
	if _, err := Decode(b, 0); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Decode with 4 GiB length prefix: %v, want ErrTooLarge", err)
	}
	if _, err := Read(bytes.NewReader(b), 0); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Read with 4 GiB length prefix: %v, want ErrTooLarge", err)
	}
	// A length under the cap but past the actual bytes is truncation.
	binary.BigEndian.PutUint32(b[8:12], 1<<20)
	if _, err := Decode(b, 0); !errors.Is(err, compress.ErrTruncated) {
		t.Errorf("Decode with overlong length: %v, want ErrTruncated", err)
	}
	// A caller-supplied cap tightens the policy refusal.
	big, err := Encode(&Frame{Type: TypeRegister, Name: "big", Data: make([]float32, 1024)})
	if err != nil {
		t.Fatal(err)
	}
	_, derr := Decode(big, 64)
	if !errors.Is(derr, ErrTooLarge) {
		t.Errorf("Decode past caller cap: %v, want ErrTooLarge", derr)
	}
	if compress.Recoverable(derr) {
		t.Error("ErrTooLarge must not be recoverable: retransmission cannot succeed")
	}
}

func TestCRCDetectsPayloadDamage(t *testing.T) {
	f := &Frame{Type: TypeRegister, Name: "damaged", Data: []float32{1, 2, 3, 4}}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 8; bit++ {
		mutated := append([]byte(nil), b...)
		mutated[len(mutated)-1] ^= 1 << bit
		if _, err := Decode(mutated, 0); !errors.Is(err, compress.ErrCorrupt) {
			t.Errorf("bit %d flip: %v, want ErrCorrupt", bit, err)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	valid, err := Encode(&Frame{Type: TypeAck, Name: "v"})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func([]byte)) []byte {
		b := append([]byte(nil), valid...)
		fn(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' })},
		{"bad version", mutate(func(b []byte) { b[4] = 99 })},
		{"unknown type", mutate(func(b []byte) { b[5] = 200 })},
		{"zero type", mutate(func(b []byte) { b[5] = 0 })},
		{"non-zero flags", mutate(func(b []byte) { b[6] = 1 })},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAA)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.b, 0); !errors.Is(err, compress.ErrCorrupt) {
			t.Errorf("%s: %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestInnerLengthCrossChecks(t *testing.T) {
	// A register frame whose element count disagrees with the bytes it
	// carries must refuse even though the CRC is recomputed to match.
	f := &Frame{Type: TypeRegister, Name: "n", Data: []float32{1, 2}}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	// Payload layout: u16 nameLen | name | u32 elems | data.
	elemsOff := HeaderLen + 2 + len(f.Name)
	binary.BigEndian.PutUint32(b[elemsOff:elemsOff+4], 3)
	reCRC(b)
	if _, err := Decode(b, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Errorf("element-count lie: %v, want ErrCorrupt", err)
	}

	// A name length pointing past the payload end.
	b2, err := Encode(&Frame{Type: TypeFree, Name: "ab"})
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint16(b2[HeaderLen:HeaderLen+2], 500)
	reCRC(b2)
	if _, err := Decode(b2, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Errorf("name overrun: %v, want ErrCorrupt", err)
	}
}

func TestEncodeRefusesInvalidFrames(t *testing.T) {
	bad := []*Frame{
		{Type: TypeAck, Name: ""},
		{Type: Type(99), Name: "x"},
		{Type: TypeAck, Name: strings.Repeat("n", MaxNameLen+1)},
	}
	for _, f := range bad {
		if _, err := Encode(f); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", f)
		}
	}
}

func TestSwapOutOptionValidation(t *testing.T) {
	b, err := Encode(&Frame{Type: TypeSwapOut, Name: "x", Compress: true, Alg: compress.RLE})
	if err != nil {
		t.Fatal(err)
	}
	flagOff := len(b) - 2
	b[flagOff] = 7 // compress flag must be 0 or 1
	reCRC(b)
	if _, err := Decode(b, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Errorf("bad compress flag: %v, want ErrCorrupt", err)
	}
	b[flagOff] = 1
	b[flagOff+1] = 250 // unknown algorithm byte
	reCRC(b)
	if _, err := Decode(b, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Errorf("bad algorithm byte: %v, want ErrCorrupt", err)
	}
}

// reCRC recomputes the header CRC after a test mutates payload bytes.
func reCRC(b []byte) {
	binary.BigEndian.PutUint32(b[12:16], crc32.ChecksumIEEE(b[HeaderLen:]))
}

// TestPeekName: the router's cheap peek agrees with the full decoder on
// every frame type, tolerates a stale CRC (peek routes, decode validates),
// and still refuses frames whose name bounds lie.
func TestPeekName(t *testing.T) {
	frames := []*Frame{
		{Type: TypeRegister, Name: "t/a", Data: []float32{1, 2, 3}},
		{Type: TypeSwapOut, Name: "t/b", Compress: true, Alg: compress.ZVC},
		{Type: TypeSwapIn, Name: "t/c"},
		{Type: TypePrefetch, Name: "t/d"},
		{Type: TypeFree, Name: "t/e"},
		{Type: TypeTensorData, Name: "t/f", Data: []float32{0}},
		{Type: TypeAck, Name: "t/g"},
	}
	for _, f := range frames {
		b, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		typ, name, err := PeekName(b, 0)
		if err != nil {
			t.Fatalf("PeekName(%s): %v", f.Type, err)
		}
		if typ != f.Type || name != f.Name {
			t.Errorf("PeekName(%s) = (%s, %q), want (%s, %q)", f.Type, typ, name, f.Type, f.Name)
		}
	}

	// A damaged payload CRC must not stop routing: the owning shard's full
	// decode is where corruption is rejected.
	b, _ := Encode(&Frame{Type: TypeSwapIn, Name: "t/crc"})
	b[12] ^= 0xff // header CRC field
	if _, name, err := PeekName(b, 0); err != nil || name != "t/crc" {
		t.Errorf("PeekName with damaged payload CRC = (%q, %v), want routing to succeed", name, err)
	}

	// Bounds still hold: truncated header, truncated payload, lying name
	// length, hostile payload cap.
	if _, _, err := PeekName(b[:HeaderLen-1], 0); !errors.Is(err, compress.ErrTruncated) {
		t.Errorf("truncated header: %v, want ErrTruncated", err)
	}
	if _, _, err := PeekName(b[:len(b)-2], 0); !errors.Is(err, compress.ErrTruncated) {
		t.Errorf("truncated payload: %v, want ErrTruncated", err)
	}
	lie, _ := Encode(&Frame{Type: TypeSwapIn, Name: "t/lie"})
	binary.BigEndian.PutUint16(lie[HeaderLen:HeaderLen+2], uint16(len("t/lie"))+200)
	if _, _, err := PeekName(lie, 0); !errors.Is(err, compress.ErrCorrupt) {
		t.Errorf("lying name length: %v, want ErrCorrupt", err)
	}
	big, _ := Encode(&Frame{Type: TypeRegister, Name: "t/big", Data: make([]float32, 64)})
	if _, _, err := PeekName(big, 16); !errors.Is(err, ErrTooLarge) {
		t.Errorf("payload past cap: %v, want ErrTooLarge", err)
	}
}
