// Package wire is the cswapd service's binary frame protocol: the
// length-prefixed envelope that carries register/swap-out/swap-in/
// prefetch/free payloads (and their tensor-bearing responses) over HTTP
// bodies between the Go client and the swap daemon.
//
// A frame is a fixed 16-byte header followed by the payload:
//
//	[0:4)   magic "CSWP"
//	[4]     version (currently 1)
//	[5]     frame type
//	[6:8)   flags, big-endian (only FlagSched defined; others must be zero)
//	[8:12)  payload length, big-endian
//	[12:16) CRC-32 (IEEE) of the payload, big-endian
//
// The payload always begins with a length-prefixed tensor name
// (uint16 length + bytes); register and tensor-data frames follow it with
// an explicit element count and the raw little-endian float32 data, and
// swap-out frames with the compress flag and algorithm byte. Every inner
// length is cross-checked against the outer one, so a frame either decodes
// exactly or fails loudly.
//
// FlagSched marks an optional scheduling extension on the swap and batch
// request frames: immediately after the name come one lane byte
// (0 critical, 1 normal, 2 speculative — internal/sched's lane values)
// and an uvarint relative deadline in microseconds (0 = lane hint only).
// The name stays first either way, so PeekName — and cluster routing —
// never looks at the flag. Decoders that predate the flag refuse such
// frames loudly (non-zero flags were always corrupt), never misread them.
//
// Malformed frames reuse the compress package's recoverable-error
// taxonomy: bytes missing at any boundary surface as compress.ErrTruncated
// and structural damage (bad magic, CRC mismatch, lying inner lengths,
// trailing bytes) as compress.ErrCorrupt, so compress.Recoverable reports
// exactly the frames a client can sensibly retransmit. The one
// deliberately unrecoverable refusal is ErrTooLarge — a hostile or
// misconfigured length prefix past the decoder's cap, rejected before any
// allocation happens.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cswap/internal/compress"
)

// Protocol constants.
const (
	// Version is the protocol version this package speaks.
	Version = 1
	// HeaderLen is the fixed frame-header size in bytes.
	HeaderLen = 16
	// MaxNameLen bounds the tensor-name field.
	MaxNameLen = 4096
	// DefaultMaxPayload is the decoder's payload cap when the caller
	// passes zero: 1 GiB, matching the executor arena's largest class.
	DefaultMaxPayload = 1 << 30
)

var magic = [4]byte{'C', 'S', 'W', 'P'}

// Header flags. FlagSched marks the scheduling extension (lane byte +
// uvarint relative deadline, right after the name); all other bits are
// reserved and refused.
const (
	FlagSched uint16 = 1 << 0

	// maxLaneByte is the highest legal lane value (internal/sched defines
	// lanes 0..2; wire validates the byte without importing the package).
	maxLaneByte = 2
)

// ErrTooLarge reports a payload length prefix past the decoder's cap. It
// is a policy refusal, not data damage, and deliberately does not satisfy
// compress.Recoverable: retransmitting the same frame cannot succeed.
var ErrTooLarge = fmt.Errorf("wire: frame payload exceeds cap")

// Type is the frame opcode.
type Type uint8

// Frame types. Register..Free are requests; TensorData and Ack are
// responses (errors travel as HTTP status codes, not frames).
const (
	TypeRegister   Type = iota + 1 // name + element count + float32 data
	TypeSwapOut                    // name + compress flag + algorithm
	TypeSwapIn                     // name
	TypePrefetch                   // name
	TypeFree                       // name
	TypeTensorData                 // name + element count + float32 data
	TypeAck                        // name

	// Block-pool batch frames (batch.go): one frame addresses a named pool
	// of fixed-size blocks and carries a block-ID list or run table, so a
	// whole decode step's working set moves in one round trip.
	TypeRegisterPool  // name + blockElems + numBlocks
	TypeBatchSwapOut  // name + compress flag + algorithm + block-ID list
	TypeBatchSwapIn   // name + block-ID list
	TypeBatchPrefetch // name + block-ID list
	TypeBatchData     // name + blockElems + run table + packed float32 data
)

// String names the frame type for errors and logs.
func (t Type) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeSwapOut:
		return "swap-out"
	case TypeSwapIn:
		return "swap-in"
	case TypePrefetch:
		return "prefetch"
	case TypeFree:
		return "free"
	case TypeTensorData:
		return "tensor-data"
	case TypeAck:
		return "ack"
	case TypeRegisterPool:
		return "register-pool"
	case TypeBatchSwapOut:
		return "batch-swap-out"
	case TypeBatchSwapIn:
		return "batch-swap-in"
	case TypeBatchPrefetch:
		return "batch-prefetch"
	case TypeBatchData:
		return "batch-data"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

func (t Type) valid() bool { return t >= TypeRegister && t <= TypeBatchData }

// hasData reports whether the type carries an element count + float32
// payload after the name.
func (t Type) hasData() bool { return t == TypeRegister || t == TypeTensorData }

// schedulable reports whether the type may carry the FlagSched extension:
// the swap and batch request frames — the operations the admission
// scheduler orders. Register/free/response frames refuse it.
func (t Type) schedulable() bool {
	return t == TypeSwapOut || t == TypeSwapIn || t == TypePrefetch || t.hasIDList()
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type Type
	// Name is the tensor name the operation addresses (non-empty).
	Name string
	// Compress and Alg are meaningful for TypeSwapOut and TypeBatchSwapOut.
	Compress bool
	Alg      compress.Algorithm
	// Data is the float32 payload of register, tensor-data, and batch-data
	// frames (for batch-data: the runs' blocks packed back to back).
	Data []float32

	// Block-pool fields (batch.go). BlockElems is the per-block element
	// count (register-pool, batch-data); NumBlocks the pool size in blocks
	// (register-pool); BlockIDs the requested blocks (batch-swap-out/
	// swap-in/prefetch, any order, duplicates legal); Runs the canonical
	// run table describing Data's layout (batch-data).
	BlockElems int
	NumBlocks  int
	BlockIDs   []int
	Runs       []BlockRun

	// Scheduling extension (FlagSched). HasSched marks its presence;
	// Lane is the priority lane byte (0 critical .. 2 speculative) and
	// DeadlineMicros the relative deadline in microseconds (0 = lane
	// hint only). Only the swap/batch request frames may carry it.
	HasSched       bool
	Lane           uint8
	DeadlineMicros uint64
}

// truncErr and corruptErr wrap the compress taxonomy with frame context.
func truncErr(format string, args ...any) error {
	return fmt.Errorf("wire: %s: %w", fmt.Sprintf(format, args...), compress.ErrTruncated)
}

func corruptErr(format string, args ...any) error {
	return fmt.Errorf("wire: %s: %w", fmt.Sprintf(format, args...), compress.ErrCorrupt)
}

// payloadLen returns the encoded payload size for f, validating the
// fields an encoder controls (name length, swap-out algorithm).
func (f *Frame) payloadLen() (int, error) {
	if !f.Type.valid() {
		return 0, fmt.Errorf("wire: cannot encode unknown frame type %d", uint8(f.Type))
	}
	if f.Name == "" {
		return 0, fmt.Errorf("wire: cannot encode frame with empty name")
	}
	if len(f.Name) > MaxNameLen {
		return 0, fmt.Errorf("wire: name of %d bytes exceeds limit %d", len(f.Name), MaxNameLen)
	}
	n := 2 + len(f.Name)
	if f.HasSched {
		if !f.Type.schedulable() {
			return 0, fmt.Errorf("wire: %s frame cannot carry a sched extension", f.Type)
		}
		if f.Lane > maxLaneByte {
			return 0, fmt.Errorf("wire: sched lane byte %d out of range", f.Lane)
		}
		n += 1 + uvarintLen(f.DeadlineMicros)
	}
	switch {
	case f.Type.isBatch():
		bn, err := f.batchPayloadLen()
		if err != nil {
			return 0, err
		}
		n += bn
	case f.Type.hasData():
		n += 4 + 4*len(f.Data)
	case f.Type == TypeSwapOut:
		n += 2
	}
	return n, nil
}

// appendFloats packs float32 values little-endian onto dst.
func appendFloats(dst []byte, data []float32) []byte {
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	return dst
}

// parseFloats unpacks elems little-endian float32 values from b.
func parseFloats(b []byte, elems int) []float32 {
	data := make([]float32, elems)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i : 4*i+4]))
	}
	return data
}

// Append encodes f onto dst and returns the extended slice.
func Append(dst []byte, f *Frame) ([]byte, error) {
	plen, err := f.payloadLen()
	if err != nil {
		return dst, err
	}
	var flags uint16
	if f.HasSched {
		flags |= FlagSched
	}
	start := len(dst)
	dst = append(dst, magic[:]...)
	dst = append(dst, Version, byte(f.Type))
	dst = binary.BigEndian.AppendUint16(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(plen))
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Name)))
	dst = append(dst, f.Name...)
	if f.HasSched {
		dst = append(dst, f.Lane)
		dst = binary.AppendUvarint(dst, f.DeadlineMicros)
	}
	switch {
	case f.Type.isBatch():
		dst = appendBatchPayload(dst, f)
	case f.Type.hasData():
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Data)))
		dst = appendFloats(dst, f.Data)
	case f.Type == TypeSwapOut:
		var c byte
		if f.Compress {
			c = 1
		}
		dst = append(dst, c, byte(f.Alg))
	}
	crc := crc32.ChecksumIEEE(dst[start+HeaderLen:])
	binary.BigEndian.PutUint32(dst[start+12:start+16], crc)
	return dst, nil
}

// Encode returns f's wire encoding.
func Encode(f *Frame) ([]byte, error) {
	plen, err := f.payloadLen()
	if err != nil {
		return nil, err
	}
	return Append(make([]byte, 0, HeaderLen+plen), f)
}

// parseHeader validates a complete 16-byte header and returns the payload
// length, frame type, and flags. maxPayload of zero selects
// DefaultMaxPayload.
func parseHeader(h []byte, maxPayload uint32) (plen uint32, crc uint32, typ Type, flags uint16, err error) {
	if maxPayload == 0 {
		maxPayload = DefaultMaxPayload
	}
	if [4]byte(h[0:4]) != magic {
		return 0, 0, 0, 0, corruptErr("bad magic %q", h[0:4])
	}
	if h[4] != Version {
		return 0, 0, 0, 0, corruptErr("unsupported version %d", h[4])
	}
	typ = Type(h[5])
	if !typ.valid() {
		return 0, 0, 0, 0, corruptErr("unknown frame type %d", h[5])
	}
	flags = binary.BigEndian.Uint16(h[6:8])
	if flags&^FlagSched != 0 {
		return 0, 0, 0, 0, corruptErr("unknown flags %#x", flags)
	}
	if flags&FlagSched != 0 && !typ.schedulable() {
		return 0, 0, 0, 0, corruptErr("%s frame cannot carry a sched extension", typ)
	}
	plen = binary.BigEndian.Uint32(h[8:12])
	if plen > maxPayload {
		return 0, 0, 0, 0, fmt.Errorf("%w: %d bytes, cap %d", ErrTooLarge, plen, maxPayload)
	}
	return plen, binary.BigEndian.Uint32(h[12:16]), typ, flags, nil
}

// parsePayload decodes the CRC-verified payload bytes of a frame of the
// given type and header flags. Every inner length is checked against the
// payload bounds and trailing bytes are refused, so corruption the CRC
// happened to miss still cannot decode.
func parsePayload(typ Type, flags uint16, p []byte) (*Frame, error) {
	if len(p) < 2 {
		return nil, truncErr("payload of %d bytes lacks name length", len(p))
	}
	nameLen := int(binary.BigEndian.Uint16(p[0:2]))
	if nameLen == 0 {
		return nil, corruptErr("empty tensor name")
	}
	if nameLen > MaxNameLen {
		return nil, corruptErr("name of %d bytes exceeds limit %d", nameLen, MaxNameLen)
	}
	if len(p) < 2+nameLen {
		return nil, corruptErr("name of %d bytes overruns payload of %d", nameLen, len(p))
	}
	f := &Frame{Type: typ, Name: string(p[2 : 2+nameLen])}
	rest := p[2+nameLen:]
	if flags&FlagSched != 0 {
		if len(rest) < 1 {
			return nil, truncErr("payload ends before sched lane byte")
		}
		if rest[0] > maxLaneByte {
			return nil, corruptErr("sched lane byte %d out of range", rest[0])
		}
		f.HasSched = true
		f.Lane = rest[0]
		var err error
		f.DeadlineMicros, rest, err = parseUvarint(rest[1:], "sched deadline")
		if err != nil {
			return nil, err
		}
	}
	switch {
	case typ.isBatch():
		if err := parseBatchPayload(f, rest); err != nil {
			return nil, err
		}
	case typ.hasData():
		if len(rest) < 4 {
			return nil, corruptErr("%s frame lacks element count", typ)
		}
		elems := binary.BigEndian.Uint32(rest[0:4])
		body := rest[4:]
		if uint64(len(body)) != uint64(elems)*4 {
			return nil, corruptErr("%s frame claims %d elements but carries %d bytes", typ, elems, len(body))
		}
		f.Data = parseFloats(body, int(elems))
	case typ == TypeSwapOut:
		if len(rest) != 2 {
			return nil, corruptErr("swap-out frame carries %d option bytes, want 2", len(rest))
		}
		switch rest[0] {
		case 0:
		case 1:
			f.Compress = true
		default:
			return nil, corruptErr("swap-out compress flag %d", rest[0])
		}
		f.Alg = compress.Algorithm(rest[1])
		// Auto (the zero byte) is a legal selector, not a codec: the server
		// resolves it to a concrete algorithm at swap time.
		if f.Compress && f.Alg != compress.Auto {
			if _, err := compress.New(f.Alg); err != nil {
				return nil, corruptErr("swap-out algorithm byte %d", rest[1])
			}
		}
	default:
		if len(rest) != 0 {
			return nil, corruptErr("%s frame carries %d trailing bytes", typ, len(rest))
		}
	}
	return f, nil
}

// Decode parses exactly one frame from b, refusing trailing bytes.
// maxPayload of zero selects DefaultMaxPayload.
func Decode(b []byte, maxPayload uint32) (*Frame, error) {
	if len(b) < HeaderLen {
		return nil, truncErr("%d bytes, need %d-byte header", len(b), HeaderLen)
	}
	plen, crc, typ, flags, err := parseHeader(b[:HeaderLen], maxPayload)
	if err != nil {
		return nil, err
	}
	body := b[HeaderLen:]
	if uint64(len(body)) < uint64(plen) {
		return nil, truncErr("payload has %d of %d bytes", len(body), plen)
	}
	if uint64(len(body)) > uint64(plen) {
		return nil, corruptErr("%d trailing bytes after payload", uint64(len(body))-uint64(plen))
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, corruptErr("payload CRC %#x, header says %#x", got, crc)
	}
	return parsePayload(typ, flags, body)
}

// Read parses one frame from a stream: the fixed header first (so a
// hostile length prefix is rejected before any payload allocation), then
// exactly the declared payload. An EOF mid-frame surfaces as
// compress.ErrTruncated like its in-memory counterpart.
func Read(r io.Reader, maxPayload uint32) (*Frame, error) {
	var h [HeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, truncErr("stream ended inside header")
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	plen, crc, typ, flags, err := parseHeader(h[:], maxPayload)
	if err != nil {
		return nil, err
	}
	body := make([]byte, plen)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, truncErr("stream ended inside payload")
		}
		return nil, fmt.Errorf("wire: read payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, corruptErr("payload CRC %#x, header says %#x", got, crc)
	}
	return parsePayload(typ, flags, body)
}

// PeekName extracts the frame type and tensor name from a fully buffered
// frame without decoding the float payload or checking the payload CRC —
// the cluster router's fast path. Routing only needs the placement key;
// full validation (CRC, inner lengths, data decode) happens once, in the
// shard that serves the request. The name bounds are still checked here,
// so a hostile frame cannot make the router slice out of range.
func PeekName(b []byte, maxPayload uint32) (Type, string, error) {
	if len(b) < HeaderLen {
		return 0, "", truncErr("%d bytes, need %d-byte header", len(b), HeaderLen)
	}
	plen, _, typ, _, err := parseHeader(b[:HeaderLen], maxPayload)
	if err != nil {
		return 0, "", err
	}
	body := b[HeaderLen:]
	if uint64(len(body)) < uint64(plen) {
		return 0, "", truncErr("payload has %d of %d bytes", len(body), plen)
	}
	if len(body) < 2 {
		return 0, "", truncErr("payload of %d bytes lacks name length", len(body))
	}
	nameLen := int(binary.BigEndian.Uint16(body[0:2]))
	if nameLen == 0 {
		return 0, "", corruptErr("empty tensor name")
	}
	if nameLen > MaxNameLen {
		return 0, "", corruptErr("name of %d bytes exceeds limit %d", nameLen, MaxNameLen)
	}
	if len(body) < 2+nameLen || int(plen) < 2+nameLen {
		return 0, "", corruptErr("name of %d bytes overruns payload of %d", nameLen, plen)
	}
	return typ, string(body[2 : 2+nameLen]), nil
}

// Equal reports whether two frames are semantically identical — the
// round-trip invariant the fuzzer pins (float payloads compare by bit
// pattern, so NaNs round-trip like any other tensor value).
func Equal(a, b *Frame) bool {
	if a.Type != b.Type || a.Name != b.Name || a.Compress != b.Compress || a.Alg != b.Alg {
		return false
	}
	if a.HasSched != b.HasSched || a.Lane != b.Lane || a.DeadlineMicros != b.DeadlineMicros {
		return false
	}
	if a.BlockElems != b.BlockElems || a.NumBlocks != b.NumBlocks ||
		!idsEqual(a.BlockIDs, b.BlockIDs) || !runsEqual(a.Runs, b.Runs) {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}
