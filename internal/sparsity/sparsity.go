// Package sparsity models how the zero fraction of each swappable
// activation evolves across training epochs — the phenomenon Figure 1 of
// the paper measures for VGG16 (sparsity between 20 % and 80 %, rising for
// some layers such as ReLU4, rising-then-falling for ReLU7, persistently
// low for MAX4) and Figure 8 tracks for AlexNet, VGG16, MobileNet, and
// SqueezeNet.
//
// Each swappable tensor gets a parametric curve chosen from the shapes the
// paper describes (ramp up, up-then-down, dip-then-recover, flat, low),
// assigned by model-specific rules plus a deterministic per-tensor hash, so
// the whole training trajectory is reproducible.
package sparsity

import (
	"cswap/internal/dnn"
	"cswap/internal/stats"
)

// CurveKind is the qualitative shape of a layer's sparsity trajectory.
type CurveKind int

// Curve shapes observed in the paper's measurements.
const (
	Ramp   CurveKind = iota // monotonically rising (most ReLU layers)
	UpDown                  // rises then falls (VGG16 ReLU7)
	Dip                     // falls then recovers (two SqueezeNet tensors)
	Flat                    // roughly constant (MobileNet)
	Low                     // constant and low (VGG16 MAX4, < 45 %)
)

// Curve is a parametric sparsity trajectory over a training run.
type Curve struct {
	Kind CurveKind
	// Start and End are the sparsity values at the first and last epoch.
	Start, End float64
	// Turn is the epoch fraction (0–1) of the extremum for UpDown/Dip.
	Turn float64
	// Extreme is the sparsity at the turning point for UpDown/Dip.
	Extreme float64
}

// At evaluates the curve at the given epoch of a totalEpochs-long run,
// clamping to [0, 1]. totalEpochs below 2 returns Start.
func (c Curve) At(epoch, totalEpochs int) float64 {
	if totalEpochs < 2 {
		return stats.Clamp(c.Start, 0, 1)
	}
	f := stats.Clamp(float64(epoch)/float64(totalEpochs-1), 0, 1)
	var s float64
	switch c.Kind {
	case Flat, Low:
		s = c.Start
	case Ramp:
		s = c.Start + (c.End-c.Start)*f
	case UpDown, Dip:
		turn := c.Turn
		if turn <= 0 || turn >= 1 {
			turn = 0.5
		}
		if f <= turn {
			s = c.Start + (c.Extreme-c.Start)*(f/turn)
		} else {
			s = c.Extreme + (c.End-c.Extreme)*((f-turn)/(1-turn))
		}
	default:
		s = c.Start
	}
	return stats.Clamp(s, 0, 1)
}

// Profile holds the sparsity trajectories of every swappable tensor of one
// model instance.
type Profile struct {
	Model   string
	Epochs  int
	Tensors []dnn.SwapTensor
	Curves  []Curve
	seed    int64
}

// DefaultEpochs matches the paper's 50-epoch measurement window.
const DefaultEpochs = 50

// ForModel builds the sparsity profile for a model's swappable tensors.
// The seed perturbs only the hash-assigned curves, not the paper-mandated
// ones.
func ForModel(m *dnn.Model, epochs int, seed int64) *Profile {
	if epochs <= 0 {
		epochs = DefaultEpochs
	}
	tensors := m.SwapTensors()
	p := &Profile{Model: m.Name, Epochs: epochs, Tensors: tensors, seed: seed}
	p.Curves = make([]Curve, len(tensors))
	for i, t := range tensors {
		p.Curves[i] = curveFor(m.Name, t, seed)
	}
	return p
}

// Sparsity returns the sparsity of tensor seq at the given epoch, with a
// small deterministic per-epoch wobble (±1.5 %) on top of the curve — the
// measurement-level variation visible in Figure 1's bars.
func (p *Profile) Sparsity(seq, epoch int) float64 {
	c := p.Curves[seq]
	base := c.At(epoch, p.Epochs)
	h := splitmix64(uint64(seq)<<32 ^ uint64(epoch)<<8 ^ uint64(p.seed) ^ hashString(p.Model))
	u := float64(h>>11) / float64(1<<53)
	return stats.Clamp(base+0.015*(2*u-1), 0, 1)
}

// MeanSparsity averages a tensor's sparsity over [fromEpoch, toEpoch).
func (p *Profile) MeanSparsity(seq, fromEpoch, toEpoch int) float64 {
	if toEpoch <= fromEpoch {
		return p.Sparsity(seq, fromEpoch)
	}
	var sum float64
	for e := fromEpoch; e < toEpoch; e++ {
		sum += p.Sparsity(seq, e)
	}
	return sum / float64(toEpoch-fromEpoch)
}

// curveFor assigns a trajectory per the paper's model-specific narratives.
func curveFor(model string, t dnn.SwapTensor, seed int64) Curve {
	h := splitmix64(hashString(model) ^ uint64(t.Seq)<<16 ^ uint64(seed))
	u := func(i uint) float64 { // i-th deterministic uniform in [0,1)
		return float64(splitmix64(h^uint64(i))>>11) / float64(1<<53)
	}
	switch model {
	case "VGG16":
		switch t.Name {
		case "ReLU4":
			// "its sparsity is increased from 50% to 80%" (Section II-B).
			return Curve{Kind: Ramp, Start: 0.50, End: 0.80}
		case "ReLU7":
			// "increased in the first 10 epochs and then decreased by 20%".
			return Curve{Kind: UpDown, Start: 0.52, Extreme: 0.72, End: 0.52, Turn: 0.2}
		case "MAX4":
			// "always has low sparsity (i.e., lower than 45%)" (Fig. 9).
			return Curve{Kind: Low, Start: 0.40, End: 0.40}
		}
		// Remaining layers ramp from the 25–55 % band into the 55–80 %
		// band, staggered so compression eligibility spreads over epochs.
		start := 0.25 + 0.30*u(1)
		return Curve{Kind: Ramp, Start: start, End: stats.Clamp(start+0.25+0.20*u(2), 0, 0.80)}
	case "MobileNet":
		// "its tensor sparsity changes slightly" (Fig. 8c).
		return Curve{Kind: Flat, Start: 0.30 + 0.35*u(1)}
	case "SqueezeNet":
		// "two tensors whose sparsity is decreased between epoch 5 and
		// epoch 17 and is increased after epoch 17" (Fig. 8d).
		if t.Seq == 3 || t.Seq == 7 {
			return Curve{Kind: Dip, Start: 0.62, Extreme: 0.38, End: 0.70, Turn: 0.3}
		}
		start := 0.30 + 0.25*u(1)
		return Curve{Kind: Ramp, Start: start, End: start + 0.25}
	case "Plain20":
		// "tensors in all ReLU layers of Plain20 are sparse and have a
		// larger size on average" (Section V-B): uniformly high sparsity.
		return Curve{Kind: Flat, Start: 0.60 + 0.15*u(1)}
	case "AlexNet":
		// AlexNet ReLU outputs are famously sparse (≈60 % average density
		// reduction in the cDMA measurements) and keep sparsifying as
		// training converges; staggered starts make additional layers
		// cross the compression threshold over the run (Figure 8a).
		start := 0.32 + 0.22*u(1)
		return Curve{Kind: Ramp, Start: start, End: stats.Clamp(start+0.38, 0, 0.87)}
	case "ResNet":
		if u(1) < 0.3 {
			return Curve{Kind: Flat, Start: 0.40 + 0.3*u(2)}
		}
		start := 0.30 + 0.25*u(2)
		return Curve{Kind: Ramp, Start: start, End: start + 0.28}
	default:
		start := 0.25 + 0.3*u(1)
		return Curve{Kind: Ramp, Start: start, End: start + 0.25}
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
