package sparsity

import (
	"testing"

	"cswap/internal/dnn"
)

func TestCurveShapes(t *testing.T) {
	ramp := Curve{Kind: Ramp, Start: 0.2, End: 0.8}
	if got := ramp.At(0, 50); got != 0.2 {
		t.Errorf("ramp start = %v", got)
	}
	if got := ramp.At(49, 50); got != 0.8 {
		t.Errorf("ramp end = %v", got)
	}
	mid := ramp.At(24, 50)
	if mid <= 0.2 || mid >= 0.8 {
		t.Errorf("ramp mid = %v", mid)
	}

	ud := Curve{Kind: UpDown, Start: 0.5, Extreme: 0.8, End: 0.55, Turn: 0.2}
	peak := ud.At(9, 50) // turn at ≈ epoch 10
	if peak < ud.At(0, 50) || peak < ud.At(49, 50) {
		t.Errorf("UpDown peak %v not above endpoints", peak)
	}
	if ud.At(49, 50) >= peak {
		t.Error("UpDown should decline after the turn")
	}

	dip := Curve{Kind: Dip, Start: 0.6, Extreme: 0.35, End: 0.7, Turn: 0.3}
	bottom := dip.At(14, 50)
	if bottom >= dip.At(0, 50) || bottom >= dip.At(49, 50) {
		t.Errorf("Dip bottom %v not below endpoints", bottom)
	}

	flat := Curve{Kind: Flat, Start: 0.4}
	for e := 0; e < 50; e += 7 {
		if flat.At(e, 50) != 0.4 {
			t.Errorf("flat moved at epoch %d", e)
		}
	}
}

func TestCurveClampsAndDegenerateInputs(t *testing.T) {
	c := Curve{Kind: Ramp, Start: -0.5, End: 1.5}
	if got := c.At(0, 50); got != 0 {
		t.Errorf("clamp low = %v", got)
	}
	if got := c.At(49, 50); got != 1 {
		t.Errorf("clamp high = %v", got)
	}
	if got := c.At(5, 1); got != 0 {
		t.Errorf("single-epoch run = %v, want Start (clamped)", got)
	}
	// Invalid turn falls back to midpoint without panicking.
	bad := Curve{Kind: UpDown, Start: 0.3, Extreme: 0.6, End: 0.3, Turn: 0}
	if got := bad.At(25, 51); got < 0.55 {
		t.Errorf("fallback turn midpoint = %v", got)
	}
}

func profileFor(t *testing.T, name string) (*dnn.Model, *Profile) {
	t.Helper()
	m, err := dnn.Build(name, dnn.ImageNet, 16)
	if err != nil {
		t.Fatal(err)
	}
	return m, ForModel(m, DefaultEpochs, 1)
}

func TestForModelDeterministic(t *testing.T) {
	m, p1 := profileFor(t, "VGG16")
	p2 := ForModel(m, DefaultEpochs, 1)
	for seq := range p1.Tensors {
		for e := 0; e < 50; e += 5 {
			if p1.Sparsity(seq, e) != p2.Sparsity(seq, e) {
				t.Fatal("profile not deterministic")
			}
		}
	}
	p3 := ForModel(m, DefaultEpochs, 2)
	diff := false
	for seq := range p1.Tensors {
		if p1.Sparsity(seq, 10) != p3.Sparsity(seq, 10) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should perturb at least some curves")
	}
}

func TestVGG16PaperNarratives(t *testing.T) {
	_, p := profileFor(t, "VGG16")
	byName := map[string]int{}
	for _, tn := range p.Tensors {
		byName[tn.Name] = tn.Seq
	}

	// ReLU4 rises from ≈50 % to ≈80 %.
	r4 := byName["ReLU4"]
	if s0 := p.Sparsity(r4, 0); s0 < 0.47 || s0 > 0.53 {
		t.Errorf("ReLU4 epoch 0 = %v, want ≈0.50", s0)
	}
	if s49 := p.Sparsity(r4, 49); s49 < 0.77 || s49 > 0.83 {
		t.Errorf("ReLU4 epoch 49 = %v, want ≈0.80", s49)
	}

	// ReLU7 peaks near epoch 10 then declines by ≈20 points.
	r7 := byName["ReLU7"]
	peak := p.Sparsity(r7, 10)
	if peak <= p.Sparsity(r7, 0) {
		t.Error("ReLU7 should rise in the first 10 epochs")
	}
	if drop := peak - p.Sparsity(r7, 49); drop < 0.15 || drop > 0.25 {
		t.Errorf("ReLU7 decline = %v, want ≈0.20", drop)
	}

	// MAX4 stays below 45 %.
	m4 := byName["MAX4"]
	for e := 0; e < 50; e++ {
		if s := p.Sparsity(m4, e); s >= 0.45 {
			t.Fatalf("MAX4 sparsity %v at epoch %d, must stay < 0.45", s, e)
		}
	}

	// Overall band: 20–80 % (Figure 1) within wobble.
	for seq := range p.Tensors {
		for e := 0; e < 50; e += 7 {
			if s := p.Sparsity(seq, e); s < 0.18 || s > 0.84 {
				t.Fatalf("tensor %d epoch %d sparsity %v outside the 20–80%% band",
					seq, e, s)
			}
		}
	}
}

func TestMobileNetNearlyFlat(t *testing.T) {
	_, p := profileFor(t, "MobileNet")
	for seq := range p.Tensors {
		lo, hi := 1.0, 0.0
		for e := 0; e < 50; e++ {
			s := p.Sparsity(seq, e)
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo > 0.05 {
			t.Fatalf("MobileNet tensor %d varies by %v, should be nearly flat", seq, hi-lo)
		}
	}
}

func TestSqueezeNetDipTensors(t *testing.T) {
	_, p := profileFor(t, "SqueezeNet")
	for _, seq := range []int{3, 7} {
		early := p.Sparsity(seq, 2)
		bottom := p.Sparsity(seq, 15)
		late := p.Sparsity(seq, 49)
		if !(bottom < early && bottom < late) {
			t.Fatalf("tensor %d not dip-shaped: %v %v %v", seq, early, bottom, late)
		}
	}
}

func TestPlain20AllHighSparsity(t *testing.T) {
	_, p := profileFor(t, "Plain20")
	for seq := range p.Tensors {
		for e := 0; e < 50; e += 10 {
			if s := p.Sparsity(seq, e); s < 0.55 {
				t.Fatalf("Plain20 tensor %d sparsity %v, expected uniformly high", seq, s)
			}
		}
	}
}

func TestMeanSparsityWindow(t *testing.T) {
	_, p := profileFor(t, "VGG16")
	m := p.MeanSparsity(0, 0, 5)
	if m <= 0 || m >= 1 {
		t.Fatalf("mean = %v", m)
	}
	// Degenerate window returns the point value.
	if got := p.MeanSparsity(0, 7, 7); got != p.Sparsity(0, 7) {
		t.Fatal("degenerate window mismatch")
	}
	// A rising curve's late-window mean exceeds its early-window mean.
	byName := map[string]int{}
	for _, tn := range p.Tensors {
		byName[tn.Name] = tn.Seq
	}
	r4 := byName["ReLU4"]
	if p.MeanSparsity(r4, 45, 50) <= p.MeanSparsity(r4, 0, 5) {
		t.Fatal("ReLU4 late mean should exceed early mean")
	}
}

func TestForModelDefaultEpochs(t *testing.T) {
	m, _ := profileFor(t, "AlexNet")
	p := ForModel(m, 0, 1)
	if p.Epochs != DefaultEpochs {
		t.Fatalf("Epochs = %d, want %d", p.Epochs, DefaultEpochs)
	}
}

func TestAllModelsProfileInBand(t *testing.T) {
	for _, name := range dnn.ModelNames() {
		m, err := dnn.Build(name, dnn.CIFAR10, 8)
		if err != nil {
			t.Fatal(err)
		}
		p := ForModel(m, 50, 3)
		for seq := range p.Tensors {
			for e := 0; e < 50; e += 11 {
				s := p.Sparsity(seq, e)
				if s < 0.15 || s > 0.9 {
					t.Fatalf("%s tensor %d epoch %d sparsity %v out of plausible band",
						name, seq, e, s)
				}
			}
		}
	}
}
