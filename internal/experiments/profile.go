package experiments

import (
	"fmt"
	"strings"

	"cswap/internal/dnn"
	"cswap/internal/sparsity"
)

// Fig1Result reproduces Figure 1: per-layer tensor sparsity of VGG16 across
// the first 50 epochs (averaged over five-epoch windows, as the paper's
// grouped bars are) together with the per-layer tensor sizes.
type Fig1Result struct {
	Layers  []string
	SizesMB []float64
	// WindowMeans[l][w] is the mean sparsity of layer l in epoch window w
	// (windows of five epochs).
	WindowMeans [][]float64
	WindowSize  int
}

// Fig1 runs the Figure 1 profiling sweep on VGG16 / ImageNet / batch 128.
func Fig1(cfg Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	m, err := dnn.Build("VGG16", dnn.ImageNet, 128)
	if err != nil {
		return nil, err
	}
	sp := sparsity.ForModel(m, cfg.Epochs, cfg.Seed+3)
	tensors := m.SwapTensors()
	const window = 5
	res := &Fig1Result{WindowSize: window}
	for i, t := range tensors {
		res.Layers = append(res.Layers, t.Name)
		res.SizesMB = append(res.SizesMB, float64(t.Bytes)/(1<<20))
		var means []float64
		for e := 0; e < cfg.Epochs; e += window {
			hi := e + window
			if hi > cfg.Epochs {
				hi = cfg.Epochs
			}
			means = append(means, sp.MeanSparsity(i, e, hi))
		}
		res.WindowMeans = append(res.WindowMeans, means)
	}
	return res, nil
}

// String renders the figure as a table: one row per layer, one column per
// five-epoch window, plus the tensor size.
func (r *Fig1Result) String() string {
	header := []string{"layer", "size(MB)"}
	for w := range r.WindowMeans[0] {
		header = append(header, fmt.Sprintf("ep%d-%d", w*r.WindowSize, (w+1)*r.WindowSize-1))
	}
	var rows [][]string
	for i, l := range r.Layers {
		row := []string{l, fmt.Sprintf("%.0f", r.SizesMB[i])}
		for _, mu := range r.WindowMeans[i] {
			row = append(row, fmt.Sprintf("%.0f%%", mu*100))
		}
		rows = append(rows, row)
	}
	return "Figure 1 — VGG16 tensor sparsity per layer across epochs (ImageNet, batch 128)\n" +
		table(header, rows)
}

// Fig8Result reproduces Figure 8: the number of layers whose tensors CSWAP
// compresses at every epoch, for the four models the paper plots.
type Fig8Result struct {
	Models map[string][]int // model → count per epoch
	Epochs int
}

// Fig8Models are the four models Figure 8 tracks.
var Fig8Models = []string{"AlexNet", "VGG16", "MobileNet", "SqueezeNet"}

// Fig8 counts compressed layers per epoch on V100/ImageNet.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig8Result{Models: map[string][]int{}, Epochs: cfg.Epochs}
	for _, model := range Fig8Models {
		fw, _, err := cfg.newFramework(model, "V100", dnn.ImageNet)
		if err != nil {
			return nil, err
		}
		counts := make([]int, cfg.Epochs)
		for e := 0; e < cfg.Epochs; e++ {
			n, err := fw.CompressedLayerCount(e)
			if err != nil {
				return nil, err
			}
			counts[e] = n
		}
		res.Models[model] = counts
	}
	return res, nil
}

// String renders per-model epoch series (subsampled every 5 epochs).
func (r *Fig8Result) String() string {
	header := []string{"model"}
	for e := 0; e < r.Epochs; e += 5 {
		header = append(header, fmt.Sprintf("ep%d", e))
	}
	var rows [][]string
	for _, model := range Fig8Models {
		counts, ok := r.Models[model]
		if !ok {
			continue
		}
		row := []string{model}
		for e := 0; e < r.Epochs; e += 5 {
			row = append(row, fmt.Sprintf("%d", counts[e]))
		}
		rows = append(rows, row)
	}
	return "Figure 8 — layers executing tensor compression per epoch (V100, ImageNet)\n" +
		table(header, rows)
}

// Fig9Result reproduces Figure 9: the VGG16 layer × epoch compression
// dot-matrix.
type Fig9Result struct {
	Layers []string
	// Compressed[l][e] reports whether layer l's tensor is compressed at
	// epoch e.
	Compressed [][]bool
	Epochs     int
}

// Fig9 computes the VGG16 compression matrix on V100/ImageNet.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	fw, _, err := cfg.newFramework("VGG16", "V100", dnn.ImageNet)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Epochs: cfg.Epochs}
	for e := 0; e < cfg.Epochs; e++ {
		decs, _, names, err := fw.DecisionsAt(e)
		if err != nil {
			return nil, err
		}
		if e == 0 {
			res.Layers = names
			res.Compressed = make([][]bool, len(names))
			for i := range res.Compressed {
				res.Compressed[i] = make([]bool, cfg.Epochs)
			}
		}
		for i, d := range decs {
			res.Compressed[i][e] = d.Compress
		}
	}
	return res, nil
}

// CountAt returns the number of compressed layers at an epoch.
func (r *Fig9Result) CountAt(epoch int) int {
	n := 0
	for i := range r.Compressed {
		if r.Compressed[i][epoch] {
			n++
		}
	}
	return n
}

// NeverCompressed lists layers that are never compressed across the run
// (the paper's MAX4 / ReLU7 / ReLU8 observation).
func (r *Fig9Result) NeverCompressed() []string {
	var out []string
	for i, row := range r.Compressed {
		any := false
		for _, c := range row {
			any = any || c
		}
		if !any {
			out = append(out, r.Layers[i])
		}
	}
	return out
}

// String draws the dot matrix: '#' compressed, '.' not.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9 — VGG16 layer-wise compression detail ('#' = compressed)\n")
	for i, l := range r.Layers {
		fmt.Fprintf(&b, "%-10s ", l)
		for e := 0; e < r.Epochs; e++ {
			if r.Compressed[i][e] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s epoch 0..%d; compressed at first epoch: %d, at last: %d; never: %s\n",
		"", r.Epochs-1, r.CountAt(0), r.CountAt(r.Epochs-1),
		strings.Join(r.NeverCompressed(), ","))
	return b.String()
}
