package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export for the series-shaped figures, so the plots can be
// regenerated with any external plotting tool.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// WriteCSV dumps the Figure 1 sparsity series (one row per layer per
// window) to fig1.csv in dir.
func (r *Fig1Result) WriteCSV(dir string) error {
	header := []string{"layer", "size_mb", "window", "mean_sparsity"}
	var rows [][]string
	for i, l := range r.Layers {
		for w, mu := range r.WindowMeans[i] {
			rows = append(rows, []string{
				l,
				strconv.FormatFloat(r.SizesMB[i], 'f', 1, 64),
				strconv.Itoa(w * r.WindowSize),
				strconv.FormatFloat(mu, 'f', 4, 64),
			})
		}
	}
	return writeCSV(dir, "fig1.csv", header, rows)
}

// WriteCSV dumps the Figure 5 kernel surface to fig5.csv.
func (r *Fig5Result) WriteCSV(dir string) error {
	header := []string{"grid", "block", "total_ms"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			strconv.Itoa(p.Grid), strconv.Itoa(p.Block),
			strconv.FormatFloat(p.TotalMS, 'f', 3, 64),
		})
	}
	return writeCSV(dir, "fig5.csv", header, rows)
}

// WriteCSV dumps the Figure 6 normalized throughputs to fig6.csv.
func (r *Fig6Result) WriteCSV(dir string) error {
	header := []string{"gpu", "dataset", "model", "framework", "normalized_throughput", "iteration_s"}
	var rows [][]string
	for _, p := range r.Platforms {
		for _, m := range p.Models() {
			for _, fr := range FrameworkNames {
				rows = append(rows, []string{
					p.GPU, p.Dataset, m, fr,
					strconv.FormatFloat(p.NormalizedThroughput(m, fr), 'f', 4, 64),
					strconv.FormatFloat(p.Cells[m][fr].IterationTime, 'f', 6, 64),
				})
			}
		}
	}
	return writeCSV(dir, "fig6.csv", header, rows)
}

// WriteCSV dumps the Figure 8 per-epoch counts to fig8.csv.
func (r *Fig8Result) WriteCSV(dir string) error {
	header := []string{"model", "epoch", "compressed_layers"}
	var rows [][]string
	for _, model := range Fig8Models {
		for e, c := range r.Models[model] {
			rows = append(rows, []string{model, strconv.Itoa(e), strconv.Itoa(c)})
		}
	}
	return writeCSV(dir, "fig8.csv", header, rows)
}

// WriteCSV dumps the Figure 9 matrix (long form) to fig9.csv.
func (r *Fig9Result) WriteCSV(dir string) error {
	header := []string{"layer", "epoch", "compressed"}
	var rows [][]string
	for i, l := range r.Layers {
		for e := 0; e < r.Epochs; e++ {
			rows = append(rows, []string{l, strconv.Itoa(e), fmt.Sprintf("%v", r.Compressed[i][e])})
		}
	}
	return writeCSV(dir, "fig9.csv", header, rows)
}

// WriteCSV dumps the Figure 12 strategy table to fig12.csv.
func (r *Fig12Result) WriteCSV(dir string) error {
	header := []string{"strategy", "grid", "block", "codec_ms", "rest_ms", "search_evaluations"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy,
			strconv.Itoa(row.Launch.Grid), strconv.Itoa(row.Launch.Block),
			strconv.FormatFloat(row.CodecMS, 'f', 2, 64),
			strconv.FormatFloat(row.RestMS, 'f', 2, 64),
			strconv.Itoa(row.SearchEvaluations),
		})
	}
	return writeCSV(dir, "fig12.csv", header, rows)
}

// WriteAllCSV runs the series-shaped experiments and writes every CSV into
// dir. It is the data-export entry point used by cswap-report -csv.
func WriteAllCSV(cfg Config, dir string) error {
	f1, err := Fig1(cfg)
	if err != nil {
		return err
	}
	if err := f1.WriteCSV(dir); err != nil {
		return err
	}
	f5, err := Fig5(cfg)
	if err != nil {
		return err
	}
	if err := f5.WriteCSV(dir); err != nil {
		return err
	}
	f6, err := Fig6(cfg)
	if err != nil {
		return err
	}
	if err := f6.WriteCSV(dir); err != nil {
		return err
	}
	f8, err := Fig8(cfg)
	if err != nil {
		return err
	}
	if err := f8.WriteCSV(dir); err != nil {
		return err
	}
	f9, err := Fig9(cfg)
	if err != nil {
		return err
	}
	if err := f9.WriteCSV(dir); err != nil {
		return err
	}
	f12, err := Fig12(cfg)
	if err != nil {
		return err
	}
	return f12.WriteCSV(dir)
}
