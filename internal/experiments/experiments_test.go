package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cswap/internal/dnn"
)

func TestFig1ShapeMatchesPaper(t *testing.T) {
	r, err := Fig1(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	// Sizes span 1568 MB down to the FC tensors; the conv-block range the
	// paper quotes is 1568 → 49 MB.
	if r.SizesMB[0] < 1500 || r.SizesMB[0] > 1600 {
		t.Errorf("first layer size %v MB, want ≈1568", r.SizesMB[0])
	}
	found49 := false
	for _, s := range r.SizesMB {
		if s > 48 && s < 50 {
			found49 = true
		}
	}
	if !found49 {
		t.Error("no ≈49 MB tensor found")
	}
	// All window means within the 20–80 % band (±wobble).
	for i, layer := range r.Layers {
		for _, mu := range r.WindowMeans[i] {
			if mu < 0.18 || mu > 0.84 {
				t.Errorf("%s window mean %v outside band", layer, mu)
			}
		}
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Error("render missing caption")
	}
}

func TestFig2TimelineRenders(t *testing.T) {
	out, err := Fig2Timeline(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2(a)", "Figure 2(b)", "compute", "d2h", "h2d"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	// The SC flow must show compression marks.
	if !strings.Contains(out, "C") {
		t.Error("no compression spans in SC timeline")
	}
}

func TestFig3StaticCompressionSometimesWorse(t *testing.T) {
	r, err := Fig3(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: compression ≈30 % of swapping latency under SC. Our kernel
	// calibration (Figure 5 anchors against the measured link bandwidths)
	// lands somewhat above that; require the same order of magnitude.
	if share := r.CodecShare(); share < 0.15 || share > 0.55 {
		t.Errorf("codec share %v, paper reports ≈0.30", share)
	}
	// Some layers must be worse with static compression, but not all.
	worse := r.WorseThanRaw()
	if len(worse) == 0 {
		t.Error("static compression should hurt some layers (MAX/ReLU small-dense)")
	}
	if len(worse) == len(r.Rows) {
		t.Error("static compression should help some layers too")
	}
}

func TestFig5SurfaceShape(t *testing.T) {
	r, err := Fig5(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	// Paper anchors for block 64 (±ripple & sampling slack).
	if v := r.At(10, 64); v < 135 || v > 160 {
		t.Errorf("t(10,64) = %v ms, paper ≈146", v)
	}
	if v := r.At(197, 64); v < 40 || v > 49 {
		t.Errorf("t(197,64) = %v ms, paper ≈44", v)
	}
	if v := r.At(1024, 64); v < 138 || v > 162 {
		t.Errorf("t(1024,64) = %v ms, paper ≈150", v)
	}
	// U-shape: ends higher than the best.
	best := r.Best(64)
	if !(r.At(1, 64) > best.TotalMS && r.At(4096, 64) > best.TotalMS) {
		t.Error("surface not U-shaped")
	}
	if best.Grid < 40 || best.Grid > 400 {
		t.Errorf("block-64 optimum at grid %d, expect mid-range", best.Grid)
	}
}

func TestFig6FrameworkOrdering(t *testing.T) {
	r, err := Fig6(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Platforms) != 4 {
		t.Fatalf("platforms = %d, want 4", len(r.Platforms))
	}
	for _, p := range r.Platforms {
		for _, m := range p.Models() {
			cswap := p.NormalizedThroughput(m, "CSWAP")
			vdnnpp := p.NormalizedThroughput(m, "vDNN++")
			orac := p.NormalizedThroughput(m, "Orac")
			if cswap < 0.97 {
				t.Errorf("%s/%s %s: CSWAP %v below vDNN", p.GPU, p.Dataset, m, cswap)
			}
			if vdnnpp >= 0.85 {
				t.Errorf("%s/%s %s: vDNN++ %v should be well below vDNN", p.GPU, p.Dataset, m, vdnnpp)
			}
			if orac < cswap-1e-9 {
				t.Errorf("%s/%s %s: Orac %v below CSWAP %v", p.GPU, p.Dataset, m, orac, cswap)
			}
		}
	}
	// Plain20 OOM on 2080Ti/ImageNet (Figure 6d).
	d := r.Platform("2080Ti", "ImageNet")
	if d == nil {
		t.Fatal("missing 2080Ti/ImageNet platform")
	}
	oom := false
	for _, m := range d.OOM {
		if m == "Plain20" {
			oom = true
		}
	}
	if !oom {
		t.Error("Plain20 should be OOM on 2080Ti/ImageNet")
	}
	// CSWAP over vDNN is material on V100/CIFAR10 (paper: 25 % average).
	v := r.Platform("V100", "CIFAR10")
	var sum float64
	for _, m := range v.Models() {
		sum += v.NormalizedThroughput(m, "CSWAP")
	}
	if avg := sum / float64(len(v.Models())); avg < 1.05 {
		t.Errorf("V100/CIFAR10 mean CSWAP speedup %v, want ≥ 1.05", avg)
	}
}

func TestFig7SelectiveVersusStatic(t *testing.T) {
	r, err := Fig7(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	// CSWAP ≥ SC on average per GPU (paper: +5.5 % / +5.1 %); Plain20 is
	// the tie/crossover case.
	if m := r.MeanImprovement("2080Ti"); m < 0.0 {
		t.Errorf("2080Ti mean improvement %v, want ≥ 0", m)
	}
	if m := r.MeanImprovement("V100"); m < -0.02 {
		t.Errorf("V100 mean improvement %v, want ≈ 0 or better", m)
	}
	// Plain20 ≈ SC: |improvement| small (paper: equal).
	imp := r.Improvement("V100", "CIFAR10", "Plain20")
	if imp > 0.05 || imp < -0.08 {
		t.Errorf("Plain20 improvement %v, paper reports parity with SC", imp)
	}
}

func TestFig8CompressedLayersGrow(t *testing.T) {
	r, err := Fig8(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"AlexNet", "VGG16"} {
		counts := r.Models[model]
		if counts[len(counts)-1] <= counts[0] {
			t.Errorf("%s compressed layers did not grow: %d → %d",
				model, counts[0], counts[len(counts)-1])
		}
	}
	// MobileNet stays roughly stable (its sparsity is flat).
	mob := r.Models["MobileNet"]
	lo, hi := mob[0], mob[0]
	for _, c := range mob {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 6 {
		t.Errorf("MobileNet count varies %d..%d, expected near-flat", lo, hi)
	}
}

func TestFig9MatrixProperties(t *testing.T) {
	r, err := Fig9(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.CountAt(r.Epochs-1) <= r.CountAt(0) {
		t.Errorf("compressed layers %d → %d, expected growth (paper: 5 → 9)",
			r.CountAt(0), r.CountAt(r.Epochs-1))
	}
	// Some layers are never compressed (paper: MAX4, ReLU7, ReLU8).
	never := r.NeverCompressed()
	if len(never) == 0 {
		t.Error("expected some never-compressed layers")
	}
	// MAX4 (low sparsity) must be among them.
	foundMax4 := false
	for _, n := range never {
		if n == "MAX4" {
			foundMax4 = true
		}
	}
	if !foundMax4 {
		t.Errorf("MAX4 should never be compressed; never-set = %v", never)
	}
	if !strings.Contains(r.String(), "#") {
		t.Error("rendered matrix has no compressed cells")
	}
}

func TestFig10LRWins(t *testing.T) {
	r, err := Fig10(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	lr := r.RAE("LR")
	if lr > 0.06 {
		t.Errorf("LR RAE %v, paper ≈3%%", lr)
	}
	for _, other := range []string{"BR", "SVM", "DT"} {
		if lr >= r.RAE(other) {
			t.Errorf("LR (%v) should beat %s (%v)", lr, other, r.RAE(other))
		}
	}
}

func TestFig11AccuracyNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: 6 models × 50 epochs of flip simulations")
	}
	r, err := Fig11(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Models) != len(dnn.ModelNames()) {
		t.Fatalf("models = %d", len(r.Models))
	}
	if m := r.Mean(); m < 0.85 || m > 0.99 {
		t.Errorf("mean accuracy %v, paper reports 94.2%%", m)
	}
}

func TestFig12StrategyOrdering(t *testing.T) {
	r, err := Fig12(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	rd, ep, bo, gs := r.Row("RD"), r.Row("EP"), r.Row("BO"), r.Row("GS")
	if !(gs.CodecMS <= bo.CodecMS*1.02 && bo.CodecMS < ep.CodecMS) {
		t.Errorf("codec times GS=%v BO=%v EP=%v RD=%v violate ordering",
			gs.CodecMS, bo.CodecMS, ep.CodecMS, rd.CodecMS)
	}
	if ratio := r.SearchCostRatio(); ratio < 200 || ratio > 260 {
		t.Errorf("search cost ratio %v, paper ≈224×", ratio)
	}
	if gs.SearchEvaluations != 8192 {
		t.Errorf("GS evaluations = %d", gs.SearchEvaluations)
	}
}

func TestOverheadsSmall(t *testing.T) {
	r, err := Overheads(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.SparsityProbeMS <= 0 || r.SparsityProbeMS > 60 {
		t.Errorf("sparsity probe %v ms", r.SparsityProbeMS)
	}
	if r.PredictionLatency <= 0 || r.PredictionLatency.Milliseconds() > 1 {
		t.Errorf("prediction latency %v, paper ≤ 1 ms", r.PredictionLatency)
	}
	if r.BOEvaluations != 35 {
		t.Errorf("BO evaluations = %d", r.BOEvaluations)
	}
	if r.BOModeledSeconds <= 0 || r.BOModeledSeconds > 120 {
		t.Errorf("BO modeled seconds %v (paper ≈50 s)", r.BOModeledSeconds)
	}
}

func TestHeadlineMetrics(t *testing.T) {
	r, err := Headline(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: swap latency down up to 50.9 % (V100) / 47.6 % (2080Ti);
	// training time down on average. Require the right direction and a
	// material magnitude.
	if r.SwapLatencyReduction["V100"] < 0.15 {
		t.Errorf("V100 max swap-latency reduction %v, want material", r.SwapLatencyReduction["V100"])
	}
	if r.SwapLatencyReduction["2080Ti"] < 0.10 {
		t.Errorf("2080Ti max swap-latency reduction %v", r.SwapLatencyReduction["2080Ti"])
	}
	if r.TrainingTimeReductionMean < 0.02 {
		t.Errorf("mean training-time reduction %v", r.TrainingTimeReductionMean)
	}
	if r.TrainingTimeReductionMax < 0.10 {
		t.Errorf("max training-time reduction %v", r.TrainingTimeReductionMax)
	}
}

func TestFastConfigDefaults(t *testing.T) {
	c := Fast(7).withDefaults()
	if c.SamplesPerAlg >= 3000 || c.Epochs != 50 {
		t.Errorf("fast config unexpected: %+v", c)
	}
	grid := c.epochGrid()
	if len(grid) == 0 || grid[0] != 0 {
		t.Errorf("epoch grid %v", grid)
	}
}

func TestLinkSweepCompressionCrossover(t *testing.T) {
	r, err := LinkSweep(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Slower links mean more exposed transfer, more compression, bigger
	// CSWAP wins; by NVLink speeds the advisor stops compressing and the
	// speedup decays to ~1 — the Section II-C argument quantified.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].SpeedupOverVDNN > r.Points[i-1].SpeedupOverVDNN+0.02 {
			t.Fatalf("speedup not decaying with bandwidth: %+v", r.Points)
		}
		if r.Points[i].CompressedTensors > r.Points[i-1].CompressedTensors {
			t.Fatalf("compression count not decaying: %+v", r.Points)
		}
		if r.Points[i].StallShare >= r.Points[i-1].StallShare {
			t.Fatalf("stall share not decaying: %+v", r.Points)
		}
	}
	slow, fast := r.Points[0], r.Points[len(r.Points)-1]
	if slow.SpeedupOverVDNN < 1.2 {
		t.Fatalf("half-bandwidth speedup %v, want substantial", slow.SpeedupOverVDNN)
	}
	if fast.SpeedupOverVDNN > 1.02 || fast.SpeedupOverVDNN < 0.98 {
		t.Fatalf("NVLink speedup %v, want ≈1 (advisor stops compressing)", fast.SpeedupOverVDNN)
	}
	if fast.CompressedTensors != 0 {
		t.Fatalf("NVLink compressed %d tensors, want 0", fast.CompressedTensors)
	}
}

func TestAdvisorFavorsZVC(t *testing.T) {
	// Section IV-E: "Because PCIe bandwidth is limited, we observe that
	// CSWAP favors the most efficient algorithm (i.e., ZVC)."
	cfg := Fast(1)
	zvc, other := 0, 0
	for _, model := range dnn.ModelNames() {
		fw, _, err := cfg.newFramework(model, "V100", dnn.ImageNet)
		if err != nil {
			t.Fatal(err)
		}
		for epoch := 0; epoch < 50; epoch += 10 {
			decs, algs, _, err := fw.DecisionsAt(epoch)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range decs {
				if !d.Compress {
					continue
				}
				if algs[i].String() == "ZVC" {
					zvc++
				} else {
					other++
				}
			}
		}
	}
	if zvc == 0 {
		t.Fatal("no compression decisions at all")
	}
	if share := float64(zvc) / float64(zvc+other); share < 0.9 {
		t.Fatalf("ZVC share of compression decisions = %v, paper says ZVC dominates", share)
	}
}

func TestWriteAllCSV(t *testing.T) {
	dir := t.TempDir()
	if err := WriteAllCSV(Fast(1), dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.csv", "fig5.csv", "fig6.csv", "fig8.csv", "fig9.csv", "fig12.csv"} {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s unreadable: %v", name, err)
		}
		if len(rows) < 3 {
			t.Fatalf("%s has only %d rows", name, len(rows))
		}
		width := len(rows[0])
		for i, r := range rows {
			if len(r) != width {
				t.Fatalf("%s row %d ragged", name, i)
			}
		}
	}
}

func TestHeadlineStatsStableAcrossSeeds(t *testing.T) {
	r, err := HeadlineStats(Fast(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Seeds) != 3 {
		t.Fatalf("seeds = %d", len(r.Seeds))
	}
	mean, std := r.Summary(r.TrainReductionMean)
	if mean <= 0.02 {
		t.Fatalf("mean training reduction %v", mean)
	}
	// The jitter is 1 %; the metric must not swing wildly across seeds.
	if std > mean/2 {
		t.Fatalf("training reduction unstable: %v ± %v", mean, std)
	}
	if !strings.Contains(r.String(), "±") {
		t.Fatal("render missing ± summary")
	}
}

func TestExperimentRendersContainKeyFacts(t *testing.T) {
	cfg := Fast(1)
	f6, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := f6.String()
	for _, want := range []string{"Figure 6(a)", "Figure 6(d)", "CSWAP", "Orac", "OOM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 render missing %q", want)
		}
	}
	f7 := &Fig7Result{Platforms: f6.Platforms}
	if !strings.Contains(f7.String(), "Figure 7") {
		t.Error("Fig7 render missing caption")
	}
	f12, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out12 := f12.String()
	for _, want := range []string{"RD", "EP", "BO", "GS", "search evals"} {
		if !strings.Contains(out12, want) {
			t.Errorf("Fig12 render missing %q", want)
		}
	}
	ov, err := Overheads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ov.String(), "sparsity probe") {
		t.Error("overheads render missing probe line")
	}
	h, err := Headline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.String(), "swap-latency reduction") {
		t.Error("headline render missing metric")
	}
	ls, err := LinkSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ls.String(), "NVLink2") {
		t.Error("link sweep render missing NVLink row")
	}
}

func TestSparsitySweepCrossover(t *testing.T) {
	r, err := SparsitySweep(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Compressed count and speedup are non-decreasing in sparsity.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].CompressedTensors < r.Points[i-1].CompressedTensors {
			t.Fatalf("compressed count fell at sparsity %v", r.Points[i].Sparsity)
		}
		if r.Points[i].SpeedupOverVDNN < r.Points[i-1].SpeedupOverVDNN-0.02 {
			t.Fatalf("speedup fell at sparsity %v", r.Points[i].Sparsity)
		}
	}
	// At 10 % sparsity compression cannot pay; at 90 % it clearly does.
	if r.Points[0].CompressedTensors != 0 {
		t.Fatalf("compressed %d tensors at 10%% sparsity", r.Points[0].CompressedTensors)
	}
	last := r.Points[len(r.Points)-1]
	if last.CompressedTensors < 4 || last.SpeedupOverVDNN < 1.1 {
		t.Fatalf("at 90%%: compressed=%d speedup=%v", last.CompressedTensors, last.SpeedupOverVDNN)
	}
	// The crossover falls inside the paper's 20–80 % operating band.
	if c := r.Crossover(); c < 0.2 || c > 0.8 {
		t.Fatalf("crossover at %v, expected inside the 20–80%% band", c)
	}
	if !strings.Contains(r.String(), "crossover") {
		t.Fatal("render missing crossover")
	}
}

func TestAblationsConsolidated(t *testing.T) {
	r, err := Ablations(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	// The gate: CSWAP no slower than vDNN; SC present.
	vdnn := r.Metric("selective-gate", "vDNN")
	cswapMS := r.Metric("selective-gate", "CSWAP")
	if vdnn < 0 || cswapMS < 0 || cswapMS > vdnn*1.001 {
		t.Fatalf("gate ablation: vDNN=%v CSWAP=%v", vdnn, cswapMS)
	}
	// Tuning: BO beats expert.
	if r.Metric("launch-tuning", "BO-tuned") >= r.Metric("launch-tuning", "expert") {
		t.Fatal("BO-tuned not better than expert")
	}
	// Codec: ZVC-only is the best single-codec restriction.
	zvc := r.Metric("codec-choice", "ZVC-only")
	for _, other := range []string{"RLE-only", "CSR-only", "LZ4-only"} {
		if zvc > r.Metric("codec-choice", other)+1e-9 {
			t.Fatalf("ZVC-only (%v) slower than %s (%v)", zvc, other, r.Metric("codec-choice", other))
		}
	}
	// Pipelining helps the always-compress plan.
	if r.Metric("codec-stream", "pipelined") > r.Metric("codec-stream", "serial") {
		t.Fatal("pipelined codec slower than serial")
	}
	// Eager prefetch never hurts.
	if r.Metric("prefetch-policy", "eager") > r.Metric("prefetch-policy", "one-ahead")+1e-9 {
		t.Fatal("eager prefetch slower")
	}
	// Memory budget: more headroom, faster.
	if r.Metric("memory-budget", "budget=2x") > r.Metric("memory-budget", "swap-everything") {
		t.Fatal("memory budget did not help")
	}
	// Time model: bucketed at least as accurate as the global fit.
	if r.Metric("time-model", "bucketed-LR") > r.Metric("time-model", "global-LR") {
		t.Fatal("bucketed LR worse than global")
	}
	if r.Metric("nope", "x") != -1 {
		t.Fatal("missing metric should be -1")
	}
}

func TestIntroClaims(t *testing.T) {
	r, err := IntroClaims(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.BERTFootprintGB < 70 || r.BERTFootprintGB > 110 {
		t.Fatalf("BERT footprint %.0f GB, paper claims > 70 GB", r.BERTFootprintGB)
	}
	if r.BERTSwapTensors != 0 {
		t.Fatalf("BERT swap tensors = %d, GELU should yield none", r.BERTSwapTensors)
	}
	if r.VGG16FeatureToWeight < 40 || r.VGG16FeatureToWeight > 60 {
		t.Fatalf("feature/weight ratio %.0f, paper says ~50", r.VGG16FeatureToWeight)
	}
	if r.VGG16Batch256FootprintGB <= r.V100MemoryGB {
		t.Fatal("VGG16@256 should exceed V100 memory")
	}
	if !strings.Contains(r.String(), "BERT") {
		t.Fatal("render missing BERT line")
	}
}

func TestRemainingRenders(t *testing.T) {
	cfg := Fast(1)
	f3, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3.String(), "Figure 3") || !strings.Contains(f3.String(), "codec share") {
		t.Error("Fig3 render")
	}
	f5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5.String(), "Figure 5") || !strings.Contains(f5.String(), "best") {
		t.Error("Fig5 render")
	}
	f8, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f8.String(), "Figure 8") || !strings.Contains(f8.String(), "SqueezeNet") {
		t.Error("Fig8 render")
	}
	f10, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f10.String(), "Figure 10") || !strings.Contains(f10.String(), "SVM") {
		t.Error("Fig10 render")
	}
	ab, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ab.String(), "selective-gate") {
		t.Error("ablations render")
	}
	f11 := &Fig11Result{Models: []string{"VGG16"}, Accuracy: []float64{0.94}}
	if !strings.Contains(f11.String(), "94.0%") {
		t.Error("Fig11 render")
	}
	// Fig5 At() for an unsampled point.
	if f5.At(12345, 64) != -1 {
		t.Error("Fig5 At missing point should be -1")
	}
	// Config defaults at paper scale.
	def := Config{}.withDefaults()
	if def.SamplesPerAlg != 3000 || def.Epochs != 50 || def.EpochStride != 5 {
		t.Errorf("defaults %+v", def)
	}
}

func TestWriteCSVErrorPath(t *testing.T) {
	// Writing into a path that is a file must fail cleanly.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f5.WriteCSV(filepath.Join(blocked, "sub")); err == nil {
		t.Fatal("writing under a file should fail")
	}
}

func TestGenerationSweepGapPersists(t *testing.T) {
	r, err := GenerationSweep(Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	v100 := r.Points[0]
	// Section II-C: compute outpaces the bus, so the exposed-transfer
	// share grows across generations and compression keeps paying.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].StallShare <= v100.StallShare {
			t.Fatalf("%s stall share %v not above V100's %v",
				r.Points[i].Label, r.Points[i].StallShare, v100.StallShare)
		}
		if r.Points[i].SpeedupOverVDNN < v100.SpeedupOverVDNN {
			t.Fatalf("%s speedup %v below V100's %v — compression stopped paying",
				r.Points[i].Label, r.Points[i].SpeedupOverVDNN, v100.SpeedupOverVDNN)
		}
		if r.Points[i].CompressedTensors < v100.CompressedTensors {
			t.Fatalf("%s compresses fewer tensors than the V100", r.Points[i].Label)
		}
	}
	if !strings.Contains(r.String(), "H100") {
		t.Fatal("render missing generations")
	}
}

func TestFig6OrderingRobustToSeed(t *testing.T) {
	// The framework ordering must not be an artifact of one seed.
	r, err := Fig6(Fast(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.Platforms {
		for _, m := range p.Models() {
			if p.NormalizedThroughput(m, "CSWAP") < 0.97 {
				t.Errorf("seed 7: %s/%s %s CSWAP below vDNN", p.GPU, p.Dataset, m)
			}
			if p.NormalizedThroughput(m, "Orac") < p.NormalizedThroughput(m, "CSWAP")-1e-9 {
				t.Errorf("seed 7: %s/%s %s Orac below CSWAP", p.GPU, p.Dataset, m)
			}
			if p.NormalizedThroughput(m, "vDNN++") >= 0.85 {
				t.Errorf("seed 7: %s/%s %s vDNN++ too fast", p.GPU, p.Dataset, m)
			}
		}
	}
}
