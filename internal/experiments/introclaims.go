package experiments

import (
	"fmt"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
)

// IntroClaimsResult validates the quantitative claims of the paper's
// introduction and motivation sections against this repository's models.
type IntroClaimsResult struct {
	// BERTFootprintGB is BERT-large's batch-64 training footprint
	// (paper: "more than 70 GB").
	BERTFootprintGB float64
	// BERTSwapTensors is how many ReLU/MAX tensors CSWAP finds in BERT —
	// zero, because GELU activations carry no exact zeros.
	BERTSwapTensors int
	// VGG16FeatureToWeight is the Section III ratio at batch 256
	// (paper: ≈50×).
	VGG16FeatureToWeight float64
	// VGG16Batch256FootprintGB shows the Table III-adjacent workload
	// exceeding the V100's 32 GB.
	VGG16Batch256FootprintGB float64
	// V100MemoryGB anchors the comparison.
	V100MemoryGB float64
}

// IntroClaims computes the introduction-level numbers.
func IntroClaims(cfg Config) (*IntroClaimsResult, error) {
	bert, err := dnn.BuildBERT(dnn.BERTLarge, 64)
	if err != nil {
		return nil, err
	}
	bertTotal := bert.TrainingFootprint().Total()

	vgg256, err := dnn.Build("VGG16", dnn.ImageNet, 256)
	if err != nil {
		return nil, err
	}
	return &IntroClaimsResult{
		BERTFootprintGB:          float64(bertTotal) / 1e9,
		BERTSwapTensors:          len(bert.SwapTensors()),
		VGG16FeatureToWeight:     vgg256.FeatureToWeightRatio(),
		VGG16Batch256FootprintGB: float64(vgg256.TrainingFootprint().Total()) / 1e9,
		V100MemoryGB:             float64(gpu.V100().MemBytes) / 1e9,
	}, nil
}

// String renders the claim checklist.
func (r *IntroClaimsResult) String() string {
	return fmt.Sprintf(`Introduction / motivation claims
  BERT-large training footprint @ batch 64:  %.0f GB   (paper: "more than 70 GB")
  BERT swappable ReLU/MAX tensors:           %d        (GELU is dense; CSWAP correctly finds none)
  VGG16 feature-map/weight ratio @ 256:      %.0fx     (paper Section III: ~50x)
  VGG16 @ 256 footprint vs V100 memory:      %.0f GB vs %.0f GB (needs swapping)
`, r.BERTFootprintGB, r.BERTSwapTensors, r.VGG16FeatureToWeight,
		r.VGG16Batch256FootprintGB, r.V100MemoryGB)
}
