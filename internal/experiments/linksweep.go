package experiments

import (
	"fmt"

	"cswap/internal/core"
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/pcie"
	"cswap/internal/swap"
)

// LinkPoint is one interconnect configuration in the sensitivity sweep.
type LinkPoint struct {
	Label string
	// BWGBs is the d2h effective bandwidth in GB/s.
	BWGBs float64
	// SpeedupOverVDNN is CSWAP's throughput gain at this link.
	SpeedupOverVDNN float64
	// CompressedTensors is the advisor's epoch-45 compression count.
	CompressedTensors int
	// StallShare is the fraction of the vDNN iteration spent stalled.
	StallShare float64
}

// LinkSweepResult explores the paper's Section II-C claim that the
// compute/interconnect gap — not any specific bus generation — is what
// makes compression pay: as the link accelerates from PCIe 3.0 through
// gen4 to NVLink, exposed transfer shrinks, the advisor compresses fewer
// tensors, and CSWAP's advantage decays toward zero (it never goes
// negative: the cost model simply stops compressing).
type LinkSweepResult struct {
	Model  string
	Points []LinkPoint
}

// LinkSweep runs VGG16/V100 with the device's interconnect replaced by
// progressively faster links.
func LinkSweep(cfg Config) (*LinkSweepResult, error) {
	cfg = cfg.withDefaults()
	links := []struct {
		label string
		link  pcie.Link
	}{
		{"PCIe3-half", gpu.V100().Link.Scale(0.5)},
		{"PCIe3 (paper)", gpu.V100().Link},
		{"PCIe4", pcie.Gen4()},
		{"NVLink2", pcie.NVLink2()},
	}
	res := &LinkSweepResult{Model: "VGG16"}
	for _, lc := range links {
		d := gpu.V100()
		d.Link = lc.link
		m, err := dnn.Build("VGG16", dnn.ImageNet, 128)
		if err != nil {
			return nil, err
		}
		fw, err := core.New(core.Config{
			Model: m, Device: d, Epochs: cfg.Epochs,
			Seed: cfg.Seed, SamplesPerAlg: cfg.SamplesPerAlg,
		})
		if err != nil {
			return nil, err
		}
		np, err := fw.ProfileAt(45)
		if err != nil {
			return nil, err
		}
		opt := swap.DefaultOptions(cfg.Seed)
		rv, err := swap.Simulate(m, d, np, swap.VDNN{}.Plan(np, d), opt)
		if err != nil {
			return nil, err
		}
		plan := fw.Planner().Plan(np, d)
		rc, err := swap.Simulate(m, d, np, plan, opt)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, LinkPoint{
			Label:             lc.label,
			BWGBs:             lc.link.D2H / pcie.GB,
			SpeedupOverVDNN:   rv.IterationTime / rc.IterationTime,
			CompressedTensors: plan.CompressedCount(),
			StallShare:        rv.SwapExposed / rv.IterationTime,
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *LinkSweepResult) String() string {
	header := []string{"link", "d2h GB/s", "vDNN stall share", "CSWAP speedup", "compressed"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.1f", p.BWGBs),
			fmt.Sprintf("%.0f%%", p.StallShare*100),
			fmt.Sprintf("%.2fx", p.SpeedupOverVDNN),
			fmt.Sprintf("%d", p.CompressedTensors),
		})
	}
	return "Interconnect sweep (Section II-C extension) — " + r.Model + "\n" + table(header, rows)
}
