package experiments

import (
	"fmt"

	"cswap/internal/compress"
	"cswap/internal/core"
	"cswap/internal/dnn"
	"cswap/internal/regress"
	"cswap/internal/swap"
)

// AblationRow is one variant of one design-choice ablation.
type AblationRow struct {
	Ablation string
	Variant  string
	// Metric is the variant's score; Unit names it (usually iteration ms,
	// sometimes RAE %).
	Metric float64
	Unit   string
}

// AblationsResult consolidates the DESIGN.md §5 ablations into one table,
// the narrative companion to the Benchmark Ablation* benches.
type AblationsResult struct {
	Rows []AblationRow
}

// Ablations measures every design-choice ablation on a fixed workload
// (VGG16/V100/ImageNet at a late epoch unless noted).
func Ablations(cfg Config) (*AblationsResult, error) {
	cfg = cfg.withDefaults()
	res := &AblationsResult{}
	add := func(ablation, variant string, metric float64, unit string) {
		res.Rows = append(res.Rows, AblationRow{Ablation: ablation, Variant: variant, Metric: metric, Unit: unit})
	}

	fw, d, err := cfg.newFramework("VGG16", "V100", dnn.ImageNet)
	if err != nil {
		return nil, err
	}
	np, err := fw.ProfileAt(45)
	if err != nil {
		return nil, err
	}
	sim := func(plan *swap.Plan, opt swap.Options) (float64, error) {
		r, err := swap.Simulate(fw.Config.Model, d, np, plan, opt)
		if err != nil {
			return 0, err
		}
		return r.IterationTime * 1e3, nil
	}
	opt := swap.DefaultOptions(cfg.Seed)

	// 1. Selective vs always vs never.
	for _, fr := range []swap.Framework{swap.VDNN{}, swap.Static{Launch: fw.Launch}, fw.Planner()} {
		ms, err := sim(fr.Plan(np, d), opt)
		if err != nil {
			return nil, err
		}
		add("selective-gate", fr.Name(), ms, "iter-ms")
	}

	// 2. BO-tuned vs expert launch. The expert variant gets its own
	// deployment (predictor trained at the expert launch) so the ablation
	// isolates the launch choice, not a predictor/launch mismatch.
	fwExpert, err := core.New(core.Config{
		Model: fw.Config.Model, Device: d, Epochs: cfg.Epochs,
		Seed: cfg.Seed, SamplesPerAlg: cfg.SamplesPerAlg, SkipTuning: true,
	})
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		label   string
		planner swap.CSWAP
	}{
		{"BO-tuned", fw.Planner()},
		{"expert", fwExpert.Planner()},
	} {
		ms, err := sim(tc.planner.Plan(np, d), opt)
		if err != nil {
			return nil, err
		}
		add("launch-tuning", tc.label, ms, "iter-ms")
	}

	// 3. Codec restriction.
	for _, alg := range compress.Algorithms() {
		planner := swap.CSWAP{Predictor: fw.Predictor, Launch: fw.Launch,
			Algorithms: []compress.Algorithm{alg}}
		ms, err := sim(planner.Plan(np, d), opt)
		if err != nil {
			return nil, err
		}
		add("codec-choice", alg.String()+"-only", ms, "iter-ms")
	}

	// 4. Serial vs pipelined codec stream (on the always-compress plan,
	// where the effect is largest).
	scPlan := swap.Static{Launch: fw.Launch}.Plan(np, d)
	for _, tc := range []struct {
		label string
		o     swap.Options
	}{
		{"serial", opt},
		{"pipelined", swap.Options{Seed: opt.Seed, Jitter: opt.Jitter, Interference: opt.Interference, PipelinedCodec: true}},
	} {
		ms, err := sim(scPlan, tc.o)
		if err != nil {
			return nil, err
		}
		add("codec-stream", tc.label, ms, "iter-ms")
	}

	// 5. Prefetch policy.
	vdnnPlan := swap.VDNN{}.Plan(np, d)
	for _, tc := range []struct {
		label string
		o     swap.Options
	}{
		{"one-ahead", opt},
		{"eager", swap.Options{Seed: opt.Seed, Jitter: opt.Jitter, Interference: opt.Interference, EagerPrefetch: true}},
	} {
		ms, err := sim(vdnnPlan, tc.o)
		if err != nil {
			return nil, err
		}
		add("prefetch-policy", tc.label, ms, "iter-ms")
	}

	// 6. Memory budget around the CSWAP planner.
	var total int64
	for _, tp := range np.Tensors {
		total += tp.Bytes
	}
	for _, tc := range []struct {
		label  string
		budget int64
	}{
		{"swap-everything", 0},
		{"budget=activations", total},
		{"budget=2x", total * 2},
	} {
		ma := swap.MemoryAware{Inner: fw.Planner(), BudgetBytes: tc.budget, Model: fw.Config.Model}
		ms, err := sim(ma.Plan(np, d), opt)
		if err != nil {
			return nil, err
		}
		add("memory-budget", tc.label, ms, "iter-ms")
	}

	// 7. Bucketed vs global time model (RAE, not iteration time).
	ds := regress.Generate(d, compress.ZVC, fw.Launch, cfg.SamplesPerAlg, cfg.Seed+7)
	train, test := ds.Split(0.7, cfg.Seed)
	bC, _, err := regress.EvalRAE(func() regress.Model { return regress.NewBucketedLR() }, train, test)
	if err != nil {
		return nil, err
	}
	gC, _, err := regress.EvalRAE(func() regress.Model { return &regress.LinearRegression{} }, train, test)
	if err != nil {
		return nil, err
	}
	add("time-model", "bucketed-LR", bC*100, "RAE-%")
	add("time-model", "global-LR", gC*100, "RAE-%")
	ixC, _, err := regress.EvalRAE(func() regress.Model { return &regress.InteractionLR{} }, train, test)
	if err != nil {
		return nil, err
	}
	add("time-model", "interaction-LR", ixC*100, "RAE-%")

	return res, nil
}

// String renders the consolidated table.
func (r *AblationsResult) String() string {
	header := []string{"ablation", "variant", "metric", "unit"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Ablation, row.Variant, fmt.Sprintf("%.1f", row.Metric), row.Unit,
		})
	}
	return "Design-choice ablations (VGG16 / V100 / ImageNet, epoch 45)\n" + table(header, rows)
}

// Metric looks up one (ablation, variant) value, or -1 when absent.
func (r *AblationsResult) Metric(ablation, variant string) float64 {
	for _, row := range r.Rows {
		if row.Ablation == ablation && row.Variant == variant {
			return row.Metric
		}
	}
	return -1
}
