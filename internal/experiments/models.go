package experiments

import (
	"fmt"

	"cswap/internal/compress"
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/regress"
	"cswap/internal/stats"
)

// Fig10Row is one regression model's accuracy in Figure 10.
type Fig10Row struct {
	Model string // LR, BR, SVM, DT
	// CompRAE and DecompRAE are averaged over the four codecs.
	CompRAE   float64
	DecompRAE float64
}

// Fig10Result reproduces Figure 10: the relative absolute error of the
// four regression families predicting (de)compression time.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 trains and scores every model family on every codec's dataset
// (3000 samples each at paper scale, sparsity 20–90 %, sizes 20–2000 MB).
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	d := gpu.V100()
	launch := compress.Launch{Grid: 199, Block: 64}
	families := []struct {
		name string
		mk   func() regress.Model
	}{
		{"LR", func() regress.Model { return regress.NewBucketedLR() }},
		{"BR", func() regress.Model { return &regress.BayesianRidge{} }},
		{"SVM", func() regress.Model { return &regress.SVR{Seed: cfg.Seed} }},
		{"DT", func() regress.Model { return &regress.DecisionTree{} }},
	}
	res := &Fig10Result{}
	for _, fam := range families {
		var cs, dcs []float64
		for _, alg := range compress.Algorithms() {
			ds := regress.Generate(d, alg, launch, cfg.SamplesPerAlg, cfg.Seed+int64(alg))
			train, test := ds.Split(0.7, cfg.Seed)
			c, dc, err := regress.EvalRAE(fam.mk, train, test)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
			dcs = append(dcs, dc)
		}
		res.Rows = append(res.Rows, Fig10Row{
			Model:     fam.name,
			CompRAE:   stats.Mean(cs),
			DecompRAE: stats.Mean(dcs),
		})
	}
	return res, nil
}

// RAE returns the mean (comp+decomp)/2 RAE of a family.
func (r *Fig10Result) RAE(model string) float64 {
	for _, row := range r.Rows {
		if row.Model == model {
			return (row.CompRAE + row.DecompRAE) / 2
		}
	}
	return -1
}

// String renders the bar values.
func (r *Fig10Result) String() string {
	header := []string{"model", "compression RAE", "decompression RAE"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Model,
			fmt.Sprintf("%.1f%%", row.CompRAE*100),
			fmt.Sprintf("%.1f%%", row.DecompRAE*100),
		})
	}
	return "Figure 10 — (de)compression time prediction accuracy (RAE, lower is better)\n" +
		table(header, rows)
}

// Fig11Result reproduces Figure 11: per-model compression decision
// accuracy.
type Fig11Result struct {
	Models   []string
	Accuracy []float64
}

// Fig11 scores the advisor's decisions against measured ground truth for
// all six models on V100/ImageNet.
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig11Result{}
	for _, model := range dnn.ModelNames() {
		fw, _, err := cfg.newFramework(model, "V100", dnn.ImageNet)
		if err != nil {
			return nil, err
		}
		acc, err := fw.DecisionAccuracy(0.01)
		if err != nil {
			return nil, err
		}
		res.Models = append(res.Models, model)
		res.Accuracy = append(res.Accuracy, acc)
	}
	return res, nil
}

// Mean returns the average accuracy (the paper reports 94.2 %).
func (r *Fig11Result) Mean() float64 { return stats.Mean(r.Accuracy) }

// String renders the bars.
func (r *Fig11Result) String() string {
	header := []string{"model", "decision accuracy"}
	var rows [][]string
	for i, m := range r.Models {
		rows = append(rows, []string{m, fmt.Sprintf("%.1f%%", r.Accuracy[i]*100)})
	}
	return fmt.Sprintf("Figure 11 — compression decision accuracy (mean %.1f%%)\n%s",
		r.Mean()*100, table(header, rows))
}
