package experiments

import (
	"fmt"

	"cswap/internal/compress"
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/swap"
	"cswap/internal/trace"
)

// Fig2Timeline reproduces the execution-flow pictures of Figure 2 from
// simulated data: an ASCII timeline of one AlexNet iteration under (a) pure
// swapping (vDNN) and (b) swapping with static compression.
func Fig2Timeline(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	fw, d, err := cfg.newFramework("AlexNet", "V100", dnn.ImageNet)
	if err != nil {
		return "", err
	}
	np, err := fw.ProfileAt(25)
	if err != nil {
		return "", err
	}
	out := "Figure 2(a) — swapping without compression (vDNN)\n"
	tlA := &trace.Timeline{}
	if _, err := swap.Simulate(fw.Config.Model, d, np, swap.VDNN{}.Plan(np, d),
		swap.Options{Trace: tlA}); err != nil {
		return "", err
	}
	out += tlA.Render(100)
	out += "\nFigure 2(b) — swapping with tensor compression (SC/cDMA flow; C=compress, D=decompress)\n"
	tlB := &trace.Timeline{}
	if _, err := swap.Simulate(fw.Config.Model, d, np, swap.Static{Launch: fw.Launch}.Plan(np, d),
		swap.Options{Trace: tlB, Interference: swap.DefaultInterference}); err != nil {
		return "", err
	}
	out += tlB.Render(100)
	return out, nil
}

// Fig3Row is one layer of Figure 3.
type Fig3Row struct {
	Layer string
	// NoCompressMS is the swap time without compression (offload +
	// prefetch durations).
	NoCompressMS float64
	// TransferMS and CodecMS split the static-compression swap time into
	// data transfer and (de)compression, the stacked bar of the figure.
	TransferMS float64
	CodecMS    float64
}

// Fig3Result reproduces Figure 3: per-layer VGG16 swap time without
// compression versus with static compression (with its transfer/codec
// breakdown).
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 runs the comparison on V100/ImageNet VGG16 with the static scheme at
// the tuned launch, isolating the blind-compression effect the paper's
// Figure 3 shows: large sparse layers benefit, small or dense layers
// (MAX1–4, ReLU7–8) pay codec time for nothing.
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	fw, d, err := cfg.newFramework("VGG16", "V100", dnn.ImageNet)
	if err != nil {
		return nil, err
	}
	np, err := fw.ProfileAt(25)
	if err != nil {
		return nil, err
	}
	raw, err := swap.Simulate(fw.Config.Model, d, np, swap.VDNN{}.Plan(np, d), swap.Options{})
	if err != nil {
		return nil, err
	}
	sc, err := swap.Simulate(fw.Config.Model, d, np, swap.Static{Launch: fw.Launch}.Plan(np, d), swap.Options{})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{}
	for i := range np.Tensors {
		res.Rows = append(res.Rows, Fig3Row{
			Layer:        np.Tensors[i].Name,
			NoCompressMS: (raw.Tensors[i].OffloadDur + raw.Tensors[i].PrefetchDur) * 1e3,
			TransferMS:   (sc.Tensors[i].OffloadDur + sc.Tensors[i].PrefetchDur) * 1e3,
			CodecMS:      (sc.Tensors[i].CompDur + sc.Tensors[i].DecompDur) * 1e3,
		})
	}
	return res, nil
}

// CodecShare returns the average fraction of static-compression swap time
// spent in (de)compression — the paper reports ≈30 %.
func (r *Fig3Result) CodecShare() float64 {
	var codec, total float64
	for _, row := range r.Rows {
		codec += row.CodecMS
		total += row.TransferMS + row.CodecMS
	}
	if total == 0 {
		return 0
	}
	return codec / total
}

// WorseThanRaw lists layers whose static-compression swap time exceeds the
// uncompressed swap time (MAX1–4 and ReLU7–8 in the paper).
func (r *Fig3Result) WorseThanRaw() []string {
	var out []string
	for _, row := range r.Rows {
		if row.TransferMS+row.CodecMS > row.NoCompressMS {
			out = append(out, row.Layer)
		}
	}
	return out
}

// String renders the per-layer comparison.
func (r *Fig3Result) String() string {
	header := []string{"layer", "no-comp(ms)", "SC transfer(ms)", "SC codec(ms)", "SC total(ms)", "SC worse?"}
	var rows [][]string
	for _, row := range r.Rows {
		total := row.TransferMS + row.CodecMS
		worse := ""
		if total > row.NoCompressMS {
			worse = "yes"
		}
		rows = append(rows, []string{
			row.Layer,
			fmt.Sprintf("%.1f", row.NoCompressMS),
			fmt.Sprintf("%.1f", row.TransferMS),
			fmt.Sprintf("%.1f", row.CodecMS),
			fmt.Sprintf("%.1f", total),
			worse,
		})
	}
	return fmt.Sprintf("Figure 3 — VGG16 swap time, no compression vs static compression "+
		"(codec share %.0f%%)\n%s", r.CodecShare()*100, table(header, rows))
}

// Fig5Point is one sample of the kernel-time surface.
type Fig5Point struct {
	Grid    int
	Block   int
	TotalMS float64
}

// Fig5Result reproduces Figure 5: ZVC compression+decompression time versus
// grid size for block sizes 64 and 128 (500 MB tensor, 50 % sparsity).
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 sweeps the launch space on the V100 kernel model.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	d := gpu.V100()
	res := &Fig5Result{}
	grids := []int{1, 2, 4, 10, 20, 40, 80, 100, 128, 197, 256, 384, 512, 768, 1024, 2048, 4096}
	for _, block := range []int{64, 128} {
		for _, g := range grids {
			total := d.CompressionTimeTotal(kernelParams(g, block))
			res.Points = append(res.Points, Fig5Point{Grid: g, Block: block, TotalMS: total * 1e3})
		}
	}
	return res, nil
}

// Best returns the minimum point for a block size.
func (r *Fig5Result) Best(block int) Fig5Point {
	best := Fig5Point{TotalMS: -1}
	for _, p := range r.Points {
		if p.Block == block && (best.TotalMS < 0 || p.TotalMS < best.TotalMS) {
			best = p
		}
	}
	return best
}

// At returns the sampled value for (grid, block), or -1 when absent.
func (r *Fig5Result) At(grid, block int) float64 {
	for _, p := range r.Points {
		if p.Grid == grid && p.Block == block {
			return p.TotalMS
		}
	}
	return -1
}

// String renders the two series.
func (r *Fig5Result) String() string {
	header := []string{"grid", "block64(ms)", "block128(ms)"}
	var rows [][]string
	seen := map[int]bool{}
	for _, p := range r.Points {
		if seen[p.Grid] {
			continue
		}
		seen[p.Grid] = true
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Grid),
			fmt.Sprintf("%.1f", r.At(p.Grid, 64)),
			fmt.Sprintf("%.1f", r.At(p.Grid, 128)),
		})
	}
	b64 := r.Best(64)
	return fmt.Sprintf("Figure 5 — ZVC comp+decomp time vs launch geometry "+
		"(500 MB @ 50%% sparsity; best: %.1f ms at (%d,%d))\n%s",
		b64.TotalMS, b64.Grid, b64.Block, table(header, rows))
}

func kernelParams(grid, block int) gpu.KernelParams {
	return gpu.KernelParams{
		Alg:       compress.ZVC,
		SizeBytes: 500 << 20,
		Sparsity:  0.5,
		Launch:    compress.Launch{Grid: grid, Block: block},
	}
}
