package experiments

import (
	"fmt"
	"time"

	"cswap/internal/dnn"
	"cswap/internal/profiler"
)

// OverheadsResult reproduces the Section V-E accounting.
type OverheadsResult struct {
	// SparsityProbeMS is the modeled GPU cost of one per-epoch sparsity
	// refresh over VGG16's swappable tensors (paper: ≈8 ms).
	SparsityProbeMS float64
	// PredictionLatency is the measured wall-clock of one Time_c/Time_dc
	// prediction (paper: ≈1 ms on their host; here it is two dot
	// products).
	PredictionLatency time.Duration
	// ModelFitWall is the measured wall-clock of building the whole time
	// model including sample generation (paper: 4.5 min samples + 21 ms
	// fit on GPU hardware; our samples come from the kernel model).
	ModelFitWall time.Duration
	// BOEvaluations and BOModeledSeconds cost the pre-training search
	// (paper: ≈50 s, versus 3 h for a full grid search).
	BOEvaluations    int
	BOModeledSeconds float64
}

// Overheads measures the framework-construction costs on VGG16/V100.
func Overheads(cfg Config) (*OverheadsResult, error) {
	cfg = cfg.withDefaults()
	fw, d, err := cfg.newFramework("VGG16", "V100", dnn.ImageNet)
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, t := range fw.Profile.Tensors {
		bytes += t.Bytes
	}
	res := &OverheadsResult{
		SparsityProbeMS:  profiler.SparsityProbeOverhead(d, bytes) * 1e3,
		ModelFitWall:     fw.Overhead.PredictorTrainWall,
		BOEvaluations:    fw.Overhead.BOEvaluations,
		BOModeledSeconds: fw.Overhead.BOModeledSeconds,
	}
	// Time one online prediction.
	start := time.Now()
	const reps = 1000
	for i := 0; i < reps; i++ {
		if _, _, err := fw.Predictor.Predict(1, 500<<20, 0.5); err != nil {
			return nil, err
		}
	}
	res.PredictionLatency = time.Since(start) / reps
	return res, nil
}

// String renders the Section V-E numbers.
func (r *OverheadsResult) String() string {
	return fmt.Sprintf(`Section V-E — overheads
  per-epoch sparsity probe (VGG16):     %.1f ms   (paper: ~8 ms)
  one (de)compression time prediction:  %v   (paper: ~1 ms)
  time-model build (samples + fit):     %v   (paper: 4.5 min + 21 ms)
  BO search: %d evaluations, %.1f s of modeled GPU probes (paper: ~50 s vs 3 h grid search)
`, r.SparsityProbeMS, r.PredictionLatency, r.ModelFitWall,
		r.BOEvaluations, r.BOModeledSeconds)
}
