package experiments

import (
	"fmt"
	"sort"

	"cswap/internal/dnn"
	"cswap/internal/stats"
	"cswap/internal/swap"
)

// FrameworkNames is the Figure 6 comparison set in plotting order.
var FrameworkNames = []string{"vDNN", "vDNN++", "SC", "CSWAP", "Orac"}

// Cell is one (model, framework) measurement of Figure 6/7: iteration time
// and throughput averaged over the sampled epochs of a training run.
type Cell struct {
	IterationTime float64 // mean seconds per iteration
	Throughput    float64 // mean samples/second
	SwapExposed   float64 // mean un-hidden swap seconds per iteration
}

// PlatformResult holds one subfigure of Figure 6: every model × framework
// on one (GPU, dataset) pair.
type PlatformResult struct {
	GPU     string
	Dataset string
	// Cells[model][framework]; absent models did not fit in memory.
	Cells map[string]map[string]Cell
	// OOM lists models that cannot train on this platform (Plain20 on
	// 2080Ti/ImageNet).
	OOM []string
}

// NormalizedThroughput returns framework throughput / vDNN throughput for a
// model, the Figure 6 y-axis.
func (p *PlatformResult) NormalizedThroughput(model, framework string) float64 {
	base := p.Cells[model]["vDNN"].Throughput
	if base == 0 {
		return 0
	}
	return p.Cells[model][framework].Throughput / base
}

// Models returns the evaluated models in canonical order.
func (p *PlatformResult) Models() []string {
	var out []string
	for _, m := range dnn.ModelNames() {
		if _, ok := p.Cells[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// runPlatform measures every model × framework on one platform.
func runPlatform(cfg Config, gpuName string, ds dnn.Dataset) (*PlatformResult, error) {
	cfg = cfg.withDefaults()
	res := &PlatformResult{GPU: gpuName, Dataset: ds.Name, Cells: map[string]map[string]Cell{}}
	for _, model := range dnn.ModelNames() {
		fw, d, err := cfg.newFramework(model, gpuName, ds)
		if err == dnn.ErrOutOfMemory {
			res.OOM = append(res.OOM, model)
			continue
		}
		if err != nil {
			return nil, err
		}
		frameworks := []swap.Framework{
			swap.VDNN{},
			swap.VDNNPP{},
			swap.Static{Launch: fw.Launch},
			fw.Planner(),
			swap.Orac{Inner: fw.Planner()},
		}
		sums := map[string]*Cell{}
		grid := cfg.epochGrid()
		for _, epoch := range grid {
			np, err := fw.ProfileAt(epoch)
			if err != nil {
				return nil, err
			}
			opt := swap.DefaultOptions(cfg.Seed + int64(epoch)*31)
			for _, fr := range frameworks {
				r, err := swap.Simulate(fw.Config.Model, d, np, fr.Plan(np, d), opt)
				if err != nil {
					return nil, err
				}
				c := sums[fr.Name()]
				if c == nil {
					c = &Cell{}
					sums[fr.Name()] = c
				}
				c.IterationTime += r.IterationTime
				c.Throughput += r.Throughput
				c.SwapExposed += r.SwapExposed
			}
		}
		cells := map[string]Cell{}
		n := float64(len(grid))
		for name, c := range sums {
			cells[name] = Cell{
				IterationTime: c.IterationTime / n,
				Throughput:    c.Throughput / n,
				SwapExposed:   c.SwapExposed / n,
			}
		}
		res.Cells[model] = cells
	}
	return res, nil
}

// Fig6Result reproduces Figure 6: the four subfigures (a)–(d).
type Fig6Result struct {
	Platforms []*PlatformResult // (CIFAR10,V100), (CIFAR10,2080Ti), (ImageNet,V100), (ImageNet,2080Ti)
}

// Fig6 runs the full framework comparison.
func Fig6(cfg Config) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, ds := range []dnn.Dataset{dnn.CIFAR10, dnn.ImageNet} {
		for _, g := range []string{"V100", "2080Ti"} {
			p, err := runPlatform(cfg, g, ds)
			if err != nil {
				return nil, err
			}
			res.Platforms = append(res.Platforms, p)
		}
	}
	return res, nil
}

// Platform returns one subfigure.
func (r *Fig6Result) Platform(gpuName, dataset string) *PlatformResult {
	for _, p := range r.Platforms {
		if p.GPU == gpuName && p.Dataset == dataset {
			return p
		}
	}
	return nil
}

// String renders each subfigure as a normalized-throughput table.
func (r *Fig6Result) String() string {
	out := ""
	captions := map[string]string{
		"V100/CIFAR10": "(a)", "2080Ti/CIFAR10": "(b)",
		"V100/ImageNet": "(c)", "2080Ti/ImageNet": "(d)",
	}
	for _, p := range r.Platforms {
		header := append([]string{"model"}, FrameworkNames...)
		var rows [][]string
		for _, m := range p.Models() {
			row := []string{m}
			for _, f := range FrameworkNames {
				row = append(row, fmt.Sprintf("%.2f", p.NormalizedThroughput(m, f)))
			}
			rows = append(rows, row)
		}
		for _, m := range p.OOM {
			rows = append(rows, []string{m, "OOM", "OOM", "OOM", "OOM", "OOM"})
		}
		out += fmt.Sprintf("Figure 6%s — normalized throughput, %s + %s\n%s\n",
			captions[p.GPU+"/"+p.Dataset], p.Dataset, p.GPU, table(header, rows))
	}
	return out
}

// Fig7Result reproduces Figure 7: CSWAP's training-time improvement over
// static compression per model on each platform.
type Fig7Result struct {
	Platforms []*PlatformResult
}

// Fig7 reuses the Figure 6 measurements.
func Fig7(cfg Config) (*Fig7Result, error) {
	f6, err := Fig6(cfg)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Platforms: f6.Platforms}, nil
}

// Improvement returns CSWAP's relative training-time reduction over SC for
// one model on one platform: (t_SC − t_CSWAP) / t_SC.
func (r *Fig7Result) Improvement(gpuName, dataset, model string) float64 {
	for _, p := range r.Platforms {
		if p.GPU != gpuName || p.Dataset != dataset {
			continue
		}
		sc := p.Cells[model]["SC"].IterationTime
		cs := p.Cells[model]["CSWAP"].IterationTime
		if sc == 0 {
			return 0
		}
		return (sc - cs) / sc
	}
	return 0
}

// MeanImprovement averages the improvement over all models on one GPU
// (both datasets), the Figure 7 summary statistic.
func (r *Fig7Result) MeanImprovement(gpuName string) float64 {
	var vals []float64
	for _, p := range r.Platforms {
		if p.GPU != gpuName {
			continue
		}
		for _, m := range p.Models() {
			vals = append(vals, r.Improvement(gpuName, p.Dataset, m))
		}
	}
	return stats.Mean(vals)
}

// String renders per-platform improvements.
func (r *Fig7Result) String() string {
	header := []string{"platform"}
	header = append(header, dnn.ModelNames()...)
	var rows [][]string
	for _, p := range r.Platforms {
		row := []string{p.Dataset + "/" + p.GPU}
		for _, m := range dnn.ModelNames() {
			if _, ok := p.Cells[m]; !ok {
				row = append(row, "OOM")
				continue
			}
			row = append(row, fmt.Sprintf("%+.1f%%", r.Improvement(p.GPU, p.Dataset, m)*100))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Figure 7 — CSWAP improvement over static compression "+
		"(mean V100 %+.1f%%, 2080Ti %+.1f%%)\n%s",
		r.MeanImprovement("V100")*100, r.MeanImprovement("2080Ti")*100,
		table(header, rows))
}

// HeadlineResult aggregates the abstract's claims: swap-latency reduction
// and training-time reduction of CSWAP versus vDNN.
type HeadlineResult struct {
	// SwapLatencyReduction[gpu] is the best per-model relative reduction
	// of un-hidden swap latency (paper: up to 50.9 % on V100, 47.6 % on
	// 2080Ti).
	SwapLatencyReduction map[string]float64
	// TrainingTimeReductionMean and Max are over all model/platform cells
	// (paper: 20.7 % average, up to 34.6 %).
	TrainingTimeReductionMean float64
	TrainingTimeReductionMax  float64
}

// Headline computes the abstract-level metrics from the Figure 6 sweep.
func Headline(cfg Config) (*HeadlineResult, error) {
	f6, err := Fig6(cfg)
	if err != nil {
		return nil, err
	}
	res := &HeadlineResult{SwapLatencyReduction: map[string]float64{}}
	var reductions []float64
	for _, p := range f6.Platforms {
		for _, m := range p.Models() {
			v := p.Cells[m]["vDNN"]
			c := p.Cells[m]["CSWAP"]
			if v.IterationTime > 0 {
				red := (v.IterationTime - c.IterationTime) / v.IterationTime
				reductions = append(reductions, red)
				if red > res.TrainingTimeReductionMax {
					res.TrainingTimeReductionMax = red
				}
			}
			if v.SwapExposed > 0 {
				swapRed := (v.SwapExposed - c.SwapExposed) / v.SwapExposed
				if swapRed > res.SwapLatencyReduction[p.GPU] {
					res.SwapLatencyReduction[p.GPU] = swapRed
				}
			}
		}
	}
	res.TrainingTimeReductionMean = stats.Mean(reductions)
	return res, nil
}

// String renders the summary.
func (r *HeadlineResult) String() string {
	var gpus []string
	for g := range r.SwapLatencyReduction {
		gpus = append(gpus, g)
	}
	sort.Strings(gpus)
	out := "Headline metrics (CSWAP vs vDNN)\n"
	for _, g := range gpus {
		out += fmt.Sprintf("  max swap-latency reduction on %-7s %.1f%%\n", g+":", r.SwapLatencyReduction[g]*100)
	}
	out += fmt.Sprintf("  training-time reduction: mean %.1f%%, max %.1f%%\n",
		r.TrainingTimeReductionMean*100, r.TrainingTimeReductionMax*100)
	return out
}
