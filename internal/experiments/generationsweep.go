package experiments

import (
	"fmt"

	"cswap/internal/core"
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/pcie"
	"cswap/internal/swap"
)

// GenerationPoint is one GPU-generation operating point.
type GenerationPoint struct {
	Label string
	// ComputeX is effective training throughput relative to the V100;
	// LinkX is interconnect bandwidth relative to PCIe 3.0.
	ComputeX, LinkX   float64
	StallShare        float64
	SpeedupOverVDNN   float64
	CompressedTensors int
}

// GenerationSweepResult tests the paper's Section II-C prediction: "we
// think the performance gap between I/O bus and GPU computing to be
// continued in the future despite the emerging PCIe gen4 and NVLink
// techniques". Each point scales a hypothetical device's effective
// training throughput and its interconnect per the historical trend
// (compute grows faster than the bus), then redeploys CSWAP end to end —
// BO retune, time-model retrain, fresh profile.
type GenerationSweepResult struct {
	Model  string
	Points []GenerationPoint
}

// GenerationSweep runs VGG16 across three device generations.
func GenerationSweep(cfg Config) (*GenerationSweepResult, error) {
	cfg = cfg.withDefaults()
	gens := []struct {
		label              string
		computeX, kernelsX float64 // training compute / codec kernels vs V100
		link               pcie.Link
		linkX              float64
	}{
		// The V100/PCIe3 baseline of the paper.
		{"V100+PCIe3", 1, 1, gpu.V100().Link, 1},
		// An A100-like generation: mixed-precision training ≈4× the
		// V100, codec kernels ≈2× (they are memory-bound), PCIe 4.0.
		{"A100+PCIe4", 4, 2, pcie.Gen4(), 2},
		// An H100-like generation: ≈10× training compute, ≈3.5× memory
		// bandwidth for the kernels, PCIe 5.0 (≈2× gen4).
		{"H100+PCIe5", 10, 3.5, pcie.Gen4().Scale(2), 4},
	}
	res := &GenerationSweepResult{Model: "VGG16"}
	for _, g := range gens {
		d := gpu.V100()
		d.Name = g.label
		d.PeakFLOPS *= g.computeX
		d.MemBandwidth *= g.computeX // activations scale with the tensor cores
		d.Link = g.link
		d.SetKernelScale(1 / g.kernelsX)

		m, err := dnn.Build("VGG16", dnn.ImageNet, 128)
		if err != nil {
			return nil, err
		}
		fw, err := core.New(core.Config{
			Model: m, Device: d, Epochs: cfg.Epochs,
			Seed: cfg.Seed, SamplesPerAlg: cfg.SamplesPerAlg,
		})
		if err != nil {
			return nil, err
		}
		np, err := fw.ProfileAt(45)
		if err != nil {
			return nil, err
		}
		opt := swap.DefaultOptions(cfg.Seed)
		rv, err := swap.Simulate(m, d, np, swap.VDNN{}.Plan(np, d), opt)
		if err != nil {
			return nil, err
		}
		plan := fw.Planner().Plan(np, d)
		rc, err := swap.Simulate(m, d, np, plan, opt)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, GenerationPoint{
			Label:             g.label,
			ComputeX:          g.computeX,
			LinkX:             g.linkX,
			StallShare:        rv.SwapExposed / rv.IterationTime,
			SpeedupOverVDNN:   rv.IterationTime / rc.IterationTime,
			CompressedTensors: plan.CompressedCount(),
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *GenerationSweepResult) String() string {
	header := []string{"generation", "compute", "link", "vDNN stall share", "CSWAP speedup", "compressed"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.0fx", p.ComputeX),
			fmt.Sprintf("%.0fx", p.LinkX),
			fmt.Sprintf("%.0f%%", p.StallShare*100),
			fmt.Sprintf("%.2fx", p.SpeedupOverVDNN),
			fmt.Sprintf("%d", p.CompressedTensors),
		})
	}
	return "GPU-generation sweep (Section II-C prediction) — " + r.Model + "\n" + table(header, rows)
}
