// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section V), plus the Section V-E overhead accounting
// and the headline metrics. Each driver is deterministic in its seed and
// returns a structured result with a String method that renders the same
// rows/series the paper reports; the cmd/ tools print them and the root
// benchmarks regenerate them.
package experiments

import (
	"fmt"
	"strings"

	"cswap/internal/core"
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/metrics"
)

// Config controls experiment scale. The zero value runs at paper scale;
// Fast() shrinks sample counts and epoch grids for tests and quick runs.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// SamplesPerAlg sizes the regression training sets (default 3000).
	SamplesPerAlg int
	// EpochStride subsamples the 50-epoch grid for iteration-level
	// experiments (default 5 → epochs 0,5,...,45).
	EpochStride int
	// Epochs is the training-run length (default 50).
	Epochs int
	// Observer, when non-nil, is threaded into every deployment an
	// experiment builds, accumulating metrics across workloads.
	Observer *metrics.Observer
}

func (c Config) withDefaults() Config {
	if c.SamplesPerAlg == 0 {
		c.SamplesPerAlg = 3000
	}
	if c.EpochStride <= 0 {
		c.EpochStride = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	return c
}

// Fast returns a reduced-scale configuration for quick runs: smaller
// regression sample sets and a coarser epoch grid. The experiment *shapes*
// are unchanged.
func Fast(seed int64) Config {
	return Config{Seed: seed, SamplesPerAlg: 400, EpochStride: 10}
}

// newFramework builds the CSWAP deployment for one workload.
func (c Config) newFramework(model, gpuName string, ds dnn.Dataset) (*core.Framework, *gpu.Device, error) {
	d, err := gpu.ByName(gpuName)
	if err != nil {
		return nil, nil, err
	}
	m, err := dnn.BuildConfigured(model, gpuName, ds)
	if err != nil {
		return nil, nil, err
	}
	fw, err := core.New(core.Config{
		Model:         m,
		Device:        d,
		Epochs:        c.Epochs,
		Seed:          c.Seed,
		SamplesPerAlg: c.SamplesPerAlg,
		Observer:      c.Observer,
	})
	if err != nil {
		return nil, nil, err
	}
	return fw, d, nil
}

// epochGrid returns the subsampled epochs an iteration-level experiment
// simulates.
func (c Config) epochGrid() []int {
	var out []int
	for e := 0; e < c.Epochs; e += c.EpochStride {
		out = append(out, e)
	}
	return out
}

// table renders rows as fixed-width columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
