package experiments

import (
	"fmt"

	"cswap/internal/dnn"
	"cswap/internal/swap"
)

// SparsityPoint is one operating point of the sparsity sweep.
type SparsityPoint struct {
	Sparsity          float64
	CompressedTensors int
	SpeedupOverVDNN   float64
	// ZVCRatio is the modeled compressed fraction at this sparsity.
	ZVCRatio float64
}

// SparsitySweepResult maps out where selective compression starts paying:
// every swappable tensor of the workload is pinned to one sparsity level
// and the advisor re-plans. Low sparsity → compression can't beat the
// kernel cost and CSWAP degenerates to vDNN; high sparsity → most large
// tensors compress and the speedup saturates. The crossover locates the
// paper's 20–80 % operating band.
type SparsitySweepResult struct {
	Model  string
	Points []SparsityPoint
}

// SparsitySweep runs VGG16/V100 at pinned sparsity levels.
func SparsitySweep(cfg Config) (*SparsitySweepResult, error) {
	cfg = cfg.withDefaults()
	fw, d, err := cfg.newFramework("VGG16", "V100", dnn.ImageNet)
	if err != nil {
		return nil, err
	}
	res := &SparsitySweepResult{Model: "VGG16"}
	for _, s := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		np, err := fw.ProfileAt(0)
		if err != nil {
			return nil, err
		}
		for i := range np.Tensors {
			np.Tensors[i].Sparsity = s
		}
		plan := fw.Planner().Plan(np, d)
		opt := swap.DefaultOptions(cfg.Seed + int64(s*100))
		rc, err := swap.Simulate(fw.Config.Model, d, np, plan, opt)
		if err != nil {
			return nil, err
		}
		rv, err := swap.Simulate(fw.Config.Model, d, np, swap.VDNN{}.Plan(np, d), opt)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, SparsityPoint{
			Sparsity:          s,
			CompressedTensors: plan.CompressedCount(),
			SpeedupOverVDNN:   rv.IterationTime / rc.IterationTime,
			ZVCRatio:          zvcRatio(s),
		})
	}
	return res, nil
}

func zvcRatio(s float64) float64 { return (1 - s) + 1.0/32 }

// Crossover returns the lowest swept sparsity at which any tensor
// compresses, or -1 when none ever does.
func (r *SparsitySweepResult) Crossover() float64 {
	for _, p := range r.Points {
		if p.CompressedTensors > 0 {
			return p.Sparsity
		}
	}
	return -1
}

// String renders the sweep.
func (r *SparsitySweepResult) String() string {
	header := []string{"sparsity", "ZVC ratio", "compressed", "CSWAP speedup"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.Sparsity*100),
			fmt.Sprintf("%.2f", p.ZVCRatio),
			fmt.Sprintf("%d", p.CompressedTensors),
			fmt.Sprintf("%.2fx", p.SpeedupOverVDNN),
		})
	}
	return fmt.Sprintf("Sparsity sweep (pinned sparsity, %s/V100) — compression crossover at %.0f%%\n%s",
		r.Model, r.Crossover()*100, table(header, rows))
}
