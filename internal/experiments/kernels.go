package experiments

import (
	"fmt"

	"cswap/internal/bayesopt"
	"cswap/internal/compress"
	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/stats"
	"cswap/internal/swap"
)

// Fig12Row is one search strategy's outcome.
type Fig12Row struct {
	Strategy string // RD, EP, BO, GS
	Launch   compress.Launch
	// CodecMS is the per-iteration compression+decompression time under
	// the found launch; RestMS is everything else (compute, transfers,
	// stalls).
	CodecMS float64
	RestMS  float64
	// SearchEvaluations is the number of objective evaluations the
	// strategy spent (the 224× BO-vs-GS cost claim).
	SearchEvaluations int
}

// Fig12Result reproduces Figure 12: the average VGG16 iteration time under
// the four GPU-parameter search strategies, with the codec/rest breakdown,
// plus the search costs.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 tunes the launch with each strategy, applies it to the tuned CSWAP
// compression set for VGG16 (V100/ImageNet), and simulates one iteration.
func Fig12(cfg Config) (*Fig12Result, error) {
	cfg = cfg.withDefaults()
	fw, d, err := cfg.newFramework("VGG16", "V100", dnn.ImageNet)
	if err != nil {
		return nil, err
	}
	epoch := cfg.Epochs - 1
	np, err := fw.ProfileAt(epoch)
	if err != nil {
		return nil, err
	}
	basePlan := fw.Planner().Plan(np, d)

	rng := stats.NewRNG(cfg.Seed + 11)
	objective := func(l compress.Launch) float64 {
		c, dc := d.CompressionTimeNoisy(rng, gpu.KernelParams{
			Alg: compress.ZVC, SizeBytes: 500 << 20, Sparsity: 0.5, Launch: l,
		})
		return c + dc
	}
	searchers := []bayesopt.Searcher{
		&bayesopt.RandomSearch{Seed: cfg.Seed + 12},
		&bayesopt.Expert{Launch: d.DefaultLaunch()},
		&bayesopt.BO{Seed: cfg.Seed},
		&bayesopt.GridSearch{},
	}
	res := &Fig12Result{}
	for _, s := range searchers {
		sr := s.Search(objective)
		// Re-cost the tuned compression set at this strategy's launch.
		plan := &swap.Plan{Framework: s.Name(), Tensors: append([]swap.TensorPlan(nil), basePlan.Tensors...)}
		for i := range plan.Tensors {
			if !plan.Tensors[i].Compress {
				continue
			}
			c, dc := d.CompressionTime(gpu.KernelParams{
				Alg:       plan.Tensors[i].Alg,
				SizeBytes: np.Tensors[i].Bytes,
				Sparsity:  np.Tensors[i].Sparsity,
				Launch:    sr.Best,
			})
			plan.Tensors[i].TimeC = c
			plan.Tensors[i].TimeDC = dc
		}
		r, err := swap.Simulate(fw.Config.Model, d, np, plan, swap.DefaultOptions(cfg.Seed+21))
		if err != nil {
			return nil, err
		}
		codec := r.KernelBusy
		res.Rows = append(res.Rows, Fig12Row{
			Strategy:          s.Name(),
			Launch:            sr.Best,
			CodecMS:           codec * 1e3,
			RestMS:            (r.IterationTime - codec) * 1e3,
			SearchEvaluations: sr.Evaluations,
		})
	}
	return res, nil
}

// Row returns the entry for a strategy.
func (r *Fig12Result) Row(strategy string) Fig12Row {
	for _, row := range r.Rows {
		if row.Strategy == strategy {
			return row
		}
	}
	return Fig12Row{}
}

// SearchCostRatio returns GS evaluations / BO evaluations (paper: ≈224×).
func (r *Fig12Result) SearchCostRatio() float64 {
	bo := r.Row("BO").SearchEvaluations
	gs := r.Row("GS").SearchEvaluations
	if bo == 0 {
		return 0
	}
	return float64(gs) / float64(bo)
}

// String renders the stacked bars and search costs.
func (r *Fig12Result) String() string {
	header := []string{"strategy", "launch", "codec(ms)", "rest(ms)", "total(ms)", "search evals"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy,
			row.Launch.String(),
			fmt.Sprintf("%.1f", row.CodecMS),
			fmt.Sprintf("%.1f", row.RestMS),
			fmt.Sprintf("%.1f", row.CodecMS+row.RestMS),
			fmt.Sprintf("%d", row.SearchEvaluations),
		})
	}
	return fmt.Sprintf("Figure 12 — VGG16 iteration time per GPU-setting search strategy "+
		"(BO saves %.0f× search cost vs grid search)\n%s",
		r.SearchCostRatio(), table(header, rows))
}
