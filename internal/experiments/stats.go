package experiments

import (
	"fmt"

	"cswap/internal/stats"
)

// HeadlineStatsResult aggregates the headline metrics over several seeds —
// the mean ± std reporting a credible evaluation uses instead of a single
// lucky run.
type HeadlineStatsResult struct {
	Seeds []int64
	// Per-seed series.
	TrainReductionMean []float64
	TrainReductionMax  []float64
	SwapReductionV100  []float64
}

// HeadlineStats runs the headline sweep at n different seeds.
func HeadlineStats(cfg Config, n int) (*HeadlineStatsResult, error) {
	if n <= 0 {
		n = 3
	}
	res := &HeadlineStatsResult{}
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000
		h, err := Headline(c)
		if err != nil {
			return nil, err
		}
		res.Seeds = append(res.Seeds, c.Seed)
		res.TrainReductionMean = append(res.TrainReductionMean, h.TrainingTimeReductionMean)
		res.TrainReductionMax = append(res.TrainReductionMax, h.TrainingTimeReductionMax)
		res.SwapReductionV100 = append(res.SwapReductionV100, h.SwapLatencyReduction["V100"])
	}
	return res, nil
}

// Summary returns mean and standard deviation of a series.
func (r *HeadlineStatsResult) Summary(series []float64) (mean, std float64) {
	return stats.Mean(series), stats.StdDev(series)
}

// String renders the mean ± std lines.
func (r *HeadlineStatsResult) String() string {
	fm := func(series []float64) string {
		m, s := r.Summary(series)
		return fmt.Sprintf("%5.1f%% ± %.1f", m*100, s*100)
	}
	return fmt.Sprintf(`Headline metrics over %d seeds (mean ± std)
  training-time reduction (mean over cells): %s
  training-time reduction (max over cells):  %s
  V100 max swap-latency reduction:           %s
`, len(r.Seeds), fm(r.TrainReductionMean), fm(r.TrainReductionMax), fm(r.SwapReductionV100))
}
