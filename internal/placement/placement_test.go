package placement

import (
	"fmt"
	"testing"
)

// keys synthesises a deterministic tenant/tensor key population shaped
// like real traffic: a handful of tenants, each with a run of layer
// activations.
func keys(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%7)
		out = append(out, Key(tenant, fmt.Sprintf("layer%d/act%d", i%53, i)))
	}
	return out
}

// TestDistributionWithinBand pins the acceptance bound: at 10k keys every
// shard's share stays within ±20% of uniform, for every cluster size the
// daemon plausibly runs.
func TestDistributionWithinBand(t *testing.T) {
	const n = 10000
	ks := keys(n)
	for shards := 2; shards <= 8; shards++ {
		ids := make([]int, shards)
		for i := range ids {
			ids[i] = i
		}
		ring := NewRing(ids, 0)
		counts := map[int]int{}
		for _, k := range ks {
			owner, ok := ring.Owner(k)
			if !ok {
				t.Fatalf("%d shards: no owner for %q", shards, k)
			}
			counts[owner]++
		}
		uniform := float64(n) / float64(shards)
		for _, id := range ids {
			got := float64(counts[id])
			if got < 0.8*uniform || got > 1.2*uniform {
				t.Errorf("%d shards: shard %d owns %v keys, want within ±20%% of %v",
					shards, id, got, uniform)
			}
		}
	}
}

// TestStableUnderRemoval is consistent hashing's contract: removing a
// shard moves exactly the keys it owned — every other key keeps its owner.
func TestStableUnderRemoval(t *testing.T) {
	ks := keys(10000)
	before := NewRing([]int{0, 1, 2, 3}, 0)
	after := NewRing([]int{0, 1, 3}, 0) // shard 2 drained
	moved := 0
	for _, k := range ks {
		was, _ := before.Owner(k)
		now, _ := after.Owner(k)
		if was != 2 && now != was {
			t.Fatalf("key %q moved %d→%d though shard 2 was removed", k, was, now)
		}
		if was == 2 {
			if now == 2 {
				t.Fatalf("key %q still owned by removed shard 2", k)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed shard; test is vacuous")
	}
}

// TestStableUnderAddition mirrors removal: a new shard captures keys but
// never shuffles keys between pre-existing shards.
func TestStableUnderAddition(t *testing.T) {
	ks := keys(10000)
	before := NewRing([]int{0, 1, 2}, 0)
	after := NewRing([]int{0, 1, 2, 3}, 0)
	captured := 0
	for _, k := range ks {
		was, _ := before.Owner(k)
		now, _ := after.Owner(k)
		if now != was && now != 3 {
			t.Fatalf("key %q moved %d→%d though only shard 3 was added", k, was, now)
		}
		if now == 3 {
			captured++
		}
	}
	// The new shard should take roughly its fair quarter.
	if captured < 1500 || captured > 3500 {
		t.Errorf("added shard captured %d of 10000 keys, want roughly 2500", captured)
	}
}

// TestDeterminism: two independently built rings from the same map agree
// on every key — the property that lets client and server route without
// coordination.
func TestDeterminism(t *testing.T) {
	a := NewRing([]int{0, 1, 2}, 128)
	b := NewRing([]int{0, 1, 2}, 128)
	for _, k := range keys(1000) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("rings disagree on %q: %d vs %d", k, oa, ob)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	if _, ok := NewRing(nil, 0).Owner("x"); ok {
		t.Error("empty ring claimed an owner")
	}
	var nilRing *Ring
	if _, ok := nilRing.Owner("x"); ok {
		t.Error("nil ring claimed an owner")
	}
}

func TestMapHelpers(t *testing.T) {
	m := &Map{Version: 3, Shards: []Shard{
		{ID: 0, State: StateActive},
		{ID: 1, State: StateDraining},
		{ID: 2, State: StateActive},
	}}
	ids := m.ActiveIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("ActiveIDs = %v, want [0 2]", ids)
	}
	ring := m.Ring()
	for _, k := range keys(1000) {
		owner, ok := ring.Owner(k)
		if !ok || owner == 1 {
			t.Fatalf("map ring placed %q on draining shard (owner=%d ok=%v)", k, owner, ok)
		}
	}
	if got := Key("a", "t0"); got != "a/t0" {
		t.Errorf("Key = %q, want a/t0", got)
	}
}
