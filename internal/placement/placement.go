// Package placement is the cluster's consistent-hash tensor placement:
// the shared routing arithmetic that decides which executor shard owns a
// (tenant, tensor) key. Both sides of the wire import it — the server's
// cluster router to dispatch requests and validate client hints, and the
// cluster-aware client to pick a shard before sending — so a key hashes
// to the same owner everywhere as long as both hold the same shard map.
//
// The ring is classic consistent hashing with virtual nodes: every shard
// projects Replicas points onto a 64-bit circle, and a key belongs to the
// first shard point at or clockwise of its own hash. Removing a shard
// moves only the keys that shard owned (they slide to their clockwise
// successors); adding one moves only the keys the new points capture.
// That minimal-movement property is what makes live rebalancing tractable:
// a drain migrates one shard's tensors and leaves every other tensor
// exactly where it was.
//
// The Map type is the serialized shard map the server publishes on its
// /cluster endpoint and the client discovers: shard IDs with their serving
// state, the replica count (both ends must build identical rings), and a
// version that bumps on every topology change so stale clients can tell
// their routing is out of date.
package placement

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per shard when a Map carries
// zero. 256 points per shard keeps the load split across shards within a
// few percent of uniform at 10k keys — comfortably inside the ±20% band
// the cluster's admission sizing assumes.
const DefaultReplicas = 256

// Shard states carried in a Map. Only active shards project ring points;
// a draining shard still serves its not-yet-migrated tensors but receives
// no new placements, and a drained shard is gone for every purpose.
const (
	StateActive   = "active"
	StateDraining = "draining"
	StateDrained  = "drained"
)

// Shard is one executor shard's entry in the cluster map.
type Shard struct {
	ID    int    `json:"id"`
	State string `json:"state"`
}

// Map is the cluster topology a server publishes and a client routes by.
type Map struct {
	// Version increments on every topology change (shard drain, add).
	// Clients cache the map and refresh when the server refuses a stale
	// routing hint.
	Version int `json:"version"`
	// Replicas is the virtual-node count per shard; both ends must use the
	// same value or their rings disagree. Zero means DefaultReplicas.
	Replicas int `json:"replicas"`
	Shards   []Shard `json:"shards"`
}

// ActiveIDs returns the IDs of shards that accept placements.
func (m *Map) ActiveIDs() []int {
	var ids []int
	for _, s := range m.Shards {
		if s.State == StateActive {
			ids = append(ids, s.ID)
		}
	}
	return ids
}

// Ring returns the consistent-hash ring over the map's active shards.
func (m *Map) Ring() *Ring {
	return NewRing(m.ActiveIDs(), m.Replicas)
}

// Key builds the placement key for a tenant's tensor — the same qualified
// name the server uses to namespace tensors on the executor, so placement
// and storage agree on identity.
func Key(tenant, name string) string { return tenant + "/" + name }

// point is one virtual node: a position on the hash circle owned by a shard.
type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring. Build one per topology
// version and share it freely; lookups are lock-free.
type Ring struct {
	replicas int
	points   []point // sorted by hash
}

// NewRing builds a ring with the given replica count per shard (zero
// selects DefaultReplicas). An empty shard list yields a ring that owns
// nothing.
func NewRing(shards []int, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{
		replicas: replicas,
		points:   make([]point, 0, len(shards)*replicas),
	}
	for _, id := range shards {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(vnodeKey(id, v)), shard: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between two shards' points is vanishingly
		// unlikely, but the tie must still break deterministically on both
		// ends of the wire.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// vnodeKey names one virtual node. The format is part of the protocol:
// client and server must derive identical point positions.
func vnodeKey(shard, replica int) string {
	return fmt.Sprintf("shard-%d#%d", shard, replica)
}

// hash64 is FNV-1a finished with a splitmix64 avalanche, chosen for
// determinism and zero dependencies; the ring needs spread, not
// adversarial collision resistance (tensor names come from the tenant
// that owns them — a tenant can only skew its own placement). Raw FNV-1a
// diffuses poorly over the short, similar strings vnode and tensor keys
// are, leaving the circle's arcs lopsided; the finalizer restores the
// near-uniform spread the ±20% placement band depends on.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the shard owning key. ok is false on an empty ring.
func (r *Ring) Owner(key string) (shard int, ok bool) {
	if r == nil || len(r.points) == 0 {
		return 0, false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point succeeds its last
	}
	return r.points[i].shard, true
}

// Shards returns the distinct shard IDs on the ring, ascending.
func (r *Ring) Shards() []int {
	if r == nil {
		return nil
	}
	seen := map[int]bool{}
	var ids []int
	for _, p := range r.points {
		if !seen[p.shard] {
			seen[p.shard] = true
			ids = append(ids, p.shard)
		}
	}
	sort.Ints(ids)
	return ids
}

// Replicas returns the ring's virtual-node count per shard.
func (r *Ring) Replicas() int {
	if r == nil {
		return 0
	}
	return r.replicas
}
