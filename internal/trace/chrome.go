package trace

import (
	"encoding/json"
	"fmt"
)

// Chrome trace-event export: the timeline renders natively in
// chrome://tracing and Perfetto, which is how one inspects real GPU
// profiles — handy when comparing simulated schedules against intuition.

// chromeEvent is one entry of the Trace Event Format (phase "X" = complete
// event with duration; "M" = metadata).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace serialises the timeline in Chrome trace-event JSON (an array
// of events; load via chrome://tracing or ui.perfetto.dev).
func (t *Timeline) ChromeTrace() ([]byte, error) {
	streams := t.Streams()
	tid := map[string]int{}
	events := []chromeEvent{} // non-nil so an empty timeline exports [] not null
	for i, s := range streams {
		tid[s] = i
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]string{"name": s},
		})
	}
	for _, sp := range t.Spans {
		events = append(events, chromeEvent{
			Name: sp.Label,
			Ph:   "X",
			Ts:   sp.Start * 1e6,
			Dur:  (sp.End - sp.Start) * 1e6,
			Pid:  1,
			Tid:  tid[sp.Stream],
		})
	}
	out, err := json.Marshal(events)
	if err != nil {
		return nil, fmt.Errorf("trace: chrome export: %w", err)
	}
	return out, nil
}
