package trace

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestAddAndAggregate(t *testing.T) {
	tl := &Timeline{}
	tl.Add("compute", "F:conv1", 0, 2)
	tl.Add("d2h", "o:ReLU1", 1, 4)
	tl.Add("compute", "F:conv2", 2, 3)
	if got := tl.Horizon(); got != 4 {
		t.Fatalf("Horizon = %v", got)
	}
	if got := tl.Busy("compute"); got != 3 {
		t.Fatalf("Busy(compute) = %v", got)
	}
	if got := tl.Busy("d2h"); got != 3 {
		t.Fatalf("Busy(d2h) = %v", got)
	}
	streams := tl.Streams()
	if len(streams) != 2 || streams[0] != "compute" || streams[1] != "d2h" {
		t.Fatalf("Streams = %v", streams)
	}
}

func TestAddPanicsOnInvertedSpan(t *testing.T) {
	tl := &Timeline{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tl.Add("x", "y", 5, 4)
}

func TestAddCheckedRejectsBadSpansWithoutPanic(t *testing.T) {
	tl := &Timeline{}
	bad := [][2]float64{
		{5, 4},
		{math.NaN(), 1},
		{0, math.NaN()},
		{math.Inf(1), math.Inf(1)},
		{0, math.Inf(1)},
	}
	for _, b := range bad {
		err := tl.AddChecked("x", "y", b[0], b[1])
		if !errors.Is(err, ErrInvalidSpan) {
			t.Fatalf("AddChecked(%v, %v) = %v, want ErrInvalidSpan", b[0], b[1], err)
		}
	}
	if len(tl.Spans) != 0 {
		t.Fatalf("bad spans were recorded: %v", tl.Spans)
	}
	if err := tl.AddChecked("x", "y", 1, 1); err != nil {
		t.Fatalf("zero-length span rejected: %v", err)
	}
	if err := tl.AddChecked("x", "y", 1, 2); err != nil {
		t.Fatalf("valid span rejected: %v", err)
	}
	if len(tl.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(tl.Spans))
	}
}

func TestEmptyChromeTraceIsArray(t *testing.T) {
	blob, err := (&Timeline{}).ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "[]" {
		t.Fatalf("empty trace = %s, want []", blob)
	}
}

func TestRenderContainsStreamsAndMarks(t *testing.T) {
	tl := &Timeline{}
	tl.Add("compute", "F:conv1", 0, 5)
	tl.Add("d2h", "o:ReLU1", 5, 10)
	out := tl.Render(40)
	if !strings.Contains(out, "compute") || !strings.Contains(out, "d2h") {
		t.Fatalf("missing stream rows:\n%s", out)
	}
	if !strings.Contains(out, "F") || !strings.Contains(out, "o") {
		t.Fatalf("missing span marks:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two streams + axis
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderEmptyAndTinyWidth(t *testing.T) {
	tl := &Timeline{}
	if out := tl.Render(80); !strings.Contains(out, "empty") {
		t.Fatalf("empty render = %q", out)
	}
	tl.Add("a", "x", 0, 1)
	if out := tl.Render(1); out == "" {
		t.Fatal("tiny width render empty")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tl := &Timeline{}
	tl.Add("compute", "F:conv1", 0, 0.002)
	tl.Add("d2h", "o:ReLU1", 0.001, 0.004)
	blob, err := tl.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(blob, &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	// Two metadata events (thread names) + two spans.
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	var spans, meta int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) <= 0 {
				t.Fatal("span without duration")
			}
		case "M":
			meta++
		}
	}
	if spans != 2 || meta != 2 {
		t.Fatalf("spans=%d meta=%d", spans, meta)
	}
	// Microsecond conversion: 2 ms = 2000 µs.
	for _, e := range events {
		if e["name"] == "F:conv1" {
			if e["dur"].(float64) != 2000 {
				t.Fatalf("dur = %v µs, want 2000", e["dur"])
			}
		}
	}
}
