// Package trace captures and renders execution timelines from the swapping
// simulator: one span per job on each stream (compute, compression kernel,
// d2h DMA, h2d DMA). The ASCII rendering reproduces the execution-flow
// pictures of the paper's Figure 2 from simulated data.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Span is one job occupancy interval on a stream.
type Span struct {
	Stream string
	Label  string
	Start  float64
	End    float64
}

// Timeline accumulates spans. The zero value is ready to use.
type Timeline struct {
	Spans []Span
}

// ErrInvalidSpan rejects spans whose interval is inverted or not a real
// number; AddChecked wraps it with the offending span's identity.
var ErrInvalidSpan = errors.New("trace: invalid span")

// Add records a span. Invalid intervals are rejected with a panic: the
// simulator feeds Add from its own event engine, where an inverted span
// indicates a simulator bug, not bad input. Instrumentation paths fed by
// wall clocks or user-supplied replay data must use AddChecked instead.
func (t *Timeline) Add(stream, label string, start, end float64) {
	if err := t.AddChecked(stream, label, start, end); err != nil {
		panic(err.Error())
	}
}

// AddChecked records a span, returning ErrInvalidSpan (wrapped with the
// span's stream and label) for inverted or NaN/Inf intervals instead of
// panicking — the right failure mode when spans come from measurements or
// replayed data rather than simulator invariants.
func (t *Timeline) AddChecked(stream, label string, start, end float64) error {
	if end < start || math.IsNaN(start) || math.IsNaN(end) || math.IsInf(start, 0) || math.IsInf(end, 0) {
		return fmt.Errorf("%w: %s/%s [%v,%v]", ErrInvalidSpan, stream, label, start, end)
	}
	t.Spans = append(t.Spans, Span{Stream: stream, Label: label, Start: start, End: end})
	return nil
}

// Streams returns the distinct stream names in first-seen order.
func (t *Timeline) Streams() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range t.Spans {
		if !seen[s.Stream] {
			seen[s.Stream] = true
			out = append(out, s.Stream)
		}
	}
	return out
}

// Horizon returns the end time of the last span.
func (t *Timeline) Horizon() float64 {
	var h float64
	for _, s := range t.Spans {
		if s.End > h {
			h = s.End
		}
	}
	return h
}

// Busy returns the total busy time of one stream.
func (t *Timeline) Busy(stream string) float64 {
	var b float64
	for _, s := range t.Spans {
		if s.Stream == stream {
			b += s.End - s.Start
		}
	}
	return b
}

// Render draws an ASCII Gantt chart, one row per stream, width columns
// spanning [0, Horizon]. Each span paints the first rune of its label; idle
// time is '.'.
func (t *Timeline) Render(width int) string {
	if width < 10 {
		width = 10
	}
	h := t.Horizon()
	if h == 0 {
		return "(empty timeline)\n"
	}
	var b strings.Builder
	streams := t.Streams()
	nameW := 0
	for _, s := range streams {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	spans := append([]Span(nil), t.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, stream := range streams {
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range spans {
			if s.Stream != stream {
				continue
			}
			lo := int(s.Start / h * float64(width))
			hi := int(s.End / h * float64(width))
			if hi >= width {
				hi = width - 1
			}
			mark := '#'
			if len(s.Label) > 0 {
				mark = rune(s.Label[0])
			}
			for i := lo; i <= hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, stream, string(row))
	}
	fmt.Fprintf(&b, "%-*s  0%*s%.4fs\n", nameW, "", width-6, "", h)
	return b.String()
}
