// Package gpu models the two accelerators from the paper's testbed — an
// NVIDIA Tesla V100 (32 GB) and a GeForce RTX 2080Ti (11 GB) — at the level
// of detail the evaluation depends on: peak arithmetic throughput, memory
// bandwidth, memory capacity, effective PCIe bandwidth, and a calibrated
// wall-clock model for the (de)compression kernels whose launch geometry
// CSWAP tunes.
package gpu

import (
	"fmt"
	"math"

	"cswap/internal/pcie"
)

// Device describes a GPU.
type Device struct {
	Name string
	// PeakFLOPS is single-precision peak in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is global-memory bandwidth in bytes/s.
	MemBandwidth float64
	// MemBytes is the usable global-memory capacity in bytes.
	MemBytes int64
	// SMs is the streaming-multiprocessor count.
	SMs int
	// WarpSchedulers per SM (2 or 4 on the evaluated generations); this is
	// what motivates the paper's block ∈ {64,128} restriction.
	WarpSchedulers int
	// Link is the CPU↔GPU interconnect with measured effective bandwidth.
	Link pcie.Link
	// kernelScale adjusts compression-kernel wall-clock relative to the
	// V100 calibration (slower device ⇒ > 1).
	kernelScale float64
}

// V100 returns the paper's first server: Tesla V100 32 GB, PCIe 3.0 ×16
// with measured effective bandwidths 10.6 GB/s h2d and 11.7 GB/s d2h.
func V100() *Device {
	return &Device{
		Name:           "V100",
		PeakFLOPS:      15.7e12,
		MemBandwidth:   900e9,
		MemBytes:       32 << 30,
		SMs:            80,
		WarpSchedulers: 4,
		Link:           pcie.NewLink(10.6, 11.7),
		kernelScale:    1.0,
	}
}

// RTX2080Ti returns the paper's second server: RTX 2080Ti 11 GB, measured
// effective bandwidths 11.8 GB/s h2d and 12.9 GB/s d2h.
func RTX2080Ti() *Device {
	return &Device{
		Name:           "2080Ti",
		PeakFLOPS:      13.4e12,
		MemBandwidth:   616e9,
		MemBytes:       11 << 30,
		SMs:            68,
		WarpSchedulers: 4,
		Link:           pcie.NewLink(11.8, 12.9),
		kernelScale:    1.17,
	}
}

// Devices returns both evaluated GPUs.
func Devices() []*Device { return []*Device{V100(), RTX2080Ti()} }

// ByName resolves a device by its short name.
func ByName(name string) (*Device, error) {
	for _, d := range Devices() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("gpu: unknown device %q", name)
}

// LayerClass captures how efficiently a DNN layer type uses the device;
// compute-bound layers are limited by PeakFLOPS at the class efficiency,
// memory-bound layers by MemBandwidth.
type LayerClass int

// Layer classes for the compute-time model.
const (
	ClassConv       LayerClass = iota // dense convolution / GEMM, compute bound
	ClassFC                           // fully connected GEMM
	ClassActivation                   // ReLU etc., memory bound
	ClassPool                         // pooling, memory bound
	ClassNorm                         // batch norm / softmax, memory bound
)

// efficiency is the achieved fraction of peak FLOPS per class (cuDNN-style
// utilisation; convolutions on tensor-friendly shapes reach ~45–55 %,
// small GEMMs far less).
func (c LayerClass) efficiency() float64 {
	switch c {
	case ClassConv:
		// Large-batch cuDNN convolutions on the evaluated shapes sustain
		// well over half of peak (Winograd/implicit-GEMM paths).
		return 0.65
	case ClassFC:
		return 0.35
	default:
		return 0.0 // memory-bound classes are not FLOPS limited
	}
}

// ComputeTime returns the wall-clock seconds for a kernel performing the
// given FLOPs and global-memory traffic, as the max of its compute-bound
// and memory-bound roofline times plus a fixed launch overhead.
func (d *Device) ComputeTime(class LayerClass, flops, bytes float64) float64 {
	const launchOverhead = 5e-6
	var tCompute float64
	if eff := class.efficiency(); eff > 0 {
		tCompute = flops / (d.PeakFLOPS * eff)
	}
	tMemory := bytes / d.MemBandwidth
	return launchOverhead + math.Max(tCompute, tMemory)
}

// SetKernelScale overrides the device's compression-kernel wall-clock
// multiplier (1 = the V100 calibration; smaller = faster kernels). Used by
// the GPU-generation sweep to model faster future codec kernels.
func (d *Device) SetKernelScale(s float64) {
	if s <= 0 {
		panic(fmt.Sprintf("gpu: non-positive kernel scale %v", s))
	}
	d.kernelScale = s
}

// KernelScale reports the current multiplier.
func (d *Device) KernelScale() float64 { return d.kernelScale }
