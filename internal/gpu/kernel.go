package gpu

import (
	"math"
	"math/rand"

	"cswap/internal/compress"
	"cswap/internal/stats"
)

// Compression-kernel wall-clock model.
//
// The paper's Figure 5 measures the sum of ZVC compression + decompression
// time for a 500 MB tensor at 50 % sparsity as the launch geometry varies,
// and reports three anchors for block 64: t(grid=10) = 146 ms,
// t(197) = 44 ms, t(1024) = 150 ms — a non-convex U-shape (too few blocks
// under-utilise the SMs; too many add scheduling overhead and cache
// contention). Solving t(g) = A/g + B·g + C through those anchors gives
//
//	A = 1340.5 ms·blocks   (parallelisable work)
//	B = 0.1348 ms/block    (per-block scheduling cost)
//	C = 10.6 ms            (fixed launch/teardown overhead)
//
// which this model uses as its block-64 calibration, scaled by tensor size,
// sparsity, algorithm, and device. Block 128 follows the paper's "similar
// trend": higher per-block parallelism (the A term shrinks) but more
// scheduler pressure (the B term grows), leaving its optimum slightly worse
// than block 64's — consistent with BO selecting (199, 64) in Figure 12.
//
// A deterministic ±4 % per-point ripple makes the surface rugged the way
// real kernel timing is, so grid search retains a small edge over model-led
// search and Bayesian optimization has a genuinely non-convex objective.
const (
	kernelA = 1340.5e-3 // seconds·blocks at the calibration point
	kernelB = 0.1348e-3 // seconds per block
	kernelC = 10.6e-3   // seconds

	calibrationBytes    = 500 << 20 // 500 MB tensor
	calibrationSparsity = 0.5
)

// KernelParams identifies one (de)compression kernel execution.
type KernelParams struct {
	Alg       compress.Algorithm
	SizeBytes int64
	Sparsity  float64
	Launch    compress.Launch
}

// algWorkFactor is the relative per-byte work of each codec's kernels
// (ZVC's bitmap scan is the cheapest; LZ4's dictionary matching by far the
// most expensive — the computation/compressibility trade-off of
// Section IV-E).
func algWorkFactor(a compress.Algorithm) float64 {
	switch a {
	case compress.ZVC:
		return 1.0
	case compress.CSR:
		return 1.25
	case compress.RLE:
		return 1.35
	case compress.LZ4:
		return 2.60
	case compress.Huffman:
		// Entropy coding is branch- and dependency-heavy on GPUs.
		return 3.20
	default:
		return 1.0
	}
}

// CompressionTime returns the modeled wall-clock seconds for compressing
// and decompressing a tensor under the given parameters. It is
// deterministic; use CompressionTimeNoisy for measurement-like samples.
func (d *Device) CompressionTime(p KernelParams) (comp, decomp float64) {
	g := float64(p.Launch.Grid)
	if g < 1 {
		g = 1
	}
	a, b := kernelA, kernelB
	c0 := 0.5e-3 // true fixed launch/teardown cost
	if p.Launch.Block == 128 {
		// Twice the threads per block: more work per block retired
		// (smaller A) but heavier per-block scheduling (larger B) and a
		// slightly costlier launch.
		a /= 1.6
		b *= 1.8
		c0 += 2e-3
	}
	sizeFactor := float64(p.SizeBytes) / float64(calibrationBytes)
	// The fitted C bundles a small launch constant with grid-independent
	// per-byte passes (bitmap scan, output sizing), so all but c0 of it
	// scales with the tensor.
	c := c0 + (kernelC-0.5e-3)*sizeFactor
	s := stats.Clamp(p.Sparsity, 0, 1)
	// Compression scans everything and writes non-zeros; decompression is
	// dominated by scattering non-zeros. Both normalise to 1 at the 50 %
	// calibration sparsity.
	compWork := 0.7 + 0.6*(1-s)
	decompWork := 0.4 + 1.2*(1-s)

	// Split the calibrated totals 55/45 between the two kernels. Both the
	// parallelisable work (A/g) and the per-block contention term (B·g)
	// scale with the tensor size — oversubscribing the scheduler only
	// hurts in proportion to the work each block carries — while the
	// launch/teardown constant C does not. This keeps kernel time close
	// to linear in size (the relationship Section IV-C observes and the
	// LR model relies on) while preserving the Figure 5 anchors at the
	// 500 MB calibration point.
	comp = 0.55 * (sizeFactor*(a*compWork/g+b*g) + c)
	decomp = 0.45 * (sizeFactor*(a*decompWork/g+b*g) + c)

	ripple := kernelRipple(p.Launch, p.Alg)
	scale := algWorkFactor(p.Alg) * d.kernelScale * ripple
	return comp * scale, decomp * scale
}

// CompressionTimeTotal is the comp+decomp sum (the Figure 5 quantity and
// the Bayesian-optimization objective).
func (d *Device) CompressionTimeTotal(p KernelParams) float64 {
	c, dc := d.CompressionTime(p)
	return c + dc
}

// CompressionTimeNoisy samples the model with log-normal measurement noise
// (σ = 2 %), emulating a real timed kernel execution.
func (d *Device) CompressionTimeNoisy(rng *rand.Rand, p KernelParams) (comp, decomp float64) {
	c, dc := d.CompressionTime(p)
	return stats.LogNormalJitter(rng, c, 0.02), stats.LogNormalJitter(rng, dc, 0.02)
}

// DefaultLaunch is the untuned geometry the framework uses before Bayesian
// optimization runs: the "expert knowledge" configuration from Figure 12
// (block 128 to saturate the four warp schedulers, enough blocks for four
// per SM).
func (d *Device) DefaultLaunch() compress.Launch {
	return compress.Launch{Grid: 4 * d.SMs, Block: 128}
}

// kernelRipple returns a deterministic multiplicative perturbation in
// [0.96, 1.04] keyed on the launch point and algorithm. It models the
// reproducible fine structure of kernel timing (occupancy cliffs, cache-set
// effects) that makes the objective non-convex.
func kernelRipple(l compress.Launch, a compress.Algorithm) float64 {
	h := splitmix64(uint64(l.Grid)<<20 ^ uint64(l.Block)<<8 ^ uint64(a))
	u := float64(h>>11) / float64(1<<53) // [0,1)
	return 1 + 0.04*(2*u-1)
}

// splitmix64 is the standard 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// OptimalLaunchHint returns the analytic minimiser of the smooth part of
// the surface (≈ √(A/B), independent of size and algorithm because both
// scale the A and B terms uniformly), useful for tests and as a sanity
// bound; the true optimum differs by the ripple.
func (d *Device) OptimalLaunchHint(p KernelParams) compress.Launch {
	g := int(math.Sqrt(kernelA / kernelB))
	if g < 1 {
		g = 1
	}
	if g > 4096 {
		g = 4096
	}
	return compress.Launch{Grid: g, Block: 64}
}
