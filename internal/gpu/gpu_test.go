package gpu

import (
	"math"
	"testing"

	"cswap/internal/compress"
	"cswap/internal/stats"
)

func TestDeviceCatalog(t *testing.T) {
	v := V100()
	r := RTX2080Ti()
	if v.PeakFLOPS <= r.PeakFLOPS {
		t.Error("V100 should have higher peak FLOPS than 2080Ti")
	}
	if v.MemBytes != 32<<30 || r.MemBytes != 11<<30 {
		t.Error("memory capacities wrong")
	}
	// Paper Section V-A: 2080Ti has *higher* effective PCIe bandwidth.
	if r.Link.H2D <= v.Link.H2D || r.Link.D2H <= v.Link.D2H {
		t.Error("2080Ti effective PCIe bandwidth should exceed V100's")
	}
	if len(Devices()) != 2 {
		t.Error("Devices() should list both GPUs")
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("V100")
	if err != nil || d.Name != "V100" {
		t.Fatalf("ByName(V100) = %v, %v", d, err)
	}
	if _, err := ByName("A100"); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestComputeTimeRoofline(t *testing.T) {
	d := V100()
	// Compute-bound: 1 TFLOP at 65 % of 15.7 TFLOPS ≈ 98 ms.
	tc := d.ComputeTime(ClassConv, 1e12, 1e6)
	want := 1e12 / (15.7e12 * 0.65)
	if math.Abs(tc-want) > 1e-4 {
		t.Fatalf("conv time = %v, want ≈%v", tc, want)
	}
	// Memory-bound: ReLU over 1 GB (read+write) at 900 GB/s.
	tm := d.ComputeTime(ClassActivation, 1e9, 2e9)
	wantM := 2e9 / 900e9
	if math.Abs(tm-wantM) > 1e-4 {
		t.Fatalf("activation time = %v, want ≈%v", tm, wantM)
	}
	// Launch overhead floors tiny kernels.
	if tiny := d.ComputeTime(ClassPool, 0, 0); tiny < 5e-6 {
		t.Fatalf("tiny kernel = %v, want ≥ launch overhead", tiny)
	}
}

func fig5Params(grid, block int) KernelParams {
	return KernelParams{
		Alg:       compress.ZVC,
		SizeBytes: 500 << 20,
		Sparsity:  0.5,
		Launch:    compress.Launch{Grid: grid, Block: block},
	}
}

func TestKernelModelMatchesFigure5Anchors(t *testing.T) {
	d := V100()
	anchors := []struct {
		grid   int
		wantMS float64
	}{
		{10, 146}, {197, 44}, {1024, 150},
	}
	for _, a := range anchors {
		got := d.CompressionTimeTotal(fig5Params(a.grid, 64)) * 1e3
		// Within the ±4 % ripple plus a little slack.
		if math.Abs(got-a.wantMS)/a.wantMS > 0.06 {
			t.Errorf("grid %d: %v ms, paper anchor %v ms", a.grid, got, a.wantMS)
		}
	}
}

func TestKernelSurfaceIsUShaped(t *testing.T) {
	d := V100()
	small := d.CompressionTimeTotal(fig5Params(4, 64))
	mid := d.CompressionTimeTotal(fig5Params(128, 64))
	large := d.CompressionTimeTotal(fig5Params(4096, 64))
	if !(mid < small && mid < large) {
		t.Fatalf("surface not U-shaped: t(4)=%v t(128)=%v t(4096)=%v", small, mid, large)
	}
}

func TestKernelBlock128SimilarTrendSlightlyWorseOptimum(t *testing.T) {
	d := V100()
	best := func(block int) float64 {
		m := math.Inf(1)
		for g := 1; g <= 4096; g++ {
			if v := d.CompressionTimeTotal(fig5Params(g, block)); v < m {
				m = v
			}
		}
		return m
	}
	b64, b128 := best(64), best(128)
	if b64 >= b128 {
		t.Fatalf("block-64 optimum (%v) should beat block-128 (%v), per Figure 12's (199,64)", b64, b128)
	}
	if b128 > 1.5*b64 {
		t.Fatalf("block-128 should be a 'similar trend', got %vx worse", b128/b64)
	}
}

func TestKernelTimeScalesWithSizeAndAlgorithm(t *testing.T) {
	d := V100()
	base := fig5Params(197, 64)
	small := base
	small.SizeBytes = 50 << 20
	if d.CompressionTimeTotal(small) >= d.CompressionTimeTotal(base) {
		t.Error("smaller tensor should compress faster")
	}
	for _, a := range []compress.Algorithm{compress.CSR, compress.RLE, compress.LZ4} {
		p := base
		p.Alg = a
		if d.CompressionTimeTotal(p) <= d.CompressionTimeTotal(base) {
			t.Errorf("%s should be slower than ZVC", a)
		}
	}
	lz4 := base
	lz4.Alg = compress.LZ4
	if d.CompressionTimeTotal(lz4) < 2*d.CompressionTimeTotal(base) {
		t.Error("LZ4 should be much slower than ZVC")
	}
}

func TestKernelTimeSparsityEffect(t *testing.T) {
	d := V100()
	dense := fig5Params(197, 64)
	dense.Sparsity = 0.2
	sparse := fig5Params(197, 64)
	sparse.Sparsity = 0.8
	if d.CompressionTimeTotal(sparse) >= d.CompressionTimeTotal(dense) {
		t.Error("sparser tensors should (de)compress faster: fewer values to pack/scatter")
	}
}

func TestKernelDeviceScale(t *testing.T) {
	p := fig5Params(197, 64)
	if RTX2080Ti().CompressionTimeTotal(p) <= V100().CompressionTimeTotal(p) {
		t.Error("2080Ti kernels should be slower than V100")
	}
}

func TestKernelNoisyIsCloseToMean(t *testing.T) {
	d := V100()
	rng := stats.NewRNG(3)
	p := fig5Params(197, 64)
	mc, md := d.CompressionTime(p)
	var sumC, sumD float64
	const n = 5000
	for i := 0; i < n; i++ {
		c, dc := d.CompressionTimeNoisy(rng, p)
		sumC += c
		sumD += dc
	}
	if math.Abs(sumC/n-mc)/mc > 0.02 || math.Abs(sumD/n-md)/md > 0.02 {
		t.Fatalf("noisy mean drifted: %v/%v vs %v/%v", sumC/n, sumD/n, mc, md)
	}
}

func TestKernelRippleDeterministicAndBounded(t *testing.T) {
	for g := 1; g <= 4096; g += 37 {
		for _, b := range []int{64, 128} {
			l := compress.Launch{Grid: g, Block: b}
			r1 := kernelRipple(l, compress.ZVC)
			r2 := kernelRipple(l, compress.ZVC)
			if r1 != r2 {
				t.Fatal("ripple not deterministic")
			}
			if r1 < 0.96 || r1 > 1.04 {
				t.Fatalf("ripple %v out of bounds", r1)
			}
		}
	}
}

func TestDefaultLaunchValid(t *testing.T) {
	for _, d := range Devices() {
		if err := d.DefaultLaunch().Validate(); err != nil {
			t.Errorf("%s default launch invalid: %v", d.Name, err)
		}
	}
}

func TestOptimalLaunchHintNearSurfaceMinimum(t *testing.T) {
	d := V100()
	p := fig5Params(0, 64) // launch filled below
	hint := d.OptimalLaunchHint(p)
	p.Launch = hint
	atHint := d.CompressionTimeTotal(p)
	// The hint must be within 15 % of the exhaustive block-64 minimum.
	best := math.Inf(1)
	for g := 1; g <= 4096; g++ {
		q := fig5Params(g, 64)
		if v := d.CompressionTimeTotal(q); v < best {
			best = v
		}
	}
	if atHint > 1.15*best {
		t.Fatalf("hint %v gives %v, exhaustive best %v", hint, atHint, best)
	}
	// Hint stays in range for extreme sizes.
	tiny := KernelParams{Alg: compress.ZVC, SizeBytes: 1 << 10, Sparsity: 0.5}
	if g := d.OptimalLaunchHint(tiny).Grid; g < 1 {
		t.Fatalf("tiny-tensor hint grid %d", g)
	}
	huge := KernelParams{Alg: compress.LZ4, SizeBytes: 1 << 40, Sparsity: 0.5}
	if g := d.OptimalLaunchHint(huge).Grid; g > 4096 {
		t.Fatalf("huge-tensor hint grid %d", g)
	}
}

func TestCompressionTimeNoisyDeterministicPerStream(t *testing.T) {
	d := V100()
	p := fig5Params(197, 64)
	a1, b1 := d.CompressionTimeNoisy(stats.NewRNG(5), p)
	a2, b2 := d.CompressionTimeNoisy(stats.NewRNG(5), p)
	if a1 != a2 || b1 != b2 {
		t.Fatal("noisy sampling not reproducible for the same RNG state")
	}
}

func TestCompressionTimeMonotoneInSize(t *testing.T) {
	d := V100()
	prev := 0.0
	for _, mb := range []int64{20, 100, 500, 1000, 2000} {
		p := fig5Params(197, 64)
		p.SizeBytes = mb << 20
		total := d.CompressionTimeTotal(p)
		if total <= prev {
			t.Fatalf("kernel time not increasing at %d MB", mb)
		}
		prev = total
	}
}

func TestSetKernelScale(t *testing.T) {
	d := V100()
	base := d.CompressionTimeTotal(fig5Params(197, 64))
	d.SetKernelScale(0.5)
	if d.KernelScale() != 0.5 {
		t.Fatal("scale not stored")
	}
	if got := d.CompressionTimeTotal(fig5Params(197, 64)); got >= base {
		t.Fatal("faster kernel scale did not speed kernels")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive scale")
		}
	}()
	d.SetKernelScale(0)
}
