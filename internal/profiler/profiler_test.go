package profiler

import (
	"testing"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/memdb"
	"cswap/internal/sparsity"
)

func collectVGG(t *testing.T) (*dnn.Model, *gpu.Device, *sparsity.Profile, *NetworkProfile) {
	t.Helper()
	m, err := dnn.Build("VGG16", dnn.ImageNet, 128)
	if err != nil {
		t.Fatal(err)
	}
	d := gpu.V100()
	sp := sparsity.ForModel(m, 50, 1)
	return m, d, sp, Collect(m, d, sp, 0)
}

func TestCollectBasics(t *testing.T) {
	m, _, _, np := collectVGG(t)
	if np.Model != "VGG16" || np.GPU != "V100" {
		t.Fatalf("identity: %s/%s", np.Model, np.GPU)
	}
	if len(np.Forward) != len(m.Layers) || len(np.Backward) != len(m.Layers) {
		t.Fatal("layer time arrays wrong length")
	}
	if len(np.Tensors) != len(m.SwapTensors()) {
		t.Fatal("tensor profile count wrong")
	}
	for i := range np.Forward {
		if np.Forward[i] <= 0 || np.Backward[i] <= 0 {
			t.Fatalf("layer %d non-positive time", i)
		}
	}
}

func TestCollectMeasuredBandwidthBelowNominal(t *testing.T) {
	_, d, _, np := collectVGG(t)
	if np.BWd2h >= d.Link.D2H || np.BWh2d >= d.Link.H2D {
		t.Fatal("measured bandwidth should be below configured effective bandwidth")
	}
	if np.BWd2h < 0.95*d.Link.D2H {
		t.Fatal("measured bandwidth unreasonably low")
	}
}

func TestHiddenWindowsPartitionComputeTime(t *testing.T) {
	m, d, _, np := collectVGG(t)
	// The sum of hidden forward windows plus the prefix before the first
	// swap tensor equals the total forward time.
	var total float64
	for i := range m.Layers {
		total += np.Forward[i]
	}
	var prefix float64
	for i := 0; i <= np.Tensors[0].LayerIdx; i++ {
		prefix += np.Forward[i]
	}
	var hidden float64
	for _, tp := range np.Tensors {
		hidden += tp.HiddenF
	}
	if diff := total - (prefix + hidden); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("hidden windows don't partition forward time: diff %v", diff)
	}
	_ = d
}

func TestHiddenWindowsPositive(t *testing.T) {
	_, _, _, np := collectVGG(t)
	for _, tp := range np.Tensors[:len(np.Tensors)-1] {
		if tp.HiddenF <= 0 || tp.HiddenB <= 0 {
			t.Fatalf("%s hidden windows %v/%v", tp.Name, tp.HiddenF, tp.HiddenB)
		}
	}
}

func TestSparsityRefreshUpdatesOnlySparsity(t *testing.T) {
	_, _, sp, np := collectVGG(t)
	before := make([]float64, len(np.Tensors))
	for i, tp := range np.Tensors {
		before[i] = tp.Sparsity
	}
	sizes := make([]int64, len(np.Tensors))
	for i, tp := range np.Tensors {
		sizes[i] = tp.Bytes
	}
	np.RefreshSparsity(sp, 40)
	if np.Epoch != 40 {
		t.Fatal("epoch not updated")
	}
	changed := false
	for i, tp := range np.Tensors {
		if tp.Sparsity != before[i] {
			changed = true
		}
		if tp.Bytes != sizes[i] {
			t.Fatal("refresh must not change tensor sizes")
		}
	}
	if !changed {
		t.Fatal("sparsity unchanged after 40 epochs")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	_, _, _, np := collectVGG(t)
	db := memdb.New()
	if err := np.Store(db); err != nil {
		t.Fatal(err)
	}
	got, ok, err := Load(db, "VGG16", "V100")
	if err != nil || !ok {
		t.Fatalf("Load: %v %v", ok, err)
	}
	if got.Model != np.Model || len(got.Tensors) != len(np.Tensors) {
		t.Fatal("loaded profile differs")
	}
	if got.Tensors[3].Sparsity != np.Tensors[3].Sparsity {
		t.Fatal("sparsity not persisted")
	}
	if _, ok, _ := Load(db, "VGG16", "2080Ti"); ok {
		t.Fatal("absent profile reported present")
	}
}

func TestSparsityProbeOverheadMagnitude(t *testing.T) {
	// Section V-E: ≈8 ms to probe VGG16's swappable tensors.
	m, d, _, np := collectVGG(t)
	var bytes int64
	for _, tp := range np.Tensors {
		bytes += tp.Bytes
	}
	probe := SparsityProbeOverhead(d, bytes)
	if probe < 0.002 || probe > 0.050 {
		t.Fatalf("VGG16 sparsity probe = %v s, want small-milliseconds scale", probe)
	}
	_ = m
}
