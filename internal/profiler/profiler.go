// Package profiler implements the CSWAP tensor profiler (Section IV-A): at
// the first training iteration it collects the DNN characteristics — tensor
// sizes, per-layer execution times without compression, and the effective
// PCIe bandwidth — and refreshes tensor sparsity once per epoch. Profiles
// are persisted in the in-memory database for low-latency retrieval by the
// execution advisor.
package profiler

import (
	"fmt"

	"cswap/internal/dnn"
	"cswap/internal/gpu"
	"cswap/internal/memdb"
	"cswap/internal/pcie"
	"cswap/internal/sparsity"
)

// TensorProfile is the per-tensor record of Table II: size (one-time),
// hidden forward/backward windows (one-time), and sparsity (per-epoch).
type TensorProfile struct {
	dnn.SwapTensor
	// HiddenF is the forward-propagation compute window (seconds)
	// available to hide this tensor's offload: the compute issued between
	// this tensor's production and the next swappable tensor's.
	HiddenF float64
	// HiddenB is the corresponding backward window hiding the prefetch.
	HiddenB float64
	// Sparsity is the zero fraction at the most recent refresh.
	Sparsity float64
}

// NetworkProfile is the full DNN profile: "tensor sparsity, size, and
// execution time of layers" plus the measured link bandwidths.
type NetworkProfile struct {
	Model    string
	GPU      string
	Epoch    int // epoch of the last sparsity refresh
	BWd2h    float64
	BWh2d    float64
	Forward  []float64 // per-layer forward seconds
	Backward []float64
	Tensors  []TensorProfile
}

// probeBytes is the bandwidthTest-style probe transfer size.
const probeBytes = 256 << 20

// Collect runs the first-iteration profiling pass: layer times from the
// device compute model, hidden windows from the layer schedule, effective
// bandwidths from a probe transfer, and epoch-0 sparsity.
func Collect(m *dnn.Model, d *gpu.Device, sp *sparsity.Profile, epoch int) *NetworkProfile {
	np := &NetworkProfile{
		Model: m.Name,
		GPU:   d.Name,
		Epoch: epoch,
		BWd2h: d.Link.MeasureEffective(probeBytes, pcie.DeviceToHost),
		BWh2d: d.Link.MeasureEffective(probeBytes, pcie.HostToDevice),
	}
	np.Forward = make([]float64, len(m.Layers))
	np.Backward = make([]float64, len(m.Layers))
	for i := range m.Layers {
		np.Forward[i] = m.ForwardTime(d, i)
		np.Backward[i] = m.BackwardTime(d, i)
	}
	tensors := m.SwapTensors()
	np.Tensors = make([]TensorProfile, len(tensors))
	for k, t := range tensors {
		// The hiding window spans the layers executed between this
		// tensor's production and the next swappable tensor's (only one
		// tensor is in flight per layer in the paper's model); the last
		// tensor gets the remaining layers.
		hi := len(m.Layers)
		if k+1 < len(tensors) {
			hi = tensors[k+1].LayerIdx + 1
		}
		var hf, hb float64
		for i := t.LayerIdx + 1; i < hi; i++ {
			hf += np.Forward[i]
			hb += np.Backward[i]
		}
		np.Tensors[k] = TensorProfile{
			SwapTensor: t,
			HiddenF:    hf,
			HiddenB:    hb,
			Sparsity:   sp.Sparsity(k, epoch),
		}
	}
	return np
}

// RefreshSparsity performs the per-epoch sparsity re-measurement ("we only
// need to execute the tensor profiler to collect the sparsity once in each
// epoch", Section IV-A); everything else in the profile is epoch-invariant.
func (np *NetworkProfile) RefreshSparsity(sp *sparsity.Profile, epoch int) {
	np.Epoch = epoch
	for k := range np.Tensors {
		np.Tensors[k].Sparsity = sp.Sparsity(k, epoch)
	}
}

// Key is the memdb key a profile is stored under.
func Key(model, gpuName string) string {
	return fmt.Sprintf("profile/%s/%s", model, gpuName)
}

// Store persists the profile into the in-memory database.
func (np *NetworkProfile) Store(db *memdb.DB) error {
	return db.Put(Key(np.Model, np.GPU), np)
}

// Load retrieves a stored profile; ok is false when absent.
func Load(db *memdb.DB, model, gpuName string) (*NetworkProfile, bool, error) {
	var np NetworkProfile
	ok, err := db.Get(Key(model, gpuName), &np)
	if err != nil || !ok {
		return nil, ok, err
	}
	return &np, true, nil
}

// SparsityProbeOverhead is the modeled cost of one GPU-side sparsity count
// over a tensor of the given size: a memory-bound scan at the device's
// bandwidth. For VGG16's working set this lands near the paper's "only 8 ms
// overhead every 10 sec" (Section V-E).
func SparsityProbeOverhead(d *gpu.Device, bytes int64) float64 {
	return d.ComputeTime(gpu.ClassActivation, 0, float64(bytes))
}
